// Tests for the internal-memory priority search treap baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "internal/naive.h"
#include "internal/pst.h"
#include "util/random.h"

namespace tokra::internal {
namespace {

std::vector<Point> RandomPoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, 1000.0);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

TEST(TreapPstTest, EmptyQueries) {
  TreapPst t;
  EXPECT_TRUE(t.TopK(0, 10, 5).empty());
  std::vector<Point> out;
  t.Report3Sided(0, 10, 0.5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(t.Delete(3.0).code(), StatusCode::kNotFound);
}

TEST(TreapPstTest, InsertDuplicateXRejected) {
  TreapPst t;
  ASSERT_TRUE(t.Insert({1.0, 0.5}).ok());
  EXPECT_EQ(t.Insert({1.0, 0.7}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TreapPstTest, SmallExactScenario) {
  TreapPst t;
  // Hotel-style: x = price, score = rating.
  ASSERT_TRUE(t.Insert({100, 4.1}).ok());
  ASSERT_TRUE(t.Insert({150, 4.8}).ok());
  ASSERT_TRUE(t.Insert({180, 3.9}).ok());
  ASSERT_TRUE(t.Insert({220, 4.9}).ok());
  ASSERT_TRUE(t.Insert({90, 2.0}).ok());
  auto top = t.TopK(100, 200, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].score, 4.8);
  EXPECT_EQ(top[1].score, 4.1);
  t.CheckInvariants();
}

struct PstCase {
  std::size_t n;
  std::uint64_t seed;
};

class TreapPstPropertyTest : public ::testing::TestWithParam<PstCase> {};

TEST_P(TreapPstPropertyTest, AgreesWithNaiveOracle) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  auto pts = RandomPoints(&rng, n);
  TreapPst t;
  for (const Point& p : pts) ASSERT_TRUE(t.Insert(p).ok());
  t.CheckInvariants();

  for (int probe = 0; probe < 60; ++probe) {
    double a = rng.UniformDouble(-50, 1050);
    double b = rng.UniformDouble(-50, 1050);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    std::size_t k = 1 + rng.Uniform(20);
    auto got = t.TopK(x1, x2, k);
    auto want = NaiveTopK(pts, x1, x2, k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].x, want[i].x);
      EXPECT_EQ(got[i].score, want[i].score);
    }

    double y = rng.UniformDouble(0, 1);
    std::vector<Point> rep;
    t.Report3Sided(x1, x2, y, &rep);
    auto rep_want = Naive3Sided(pts, x1, x2, y);
    ASSERT_EQ(rep.size(), rep_want.size());
    std::sort(rep.begin(), rep.end(), ByScoreDesc{});
    for (std::size_t i = 0; i < rep_want.size(); ++i) {
      EXPECT_EQ(rep[i].x, rep_want[i].x);
    }
  }
  t.CheckInvariants();  // queries must not corrupt the structure

  // Delete half, re-verify.
  rng.Shuffle(&pts);
  std::vector<Point> remaining(pts.begin() + pts.size() / 2, pts.end());
  for (std::size_t i = 0; i < pts.size() / 2; ++i) {
    ASSERT_TRUE(t.Delete(pts[i].x).ok());
  }
  t.CheckInvariants();
  EXPECT_EQ(t.size(), remaining.size());
  for (int probe = 0; probe < 30; ++probe) {
    double a = rng.UniformDouble(-50, 1050);
    double b = rng.UniformDouble(-50, 1050);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    std::size_t k = 1 + rng.Uniform(10);
    auto got = t.TopK(x1, x2, k);
    auto want = NaiveTopK(remaining, x1, x2, k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].score, want[i].score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreapPstPropertyTest,
                         ::testing::Values(PstCase{10, 1}, PstCase{100, 2},
                                           PstCase{1000, 3}, PstCase{5000, 4},
                                           PstCase{20000, 5}),
                         [](const ::testing::TestParamInfo<PstCase>& info) {
                           return "n" + std::to_string(info.param.n);
                         });

TEST(TreapPstTest, KLargerThanRange) {
  TreapPst t;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Insert({1.0 * i, 0.1 * i}).ok());
  auto top = t.TopK(2.5, 4.5, 100);  // only x=3,4 inside
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].x, 4.0);
  EXPECT_EQ(top[1].x, 3.0);
}

TEST(NaiveOracleTest, BasicSanity) {
  std::vector<Point> pts{{1, 0.5}, {2, 0.9}, {3, 0.1}, {4, 0.7}};
  auto top = NaiveTopK(pts, 1.5, 4.5, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].score, 0.9);
  EXPECT_EQ(top[1].score, 0.7);
  EXPECT_EQ(NaiveRangeCount(pts, 0, 10), 4u);
  EXPECT_EQ(NaiveKthScoreInRange(pts, 0, 10, 2), 0.7);
  EXPECT_EQ(NaiveScoreRankInRange(pts, 0, 10, 0.7), 2u);
  auto sided = Naive3Sided(pts, 0, 10, 0.6);
  EXPECT_EQ(sided.size(), 2u);
}

}  // namespace
}  // namespace tokra::internal
