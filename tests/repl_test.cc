// Replicated serving tier tests: wire framing, loopback
// bootstrap/stream/convergence, heartbeat-timeout degradation and
// reconnect, fault-injected partitions (snapshot resume, lagged-follower
// re-snapshot), and the fork-based primary-SIGKILL torture leg.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "em/fault_device.h"
#include "engine/sharded_engine.h"
#include "repl/conn.h"
#include "repl/follower.h"
#include "repl/frame.h"
#include "repl/primary.h"
#include "repl/protocol.h"

namespace tokra::repl {
namespace {

namespace fs = std::filesystem;
using engine::Durability;
using engine::EngineOptions;
using engine::ShardedTopkEngine;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tokra-repl-" + tag + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string Sub(const std::string& name) const {
    const std::string p = path_ + "/" + name;
    fs::create_directories(p);
    return p;
  }

 private:
  std::string path_;
};

/// Spins until `pred` holds or `ms` elapse; returns whether it held.
bool WaitFor(const std::function<bool()>& pred, int ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

EngineOptions BaseEngineOptions() {
  EngineOptions eo;
  eo.num_shards = 2;
  eo.threads = 2;
  eo.em.block_words = 64;
  eo.em.pool_frames = 32;
  eo.durability = Durability::kWal;
  eo.telemetry.enabled = false;
  return eo;
}

/// Distinct x and scores: x = i, score = 10000 + i.
std::vector<Point> MakePoints(int begin, int count) {
  std::vector<Point> v;
  v.reserve(count);
  for (int i = begin; i < begin + count; ++i) {
    v.push_back({static_cast<double>(i), 10000.0 + i});
  }
  return v;
}

std::unique_ptr<ShardedTopkEngine> BuildPrimaryEngine(
    const std::string& dir, int n_points,
    std::uint32_t wal_rotate_blocks = 1024) {
  EngineOptions eo = BaseEngineOptions();
  eo.storage_dir = dir;
  eo.em.wal_rotate_blocks = wal_rotate_blocks;
  auto built = ShardedTopkEngine::Build(MakePoints(0, n_points), eo);
  if (!built.ok()) return nullptr;
  return std::move(*built);
}

Primary::Options PrimaryOptions(const std::string& dir) {
  Primary::Options po;
  po.storage_dir = dir;
  po.block_words = 64;
  po.heartbeat_ms = 25;
  po.poll_ms = 2;
  po.io_timeout_ms = 3000;
  return po;
}

Follower::Options FollowerOptions(std::uint16_t port,
                                  const std::string& dir) {
  Follower::Options fo;
  fo.port = port;
  fo.storage_dir = dir;
  fo.engine = BaseEngineOptions();
  fo.heartbeat_timeout_ms = 200;
  fo.connect_timeout_ms = 500;
  fo.io_timeout_ms = 3000;
  fo.backoff_initial_ms = 10;
  fo.backoff_max_ms = 100;
  fo.ack_interval_ms = 20;
  return fo;
}

// ---------------------------------------------------------------------------
// Wire layer.

TEST(ReplFrameTest, HeaderRoundTripAndRejection) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  std::uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kTail, payload, header);

  FrameType type;
  std::uint32_t len = 0, crc = 0;
  ASSERT_TRUE(DecodeFrameHeader(header, &type, &len, &crc).ok());
  EXPECT_EQ(type, FrameType::kTail);
  EXPECT_EQ(len, payload.size());
  EXPECT_EQ(crc, Crc32Bytes(payload));

  // A flipped payload byte no longer matches the CRC.
  std::vector<std::uint8_t> tampered = payload;
  tampered[2] ^= 0x10;
  EXPECT_NE(Crc32Bytes(tampered), crc);

  // Bad magic, unknown type, oversized length: each rejected.
  std::uint8_t bad[kFrameHeaderBytes];
  std::memcpy(bad, header, sizeof(bad));
  bad[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrameHeader(bad, &type, &len, &crc).ok());

  std::memcpy(bad, header, sizeof(bad));
  bad[4] = 0xEE;
  EXPECT_FALSE(DecodeFrameHeader(bad, &type, &len, &crc).ok());

  std::memcpy(bad, header, sizeof(bad));
  bad[11] = 0xFF;  // length's top byte: > kMaxFramePayload
  EXPECT_FALSE(DecodeFrameHeader(bad, &type, &len, &crc).ok());
}

TEST(ReplProtocolTest, MessageRoundTrips) {
  {
    SubscribeMsg m;
    m.applied_lsns = {7, 0, 42};
    m.snapshot_epoch = 3;
    m.snapshot_bytes = {4096, 0, 123};
    SubscribeMsg d;
    ASSERT_TRUE(d.Decode(m.Encode()).ok());
    EXPECT_EQ(d.applied_lsns, m.applied_lsns);
    EXPECT_EQ(d.snapshot_epoch, 3u);
    EXPECT_EQ(d.snapshot_bytes, m.snapshot_bytes);
  }
  {
    SnapBeginMsg m;
    m.epoch = 9;
    m.files.push_back({1, 1 << 20, 555, 4096});
    SnapBeginMsg d;
    ASSERT_TRUE(d.Decode(m.Encode()).ok());
    ASSERT_EQ(d.files.size(), 1u);
    EXPECT_EQ(d.files[0].shard, 1u);
    EXPECT_EQ(d.files[0].file_bytes, 1u << 20);
    EXPECT_EQ(d.files[0].covered_lsn, 555u);
    EXPECT_EQ(d.files[0].resume_offset, 4096u);
  }
  {
    TailMsg m;
    m.shard = 1;
    m.lsn = 77;
    m.payload = {9, 8, 7, 6, 5, 4, 3, 2};
    TailMsg d;
    ASSERT_TRUE(d.Decode(m.Encode()).ok());
    EXPECT_EQ(d.shard, 1u);
    EXPECT_EQ(d.lsn, 77u);
    EXPECT_EQ(d.payload, m.payload);
  }
  {
    HeartbeatMsg m;
    m.now_us = 123456789;
    m.head_lsns = {5, 6};
    HeartbeatMsg d;
    ASSERT_TRUE(d.Decode(m.Encode()).ok());
    EXPECT_EQ(d.head_lsns, m.head_lsns);
  }
  // Truncated and trailing-garbage payloads are both rejected.
  {
    HeartbeatMsg m;
    m.head_lsns = {5, 6};
    auto bytes = m.Encode();
    HeartbeatMsg d;
    auto truncated = bytes;
    truncated.pop_back();
    EXPECT_FALSE(d.Decode(truncated).ok());
    bytes.push_back(0);
    EXPECT_FALSE(d.Decode(bytes).ok());
  }
}

TEST(ReplConnTest, LoopbackFramesAndDeadlines) {
  auto listen = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listen.ok());
  auto port = LocalPort(*listen);
  ASSERT_TRUE(port.ok());

  auto client_fd = DialTcp("127.0.0.1", *port, 1000);
  ASSERT_TRUE(client_fd.ok());
  auto server_fd = AcceptConn(*listen, 1000);
  ASSERT_TRUE(server_fd.ok());

  Conn client(*client_fd, {.io_timeout_ms = 1000});
  Conn server(*server_fd, {.io_timeout_ms = 100});

  // Nothing sent yet: TryRecv is immediate, Recv runs into its deadline.
  Frame f;
  EXPECT_EQ(server.TryRecvFrame(&f).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.RecvFrame(&f).code(), StatusCode::kDeadlineExceeded);

  const std::vector<std::uint8_t> payload(100 * 1024, 0xAB);
  ASSERT_TRUE(client.SendFrame(FrameType::kSnapChunk, payload).ok());
  ASSERT_TRUE(server.RecvFrame(&f).ok());
  EXPECT_EQ(f.type, FrameType::kSnapChunk);
  EXPECT_EQ(f.payload, payload);

  // Peer close surfaces as an error, not a hang.
  client.Close();
  EXPECT_FALSE(server.RecvFrame(&f).ok());
  ::close(*listen);
}

// ---------------------------------------------------------------------------
// Loopback primary/follower.

TEST(ReplTest, BootstrapStreamAndConverge) {
  TempDir dir("bootstrap");
  auto eng = BuildPrimaryEngine(dir.Sub("primary"), 200);
  ASSERT_NE(eng, nullptr);
  auto primary = Primary::Start(eng.get(), PrimaryOptions(dir.Sub("primary")));
  ASSERT_TRUE(primary.ok());

  auto follower =
      Follower::Start(FollowerOptions((*primary)->port(), dir.Sub("f1")));
  ASSERT_TRUE(follower.ok());

  ASSERT_TRUE(WaitFor([&] { return (*follower)->serving(); }));
  EXPECT_EQ((*follower)->stats().bootstraps, 1u);

  // Snapshot bytes flowed and the bootstrapped state answers correctly.
  EXPECT_GT((*follower)->stats().snapshot_bytes, 0u);
  auto got = (*follower)->TopK(0, 1000, 3);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 3u);
  EXPECT_EQ((*got)[0].x, 199.0);  // highest score = highest x

  // Live updates stream through the tail.
  for (const Point& p : MakePoints(200, 100)) {
    ASSERT_TRUE(eng->Insert(p).ok());
  }
  auto want = EngineFingerprint(*eng);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(WaitFor([&] {
    auto fp = (*follower)->Fingerprint();
    return fp.ok() && *fp == *want;
  }));
  const Follower::Stats st = (*follower)->stats();
  EXPECT_EQ(st.bootstraps, 1u);  // tail only, no re-bootstrap
  EXPECT_GT(st.tail_records, 0u);
  EXPECT_GT(st.tail_ops, 0u);
  EXPECT_EQ(st.apply_errors, 0u);
  EXPECT_TRUE(WaitFor([&] { return (*follower)->stats().heartbeats > 0; }));

  // Deletes replicate too.
  ASSERT_TRUE(eng->Delete({250.0, 10250.0}).ok());
  want = EngineFingerprint(*eng);
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(WaitFor([&] {
    auto fp = (*follower)->Fingerprint();
    return fp.ok() && *fp == *want;
  }));

  // The follower's own registry exposes replication health.
  const std::string dump = (*follower)->DumpMetrics();
  EXPECT_NE(dump.find("tokra_repl_lag_lsn"), std::string::npos);
  EXPECT_NE(dump.find("tokra_repl_bootstraps_total"), std::string::npos);

  const Primary::Stats ps = (*primary)->stats();
  EXPECT_EQ(ps.snapshots_shipped, 1u);
  EXPECT_GT(ps.tail_records, 0u);
  EXPECT_GT(ps.heartbeats, 0u);
}

TEST(ReplTest, ReadScalingAcrossFollowers) {
  TempDir dir("scale");
  auto eng = BuildPrimaryEngine(dir.Sub("primary"), 300);
  ASSERT_NE(eng, nullptr);
  auto primary = Primary::Start(eng.get(), PrimaryOptions(dir.Sub("primary")));
  ASSERT_TRUE(primary.ok());

  std::vector<std::unique_ptr<Follower>> followers;
  for (int i = 0; i < 3; ++i) {
    auto f = Follower::Start(FollowerOptions(
        (*primary)->port(), dir.Sub("f" + std::to_string(i))));
    ASSERT_TRUE(f.ok());
    followers.push_back(std::move(*f));
  }
  auto want = EngineFingerprint(*eng);
  ASSERT_TRUE(want.ok());
  for (auto& f : followers) {
    ASSERT_TRUE(WaitFor([&] {
      auto fp = f->Fingerprint();
      return fp.ok() && *fp == *want;
    }));
  }
  // Identical answers from every replica.
  for (auto& f : followers) {
    auto got = f->TopK(50, 250, 10);
    ASSERT_TRUE(got.ok());
    auto reference = eng->TopK(50, 250, 10);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(*got, *reference);
  }
  EXPECT_EQ((*primary)->stats().active_connections, 3u);
}

TEST(ReplTest, DegradesOnPrimaryDeathAndResumesWithoutRebootstrap) {
  TempDir dir("failover");
  const std::string pdir = dir.Sub("primary");
  auto eng = BuildPrimaryEngine(pdir, 150);
  ASSERT_NE(eng, nullptr);
  auto primary = Primary::Start(eng.get(), PrimaryOptions(pdir));
  ASSERT_TRUE(primary.ok());
  const std::uint16_t port = (*primary)->port();

  auto follower = Follower::Start(FollowerOptions(port, dir.Sub("f1")));
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(WaitFor([&] {
    return (*follower)->serving() &&
           (*follower)->state() == Follower::State::kStreaming;
  }));

  // Primary goes away: the follower must detect the silence, degrade, and
  // KEEP answering stale reads.
  (*primary)->Stop();
  primary->reset();
  ASSERT_TRUE(WaitFor(
      [&] { return (*follower)->state() == Follower::State::kDegraded; }));
  auto stale = (*follower)->TopK(0, 1000, 5);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->size(), 5u);
  EXPECT_TRUE(WaitFor([&] { return (*follower)->stats().lag_ms > 0; }));
  EXPECT_GE((*follower)->stats().reconnects, 1u);

  // Updates keep landing on the primary engine while no one is listening.
  for (const Point& p : MakePoints(150, 50)) {
    ASSERT_TRUE(eng->Insert(p).ok());
  }

  // Primary returns on the SAME port: the follower reconnects with backoff
  // and resumes from its applied LSNs — tail only, no snapshot.
  auto primary2 = Primary::Start(eng.get(), [&] {
    Primary::Options po = PrimaryOptions(pdir);
    po.port = port;
    return po;
  }());
  ASSERT_TRUE(primary2.ok());

  auto want = EngineFingerprint(*eng);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(WaitFor([&] {
    auto fp = (*follower)->Fingerprint();
    return fp.ok() && *fp == *want;
  }));
  const Follower::Stats st = (*follower)->stats();
  EXPECT_EQ(st.bootstraps, 1u);  // the whole point: no re-bootstrap
  EXPECT_EQ(st.state, Follower::State::kStreaming);
  EXPECT_EQ((*primary2)->stats().snapshots_shipped, 0u);
}

TEST(ReplTest, SnapshotStreamResumesAfterInjectedPartition) {
  TempDir dir("snapresume");
  auto eng = BuildPrimaryEngine(dir.Sub("primary"), 400);
  ASSERT_NE(eng, nullptr);

  em::FaultInjector inj;
  Primary::Options po = PrimaryOptions(dir.Sub("primary"));
  po.chunk_bytes = 1024;  // many chunks, so the fault lands mid-stream
  po.fault = &inj;
  auto primary = Primary::Start(eng.get(), po);
  ASSERT_TRUE(primary.ok());

  // Frame sends on the primary: HelloAck, SnapBegin, then chunks. Fire on
  // the 9th — several chunks into the first shard's file.
  inj.Arm(em::FaultInjector::Kind::kWriteError, 8);

  auto follower =
      Follower::Start(FollowerOptions((*primary)->port(), dir.Sub("f1")));
  ASSERT_TRUE(follower.ok());

  ASSERT_TRUE(WaitFor([&] { return (*follower)->serving(); }));
  const Follower::Stats st = (*follower)->stats();
  EXPECT_EQ(st.bootstraps, 1u);
  EXPECT_GE(st.reconnects, 1u);  // the injected drop forced a reconnect
  // The second attempt resumed mid-file instead of refetching: both ends
  // account the skipped prefix.
  EXPECT_GT(st.snapshot_resumed_bytes, 0u);
  EXPECT_GT((*primary)->stats().snapshot_bytes_skipped, 0u);
  EXPECT_EQ(inj.injected_total(), 1u);

  auto want = EngineFingerprint(*eng);
  ASSERT_TRUE(want.ok());
  auto got = (*follower)->Fingerprint();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *want);
}

TEST(ReplTest, LaggedFollowerIsReSnapshottedAfterLogRotation) {
  TempDir dir("lagged");
  // Tiny rotation threshold: any full truncation rotates the segment.
  auto eng = BuildPrimaryEngine(dir.Sub("primary"), 100,
                                /*wal_rotate_blocks=*/4);
  ASSERT_NE(eng, nullptr);
  auto primary = Primary::Start(eng.get(), PrimaryOptions(dir.Sub("primary")));
  ASSERT_TRUE(primary.ok());

  const std::uint16_t port = (*primary)->port();
  Follower::Options fo = FollowerOptions(port, dir.Sub("f1"));
  auto follower = Follower::Start(fo);
  ASSERT_TRUE(follower.ok());
  ASSERT_TRUE(WaitFor([&] {
    return (*follower)->serving() &&
           (*follower)->state() == Follower::State::kStreaming;
  }));

  // Take the primary down, then move it past the partitioned follower:
  // accept updates and checkpoint, which truncates and (at this threshold)
  // rotates every shard's log. The follower's applied LSNs are now below
  // every segment's base — and with the primary offline it cannot
  // reconnect early, so the gap is guaranteed by the time it next dials.
  (*primary)->Stop();
  primary->reset();
  for (const Point& p : MakePoints(100, 80)) {
    ASSERT_TRUE(eng->Insert(p).ok());
  }
  ASSERT_TRUE(eng->Checkpoint().ok());
  Primary::Options po = PrimaryOptions(dir.Sub("primary"));
  po.port = port;
  primary = Primary::Start(eng.get(), po);
  ASSERT_TRUE(primary.ok());

  // On reconnect the primary must detect the gap and re-ship a snapshot
  // (of a freshly exported epoch), not silently skip the missing records.
  auto want = EngineFingerprint(*eng);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(WaitFor([&] {
    auto fp = (*follower)->Fingerprint();
    return fp.ok() && *fp == *want;
  }));
  const Follower::Stats st = (*follower)->stats();
  EXPECT_EQ(st.bootstraps, 2u);
  EXPECT_GE(st.reconnects, 1u);
  // The restarted primary had to export a fresh epoch for the gap.
  EXPECT_GE((*primary)->stats().epochs_exported, 1u);
  EXPECT_EQ(st.apply_errors, 0u);
}

// ---------------------------------------------------------------------------
// Fork-based torture: a real primary PROCESS is SIGKILLed mid-tail-stream;
// every follower must degrade, keep serving, reconnect with backoff once a
// recovered primary returns on the same port, resume from its applied LSNs
// without re-bootstrapping, and converge to byte-identical fingerprints.
// Every update the child acknowledged before dying must survive.

constexpr int kTortureInitial = 120;
constexpr int kTortureAckBase = 1000;

/// Child body: live engine + primary; reports the port and every
/// acknowledged insert over `wfd` ("PORT <p>\n", then "ACK <x>\n" lines).
/// Never returns; runs until SIGKILLed.
[[noreturn]] void TorturePrimaryChild(const std::string& dir, int wfd) {
  EngineOptions eo = BaseEngineOptions();
  eo.storage_dir = dir;
  auto built = ShardedTopkEngine::Build(MakePoints(0, kTortureInitial), eo);
  if (!built.ok()) _exit(10);
  auto eng = std::move(*built);
  // A durable base: Recover() in the parent replays the WAL tail past it.
  if (!eng->Checkpoint().ok()) _exit(11);

  auto primary = Primary::Start(eng.get(), [&] {
    Primary::Options po;
    po.storage_dir = dir;
    po.block_words = eo.em.block_words;
    po.heartbeat_ms = 25;
    po.poll_ms = 2;
    return po;
  }());
  if (!primary.ok()) _exit(12);
  ::dprintf(wfd, "PORT %u\n", (*primary)->port());

  for (int i = kTortureAckBase;; ++i) {
    const Point p{static_cast<double>(i), 10000.0 + i};
    if (!eng->Insert(p).ok()) _exit(13);
    // kWal semantics: the insert is in the shard's log (page cache) the
    // moment Insert returns, so acknowledging it here is exactly the
    // durability contract the parent verifies after the SIGKILL.
    ::dprintf(wfd, "ACK %d\n", i);
    ::usleep(300);
  }
}

TEST(ReplTortureTest, PrimarySigkillMidStreamFailoverAndCatchup) {
  TempDir dir("torture");
  const std::string pdir = dir.Sub("primary");

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipefd[0]);
    TorturePrimaryChild(pdir, pipefd[1]);  // never returns
  }
  ::close(pipefd[1]);

  // Collect the child's reports. The reader thread sees EOF when the
  // child dies; a half-written last line is ignored (never acknowledged).
  FILE* in = ::fdopen(pipefd[0], "r");
  ASSERT_NE(in, nullptr);
  char line[64];
  ASSERT_NE(::fgets(line, sizeof(line), in), nullptr);
  unsigned port = 0;
  ASSERT_EQ(std::sscanf(line, "PORT %u", &port), 1);
  ASSERT_GT(port, 0u);

  std::mutex acks_mu;
  std::vector<int> acks;
  std::thread ack_reader([&] {
    char l[64];
    while (::fgets(l, sizeof(l), in) != nullptr) {
      int x = 0;
      if (std::strlen(l) > 0 && l[std::strlen(l) - 1] == '\n' &&
          std::sscanf(l, "ACK %d", &x) == 1) {
        std::lock_guard<std::mutex> lock(acks_mu);
        acks.push_back(x);
      }
    }
  });

  // Two follower processes' worth of replicas (in-process here; the bench
  // and CI smoke run them as real processes).
  std::vector<std::unique_ptr<Follower>> followers;
  for (int i = 0; i < 2; ++i) {
    auto f = Follower::Start(FollowerOptions(
        static_cast<std::uint16_t>(port), dir.Sub("f" + std::to_string(i))));
    ASSERT_TRUE(f.ok());
    followers.push_back(std::move(*f));
  }
  // Mid-tail-stream: both followers bootstrapped AND applying live records.
  for (auto& f : followers) {
    ASSERT_TRUE(WaitFor([&] {
      return f->serving() && f->stats().tail_records > 0;
    }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Kill -9 the primary process mid-stream.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ack_reader.join();
  ::fclose(in);
  std::vector<int> acked;
  {
    std::lock_guard<std::mutex> lock(acks_mu);
    acked = acks;
  }
  ASSERT_GT(acked.size(), 10u);  // the stream was genuinely live

  // Every follower degrades, reports lag, and keeps serving stale reads.
  std::vector<std::uint64_t> bootstraps_before;
  for (auto& f : followers) {
    ASSERT_TRUE(WaitFor(
        [&] { return f->state() == Follower::State::kDegraded; }));
    auto stale = f->TopK(0, 1e9, 5);
    ASSERT_TRUE(stale.ok());
    EXPECT_EQ(stale->size(), 5u);
    EXPECT_TRUE(WaitFor([&] { return f->stats().lag_ms > 0; }));
    bootstraps_before.push_back(f->stats().bootstraps);
  }

  // Recover the dead primary's directory in this process: the WAL tail
  // replay restores every acknowledged insert.
  EngineOptions eo = BaseEngineOptions();
  eo.storage_dir = pdir;
  engine::RecoveryReport report;
  auto recovered = ShardedTopkEngine::Recover(eo, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GT(report.replayed_records, 0u);
  std::uint64_t acknowledged_lost = 0;
  for (int x : acked) {
    auto got =
        (*recovered)->TopK(static_cast<double>(x), static_cast<double>(x), 1);
    if (!got.ok() || got->size() != 1) ++acknowledged_lost;
  }
  EXPECT_EQ(acknowledged_lost, 0u);

  // Same port, recovered state: followers must catch up via tail resume.
  auto primary2 = Primary::Start(recovered->get(), [&] {
    Primary::Options po = PrimaryOptions(pdir);
    po.port = static_cast<std::uint16_t>(port);
    return po;
  }());
  ASSERT_TRUE(primary2.ok());

  auto want = EngineFingerprint(**recovered);
  ASSERT_TRUE(want.ok());
  for (std::size_t i = 0; i < followers.size(); ++i) {
    ASSERT_TRUE(WaitFor([&] {
      auto fp = followers[i]->Fingerprint();
      return fp.ok() && *fp == *want;
    })) << "follower " << i << " failed to converge";
    const Follower::Stats st = followers[i]->stats();
    EXPECT_EQ(st.bootstraps, bootstraps_before[i])
        << "follower " << i << " re-bootstrapped instead of resuming";
    EXPECT_EQ(st.apply_errors, 0u);
    EXPECT_GE(st.reconnects, 1u);
  }
  // Convergence to the recovered primary implies no acknowledged update
  // was lost on any replica (fingerprints are order-sensitive over the
  // full point set).
  EXPECT_EQ((*primary2)->stats().snapshots_shipped, 0u);
}

}  // namespace
}  // namespace tokra::repl
