// E13 — storage backends: MemBlockDevice vs FileBlockDevice.
//   (a) the simulated I/O counts are backend-independent (counting lives in
//       the BlockDevice base class, so the EM-model cost of a workload is a
//       property of the access sequence, not the medium);
//   (b) wall-clock cost of cold- and warm-cache queries on each backend —
//       the first real-hardware numbers for the Theorem 1 structure;
//   (c) checkpoint + reopen round trip on the file backend.

#include <unistd.h>

#include <array>
#include <filesystem>

#include "bench/common.h"
#include "core/topk_index.h"
#include "em/pager.h"

using namespace tokra;
using namespace tokra::bench;

namespace {

constexpr std::size_t kN = 1u << 15;
constexpr int kQueries = 64;

struct RunResult {
  em::IoStats build, cold, warm;
  double cold_us = 0, warm_us = 0;
};

RunResult RunWorkload(const em::EmOptions& opts) {
  RunResult res;
  em::Pager pager(opts);
  Rng rng(13);
  auto points = RandomPoints(&rng, kN);
  em::IoStats start = pager.stats();
  auto built = core::TopkIndex::Build(&pager, std::move(points));
  TOKRA_CHECK(built.ok());
  auto& idx = *built;
  pager.FlushAll();
  res.build = pager.stats() - start;

  // The same deterministic query mix, cold (cache dropped per query) then
  // warm (shared pool across queries).
  std::vector<std::array<double, 2>> ranges;
  std::vector<std::uint64_t> ks;
  for (int i = 0; i < kQueries; ++i) {
    double a = rng.UniformDouble(0, 1e6), b = rng.UniformDouble(0, 1e6);
    ranges.push_back({std::min(a, b), std::max(a, b)});
    ks.push_back(1 + rng.Uniform(256));
  }
  em::IoStats before = pager.stats();
  res.cold_us = WallMicros([&] {
    for (int i = 0; i < kQueries; ++i) {
      pager.DropCache();
      Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
    }
  });
  res.cold = pager.stats() - before;
  before = pager.stats();
  res.warm_us = WallMicros([&] {
    for (int i = 0; i < kQueries; ++i) {
      Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
    }
  });
  res.warm = pager.stats() - before;
  return res;
}

}  // namespace

int main() {
  InitJson("e13_backends");
  std::printf("# E13: storage backends — mem vs file\n");

  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("tokra-e13-" + std::to_string(::getpid()));
  fs::create_directories(dir);

  em::EmOptions mem_opts{.block_words = 256, .pool_frames = 64};
  em::EmOptions file_opts{.block_words = 256,
                          .pool_frames = 64,
                          .backend = em::Backend::kFile,
                          .path = (dir / "e13.blk").string()};
  RunResult mem = RunWorkload(mem_opts);
  RunResult file = RunWorkload(file_opts);

  Header("E13a: I/O parity (n=2^15, B=256, 64 queries)",
         {"backend", "build I/Os", "cold query I/Os", "warm query I/Os"});
  Row({"mem", U(mem.build.TotalIos()), U(mem.cold.TotalIos()),
       U(mem.warm.TotalIos())});
  Row({"file", U(file.build.TotalIos()), U(file.cold.TotalIos()),
       U(file.warm.TotalIos())});
  TOKRA_CHECK(mem.build.TotalIos() == file.build.TotalIos());
  TOKRA_CHECK(mem.cold.TotalIos() == file.cold.TotalIos());
  TOKRA_CHECK(mem.warm.TotalIos() == file.warm.TotalIos());

  Header("E13b: wall time per query (us, avg of 64)",
         {"backend", "cold cache", "warm cache"});
  Row({"mem", D(mem.cold_us / kQueries), D(mem.warm_us / kQueries)});
  Row({"file", D(file.cold_us / kQueries), D(file.warm_us / kQueries)});

  RecordIoStats("mem build", mem.build);
  RecordIoStats("mem cold queries", mem.cold);
  RecordIoStats("mem warm queries", mem.warm);
  RecordIoStats("file build", file.build);
  RecordIoStats("file cold queries", file.cold);
  RecordIoStats("file warm queries", file.warm);

  // E13c: checkpoint + reopen on the file backend; answers must match.
  {
    em::Pager pager(file_opts);
    Rng rng(14);
    auto built = core::TopkIndex::Build(&pager, RandomPoints(&rng, kN));
    TOKRA_CHECK(built.ok());
    auto probe = (*built)->TopK(1e5, 9e5, 100);
    Must(probe.status());
    em::IoStats before = pager.stats();
    double ckpt_us = WallMicros([&] { Must((*built)->Checkpoint()); });
    em::IoStats ckpt_io = pager.stats() - before;

    auto reopened = em::Pager::Open(file_opts);
    Must(reopened.status());
    StatusOr<std::unique_ptr<core::TopkIndex>> opened =
        Status::Internal("unset");
    double open_us =
        WallMicros([&] { opened = core::TopkIndex::Open(reopened->get()); });
    Must(opened.status());
    auto probe2 = (*opened)->TopK(1e5, 9e5, 100);
    Must(probe2.status());
    TOKRA_CHECK(*probe == *probe2);

    Header("E13c: checkpoint / reopen (n=2^15)",
           {"checkpoint I/Os", "checkpoint ms", "open ms"});
    Row({U(ckpt_io.TotalIos()), D(ckpt_us / 1000.0), D(open_us / 1000.0)});
    RecordIoStats("checkpoint", ckpt_io);
  }

  fs::remove_all(dir);
  std::printf(
      "\nShape check: E13a rows identical; E13b file-cold slowest; E13c "
      "reopen answers matched.\n");
  return 0;
}
