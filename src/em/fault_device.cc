#include "em/fault_device.h"

#include <cstring>

namespace tokra::em {

void FaultInjectingBlockDevice::ReadThrough(BlockId id, word_t* dst) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id == shadow_id_) {
      std::memcpy(dst, shadow_.data(), BlockBytes());
      return;
    }
  }
  inner_->Read(id, dst);
}

void FaultInjectingBlockDevice::WriteThrough(BlockId id, const word_t* src) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id == shadow_id_) {
      // The shadow tracks the block's intended bytes; the backend gets the
      // (full) rewrite too, like any other write.
      std::memcpy(shadow_.data(), src, BlockBytes());
    }
  }
  inner_->Write(id, src);
}

void FaultInjectingBlockDevice::DoRead(BlockId id, word_t* dst) {
  if (auto kind = injector_->OnRead()) {
    ReadThrough(id, dst);
    if (*kind == FaultInjector::Kind::kBitFlip) {
      const std::uint64_t bit =
          injector_->seed() % (std::uint64_t{block_words()} * 64);
      dst[bit / 64] ^= word_t{1} << (bit % 64);
    } else {
      RecordIoError(Status::IoError("injected read fault"));
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++injected_;
    return;
  }
  ReadThrough(id, dst);
}

void FaultInjectingBlockDevice::DoWrite(BlockId id, const word_t* src) {
  if (auto kind = injector_->OnWrite()) {
    if (*kind == FaultInjector::Kind::kTornWrite) {
      // Persist a seeded prefix of the new bytes over the old block tail —
      // what a torn sector leaves on the medium — and shadow the intended
      // bytes for the live process.
      const std::uint32_t words = block_words();
      const std::uint32_t cut = static_cast<std::uint32_t>(
          1 + injector_->seed() % (words > 1 ? words - 1 : 1));
      std::vector<word_t> torn(words, 0);
      if (id < inner_->NumBlocks()) inner_->Read(id, torn.data());
      std::memcpy(torn.data(), src, std::size_t{cut} * sizeof(word_t));
      inner_->Write(id, torn.data());
      std::lock_guard<std::mutex> lock(mu_);
      shadow_id_ = id;
      shadow_.assign(src, src + words);
      ++injected_;
      RecordIoError(Status::IoError("injected torn write"));
      return;
    }
    WriteThrough(id, src);
    RecordIoError(Status::IoError("injected write fault"));
    std::lock_guard<std::mutex> lock(mu_);
    ++injected_;
    return;
  }
  WriteThrough(id, src);
}

void FaultInjectingBlockDevice::DoReadRun(BlockId first, std::uint32_t count,
                                          word_t* dst) {
  // Per-block dispatch: every member is one injector op, so a fault index
  // can land inside a fused run. The backend's run fusion is a throughput
  // optimization this test wrapper does not need.
  for (std::uint32_t i = 0; i < count; ++i) {
    DoRead(first + i, dst + std::size_t{i} * block_words());
  }
}

void FaultInjectingBlockDevice::DoWriteRun(BlockId first, std::uint32_t count,
                                           const word_t* src) {
  for (std::uint32_t i = 0; i < count; ++i) {
    DoWrite(first + i, src + std::size_t{i} * block_words());
  }
}

void FaultInjectingBlockDevice::DoReadBatch(std::span<const IoRequest> reqs) {
  for (const IoRequest& r : reqs) DoRead(r.id, r.buf);
}

void FaultInjectingBlockDevice::DoWriteBatch(std::span<const IoRequest> reqs) {
  for (const IoRequest& r : reqs) DoWrite(r.id, r.buf);
}

const word_t* FaultInjectingBlockDevice::DoBorrowRead(BlockId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id == shadow_id_) return shadow_.data();
  }
  if (auto kind = injector_->OnRead()) {
    if (*kind == FaultInjector::Kind::kBitFlip) {
      // A borrowed pointer into the real mapping cannot be corrupted in
      // place; shadow a flipped copy instead.
      std::vector<word_t> copy(block_words(), 0);
      inner_->Read(id, copy.data());
      const std::uint64_t bit =
          injector_->seed() % (std::uint64_t{block_words()} * 64);
      copy[bit / 64] ^= word_t{1} << (bit % 64);
      std::lock_guard<std::mutex> lock(mu_);
      shadow_id_ = id;
      shadow_ = std::move(copy);
      ++injected_;
      return shadow_.data();
    }
    const word_t* p = inner_->TryBorrowRead(id);
    RecordIoError(Status::IoError("injected read fault"));
    std::lock_guard<std::mutex> lock(mu_);
    ++injected_;
    return p;  // true bytes (or null -> caller falls back to the copy path)
  }
  return inner_->TryBorrowRead(id);
}

void FaultInjectingBlockDevice::EnsureCapacity(BlockId blocks) {
  if (blocks <= inner_->NumBlocks()) return;
  if (injector_->OnGrow()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++injected_;
    }
    RecordIoError(Status::ResourceExhausted("injected grow fault (ENOSPC)"));
    // The physical growth still proceeds (see the file-comment model): the
    // failure is logical-only, so the live structure stays coherent while
    // kResourceExhausted propagates; real refused growth is covered by the
    // RLIMIT_FSIZE test leg.
  }
  inner_->EnsureCapacity(blocks);
}

void FaultInjectingBlockDevice::Sync() {
  // fsyncgate applies to the wrapper's own sticky state too: an injected
  // sync fault latches the error HERE, not on the (healthy) inner device,
  // so without this gate a retried Sync() would reach the inner fsync and
  // falsely acknowledge a barrier the injected failure already dropped.
  if (io_failed()) return;
  if (injector_->OnSync()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++injected_;
    }
    RecordIoError(Status::IoError("injected sync fault"));
    return;  // the barrier never happens; sticky state is the fsyncgate
  }
  inner_->Sync();
  CountSyncIfInnerAdvanced();
}

void FaultInjectingBlockDevice::CountSyncIfInnerAdvanced() {
  std::lock_guard<std::mutex> lock(mu_);
  while (mirrored_syncs_ < inner_->syncs()) {
    ++mirrored_syncs_;
    CountSync();
  }
}

}  // namespace tokra::em
