// Tests for the Sheng-Tao'12-style baseline selector.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "em/pager.h"
#include "internal/naive.h"
#include "st12/selector.h"
#include "util/random.h"

namespace tokra::st12 {
namespace {

em::EmOptions Opts(std::uint32_t bw = 128) {
  return em::EmOptions{.block_words = bw, .pool_frames = 32};
}

std::vector<Point> RandomPoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, 1000.0);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

TEST(St12Test, EmptyAndErrors) {
  em::Pager pager(Opts());
  ShengTaoSelector s = ShengTaoSelector::Build(&pager, {});
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.CountInRange(0, 1), 0u);
  EXPECT_FALSE(s.SelectApprox(0, 1, 1).ok());
  EXPECT_EQ(s.Delete({1, 1}).code(), StatusCode::kNotFound);
  s.CheckInvariants();
}

TEST(St12Test, CountInRangeExact) {
  em::Pager pager(Opts());
  Rng rng(3);
  auto pts = RandomPoints(&rng, 5000);
  ShengTaoSelector s = ShengTaoSelector::Build(&pager, pts);
  s.CheckInvariants();
  for (int probe = 0; probe < 40; ++probe) {
    double a = rng.UniformDouble(-10, 1010), b = rng.UniformDouble(-10, 1010);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    EXPECT_EQ(s.CountInRange(x1, x2), internal::NaiveRangeCount(pts, x1, x2));
  }
}

struct StCase {
  std::size_t n;
  int updates;
  std::uint64_t seed;
};

class St12PropertyTest : public ::testing::TestWithParam<StCase> {};

TEST_P(St12PropertyTest, ApproximationHolds) {
  const auto& c = GetParam();
  em::Pager pager(Opts());
  Rng rng(c.seed);
  std::vector<Point> live = RandomPoints(&rng, c.n);
  ShengTaoSelector s = ShengTaoSelector::Build(&pager, live);

  std::set<double> used_x, used_s;
  for (const Point& p : live) {
    used_x.insert(p.x);
    used_s.insert(p.score);
  }
  for (int op = 0; op < c.updates; ++op) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      double x, sc;
      do {
        x = rng.UniformDouble(0, 1000);
      } while (!used_x.insert(x).second);
      do {
        sc = rng.UniformDouble(0, 1);
      } while (!used_s.insert(sc).second);
      ASSERT_TRUE(s.Insert({x, sc}).ok());
      live.push_back({x, sc});
    } else {
      std::size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(s.Delete(live[pick]).ok());
      live.erase(live.begin() + pick);
    }
  }
  s.CheckInvariants();
  EXPECT_EQ(s.size(), live.size());

  for (int probe = 0; probe < 60; ++probe) {
    double a = rng.UniformDouble(-10, 1010), b = rng.UniformDouble(-10, 1010);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    std::uint64_t total = internal::NaiveRangeCount(live, x1, x2);
    if (total == 0) continue;
    std::uint64_t k = 1 + rng.Uniform(total);
    auto res = s.SelectApprox(x1, x2, k);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    std::uint64_t rank =
        internal::NaiveScoreRankInRange(live, x1, x2, *res);
    EXPECT_GE(rank, k);
    EXPECT_LT(rank, ShengTaoSelector::kApproxFactor * k);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, St12PropertyTest,
                         ::testing::Values(StCase{100, 200, 1},
                                           StCase{2000, 500, 2},
                                           StCase{8000, 800, 3},
                                           StCase{500, 2000, 4}),
                         [](const ::testing::TestParamInfo<StCase>& info) {
                           return "n" + std::to_string(info.param.n) + "u" +
                                  std::to_string(info.param.updates);
                         });

TEST(St12Test, DestroyReleasesBlocks) {
  em::Pager pager(Opts());
  std::uint64_t base = pager.BlocksInUse();
  Rng rng(5);
  ShengTaoSelector s = ShengTaoSelector::Build(&pager, RandomPoints(&rng, 2000));
  s.DestroyAll();
  EXPECT_EQ(pager.BlocksInUse(), base);
}

TEST(St12Test, UpdateCostExceedsSingleLogShape) {
  // The baseline's per-update I/Os include Theta(1) recursive selections per
  // path node — the lg^2 mechanism. Sanity: updates cost several times a
  // plain root-to-leaf descent.
  em::Pager pager(Opts(256));
  Rng rng(9);
  auto pts = RandomPoints(&rng, 30000);
  ShengTaoSelector s = ShengTaoSelector::Build(&pager, pts);
  auto fresh = RandomPoints(&rng, 300);
  em::IoStats before = pager.stats();
  std::uint64_t n_ok = 0;
  for (const Point& p : fresh) {
    if (s.Insert(p).ok()) ++n_ok;
  }
  double per_op =
      static_cast<double>((pager.stats() - before).TotalIos()) / n_ok;
  EXPECT_GT(per_op, 6.0);  // well above a bare descent of ~3 nodes
}

}  // namespace
}  // namespace tokra::st12
