#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace tokra::obs {

std::uint64_t NowUs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint32_t ThreadSlot() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target record, 1-based: the smallest r with r >= q*count.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] < rank) {
      cum += buckets[b];
      continue;
    }
    // The rank-th record lies in bucket b: interpolate linearly across the
    // bucket's value range by the rank's position inside the bucket.
    const double lo = static_cast<double>(BucketLo(b));
    const double hi = static_cast<double>(BucketHi(b));
    const double frac = static_cast<double>(rank - cum) /
                        static_cast<double>(buckets[b]);
    double v = lo + (hi - lo) * frac;
    // The exact max bounds the top of the distribution tighter than the
    // last bucket's upper edge.
    return std::min(v, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  for (const Shard& sh : shards_) {
    for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = sh.buckets[b].load(std::memory_order_relaxed);
      s.buckets[b] += n;
      s.count += n;
    }
    s.sum += sh.sum.load(std::memory_order_relaxed);
  }
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    Kind kind, const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      TOKRA_CHECK(e->kind == kind && "metric re-registered as another kind");
      return e.get();
    }
  }
  auto e = std::make_unique<Entry>();
  e->kind = kind;
  e->name = name;
  e->labels = labels;
  switch (kind) {
    case Kind::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      e->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(e));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  return FindOrCreate(Kind::kCounter, name, labels)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  return FindOrCreate(Kind::kGauge, name, labels)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels) {
  return FindOrCreate(Kind::kHistogram, name, labels)->histogram.get();
}

namespace {

/// `name{labels} value` with the braces omitted when there are no labels.
void AppendLine(std::string* out, const std::string& name,
                const std::string& labels, const std::string& value) {
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += labels;
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Merges a quantile label into an existing label body.
std::string WithQuantile(const std::string& labels, const char* q) {
  std::string out = labels;
  if (!out.empty()) out += ',';
  out += "quantile=\"";
  out += q;
  out += '"';
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpMetrics() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out;
  std::string last_typed;  // one TYPE comment per metric family
  for (const auto& e : entries_) {
    const char* type = e->kind == Kind::kCounter   ? "counter"
                       : e->kind == Kind::kGauge   ? "gauge"
                                                   : "summary";
    if (e->name != last_typed) {
      out += "# TYPE " + e->name + " " + type + "\n";
      last_typed = e->name;
    }
    switch (e->kind) {
      case Kind::kCounter:
        AppendLine(&out, e->name, e->labels,
                   std::to_string(e->counter->Value()));
        break;
      case Kind::kGauge:
        AppendLine(&out, e->name, e->labels,
                   std::to_string(e->gauge->Value()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = e->histogram->Snapshot();
        AppendLine(&out, e->name, WithQuantile(e->labels, "0.5"),
                   FormatDouble(s.Percentile(0.5)));
        AppendLine(&out, e->name, WithQuantile(e->labels, "0.95"),
                   FormatDouble(s.Percentile(0.95)));
        AppendLine(&out, e->name, WithQuantile(e->labels, "0.99"),
                   FormatDouble(s.Percentile(0.99)));
        AppendLine(&out, e->name + "_max", e->labels, std::to_string(s.max));
        AppendLine(&out, e->name + "_sum", e->labels, std::to_string(s.sum));
        AppendLine(&out, e->name + "_count", e->labels,
                   std::to_string(s.count));
        break;
      }
    }
  }
  return out;
}

}  // namespace tokra::obs
