// The Lemma 1 structure: an external priority search tree with pilot sets
// on a weight-balanced base tree (Section 2 of the paper).
//
//   space O(n/B) blocks; top-k query O(lg n + k/B) I/Os (log base 2);
//   insertion/deletion O(lg_B n) I/Os amortized.
//
// The structure answers top-k queries *directly* (no approximate-selection
// reduction); Theorem 1 uses it for the k >= B lg n regime, where
// O(lg n + k/B) = O(k/B) is optimal.
//
// Key objects (paper -> here):
//   base tree T (WBB, leaf cap B, branching B)     -> base nodes, node.h
//   secondary binary tree T(u) / big tree script-T -> TNodeRec arrays
//   pilot(v), B/2 <= |pilot| <= 2B, representative -> pilot blocks + rec
//   representative blocks of u                     -> the TNodeRec array
//   heap concatenation + Frederickson selection    -> select::SelectTop over
//                                                     a pager-charged view
//   insertion/deletion tokens (Lemma 3)            -> per-record counters
//                                                     checked when
//                                                     TOKRA_PARANOID is on

#ifndef TOKRA_PILOT_PILOT_PST_H_
#define TOKRA_PILOT_PILOT_PST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "em/pager.h"
#include "pilot/node.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::pilot {

/// Per-query instrumentation for experiments E3/E7/E10.
struct QueryStats {
  std::uint64_t q1_points = 0;       ///< path pilot points (Q1)
  std::uint64_t q2_points = 0;       ///< selected-subtree pilot points (Q2)
  std::uint64_t q3_points = 0;       ///< sibling/children pilot points (Q3)
  std::uint64_t reps_selected = 0;   ///< t = phi (lg n + k/B) realized
  std::uint64_t heap_nodes_visited = 0;
  std::uint64_t comparisons = 0;     ///< CPU-side (free in the model)
};

class PilotPst {
 public:
  struct Options {
    /// phi of Lemma 2; 16 makes the candidate set provably sufficient.
    std::uint32_t phi = 16;
    /// Base-tree branching parameter a (0 = derive max(4, B/16)).
    std::uint32_t branch = 0;
    /// Leaf capacity b (0 = derive B).
    std::uint32_t leaf_cap = 0;
  };

  /// Creates an empty structure.
  static PilotPst Create(em::Pager* pager, Options options);
  static PilotPst Create(em::Pager* pager) { return Create(pager, Options()); }

  /// Reopens from a persisted meta block.
  static PilotPst Open(em::Pager* pager, em::BlockId meta);

  /// Bulk-builds from arbitrary points (distinct x, distinct scores).
  /// O((n/B) lg n) I/Os.
  static PilotPst Build(em::Pager* pager, std::vector<Point> points,
                        Options options);
  static PilotPst Build(em::Pager* pager, std::vector<Point> points) {
    return Build(pager, std::move(points), Options());
  }

  em::BlockId meta_block() const { return meta_; }
  std::uint64_t size() const;  ///< live points

  /// Inserts p. O(lg_B n) I/Os amortized.
  Status Insert(const Point& p);

  /// Deletes p (x and score must both match the stored point).
  /// O(lg_B n) I/Os amortized.
  Status Delete(const Point& p);

  /// The k highest-scored points with x in [x1, x2], score-descending.
  /// Returns all of them if fewer than k. O(lg n + k/B) I/Os.
  StatusOr<std::vector<Point>> TopK(double x1, double x2, std::uint64_t k,
                                    QueryStats* stats = nullptr) const;

  /// Appends every point in [x1, x2] x [y, +inf). O(lg n + t/B) I/Os via
  /// max-score pruning: a visited covered node either reports its whole
  /// pilot set (>= B/2 points, charged to output) or terminates its branch.
  /// This serves as the Theorem 1 reduction's 3-sided reporting structure
  /// (substituting the Arge-Samoladas-Vitter PST; see DESIGN.md).
  Status Report3Sided(double x1, double x2, double y,
                      std::vector<Point>* out) const;

  /// Frees all blocks.
  void DestroyAll();

  /// Validates every structural invariant (weights, slab order, heap order
  /// of pilot sets, size rules, reachability of all live points). O(n).
  void CheckInvariants() const;

 private:
  friend class PilotHeapView;

  PilotPst(em::Pager* pager, em::BlockId meta) : pager_(pager), meta_(meta) {}

  // ---- parameters ----
  std::uint32_t B() const { return pager_->B(); }
  std::uint64_t MetaGet(std::size_t w) const;
  void MetaSet(std::size_t w, std::uint64_t v);
  std::uint32_t branch() const;    // a
  std::uint32_t leaf_cap() const;  // b
  /// Pilot fill target / size floor and ceiling.
  std::uint32_t PilotTarget() const { return B(); }
  std::uint32_t PilotMin() const { return B() / 2; }
  std::uint32_t PilotMax() const { return 2 * B(); }
  /// Weight ceiling of a level-i node: b * a^i.
  std::uint64_t WeightCap(std::uint32_t level) const;

  // ---- record I/O ----
  std::vector<TNodeRec> LoadTNodes(em::BlockId base) const;
  TNodeRec LoadTNode(const TRef& t) const;
  void StoreTNode(const TRef& t, const TNodeRec& rec);
  std::vector<Point> PilotRead(const TNodeRec& rec) const;
  /// Batch-loads the occupied pilot blocks of every record into the pool as
  /// one device submission, so the PilotReads that follow hit the cache —
  /// this is what turns a query's k/B pilot-leaf reads into one round trip.
  /// Takes the (ref, record) pairs the query paths already hold.
  void PrefetchPilots(std::span<const std::pair<TRef, TNodeRec>> recs) const;
  /// Rewrites the pilot set of `t` and refreshes count/rep in its record.
  void PilotWrite(const TRef& t, TNodeRec* rec, const std::vector<Point>& pts);
  TRef RootTRef() const;
  /// Root T-node of the subtree hanging below slab record `rec`.
  TRef SlabChild(const TNodeRec& rec) const;

  // ---- construction ----
  em::BlockId NewLeaf(em::BlockId parent, std::uint64_t parent_slab,
                      const std::vector<double>& xs);
  em::BlockId NewInternal(em::BlockId parent, std::uint64_t parent_slab,
                          std::uint32_t level,
                          const std::vector<em::BlockId>& children,
                          const std::vector<double>& lo,
                          const std::vector<double>& hi,
                          const std::vector<std::uint64_t>& weights);
  /// Builds a balanced base subtree over sorted points; returns its root.
  /// Does not fill pilots.
  em::BlockId BuildSubtree(const std::vector<Point>& by_x, std::uint32_t level,
                           em::BlockId parent, std::uint64_t parent_slab,
                           double lo, double hi);
  /// Distributes points (sorted by score desc) into pilots from `t` down.
  void FillPilots(const TRef& t, std::vector<Point> by_score);
  void FreeSubtree(em::BlockId base);
  /// Collects all live points in the T-subtree rooted at `t`.
  void CollectPilots(const TRef& t, std::vector<Point>* out) const;

  // ---- updates ----
  void PushDown(TRef t, std::vector<Point> carry);
  /// Remedies an underflow at `t` per Section 2 (up to two pull-ups,
  /// recursively fixing children between them).
  void FixUnderflow(TRef t);
  /// One pull-up; returns true if it was draining.
  bool PullUp(const TRef& t, TNodeRec* rec);
  bool Underflows(const TNodeRec& rec, const TRef& t) const;
  /// Inserts x into the base leaf on the descent path; returns the path of
  /// base ids visited (root first) for rebalancing.
  void Rebalance(const std::vector<em::BlockId>& path);
  void RebuildSubtree(em::BlockId base);
  void GlobalRebuild();

  // ---- validation ----
  void CheckBase(em::BlockId base, std::uint32_t expect_level, double lo,
                 double hi, std::uint64_t* weight, std::uint64_t* live) const;
  void CheckT(const TRef& t, double bound, double lo, double hi,
              std::uint64_t* live) const;

  em::Pager* pager_;
  em::BlockId meta_;
};

}  // namespace tokra::pilot

#endif  // TOKRA_PILOT_PILOT_PST_H_
