// The compressed prefix set of Lemma 8 (Section 4.4).
//
// For each set G_i of an (f,l)-group, the prefix P_i is its sqrt(B)*lg_B(fl)
// largest elements. We store, for every i and every local rank
// r in [1, |P_i|], the *global rank in G* of the element with local rank r in
// G_i. The whole table fits in O(1) blocks, so after loading it one can read
// any (i, r) -> global-rank mapping for free, which is exactly what Lemma 8
// provides ("in one I/O, we can read into memory a single block, from which
// we can obtain for free the global rank of the element with local rank r").
//
// Indexing by slot position r makes the paper's (global rank, local rank)
// pair encoding implicit: the local rank IS the slot index.

#ifndef TOKRA_FLGROUP_PREFIX_SET_H_
#define TOKRA_FLGROUP_PREFIX_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "em/options.h"
#include "util/bits.h"
#include "util/check.h"

namespace tokra::flgroup {

class PrefixSet {
 public:
  /// The paper's prefix length: sqrt(B) * lg_B(fl).
  static std::uint32_t PrefixCap(std::uint32_t block_words, std::uint64_t fl) {
    std::uint32_t cap = static_cast<std::uint32_t>(
        FloorSqrt(block_words) * LogB(block_words, fl));
    return cap < 1 ? 1 : cap;
  }

  PrefixSet(std::uint32_t f, std::uint32_t p_cap)
      : f_(f), p_cap_(p_cap), sizes_(f, 0),
        ranks_(static_cast<std::size_t>(f) * p_cap, 0) {
    TOKRA_CHECK(f >= 1 && p_cap >= 1);
  }

  std::uint32_t f() const { return f_; }
  std::uint32_t p_cap() const { return p_cap_; }

  /// |G_i| (mirrored here so the class is self-contained).
  std::uint32_t set_size(std::uint32_t i) const { return sizes_[i]; }

  /// Number of live prefix slots of set i: min(|G_i|, p_cap).
  std::uint32_t live(std::uint32_t i) const {
    return std::min(sizes_[i], p_cap_);
  }

  /// Global rank in G of the element with local rank r in G_i, r in
  /// [1, live(i)]. Free once the structure is in memory.
  std::uint32_t global_rank(std::uint32_t i, std::uint32_t r) const {
    TOKRA_DCHECK(r >= 1 && r <= live(i));
    return ranks_[Idx(i, r)];
  }

  void SetSlot(std::uint32_t i, std::uint32_t r, std::uint32_t g) {
    TOKRA_DCHECK(r >= 1 && r <= live(i));
    ranks_[Idx(i, r)] = g;
  }

  /// Rank bookkeeping for inserting into G_i an element whose post-insert
  /// global rank is g_new and post-insert local rank is r_new.
  void ApplyInsert(std::uint32_t i, std::uint32_t g_new, std::uint32_t r_new);

  /// Rank bookkeeping for deleting from G_i the element with current global
  /// rank g_old and local rank r_old. Returns true when the caller must
  /// backfill the last slot (the element with local rank p_cap) from the
  /// B-trees — the one value Lemma 8 cannot infer locally.
  bool ApplyDelete(std::uint32_t i, std::uint32_t g_old, std::uint32_t r_old);

  // --- serialization: one size word + p_cap rank words per set ---------
  static std::uint64_t WordCount(std::uint32_t f, std::uint32_t p_cap) {
    return static_cast<std::uint64_t>(f) * (1 + p_cap);
  }
  std::uint64_t WordCount() const { return WordCount(f_, p_cap_); }
  void Serialize(std::span<em::word_t> out) const;
  static PrefixSet Deserialize(std::uint32_t f, std::uint32_t p_cap,
                               std::span<const em::word_t> in);

  /// Test helper: slots hold strictly increasing global ranks per set.
  void CheckWellFormed() const;

 private:
  std::size_t Idx(std::uint32_t i, std::uint32_t r) const {
    return static_cast<std::size_t>(i) * p_cap_ + (r - 1);
  }

  std::uint32_t f_;
  std::uint32_t p_cap_;
  std::vector<std::uint32_t> sizes_;
  std::vector<std::uint32_t> ranks_;
};

}  // namespace tokra::flgroup

#endif  // TOKRA_FLGROUP_PREFIX_SET_H_
