// Write-ahead log unit tests: frame round trips, torn-tail detection,
// truncation/rotation, the reader seam, and the pager's pre-image/undo
// integration (crash between checkpoints rolls back to the exact
// checkpoint).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "em/pager.h"
#include "em/wal.h"
#include "em/wal_tail.h"

namespace tokra::em {
namespace {

namespace fs = std::filesystem;

/// A unique temp directory for one test; removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tokra-wal-" + tag + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::vector<word_t> Payload(std::uint64_t tag, std::size_t n) {
  std::vector<word_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = tag * 1000 + i;
  return p;
}

/// Flips one byte of `path` at `offset`.
void FlipByte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c ^= 0x40;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(WalTest, AppendReopenRoundTrip) {
  TempDir dir("roundtrip");
  WriteAheadLog::Options o;
  o.path = dir.File("seg.wal");
  o.block_words = 16;
  std::vector<std::vector<word_t>> payloads;
  {
    auto log = WriteAheadLog::Open(o);
    ASSERT_TRUE(log.ok());
    // Mixed sizes: sub-block, exactly one block of payload, multi-block.
    payloads.push_back(Payload(1, 3));
    payloads.push_back(Payload(2, 16));
    payloads.push_back(Payload(3, 45));
    payloads.push_back({});  // empty payload is legal
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ((*log)->Append(WriteAheadLog::RecordType::kLogical,
                               payloads[i]),
                i + 1);
      (*log)->Sync();
    }
    EXPECT_EQ((*log)->head_lsn(), 4u);
    EXPECT_EQ((*log)->appends(), 4u);
  }  // destroyed without any flush call: appends are already on the file

  auto log = WriteAheadLog::Open(o);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->head_lsn(), 4u);
  ASSERT_EQ((*log)->records().size(), payloads.size());
  std::vector<word_t> got;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const auto& rec = (*log)->records()[i];
    EXPECT_EQ(rec.lsn, i + 1);
    EXPECT_EQ(rec.type, WriteAheadLog::RecordType::kLogical);
    ASSERT_TRUE((*log)->ReadPayload(rec, &got).ok());
    EXPECT_EQ(got, payloads[i]);
  }
  // The reopened log appends past the recovered head.
  EXPECT_EQ((*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(5, 2)),
            5u);
}

TEST(WalTest, TornTailIsDroppedAndOverwritten) {
  TempDir dir("torn");
  WriteAheadLog::Options o;
  o.path = dir.File("seg.wal");
  o.block_words = 16;
  WriteAheadLog::Record last;
  {
    auto log = WriteAheadLog::Open(o);
    ASSERT_TRUE(log.ok());
    for (int i = 1; i <= 3; ++i) {
      (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(i, 20));
    }
    last = (*log)->records().back();
  }
  // A byte flip inside the last frame's payload breaks its CRC.
  FlipByte(o.path, (last.first_block * o.block_words + 6) * sizeof(word_t));
  {
    auto log = WriteAheadLog::Open(o);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ((*log)->head_lsn(), 2u);  // prefix kept, torn record dropped
    ASSERT_EQ((*log)->records().size(), 2u);
    // The next append reuses the torn record's LSN and space.
    EXPECT_EQ((*log)->Append(WriteAheadLog::RecordType::kLogical,
                             Payload(9, 4)),
              3u);
  }
  auto log = WriteAheadLog::Open(o);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ((*log)->records().size(), 3u);
  std::vector<word_t> got;
  ASSERT_TRUE((*log)->ReadPayload((*log)->records()[2], &got).ok());
  EXPECT_EQ(got, Payload(9, 4));
}

TEST(WalTest, TruncateMidFrameDropsOnlyTheTail) {
  TempDir dir("shear");
  WriteAheadLog::Options o;
  o.path = dir.File("seg.wal");
  o.block_words = 16;
  {
    auto log = WriteAheadLog::Open(o);
    ASSERT_TRUE(log.ok());
    for (int i = 1; i <= 3; ++i) {
      (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(i, 40));
    }
  }
  // Shear the file mid-way through the last (3-block) frame — the torn
  // write a power cut leaves behind.
  const auto bytes = fs::file_size(o.path);
  fs::resize_file(o.path, bytes - o.block_words * sizeof(word_t));
  auto log = WriteAheadLog::Open(o);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->head_lsn(), 2u);
  EXPECT_EQ((*log)->records().size(), 2u);
}

TEST(WalTest, TruncateRotatesOnceObsoleteAndBoundsTheFile) {
  TempDir dir("rotate");
  WriteAheadLog::Options o;
  o.path = dir.File("seg.wal");
  o.block_words = 16;
  o.rotate_blocks = 4;
  auto log = WriteAheadLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (int i = 1; i <= 8; ++i) {
    (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(i, 20));
  }
  const std::uint64_t head = (*log)->head_lsn();
  ASSERT_GT((*log)->file_blocks(), o.rotate_blocks);
  // Partial truncation keeps live records (and therefore the file).
  ASSERT_TRUE((*log)->Truncate(head - 1).ok());
  EXPECT_EQ((*log)->records().size(), 1u);
  ASSERT_GT((*log)->file_blocks(), o.rotate_blocks);
  // Full truncation rotates: fresh segment, continued LSN space.
  ASSERT_TRUE((*log)->Truncate(head).ok());
  EXPECT_EQ((*log)->records().size(), 0u);
  EXPECT_EQ((*log)->file_blocks(), 1u);  // header only
  EXPECT_EQ((*log)->base_lsn(), head + 1);
  EXPECT_EQ((*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(9, 2)),
            head + 1);
  // The rotated segment reopens with the advanced base.
  log->reset();
  auto reopened = WriteAheadLog::Open(o);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->base_lsn(), head + 1);
  EXPECT_EQ((*reopened)->head_lsn(), head + 1);
}

TEST(WalTest, ReaderIteratesTailAfterSeek) {
  TempDir dir("reader");
  WriteAheadLog::Options o;
  o.path = dir.File("seg.wal");
  o.block_words = 16;
  {
    auto log = WriteAheadLog::Open(o);
    ASSERT_TRUE(log.ok());
    for (int i = 1; i <= 5; ++i) {
      (*log)->Append(i % 2 == 0 ? WriteAheadLog::RecordType::kPreImage
                                : WriteAheadLog::RecordType::kLogical,
                     Payload(i, 17));
    }
  }
  auto reader = WalReader::Open(o.path, o.block_words);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->head_lsn(), 5u);
  (*reader)->Seek(3);
  WriteAheadLog::Record rec;
  std::vector<word_t> payload;
  std::vector<std::uint64_t> lsns;
  while ((*reader)->Next(&rec, &payload)) lsns.push_back(rec.lsn);
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{4, 5}));
  // Opening a missing log is a NotFound, never a create.
  EXPECT_EQ(WalReader::Open(dir.File("absent.wal"), 16).status().code(),
            StatusCode::kNotFound);
}

// The pager integration: a crash between checkpoints leaves the home file a
// mix of checkpoint-time and newer blocks; opening with the log attached
// must roll it back to byte-exactly the checkpoint.
TEST(WalPagerTest, OpenUndoesTornInterCheckpointWrites) {
  TempDir dir("undo");
  EmOptions opts{.block_words = 64, .pool_frames = 4};
  opts.backend = Backend::kFile;
  opts.path = dir.File("data.blk");
  opts.wal_path = dir.File("data.wal");
  constexpr int kBlocks = 12;
  std::vector<BlockId> ids;
  {
    Pager pager(opts);
    for (int i = 0; i < kBlocks; ++i) {
      ids.push_back(pager.Allocate());
      PageRef p = pager.Create(ids.back());
      p.Set(0, 1000 + i);
    }
    ASSERT_TRUE(pager.Checkpoint({}).ok());
    // Mutate every block and force the mutations onto the home file; the
    // 4-frame pool also exercises the eviction write-back path, not just
    // FlushAll.
    for (int i = 0; i < kBlocks; ++i) {
      PageRef p = pager.Fetch(ids[i]);
      p.Set(0, 2000 + i);
    }
    pager.FlushAll();
    // Every overwritten checkpoint-live block logged exactly one pre-image.
    EXPECT_EQ(pager.stats().wal_appends, std::uint64_t{kBlocks});
  }  // destroyed WITHOUT a checkpoint: the crash

  auto reopened = Pager::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (int i = 0; i < kBlocks; ++i) {
    PageRef p = (*reopened)->Fetch(ids[i]);
    EXPECT_EQ(p.Get(0), std::uint64_t{1000 + i}) << "block " << i;
  }
  // The recovered pager is fully live: mutate, checkpoint (which truncates
  // the log), and reopen once more.
  {
    PageRef p = (*reopened)->Fetch(ids[0]);
    p.Set(0, 4242);
  }
  ASSERT_TRUE((*reopened)->Checkpoint({}).ok());
  EXPECT_TRUE((*reopened)->wal()->records().empty());
  reopened->reset();
  auto again = Pager::Open(opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->Fetch(ids[0]).Get(0), 4242u);
  EXPECT_EQ((*again)->Fetch(ids[1]).Get(0), 1001u);
}

// Only the FIRST overwrite of a block per interval logs a pre-image, and
// blocks born after the checkpoint log none at all.
TEST(WalPagerTest, PreImagesAreOncePerBlockPerInterval) {
  TempDir dir("once");
  EmOptions opts{.block_words = 64, .pool_frames = 4};
  opts.backend = Backend::kFile;
  opts.path = dir.File("data.blk");
  opts.wal_path = dir.File("data.wal");
  Pager pager(opts);
  const BlockId a = pager.Allocate();
  pager.Create(a).Set(0, 7);
  // Pre-checkpoint: nothing is recoverable yet, so nothing is guarded.
  pager.FlushAll();
  EXPECT_EQ(pager.stats().wal_appends, 0u);
  ASSERT_TRUE(pager.Checkpoint({}).ok());

  for (int round = 0; round < 5; ++round) {
    pager.Fetch(a).Set(0, 100 + round);
    pager.FlushAll();
  }
  EXPECT_EQ(pager.stats().wal_appends, 1u);  // one guard, five overwrites
  // A block allocated after the checkpoint needs no guard either.
  const BlockId b = pager.Allocate();
  pager.Create(b).Set(0, 9);
  pager.FlushAll();
  EXPECT_EQ(pager.stats().wal_appends, 1u);
  // The next interval guards the block again (its checkpoint content moved).
  ASSERT_TRUE(pager.Checkpoint({}).ok());
  pager.Fetch(a).Set(0, 55);
  pager.FlushAll();
  EXPECT_EQ(pager.stats().wal_appends, 2u);
}

// wal_fsync mode issues real barriers and counts them; page-cache mode
// issues none.
TEST(WalPagerTest, FsyncModeCountsBarriers) {
  TempDir dir("fsync");
  EmOptions opts{.block_words = 64, .pool_frames = 4};
  opts.backend = Backend::kFile;
  opts.path = dir.File("data.blk");
  opts.wal_path = dir.File("data.wal");
  {
    Pager pager(opts);
    pager.Create(pager.Allocate()).Set(0, 1);
    ASSERT_TRUE(pager.Checkpoint({}).ok());
    EXPECT_EQ(pager.stats().fsyncs, 0u);  // page-cache mode: no barriers
  }
  opts.path = dir.File("data2.blk");
  opts.wal_path = dir.File("data2.wal");
  opts.wal_fsync = true;
  Pager pager(opts);
  const BlockId a = pager.Allocate();
  pager.Create(a).Set(0, 1);
  ASSERT_TRUE(pager.Checkpoint({}).ok());
  pager.Fetch(a).Set(0, 2);
  pager.FlushAll();  // pre-image append + barrier before the home write
  EXPECT_GT(pager.stats().fsyncs, 0u);
  EXPECT_EQ(pager.stats().wal_appends, 1u);
}

// ---------------------------------------------------------------------------
// WalTailFollower: the position-remembering live-tail poller behind the
// replication seam (em/wal_tail.h).

TEST(WalTailFollowerTest, DeliversAcrossPollsAndSkipsUnchangedFiles) {
  TempDir dir("tail-basic");
  WalTailFollower::Options fo;
  fo.path = dir.File("t.wal");
  fo.block_words = 64;
  WalTailFollower follower(fo);

  std::vector<std::uint64_t> seen;
  auto cb = [&seen](const WriteAheadLog::Record& rec,
                    std::span<const word_t> payload) -> Status {
    EXPECT_EQ(payload.size(), 3u);
    const std::vector<word_t> want = Payload(rec.lsn, 3);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), want.begin()));
    seen.push_back(rec.lsn);
    return Status::Ok();
  };

  // Segment not created yet: benign NotFound, try again later.
  EXPECT_EQ(follower.Poll(cb).status().code(), StatusCode::kNotFound);

  WriteAheadLog::Options o;
  o.path = fo.path;
  o.block_words = 64;
  auto log = WriteAheadLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ((*log)->Append(WriteAheadLog::RecordType::kLogical,
                             Payload(i, 3)),
              i);
  }
  (*log)->Sync();

  auto polled = follower.Poll(cb);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 5u);
  EXPECT_EQ(follower.delivered_lsn(), 5u);

  // Nothing new: the (ino, size) fast path skips the re-open entirely.
  polled = follower.Poll(cb);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 0u);
  EXPECT_EQ(follower.skipped_polls(), 1u);

  for (std::uint64_t i = 6; i <= 7; ++i) {
    (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(i, 3));
  }
  (*log)->Sync();
  polled = follower.Poll(cb);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 2u);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(WalTailFollowerTest, StartAfterSkipsCoveredRecords) {
  TempDir dir("tail-start");
  WriteAheadLog::Options o;
  o.path = dir.File("t.wal");
  o.block_words = 64;
  auto log = WriteAheadLog::Open(o);
  ASSERT_TRUE(log.ok());
  for (std::uint64_t i = 1; i <= 6; ++i) {
    (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(i, 2));
  }
  (*log)->Sync();

  WalTailFollower::Options fo;
  fo.path = o.path;
  fo.block_words = 64;
  fo.start_after = 4;  // a shipped snapshot covered LSNs 1..4
  WalTailFollower follower(fo);
  std::vector<std::uint64_t> seen;
  auto polled = follower.Poll(
      [&seen](const WriteAheadLog::Record& rec,
              std::span<const word_t>) -> Status {
        seen.push_back(rec.lsn);
        return Status::Ok();
      });
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{5, 6}));
}

TEST(WalTailFollowerTest, SurvivesRotationAndReportsFallingBehind) {
  TempDir dir("tail-rotate");
  WriteAheadLog::Options o;
  o.path = dir.File("t.wal");
  o.block_words = 64;
  o.rotate_blocks = 4;  // tiny: every full truncation rotates
  auto log = WriteAheadLog::Open(o);
  ASSERT_TRUE(log.ok());

  WalTailFollower::Options fo;
  fo.path = o.path;
  fo.block_words = 64;
  WalTailFollower follower(fo);
  std::uint64_t last = 0;
  auto cb = [&last](const WriteAheadLog::Record& rec,
                    std::span<const word_t>) -> Status {
    EXPECT_EQ(rec.lsn, last + 1);  // monotonic across rotations, no gaps
    last = rec.lsn;
    return Status::Ok();
  };

  for (std::uint64_t i = 1; i <= 5; ++i) {
    (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(i, 3));
  }
  (*log)->Sync();
  ASSERT_TRUE(follower.Poll(cb).ok());
  EXPECT_EQ(follower.delivered_lsn(), 5u);

  // Rotate (all records obsolete, file past rotate_blocks) and keep
  // appending: the follower's hint is invalidated by the new base, but
  // delivery just continues — it had already consumed everything rotated
  // away.
  ASSERT_TRUE((*log)->Truncate(5).ok());
  for (std::uint64_t i = 6; i <= 8; ++i) {
    (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(i, 3));
  }
  (*log)->Sync();
  auto polled = follower.Poll(cb);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*polled, 3u);
  EXPECT_EQ(follower.delivered_lsn(), 8u);

  // A consumer that never saw LSNs 1..8 cannot be served by this segment
  // any more: Poll must refuse loudly (re-bootstrap signal), not skip.
  ASSERT_TRUE((*log)->Truncate(8).ok());
  (*log)->Append(WriteAheadLog::RecordType::kLogical, Payload(9, 3));
  (*log)->Sync();
  WalTailFollower fresh(
      WalTailFollower::Options{o.path, o.block_words, 0});
  EXPECT_EQ(fresh.Poll(cb).status().code(), StatusCode::kOutOfRange);
}

// A reader polling a log while an appender commits into it must only ever
// observe whole, CRC-valid records, in LSN order — the property the
// replication primary's tail shipping stands on.
TEST(WalTest, RacingReaderSeesWholeRecordsInLsnOrder) {
  TempDir dir("racing");
  const std::string path = dir.File("t.wal");
  constexpr std::uint64_t kRecords = 400;

  std::atomic<bool> appender_done{false};
  std::thread appender([&] {
    WriteAheadLog::Options o;
    o.path = path;
    o.block_words = 64;
    auto log = WriteAheadLog::Open(o);
    ASSERT_TRUE(log.ok());
    for (std::uint64_t i = 1; i <= kRecords; ++i) {
      (*log)->Append(WriteAheadLog::RecordType::kLogical,
                     Payload(i, 1 + i % 7));
      if (i % 4 == 0) (*log)->Sync();  // group commits
      if (i % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    (*log)->Sync();
    appender_done.store(true);
  });

  WalTailFollower::Options fo;
  fo.path = path;
  fo.block_words = 64;
  WalTailFollower follower(fo);
  std::uint64_t last = 0;
  bool corrupt = false;
  auto cb = [&](const WriteAheadLog::Record& rec,
                std::span<const word_t> payload) -> Status {
    if (rec.lsn != last + 1) corrupt = true;  // gap or reorder
    const std::vector<word_t> want = Payload(rec.lsn, 1 + rec.lsn % 7);
    if (payload.size() != want.size() ||
        !std::equal(payload.begin(), payload.end(), want.begin())) {
      corrupt = true;  // partial or torn record observed
    }
    last = rec.lsn;
    return Status::Ok();
  };

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (last < kRecords && std::chrono::steady_clock::now() < deadline) {
    auto polled = follower.Poll(cb);
    if (!polled.ok()) {
      // Only the not-created-yet window is acceptable mid-race.
      ASSERT_EQ(polled.status().code(), StatusCode::kNotFound);
    }
    ASSERT_FALSE(corrupt);
  }
  appender.join();
  EXPECT_TRUE(appender_done.load());
  EXPECT_EQ(last, kRecords);
  EXPECT_FALSE(corrupt);
  EXPECT_GT(follower.polls(), 1u);
}

}  // namespace
}  // namespace tokra::em
