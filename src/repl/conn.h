// A replication connection: one TCP socket carrying frames (repl/frame.h)
// with per-operation deadlines.
//
// Both ends of the protocol tolerate a peer that dies, hangs, or is
// partitioned away at any byte boundary, so every send/receive here is
// bounded: the socket is non-blocking and each full-frame operation
// poll()s with the remainder of its deadline, returning
// Status::DeadlineExceeded when the peer stops making progress. Callers
// treat any non-OK as "connection dead" — close and go through the
// reconnect path; no operation is retried on the same socket.
//
// An em::FaultInjector can be attached to a connection; it is consulted
// once per frame (OnWrite on send, OnRead on receive) and a fired fault
// hard-closes the socket mid-frame — the deterministic stand-in for a
// partition or peer crash used by the torture tests.

#ifndef TOKRA_REPL_CONN_H_
#define TOKRA_REPL_CONN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "em/fault_device.h"
#include "repl/frame.h"
#include "util/status.h"

namespace tokra::repl {

class Conn {
 public:
  struct Options {
    /// Deadline for one whole frame send or receive. A receive that sees
    /// no bytes at all for this long returns DeadlineExceeded (callers
    /// poll for heartbeats well inside this bound).
    int io_timeout_ms = 5000;
    /// When set, consulted once per frame; a fired fault (kReadError /
    /// kWriteError / kTornWrite on the matching direction) closes the
    /// socket.
    em::FaultInjector* fault = nullptr;
  };

  /// Takes ownership of a connected socket fd.
  Conn(int fd, Options options);
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Sends one frame (header + payload) within the deadline.
  Status SendFrame(FrameType type, std::span<const std::uint8_t> payload);

  /// Receives one frame within the deadline, validating magic, type,
  /// length bound, and payload CRC.
  Status RecvFrame(Frame* out);

  /// Like RecvFrame, but returns NotFound immediately when no header byte
  /// is ready (does not consume the deadline). Once a header byte has
  /// arrived the rest of the frame is read under the normal deadline.
  Status TryRecvFrame(Frame* out);

  /// Hard-closes the socket; any blocked or later operation fails.
  void Close();

  bool closed() const { return fd_ < 0; }

 private:
  Status FullRead(std::uint8_t* buf, std::size_t len, bool* progressed);
  Status FullWrite(const std::uint8_t* buf, std::size_t len);
  Status RecvRest(Frame* out);

  int fd_;
  Options options_;
};

/// Opens a listening TCP socket on `bind_addr:port` (port 0 picks a free
/// port). Returns the listening fd.
StatusOr<int> ListenTcp(const std::string& bind_addr, std::uint16_t port);

/// The port a listening fd is bound to.
StatusOr<std::uint16_t> LocalPort(int listen_fd);

/// Accepts one connection within `timeout_ms` (NotFound on timeout, so an
/// accept loop can poll a shutdown flag).
StatusOr<int> AcceptConn(int listen_fd, int timeout_ms);

/// Connects to `host:port` within `timeout_ms`.
StatusOr<int> DialTcp(const std::string& host, std::uint16_t port,
                      int timeout_ms);

}  // namespace tokra::repl

#endif  // TOKRA_REPL_CONN_H_
