// A behaviourally-faithful stand-in for the Sheng-Tao PODS'12 structure [14]:
// approximate range k-selection with O(lg_B n) query I/Os and
// Theta(lg_B n * lg_B n)-shaped amortized update I/Os.
//
// Role in this repository (see DESIGN.md, substitution table):
//  * the BASELINE that Theorem 1 improves on (experiment E2 measures the
//    update-cost separation lg_B n vs lg^2_B n);
//  * the component structure Theorem 1 uses in the lg n <= B^(1/6) regime;
//  * the per-leaf structure of the Lemma 4 tree (instantiated at leaf scale).
//
// Construction: a balanced fanout-Theta(B) tree over x-sorted leaves. Every
// internal node stores, per child, a logarithmic sketch of the scores in the
// child's subtree (the [14] machinery this paper restates in Section 4.1).
// A query decomposes [x1,x2] into O(lg_B n) canonical children plus two
// boundary leaves and runs the Lemma 7 selection over their sketches.
//
// Updates descend the path and repair drifted sketch pivots; pivot (j) of a
// child is recomputed after Theta(2^j) updates below that child, each repair
// costing one recursive approximate selection = O(lg_B n) I/Os. Summed over
// the path this yields the Theta(lg^2_B n) amortized update cost that [14]'s
// analysis exhibits — the precise mechanism the paper's Section 1.2 quotes.
//
// Deviations from [14] (documented, constants only): repaired pivots are
// obtained by recursive *approximate* selection, so sketch windows hold with
// a relaxed constant and the end-to-end approximation factor is c_st <= 64
// (verified by property tests); the skeleton is rebuilt globally every n/2
// updates instead of weight-balanced locally.

#ifndef TOKRA_ST12_SELECTOR_H_
#define TOKRA_ST12_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "em/pager.h"
#include "sketch/log_sketch.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::st12 {

class ShengTaoSelector {
 public:
  struct Params {
    std::uint32_t fanout = 0;    ///< 0 = derive max(4, B/4)
    std::uint32_t leaf_cap = 0;  ///< 0 = derive 2B points
  };

  /// End-to-end approximation factor: a returned value's rank in the range
  /// lies in [k, kApproxFactor * k).
  static constexpr std::uint64_t kApproxFactor = 64;

  static ShengTaoSelector Build(em::Pager* pager, std::vector<Point> points,
                                Params params);
  static ShengTaoSelector Build(em::Pager* pager, std::vector<Point> points) {
    return Build(pager, std::move(points), Params());
  }
  static ShengTaoSelector Open(em::Pager* pager, em::BlockId meta);

  em::BlockId meta_block() const { return meta_; }
  std::uint64_t size() const;

  Status Insert(const Point& p);
  Status Delete(const Point& p);

  /// |S ∩ [x1,x2]|, exact. O(lg_B n) I/Os.
  std::uint64_t CountInRange(double x1, double x2) const;

  /// True iff p is stored. O(lg_B n) I/Os.
  bool Contains(const Point& p) const;

  /// Appends every stored point. O(n/B) I/Os.
  void CollectAll(std::vector<Point>* out) const;

  /// A score value whose descending rank among the scores in S ∩ [x1,x2]
  /// lies in [k, kApproxFactor * k), or -inf when the whole range qualifies
  /// (rank(-inf) = range count < 2k). Requires 1 <= k <= CountInRange.
  /// O(lg_B n) I/Os.
  StatusOr<double> SelectApprox(double x1, double x2, std::uint64_t k) const;

  void DestroyAll();
  void CheckInvariants() const;

 private:
  ShengTaoSelector(em::Pager* pager, em::BlockId meta)
      : pager_(pager), meta_(meta) {}

  std::uint32_t B() const { return pager_->B(); }
  std::uint64_t MetaGet(std::size_t w) const;
  void MetaSet(std::size_t w, std::uint64_t v);

  em::BlockId BuildNode(const std::vector<Point>& by_x,
                        std::uint32_t level, double lo, double hi);
  void FreeNode(em::BlockId id);
  void CollectPoints(em::BlockId id, std::vector<Point>* out) const;
  void GatherSketches(em::BlockId id, double x1, double x2,
                      std::vector<sketch::LogSketch>* sketches,
                      std::vector<Point>* boundary) const;
  /// Recomputes pivot levels [1, upto] of child `ci` of node `id`.
  void RepairChildSketch(em::BlockId id, std::uint32_t ci, std::uint32_t upto);
  void CheckNode(em::BlockId id, double lo, double hi,
                 std::uint64_t* count) const;
  void MaybeGlobalRebuild();

  em::Pager* pager_;
  em::BlockId meta_;
};

}  // namespace tokra::st12

#endif  // TOKRA_ST12_SELECTOR_H_
