// Logarithmic sketches (Sheng & Tao [14], restated in Section 4.1).
//
// The sketch of a set L of l values is an array of floor(lg l)+1 pivots; the
// j-th pivot is any element whose descending rank in L lies in [2^(j-1), 2^j).
// Sketches answer approximate rank queries within a factor 4 per set, and
// Lemma 7 combines m sketches into an approximate union-rank selection.

#ifndef TOKRA_SKETCH_LOG_SKETCH_H_
#define TOKRA_SKETCH_LOG_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/bits.h"
#include "util/check.h"

namespace tokra::sketch {

/// One pivot: an element value and the rank it had when (re)computed. The
/// live invariant is only rank-window membership, not the exact rank.
struct SketchPivot {
  double value = 0;
  std::uint64_t rank_hint = 0;
};

/// Value-based logarithmic sketch of one set.
class LogSketch {
 public:
  LogSketch() = default;

  /// Builds from the set's values sorted descending. Each pivot j is chosen
  /// at rank min(l, floor(3/2 * 2^(j-1))) — the mid-window choice the paper
  /// uses when repairing pivots, giving maximal drift slack on both sides.
  static LogSketch Build(std::span<const double> sorted_desc) {
    LogSketch s;
    s.set_size_ = sorted_desc.size();
    if (s.set_size_ == 0) return s;
    std::uint32_t levels = FloorLog2(s.set_size_) + 1;
    for (std::uint32_t j = 1; j <= levels; ++j) {
      std::uint64_t lo = std::uint64_t{1} << (j - 1);
      std::uint64_t r = std::min<std::uint64_t>(s.set_size_, lo + lo / 2);
      TOKRA_DCHECK(r >= lo);
      s.pivots_.push_back(SketchPivot{sorted_desc[r - 1], r});
    }
    return s;
  }

  /// Reconstructs a sketch from stored pivot values (level j at index j-1).
  /// Used by structures that persist pivots in blocks; the rank hints are
  /// nominal mid-window values.
  static LogSketch FromPivots(std::vector<double> pivot_values,
                              std::uint64_t set_size) {
    LogSketch s;
    s.set_size_ = set_size;
    TOKRA_CHECK(set_size == 0 ||
                pivot_values.size() == FloorLog2(set_size) + 1);
    for (std::uint32_t j = 1; j <= pivot_values.size(); ++j) {
      std::uint64_t lo = std::uint64_t{1} << (j - 1);
      s.pivots_.push_back(SketchPivot{pivot_values[j - 1],
                                      std::min<std::uint64_t>(set_size,
                                                              lo + lo / 2)});
    }
    return s;
  }

  std::uint64_t set_size() const { return set_size_; }
  std::uint32_t levels() const {
    return static_cast<std::uint32_t>(pivots_.size());
  }
  /// Pivot of level j (1-based).
  const SketchPivot& pivot(std::uint32_t j) const { return pivots_[j - 1]; }

  /// Lower bound on the descending rank of v in the set: 2^(j-1) for the
  /// deepest level j whose pivot is >= v; 0 if v exceeds the maximum.
  std::uint64_t RankLowerBound(double v) const {
    std::uint64_t lo = 0;
    for (std::uint32_t j = 1; j <= levels(); ++j) {
      if (pivots_[j - 1].value >= v) lo = std::uint64_t{1} << (j - 1);
    }
    return lo;
  }

  /// Matching upper bound: rank(v) < 4 * max(RankLowerBound(v), 1) and
  /// rank(v) <= set_size. Exactly 0 when v exceeds the maximum.
  std::uint64_t RankUpperBound(double v) const {
    std::uint64_t lo = RankLowerBound(v);
    if (lo == 0) return 0;
    return std::min<std::uint64_t>(set_size_, 4 * lo - 1);
  }

  /// Validates the window invariant against the live set (sorted descending).
  /// Test helper; O(l) CPU.
  void CheckAgainst(std::span<const double> sorted_desc) const {
    TOKRA_CHECK_EQ(set_size_, sorted_desc.size());
    for (std::uint32_t j = 1; j <= levels(); ++j) {
      // Descending rank of pivot value.
      std::uint64_t r = 0;
      for (double v : sorted_desc) {
        if (v >= pivots_[j - 1].value) ++r;
      }
      std::uint64_t lo = std::uint64_t{1} << (j - 1);
      TOKRA_CHECK(r >= lo);
      TOKRA_CHECK(r < 2 * lo);
      TOKRA_CHECK(r <= set_size_);
    }
  }

 private:
  std::vector<SketchPivot> pivots_;
  std::uint64_t set_size_ = 0;
};

}  // namespace tokra::sketch

#endif  // TOKRA_SKETCH_LOG_SKETCH_H_
