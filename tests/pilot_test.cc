// Tests for the Lemma 1 pilot PST: correctness against the naive oracle
// under random workloads, structural invariants after every kind of
// operation, and the query/update I/O shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "em/pager.h"
#include "internal/naive.h"
#include "pilot/pilot_pst.h"
#include "util/bits.h"
#include "util/random.h"

namespace tokra::pilot {
namespace {

em::EmOptions Opts(std::uint32_t bw = 64, std::uint32_t frames = 32) {
  return em::EmOptions{.block_words = bw, .pool_frames = frames};
}

std::vector<Point> RandomPoints(Rng* rng, std::size_t n, double x_hi = 1000.0) {
  auto xs = rng->DistinctDoubles(n, 0.0, x_hi);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

void ExpectTopKEqual(const std::vector<Point>& got,
                     const std::vector<Point>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
    EXPECT_EQ(got[i].x, want[i].x) << "rank " << i;
  }
}

TEST(PilotPstTest, EmptyStructure) {
  em::Pager pager(Opts());
  PilotPst pst = PilotPst::Create(&pager);
  EXPECT_EQ(pst.size(), 0u);
  auto res = pst.TopK(0, 10, 5);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
  pst.CheckInvariants();
  EXPECT_EQ(pst.Delete({1.0, 0.5}).code(), StatusCode::kNotFound);
}

TEST(PilotPstTest, SmallInsertQuery) {
  em::Pager pager(Opts());
  PilotPst pst = PilotPst::Create(&pager);
  ASSERT_TRUE(pst.Insert({10, 0.3}).ok());
  ASSERT_TRUE(pst.Insert({20, 0.9}).ok());
  ASSERT_TRUE(pst.Insert({30, 0.5}).ok());
  EXPECT_EQ(pst.size(), 3u);
  pst.CheckInvariants();
  auto res = pst.TopK(5, 25, 2);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 2u);
  EXPECT_EQ((*res)[0].score, 0.9);
  EXPECT_EQ((*res)[1].score, 0.3);
}

TEST(PilotPstTest, BuildMatchesOracle) {
  em::Pager pager(Opts(64));
  Rng rng(42);
  auto pts = RandomPoints(&rng, 3000);
  PilotPst pst = PilotPst::Build(&pager, pts);
  EXPECT_EQ(pst.size(), pts.size());
  pst.CheckInvariants();
  for (int probe = 0; probe < 50; ++probe) {
    double a = rng.UniformDouble(-50, 1050);
    double b = rng.UniformDouble(-50, 1050);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    std::uint64_t k = 1 + rng.Uniform(40);
    auto got = pst.TopK(x1, x2, k);
    ASSERT_TRUE(got.ok());
    ExpectTopKEqual(*got, internal::NaiveTopK(pts, x1, x2, k));
  }
}

TEST(PilotPstTest, InvalidRange) {
  em::Pager pager(Opts());
  PilotPst pst = PilotPst::Create(&pager);
  EXPECT_FALSE(pst.TopK(5, 4, 1).ok());
}

TEST(PilotPstTest, DestroyReleasesAllBlocks) {
  em::Pager pager(Opts());
  std::uint64_t base = pager.BlocksInUse();
  Rng rng(7);
  auto pts = RandomPoints(&rng, 500);
  PilotPst pst = PilotPst::Build(&pager, pts);
  EXPECT_GT(pager.BlocksInUse(), base);
  pst.DestroyAll();
  EXPECT_EQ(pager.BlocksInUse(), base);
}

struct PilotCase {
  std::uint32_t block_words;
  std::size_t n;
  int updates;
  std::uint64_t seed;
};

class PilotPropertyTest : public ::testing::TestWithParam<PilotCase> {};

TEST_P(PilotPropertyTest, RandomWorkloadAgainstOracle) {
  const auto& c = GetParam();
  em::Pager pager(Opts(c.block_words));
  Rng rng(c.seed);
  std::vector<Point> live = RandomPoints(&rng, c.n);
  PilotPst pst = PilotPst::Build(&pager, live);
  pst.CheckInvariants();

  std::set<double> used_x, used_s;
  for (const Point& p : live) {
    used_x.insert(p.x);
    used_s.insert(p.score);
  }

  for (int op = 0; op < c.updates; ++op) {
    bool do_insert = live.empty() || rng.Bernoulli(0.55);
    if (do_insert) {
      double x, s;
      do {
        x = rng.UniformDouble(0, 1000);
      } while (!used_x.insert(x).second);
      do {
        s = rng.UniformDouble(0, 1);
      } while (!used_s.insert(s).second);
      Point p{x, s};
      ASSERT_TRUE(pst.Insert(p).ok());
      live.push_back(p);
    } else {
      std::size_t pick = rng.Uniform(live.size());
      Point p = live[pick];
      live.erase(live.begin() + pick);
      ASSERT_TRUE(pst.Delete(p).ok()) << p.ToString();
    }
    if (op % 64 == 0) pst.CheckInvariants();
  }
  pst.CheckInvariants();
  EXPECT_EQ(pst.size(), live.size());

  for (int probe = 0; probe < 40; ++probe) {
    double a = rng.UniformDouble(-50, 1050);
    double b = rng.UniformDouble(-50, 1050);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    std::uint64_t k = 1 + rng.Uniform(60);
    auto got = pst.TopK(x1, x2, k);
    ASSERT_TRUE(got.ok());
    ExpectTopKEqual(*got, internal::NaiveTopK(live, x1, x2, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PilotPropertyTest,
    ::testing::Values(PilotCase{32, 0, 400, 1}, PilotCase{32, 200, 600, 2},
                      PilotCase{64, 1000, 800, 3},
                      PilotCase{64, 4000, 1000, 4},
                      PilotCase{128, 3000, 800, 5},
                      PilotCase{256, 8000, 600, 6}),
    [](const ::testing::TestParamInfo<PilotCase>& info) {
      return "B" + std::to_string(info.param.block_words) + "n" +
             std::to_string(info.param.n);
    });

TEST(PilotPstTest, LargeKReturnsWholeRange) {
  em::Pager pager(Opts());
  Rng rng(11);
  auto pts = RandomPoints(&rng, 800);
  PilotPst pst = PilotPst::Build(&pager, pts);
  auto got = pst.TopK(-1e9, 1e9, 100000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), pts.size());
  // Sorted by score descending.
  for (std::size_t i = 1; i < got->size(); ++i) {
    EXPECT_GT((*got)[i - 1].score, (*got)[i].score);
  }
}

TEST(PilotPstTest, HeavyDeleteTriggersGlobalRebuild) {
  em::Pager pager(Opts());
  Rng rng(13);
  auto pts = RandomPoints(&rng, 2000);
  PilotPst pst = PilotPst::Build(&pager, pts);
  // Delete 90%: multiple global rebuilds must fire and keep things sane.
  for (std::size_t i = 0; i < 1800; ++i) {
    ASSERT_TRUE(pst.Delete(pts[i]).ok());
  }
  pst.CheckInvariants();
  EXPECT_EQ(pst.size(), 200u);
  std::vector<Point> rest(pts.begin() + 1800, pts.end());
  auto got = pst.TopK(-1e9, 1e9, 10);
  ASSERT_TRUE(got.ok());
  ExpectTopKEqual(*got, internal::NaiveTopK(rest, -1e9, 1e9, 10));
}

TEST(PilotPstTest, SequentialInsertionsStressRebalancing) {
  // Sorted x insertions hammer the same subtree and force rebuilds.
  em::Pager pager(Opts());
  Rng rng(17);
  PilotPst pst = PilotPst::Create(&pager);
  std::vector<Point> live;
  auto scores = rng.DistinctDoubles(1500, 0, 1);
  for (int i = 0; i < 1500; ++i) {
    Point p{static_cast<double>(i), scores[i]};
    ASSERT_TRUE(pst.Insert(p).ok());
    live.push_back(p);
    if (i % 128 == 0) pst.CheckInvariants();
  }
  pst.CheckInvariants();
  auto got = pst.TopK(100, 900, 25);
  ASSERT_TRUE(got.ok());
  ExpectTopKEqual(*got, internal::NaiveTopK(live, 100, 900, 25));
}

TEST(PilotPstTest, QueryStatsPopulated) {
  em::Pager pager(Opts(64));
  Rng rng(23);
  auto pts = RandomPoints(&rng, 2000);
  PilotPst pst = PilotPst::Build(&pager, pts);
  QueryStats stats;
  auto got = pst.TopK(100, 900, 50, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(stats.q1_points + stats.q2_points + stats.q3_points, 0u);
  EXPECT_GT(stats.reps_selected, 0u);
  // Candidate volume O(B lg n + k) (Lemma 2's accounting).
  std::uint64_t bound =
      64 * (Lg(2000) + 2) * 64;  // generous constant * (lg n + k/B) * B
  EXPECT_LE(stats.q1_points + stats.q2_points + stats.q3_points, bound);
}

TEST(PilotPstTest, UpdateCostLogarithmicBaseB) {
  // Amortized update I/Os should be far below lg2(n) for B-ary navigation.
  em::Pager pager(Opts(256, 64));
  Rng rng(29);
  auto pts = RandomPoints(&rng, 20000);
  PilotPst pst = PilotPst::Build(&pager, pts);
  auto fresh = RandomPoints(&rng, 2000, 999.5);
  // Deduplicate against existing coordinates (probability ~0, but determinism
  // matters more than elegance in tests).
  em::IoStats before = pager.stats();
  std::uint64_t ok = 0;
  for (const Point& p : fresh) {
    if (pst.Insert(p).ok()) ++ok;
  }
  ASSERT_GT(ok, 0u);
  std::uint64_t per_op = (pager.stats() - before).TotalIos() / ok;
  // With B=256, a=16, n=20k: 2 base levels; generous bound on the amortized
  // I/Os per insert (path reads + pilot writes + occasional rebuilds).
  EXPECT_LE(per_op, 60u);
}

}  // namespace
}  // namespace tokra::pilot
