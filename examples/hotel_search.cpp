// The paper's motivating scenario (Section 1): "find the 10 best-rated
// hotels whose prices are between 100 and 200 dollars per night".
//
// Points are hotels: x = nightly price, score = user rating. The example
// simulates a live marketplace — hotels open, close, and reprice — while an
// interactive search serves price-banded top-k queries.

#include <cstdio>

#include "core/topk_index.h"
#include "em/pager.h"
#include "util/random.h"

int main() {
  using namespace tokra;
  em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 32});
  Rng rng(7);

  // 50k hotels: log-normal-ish price spread, ratings jittered to stay
  // distinct (the structure requires distinct scores; ties in a real system
  // are broken by hotel id, exactly as footnote 1 of the paper prescribes).
  const std::size_t n = 50000;
  auto jitter = rng.DistinctDoubles(n, 0.0, 0.001);
  std::vector<Point> hotels;
  hotels.reserve(n);
  double price_step = 0.0137;
  for (std::size_t i = 0; i < n; ++i) {
    double base = 40.0 + price_step * static_cast<double>(i);
    double rating = 1.0 + rng.Uniform(40) / 10.0 + jitter[i];  // 1.0..5.0
    hotels.push_back(Point{base, rating});
  }
  auto built = core::TopkIndex::Build(&pager, hotels);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  auto& index = *built;
  std::printf("marketplace: %llu hotels indexed\n",
              static_cast<unsigned long long>(index->size()));

  auto search = [&](double lo, double hi, std::uint64_t k) {
    pager.DropCache();
    em::IoStats before = pager.stats();
    auto top = index->TopK(lo, hi, k);
    em::IoStats cost = pager.stats() - before;
    std::printf("\n$%.0f-$%.0f, top %llu (%llu I/Os):\n", lo, hi,
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(cost.TotalIos()));
    for (const Point& h : *top) {
      std::printf("  $%7.2f/night  rating %.2f\n", h.x, h.score);
    }
  };

  search(100, 200, 10);  // the paper's query, verbatim
  search(40, 60, 5);     // budget band
  search(500, 700, 3);   // luxury band

  // Market churn: 2000 closures and 2000 openings.
  std::vector<Point> live = hotels;
  for (int i = 0; i < 2000; ++i) {
    std::size_t pick = rng.Uniform(live.size());
    index->Delete(live[pick]);
    live.erase(live.begin() + pick);
  }
  auto fresh_jitter = rng.DistinctDoubles(2000, 0.002, 0.003);
  for (int i = 0; i < 2000; ++i) {
    Point h{40.0 + rng.UniformDouble(0, 680) + fresh_jitter[i],
            1.0 + rng.Uniform(40) / 10.0 + fresh_jitter[i]};
    index->Insert(h);
  }
  std::printf("\nafter churn (2000 closures, 2000 openings):\n");
  search(100, 200, 10);
  return 0;
}
