// CHECK macros for invariants and programming errors.
//
// TOKRA_CHECK*   — always on; use for cheap invariants whose violation means a
//                  bug in the library, not a user error.
// TOKRA_DCHECK*  — compiled out in NDEBUG builds; use on hot paths.
// TOKRA_PCHECK*  — only when TOKRA_PARANOID is defined; use for expensive
//                  whole-structure validation (e.g., Lemma 3 token accounting).

#ifndef TOKRA_UTIL_CHECK_H_
#define TOKRA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace tokra::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace tokra::internal

#define TOKRA_CHECK(expr)                                         \
  do {                                                            \
    if (!(expr)) ::tokra::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

#define TOKRA_CHECK_EQ(a, b) TOKRA_CHECK((a) == (b))
#define TOKRA_CHECK_NE(a, b) TOKRA_CHECK((a) != (b))
#define TOKRA_CHECK_LT(a, b) TOKRA_CHECK((a) < (b))
#define TOKRA_CHECK_LE(a, b) TOKRA_CHECK((a) <= (b))
#define TOKRA_CHECK_GT(a, b) TOKRA_CHECK((a) > (b))
#define TOKRA_CHECK_GE(a, b) TOKRA_CHECK((a) >= (b))

#ifdef NDEBUG
#define TOKRA_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define TOKRA_DCHECK(expr) TOKRA_CHECK(expr)
#endif

#define TOKRA_DCHECK_EQ(a, b) TOKRA_DCHECK((a) == (b))
#define TOKRA_DCHECK_NE(a, b) TOKRA_DCHECK((a) != (b))
#define TOKRA_DCHECK_LT(a, b) TOKRA_DCHECK((a) < (b))
#define TOKRA_DCHECK_LE(a, b) TOKRA_DCHECK((a) <= (b))
#define TOKRA_DCHECK_GT(a, b) TOKRA_DCHECK((a) > (b))
#define TOKRA_DCHECK_GE(a, b) TOKRA_DCHECK((a) >= (b))

#ifdef TOKRA_PARANOID
#define TOKRA_PCHECK(expr) TOKRA_CHECK(expr)
#else
#define TOKRA_PCHECK(expr) \
  do {                     \
  } while (0)
#endif

#endif  // TOKRA_UTIL_CHECK_H_
