// Naive reference implementations (oracles) for tests and benches.

#ifndef TOKRA_INTERNAL_NAIVE_H_
#define TOKRA_INTERNAL_NAIVE_H_

#include <algorithm>
#include <span>
#include <vector>

#include "util/point.h"

namespace tokra::internal {

/// Top-k points of S within [x1, x2], sorted by score descending.
/// O(n lg n) scan — correctness oracle only.
inline std::vector<Point> NaiveTopK(std::span<const Point> s, double x1,
                                    double x2, std::size_t k) {
  std::vector<Point> in;
  for (const Point& p : s) {
    if (p.x >= x1 && p.x <= x2) in.push_back(p);
  }
  std::sort(in.begin(), in.end(), ByScoreDesc{});
  if (in.size() > k) in.resize(k);
  return in;
}

/// All points in [x1, x2] x [y, +inf), sorted by score descending.
inline std::vector<Point> Naive3Sided(std::span<const Point> s, double x1,
                                      double x2, double y) {
  std::vector<Point> out;
  for (const Point& p : s) {
    if (p.x >= x1 && p.x <= x2 && p.score >= y) out.push_back(p);
  }
  std::sort(out.begin(), out.end(), ByScoreDesc{});
  return out;
}

/// |S ∩ [x1, x2]|.
inline std::uint64_t NaiveRangeCount(std::span<const Point> s, double x1,
                                     double x2) {
  std::uint64_t c = 0;
  for (const Point& p : s) {
    if (p.x >= x1 && p.x <= x2) ++c;
  }
  return c;
}

/// Exact k-th largest score within [x1, x2]; requires k <= range count.
inline double NaiveKthScoreInRange(std::span<const Point> s, double x1,
                                   double x2, std::uint64_t k) {
  std::vector<double> scores;
  for (const Point& p : s) {
    if (p.x >= x1 && p.x <= x2) scores.push_back(p.score);
  }
  std::sort(scores.begin(), scores.end(), std::greater<>());
  return scores.at(k - 1);
}

/// Descending rank of `v` within the scores of S ∩ [x1, x2].
inline std::uint64_t NaiveScoreRankInRange(std::span<const Point> s, double x1,
                                           double x2, double v) {
  std::uint64_t r = 0;
  for (const Point& p : s) {
    if (p.x >= x1 && p.x <= x2 && p.score >= v) ++r;
  }
  return r;
}

}  // namespace tokra::internal

#endif  // TOKRA_INTERNAL_NAIVE_H_
