// The block device: an unbounded array of blocks of B words, behind an
// abstract interface so the same structures run on a volatile in-memory
// simulation (tests, benches) or a durable file (services).

#ifndef TOKRA_EM_BLOCK_DEVICE_H_
#define TOKRA_EM_BLOCK_DEVICE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "em/io_stats.h"
#include "em/options.h"
#include "util/check.h"
#include "util/status.h"

namespace tokra::em {

/// One block transfer of a batch. `buf` must hold block_words() words; it is
/// the destination of a read and the (unmodified) source of a write. The
/// blocks of a batch need not be contiguous or sorted, and every transfer in
/// a batch must target a distinct block.
struct IoRequest {
  BlockId id = kNullBlock;
  word_t* buf = nullptr;
};

/// Abstract block disk.
///
/// Every Read/Write transfers exactly one block and increments the matching
/// counter; these counters are the ground truth for all I/O measurements in
/// the repository. Counting lives here, in the non-virtual public methods,
/// so every backend reports identical counts for identical access sequences
/// by construction. The device grows on demand (the EM model's disk is
/// unbounded).
class BlockDevice {
 public:
  explicit BlockDevice(std::uint32_t block_words)
      : block_words_(block_words) {
    TOKRA_CHECK(block_words >= 1);
  }
  virtual ~BlockDevice() = default;
  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  std::uint32_t block_words() const { return block_words_; }

  /// Number of blocks the device currently backs.
  virtual BlockId NumBlocks() const = 0;

  /// Reads block `id` into `dst` (must hold block_words() words). One I/O.
  ///
  /// Failed-device semantics (see io_status()): reads keep serving — from
  /// the post-failure overlay when the block was written after the
  /// failure, from the backend otherwise — so a live structure never walks
  /// garbage while the sticky error propagates to its chokepoint. Blocks
  /// the backend never materialized read as zeros.
  void Read(BlockId id, word_t* dst) {
    ++reads_;
    if (failed_) {
      if (OverlayLookup(id, dst)) return;
      if (id < NumBlocks()) {
        DoRead(id, dst);
      } else {
        std::memset(dst, 0, std::size_t{block_words_} * sizeof(word_t));
      }
      return;
    }
    TOKRA_CHECK(id < NumBlocks());
    DoRead(id, dst);
  }

  /// Writes `src` (block_words() words) to block `id`, growing the device if
  /// needed. One I/O.
  ///
  /// Failed-device semantics: the medium is frozen at the failure point —
  /// nothing written after a device fails may clobber bytes a recovery
  /// will read (in particular checkpoint-live blocks whose pre-image guard
  /// could no longer be logged). Post-failure writes land in an in-memory
  /// overlay instead, so the live process stays coherent until the error
  /// reaches its chokepoint and the caller stops using this device.
  void Write(BlockId id, const word_t* src) {
    ++writes_;
    if (failed_) {
      OverlayCapture(id, src);
      return;
    }
    EnsureCapacity(id + 1);
    DoWrite(id, src);
    // A write during which the device failed has unspecified bytes on the
    // medium (short pwrite, torn injection): capture the intended content
    // so later reads of the live process stay coherent.
    if (failed_) OverlayCapture(id, src);
  }

  /// Reads `count` consecutive blocks starting at `first` into `dst` (which
  /// must hold count * block_words() words). Counts `count` read I/Os — the
  /// model charges per block — but backends may fuse the transfer (one
  /// memcpy, one pread) for sequential-scan throughput.
  void ReadRun(BlockId first, std::uint32_t count, word_t* dst) {
    if (count == 0) return;
    if (failed_) {
      // Per-block on the slow path: each member may come from the overlay.
      for (std::uint32_t i = 0; i < count; ++i) {
        Read(first + i, dst + std::size_t{i} * block_words_);
      }
      return;
    }
    TOKRA_CHECK(first + count <= NumBlocks());
    reads_ += count;
    DoReadRun(first, count, dst);
  }

  /// Writes `count` consecutive blocks starting at `first`, growing the
  /// device if needed. Counts `count` write I/Os.
  void WriteRun(BlockId first, std::uint32_t count, const word_t* src) {
    if (count == 0) return;
    if (failed_) {
      for (std::uint32_t i = 0; i < count; ++i) {
        Write(first + i, src + std::size_t{i} * block_words_);
      }
      return;
    }
    EnsureCapacity(first + count);
    writes_ += count;
    DoWriteRun(first, count, src);
    if (failed_) {
      for (std::uint32_t i = 0; i < count; ++i) {
        OverlayCapture(first + i, src + std::size_t{i} * block_words_);
      }
    }
  }

  /// Reads every request of the batch and returns once all transfers have
  /// completed. Counts one read I/O per block — the model's cost is the
  /// number of transfers, not how they are scheduled — but backends may
  /// keep many transfers in flight at once (io_uring), which is what makes
  /// a top-k query's k/B leaf reads one device round trip instead of k/B.
  /// The default implementation is the synchronous loop, so the batch API
  /// is always available on every backend.
  void SubmitReads(std::span<const IoRequest> reqs) {
    if (reqs.empty()) return;
    if (failed_) {
      for (const IoRequest& r : reqs) Read(r.id, r.buf);
      return;
    }
    for (const IoRequest& r : reqs) TOKRA_CHECK(r.id < NumBlocks());
    reads_ += reqs.size();
    DoReadBatch(reqs);
  }

  /// Writes every request of the batch (growing the device as needed) and
  /// returns once all transfers have completed. Counts one write I/O per
  /// block; backends may overlap the member transfers.
  void SubmitWrites(std::span<const IoRequest> reqs) {
    if (reqs.empty()) return;
    if (failed_) {
      for (const IoRequest& r : reqs) Write(r.id, r.buf);
      return;
    }
    BlockId max_id = 0;
    for (const IoRequest& r : reqs) max_id = std::max(max_id, r.id);
    EnsureCapacity(max_id + 1);
    writes_ += reqs.size();
    DoWriteBatch(reqs);
    if (failed_) {
      for (const IoRequest& r : reqs) OverlayCapture(r.id, r.buf);
    }
  }

  /// Whether TryBorrowRead can ever succeed on this device. The buffer pool
  /// checks once at construction to enable its borrowed-frame mode.
  virtual bool SupportsBorrowedReads() const { return false; }

  /// Zero-copy read: returns a pointer to block `id`'s current contents
  /// (block_words() words, stable until the device is destroyed), or
  /// nullptr when the backend cannot borrow. Counts one read I/O exactly
  /// when it succeeds — counting stays here in the base class, so a
  /// workload's logical cost is identical whether a block was copied into a
  /// frame or borrowed from the mapping. The memory is read-only; writers
  /// must copy into their own frame first (the pool's copy-on-write pin).
  const word_t* TryBorrowRead(BlockId id) {
    // A failed device refuses to borrow: the copying Read path serves the
    // post-failure overlay, which a pointer into the mapping cannot.
    if (failed_) return nullptr;
    TOKRA_CHECK(id < NumBlocks());
    const word_t* p = DoBorrowRead(id);
    if (p != nullptr) ++reads_;
    return p;
  }

  /// Hint: `bufs` are long-lived block-sized I/O buffers (the pool's
  /// frames) that future Submit batches will target. Backends may
  /// pre-register them with the kernel (io_uring registered buffers); the
  /// default ignores the hint. Never affects results or I/O counts.
  virtual void RegisterIoBuffers(std::span<word_t* const> bufs) {
    (void)bufs;
  }

  /// Extends the device to back at least `blocks` blocks (zero-filled).
  /// Growing is free: it models formatting, not data transfer.
  virtual void EnsureCapacity(BlockId blocks) = 0;

  /// Durability barrier: everything written before Sync() survives process
  /// death on persistent backends. No-op on volatile ones.
  virtual void Sync() {}

  /// Bench/test hook: drops any OS-level caching of the device contents
  /// (after flushing), so the next reads measure the real medium instead of
  /// the page cache. No-op on backends without one. Never changes contents
  /// or I/O counts — only where the next transfers are served from.
  virtual void DropOsCache() {}

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  /// Real durability barriers issued (fsync and friends). Page-cache no-op
  /// Syncs are not counted — this tracks what the hardware was asked to do.
  std::uint64_t syncs() const { return syncs_; }

  /// Sticky device health. The first recorded I/O error wins and never
  /// clears: once a write was dropped or an fsync was not acknowledged, the
  /// device can no longer promise anything about what is durable (the
  /// fsyncgate lesson), so it stays failed until the file is reopened
  /// through recovery. Upper layers (pager, WAL, engine) consult this at
  /// their operation chokepoints instead of threading a Status through
  /// every DoRead/DoWrite signature.
  virtual Status io_status() const { return io_status_; }
  bool io_failed() const { return !io_status().ok(); }
  /// Count of device-level I/O failures observed (every failed syscall or
  /// injected fault, not just the first sticky one).
  virtual std::uint64_t io_errors() const { return io_errors_; }
  /// Faults delivered by a FaultInjectingBlockDevice wrapper; 0 on real
  /// backends.
  virtual std::uint64_t injected_faults() const { return 0; }

  /// Marks the device failed from outside (first error wins). Used by the
  /// pager to poison a home device whose pre-image guard log failed: a
  /// write-back without its undo record must never be acknowledged as
  /// durable.
  void PoisonIo(Status error) { RecordIoError(std::move(error)); }

  // ---- Shared read views (MVCC epoch serving; DESIGN.md §14) ----

  /// Returns a non-owning read-only alias of this device's current
  /// contents, or nullptr when the backend cannot share one (or the device
  /// has failed). The alias counts its own IoStats (this device's counters
  /// are untouched by reads through it) and refuses every write.
  ///
  /// Concurrency contract: the alias may be read from other threads while
  /// this device keeps writing, PROVIDED the writer never mutates a block
  /// the reader dereferences — exactly the pager's copy-on-write epoch
  /// discipline, where every block reachable from a published checkpoint is
  /// immutable until all epoch pins drain. The alias must not outlive this
  /// device.
  std::unique_ptr<BlockDevice> TryShareReadView();

  /// Backend support hooks for TryShareReadView. Public only so the alias
  /// device (a different BlockDevice object) can reach them; not for
  /// application use. ViewRead/ViewBorrow must be thread-safe against the
  /// owner's writes to *other* blocks and must not touch this device's
  /// counters or sticky error state.
  virtual bool ViewSupportsReads() const { return false; }
  virtual bool ViewSupportsBorrows() const { return false; }
  virtual bool ViewRead(BlockId id, word_t* dst) {
    (void)id;
    (void)dst;
    return false;
  }
  virtual const word_t* ViewBorrow(BlockId id) {
    (void)id;
    return nullptr;
  }
  virtual BlockId ViewNumBlocks() const { return NumBlocks(); }

 protected:
  /// Backends call this from Sync() exactly when a real barrier ran.
  void CountSync() { ++syncs_; }

  /// Records a device-level I/O failure: increments io_errors and latches
  /// the first non-OK status (sticky).
  void RecordIoError(Status error) {
    TOKRA_CHECK(!error.ok());
    ++io_errors_;
    failed_ = true;
    if (io_status_.ok()) io_status_ = std::move(error);
  }

  /// Post-failure overlay (see Write). Protected so backends whose batch
  /// paths detect failure mid-transfer can capture intended contents too.
  void OverlayCapture(BlockId id, const word_t* src) {
    auto& slot = overlay_[id];
    slot.assign(src, src + block_words_);
  }
  bool OverlayLookup(BlockId id, word_t* dst) const {
    auto it = overlay_.find(id);
    if (it == overlay_.end()) return false;
    std::memcpy(dst, it->second.data(),
                std::size_t{block_words_} * sizeof(word_t));
    return true;
  }

  virtual void DoRead(BlockId id, word_t* dst) = 0;
  virtual void DoWrite(BlockId id, const word_t* src) = 0;
  virtual void DoReadRun(BlockId first, std::uint32_t count, word_t* dst) {
    for (std::uint32_t i = 0; i < count; ++i) {
      DoRead(first + i, dst + std::size_t{i} * block_words_);
    }
  }
  virtual void DoWriteRun(BlockId first, std::uint32_t count,
                          const word_t* src) {
    for (std::uint32_t i = 0; i < count; ++i) {
      DoWrite(first + i, src + std::size_t{i} * block_words_);
    }
  }
  virtual const word_t* DoBorrowRead(BlockId id) {
    (void)id;
    return nullptr;
  }
  virtual void DoReadBatch(std::span<const IoRequest> reqs) {
    for (const IoRequest& r : reqs) DoRead(r.id, r.buf);
  }
  virtual void DoWriteBatch(std::span<const IoRequest> reqs) {
    for (const IoRequest& r : reqs) DoWrite(r.id, r.buf);
  }

 private:
  std::uint32_t block_words_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t io_errors_ = 0;
  bool failed_ = false;  // cheap mirror of io_status_.ok() for hot paths
  Status io_status_;     // sticky: first error wins
  // Writes issued after this device failed: the medium stays frozen for
  // recovery while the live process keeps a coherent view. Empty (and
  // never touched) on a healthy device.
  std::unordered_map<BlockId, std::vector<word_t>> overlay_;
};

/// Read-only alias over another device's ViewRead/ViewBorrow hooks — what
/// BlockDevice::TryShareReadView hands out. Counts its own IoStats (so an
/// epoch reader's cost is measurable separately from the writer's) and
/// CHECK-fails on any write. Non-owning: the parent must outlive it, which
/// the pager's epoch-pin lifetime rule guarantees.
class ReadViewDevice final : public BlockDevice {
 public:
  explicit ReadViewDevice(BlockDevice* parent)
      : BlockDevice(parent->block_words()), parent_(parent) {}

  BlockId NumBlocks() const override { return parent_->ViewNumBlocks(); }
  void EnsureCapacity(BlockId blocks) override {
    // Reads through Pager never grow; anything else is a write-path bug.
    TOKRA_CHECK(blocks <= NumBlocks());
  }
  bool SupportsBorrowedReads() const override {
    return parent_->ViewSupportsBorrows();
  }

 protected:
  void DoRead(BlockId id, word_t* dst) override;
  void DoWrite(BlockId id, const word_t* src) override;
  const word_t* DoBorrowRead(BlockId id) override {
    return parent_->ViewBorrow(id);
  }

 private:
  BlockDevice* parent_;
};

/// In-memory backend: the EM-model simulation the repository started with.
/// Volatile and zero-setup — the default for tests and benches.
///
/// Storage is a two-level table of fixed-size chunks rather than one
/// contiguous vector: growing allocates new chunks without ever moving
/// existing ones, so pointers handed out by ViewBorrow (and reads through a
/// shared read view on another thread) stay valid while the owner keeps
/// appending. Capacity tops out at kRootPages * kPageChunks * kChunkBlocks
/// blocks (2^28 blocks — far beyond any simulated disk here).
class MemBlockDevice final : public BlockDevice {
 public:
  static constexpr std::uint32_t kChunkBlocks = 1024;  // blocks per chunk
  static constexpr std::uint32_t kPageChunks = 512;    // chunk slots per page
  static constexpr std::uint32_t kRootPages = 512;     // page slots at root

  explicit MemBlockDevice(std::uint32_t block_words)
      : BlockDevice(block_words) {}
  ~MemBlockDevice() override;

  BlockId NumBlocks() const override {
    return num_blocks_.load(std::memory_order_acquire);
  }
  void EnsureCapacity(BlockId blocks) override;

  // The simulation supports zero-copy and shared read views natively: chunk
  // addresses are stable and a block never straddles chunks.
  bool SupportsBorrowedReads() const override { return true; }
  bool ViewSupportsReads() const override { return true; }
  bool ViewSupportsBorrows() const override { return true; }
  bool ViewRead(BlockId id, word_t* dst) override;
  const word_t* ViewBorrow(BlockId id) override { return BlockPtr(id); }

 protected:
  void DoRead(BlockId id, word_t* dst) override;
  void DoWrite(BlockId id, const word_t* src) override;
  void DoReadRun(BlockId first, std::uint32_t count, word_t* dst) override;
  void DoWriteRun(BlockId first, std::uint32_t count,
                  const word_t* src) override;
  const word_t* DoBorrowRead(BlockId id) override { return BlockPtr(id); }

 private:
  struct Page {
    std::atomic<word_t*> chunks[kPageChunks] = {};
  };

  std::size_t BytesPerBlock() const {
    return std::size_t{block_words()} * sizeof(word_t);
  }
  /// Address of block `id`, which must be < NumBlocks(). Safe from reader
  /// threads: chunk publication uses release stores matched by the acquire
  /// loads here and in NumBlocks().
  word_t* BlockPtr(BlockId id) const;

  std::atomic<Page*> pages_[kRootPages] = {};
  std::atomic<BlockId> num_blocks_{0};
};

/// Creates the backend `options` describes. `truncate_file` makes a file
/// backend start empty (fresh device) instead of opening existing contents;
/// it is ignored by the memory backend. Defined in file_block_device.cc.
std::unique_ptr<BlockDevice> MakeBlockDevice(const EmOptions& options,
                                             bool truncate_file);

}  // namespace tokra::em

#endif  // TOKRA_EM_BLOCK_DEVICE_H_
