// The (f,l)-group k-selection structure of Lemma 6 (Section 4).
//
// Stores an (f,l)-group G = (G_1, ..., G_f) of disjoint real-value sets in
// O(fl/B) blocks such that
//   * a query (interval [a1,a2] of set indices, rank k) returns a value whose
//     rank in the union of those sets lies in [k, c2*k) in O(lg_B(fl)) I/Os,
//   * insertions and deletions cost O(lg_B(fl)) I/Os amortized.
//
// Composition (all block-resident, reachable from one meta block):
//   * compressed sketch set (Section 4.1)  — O(1) blocks,
//   * compressed prefix set (Lemma 8)      — O(1) blocks,
//   * order-statistic B-tree on G          — rank <-> element conversion,
//   * order-statistic B-tree on each G_i   — local-rank selection.
//
// The per-set maxima needed by Lemma 4's Max operator come for free: the
// level-1 sketch pivot has rank window [1,2) = {1}, i.e. it IS the maximum.

#ifndef TOKRA_FLGROUP_FL_GROUP_H_
#define TOKRA_FLGROUP_FL_GROUP_H_

#include <cstdint>
#include <vector>

#include "btree/ostree.h"
#include "em/pager.h"
#include "flgroup/prefix_set.h"
#include "sketch/packed_set.h"
#include "sketch/select7.h"
#include "util/status.h"

namespace tokra::flgroup {

class FlGroup {
 public:
  struct Params {
    std::uint32_t f = 1;  ///< number of sets
    std::uint32_t l = 1;  ///< per-set capacity
  };

  /// The approximation constant c2 of the structure (inherited from the
  /// Lemma 7 sweep; see sketch/select7.cc).
  static constexpr std::uint64_t kApproxFactor = sketch::kSelect7Factor;

  /// Creates an empty group. Allocates the meta/sketch/prefix/handle blocks.
  static FlGroup Create(em::Pager* pager, Params params);

  /// Reopens from a persisted meta-block id.
  static FlGroup Open(em::Pager* pager, em::BlockId meta);

  em::BlockId meta_block() const { return meta_; }
  std::uint32_t f() const { return params_.f; }
  std::uint32_t l() const { return params_.l; }

  /// |G_i|. O(1) I/Os (sketch block).
  std::uint32_t SetSize(std::uint32_t i) const;

  /// Sum of |G_i| over [a1, a2]. O(1) I/Os.
  std::uint64_t SizeInRange(std::uint32_t a1, std::uint32_t a2) const;

  /// Inserts v into G_i. Values must be distinct across the whole group.
  /// O(lg_B(fl)) I/Os amortized.
  Status Insert(std::uint32_t i, double v);

  /// Deletes v from G_i. O(lg_B(fl)) I/Os amortized.
  Status Delete(std::uint32_t i, double v);

  struct SelectResult {
    bool neg_inf = false;  ///< -infinity answer (union smaller than 2k)
    double value = 0;
  };

  /// The Section 3.2 query: a value whose rank in U_{i in [a1,a2]} G_i lies
  /// in [k, c2*k), or -infinity. Requires 1 <= k <= SizeInRange(a1,a2).
  /// O(lg_B(fl)) I/Os.
  StatusOr<SelectResult> SelectApprox(std::uint32_t a1, std::uint32_t a2,
                                      std::uint64_t k) const;

  /// Maximum of U_{i in [a1,a2]} G_i. kNotFound if all empty. O(lg_B(fl)).
  StatusOr<double> MaxInRange(std::uint32_t a1, std::uint32_t a2) const;

  /// Minimum of G_i. kNotFound if empty. O(lg_B l) I/Os. (Used by Lemma 4's
  /// update algorithm to test whether a score enters G_u.)
  StatusOr<double> MinOfSet(std::uint32_t i) const;

  /// True iff v is in G_i. O(lg_B l) I/Os.
  bool Contains(std::uint32_t i, double v) const;

  /// Frees every block owned by the structure.
  void DestroyAll();

  /// Full validation: sketch windows + prefix ranks + trees agree. O(fl).
  void CheckInvariants() const;

 private:
  FlGroup(em::Pager* pager, em::BlockId meta, Params params,
          std::uint32_t p_cap)
      : pager_(pager), meta_(meta), params_(params), p_cap_(p_cap) {}

  // Meta block layout (words):
  //  [0] f   [1] l   [2] G-tree root   [3] G-tree size
  //  [4] #sketch blocks  [5] #prefix blocks  [6] #handle blocks
  //  [7...] the block ids, in that order.
  static constexpr std::size_t kMetaF = 0;
  static constexpr std::size_t kMetaL = 1;
  static constexpr std::size_t kMetaGRoot = 2;
  static constexpr std::size_t kMetaGSize = 3;
  static constexpr std::size_t kMetaNSketch = 4;
  static constexpr std::size_t kMetaNPrefix = 5;
  static constexpr std::size_t kMetaNHandle = 6;
  static constexpr std::size_t kMetaIds = 7;

  struct Blocks {
    btree::OsTreeRef g_tree;
    std::vector<em::BlockId> sketch;
    std::vector<em::BlockId> prefix;
    std::vector<em::BlockId> handle;
  };
  Blocks LoadBlocks() const;
  void StoreGTree(btree::OsTreeRef ref);

  sketch::PackedSketchSet LoadSketch(const Blocks& b) const;
  void StoreSketch(const Blocks& b, const sketch::PackedSketchSet& s);
  PrefixSet LoadPrefix(const Blocks& b) const;
  void StorePrefix(const Blocks& b, const PrefixSet& p);

  btree::OsTreeRef LoadSetTree(const Blocks& b, std::uint32_t i) const;
  void StoreSetTree(const Blocks& b, std::uint32_t i, btree::OsTreeRef ref);

  /// Repairs all invalid sketch levels of set i, preferring the prefix set
  /// (free) and falling back to the B-trees (O(lg_B(fl)) per level) exactly
  /// as Sections 4.2/4.3 prescribe.
  Status RepairInvalidLevels(const Blocks& blocks,
                             sketch::PackedSketchSet* sk,
                             const PrefixSet& prefix, std::uint32_t i);

  em::Pager* pager_;
  em::BlockId meta_;
  Params params_;
  std::uint32_t p_cap_;
};

}  // namespace tokra::flgroup

#endif  // TOKRA_FLGROUP_FL_GROUP_H_
