// Tests for logarithmic sketches, Lemma 7 selection, and the packed
// (rank-encoded) sketch set.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sketch/log_sketch.h"
#include "sketch/packed_set.h"
#include "sketch/select7.h"
#include "sketch/shard_fence.h"
#include "util/point.h"
#include "util/random.h"

namespace tokra::sketch {
namespace {

std::vector<double> SortedDesc(std::vector<double> v) {
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

TEST(LogSketchTest, EmptySet) {
  LogSketch s = LogSketch::Build({});
  EXPECT_EQ(s.levels(), 0u);
  EXPECT_EQ(s.set_size(), 0u);
  EXPECT_EQ(s.RankLowerBound(0.0), 0u);
}

TEST(LogSketchTest, LevelsCount) {
  Rng rng(1);
  for (std::size_t n : {1, 2, 3, 4, 7, 8, 9, 100, 1023, 1024, 1025}) {
    auto vals = SortedDesc(rng.DistinctDoubles(n, 0, 1));
    LogSketch s = LogSketch::Build(vals);
    EXPECT_EQ(s.levels(), FloorLog2(n) + 1) << n;
    s.CheckAgainst(vals);
  }
}

TEST(LogSketchTest, RankBoundsBracketTrueRank) {
  Rng rng(2);
  auto vals = SortedDesc(rng.DistinctDoubles(5000, 0, 1));
  LogSketch s = LogSketch::Build(vals);
  for (int probe = 0; probe < 500; ++probe) {
    double v = rng.UniformDouble(-0.1, 1.1);
    std::uint64_t true_rank = 0;
    for (double e : vals) {
      if (e >= v) ++true_rank;
    }
    std::uint64_t lo = s.RankLowerBound(v);
    std::uint64_t hi = s.RankUpperBound(v);
    EXPECT_LE(lo, true_rank);
    EXPECT_GE(hi, true_rank);
    if (lo > 0) {
      EXPECT_LT(hi, 4 * lo);
    }
  }
}

struct Lemma7Case {
  std::size_t m;          // number of sets
  std::size_t avg_size;   // average set size
  std::uint64_t seed;
};

class Lemma7PropertyTest : public ::testing::TestWithParam<Lemma7Case> {};

TEST_P(Lemma7PropertyTest, RankWithinFactor) {
  auto [m, avg, seed] = GetParam();
  Rng rng(seed);
  std::vector<std::vector<double>> sets(m);
  std::vector<double> universe;
  // Disjoint sets with skewed sizes.
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t sz = 1 + rng.Uniform(2 * avg);
    sets[i] = SortedDesc(rng.DistinctDoubles(sz, i * 1000.0,
                                             i * 1000.0 + 999.0));
    universe.insert(universe.end(), sets[i].begin(), sets[i].end());
  }
  std::sort(universe.begin(), universe.end(), std::greater<>());

  std::vector<LogSketch> sketches;
  std::vector<const LogSketch*> ptrs;
  for (auto& s : sets) sketches.push_back(LogSketch::Build(s));
  for (auto& s : sketches) ptrs.push_back(&s);

  for (std::uint64_t k = 1; k <= universe.size(); k = k * 2 + 1) {
    Select7Result res = SelectFromSketches(ptrs, k);
    std::uint64_t rank;
    if (res.neg_inf) {
      rank = universe.size();
    } else {
      rank = 0;
      for (double e : universe)
        if (e >= res.value) ++rank;
      // The result must be an element of the union.
      EXPECT_TRUE(std::binary_search(universe.begin(), universe.end(),
                                     res.value, std::greater<>()));
    }
    EXPECT_GE(rank, k) << "k=" << k;
    EXPECT_LT(rank, kSelect7Factor * k) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma7PropertyTest,
    ::testing::Values(Lemma7Case{1, 100, 11}, Lemma7Case{2, 50, 12},
                      Lemma7Case{8, 200, 13}, Lemma7Case{32, 40, 14},
                      Lemma7Case{64, 400, 15}, Lemma7Case{128, 10, 16}),
    [](const ::testing::TestParamInfo<Lemma7Case>& info) {
      return "m" + std::to_string(info.param.m) + "s" +
             std::to_string(info.param.avg_size);
    });

TEST(Select7Test, KBeyondUnionGoesNegInf) {
  auto vals = SortedDesc({5.0, 3.0, 1.0});
  LogSketch s = LogSketch::Build(vals);
  const LogSketch* p = &s;
  auto res = SelectFromSketches({&p, 1}, 100);
  EXPECT_TRUE(res.neg_inf);
}

// ---------------------------------------------------------------------
// PackedSketchSet: maintain a group of sets under random inserts/deletes and
// verify rank bookkeeping against a reference model after every operation.
// ---------------------------------------------------------------------

class PackedModel {
 public:
  explicit PackedModel(std::uint32_t f) : sets_(f) {}

  // Returns the global descending rank the value will have after insertion.
  std::uint32_t GlobalRankFor(double v) const {
    std::uint32_t r = 1;
    for (const auto& s : sets_)
      for (double e : s)
        if (e > v) ++r;
    return r;
  }
  std::uint32_t CurrentGlobalRank(double v) const {
    std::uint32_t r = 0;
    for (const auto& s : sets_)
      for (double e : s)
        if (e >= v) ++r;
    return r;
  }
  std::uint32_t LocalRank(std::uint32_t i, double v) const {
    std::uint32_t r = 0;
    for (double e : sets_[i])
      if (e >= v) ++r;
    return r;
  }
  void Insert(std::uint32_t i, double v) { sets_[i].insert(v); }
  void Delete(std::uint32_t i, double v) { sets_[i].erase(v); }
  const std::set<double>& set(std::uint32_t i) const { return sets_[i]; }

  // Value of the element with local descending rank r in set i.
  double LocalSelect(std::uint32_t i, std::uint32_t r) const {
    auto it = sets_[i].rbegin();
    std::advance(it, r - 1);
    return *it;
  }
  // Rank in the union of sets [a1, a2].
  std::uint64_t UnionRank(std::uint32_t a1, std::uint32_t a2, double v) const {
    std::uint64_t r = 0;
    for (std::uint32_t i = a1; i <= a2; ++i)
      for (double e : sets_[i])
        if (e >= v) ++r;
    return r;
  }
  // Value of the element with the given current global rank.
  double GlobalSelect(std::uint32_t g) const {
    std::vector<double> all;
    for (const auto& s : sets_) all.insert(all.end(), s.begin(), s.end());
    std::sort(all.begin(), all.end(), std::greater<>());
    return all.at(g - 1);
  }
  std::uint64_t TotalSize() const {
    std::uint64_t t = 0;
    for (const auto& s : sets_) t += s.size();
    return t;
  }

 private:
  std::vector<std::set<double>> sets_;
};

// Mirrors the flgroup repair protocol using the model as the "B-trees".
void RepairInvalid(PackedSketchSet* ps, const PackedModel& model,
                   std::uint32_t i) {
  std::vector<std::uint32_t> bad;
  ps->InvalidLevels(i, &bad);
  for (std::uint32_t j : bad) {
    std::uint64_t lo = std::uint64_t{1} << (j - 1);
    std::uint32_t target = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ps->set_size(i), lo + lo / 2));
    double v = model.LocalSelect(i, target);
    ps->SetPivot(i, j, model.CurrentGlobalRank(v), target);
  }
}

TEST(PackedSketchSetTest, SerializeRoundTrip) {
  PackedSketchSet a(4, 100);
  a.ApplyInsert(2, 1);
  a.SetPivot(2, 1, 1, 1);
  std::vector<em::word_t> buf(a.WordCount());
  a.Serialize(buf);
  PackedSketchSet b = PackedSketchSet::Deserialize(4, 100, buf);
  EXPECT_EQ(b.set_size(2), 1u);
  EXPECT_EQ(b.levels(2), 1u);
  EXPECT_EQ(b.global_rank(2, 1), 1u);
  EXPECT_EQ(b.local_rank(2, 1), 1u);
  b.CheckWellFormed();
}

struct PackedCase {
  std::uint32_t f;
  std::uint32_t l_cap;
  int ops;
  std::uint64_t seed;
};

class PackedSketchPropertyTest : public ::testing::TestWithParam<PackedCase> {
};

TEST_P(PackedSketchPropertyTest, MaintenanceKeepsWindowsAndApproximation) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  PackedSketchSet ps(c.f, c.l_cap);
  PackedModel model(c.f);

  std::vector<std::pair<std::uint32_t, double>> live;  // (set, value)
  std::set<double> used;
  for (int op = 0; op < c.ops; ++op) {
    bool do_insert = live.empty() || rng.Bernoulli(0.65);
    if (do_insert) {
      std::uint32_t i = static_cast<std::uint32_t>(rng.Uniform(c.f));
      if (model.set(i).size() >= c.l_cap) continue;
      double v;
      do {
        v = rng.UniformDouble(0, 1);
      } while (!used.insert(v).second);
      std::uint32_t g_new = model.GlobalRankFor(v);
      bool expanded = ps.ApplyInsert(i, g_new);
      model.Insert(i, v);
      live.emplace_back(i, v);
      if (expanded) {
        // New pivot = the set minimum (paper), only window-legal choice.
        std::uint32_t j = ps.levels(i);
        double min_v = *model.set(i).begin();
        ps.SetPivot(i, j, model.CurrentGlobalRank(min_v),
                    model.LocalRank(i, min_v));
      }
      RepairInvalid(&ps, model, i);
    } else {
      std::size_t pick = rng.Uniform(live.size());
      auto [i, v] = live[pick];
      live.erase(live.begin() + pick);
      std::uint32_t g_old = model.CurrentGlobalRank(v);
      auto effect = ps.ApplyDelete(i, g_old);
      model.Delete(i, v);
      if (effect.dangling) {
        std::uint32_t j = effect.dangling_level;
        std::uint64_t lo = std::uint64_t{1} << (j - 1);
        std::uint32_t target = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(ps.set_size(i), lo + lo / 2));
        double rv = model.LocalSelect(i, target);
        ps.SetPivot(i, j, model.CurrentGlobalRank(rv), target);
      }
      RepairInvalid(&ps, model, i);
    }
    ps.CheckWellFormed();

    // Verify every pivot's stored ranks are exactly right vs the model.
    for (std::uint32_t i = 0; i < c.f; ++i) {
      for (std::uint32_t j = 1; j <= ps.levels(i); ++j) {
        double v = model.GlobalSelect(ps.global_rank(i, j));
        EXPECT_EQ(model.LocalRank(i, v), ps.local_rank(i, j));
        EXPECT_TRUE(model.set(i).count(v) == 1)
            << "pivot must belong to its own set";
      }
    }
  }

  // Approximate selection over random subranges.
  for (int probe = 0; probe < 50; ++probe) {
    std::uint32_t a1 = static_cast<std::uint32_t>(rng.Uniform(c.f));
    std::uint32_t a2 =
        a1 + static_cast<std::uint32_t>(rng.Uniform(c.f - a1));
    std::uint64_t total = ps.SizeInRange(a1, a2);
    if (total == 0) continue;
    std::uint64_t k = 1 + rng.Uniform(total);
    auto res = ps.SelectApprox(a1, a2, k);
    std::uint64_t rank;
    if (res.neg_inf) {
      rank = total;
    } else {
      double v = model.GlobalSelect(res.global_rank);
      rank = model.UnionRank(a1, a2, v);
    }
    EXPECT_GE(rank, k);
    EXPECT_LT(rank, 8 * k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedSketchPropertyTest,
    ::testing::Values(PackedCase{1, 64, 300, 21}, PackedCase{4, 32, 400, 22},
                      PackedCase{8, 128, 600, 23},
                      PackedCase{16, 64, 800, 24},
                      PackedCase{3, 16, 500, 25}),
    [](const ::testing::TestParamInfo<PackedCase>& info) {
      return "f" + std::to_string(info.param.f) + "l" +
             std::to_string(info.param.l_cap) + "ops" +
             std::to_string(info.param.ops);
    });

// ---------------------------------------------------------------------------
// ShardFence: the per-shard pruning sketch (engine routing, DESIGN.md §11).
// Everything here tests SOUNDNESS — the fence may always fail to prune, but
// must never exclude a held point or under-report a reachable score.

std::vector<Point> FencePoints(Rng* rng, std::size_t n, double x_hi = 1e4) {
  auto xs = rng->DistinctDoubles(n, 0.0, x_hi);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

/// Brute-force oracle: RangeBound must cover the true in-range max.
void ExpectSoundOnRanges(const ShardFence& f, const std::vector<Point>& live,
                         Rng* rng, int ranges, double x_hi) {
  for (int i = 0; i < ranges; ++i) {
    double a = rng->UniformDouble(-0.1 * x_hi, 1.1 * x_hi);
    double b = rng->UniformDouble(-0.1 * x_hi, 1.1 * x_hi);
    if (a > b) std::swap(a, b);
    bool any = false;
    double best = 0;
    for (const Point& p : live) {
      if (p.x >= a && p.x <= b) {
        best = any ? std::max(best, p.score) : p.score;
        any = true;
      }
    }
    FenceBound fb = f.RangeBound(a, b);
    if (any) {
      EXPECT_TRUE(fb.maybe_nonempty);
      EXPECT_GE(fb.best_score, best);
    }
    // !any makes no claim: the fence may conservatively say nonempty.
  }
}

TEST(ShardFenceTest, BuildIsSoundAgainstBruteForce) {
  Rng rng(91);
  for (std::size_t n : {1, 2, 7, 64, 500}) {
    auto pts = FencePoints(&rng, n);
    ShardFence f = ShardFence::Build(pts, {});
    EXPECT_EQ(f.count(), n);
    f.CheckAgainst(pts);
    ExpectSoundOnRanges(f, pts, &rng, 200, 1e4);
  }
}

TEST(ShardFenceTest, IncrementalUpdatesStaySound) {
  Rng rng(92);
  auto pts = FencePoints(&rng, 600);
  std::vector<Point> base(pts.begin(), pts.begin() + 300);
  ShardFence f = ShardFence::Build(base, {});
  std::vector<Point> live = base;
  // Inserts beyond the anchored span (clamped into edge slots) and inside.
  for (std::size_t i = 300; i < 600; ++i) {
    f.Insert(pts[i]);
    live.push_back(pts[i]);
  }
  f.CheckAgainst(live);
  // Delete every third point: counts stay exact, score bounds go stale but
  // must remain upper bounds.
  std::vector<Point> rest;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (i % 3 == 0) {
      f.Delete(live[i]);
    } else {
      rest.push_back(live[i]);
    }
  }
  f.CheckAgainst(rest);
  ExpectSoundOnRanges(f, rest, &rng, 300, 1e4);
}

TEST(ShardFenceTest, BloomHasNoFalseNegatives) {
  Rng rng(93);
  auto pts = FencePoints(&rng, 400);
  ShardFence f = ShardFence::Build(pts, {});
  for (const Point& p : pts) EXPECT_TRUE(f.MightContain(p.x));
  // Deletes never clear bits: the remaining points must all still pass.
  for (std::size_t i = 0; i < pts.size(); i += 2) f.Delete(pts[i]);
  for (std::size_t i = 1; i < pts.size(); i += 2) {
    EXPECT_TRUE(f.MightContain(pts[i].x));
  }
  // Absent keys outside the key bounds are definite misses.
  EXPECT_FALSE(f.MightContain(-5.0));
  EXPECT_FALSE(f.MightContain(2e4));
}

TEST(ShardFenceTest, SerializeRoundTrip) {
  Rng rng(94);
  auto pts = FencePoints(&rng, 250);
  ShardFence f = ShardFence::Build(pts, {});
  // Mutate past the build so non-trivial incremental state round-trips too.
  f.Delete(pts[0]);
  f.Delete(pts[1]);
  std::vector<Point> live(pts.begin() + 2, pts.end());
  auto words = f.Serialize();
  auto g = ShardFence::Deserialize(words);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->count(), f.count());
  g->CheckAgainst(live);
  // Behavioral equality on a probe grid.
  for (int i = 0; i <= 100; ++i) {
    double a = i * 1e2, b = a + 7.5e2;
    FenceBound fa = f.RangeBound(a, b), fb = g->RangeBound(a, b);
    EXPECT_EQ(fa.maybe_nonempty, fb.maybe_nonempty);
    if (fa.maybe_nonempty) {
      EXPECT_EQ(fa.best_score, fb.best_score);
    }
    EXPECT_EQ(f.MightContain(a), g->MightContain(a));
  }
}

TEST(ShardFenceTest, DeserializeRejectsCorruption) {
  Rng rng(95);
  auto words = ShardFence::Build(FencePoints(&rng, 50), {}).Serialize();
  EXPECT_FALSE(ShardFence::Deserialize({}).ok());
  auto truncated = words;
  truncated.resize(words.size() - 3);
  EXPECT_FALSE(ShardFence::Deserialize(truncated).ok());
  auto bad_magic = words;
  bad_magic[0] ^= 1;
  EXPECT_FALSE(ShardFence::Deserialize(bad_magic).ok());
}

TEST(ShardFenceTest, EmptyBuildAndGrowth) {
  ShardFence f = ShardFence::Build({}, {});
  EXPECT_EQ(f.count(), 0u);
  EXPECT_FALSE(f.RangeBound(-1e18, 1e18).maybe_nonempty);
  EXPECT_FALSE(f.MightContain(0.0));
  // An empty-built fence is unanchored (every key maps to one slot) but
  // must stay sound as points arrive.
  Rng rng(96);
  auto pts = FencePoints(&rng, 100);
  for (const Point& p : pts) f.Insert(p);
  f.CheckAgainst(pts);
  ExpectSoundOnRanges(f, pts, &rng, 100, 1e4);
  for (const Point& p : pts) f.Delete(p);
  EXPECT_EQ(f.count(), 0u);
  EXPECT_FALSE(f.RangeBound(-1e18, 1e18).maybe_nonempty);
}

}  // namespace
}  // namespace tokra::sketch
