#include "em/file_block_device.h"

#include "em/mmap_block_device.h"
#include "em/uring_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tokra::em {

FileBlockDevice::FileBlockDevice(std::uint32_t block_words, FileOptions options)
    : BlockDevice(block_words),
      path_(std::move(options.path)),
      durable_sync_(options.durable_sync),
      read_only_(options.read_only) {
  TOKRA_CHECK(!path_.empty());
  // A read-only device cannot create or truncate: it serves an existing
  // immutable file (the snapshot contract).
  TOKRA_CHECK(!(read_only_ && options.truncate));
  int flags = read_only_ ? O_RDONLY
                         : O_RDWR | O_CREAT | (options.truncate ? O_TRUNC : 0);
  fd_ = ::open(path_.c_str(), flags, 0644);
  TOKRA_CHECK(fd_ >= 0);
  struct stat st;
  TOKRA_CHECK(::fstat(fd_, &st) == 0);
  // Floor a size that is not a whole number of blocks (geometry mismatch or
  // external tampering): the pager's superblock validation rejects such
  // devices with a proper Status instead of an abort here.
  num_blocks_ = static_cast<std::uint64_t>(st.st_size) / BlockBytes();
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

void FileBlockDevice::EnsureCapacity(BlockId blocks) {
  if (blocks <= num_blocks_) return;
  TOKRA_CHECK(!read_only_ && "cannot grow a read-only device");
  TOKRA_CHECK(::ftruncate(fd_, static_cast<off_t>(blocks * BlockBytes())) == 0);
  num_blocks_ = blocks;
}

void FileBlockDevice::Sync() {
  if (durable_sync_ && !read_only_) {
    TOKRA_CHECK(::fsync(fd_) == 0);
    CountSync();
  }
}

void FileBlockDevice::DropOsCache() {
  // Dirty pages are immune to DONTNEED, so flush first; then ask the kernel
  // to drop the file's clean page-cache pages. Advisory — a best-effort
  // bench hook, not a correctness barrier.
  if (!read_only_) ::fsync(fd_);
  ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
}

void FileBlockDevice::DoRead(BlockId id, word_t* dst) {
  PreadFull(id * BlockBytes(), dst, BlockBytes());
}

void FileBlockDevice::DoWrite(BlockId id, const word_t* src) {
  TOKRA_CHECK(!read_only_ && "write to a read-only device");
  PwriteFull(id * BlockBytes(), src, BlockBytes());
}

void FileBlockDevice::DoReadRun(BlockId first, std::uint32_t count,
                                word_t* dst) {
  PreadFull(first * BlockBytes(), dst, count * BlockBytes());
}

void FileBlockDevice::DoWriteRun(BlockId first, std::uint32_t count,
                                 const word_t* src) {
  PwriteFull(first * BlockBytes(), src, count * BlockBytes());
}

void FileBlockDevice::PreadFull(std::uint64_t offset, void* buf,
                                std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = ::pread(fd_, p, len, static_cast<off_t>(offset));
    if (n < 0 && errno == EINTR) continue;
    TOKRA_CHECK(n > 0);  // EOF inside the device means a corrupt file
    p += n;
    offset += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

void FileBlockDevice::PwriteFull(std::uint64_t offset, const void* buf,
                                 std::size_t len) {
  TOKRA_CHECK(!read_only_ && "write to a read-only device");
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t n = ::pwrite(fd_, p, len, static_cast<off_t>(offset));
    if (n < 0 && errno == EINTR) continue;
    TOKRA_CHECK(n > 0);
    p += n;
    offset += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

std::unique_ptr<BlockDevice> MakeBlockDevice(const EmOptions& options,
                                             bool truncate_file) {
  const FileBlockDevice::FileOptions file_options{
      .path = options.path,
      .truncate = truncate_file,
      .durable_sync = options.durable_sync,
      .read_only = options.read_only};
  switch (options.backend) {
    case Backend::kMem:
      return std::make_unique<MemBlockDevice>(options.block_words);
    case Backend::kFile:
      return std::make_unique<FileBlockDevice>(options.block_words,
                                               file_options);
    case Backend::kUring:
      // Compile-time gate (kernel header present) + runtime probe (this
      // kernel grants rings); either failing falls back to the synchronous
      // file device — same file format, same I/O counts, batches served by
      // the base-class loop — so kUring is always safe to request.
#if defined(TOKRA_HAVE_URING)
      if (UringBlockDevice::Supported()) {
        return std::make_unique<UringBlockDevice>(
            options.block_words, file_options, options.io_queue_depth,
            options.io_register_buffers);
      }
#endif
      return std::make_unique<FileBlockDevice>(options.block_words,
                                               file_options);
    case Backend::kMmap:
      // Same file format as kFile; only where reads are served from
      // differs. Falls back to plain file reads internally if the kernel
      // refuses the mapping, so kMmap is always safe to request.
      return std::make_unique<MmapBlockDevice>(options.block_words,
                                               file_options);
  }
  TOKRA_CHECK(false);  // unreachable
  return nullptr;
}

}  // namespace tokra::em
