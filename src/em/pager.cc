#include "em/pager.h"

#include <filesystem>

#include "util/bits.h"

namespace tokra::em {
namespace {

// Superblock word layout. Roots follow the header; the free list follows
// the roots, spilling into whole blocks claimed from the allocator when it
// outgrows the superblock (the region is reserved — recorded in the
// superblock and returned to the free list only when the *next* checkpoint
// supersedes it — so post-checkpoint allocations can never overwrite the
// spill a recovery would read).
//
// Two superblock slots (blocks 0 and 1) alternate by epoch, and each slot
// carries a checksum: a crash mid-checkpoint — even a torn superblock
// write — leaves the previous slot intact, so Open() always recovers the
// newest *complete* checkpoint.
constexpr word_t kSuperMagic = 0x544F4B5241504752ULL;  // "TOKRAPGR"
constexpr word_t kSuperVersion = 2;
constexpr std::size_t kWMagic = 0;
constexpr std::size_t kWVersion = 1;
constexpr std::size_t kWBlockWords = 2;
constexpr std::size_t kWNextBlock = 3;
constexpr std::size_t kWBlocksInUse = 4;
constexpr std::size_t kWRootCount = 5;
constexpr std::size_t kWFreeCount = 6;
constexpr std::size_t kWSpillBlocks = 7;
constexpr std::size_t kWSpillStart = 8;
constexpr std::size_t kWEpoch = 9;
constexpr std::size_t kWChecksum = 10;

/// Mixes all superblock words except the checksum slot itself.
word_t SuperChecksum(std::span<const word_t> words) {
  word_t h = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i == kWChecksum) continue;
    h ^= words[i];
    h *= 0x2545F4914F6CDD1DULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

Pager::Pager(const EmOptions& options)
    : Pager(options, MakeBlockDevice(options, /*truncate_file=*/true)) {
  // A fresh pager formats the device; read-only only makes sense for
  // Open() on an existing checkpoint.
  TOKRA_CHECK(!options.read_only);
  device_->EnsureCapacity(kReservedBlocks);  // the two superblock slots
}

Pager::Pager(const EmOptions& options, std::unique_ptr<BlockDevice> device)
    : options_(options),
      device_(std::move(device)),
      pool_(device_.get(), options.pool_frames) {
  options.Validate();
}

Status Pager::Checkpoint(std::span<const std::uint64_t> roots) {
  if (options_.read_only) {
    return Status::FailedPrecondition("pager is read-only (snapshot mode)");
  }
  const std::uint32_t b = B();
  if (b < kSuperHeaderWords ||
      roots.size() > b - kSuperHeaderWords) {
    return Status::InvalidArgument("root directory exceeds superblock");
  }
  pool_.FlushAll();

  // The previous checkpoint's spill region becomes free the moment this
  // checkpoint supersedes it; until then its blocks stayed reserved, so no
  // post-checkpoint allocation could have overwritten data a recovery of
  // the previous checkpoint would read.
  for (std::uint32_t i = 0; i < spill_count_; ++i) {
    free_list_.push_back(spill_start_ + i);
  }
  spill_count_ = 0;

  std::vector<word_t> super(b, 0);
  super[kWMagic] = kSuperMagic;
  super[kWVersion] = kSuperVersion;
  super[kWBlockWords] = b;
  super[kWBlocksInUse] = blocks_in_use_;
  super[kWRootCount] = roots.size();
  super[kWFreeCount] = free_list_.size();
  std::size_t w = kSuperHeaderWords;
  for (std::uint64_t r : roots) super[w++] = r;

  const std::size_t inline_cap = b - w;
  const std::size_t n_inline = std::min(free_list_.size(), inline_cap);
  for (std::size_t i = 0; i < n_inline; ++i) super[w++] = free_list_[i];

  const std::size_t spill = free_list_.size() - n_inline;
  const std::uint32_t spill_blocks =
      static_cast<std::uint32_t>(CeilDiv(spill, std::size_t{b}));
  if (spill_blocks > 0) {
    // Claim a fresh reserved region at the high-water mark; it is excluded
    // from blocks_in_use_ (pager-internal, not application space).
    spill_start_ = next_block_;
    spill_count_ = spill_blocks;
    next_block_ += spill_blocks;
    spill_scratch_.assign(std::size_t{spill_blocks} * b, 0);
    for (std::size_t i = 0; i < spill; ++i) {
      spill_scratch_[i] = free_list_[n_inline + i];
    }
    device_->WriteRun(spill_start_, spill_blocks, spill_scratch_.data());
  }
  super[kWNextBlock] = next_block_;
  super[kWSpillBlocks] = spill_blocks;
  super[kWSpillStart] = spill_start_;
  super[kWEpoch] = epoch_ + 1;
  super[kWChecksum] = SuperChecksum(super);

  // Barrier, superblock to the alternate slot, barrier: data and spill are
  // durable before a superblock references them, and a torn superblock
  // write invalidates only the new slot (bad checksum), never the old one.
  device_->Sync();
  device_->Write((epoch_ + 1) % kReservedBlocks, super.data());
  device_->Sync();
  ++epoch_;
  roots_.assign(roots.begin(), roots.end());
  return Status::Ok();
}

Status Pager::LoadSuperblock() {
  const std::uint32_t b = B();
  if (b < kSuperHeaderWords) {
    return Status::FailedPrecondition("block too small for a superblock");
  }
  if (device_->NumBlocks() < 1) {
    return Status::FailedPrecondition("device has no superblock");
  }
  // Read both slots; take the valid one with the highest epoch (a crash
  // mid-checkpoint leaves at most the newest slot invalid).
  std::vector<word_t> super;
  word_t best_epoch = 0;
  bool found = false;
  for (BlockId slot = 0; slot < kReservedBlocks && slot < device_->NumBlocks();
       ++slot) {
    std::vector<word_t> cand(b, 0);
    device_->Read(slot, cand.data());
    if (cand[kWMagic] != kSuperMagic || cand[kWVersion] != kSuperVersion ||
        cand[kWChecksum] != SuperChecksum(cand)) {
      continue;
    }
    if (!found || cand[kWEpoch] > best_epoch) {
      best_epoch = cand[kWEpoch];
      super = std::move(cand);
      found = true;
    }
  }
  if (!found) {
    return Status::FailedPrecondition(
        "no valid superblock (never checkpointed, or corrupt)");
  }
  if (super[kWBlockWords] != b) {
    return Status::FailedPrecondition("block_words mismatch with checkpoint");
  }
  next_block_ = super[kWNextBlock];
  blocks_in_use_ = super[kWBlocksInUse];
  epoch_ = best_epoch;
  const std::size_t root_count = super[kWRootCount];
  const std::size_t free_count = super[kWFreeCount];
  const std::uint32_t spill_blocks =
      static_cast<std::uint32_t>(super[kWSpillBlocks]);
  spill_start_ = super[kWSpillStart];
  spill_count_ = spill_blocks;
  if (root_count > b - kSuperHeaderWords) {
    return Status::FailedPrecondition("corrupt superblock root count");
  }
  std::size_t w = kSuperHeaderWords;
  roots_.assign(super.begin() + w, super.begin() + w + root_count);
  w += root_count;

  free_list_.clear();
  free_list_.reserve(free_count);
  const std::size_t n_inline = std::min(free_count, std::size_t{b} - w);
  for (std::size_t i = 0; i < n_inline; ++i) free_list_.push_back(super[w++]);
  const std::size_t spill = free_count - n_inline;
  if (CeilDiv(spill, std::size_t{b}) != spill_blocks) {
    return Status::FailedPrecondition("corrupt superblock free list");
  }
  if (spill_blocks > 0) {
    if (spill_start_ + spill_blocks > device_->NumBlocks()) {
      return Status::FailedPrecondition("truncated free-list spill");
    }
    spill_scratch_.assign(std::size_t{spill_blocks} * b, 0);
    device_->ReadRun(spill_start_, spill_blocks, spill_scratch_.data());
    for (std::size_t i = 0; i < spill; ++i) {
      free_list_.push_back(spill_scratch_[i]);
    }
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Pager>> Pager::Open(const EmOptions& options) {
  options.Validate();
  if (options.backend == Backend::kMem) {
    return Status::InvalidArgument("Open requires a file-backed backend");
  }
  if (!std::filesystem::exists(options.path)) {
    return Status::NotFound("no such device file: " + options.path);
  }
  auto device = MakeBlockDevice(options, /*truncate_file=*/false);
  auto pager =
      std::unique_ptr<Pager>(new Pager(options, std::move(device)));
  TOKRA_RETURN_IF_ERROR(pager->LoadSuperblock());
  return pager;
}

}  // namespace tokra::em
