// Low-overhead telemetry: counters, gauges, and log-bucketed latency
// histograms behind a named registry.
//
// Design constraints (DESIGN.md §10):
//   * Recording must be cheap enough to stay on every hot path — one
//     relaxed fetch-add on a per-thread shard, no locks, no allocation.
//     The only mutex in this file guards metric *registration*, which
//     happens once per metric at engine construction.
//   * Reads (DumpMetrics, Snapshot) tolerate concurrent writers: relaxed
//     sums may be slightly behind in-flight increments but never torn —
//     after writers quiesce (thread join) the totals are exact.
//   * Histograms bucket by powers of two (bucket b holds values v with
//     bit_width(v) == b, so bucket 0 = {0} and bucket b covers
//     [2^(b-1), 2^b - 1]): Record is a bit_width + fetch_add, percentile
//     extraction walks 65 buckets, and the recorded maximum is exact.

#ifndef TOKRA_OBS_METRICS_H_
#define TOKRA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tokra::obs {

/// Microseconds since an arbitrary process-wide steady epoch. The shared
/// timebase of every histogram record, span, and trace export.
std::uint64_t NowUs();

/// Dense per-thread index used to pick a metric shard: the first
/// kMetricShards threads get distinct shards, later ones wrap.
std::uint32_t ThreadSlot();

inline constexpr std::uint32_t kMetricShards = 8;

/// Monotonic counter. Add is one relaxed fetch-add on this thread's shard.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    shards_[ThreadSlot() % kMetricShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins signed value (queue depths, space accounting).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Bucket count of a Histogram: bit_width ranges over [0, 64].
inline constexpr std::uint32_t kHistogramBuckets = 65;

/// Inclusive value range of histogram bucket `b`.
constexpr std::uint64_t BucketLo(std::uint32_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}
constexpr std::uint64_t BucketHi(std::uint32_t b) {
  return b == 0 ? 0 : (BucketLo(b) - 1) + BucketLo(b);
}
/// Bucket holding value `v`.
constexpr std::uint32_t BucketOf(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::bit_width(v));
}

/// Point-in-time view of a histogram's distribution.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;  ///< exact largest recorded value
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Value at quantile q in (0, 1]: the bucket holding the ceil(q*count)-th
  /// smallest record, linearly interpolated inside it (so the result always
  /// lies within that bucket's [lo, hi] range and is capped by `max`).
  /// 0 when empty.
  double Percentile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log-bucketed latency/value histogram with per-thread sharded buckets.
class Histogram {
 public:
  void Record(std::uint64_t v) {
    Shard& s = shards_[ThreadSlot() % kMetricShards];
    s.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    // Exact max: CAS loop, contended only while the maximum is actually
    // advancing (rare after warm-up).
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::atomic<std::uint64_t> max_{0};
};

/// Records NowUs()-elapsed into a histogram on destruction. A null
/// histogram disables the timer entirely (no clock reads), so
/// instrumented code pays nothing when telemetry is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h), start_(h ? NowUs() : 0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Record(NowUs() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_;
};

/// Named metric registry with a Prometheus-style text exposition.
///
/// Get* registers on first use and returns a stable pointer (callers cache
/// it; recording never goes through the registry again). `labels` is an
/// optional Prometheus label body without braces, e.g. `shard="3"` — the
/// same name may be registered once per distinct label set.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "");

  /// `name{label} value` exposition lines, one metric family per TYPE
  /// comment, registration order. Histograms dump as summaries: quantile
  /// lines (0.5/0.95/0.99) plus _max/_sum/_count.
  std::string DumpMetrics() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(Kind kind, const std::string& name,
                      const std::string& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // stable pointers
};

}  // namespace tokra::obs

#endif  // TOKRA_OBS_METRICS_H_
