// Small integer helpers used throughout the library.

#ifndef TOKRA_UTIL_BITS_H_
#define TOKRA_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "util/check.h"

namespace tokra {

/// ceil(a / b) for positive integers.
constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// floor(lg x) for x >= 1.
constexpr std::uint32_t FloorLog2(std::uint64_t x) {
  return x == 0 ? 0 : 63 - std::countl_zero(x);
}

/// ceil(lg x) for x >= 1.
constexpr std::uint32_t CeilLog2(std::uint64_t x) {
  if (x <= 1) return 0;
  return FloorLog2(x - 1) + 1;
}

/// The paper's lg_b(x) = max{1, log_b x}; used for all complexity targets.
/// Computed on integers: the least h >= 1 with b^h >= x.
constexpr std::uint32_t LogB(std::uint64_t base, std::uint64_t x) {
  if (base < 2) base = 2;
  std::uint32_t h = 1;
  std::uint64_t p = base;
  while (p < x) {
    // Guard overflow: once p exceeds x / base the next multiply covers x.
    if (p > x / base) return h + 1;
    p *= base;
    ++h;
  }
  return h;
}

/// max{1, lg x} with log base 2 (the paper's lg x convention).
constexpr std::uint32_t Lg(std::uint64_t x) {
  std::uint32_t v = CeilLog2(x);
  return v == 0 ? 1 : v;
}

/// True iff x is a power of two (x >= 1).
constexpr bool IsPowerOfTwo(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Integer sqrt (floor).
constexpr std::uint64_t FloorSqrt(std::uint64_t x) {
  std::uint64_t r = 0;
  std::uint64_t bit = std::uint64_t{1} << 62;
  while (bit > x) bit >>= 2;
  while (bit != 0) {
    if (x >= r + bit) {
      x -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  return r;
}

}  // namespace tokra

#endif  // TOKRA_UTIL_BITS_H_
