// EINTR- and short-transfer-safe wrappers over the POSIX read/write family.
//
// Every raw pread/pwrite/recv/send in the tree goes through one of these
// loops: a signal mid-syscall (EINTR) restarts the call, and a short
// transfer — legal for regular files near EOF and routine for sockets and
// pipes — continues from where the kernel stopped. Callers get exactly one
// of three outcomes: the full `len` bytes moved, a clean EOF (reads), or
// the failing call's errno. Shared by FileBlockDevice (block I/O on regular
// files) and repl::Conn (snapshot/WAL shipping over TCP).

#ifndef TOKRA_UTIL_IO_RETRY_H_
#define TOKRA_UTIL_IO_RETRY_H_

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

namespace tokra {

/// Return value of the Full helpers when the stream ended (or, for writes,
/// the kernel reported progress-free completion) before `len` bytes moved.
/// Positive returns are the failing syscall's errno; 0 is full success.
inline constexpr int kIoEof = -1;

/// Reads exactly `len` bytes at `offset` (pread; the fd's cursor is
/// untouched). Returns 0, kIoEof, or an errno. `*transferred`, when
/// non-null, receives the bytes actually read — on kIoEof the prefix that
/// did arrive.
inline int PreadFull(int fd, void* buf, std::size_t len, std::uint64_t offset,
                     std::size_t* transferred = nullptr) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, p + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (transferred != nullptr) *transferred = done;
      return errno;
    }
    if (n == 0) {
      if (transferred != nullptr) *transferred = done;
      return kIoEof;
    }
    done += static_cast<std::size_t>(n);
  }
  if (transferred != nullptr) *transferred = done;
  return 0;
}

/// Writes exactly `len` bytes at `offset` (pwrite). Returns 0 or an errno
/// (a progress-free pwrite of a nonzero count maps to EIO rather than
/// looping forever).
inline int PwriteFull(int fd, const void* buf, std::size_t len,
                      std::uint64_t offset) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, p + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    if (n == 0) return EIO;
    done += static_cast<std::size_t>(n);
  }
  return 0;
}

/// Reads exactly `len` bytes from a stream fd (socket, pipe) at its cursor.
/// Returns 0, kIoEof (peer closed mid-message; `*transferred` tells whether
/// any partial prefix arrived), or an errno.
inline int ReadFull(int fd, void* buf, std::size_t len,
                    std::size_t* transferred = nullptr) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, p + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (transferred != nullptr) *transferred = done;
      return errno;
    }
    if (n == 0) {
      if (transferred != nullptr) *transferred = done;
      return kIoEof;
    }
    done += static_cast<std::size_t>(n);
  }
  if (transferred != nullptr) *transferred = done;
  return 0;
}

/// Writes exactly `len` bytes to a stream fd. Uses send(MSG_NOSIGNAL) so a
/// closed peer surfaces as EPIPE instead of killing the process, falling
/// back to write() for fds that are not sockets (ENOTSOCK). Returns 0 or an
/// errno.
inline int WriteFull(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  bool use_send = true;
  while (done < len) {
    ssize_t n;
    if (use_send) {
      n = ::send(fd, p + done, len - done, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_send = false;
        continue;
      }
    } else {
      n = ::write(fd, p + done, len - done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    if (n == 0) return EIO;
    done += static_cast<std::size_t>(n);
  }
  return 0;
}

}  // namespace tokra

#endif  // TOKRA_UTIL_IO_RETRY_H_
