// Tests for the Lemma 4 structure.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "em/pager.h"
#include "internal/naive.h"
#include "lemma4/structure.h"
#include "util/random.h"

namespace tokra::lemma4 {
namespace {

em::EmOptions Opts(std::uint32_t bw = 128) {
  return em::EmOptions{.block_words = bw, .pool_frames = 64};
}

// Small parameters so the multi-slab/FlGroup machinery is exercised even at
// test scale (the derived paper parameters make leaves enormous).
Lemma4Selector::Params SmallParams() {
  return Lemma4Selector::Params{.fanout = 4, .l = 32, .leaf_cap = 256};
}

std::vector<Point> RandomPoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, 1000.0);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

TEST(Lemma4Test, EmptyAndErrors) {
  em::Pager pager(Opts());
  Lemma4Selector s = Lemma4Selector::Build(&pager, {}, SmallParams());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.CountInRange(0, 10), 0u);
  EXPECT_FALSE(s.SelectApprox(0, 10, 1).ok());
  EXPECT_EQ(s.Delete({1, 1}).code(), StatusCode::kNotFound);
  EXPECT_EQ(s.SelectApprox(0, 1, 1000).status().code(),
            StatusCode::kInvalidArgument);  // k > l
  s.CheckInvariants();
}

TEST(Lemma4Test, DestroyReleasesBlocks) {
  em::Pager pager(Opts());
  std::uint64_t base = pager.BlocksInUse();
  Rng rng(1);
  Lemma4Selector s =
      Lemma4Selector::Build(&pager, RandomPoints(&rng, 3000), SmallParams());
  s.DestroyAll();
  EXPECT_EQ(pager.BlocksInUse(), base);
}

struct L4Case {
  std::size_t n;
  int updates;
  std::uint64_t seed;
};

class Lemma4PropertyTest : public ::testing::TestWithParam<L4Case> {};

TEST_P(Lemma4PropertyTest, ApproximationAgainstOracle) {
  const auto& c = GetParam();
  em::Pager pager(Opts());
  Rng rng(c.seed);
  std::vector<Point> live = RandomPoints(&rng, c.n);
  Lemma4Selector s = Lemma4Selector::Build(&pager, live, SmallParams());
  s.CheckInvariants();

  std::set<double> used_x, used_s;
  for (const Point& p : live) {
    used_x.insert(p.x);
    used_s.insert(p.score);
  }
  for (int op = 0; op < c.updates; ++op) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      double x, sc;
      do {
        x = rng.UniformDouble(0, 1000);
      } while (!used_x.insert(x).second);
      do {
        sc = rng.UniformDouble(0, 1);
      } while (!used_s.insert(sc).second);
      ASSERT_TRUE(s.Insert({x, sc}).ok());
      live.push_back({x, sc});
    } else {
      std::size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(s.Delete(live[pick]).ok());
      live.erase(live.begin() + pick);
    }
  }
  s.CheckInvariants();
  EXPECT_EQ(s.size(), live.size());

  for (int probe = 0; probe < 60; ++probe) {
    double a = rng.UniformDouble(-10, 1010), b = rng.UniformDouble(-10, 1010);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    std::uint64_t total = internal::NaiveRangeCount(live, x1, x2);
    EXPECT_EQ(s.CountInRange(x1, x2), total);
    if (total == 0) continue;
    std::uint64_t k = 1 + rng.Uniform(std::min<std::uint64_t>(total, s.l()));
    auto res = s.SelectApprox(x1, x2, k);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    std::uint64_t rank =
        internal::NaiveScoreRankInRange(live, x1, x2, *res);
    EXPECT_GE(rank, k);
    EXPECT_LT(rank, Lemma4Selector::kApproxFactor * k);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma4PropertyTest,
                         ::testing::Values(L4Case{300, 100, 1},
                                           L4Case{3000, 400, 2},
                                           L4Case{10000, 600, 3},
                                           L4Case{1000, 1500, 4}),
                         [](const ::testing::TestParamInfo<L4Case>& info) {
                           return "n" + std::to_string(info.param.n) + "u" +
                                  std::to_string(info.param.updates);
                         });

}  // namespace
}  // namespace tokra::lemma4
