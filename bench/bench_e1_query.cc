// E1 — Theorem 1 query cost: O(lg n + k/B) I/Os.
//   (a) fixed k, growing n: the additive term grows logarithmically;
//   (b) fixed n, growing k: cost tracks k/B linearly past the base.

#include "bench/common.h"
#include "core/topk_index.h"
#include "util/bits.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e1_query");
  std::printf("# E1: Theorem 1 query I/Os vs n and k\n");

  Header("E1a: query I/Os vs n (k=16, B=256)",
         {"n", "lg n", "query I/Os (avg of 20)", "I/Os / lg n"});
  for (std::size_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 64});
    Rng rng(1);
    auto built = core::TopkIndex::Build(&pager, RandomPoints(&rng, n));
    auto& idx = *built;
    std::uint64_t total = 0;
    const int probes = 20;
    // Per-probe wall-time distribution, split into the cache-drop cost and
    // the cold probe itself (the part Theorem 1 bounds).
    obs::Histogram lat, drop_h, probe_h;
    for (int i = 0; i < probes; ++i) {
      double a = rng.UniformDouble(0, 1e6), b = rng.UniformDouble(0, 1e6);
      double x1 = std::min(a, b), x2 = std::max(a, b);
      const std::uint64_t t0 = obs::NowUs();
      pager.DropCache();
      const std::uint64_t t1 = obs::NowUs();
      em::IoStats before = pager.stats();
      idx->TopK(x1, x2, 16).value();
      const std::uint64_t t2 = obs::NowUs();
      total += (pager.stats() - before).TotalIos();
      drop_h.Record(t1 - t0);
      probe_h.Record(t2 - t1);
      lat.Record(t2 - t0);
    }
    double avg = static_cast<double>(total) / probes;
    Row({U(n), U(Lg(n)), D(avg), D(avg / Lg(n))});
    RecordIoStats("E1a n=" + U(n), pager.stats());
    RecordLatency("E1a n=" + U(n), lat.Snapshot());
    RecordStages("E1a n=" + U(n), {{"drop_cache", drop_h.Snapshot()},
                                   {"cold_probe", probe_h.Snapshot()}});
  }

  Header("E1b: query I/Os vs k (n=2^17, B=256)",
         {"k", "k/B", "query I/Os (avg of 12)", "I/Os - base"});
  {
    em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 64});
    Rng rng(2);
    const std::size_t n = 1u << 17;
    auto built = core::TopkIndex::Build(&pager, RandomPoints(&rng, n));
    auto& idx = *built;
    double base = 0;
    for (std::uint64_t k : {1u, 16u, 128u, 1024u, 4096u, 16384u}) {
      std::uint64_t total = 0;
      const int probes = 12;
      obs::Histogram lat;
      for (int i = 0; i < probes; ++i) {
        double x1 = rng.UniformDouble(0, 4e5);
        double x2 = x1 + 5e5;  // wide range so k points exist
        obs::ScopedTimer probe_timer(&lat);
        total += ColdIos(&pager, [&] { idx->TopK(x1, x2, k).value(); });
      }
      double avg = static_cast<double>(total) / probes;
      if (k == 1) base = avg;
      Row({U(k), D(static_cast<double>(k) / 256.0), D(avg), D(avg - base)});
      RecordLatency("E1b k=" + U(k), lat.Snapshot());
    }
    RecordIoStats("E1b total", pager.stats());
  }
  std::printf(
      "\nShape check: E1a column 4 roughly constant; E1b column 4 tracks "
      "k/B.\n");
  return 0;
}
