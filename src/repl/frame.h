// Replication wire framing: length-prefixed, CRC-checked frames over a
// byte stream — the whole protocol dependency of the serving tier (plain
// TCP, no RPC library).
//
// Every message is one frame:
//
//   [magic u32] [type u32] [payload_bytes u32] [crc32(payload) u32] [payload]
//
// all little-endian. The fixed 16-byte header lets the receiver read
// exactly header-then-payload with two full-reads; the CRC covers the
// payload (the header fields are self-checking: magic pins the stream
// alignment, an unknown type or an oversized length rejects the frame
// before any allocation trusts it). A CRC mismatch means line corruption
// or a desynchronized stream — both unrecoverable within a connection, so
// the receiving end drops the connection and lets the reconnect path
// re-establish a clean stream from its resume position.

#ifndef TOKRA_REPL_FRAME_H_
#define TOKRA_REPL_FRAME_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace tokra::repl {

/// "TOKR" — stream alignment sentinel of every frame header.
inline constexpr std::uint32_t kFrameMagic = 0x544F4B52;

/// Upper bound on one frame's payload. Snapshot chunks and WAL records are
/// far smaller; anything bigger is a corrupt or hostile length field.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

inline constexpr std::size_t kFrameHeaderBytes = 16;

enum class FrameType : std::uint32_t {
  kHello = 1,      ///< follower -> primary: protocol version
  kHelloAck = 2,   ///< primary -> follower: version, topology, epoch
  kSubscribe = 3,  ///< follower -> primary: per-shard resume positions
  kSnapBegin = 4,  ///< primary -> follower: shards about to be shipped
  kSnapChunk = 5,  ///< primary -> follower: one ranged piece of a file
  kSnapEnd = 6,    ///< primary -> follower: bootstrap stream complete
  kTail = 7,       ///< primary -> follower: one WAL record
  kHeartbeat = 8,  ///< primary -> follower: liveness + per-shard heads
  kAck = 9,        ///< follower -> primary: per-shard applied LSNs
  kError = 10,     ///< primary -> follower: refusal (then close)
};

/// Whether `t` names a frame type this protocol version understands.
bool KnownFrameType(std::uint32_t t);

/// CRC-32 (reflected, poly 0xEDB88320 — same polynomial as the WAL frames)
/// over raw bytes.
std::uint32_t Crc32Bytes(std::span<const std::uint8_t> bytes);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> payload;
};

/// Serializes the 16-byte header for a payload into `out`.
void EncodeFrameHeader(FrameType type, std::span<const std::uint8_t> payload,
                       std::uint8_t out[kFrameHeaderBytes]);

/// Validates a received header. On OK, `*type` and `*payload_bytes` carry
/// the frame's type and length; the caller reads the payload and checks it
/// with `*crc`.
Status DecodeFrameHeader(const std::uint8_t header[kFrameHeaderBytes],
                         FrameType* type, std::uint32_t* payload_bytes,
                         std::uint32_t* crc);

}  // namespace tokra::repl

#endif  // TOKRA_REPL_FRAME_H_
