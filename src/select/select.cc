#include "select/select.h"

#include <algorithm>

#include "util/check.h"

namespace tokra::select {
namespace {

/// Binary max-heap over HeapNode with comparison counting.
class CountingHeap {
 public:
  explicit CountingHeap(SelectStats* stats) : stats_(stats) {}

  void Push(HeapNode n) {
    heap_.push_back(n);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      std::size_t p = (i - 1) / 2;
      Count();
      if (heap_[p].key >= heap_[i].key) break;
      std::swap(heap_[p], heap_[i]);
      i = p;
    }
  }

  HeapNode Pop() {
    TOKRA_CHECK(!heap_.empty());
    HeapNode top = heap_[0];
    heap_[0] = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    while (true) {
      std::size_t l = 2 * i + 1, r = 2 * i + 2, best = i;
      if (l < heap_.size()) {
        Count();
        if (heap_[l].key > heap_[best].key) best = l;
      }
      if (r < heap_.size()) {
        Count();
        if (heap_[r].key > heap_[best].key) best = r;
      }
      if (best == i) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
    return top;
  }

  bool empty() const { return heap_.empty(); }

 private:
  void Count() {
    if (stats_ != nullptr) ++stats_->comparisons;
  }
  std::vector<HeapNode> heap_;
  SelectStats* stats_;
};

std::vector<HeapNode> BestFirst(const HeapView& view, std::size_t t,
                                SelectStats* stats) {
  std::vector<HeapNode> out;
  if (t == 0) return out;
  CountingHeap pq(stats);
  std::vector<HeapNode> buf;
  view.Roots(&buf);
  for (const HeapNode& n : buf) {
    if (stats != nullptr) ++stats->nodes_visited;
    pq.Push(n);
  }
  while (!pq.empty() && out.size() < t) {
    HeapNode n = pq.Pop();
    out.push_back(n);
    buf.clear();
    view.Children(n.id, &buf);
    for (const HeapNode& c : buf) {
      if (stats != nullptr) ++stats->nodes_visited;
      pq.Push(c);
    }
  }
  return out;
}

std::vector<HeapNode> NaiveExtract(const HeapView& view, std::size_t t,
                                   SelectStats* stats) {
  // Expand the entire forest (reference / ablation baseline).
  std::vector<HeapNode> all;
  std::vector<HeapNode> stack;
  view.Roots(&stack);
  std::vector<HeapNode> buf;
  while (!stack.empty()) {
    HeapNode n = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->nodes_visited;
    all.push_back(n);
    buf.clear();
    view.Children(n.id, &buf);
    for (const HeapNode& c : buf) stack.push_back(c);
  }
  std::size_t take = std::min(t, all.size());
  auto cmp = [stats](const HeapNode& a, const HeapNode& b) {
    if (stats != nullptr) ++stats->comparisons;
    return a.key > b.key;
  };
  std::partial_sort(all.begin(), all.begin() + take, all.end(), cmp);
  all.resize(take);
  return all;
}

}  // namespace

std::vector<HeapNode> SelectTop(const HeapView& view, std::size_t t,
                                Strategy strategy, SelectStats* stats) {
  switch (strategy) {
    case Strategy::kBestFirst:
      return BestFirst(view, t, stats);
    case Strategy::kNaiveExtract:
      return NaiveExtract(view, t, stats);
  }
  TOKRA_CHECK(false);
  return {};
}

}  // namespace tokra::select
