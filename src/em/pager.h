// Pager: block allocation plus pinned typed access on top of the buffer pool.
//
// Every persistent byte of every structure in this library lives in pager
// blocks; the pager is the single chokepoint through which all I/O flows.
//
// Persistence: blocks 0 and 1 of every device are reserved as two
// alternating superblock slots. Checkpoint() flushes the pool and
// serializes the allocator state (next block, free list, blocks-in-use)
// plus an application root directory into the next slot (epoch + checksum
// make the checkpoint write itself atomic); Open() restores the newest
// complete checkpoint, so a structure whose meta-block id is recorded as a
// root survives process restarts without rebuilding. See Checkpoint() for
// the precise crash contract — updates between checkpoints are not yet
// crash-protected (no WAL).

#ifndef TOKRA_EM_PAGER_H_
#define TOKRA_EM_PAGER_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/io_stats.h"
#include "em/options.h"
#include "util/check.h"
#include "util/status.h"

namespace tokra::em {

class Pager;

/// RAII pin on one block. Move-only; unpins on destruction.
///
/// Mutation marks the frame dirty so it is written back on eviction/flush.
class PageRef {
 public:
  PageRef() = default;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    return *this;
  }
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  BlockId id() const { return pool_->FrameBlock(frame_); }

  /// Read-only view of the block's words. On a borrowed frame this is the
  /// device mapping itself (zero-copy); reads must go through here or Get,
  /// never through mutable access, to stay copy-free.
  std::span<const word_t> words() const {
    return {pool_->ReadData(frame_), WordsPerBlock()};
  }

  /// Mutable view; marks the page dirty (upgrading a borrowed frame to an
  /// owned copy first, so write-back never aliases the mapping).
  std::span<word_t> mutable_words() {
    dirty_ = true;
    return {pool_->FrameData(frame_), WordsPerBlock()};
  }

  word_t Get(std::size_t i) const {
    TOKRA_DCHECK(i < WordsPerBlock());
    return pool_->ReadData(frame_)[i];
  }
  void Set(std::size_t i, word_t v) {
    TOKRA_DCHECK(i < WordsPerBlock());
    dirty_ = true;
    pool_->FrameData(frame_)[i] = v;
  }

  double GetDouble(std::size_t i) const { return std::bit_cast<double>(Get(i)); }
  void SetDouble(std::size_t i, double v) { Set(i, std::bit_cast<word_t>(v)); }

 private:
  friend class Pager;
  PageRef(BufferPool* pool, std::uint32_t frame) : pool_(pool), frame_(frame) {}

  std::size_t WordsPerBlock() const;

  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(frame_, dirty_);
      pool_ = nullptr;
      dirty_ = false;
    }
  }

  BufferPool* pool_ = nullptr;
  std::uint32_t frame_ = 0;
  bool dirty_ = false;
};

/// Owns the device + pool; allocates and frees blocks; hands out pins.
class Pager {
 public:
  /// A fresh pager on a fresh device (a file backend truncates any existing
  /// contents). Blocks 0 and 1 are reserved as superblock slots; allocation
  /// starts at block 2.
  explicit Pager(const EmOptions& options);

  /// Reopens a checkpointed device, restoring the allocator state and root
  /// directory recorded by the last Checkpoint(). File backend only (a
  /// fresh memory device has nothing to reopen). With options.read_only
  /// the device is opened O_RDONLY — the snapshot-serving mode: many
  /// pagers may open the same immutable file concurrently (kMmap shares
  /// their cached pages through the OS page cache), and Checkpoint() is
  /// refused.
  static StatusOr<std::unique_ptr<Pager>> Open(const EmOptions& options);

  /// B, in words.
  std::uint32_t B() const { return options_.block_words; }
  const EmOptions& options() const { return options_; }
  BlockDevice* device() { return device_.get(); }

  /// Allocates a zeroed block. Allocation bookkeeping is O(1) metadata and
  /// costs no I/O; the block's first materialization to disk is charged when
  /// its frame is evicted or flushed.
  BlockId Allocate() {
    BlockId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = next_block_++;
      device_->EnsureCapacity(next_block_);
    }
    ++blocks_in_use_;
    return id;
  }

  /// Returns a block to the free list; any cached copy is discarded.
  void Free(BlockId id) {
    TOKRA_CHECK(id != kNullBlock);
    pool_.Invalidate(id);
    free_list_.push_back(id);
    TOKRA_CHECK(blocks_in_use_ > 0);
    --blocks_in_use_;
  }

  /// Pins `id` for reading (and possibly writing). One read I/O on pool miss.
  PageRef Fetch(BlockId id) {
    return PageRef(&pool_, pool_.Pin(id, BufferPool::PinMode::kRead));
  }

  /// Pins `id` zero-filled without reading the device — for blocks whose
  /// entire contents the caller is about to overwrite (e.g. fresh nodes).
  PageRef Create(BlockId id) {
    return PageRef(&pool_, pool_.Pin(id, BufferPool::PinMode::kCreate));
  }

  /// Loads any uncached blocks of `ids` into the pool as one batched device
  /// submission, without pinning: the Fetches that follow become pool hits.
  /// A hint (blocks that do not fit next to the current pins are skipped),
  /// so it never changes results — only how transfers are scheduled. This is
  /// the pager's one batched entry point: hint-then-Fetch keeps the O(1)
  /// pin budget of every algorithm intact, where a pin-them-all API would
  /// tie correctness to the frame count.
  void Prefetch(std::span<const BlockId> ids) { pool_.Prefetch(ids); }

  /// Flushes the pool and serializes allocator state plus `roots` — an
  /// application-defined directory of up to B - kSuperHeaderWords words,
  /// typically structure meta-block ids — into the next superblock slot,
  /// with durability barriers on either side.
  ///
  /// Guarantee: Open() restores the state as of the last *completed*
  /// checkpoint. The checkpoint write sequence itself is atomic — a torn or
  /// interrupted superblock write is detected by checksum and falls back to
  /// the previous slot, and free-list spill blocks stay reserved until the
  /// next checkpoint supersedes them — so checkpoint-then-exit is always
  /// recoverable. Updates *between* checkpoints, however, mutate blocks in
  /// place; a crash after such updates leaves the device a mix of old and
  /// new block contents, and recovery of the previous checkpoint is not
  /// guaranteed (a WAL is the roadmap follow-on closing that window).
  Status Checkpoint(std::span<const std::uint64_t> roots);

  /// Root directory recorded by the last Checkpoint() or restored by Open().
  const std::vector<std::uint64_t>& roots() const { return roots_; }

  /// Space usage in blocks — the paper's space metric.
  std::uint64_t BlocksInUse() const { return blocks_in_use_; }

  /// Combined device + pool counters.
  IoStats stats() const {
    IoStats s = pool_.stats();
    s.reads = device_->reads();
    s.writes = device_->writes();
    return s;
  }

  void FlushAll() { pool_.FlushAll(); }

  /// Flushes and empties the pool: the next pins all miss (cold cache).
  void DropCache() { pool_.DropAll(); }

  /// Fixed words at the head of the superblock, preceding roots and the
  /// inline free list. EmOptions::Validate() enforces block_words >= this,
  /// so every validated configuration can checkpoint.
  static constexpr std::uint32_t kSuperHeaderWords = kSuperblockHeaderWords;

  /// Blocks reserved at the front of every device (the superblock slots).
  static constexpr BlockId kReservedBlocks = 2;

 private:
  Pager(const EmOptions& options, std::unique_ptr<BlockDevice> device);

  /// Restores allocator state + roots from the superblock. Non-OK on a
  /// device that was never checkpointed or disagrees with `options_`.
  Status LoadSuperblock();

  EmOptions options_;
  std::unique_ptr<BlockDevice> device_;
  BufferPool pool_;
  std::vector<BlockId> free_list_;
  BlockId next_block_ = kReservedBlocks;
  std::uint64_t blocks_in_use_ = 0;
  std::vector<std::uint64_t> roots_;
  // Last checkpoint's free-list spill region: reserved (excluded from both
  // allocation and blocks_in_use_) until the next checkpoint reclaims it.
  BlockId spill_start_ = 0;
  std::uint32_t spill_count_ = 0;
  // Scratch for spill-run transfers: hoisted so repeated checkpoints reuse
  // one allocation instead of building a fresh vector per spill run.
  std::vector<word_t> spill_scratch_;
  std::uint64_t epoch_ = 0;  // checkpoint counter; parity picks the slot
};

inline std::size_t PageRef::WordsPerBlock() const {
  TOKRA_DCHECK(pool_ != nullptr);
  return pool_->block_words();
}

}  // namespace tokra::em

#endif  // TOKRA_EM_PAGER_H_
