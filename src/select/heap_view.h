// Abstract max-heap views for top-k selection.
//
// The paper (Section 2) turns subtrees of its structure into max-heaps keyed
// by pilot-set representatives, concatenates them, and runs Frederickson's
// selection algorithm. We abstract the heap as a *view*: a forest whose
// node accesses may cost I/Os (the implementation charges them through the
// pager). Selection algorithms then work on any view.

#ifndef TOKRA_SELECT_HEAP_VIEW_H_
#define TOKRA_SELECT_HEAP_VIEW_H_

#include <cstdint>
#include <vector>

namespace tokra::select {

/// Opaque node handle; meaning is defined by the view implementation.
using NodeId = std::uint64_t;

/// A node together with its heap key.
struct HeapNode {
  NodeId id = 0;
  double key = 0;
};

/// A forest of max-heaps: every child's key is <= its parent's key.
///
/// `Roots` and `Children` may perform I/O (charged by the implementation via
/// its pager); selection algorithms call them O(1) times per visited node,
/// which is what yields the paper's O(lg n + k/B) query bound.
class HeapView {
 public:
  virtual ~HeapView() = default;

  /// Appends the roots of the forest.
  virtual void Roots(std::vector<HeapNode>* out) const = 0;

  /// Appends the children of `node` (possibly none).
  virtual void Children(NodeId node, std::vector<HeapNode>* out) const = 0;
};

/// In-memory heap view over an explicit adjacency list — used by tests and by
/// the internal-memory baseline.
class VectorHeapView : public HeapView {
 public:
  /// node ids are indices into `keys`; `children[i]` lists i's children.
  VectorHeapView(std::vector<double> keys,
                 std::vector<std::vector<NodeId>> children,
                 std::vector<NodeId> roots)
      : keys_(std::move(keys)),
        children_(std::move(children)),
        roots_(std::move(roots)) {}

  void Roots(std::vector<HeapNode>* out) const override {
    for (NodeId r : roots_) out->push_back(HeapNode{r, keys_[r]});
  }
  void Children(NodeId node, std::vector<HeapNode>* out) const override {
    for (NodeId c : children_[node]) out->push_back(HeapNode{c, keys_[c]});
  }

 private:
  std::vector<double> keys_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> roots_;
};

}  // namespace tokra::select

#endif  // TOKRA_SELECT_HEAP_VIEW_H_
