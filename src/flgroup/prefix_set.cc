#include "flgroup/prefix_set.h"

#include <algorithm>

namespace tokra::flgroup {

void PrefixSet::ApplyInsert(std::uint32_t set_i, std::uint32_t g_new,
                            std::uint32_t r_new) {
  TOKRA_CHECK(set_i < f_);
  // Every stored element at or below the new one drops one global rank slot.
  for (std::uint32_t i = 0; i < f_; ++i) {
    for (std::uint32_t r = 1; r <= live(i); ++r) {
      std::size_t idx = Idx(i, r);
      if (ranks_[idx] >= g_new) ++ranks_[idx];
    }
  }
  ++sizes_[set_i];
  if (r_new <= p_cap_) {
    // Shift set_i's slots right from r_new; the overflow (old slot p_cap)
    // falls out of the prefix.
    std::uint32_t last = live(set_i);
    for (std::uint32_t r = last; r > r_new; --r) {
      ranks_[Idx(set_i, r)] = ranks_[Idx(set_i, r - 1)];
    }
    ranks_[Idx(set_i, r_new)] = g_new;
  }
}

bool PrefixSet::ApplyDelete(std::uint32_t set_i, std::uint32_t g_old,
                            std::uint32_t r_old) {
  TOKRA_CHECK(set_i < f_);
  TOKRA_CHECK(sizes_[set_i] > 0);
  std::uint32_t old_size = sizes_[set_i];
  std::uint32_t old_live = live(set_i);
  for (std::uint32_t i = 0; i < f_; ++i) {
    for (std::uint32_t r = 1; r <= live(i); ++r) {
      std::size_t idx = Idx(i, r);
      if (ranks_[idx] > g_old) --ranks_[idx];
    }
  }
  --sizes_[set_i];
  if (r_old > p_cap_) return false;  // the element was outside the prefix
  TOKRA_DCHECK(ranks_[Idx(set_i, r_old)] == g_old);
  for (std::uint32_t r = r_old; r + 1 <= old_live; ++r) {
    ranks_[Idx(set_i, r)] = ranks_[Idx(set_i, r + 1)];
  }
  // If more elements remain beyond the prefix, slot p_cap must be refilled
  // from the trees (the single non-inferable value, per Lemma 8).
  return old_size > p_cap_;
}

void PrefixSet::Serialize(std::span<em::word_t> out) const {
  TOKRA_CHECK(out.size() >= WordCount());
  std::size_t w = 0;
  for (std::uint32_t i = 0; i < f_; ++i) {
    out[w++] = sizes_[i];
    for (std::uint32_t r = 1; r <= p_cap_; ++r) {
      out[w++] = ranks_[Idx(i, r)];
    }
  }
}

PrefixSet PrefixSet::Deserialize(std::uint32_t f, std::uint32_t p_cap,
                                 std::span<const em::word_t> in) {
  PrefixSet p(f, p_cap);
  TOKRA_CHECK(in.size() >= p.WordCount());
  std::size_t w = 0;
  for (std::uint32_t i = 0; i < f; ++i) {
    p.sizes_[i] = static_cast<std::uint32_t>(in[w++]);
    for (std::uint32_t r = 1; r <= p_cap; ++r) {
      p.ranks_[p.Idx(i, r)] = static_cast<std::uint32_t>(in[w++]);
    }
  }
  return p;
}

void PrefixSet::CheckWellFormed() const {
  for (std::uint32_t i = 0; i < f_; ++i) {
    for (std::uint32_t r = 2; r <= live(i); ++r) {
      // Deeper local rank = smaller element = larger global rank.
      TOKRA_CHECK(ranks_[Idx(i, r)] > ranks_[Idx(i, r - 1)]);
    }
  }
}

}  // namespace tokra::flgroup
