// E2 — THE HEADLINE: amortized update I/Os, this paper (O(lg_B n)) vs the
// Sheng-Tao'12 baseline (O(lg^2_B n)). We compare the two approximate
// range k-selection components directly (both sit on top of the same pilot
// PST in the full index, so the selector delta IS the paper's delta), and
// also report full-index update costs.

#include "bench/common.h"
#include "lemma4/structure.h"
#include "st12/selector.h"
#include "util/bits.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e2_update");
  std::printf("# E2: amortized update I/Os — tokra (Lemma 4) vs [14]-style"
              " baseline\n");
  // Cold per-operation measurement with a minimal pool (M = 8B): the model
  // only guarantees M = Omega(B), and a warm cache would hide the baseline's
  // extra log factor (its repairs re-descend paths that an ample cache keeps
  // resident).
  Header("selector update cost vs n (B=64, cold cache per op)",
         {"n", "lg_B n", "lemma4 I/Os/update", "st12 I/Os/update",
          "ratio st12/lemma4"});
  for (std::size_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    em::Pager pager(em::EmOptions{.block_words = 64, .pool_frames = 8});
    Rng rng(3);
    auto pts = RandomPoints(&rng, n);
    lemma4::Lemma4Selector::Params p4{.fanout = 8, .l = 32,
                                      .leaf_cap = 1024};
    auto l4 = lemma4::Lemma4Selector::Build(&pager, pts, p4);
    auto st = st12::ShengTaoSelector::Build(&pager, pts);

    const int rounds = 150;
    auto fresh = RandomPoints(&rng, rounds, 1e6 - 1);
    std::uint64_t l4_ios = 0, st_ios = 0;
    for (const Point& q : fresh) {
      l4_ios += ColdIos(&pager, [&] { Must(l4.Insert(q)); });
      l4_ios += ColdIos(&pager, [&] { Must(l4.Delete(q)); });
    }
    for (const Point& q : fresh) {
      st_ios += ColdIos(&pager, [&] { Must(st.Insert(q)); });
      st_ios += ColdIos(&pager, [&] { Must(st.Delete(q)); });
    }
    double a = static_cast<double>(l4_ios) / (2 * rounds);
    double b = static_cast<double>(st_ios) / (2 * rounds);
    Row({U(n), U(LogB(64, n)), D(a), D(b), D(b / a)});
    RecordIoStats("n=" + U(n), pager.stats());
  }
  std::printf(
      "\nShape check: the ratio grows with lg_B n (the baseline pays an "
      "extra log factor per update), i.e. the Theorem 1 improvement.\n");
  return 0;
}
