#include "flgroup/fl_group.h"

#include <algorithm>
#include <limits>

#include "em/paged_array.h"
#include "util/bits.h"

namespace tokra::flgroup {
namespace {

/// Serialized words -> block list (each block holds B words of the stream).
/// The touched prefix of the block list is prefetched as one batch — these
/// streams (sketches, Lemma 8 prefix tables) are the group walks on the
/// small-k query path.
std::vector<em::word_t> ReadWordStream(em::Pager* pager,
                                       const std::vector<em::BlockId>& blocks,
                                       std::uint64_t n_words) {
  std::vector<em::word_t> out(n_words);
  std::uint32_t b = pager->B();
  std::size_t touched = static_cast<std::size_t>(CeilDiv(n_words, std::uint64_t{b}));
  if (touched > 1) pager->Prefetch({blocks.data(), touched});
  for (std::uint64_t w = 0; w < n_words;) {
    std::size_t bi = w / b;
    em::PageRef page = pager->Fetch(blocks[bi]);
    std::uint64_t take = std::min<std::uint64_t>(b, n_words - w);
    // One copy per block from the read-only view — on an mmap borrow the
    // source is the device mapping itself, not a pool frame.
    std::copy_n(page.words().data(), take, out.data() + w);
    w += take;
  }
  return out;
}

void WriteWordStream(em::Pager* pager, const std::vector<em::BlockId>& blocks,
                     std::span<const em::word_t> words) {
  std::uint32_t b = pager->B();
  std::size_t touched = static_cast<std::size_t>(
      CeilDiv(std::uint64_t{words.size()}, std::uint64_t{b}));
  if (touched > 1) pager->Prefetch({blocks.data(), touched});
  for (std::uint64_t w = 0; w < words.size();) {
    std::size_t bi = w / b;
    em::PageRef page = pager->Fetch(blocks[bi]);
    std::uint64_t take = std::min<std::uint64_t>(b, words.size() - w);
    for (std::uint64_t j = 0; j < take; ++j) {
      page.Set(j, words[w + j]);
    }
    w += take;
  }
}

/// Tree-handle record stored in the handle blocks.
struct HandleRec {
  em::BlockId root;
  std::uint64_t size;
};

}  // namespace

FlGroup FlGroup::Create(em::Pager* pager, Params params) {
  TOKRA_CHECK(params.f >= 1 && params.l >= 1);
  std::uint32_t b = pager->B();
  std::uint64_t fl = static_cast<std::uint64_t>(params.f) * params.l;
  std::uint32_t p_cap = PrefixSet::PrefixCap(b, fl);

  std::uint64_t sketch_words =
      sketch::PackedSketchSet::WordCount(params.f, params.l);
  std::uint64_t prefix_words = PrefixSet::WordCount(params.f, p_cap);
  std::uint64_t handle_words = static_cast<std::uint64_t>(params.f) * 2;
  std::uint64_t n_sketch = CeilDiv(sketch_words, b);
  std::uint64_t n_prefix = CeilDiv(prefix_words, b);
  std::uint64_t n_handle = CeilDiv(handle_words, b);
  // The compressed representations must stay O(1) blocks for the bounds to
  // hold; under the paper's parameter constraints they do. (Our 64-bit-word
  // encoding is looser than the paper's bit-packing, hence "a few" blocks
  // instead of one; the constant is checked here.)
  TOKRA_CHECK(n_sketch + n_prefix + n_handle <= 64);
  TOKRA_CHECK(kMetaIds + n_sketch + n_prefix + n_handle <= b);

  em::BlockId meta = pager->Allocate();
  {
    em::PageRef mp = pager->Create(meta);
    mp.Set(kMetaF, params.f);
    mp.Set(kMetaL, params.l);
    mp.Set(kMetaNSketch, n_sketch);
    mp.Set(kMetaNPrefix, n_prefix);
    mp.Set(kMetaNHandle, n_handle);
    std::size_t w = kMetaIds;
    for (std::uint64_t i = 0; i < n_sketch + n_prefix + n_handle; ++i) {
      em::BlockId id = pager->Allocate();
      mp.Set(w++, id);
      em::PageRef zero = pager->Create(id);
      zero.Set(0, 0);  // materialize
    }
    // Empty B-tree on G.
    btree::OsTree g = btree::OsTree::Create(pager);
    mp.Set(kMetaGRoot, g.ref().root);
    mp.Set(kMetaGSize, g.ref().size);
  }

  FlGroup fg(pager, meta, params, p_cap);
  // Per-set trees: created empty.
  Blocks blocks = fg.LoadBlocks();
  for (std::uint32_t i = 0; i < params.f; ++i) {
    btree::OsTree t = btree::OsTree::Create(pager);
    fg.StoreSetTree(blocks, i, t.ref());
  }
  // Initialize sketch/prefix serializations to the empty state.
  sketch::PackedSketchSet sk(params.f, params.l);
  fg.StoreSketch(blocks, sk);
  PrefixSet pf(params.f, p_cap);
  fg.StorePrefix(blocks, pf);
  return fg;
}

FlGroup FlGroup::Open(em::Pager* pager, em::BlockId meta) {
  em::PageRef mp = pager->Fetch(meta);
  Params params;
  params.f = static_cast<std::uint32_t>(mp.Get(kMetaF));
  params.l = static_cast<std::uint32_t>(mp.Get(kMetaL));
  std::uint64_t fl = static_cast<std::uint64_t>(params.f) * params.l;
  std::uint32_t p_cap = PrefixSet::PrefixCap(pager->B(), fl);
  return FlGroup(pager, meta, params, p_cap);
}

FlGroup::Blocks FlGroup::LoadBlocks() const {
  em::PageRef mp = pager_->Fetch(meta_);
  Blocks b;
  b.g_tree.root = mp.Get(kMetaGRoot);
  b.g_tree.size = mp.Get(kMetaGSize);
  std::uint64_t ns = mp.Get(kMetaNSketch);
  std::uint64_t np = mp.Get(kMetaNPrefix);
  std::uint64_t nh = mp.Get(kMetaNHandle);
  std::size_t w = kMetaIds;
  for (std::uint64_t i = 0; i < ns; ++i) b.sketch.push_back(mp.Get(w++));
  for (std::uint64_t i = 0; i < np; ++i) b.prefix.push_back(mp.Get(w++));
  for (std::uint64_t i = 0; i < nh; ++i) b.handle.push_back(mp.Get(w++));
  return b;
}

void FlGroup::StoreGTree(btree::OsTreeRef ref) {
  em::PageRef mp = pager_->Fetch(meta_);
  mp.Set(kMetaGRoot, ref.root);
  mp.Set(kMetaGSize, ref.size);
}

sketch::PackedSketchSet FlGroup::LoadSketch(const Blocks& b) const {
  std::uint64_t words =
      sketch::PackedSketchSet::WordCount(params_.f, params_.l);
  auto stream = ReadWordStream(pager_, b.sketch, words);
  return sketch::PackedSketchSet::Deserialize(params_.f, params_.l, stream);
}

void FlGroup::StoreSketch(const Blocks& b, const sketch::PackedSketchSet& s) {
  std::vector<em::word_t> stream(s.WordCount());
  s.Serialize(stream);
  WriteWordStream(pager_, b.sketch, stream);
}

PrefixSet FlGroup::LoadPrefix(const Blocks& b) const {
  std::uint64_t words = PrefixSet::WordCount(params_.f, p_cap_);
  auto stream = ReadWordStream(pager_, b.prefix, words);
  return PrefixSet::Deserialize(params_.f, p_cap_, stream);
}

void FlGroup::StorePrefix(const Blocks& b, const PrefixSet& p) {
  std::vector<em::word_t> stream(p.WordCount());
  p.Serialize(stream);
  WriteWordStream(pager_, b.prefix, stream);
}

btree::OsTreeRef FlGroup::LoadSetTree(const Blocks& b, std::uint32_t i) const {
  em::PagedArray<HandleRec> arr(pager_, b.handle);
  HandleRec rec = arr.Get(i);
  return btree::OsTreeRef{rec.root, rec.size};
}

void FlGroup::StoreSetTree(const Blocks& b, std::uint32_t i,
                           btree::OsTreeRef ref) {
  em::PagedArray<HandleRec> arr(pager_, b.handle);
  arr.Set(i, HandleRec{ref.root, ref.size});
}

std::uint32_t FlGroup::SetSize(std::uint32_t i) const {
  TOKRA_CHECK(i < params_.f);
  Blocks b = LoadBlocks();
  return LoadSketch(b).set_size(i);
}

std::uint64_t FlGroup::SizeInRange(std::uint32_t a1, std::uint32_t a2) const {
  TOKRA_CHECK(a1 <= a2 && a2 < params_.f);
  Blocks b = LoadBlocks();
  return LoadSketch(b).SizeInRange(a1, a2);
}

Status FlGroup::RepairInvalidLevels(const Blocks& blocks,
                                    sketch::PackedSketchSet* sk,
                                    const PrefixSet& prefix, std::uint32_t i) {
  std::vector<std::uint32_t> bad;
  sk->InvalidLevels(i, &bad);
  if (bad.empty()) return Status::Ok();
  btree::OsTree g_tree(pager_, blocks.g_tree);
  btree::OsTree set_tree(pager_, LoadSetTree(blocks, i));
  for (std::uint32_t j : bad) {
    std::uint64_t lo = std::uint64_t{1} << (j - 1);
    std::uint32_t target = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(sk->set_size(i), lo + lo / 2));
    std::uint32_t g;
    if (target <= prefix.live(i)) {
      // Small case (2^j below the prefix length): free via Lemma 8.
      g = prefix.global_rank(i, target);
    } else {
      // Large case: fetch the element by local rank, then its global rank.
      TOKRA_ASSIGN_OR_RETURN(btree::Entry e, set_tree.SelectDesc(target));
      g = static_cast<std::uint32_t>(g_tree.RankDesc(e.key));
    }
    sk->SetPivot(i, j, g, target);
  }
  return Status::Ok();
}

Status FlGroup::Insert(std::uint32_t i, double v) {
  if (i >= params_.f) return Status::InvalidArgument("set index out of range");
  Blocks blocks = LoadBlocks();
  sketch::PackedSketchSet sk = LoadSketch(blocks);
  if (sk.set_size(i) >= params_.l) {
    return Status::ResourceExhausted("set at capacity l");
  }
  PrefixSet prefix = LoadPrefix(blocks);

  btree::OsTree g_tree(pager_, blocks.g_tree);
  btree::OsTree set_tree(pager_, LoadSetTree(blocks, i));

  // Post-insert ranks (Sections 4.2 / 4.4).
  std::uint32_t g_new = static_cast<std::uint32_t>(
      g_tree.CountGreaterEq(v, /*strict=*/true) + 1);
  std::uint32_t r_new = static_cast<std::uint32_t>(
      set_tree.CountGreaterEq(v, /*strict=*/true) + 1);

  TOKRA_RETURN_IF_ERROR(g_tree.Insert(v, 0));
  TOKRA_RETURN_IF_ERROR(set_tree.Insert(v, 0));
  StoreGTree(g_tree.ref());
  StoreSetTree(blocks, i, set_tree.ref());
  blocks.g_tree = g_tree.ref();

  bool expanded = sk.ApplyInsert(i, g_new);
  prefix.ApplyInsert(i, g_new, r_new);

  if (expanded) {
    // The new deepest pivot must be the set minimum (rank |G_i| is the only
    // value inside the fresh window [2^(J-1), |G_i|]).
    TOKRA_ASSIGN_OR_RETURN(btree::Entry min_e, set_tree.Min());
    std::uint32_t g = static_cast<std::uint32_t>(g_tree.RankDesc(min_e.key));
    sk.SetPivot(i, sk.levels(i), g, sk.set_size(i));
  }
  TOKRA_RETURN_IF_ERROR(RepairInvalidLevels(blocks, &sk, prefix, i));

  StoreSketch(blocks, sk);
  StorePrefix(blocks, prefix);
  return Status::Ok();
}

Status FlGroup::Delete(std::uint32_t i, double v) {
  if (i >= params_.f) return Status::InvalidArgument("set index out of range");
  Blocks blocks = LoadBlocks();
  sketch::PackedSketchSet sk = LoadSketch(blocks);
  PrefixSet prefix = LoadPrefix(blocks);

  btree::OsTree g_tree(pager_, blocks.g_tree);
  btree::OsTree set_tree(pager_, LoadSetTree(blocks, i));
  if (!set_tree.Contains(v)) return Status::NotFound("value not in set");

  std::uint32_t g_old =
      static_cast<std::uint32_t>(g_tree.RankDesc(v));
  std::uint32_t r_old =
      static_cast<std::uint32_t>(set_tree.RankDesc(v));

  TOKRA_RETURN_IF_ERROR(g_tree.Delete(v));
  TOKRA_RETURN_IF_ERROR(set_tree.Delete(v));
  StoreGTree(g_tree.ref());
  StoreSetTree(blocks, i, set_tree.ref());
  blocks.g_tree = g_tree.ref();

  auto effect = sk.ApplyDelete(i, g_old);
  bool backfill = prefix.ApplyDelete(i, g_old, r_old);
  if (backfill) {
    // Refill the last prefix slot: element with local rank p_cap.
    TOKRA_ASSIGN_OR_RETURN(btree::Entry e, set_tree.SelectDesc(p_cap_));
    prefix.SetSlot(i, p_cap_,
                   static_cast<std::uint32_t>(g_tree.RankDesc(e.key)));
  }
  if (effect.dangling) {
    std::uint32_t j = effect.dangling_level;
    std::uint64_t lo = std::uint64_t{1} << (j - 1);
    std::uint32_t target = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(sk.set_size(i), lo + lo / 2));
    std::uint32_t g;
    if (target <= prefix.live(i)) {
      g = prefix.global_rank(i, target);
    } else {
      TOKRA_ASSIGN_OR_RETURN(btree::Entry e, set_tree.SelectDesc(target));
      g = static_cast<std::uint32_t>(g_tree.RankDesc(e.key));
    }
    sk.SetPivot(i, j, g, target);
  }
  TOKRA_RETURN_IF_ERROR(RepairInvalidLevels(blocks, &sk, prefix, i));

  StoreSketch(blocks, sk);
  StorePrefix(blocks, prefix);
  return Status::Ok();
}

StatusOr<FlGroup::SelectResult> FlGroup::SelectApprox(std::uint32_t a1,
                                                      std::uint32_t a2,
                                                      std::uint64_t k) const {
  if (a1 > a2 || a2 >= params_.f) {
    return Status::InvalidArgument("bad set interval");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Blocks blocks = LoadBlocks();
  sketch::PackedSketchSet sk = LoadSketch(blocks);
  if (k > sk.SizeInRange(a1, a2)) {
    return Status::OutOfRange("k exceeds union size");
  }
  auto res = sk.SelectApprox(a1, a2, k);
  if (res.neg_inf) return SelectResult{true, 0};
  btree::OsTree g_tree(pager_, blocks.g_tree);
  TOKRA_ASSIGN_OR_RETURN(btree::Entry e, g_tree.SelectDesc(res.global_rank));
  return SelectResult{false, e.key};
}

StatusOr<double> FlGroup::MaxInRange(std::uint32_t a1,
                                     std::uint32_t a2) const {
  if (a1 > a2 || a2 >= params_.f) {
    return Status::InvalidArgument("bad set interval");
  }
  Blocks blocks = LoadBlocks();
  sketch::PackedSketchSet sk = LoadSketch(blocks);
  // Level-1 pivots are exact per-set maxima; the union max is the one with
  // the smallest global rank.
  std::uint32_t best_g = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t i = a1; i <= a2; ++i) {
    if (sk.levels(i) >= 1) best_g = std::min(best_g, sk.global_rank(i, 1));
  }
  if (best_g == std::numeric_limits<std::uint32_t>::max()) {
    return Status::NotFound("all sets empty in range");
  }
  btree::OsTree g_tree(pager_, blocks.g_tree);
  TOKRA_ASSIGN_OR_RETURN(btree::Entry e, g_tree.SelectDesc(best_g));
  return e.key;
}

StatusOr<double> FlGroup::MinOfSet(std::uint32_t i) const {
  if (i >= params_.f) return Status::InvalidArgument("set index out of range");
  Blocks blocks = LoadBlocks();
  btree::OsTree set_tree(pager_, LoadSetTree(blocks, i));
  TOKRA_ASSIGN_OR_RETURN(btree::Entry e, set_tree.Min());
  return e.key;
}

bool FlGroup::Contains(std::uint32_t i, double v) const {
  TOKRA_CHECK(i < params_.f);
  Blocks blocks = LoadBlocks();
  btree::OsTree set_tree(pager_, LoadSetTree(blocks, i));
  return set_tree.Contains(v);
}

void FlGroup::DestroyAll() {
  Blocks blocks = LoadBlocks();
  for (std::uint32_t i = 0; i < params_.f; ++i) {
    btree::OsTree t(pager_, LoadSetTree(blocks, i));
    t.DestroyAll();
  }
  btree::OsTree g(pager_, blocks.g_tree);
  g.DestroyAll();
  for (em::BlockId id : blocks.sketch) pager_->Free(id);
  for (em::BlockId id : blocks.prefix) pager_->Free(id);
  for (em::BlockId id : blocks.handle) pager_->Free(id);
  pager_->Free(meta_);
  meta_ = em::kNullBlock;
}

void FlGroup::CheckInvariants() const {
  Blocks blocks = LoadBlocks();
  sketch::PackedSketchSet sk = LoadSketch(blocks);
  PrefixSet prefix = LoadPrefix(blocks);
  sk.CheckWellFormed();
  prefix.CheckWellFormed();
  btree::OsTree g_tree(pager_, blocks.g_tree);
  g_tree.CheckInvariants();
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < params_.f; ++i) {
    btree::OsTree set_tree(pager_, LoadSetTree(blocks, i));
    set_tree.CheckInvariants();
    TOKRA_CHECK_EQ(set_tree.size(), sk.set_size(i));
    TOKRA_CHECK_EQ(prefix.set_size(i), sk.set_size(i));
    total += set_tree.size();
    // Every sketch pivot's stored ranks must be exactly consistent with the
    // trees (the shifts maintain exact ranks, not approximations).
    for (std::uint32_t j = 1; j <= sk.levels(i); ++j) {
      btree::Entry e = g_tree.SelectDesc(sk.global_rank(i, j)).value();
      TOKRA_CHECK(set_tree.Contains(e.key));
      TOKRA_CHECK_EQ(set_tree.RankDesc(e.key), sk.local_rank(i, j));
    }
    // Prefix slots map local rank r to the global rank of the r-th largest.
    for (std::uint32_t r = 1; r <= prefix.live(i); ++r) {
      btree::Entry e = set_tree.SelectDesc(r).value();
      TOKRA_CHECK_EQ(g_tree.RankDesc(e.key), prefix.global_rank(i, r));
    }
  }
  TOKRA_CHECK_EQ(g_tree.size(), total);
}

}  // namespace tokra::flgroup
