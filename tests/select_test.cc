// Tests for heap-view top-t selection.

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "select/heap_view.h"
#include "select/select.h"
#include "util/check.h"
#include "util/random.h"

namespace tokra::select {
namespace {

/// Builds a random forest with valid max-heap order and returns (view, keys).
VectorHeapView RandomHeapForest(Rng* rng, std::size_t n, std::size_t n_roots,
                                std::size_t max_children,
                                std::vector<double>* keys_out) {
  std::vector<double> keys = rng->DistinctDoubles(n, 0.0, 1000.0);
  // Assign keys so parents dominate children: sort descending, then attach
  // each node (in key order) under a random earlier node.
  std::sort(keys.begin(), keys.end(), std::greater<>());
  std::vector<std::vector<NodeId>> children(n);
  std::vector<NodeId> roots;
  std::vector<NodeId> attachable;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_roots) {
      roots.push_back(i);
    } else {
      // Pick a parent with key >= keys[i]; any earlier node qualifies. After
      // a few random misses fall back to a linear scan (one always exists
      // because max_children >= 2 keeps total capacity ahead of demand).
      bool placed = false;
      for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
        NodeId p = rng->Uniform(i);
        if (children[p].size() < max_children) {
          children[p].push_back(i);
          placed = true;
        }
      }
      for (NodeId p = 0; !placed && p < i; ++p) {
        if (children[p].size() < max_children) {
          children[p].push_back(i);
          placed = true;
        }
      }
      TOKRA_CHECK(placed);
    }
  }
  *keys_out = keys;
  return VectorHeapView(std::move(keys), std::move(children),
                        std::move(roots));
}

TEST(SelectTest, EmptyForest) {
  VectorHeapView view({}, {}, {});
  EXPECT_TRUE(SelectTop(view, 5).empty());
}

TEST(SelectTest, TZeroReturnsNothing) {
  VectorHeapView view({3.0}, {{}}, {0});
  EXPECT_TRUE(SelectTop(view, 0).empty());
}

TEST(SelectTest, SingleChain) {
  // 10 -> 8 -> 5 -> 1
  VectorHeapView view({10, 8, 5, 1}, {{1}, {2}, {3}, {}}, {0});
  auto top = SelectTop(view, 2);
  ASSERT_EQ(top.size(), 2u);
  std::vector<double> got{top[0].key, top[1].key};
  std::sort(got.begin(), got.end(), std::greater<>());
  EXPECT_EQ(got, (std::vector<double>{10, 8}));
}

TEST(SelectTest, TakesAllWhenTExceedsSize) {
  VectorHeapView view({10, 8, 5}, {{1, 2}, {}, {}}, {0});
  auto top = SelectTop(view, 99);
  EXPECT_EQ(top.size(), 3u);
}

struct SelectCase {
  std::size_t n, roots, max_children, t;
  Strategy strategy;
};

class SelectPropertyTest : public ::testing::TestWithParam<SelectCase> {};

TEST_P(SelectPropertyTest, MatchesSortedTruth) {
  const SelectCase& c = GetParam();
  Rng rng(c.n * 31 + c.t * 7 + c.roots);
  std::vector<double> keys;
  VectorHeapView view = RandomHeapForest(&rng, c.n, c.roots, c.max_children,
                                         &keys);
  SelectStats stats;
  auto top = SelectTop(view, c.t, c.strategy, &stats);
  std::size_t expect = std::min(c.t, c.n);
  ASSERT_EQ(top.size(), expect);
  // keys was sorted descending by the helper before being handed over.
  std::vector<double> got;
  for (const HeapNode& nd : top) got.push_back(nd.key);
  std::sort(got.begin(), got.end(), std::greater<>());
  for (std::size_t i = 0; i < expect; ++i) EXPECT_EQ(got[i], keys[i]);

  if (c.strategy == Strategy::kBestFirst) {
    // Visits at most roots + t * max_children + t nodes.
    EXPECT_LE(stats.nodes_visited,
              c.roots + expect * (c.max_children + 1));
  } else {
    EXPECT_EQ(stats.nodes_visited, c.n);  // naive expands everything
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectPropertyTest,
    ::testing::Values(SelectCase{100, 1, 2, 10, Strategy::kBestFirst},
                      SelectCase{100, 1, 2, 10, Strategy::kNaiveExtract},
                      SelectCase{1000, 5, 3, 50, Strategy::kBestFirst},
                      SelectCase{1000, 5, 3, 50, Strategy::kNaiveExtract},
                      SelectCase{5000, 20, 2, 500, Strategy::kBestFirst},
                      SelectCase{5000, 1, 8, 100, Strategy::kBestFirst},
                      SelectCase{64, 64, 2, 64, Strategy::kBestFirst}),
    [](const ::testing::TestParamInfo<SelectCase>& info) {
      return "n" + std::to_string(info.param.n) + "t" +
             std::to_string(info.param.t) +
             (info.param.strategy == Strategy::kBestFirst ? "best" : "naive");
    });

TEST(SelectTest, BestFirstVisitsFarFewerNodesThanNaive) {
  Rng rng(99);
  std::vector<double> keys;
  VectorHeapView view = RandomHeapForest(&rng, 20000, 1, 2, &keys);
  SelectStats best, naive;
  SelectTop(view, 10, Strategy::kBestFirst, &best);
  SelectTop(view, 10, Strategy::kNaiveExtract, &naive);
  EXPECT_LT(best.nodes_visited, 100u);
  EXPECT_EQ(naive.nodes_visited, 20000u);
}

}  // namespace
}  // namespace tokra::select
