#include "engine/batcher.h"

#include <utility>

#include "util/check.h"

namespace tokra::engine {

RequestBatcher::RequestBatcher(ShardedTopkEngine* engine,
                               std::size_t max_pending, bool auto_rebalance)
    : engine_(engine),
      max_pending_(max_pending),
      auto_rebalance_(auto_rebalance) {
  TOKRA_CHECK(engine != nullptr);
  TOKRA_CHECK(max_pending >= 1);
  admission_wait_us_ = engine->metric_set().admission_wait_us;
  queue_depth_ = engine->metric_set().queue_depth;
}

RequestBatcher::~RequestBatcher() { Flush(); }

std::future<Response> RequestBatcher::Submit(Request req) {
  Item item;
  item.req = std::move(req);
  if (admission_wait_us_ != nullptr) item.submit_us = obs::NowUs();
  std::future<Response> fut = item.promise.get_future();
  std::vector<Item> ready;
  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.requests;
    pending_.push_back(std::move(item));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<std::int64_t>(pending_.size()));
    }
    if (pending_.size() >= max_pending_) ready.swap(pending_);
  }
  if (!ready.empty()) Execute(std::move(ready));
  return fut;
}

void RequestBatcher::Flush() {
  std::vector<Item> ready;
  {
    std::lock_guard<std::mutex> g(mu_);
    ready.swap(pending_);
  }
  if (!ready.empty()) Execute(std::move(ready));
}

void RequestBatcher::Execute(std::vector<Item> batch) {
  if (queue_depth_ != nullptr) queue_depth_->Set(0);
  if (admission_wait_us_ != nullptr) {
    // Admission wait: time each request sat in the coalescing window
    // before its batch started executing — the latency cost of batching,
    // the first stage of a batched query's life.
    const std::uint64_t now = obs::NowUs();
    for (const Item& item : batch) {
      if (item.submit_us != 0) admission_wait_us_->Record(now - item.submit_us);
    }
  }
  std::vector<Request> requests;
  requests.reserve(batch.size());
  for (const Item& item : batch) requests.push_back(item.req);

  std::vector<Response> responses;
  engine_->ExecuteBatch(requests, &responses);
  TOKRA_CHECK_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }

  bool rebalanced = auto_rebalance_ && engine_->MaybeRebalance();
  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.batches;
    if (rebalanced) ++stats_.auto_rebalances;
  }
}

std::size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> g(mu_);
  return pending_.size();
}

RequestBatcher::Stats RequestBatcher::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace tokra::engine
