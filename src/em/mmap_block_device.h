// mmap backend: the file device serving reads straight from the OS page
// cache, with zero-copy borrowed reads for the buffer pool.

#ifndef TOKRA_EM_MMAP_BLOCK_DEVICE_H_
#define TOKRA_EM_MMAP_BLOCK_DEVICE_H_

#include <cstdint>

#include "em/file_block_device.h"

namespace tokra::em {

/// FileBlockDevice whose reads are served from a shared read-only mapping
/// of the backing file.
///
/// The mapping is one fixed-size reservation (kMapBytes of virtual address
/// space, costing no memory) created at open: ftruncate growth makes the
/// new pages accessible in place, so a pointer handed out by
/// TryBorrowRead stays valid for the device's whole lifetime — no remap
/// ever happens, which is what makes borrowed frames safe to cache in the
/// buffer pool. Copying reads (Read/ReadRun/batches) memcpy from the
/// mapping instead of pread, and TryBorrowRead returns the mapping address
/// itself: a warm query's leaf reads become pointer handouts backed by the
/// page cache, the memcpy into a pool frame gone.
///
/// Writes stay on the inherited pwrite path; MAP_SHARED of the same file
/// observes them through the unified page cache, so a borrow after a write
/// sees the new bytes. With FileOptions::read_only the file is opened
/// O_RDONLY and every write CHECK-fails — the immutable-snapshot serving
/// mode, where many devices may map one file and share its cached pages.
class MmapBlockDevice final : public FileBlockDevice {
 public:
  /// Virtual address reservation for a *writable* device: 1 TiB, far above
  /// any device this library backs, and free until pages are touched. A
  /// read-only device can never grow, so it maps exactly the file size
  /// instead — many snapshot replicas then cost file-size address space
  /// each, not 1 TiB each (which would hit the 128 TiB x86-64 VA limit at
  /// ~128 replicas and silently degrade later ones to copying reads).
  static constexpr std::uint64_t kMapBytes = 1ull << 40;

  MmapBlockDevice(std::uint32_t block_words, FileOptions options);
  ~MmapBlockDevice() override;

  bool SupportsBorrowedReads() const override { return map_ != nullptr; }
  void EnsureCapacity(BlockId blocks) override;
  void DropOsCache() override;

  // Read views borrow straight from the mapping: the reservation is fixed
  // for the device's lifetime, so view pointers stay valid across growth.
  bool ViewSupportsBorrows() const override { return map_ != nullptr; }
  const word_t* ViewBorrow(BlockId id) override {
    return map_ != nullptr ? BlockPtr(id) : nullptr;
  }
  bool ViewRead(BlockId id, word_t* dst) override;

 protected:
  void DoRead(BlockId id, word_t* dst) override;
  void DoReadRun(BlockId first, std::uint32_t count, word_t* dst) override;
  void DoReadBatch(std::span<const IoRequest> reqs) override;
  const word_t* DoBorrowRead(BlockId id) override;

 private:
  const word_t* BlockPtr(BlockId id) const {
    return reinterpret_cast<const word_t*>(
        static_cast<const char*>(map_) + id * BlockBytes());
  }

  void* map_ = nullptr;  // nullptr: mmap refused; reads fall back to pread
  std::uint64_t map_len_ = 0;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_MMAP_BLOCK_DEVICE_H_
