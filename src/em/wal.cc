#include "em/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "em/fault_device.h"
#include "em/file_block_device.h"
#include "obs/metrics.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/fsync_dir.h"

namespace tokra::em {
namespace {

// Segment header (block 0).
constexpr word_t kSegMagic = 0x544F4B57414C5347ULL;  // "TOKWALSG"
constexpr word_t kSegVersion = 1;
constexpr std::size_t kSegWMagic = 0;
constexpr std::size_t kSegWVersion = 1;
constexpr std::size_t kSegWBlockWords = 2;
constexpr std::size_t kSegWBaseLsn = 3;
constexpr std::size_t kSegWChecksum = 4;
constexpr std::size_t kSegHeaderWords = 5;

// Frame header, block-aligned at the start of each record.
constexpr word_t kFrameMagic = 0x544F4B57414C4652ULL;  // "TOKWALFR"
constexpr std::size_t kFrWMagic = 0;
constexpr std::size_t kFrWLsn = 1;
constexpr std::size_t kFrWTypeLen = 2;  // (type << 32) | payload_words
constexpr std::size_t kFrWCrc = 3;
constexpr std::size_t kFrameHeaderWords = 4;

/// Side-file suffix used by segment rotation.
constexpr char kRotateSuffix[] = ".rotate";

/// CRC-32 (reflected, poly 0xEDB88320) over a word span. Table built once.
std::uint32_t Crc32(std::span<const word_t> words, std::uint32_t seed = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (word_t w : words) {
    for (int b = 0; b < 8; ++b) {
      crc = table[(crc ^ static_cast<std::uint8_t>(w)) & 0xFF] ^ (crc >> 8);
      w >>= 8;
    }
  }
  return ~crc;
}

word_t SegChecksum(std::span<const word_t> header) {
  return Crc32(header.subspan(0, kSegWChecksum));
}

void FormatSegmentHeader(std::vector<word_t>* header, std::uint64_t base,
                         std::uint32_t block_words) {
  (*header)[kSegWMagic] = kSegMagic;
  (*header)[kSegWVersion] = kSegVersion;
  (*header)[kSegWBlockWords] = block_words;
  (*header)[kSegWBaseLsn] = base;
  (*header)[kSegWChecksum] = SegChecksum(*header);
}

}  // namespace

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(Options options) {
  TOKRA_CHECK(!options.path.empty());
  TOKRA_CHECK(options.block_words >= kSegHeaderWords &&
              options.block_words >= kFrameHeaderWords + 1);
  auto log = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(options));
  if (!options.read_only) {
    // A crashed rotation can leave a fully-written side segment that never
    // got renamed; it holds no records the stamped checkpoint needs (frames
    // at or below the stamp are inert), so drop it rather than risk a later
    // rotation colliding with it.
    std::remove((options.path + kRotateSuffix).c_str());
  } else if (!std::filesystem::exists(options.path)) {
    return Status::NotFound("no such WAL segment: " + options.path);
  }
  TOKRA_RETURN_IF_ERROR(log->LoadOrFormat());
  return log;
}

Status WriteAheadLog::LoadOrFormat() {
  FileBlockDevice::FileOptions fo{.path = options_.path,
                                  .truncate = false,
                                  .durable_sync = options_.fsync,
                                  .read_only = options_.read_only};
  device_ = std::make_unique<FileBlockDevice>(options_.block_words, fo);
  if (device_->io_failed()) return device_->io_status();
  if (options_.fault != nullptr) {
    device_ = std::make_unique<FaultInjectingBlockDevice>(std::move(device_),
                                                          options_.fault);
  }
  if (device_->NumBlocks() == 0) {
    // Fresh (or created-then-crashed-before-header) segment. A writer
    // formats it; a read-only consumer cannot (and must not abort trying),
    // so it reports the truncated segment as a proper error.
    if (options_.read_only) {
      return Status::FailedPrecondition(
          "WAL segment has no header (crashed before format?): " +
          options_.path);
    }
    base_lsn_ = 1;
    head_lsn_ = 0;
    tail_block_ = 1;
    WriteSegmentHeader();
    return device_->io_status();
  }
  const std::uint32_t b = options_.block_words;
  std::vector<word_t> header(b, 0);
  device_->Read(0, header.data());
  if (header[kSegWMagic] != kSegMagic || header[kSegWVersion] != kSegVersion ||
      header[kSegWChecksum] != SegChecksum(header)) {
    return Status::FailedPrecondition("corrupt WAL segment header: " +
                                      options_.path);
  }
  if (header[kSegWBlockWords] != b) {
    return Status::FailedPrecondition("WAL block_words mismatch: " +
                                      options_.path);
  }
  base_lsn_ = header[kSegWBaseLsn];
  head_lsn_ = base_lsn_ - 1;
  tail_block_ = 1;
  // A matching scan-resume hint skips the already-consumed prefix: the
  // caller vouches it holds every record below hint_lsn, and a rotated
  // segment (base mismatch) invalidates the hint wholesale. hint_lsn must
  // be past the base — an empty-at-hint-time segment resolves to a full
  // scan, which is equally correct and avoids trusting a stale block.
  if (options_.read_only && options_.hint_block >= 1 &&
      options_.hint_base_lsn == base_lsn_ && options_.hint_lsn > base_lsn_) {
    head_lsn_ = options_.hint_lsn - 1;
    tail_block_ = options_.hint_block;
  }
  ScanFrames();
  return device_->io_status();
}

void WriteAheadLog::WriteSegmentHeader() {
  std::vector<word_t> header(options_.block_words, 0);
  FormatSegmentHeader(&header, base_lsn_, options_.block_words);
  device_->Write(0, header.data());
}

void WriteAheadLog::ScanFrames() {
  const std::uint32_t b = options_.block_words;
  const BlockId file_blocks = device_->NumBlocks();
  std::vector<word_t> head(b, 0);
  BlockId block = tail_block_;       // 1 unless a scan-resume hint applied
  std::uint64_t expect = head_lsn_ + 1;
  while (block < file_blocks) {
    device_->Read(block, head.data());
    if (head[kFrWMagic] != kFrameMagic || head[kFrWLsn] != expect) break;
    const std::uint32_t payload_words =
        static_cast<std::uint32_t>(head[kFrWTypeLen]);
    const auto type =
        static_cast<RecordType>(head[kFrWTypeLen] >> 32);
    if (type != RecordType::kPreImage && type != RecordType::kLogical) break;
    const std::uint64_t frame_blocks =
        CeilDiv(kFrameHeaderWords + payload_words, b);
    if (frame_blocks == 0 || block + frame_blocks > file_blocks) break;
    scratch_.assign(frame_blocks * b, 0);
    device_->ReadRun(block, static_cast<std::uint32_t>(frame_blocks),
                     scratch_.data());
    const word_t stored_crc = scratch_[kFrWCrc];
    scratch_[kFrWCrc] = 0;
    const std::uint32_t crc = Crc32(
        std::span<const word_t>(scratch_.data(),
                                kFrameHeaderWords + payload_words));
    if (stored_crc != crc) break;  // torn or corrupt: drop this frame on
    records_.push_back(Record{expect, type, block, payload_words});
    head_lsn_ = expect;
    ++expect;
    block += frame_blocks;
  }
  // Everything from `block` on is the torn tail (or empty space): the next
  // append overwrites it. Nothing is acknowledged past a valid frame, so
  // dropping it loses only un-committed suffix.
  tail_block_ = block;
}

std::uint64_t WriteAheadLog::Append(RecordType type,
                                    std::span<const word_t> payload) {
  TOKRA_CHECK(!options_.read_only);
  obs::ScopedTimer timer(options_.append_us);
  const std::uint32_t b = options_.block_words;
  const std::uint64_t lsn = head_lsn_ + 1;
  const std::uint64_t frame_blocks =
      CeilDiv(kFrameHeaderWords + payload.size(), b);
  scratch_.assign(frame_blocks * b, 0);
  scratch_[kFrWMagic] = kFrameMagic;
  scratch_[kFrWLsn] = lsn;
  scratch_[kFrWTypeLen] = (static_cast<word_t>(type) << 32) |
                          static_cast<word_t>(payload.size());
  if (!payload.empty()) {
    std::memcpy(scratch_.data() + kFrameHeaderWords, payload.data(),
                payload.size() * sizeof(word_t));
  }
  scratch_[kFrWCrc] = 0;
  scratch_[kFrWCrc] = Crc32(std::span<const word_t>(
      scratch_.data(), kFrameHeaderWords + payload.size()));

  // One vectored submission for the whole frame — the group-commit write.
  std::vector<IoRequest> reqs;
  reqs.reserve(frame_blocks);
  for (std::uint64_t i = 0; i < frame_blocks; ++i) {
    reqs.push_back(IoRequest{tail_block_ + i, scratch_.data() + i * b});
  }
  device_->SubmitWrites(reqs);
  records_.push_back(Record{lsn, type, tail_block_,
                            static_cast<std::uint32_t>(payload.size())});
  head_lsn_ = lsn;
  tail_block_ += frame_blocks;
  ++appends_;
  return lsn;
}

void WriteAheadLog::Sync() {
  // FileBlockDevice::Sync is the real barrier exactly when options_.fsync
  // configured durable_sync on the log device; it counts itself. Only real
  // barriers are worth timing: the page-cache no-op would pollute the
  // fsync histogram with sub-microsecond samples.
  obs::ScopedTimer timer(options_.fsync ? options_.fsync_us : nullptr);
  device_->Sync();
}

Status WriteAheadLog::Truncate(std::uint64_t upto) {
  TOKRA_CHECK(!options_.read_only);
  truncated_lsn_ = std::max(truncated_lsn_, upto);
  std::erase_if(records_, [&](const Record& r) { return r.lsn <= upto; });
  // Logical truncation suffices while the segment is small: surviving (or
  // stale-but-inert) frames stay in place and appends continue. Rotation —
  // only once every record is obsolete, so no live record needs copying —
  // bounds the file at roughly one checkpoint interval past the threshold.
  if (!records_.empty() || device_->NumBlocks() <= options_.rotate_blocks) {
    return Status::Ok();
  }
  return Rotate(head_lsn_ + 1);
}

Status WriteAheadLog::AdvanceTo(std::uint64_t next) {
  TOKRA_CHECK(!options_.read_only);
  TOKRA_CHECK(next > head_lsn_);
  // Every current record is at or below head < next, i.e. at or below the
  // caller's stamp: inert, safe to drop with the old segment.
  records_.clear();
  return Rotate(next);
}

Status WriteAheadLog::Rotate(std::uint64_t new_base) {
  TOKRA_CHECK(records_.empty());
  const std::string side = options_.path + kRotateSuffix;
  {
    FileBlockDevice fresh(options_.block_words,
                          FileBlockDevice::FileOptions{
                              .path = side,
                              .truncate = true,
                              .durable_sync = options_.fsync});
    std::vector<word_t> header(options_.block_words, 0);
    FormatSegmentHeader(&header, new_base, options_.block_words);
    fresh.Write(0, header.data());
    fresh.Sync();
    retired_syncs_ += fresh.syncs();
    if (fresh.io_failed()) {
      // The rotation never published; the old (still valid) segment stays.
      return fresh.io_status();
    }
  }
  // The new segment's header must be durable before the rename publishes
  // it; the rename itself must be journaled before the next checkpoint can
  // rely on the rotated log. Both barriers only matter (and only run) under
  // fsync mode — page-cache mode tolerates losing the rotation entirely,
  // because the old segment's frames are all stamped-inert.
  if (std::rename(side.c_str(), options_.path.c_str()) != 0) {
    return Status::Internal("WAL rotation rename failed: " + side);
  }
  if (options_.fsync && !FsyncDirContaining(options_.path)) {
    return Status::Internal("WAL rotation dir fsync failed");
  }
  retired_syncs_ += device_->syncs();
  device_ = std::make_unique<FileBlockDevice>(
      options_.block_words, FileBlockDevice::FileOptions{
                                .path = options_.path,
                                .truncate = false,
                                .durable_sync = options_.fsync});
  if (device_->io_failed()) return device_->io_status();
  if (options_.fault != nullptr) {
    device_ = std::make_unique<FaultInjectingBlockDevice>(std::move(device_),
                                                          options_.fault);
  }
  base_lsn_ = new_base;
  head_lsn_ = new_base - 1;
  tail_block_ = 1;
  return Status::Ok();
}

Status WriteAheadLog::ReadPayload(const Record& rec,
                                  std::vector<word_t>* out) const {
  const std::uint32_t b = options_.block_words;
  const std::uint64_t frame_blocks =
      CeilDiv(kFrameHeaderWords + rec.payload_words, b);
  if (rec.first_block + frame_blocks > device_->NumBlocks()) {
    return Status::Internal("WAL record out of segment bounds");
  }
  std::vector<word_t> frame(frame_blocks * b, 0);
  device_->ReadRun(rec.first_block, static_cast<std::uint32_t>(frame_blocks),
                   frame.data());
  out->assign(frame.begin() + kFrameHeaderWords,
              frame.begin() + kFrameHeaderWords + rec.payload_words);
  return Status::Ok();
}

StatusOr<std::unique_ptr<WalReader>> WalReader::Open(
    std::string path, std::uint32_t block_words) {
  WriteAheadLog::Options o;
  o.path = std::move(path);
  o.block_words = block_words;
  return Open(std::move(o));
}

StatusOr<std::unique_ptr<WalReader>> WalReader::Open(
    WriteAheadLog::Options options) {
  options.read_only = true;
  TOKRA_ASSIGN_OR_RETURN(auto log, WriteAheadLog::Open(std::move(options)));
  return std::unique_ptr<WalReader>(new WalReader(std::move(log)));
}

void WalReader::Seek(std::uint64_t after) {
  const auto& recs = log_->records();
  pos_ = 0;
  while (pos_ < recs.size() && recs[pos_].lsn <= after) ++pos_;
}

bool WalReader::Next(WriteAheadLog::Record* rec,
                     std::vector<word_t>* payload) {
  const auto& recs = log_->records();
  if (pos_ >= recs.size()) return false;
  *rec = recs[pos_++];
  // A payload that scanned valid but can no longer be read means the
  // device failed underneath us; end the iteration instead of aborting —
  // the caller sees the shortfall through the log's sticky io_status().
  if (!log_->ReadPayload(*rec, payload).ok()) {
    pos_ = recs.size();
    return false;
  }
  return true;
}

}  // namespace tokra::em
