// Replicated service demo: a primary serving writes while followers
// bootstrap over TCP, tail its WAL, and answer top-k reads locally.
//
//   cmake --build build && ./build/replicated_service
//
// Roles:
//   (no flags)                  self-contained demo: forks a primary and two
//                               follower processes, loads updates, kills the
//                               primary mid-stream, shows the followers
//                               degrade (stale reads + lag gauges), restarts
//                               the primary, and shows convergence.
//   --role=primary              build an engine and serve replication.
//     [--dir=PATH] [--port=N]
//   --role=follower --port=N    bootstrap from 127.0.0.1:N and answer
//     [--dir=PATH]              queries locally, printing lag every second.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "repl/follower.h"
#include "repl/primary.h"
#include "util/random.h"

namespace {

namespace fs = std::filesystem;
using namespace tokra;
using engine::EngineOptions;
using engine::ShardedTopkEngine;
using repl::Follower;
using repl::Primary;

constexpr std::size_t kPoints = 10000;
constexpr double kXHi = 1e6;

EngineOptions EngOpts(const std::string& dir) {
  EngineOptions o;
  o.num_shards = 4;
  o.threads = 2;
  o.em = em::EmOptions{.block_words = 256, .pool_frames = 32};
  o.storage_dir = dir;
  o.durability = engine::Durability::kWal;
  o.telemetry.enabled = false;
  return o;
}

int RunPrimary(const std::string& dir, std::uint16_t port, bool forever) {
  fs::create_directories(dir);
  Rng rng(7);
  std::vector<Point> pts(kPoints);
  auto xs = rng.DistinctDoubles(kPoints, 0.0, kXHi);
  auto scores = rng.DistinctDoubles(kPoints, 0.0, 1.0);
  for (std::size_t i = 0; i < kPoints; ++i) pts[i] = Point{xs[i], scores[i]};
  auto eng = ShardedTopkEngine::Build(pts, EngOpts(dir));
  if (!eng.ok()) {
    std::fprintf(stderr, "primary: %s\n", eng.status().message().c_str());
    return 1;
  }
  if (Status st = (*eng)->Checkpoint(); !st.ok()) {
    std::fprintf(stderr, "primary: %s\n", st.message().c_str());
    return 1;
  }
  Primary::Options po;
  po.storage_dir = dir;
  po.port = port;
  auto prim = Primary::Start(eng->get(), po);
  if (!prim.ok()) {
    std::fprintf(stderr, "primary: %s\n", prim.status().message().c_str());
    return 1;
  }
  std::printf("primary: serving replication on port %u (dir %s)\n",
              unsigned((*prim)->port()), dir.c_str());
  std::fflush(stdout);
  // Keep a write stream flowing so followers have something to tail.
  for (int i = 0; forever || i < 100000; ++i) {
    const double x = kXHi + 1 + i;
    if (Status st = (*eng)->Insert({x, 1.0 + i}); !st.ok()) {
      std::fprintf(stderr, "primary: insert: %s\n", st.message().c_str());
      return 1;
    }
    ::usleep(1000);
  }
  return 0;
}

int RunFollower(const std::string& dir, std::uint16_t port, int seconds) {
  Follower::Options fo;
  fo.port = port;
  fo.storage_dir = dir;
  fo.engine = EngOpts(dir);
  fo.heartbeat_timeout_ms = 500;
  auto fol = Follower::Start(fo);
  if (!fol.ok()) {
    std::fprintf(stderr, "follower: %s\n", fol.status().message().c_str());
    return 1;
  }
  const double inf = std::numeric_limits<double>::infinity();
  for (int s = 0; seconds <= 0 || s < seconds; ++s) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const Follower::Stats st = (*fol)->stats();
    auto top = (*fol)->TopK(-inf, inf, 3);
    std::printf(
        "follower[%d]: state=%s serving=%d lag_lsn=%llu lag_ms=%lld "
        "boots=%llu reconnects=%llu top1=%s\n",
        ::getpid(), Follower::StateName(st.state), int(st.serving),
        (unsigned long long)st.lag_lsn, (long long)st.lag_ms,
        (unsigned long long)st.bootstraps, (unsigned long long)st.reconnects,
        top.ok() && !top->empty()
            ? std::to_string(top->front().x).c_str()
            : "n/a");
    std::fflush(stdout);
  }
  std::printf("%s", (*fol)->DumpMetrics().c_str());
  return 0;
}

/// Forked demo: primary + two followers, a mid-stream SIGKILL, a restart,
/// and fingerprint convergence — the failover story end to end.
int RunDemo() {
  const std::string root =
      "/tmp/tokra-replicated-demo-" + std::to_string(::getpid());
  fs::remove_all(root);
  fs::create_directories(root);
  // Fixed port keeps the demo simple; fork the primary first and scrape the
  // actual port from a pipe so parallel demos don't collide.
  int pipefd[2];
  if (::pipe(pipefd) != 0) return 1;
  const pid_t prim_pid = ::fork();
  if (prim_pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::_exit(RunPrimary(root + "/primary", 0, /*forever=*/true));
  }
  ::close(pipefd[1]);
  FILE* prim_out = ::fdopen(pipefd[0], "r");
  char line[256];
  std::uint16_t port = 0;
  if (std::fgets(line, sizeof line, prim_out) != nullptr) {
    const char* p = std::strstr(line, "port ");
    if (p != nullptr) port = std::uint16_t(std::atoi(p + 5));
  }
  if (port == 0) {
    std::fprintf(stderr, "demo: primary failed to start\n");
    return 1;
  }
  std::printf("demo: primary pid %d on port %u\n", prim_pid, port);

  std::vector<pid_t> followers;
  for (int i = 0; i < 2; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::fclose(prim_out);
      ::_exit(RunFollower(root + "/f" + std::to_string(i), port,
                          /*seconds=*/12));
    }
    followers.push_back(pid);
  }

  std::this_thread::sleep_for(std::chrono::seconds(4));
  std::printf("demo: SIGKILL primary (followers should degrade, keep "
              "serving, and report growing lag_ms)\n");
  std::fflush(stdout);
  ::kill(prim_pid, SIGKILL);
  ::waitpid(prim_pid, nullptr, 0);
  std::fclose(prim_out);
  std::this_thread::sleep_for(std::chrono::seconds(3));

  std::printf("demo: restarting primary on port %u\n", port);
  std::fflush(stdout);
  auto eng = ShardedTopkEngine::Recover(EngOpts(root + "/primary"));
  if (!eng.ok()) {
    std::fprintf(stderr, "demo: recover: %s\n",
                 eng.status().message().c_str());
    return 1;
  }
  Primary::Options po;
  po.storage_dir = root + "/primary";
  po.port = port;
  auto prim2 = Primary::Start(eng->get(), po);
  if (!prim2.ok()) {
    std::fprintf(stderr, "demo: restart: %s\n",
                 prim2.status().message().c_str());
    return 1;
  }
  int rc = 0;
  for (pid_t pid : followers) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) rc = 1;
  }
  std::printf("demo: done (followers %s)\n", rc == 0 ? "clean" : "FAILED");
  fs::remove_all(root);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);
  std::string role;
  std::string dir;
  std::uint16_t port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--role=", 7) == 0) {
      role = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::uint16_t(std::atoi(argv[i] + 7));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (role.empty()) return RunDemo();
  if (role == "primary") {
    if (dir.empty()) dir = "/tmp/tokra-replicated-primary";
    return RunPrimary(dir, port, /*forever=*/true);
  }
  if (role == "follower") {
    if (port == 0) {
      std::fprintf(stderr, "--role=follower requires --port=N\n");
      return 2;
    }
    if (dir.empty()) {
      dir = "/tmp/tokra-replicated-follower-" + std::to_string(::getpid());
    }
    return RunFollower(dir, port, /*seconds=*/0);
  }
  std::fprintf(stderr, "unknown --role=%s\n", role.c_str());
  return 2;
}
