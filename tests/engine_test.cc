// Tests for the sharded concurrent query engine: cross-shard merge
// correctness against the naive oracle and a single TopkIndex, batch
// semantics, the skew-rebalance hook, and a multithreaded stress run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "core/topk_index.h"
#include "em/pager.h"
#include "engine/batcher.h"
#include "engine/merge.h"
#include "engine/sharded_engine.h"
#include "internal/naive.h"
#include "util/random.h"

namespace tokra::engine {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

EngineOptions Opts(std::uint32_t shards = 4, std::uint32_t threads = 4) {
  EngineOptions o;
  o.num_shards = shards;
  o.threads = threads;
  o.em = em::EmOptions{.block_words = 128, .pool_frames = 64};
  return o;
}

std::vector<Point> RandomPoints(Rng* rng, std::size_t n, double x_hi = 1000.0) {
  auto xs = rng->DistinctDoubles(n, 0.0, x_hi);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

void ExpectPointsEqual(const std::vector<Point>& got,
                       const std::vector<Point>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].x, want[i].x) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

TEST(ChainMergeTest, MergesSortedListsExactly) {
  std::vector<std::vector<Point>> parts = {
      {{1, 0.9}, {2, 0.5}, {3, 0.1}},
      {},
      {{4, 0.8}, {5, 0.7}},
      {{6, 0.95}},
  };
  select::SelectStats stats;
  auto merged = MergeTopK(parts, 4, &stats);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].score, 0.95);
  EXPECT_EQ(merged[1].score, 0.9);
  EXPECT_EQ(merged[2].score, 0.8);
  EXPECT_EQ(merged[3].score, 0.7);
  // k-bounded: visits at most k winners + one frontier node per list.
  EXPECT_LE(stats.nodes_visited, 4u + 4u);

  EXPECT_TRUE(MergeTopK(parts, 0).empty());
  auto all = MergeTopK(parts, 100);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), ByScoreDesc{}));
}

TEST(ShardedEngineTest, EmptyEngineAndGrowth) {
  auto engine = ShardedTopkEngine::Build({}, Opts()).value();
  EXPECT_EQ(engine->size(), 0u);
  auto r = engine->TopK(-kInf, kInf, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());

  ASSERT_TRUE(engine->Insert({1.0, 0.5}).ok());
  ASSERT_TRUE(engine->Insert({2.0, 0.7}).ok());
  ASSERT_TRUE(engine->Insert({-3.0, 0.9}).ok());
  EXPECT_EQ(engine->size(), 3u);
  r = engine->TopK(-kInf, kInf, 2);
  ASSERT_TRUE(r.ok());
  ExpectPointsEqual(*r, {{-3.0, 0.9}, {2.0, 0.7}});

  ASSERT_TRUE(engine->Delete({-3.0, 0.9}).ok());
  r = engine->TopK(-kInf, kInf, 5);
  ASSERT_TRUE(r.ok());
  ExpectPointsEqual(*r, {{2.0, 0.7}, {1.0, 0.5}});
  engine->CheckInvariants();
}

TEST(ShardedEngineTest, RejectsDuplicatesAndMissingDeletes) {
  auto engine = ShardedTopkEngine::Build({{1, 0.5}, {10, 0.7}}, Opts()).value();
  EXPECT_EQ(engine->Insert({1, 0.9}).code(), StatusCode::kAlreadyExists);
  // Duplicate score in a *different* shard's range — only the global
  // registry can catch this.
  EXPECT_EQ(engine->Insert({500, 0.5}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(engine->Delete({2, 0.5}).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->Delete({1, 0.7}).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->size(), 2u);
  EXPECT_EQ(engine->counters().rejected, 4u);
  engine->CheckInvariants();

  EXPECT_FALSE(ShardedTopkEngine::Build({{1, 0.5}, {1, 0.7}}, Opts()).ok());
  EXPECT_FALSE(ShardedTopkEngine::Build({{1, 0.5}, {2, 0.5}}, Opts()).ok());
}

// Acceptance: >= 4 shards, byte-identical to a single TopkIndex over the
// same point set on 10k randomized queries interleaved with inserts/deletes.
TEST(ShardedEngineTest, MatchesSingleIndexOn10kInterleavedQueries) {
  Rng rng(42);
  std::vector<Point> pts = RandomPoints(&rng, 1500);
  auto engine = ShardedTopkEngine::Build(pts, Opts(5, 4)).value();
  em::Pager pager(em::EmOptions{.block_words = 128, .pool_frames = 256});
  auto single = core::TopkIndex::Build(&pager, pts).value();

  auto fresh_xs = rng.DistinctDoubles(3000, 1000.0, 2000.0);
  auto fresh_scores = rng.DistinctDoubles(3000, 1.0, 2.0);
  std::size_t fresh = 0;
  std::vector<Point> live = pts;

  for (int iter = 0; iter < 10000; ++iter) {
    if (iter % 4 == 3) {  // interleaved update
      if (rng.Bernoulli(0.5) && fresh < fresh_xs.size()) {
        Point p{fresh_xs[fresh], fresh_scores[fresh]};
        ++fresh;
        ASSERT_TRUE(engine->Insert(p).ok());
        ASSERT_TRUE(single->Insert(p).ok());
        live.push_back(p);
      } else if (!live.empty()) {
        std::size_t victim = rng.Uniform(live.size());
        Point p = live[victim];
        ASSERT_TRUE(engine->Delete(p).ok());
        ASSERT_TRUE(single->Delete(p).ok());
        live[victim] = live.back();
        live.pop_back();
      }
    }
    double a = rng.UniformDouble(-100.0, 2100.0);
    double b = rng.UniformDouble(-100.0, 2100.0);
    if (a > b) std::swap(a, b);
    std::uint64_t k = 1 + rng.Uniform(60);
    auto got = engine->TopK(a, b, k);
    auto want = single->TopK(a, b, k);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_NO_FATAL_FAILURE(ExpectPointsEqual(*got, *want)) << "iter " << iter;
  }
  EXPECT_EQ(engine->size(), live.size());
  engine->CheckInvariants();
}

// Queries straddling shard boundaries, plus k larger than any single
// shard's hit count, against the naive oracle.
TEST(ShardedEngineTest, ShardBoundaryStraddlingMatchesOracle) {
  Rng rng(7);
  std::vector<Point> pts = RandomPoints(&rng, 1200);
  auto engine = ShardedTopkEngine::Build(pts, Opts(6, 4)).value();
  std::vector<double> bounds = engine->ShardLowerBounds();
  ASSERT_EQ(bounds.size(), 6u);

  auto check = [&](double a, double b, std::uint64_t k) -> EngineQueryStats {
    EngineQueryStats stats;
    auto got = engine->TopK(a, b, k, &stats);
    EXPECT_TRUE(got.ok());
    if (got.ok()) ExpectPointsEqual(*got, internal::NaiveTopK(pts, a, b, k));
    return stats;
  };

  // Tight straddles of each internal boundary.
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    for (std::uint64_t k : {1u, 5u, 40u}) {
      auto stats = check(bounds[i] - 10.0, bounds[i] + 10.0, k);
      EXPECT_GE(stats.shards_queried, 2u) << "boundary " << i;
    }
  }
  // Spans covering 3+ shards and the whole key space.
  check(bounds[1] - 1.0, bounds[4] + 1.0, 25);
  check(-kInf, kInf, 10);

  // k exceeding every single shard's in-range hit count: with 1200 points
  // over 6 shards each holds ~200, so the full-range top-900 must take
  // points from several shards (more than any one can supply).
  EngineQueryStats stats;
  auto got = engine->TopK(-kInf, kInf, 900, &stats);
  ASSERT_TRUE(got.ok());
  ExpectPointsEqual(*got, internal::NaiveTopK(pts, -kInf, kInf, 900));
  EXPECT_EQ(stats.shards_queried, 6u);
  auto sizes = engine->ShardSizes();
  EXPECT_GT(900u, *std::max_element(sizes.begin(), sizes.end()));
  // k exceeding the whole population returns everything.
  got = engine->TopK(-kInf, kInf, 5000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), pts.size());

  EXPECT_EQ(engine->TopK(5.0, 1.0, 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, BatchAppliesUpdatesBeforeQueries) {
  auto engine = ShardedTopkEngine::Build({{1, 0.1}}, Opts()).value();
  std::vector<Request> batch = {
      Request::MakeTopk(-kInf, kInf, 10),  // phase-wise sees the whole batch
      Request::MakeInsert({2, 0.2}),
      Request::MakeInsert({3, 0.3}),
      Request::MakeDelete({1, 0.1}),
      Request::MakeInsert({2, 0.9}),   // duplicate x within the batch
      Request::MakeInsert({4, 0.2}),   // duplicate score within the batch
      Request::MakeTopk(-kInf, kInf, 10),
  };
  std::vector<Response> out;
  engine->ExecuteBatch(batch, &out);
  ASSERT_EQ(out.size(), batch.size());
  EXPECT_TRUE(out[1].status.ok());
  EXPECT_TRUE(out[2].status.ok());
  EXPECT_TRUE(out[3].status.ok());
  EXPECT_EQ(out[4].status.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(out[5].status.code(), StatusCode::kAlreadyExists);
  for (std::size_t qi : {std::size_t{0}, std::size_t{6}}) {
    ASSERT_TRUE(out[qi].status.ok());
    ASSERT_NO_FATAL_FAILURE(
        ExpectPointsEqual(out[qi].points, {{3, 0.3}, {2, 0.2}}));
  }
  engine->CheckInvariants();
}

TEST(ShardedEngineTest, BatcherMatchesSerialExecution) {
  Rng rng(11);
  std::vector<Point> pts = RandomPoints(&rng, 600);
  auto batched = ShardedTopkEngine::Build(pts, Opts(4, 4)).value();
  auto serial = ShardedTopkEngine::Build(pts, Opts(4, 1)).value();

  RequestBatcher batcher(batched.get(), /*max_pending=*/64);
  auto fresh_xs = rng.DistinctDoubles(500, 1000.0, 2000.0);
  auto fresh_scores = rng.DistinctDoubles(500, 1.0, 2.0);

  std::vector<std::pair<Request, std::future<Response>>> pending;
  for (std::size_t i = 0; i < 500; ++i) {
    Request req;
    switch (rng.Uniform(3)) {
      case 0:
        req = Request::MakeInsert({fresh_xs[i], fresh_scores[i]});
        break;
      case 1: {
        double a = rng.UniformDouble(0, 2000), b = rng.UniformDouble(0, 2000);
        if (a > b) std::swap(a, b);
        req = Request::MakeTopk(a, b, 1 + rng.Uniform(30));
        break;
      }
      default:
        req = Request::MakeDelete(pts[rng.Uniform(pts.size())]);
        break;
    }
    pending.emplace_back(req, batcher.Submit(req));
  }
  batcher.Flush();

  // Queries inside a batch see that whole batch's updates, so replaying the
  // ops serially in the same per-batch phase order must reproduce every
  // response exactly.
  std::size_t batch_start = 0;
  while (batch_start < pending.size()) {
    std::size_t batch_end = std::min(batch_start + 64, pending.size());
    for (std::size_t i = batch_start; i < batch_end; ++i) {
      const Request& req = pending[i].first;
      if (req.kind == Request::Kind::kTopk) continue;
      Status want = req.kind == Request::Kind::kInsert
                        ? serial->Insert(req.point)
                        : serial->Delete(req.point);
      Response got = pending[i].second.get();
      EXPECT_EQ(got.status.code(), want.code()) << "op " << i;
    }
    for (std::size_t i = batch_start; i < batch_end; ++i) {
      const Request& req = pending[i].first;
      if (req.kind != Request::Kind::kTopk) continue;
      Response got = pending[i].second.get();
      auto want = serial->TopK(req.x1, req.x2, req.k);
      ASSERT_TRUE(got.status.ok());
      ASSERT_TRUE(want.ok());
      ASSERT_NO_FATAL_FAILURE(ExpectPointsEqual(got.points, *want))
          << "query " << i;
    }
    batch_start = batch_end;
  }
  EXPECT_EQ(batched->size(), serial->size());
  EXPECT_GE(batcher.stats().batches, 7u);  // 500 reqs / 64 per batch
  batched->CheckInvariants();
}

TEST(ShardedEngineTest, RebalanceHookFixesAdversarialSkew) {
  Rng rng(13);
  EngineOptions opts = Opts(4, 4);
  opts.rebalance_min_points = 256;
  opts.rebalance_skew = 2.0;
  std::vector<Point> pts = RandomPoints(&rng, 400, 100.0);
  auto engine = ShardedTopkEngine::Build(pts, opts).value();
  EXPECT_FALSE(engine->MaybeRebalance());  // balanced at build

  // Adversarial stream: every insert lands beyond the last boundary, so one
  // shard absorbs everything.
  auto xs = rng.DistinctDoubles(800, 200.0, 300.0);
  auto scores = rng.DistinctDoubles(800, 1.0, 2.0);
  std::vector<Point> all = pts;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(engine->Insert({xs[i], scores[i]}).ok());
    all.push_back({xs[i], scores[i]});
  }
  auto sizes = engine->ShardSizes();
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 800u + 100u);

  ASSERT_TRUE(engine->MaybeRebalance());
  EXPECT_EQ(engine->counters().rebalances, 1u);
  sizes = engine->ShardSizes();
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 300u);
  engine->CheckInvariants();

  // Content survives the re-split byte-for-byte.
  auto got = engine->TopK(-kInf, kInf, 50);
  ASSERT_TRUE(got.ok());
  ExpectPointsEqual(*got, internal::NaiveTopK(all, -kInf, kInf, 50));
  EXPECT_FALSE(engine->MaybeRebalance());  // balanced again
}

// Multithreaded stress: concurrent updaters on disjoint key stripes plus
// query threads, then a full invariant check and content comparison.
TEST(ShardedEngineTest, MultithreadedStress) {
  Rng rng(99);
  std::vector<Point> pts = RandomPoints(&rng, 1000, 4000.0);
  auto engine = ShardedTopkEngine::Build(pts, Opts(8, 4)).value();

  constexpr int kUpdaters = 4;
  constexpr int kQueryThreads = 3;
  constexpr int kOpsPerThread = 400;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  // Each updater owns a disjoint x stripe and score band, so every op
  // succeeds regardless of interleaving.
  for (int t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        Point p{5000.0 + t * 1000.0 + i * 0.5, 2.0 + t + i * 1e-6};
        if (!engine->Insert(p).ok()) failed = true;
        if (i % 3 == 0) {
          if (!engine->Delete(p).ok()) failed = true;
        }
      }
    });
  }
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng qrng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        double a = qrng.UniformDouble(0, 10000);
        double b = qrng.UniformDouble(0, 10000);
        if (a > b) std::swap(a, b);
        std::uint64_t k = 1 + qrng.Uniform(40);
        auto r = engine->TopK(a, b, k);
        if (!r.ok()) {
          failed = true;
          continue;
        }
        if (r->size() > k ||
            !std::is_sorted(r->begin(), r->end(), ByScoreDesc{})) {
          failed = true;
        }
        for (const Point& p : *r) {
          if (p.x < a || p.x > b) failed = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  std::vector<Point> expect = pts;
  for (int t = 0; t < kUpdaters; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      if (i % 3 != 0) {
        expect.push_back({5000.0 + t * 1000.0 + i * 0.5, 2.0 + t + i * 1e-6});
      }
    }
  }
  EXPECT_EQ(engine->size(), expect.size());
  engine->CheckInvariants();
  auto got = engine->TopK(-kInf, kInf, expect.size());
  ASSERT_TRUE(got.ok());
  ExpectPointsEqual(*got, internal::NaiveTopK(expect, -kInf, kInf,
                                              expect.size()));
}

// Concurrent submitters sharing one batcher; all futures resolve and the
// final state is exact.
TEST(ShardedEngineTest, ConcurrentBatcherStress) {
  auto engine = ShardedTopkEngine::Build({}, Opts(4, 4)).value();
  RequestBatcher batcher(engine.get(), /*max_pending=*/32);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::atomic<int> ok_inserts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<Response>> futs;
      futs.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        Point p{t * 10000.0 + i, 10.0 + t + i * 1e-5};
        futs.push_back(batcher.Submit(Request::MakeInsert(p)));
      }
      for (auto& f : futs) {
        if (f.get().status.ok()) ok_inserts.fetch_add(1);
      }
    });
  }
  // Submitters block on their own futures, which only resolve at batch
  // boundaries; keep flushing until every future has resolved.
  std::atomic<bool> done{false};
  std::thread flusher([&] {
    while (!done.load()) {
      batcher.Flush();
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  done = true;
  flusher.join();
  batcher.Flush();

  EXPECT_EQ(ok_inserts.load(), kThreads * kPerThread);
  EXPECT_EQ(engine->size(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  engine->CheckInvariants();
}

// --- merge.h edge cases and the pruning layer -------------------------------

TEST(ChainMergeTest, EdgeCases) {
  // All-empty inputs, with and without lists.
  std::vector<std::vector<Point>> empty_parts(4);
  EXPECT_TRUE(MergeTopK(empty_parts, 5).empty());
  EXPECT_TRUE(MergeTopK({}, 5).empty());
  EXPECT_TRUE(MergeTopK(empty_parts, 0).empty());

  // Equal scores across shards: both survive and the output stays sorted.
  // (The engine registry forbids this globally, but the merge must not.)
  std::vector<std::vector<Point>> dup = {
      {{1, 0.8}, {2, 0.5}},
      {{3, 0.8}, {4, 0.5}},
  };
  auto merged = MergeTopK(dup, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].score, 0.8);
  EXPECT_EQ(merged[1].score, 0.8);
  EXPECT_EQ(merged[2].score, 0.5);

  // k far beyond the total returns everything exactly once.
  auto all = MergeTopK(dup, 1000);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), ByScoreDesc{}));
}

TEST(ChainMergeTest, PackRoundTripsAtWidthLimits) {
  constexpr std::size_t kMax = (std::size_t{1} << 32) - 1;
  for (std::size_t list : {std::size_t{0}, std::size_t{1}, kMax}) {
    for (std::size_t pos : {std::size_t{0}, std::size_t{7}, kMax}) {
      select::NodeId id = ChainMergeView::Pack(list, pos);
      EXPECT_EQ(ChainMergeView::ListOf(id), list);
      EXPECT_EQ(ChainMergeView::PosOf(id), pos);
    }
  }
#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
  // Out-of-width halves would alias another node; Pack must refuse, not
  // truncate.
  EXPECT_DEATH(ChainMergeView::Pack(std::size_t{1} << 32, 0), "");
  EXPECT_DEATH(ChainMergeView::Pack(0, std::size_t{1} << 32), "");
#endif
}

TEST(MergeFrontierTest, TracksRunningKthScore) {
  MergeFrontier f(3);
  EXPECT_FALSE(f.full());
  f.Push(0.5);
  f.Push(0.9);
  EXPECT_FALSE(f.full());
  f.Push(0.1);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.kth(), 0.1);
  f.Push(0.7);  // displaces 0.1; held = {0.9, 0.7, 0.5}
  EXPECT_EQ(f.kth(), 0.5);
  f.Push(0.2);  // below the bar, ignored
  EXPECT_EQ(f.kth(), 0.5);
  f.PushAll({{1, 0.95}, {2, 0.05}});
  EXPECT_EQ(f.kth(), 0.7);

  // k == 0 never fills: there is no bar to prune against.
  MergeFrontier zero(0);
  zero.Push(1.0);
  EXPECT_FALSE(zero.full());
}

// Pruning on vs off: identical answers, and on a score-monotone-in-x set
// the fences let wide queries skip most shards.
TEST(ShardedEngineTest, PruningMatchesOracleAndPrunesShards) {
  Rng rng(11);
  auto xs = rng.DistinctDoubles(1600, 0.0, 1000.0);
  std::sort(xs.begin(), xs.end());
  auto scores = rng.DistinctDoubles(1600, 0.0, 1.0);
  std::sort(scores.begin(), scores.end());
  std::vector<Point> pts(1600);
  for (std::size_t i = 0; i < pts.size(); ++i) pts[i] = {xs[i], scores[i]};

  EngineOptions on = Opts(8, 4);
  on.pruning.dispatch_wave = 2;
  EngineOptions off = Opts(8, 4);
  off.pruning.enabled = false;
  auto pruned_eng = ShardedTopkEngine::Build(pts, on).value();
  auto plain_eng = ShardedTopkEngine::Build(pts, off).value();

  std::uint64_t total_pruned = 0, total_checks = 0;
  for (int i = 0; i < 50; ++i) {
    double a = rng.UniformDouble(0.0, 200.0);
    double b = a + 750.0;
    std::uint64_t k = 1 + rng.Uniform(20);
    EngineQueryStats ps, qs;
    auto got = pruned_eng->TopK(a, b, k, &ps);
    auto want = plain_eng->TopK(a, b, k, &qs);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectPointsEqual(*got, *want);
    ExpectPointsEqual(*got, internal::NaiveTopK(pts, a, b, k));
    total_pruned += ps.shards_pruned;
    total_checks += ps.fence_checks;
    EXPECT_GE(ps.waves, 1u);
    EXPECT_EQ(qs.shards_pruned, 0u);
    EXPECT_EQ(qs.fence_checks, 0u);
    // Both engines share shard bounds, so dispatched + pruned must equal
    // the unpruned fan-out.
    EXPECT_EQ(ps.shards_queried + ps.shards_pruned, qs.shards_queried);
  }
  EXPECT_GT(total_pruned, 0u);
  EXPECT_GT(total_checks, 0u);
  EXPECT_GT(pruned_eng->counters().shards_pruned, 0u);
  EXPECT_GT(pruned_eng->counters().fence_checks, 0u);
  EXPECT_GT(pruned_eng->counters().query_waves, 0u);
  pruned_eng->CheckInvariants();
}

// Point lookups (x1 == x2) go through the Bloom filter: present keys are
// always found, absent keys mostly never reach a shard at all.
TEST(ShardedEngineTest, BloomPrunesAbsentPointLookups) {
  Rng rng(13);
  std::vector<Point> pts = RandomPoints(&rng, 800);
  auto engine = ShardedTopkEngine::Build(pts, Opts(4, 2)).value();

  for (int i = 0; i < 20; ++i) {
    const Point& p = pts[static_cast<std::size_t>(i) * 37];
    auto got = engine->TopK(p.x, p.x, 1);
    ASSERT_TRUE(got.ok());
    ExpectPointsEqual(*got, {p});
  }

  std::uint64_t pruned = 0;
  for (int i = 0; i < 30; ++i) {
    double x = rng.UniformDouble(10.0, 990.0);  // absent almost surely
    EngineQueryStats stats;
    auto got = engine->TopK(x, x, 1, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->empty());
    pruned += stats.shards_pruned;
  }
  // ~8 bits/key Bloom: a handful of false positives at worst across 30
  // lookups, so pruning must have fired.
  EXPECT_GT(pruned, 0u);
  engine->CheckInvariants();
}

// --- MVCC epoch-based serving (DESIGN.md §14) -------------------------------

EngineOptions MvccOpts(std::uint32_t shards = 4, std::uint32_t threads = 4) {
  EngineOptions o = Opts(shards, threads);
  o.mvcc = true;
  return o;
}

// Every probe of an MVCC engine rides a published epoch view: answers are
// byte-identical to the oracle and the query path never takes a shard
// mutex (the lock-free-reads acceptance assertion).
TEST(MvccEngineTest, LockFreeQueriesMatchOracleWithZeroShardLocks) {
  Rng rng(21);
  std::vector<Point> pts = RandomPoints(&rng, 1200);
  auto engine = ShardedTopkEngine::Build(pts, MvccOpts(5, 4)).value();
  for (int i = 0; i < 200; ++i) {
    double a = rng.UniformDouble(-100.0, 1100.0);
    double b = rng.UniformDouble(-100.0, 1100.0);
    if (a > b) std::swap(a, b);
    std::uint64_t k = 1 + rng.Uniform(50);
    auto got = engine->TopK(a, b, k);
    ASSERT_TRUE(got.ok());
    ASSERT_NO_FATAL_FAILURE(
        ExpectPointsEqual(*got, internal::NaiveTopK(pts, a, b, k)));
  }
  EXPECT_EQ(engine->counters().query_shard_locks, 0u);
  engine->CheckInvariants();
}

// Updates publish a fresh epoch before returning, so a single client reads
// its own writes immediately — still without any query-path shard lock.
TEST(MvccEngineTest, ReadYourWritesAcrossEpochs) {
  Rng rng(23);
  std::vector<Point> live = RandomPoints(&rng, 300);
  auto engine = ShardedTopkEngine::Build(live, MvccOpts(4, 2)).value();
  auto fresh_xs = rng.DistinctDoubles(200, 2000.0, 3000.0);
  auto fresh_scores = rng.DistinctDoubles(200, 1.0, 2.0);
  for (std::size_t i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      Point p{fresh_xs[i], fresh_scores[i]};
      ASSERT_TRUE(engine->Insert(p).ok());
      live.push_back(p);
    } else {
      std::size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(engine->Delete(live[victim]).ok());
      live[victim] = live.back();
      live.pop_back();
    }
    double a = rng.UniformDouble(-100.0, 3100.0);
    double b = rng.UniformDouble(-100.0, 3100.0);
    if (a > b) std::swap(a, b);
    std::uint64_t k = 1 + rng.Uniform(20);
    auto got = engine->TopK(a, b, k);
    ASSERT_TRUE(got.ok());
    ASSERT_NO_FATAL_FAILURE(
        ExpectPointsEqual(*got, internal::NaiveTopK(live, a, b, k)))
        << "after update " << i;
  }
  EXPECT_EQ(engine->counters().query_shard_locks, 0u);
  // The update stream superseded COW blocks across many epochs; with the
  // old views dropped, retirement must have recycled some of them.
  EXPECT_GT(engine->AggregatedIoStats().retired_blocks, 0u);
  engine->CheckInvariants();
}

// The concurrent acceptance test: reader threads hammer wide top-k queries
// while writer threads churn low-scored points. The base points own the
// globally highest scores, so every consistent snapshot answers the SAME
// top-16 — any torn or half-applied epoch a reader observed would break
// the comparison. Probes must never fall back to the shard mutex.
TEST(MvccEngineTest, ConcurrentReadersSeeConsistentTopKDuringUpdateStorm) {
  std::vector<Point> base;
  for (int i = 0; i < 64; ++i) {
    base.push_back({i * 10.0, 100.0 + i});
  }
  auto engine = ShardedTopkEngine::Build(base, MvccOpts(4, 4)).value();
  const std::vector<Point> expect =
      internal::NaiveTopK(base, -kInf, kInf, 16);

  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kOpsPerWriter = 150;
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Writers churn thread-distinct x namespaces with scores strictly below
  // every base score, so the global top-16 is invariant under the storm.
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Point p{100000.0 + t * 10000.0 + i * 0.5,
                1e-4 * (t * kOpsPerWriter + i + 1)};
        if (!engine->Insert(p).ok()) failed = true;
        if (i % 2 == 0 && !engine->Delete(p).ok()) failed = true;
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = engine->TopK(-kInf, kInf, 16);
        if (!r.ok() || r->size() != expect.size()) {
          failed = true;
          continue;
        }
        for (std::size_t i = 0; i < expect.size(); ++i) {
          if ((*r)[i].x != expect[i].x || (*r)[i].score != expect[i].score) {
            failed = true;
          }
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop = true;
  for (int t = kWriters; t < kWriters + kReaders; ++t) threads[t].join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(engine->counters().query_shard_locks, 0u);
  EXPECT_GT(engine->AggregatedIoStats().retired_blocks, 0u);
  engine->CheckInvariants();
}

// A rebalance replaces every shard (and its epoch views) wholesale; the
// fresh views serve the re-split content and stay lock-free.
TEST(MvccEngineTest, RebalancePublishesFreshViews) {
  Rng rng(29);
  std::vector<Point> pts = RandomPoints(&rng, 500);
  auto engine = ShardedTopkEngine::Build(pts, MvccOpts(4, 2)).value();
  ASSERT_TRUE(engine->Rebalance().ok());
  auto got = engine->TopK(-kInf, kInf, 40);
  ASSERT_TRUE(got.ok());
  ExpectPointsEqual(*got, internal::NaiveTopK(pts, -kInf, kInf, 40));
  EXPECT_EQ(engine->counters().query_shard_locks, 0u);
  engine->CheckInvariants();
}

}  // namespace
}  // namespace tokra::engine
