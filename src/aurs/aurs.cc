#include "aurs/aurs.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace tokra::aurs {
namespace {

/// The k >= m case of the appendix algorithm.
StatusOr<double> SelectLargeK(std::span<RankedSet* const> sets,
                              std::uint64_t k, double c, AursStats* stats) {
  const std::size_t m = sets.size();
  TOKRA_CHECK(k >= m);

  struct PivotRec {
    double value;
    std::uint64_t weight;
  };
  std::vector<PivotRec> pivots;  // P: pivots of all rounds

  std::vector<std::size_t> active(m);
  for (std::size_t i = 0; i < m; ++i) active[i] = i;

  // ceil(log_c m), at least 1 (paper convention lg_b x = max{1, log_b x}).
  std::uint32_t rounds = 1;
  {
    double p = c;
    while (p < static_cast<double>(m)) {
      p *= c;
      ++rounds;
    }
  }

  double cj = c;  // c^j
  std::uint64_t prev_ceil = 0;
  for (std::uint32_t j = 1; j <= rounds; ++j, cj *= c) {
    if (stats != nullptr) ++stats->rounds;
    double rho = cj * static_cast<double>(k) / static_cast<double>(m);
    std::uint64_t cur_ceil =
        static_cast<std::uint64_t>(std::ceil(cj * static_cast<double>(k) /
                                             static_cast<double>(m)));
    std::uint64_t weight = (j == 1) ? cur_ceil : cur_ceil - prev_ceil;
    prev_ceil = cur_ceil;

    // Markers of this round, one per active set.
    struct Marker {
      double value;
      std::size_t set;
    };
    std::vector<Marker> markers;
    markers.reserve(active.size());
    for (std::size_t si : active) {
      if (stats != nullptr) ++stats->rank_calls;
      markers.push_back(Marker{sets[si]->RankSelect(rho), si});
    }

    // The ceil(m / c^j) largest markers become pivots; their sets survive.
    std::size_t keep = static_cast<std::size_t>(
        std::ceil(static_cast<double>(m) / cj));
    keep = std::min(keep, markers.size());
    std::partial_sort(markers.begin(), markers.begin() + keep, markers.end(),
                      [](const Marker& a, const Marker& b) {
                        return a.value > b.value;
                      });
    std::vector<std::size_t> next_active;
    next_active.reserve(keep);
    for (std::size_t t = 0; t < keep; ++t) {
      pivots.push_back(PivotRec{markers[t].value, weight});
      next_active.push_back(markers[t].set);
    }
    active = std::move(next_active);
  }

  // Weighted selection: the largest pivot whose prefix weight reaches k.
  std::sort(pivots.begin(), pivots.end(),
            [](const PivotRec& a, const PivotRec& b) {
              return a.value > b.value;
            });
  std::uint64_t prefix = 0;
  for (const PivotRec& p : pivots) {
    prefix += p.weight;
    if (prefix >= k) return p.value;
  }
  // Observation 1 guarantees a cutoff pivot has prefix weight >= k.
  return Status::Internal("AURS: no pivot reached prefix weight k");
}

}  // namespace

StatusOr<double> UnionRankSelect(std::span<RankedSet* const> sets,
                                 std::uint64_t k, AursStats* stats,
                                 bool strict) {
  const std::size_t m = sets.size();
  if (m == 0) return Status::InvalidArgument("AURS: no sets");
  if (k < 1) return Status::InvalidArgument("AURS: k must be >= 1");
  double c = 2.0;
  for (RankedSet* s : sets) {
    c = std::max(c, s->RankFactor());
    if (s->Size() == 0) return Status::InvalidArgument("AURS: empty set");
  }
  if (strict) {
    for (RankedSet* s : sets) {
      if (static_cast<double>(k) > static_cast<double>(s->Size()) / c) {
        return Status::InvalidArgument(
            "AURS: condition (2) violated: k > |L_i| / c1");
      }
    }
  }

  if (k >= m) return SelectLargeK(sets, k, c, stats);

  // Case k < m: keep only the k sets whose maximum reaches the k-th largest
  // maximum, then run the main algorithm on them.
  std::vector<std::pair<double, RankedSet*>> maxima;
  maxima.reserve(m);
  for (RankedSet* s : sets) {
    if (stats != nullptr) ++stats->max_calls;
    maxima.emplace_back(s->Max(), s);
  }
  std::partial_sort(maxima.begin(),
                    maxima.begin() + static_cast<std::ptrdiff_t>(k),
                    maxima.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  double v_prime = maxima[k - 1].first;
  std::vector<RankedSet*> act;
  act.reserve(k);
  for (std::size_t i = 0; i < k; ++i) act.push_back(maxima[i].second);
  TOKRA_ASSIGN_OR_RETURN(double v,
                         SelectLargeK(std::span<RankedSet* const>(act), k, c,
                                      stats));
  return std::max(v, v_prime);
}

}  // namespace tokra::aurs
