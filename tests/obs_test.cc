// Tests for the telemetry layer: histogram bucketing and percentiles
// against a sorted-vector oracle, exact concurrent sums, tracer nesting and
// ring wraparound, chrome-trace JSON validity (checked with a real parser),
// the slow-query log's retention contract, the Prometheus exposition
// format, and end-to-end engine integration (including disabled mode).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "util/random.h"

namespace tokra::obs {
namespace {

// ---------------------------------------------------------------- buckets --

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(BucketOf(0), 0u);
  EXPECT_EQ(BucketOf(1), 1u);
  EXPECT_EQ(BucketOf(2), 2u);
  EXPECT_EQ(BucketOf(3), 2u);
  EXPECT_EQ(BucketOf(4), 3u);
  EXPECT_EQ(BucketOf(~std::uint64_t{0}), 64u);
  for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(BucketOf(BucketLo(b)), b);
    EXPECT_EQ(BucketOf(BucketHi(b)), b);
  }
  // Buckets tile the value space with no gap or overlap.
  for (std::uint32_t b = 0; b + 1 < kHistogramBuckets; ++b) {
    EXPECT_EQ(BucketHi(b) + 1, BucketLo(b + 1));
  }
}

TEST(HistogramTest, PercentileMatchesSortedOracle) {
  // The log buckets cannot reproduce the oracle value exactly, but every
  // percentile must land in the same bucket as the rank-selected element of
  // the sorted recordings, and max must be exact.
  Histogram h;
  Rng rng(99);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    // Heavy-tailed mix across many buckets.
    std::uint64_t v = rng.Uniform(1u << (1 + rng.Uniform(20)));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.count, values.size());
  EXPECT_EQ(s.max, values.back());
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) sum += v;
  EXPECT_EQ(s.sum, sum);
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(s.count))));
    const std::uint64_t oracle = values[rank - 1];
    const double got = s.Percentile(q);
    EXPECT_EQ(BucketOf(static_cast<std::uint64_t>(got)), BucketOf(oracle))
        << "q=" << q << " got=" << got << " oracle=" << oracle;
    EXPECT_LE(got, static_cast<double>(s.max));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), static_cast<double>(s.max));
}

TEST(HistogramTest, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_EQ(h.Snapshot().Percentile(0.99), 0.0);
  h.Record(42);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, 42u);
  EXPECT_EQ(BucketOf(static_cast<std::uint64_t>(s.Percentile(0.5))),
            BucketOf(42));
}

TEST(HistogramTest, ConcurrentRecordingSumsExactly) {
  // Sharded relaxed counters lose nothing: after the writers join, count
  // and sum are exact.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(i % 100) + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t per_thread_sum = 0;
  for (int i = 0; i < kPerThread; ++i) per_thread_sum += i % 100 + 1;
  EXPECT_EQ(s.sum, per_thread_sum * kThreads);
  EXPECT_EQ(s.max, 100u);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ScopedTimerTest, NullHistogramIsInert) {
  { ScopedTimer t(nullptr); }  // must not crash (and reads no clock)
  Histogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.Snapshot().count, 1u);
}

// ----------------------------------------------------------------- tracer --

TEST(TracerTest, ImplicitNestingRecordsParentIds) {
  Tracer tracer(16);
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    ScopedSpan outer(&tracer, "outer");
    outer_id = outer.id();
    {
      ScopedSpan inner(&tracer, "inner");
      inner_id = inner.id();
    }
  }
  ASSERT_NE(outer_id, 0u);
  ASSERT_NE(inner_id, 0u);
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const Tracer::Span* outer_sp = nullptr;
  const Tracer::Span* inner_sp = nullptr;
  for (const auto& s : spans) {
    if (s.id == outer_id) outer_sp = &s;
    if (s.id == inner_id) inner_sp = &s;
  }
  ASSERT_NE(outer_sp, nullptr);
  ASSERT_NE(inner_sp, nullptr);
  EXPECT_EQ(outer_sp->parent, 0u);
  EXPECT_EQ(inner_sp->parent, outer_id);
  EXPECT_STREQ(inner_sp->name, "inner");
  EXPECT_LE(outer_sp->start_us, inner_sp->start_us);
}

TEST(TracerTest, ExplicitParentCrossesThreads) {
  Tracer tracer(16);
  std::uint64_t root_id = 0, child_id = 0;
  {
    ScopedSpan root(&tracer, "root");
    root_id = root.id();
    std::thread worker([&] {
      ScopedSpan child(&tracer, "child", root_id);
      child_id = child.id();
    });
    worker.join();
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& s : spans) {
    if (s.id == child_id) {
      EXPECT_EQ(s.parent, root_id);
    }
  }
}

TEST(TracerTest, NullTracerSpanIsInert) {
  ScopedSpan inert(nullptr, "nothing");
  EXPECT_EQ(inert.id(), 0u);
  ScopedSpan defaulted;
  EXPECT_EQ(defaulted.id(), 0u);
}

TEST(TracerTest, RingWraparoundKeepsMostRecent) {
  Tracer tracer(4);  // rounded to a power of two
  ASSERT_EQ(tracer.capacity(), 4u);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    ScopedSpan s(&tracer, "span");
    ids.push_back(s.id());
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Exactly the last capacity() spans survive.
  for (const auto& s : spans) {
    EXPECT_TRUE(std::find(ids.end() - 4, ids.end(), s.id) != ids.end())
        << "stale span id " << s.id;
  }
}

TEST(TracerTest, ConcurrentRecordingStaysConsistent) {
  // Hammer the ring from many threads; Snapshot must only ever observe
  // fully-written spans (name non-null, id non-zero).
  Tracer tracer(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        ScopedSpan s(&tracer, "stress");
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& s : tracer.Snapshot()) {
        ASSERT_NE(s.name, nullptr);
        ASSERT_NE(s.id, 0u);
      }
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(tracer.recorded(), 4u * 5000u);
}

// Minimal recursive-descent JSON validator: the exported trace must be a
// syntactically complete JSON document, not just look like one.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      if (!Value()) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Consume('"');
  }
  bool Number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TracerTest, ChromeJsonExportIsValidJson) {
  Tracer tracer(16);
  {
    ScopedSpan a(&tracer, "query");
    ScopedSpan b(&tracer, "shard_probe");
  }
  const std::string json = tracer.ExportChromeJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("shard_probe"), std::string::npos);
}

TEST(TracerTest, EmptyExportIsValidJson) {
  Tracer tracer(4);
  const std::string json = tracer.ExportChromeJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
}

// --------------------------------------------------------- slow query log --

TEST(SlowQueryLogTest, ThresholdAndRetention) {
  SlowQueryLog log(/*threshold_us=*/100, /*capacity=*/2);
  EXPECT_FALSE(log.ShouldCapture(99));
  EXPECT_TRUE(log.ShouldCapture(100));
  for (std::uint64_t i = 0; i < 3; ++i) {
    SlowQueryEntry e;
    e.total_us = 100 + i;
    e.x1 = 1.0;
    e.x2 = 2.0;
    e.k = 5;
    e.stages.push_back({"fanout", 40});
    e.shards.push_back({0, 3, {}});
    log.Capture(std::move(e));
  }
  EXPECT_EQ(log.captured(), 3u);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);  // oldest evicted
  EXPECT_EQ(entries[0].total_us, 101u);
  EXPECT_EQ(entries[1].total_us, 102u);
  EXPECT_LT(entries[0].seq, entries[1].seq);
  EXPECT_NE(entries[0].ToString().find("fanout"), std::string::npos);
  EXPECT_FALSE(log.Dump().empty());
}

// ----------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, StablePointersAndLabels) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("tokra_test_total");
  Counter* c2 = reg.GetCounter("tokra_test_total");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("tokra_test_us", "stage=\"merge\"");
  Histogram* h2 = reg.GetHistogram("tokra_test_us", "stage=\"probe\"");
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, reg.GetHistogram("tokra_test_us", "stage=\"merge\""));
}

TEST(MetricsRegistryTest, DumpMetricsExpositionFormat) {
  MetricsRegistry reg;
  reg.GetCounter("tokra_ops_total")->Add(7);
  reg.GetGauge("tokra_depth")->Set(-3);
  Histogram* h = reg.GetHistogram("tokra_lat_us", "stage=\"merge\"");
  for (std::uint64_t v = 1; v <= 100; ++v) h->Record(v);
  const std::string dump = reg.DumpMetrics();
  EXPECT_NE(dump.find("# TYPE tokra_ops_total counter"), std::string::npos);
  EXPECT_NE(dump.find("tokra_ops_total 7"), std::string::npos);
  EXPECT_NE(dump.find("tokra_depth -3"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE tokra_lat_us summary"), std::string::npos);
  EXPECT_NE(dump.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(dump.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(dump.find("stage=\"merge\""), std::string::npos);
  EXPECT_NE(dump.find("tokra_lat_us_count{stage=\"merge\"} 100"),
            std::string::npos);
  EXPECT_NE(dump.find("tokra_lat_us_max{stage=\"merge\"} 100"),
            std::string::npos);
}

// ------------------------------------------------------ engine integration --

std::vector<Point> TestPoints(std::size_t n) {
  Rng rng(7);
  auto xs = rng.DistinctDoubles(n, 0.0, 1e6);
  auto scores = rng.DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

TEST(EngineTelemetryTest, QueriesPopulateMetricsTracesAndSlowLog) {
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 256, .pool_frames = 32};
  opts.telemetry.slow_query_us = 0;  // every query is "slow": all captured
  auto built = engine::ShardedTopkEngine::Build(TestPoints(2000), opts);
  ASSERT_TRUE(built.ok());
  auto& eng = *built;
  ASSERT_TRUE(eng->telemetry_enabled());
  for (int i = 0; i < 10; ++i) {
    auto r = eng->TopK(i * 1e5, i * 1e5 + 3e5, 8);
    ASSERT_TRUE(r.ok());
  }
  ASSERT_TRUE(eng->Insert(Point{2e6, 5.0}).ok());

  const engine::EngineMetricSet& ms = eng->metric_set();
  ASSERT_NE(ms.query_latency_us, nullptr);
  EXPECT_EQ(ms.query_latency_us->Snapshot().count, 10u);
  EXPECT_EQ(ms.stage_merge_us->Snapshot().count, 10u);
  EXPECT_GE(ms.stage_probe_us->Snapshot().count, 10u);  // >=1 shard/query
  EXPECT_EQ(ms.update_latency_us->Snapshot().count, 1u);

  const std::string dump = eng->DumpMetrics();
  EXPECT_NE(dump.find("tokra_engine_query_latency_us"), std::string::npos);
  EXPECT_NE(dump.find("tokra_engine_stage_us"), std::string::npos);
  EXPECT_NE(dump.find("tokra_engine_queries_total 10"), std::string::npos);
  EXPECT_NE(dump.find("tokra_engine_space_blocks"), std::string::npos);

  // Spans: one query root + >=1 probe + 1 merge per query.
  EXPECT_GE(eng->tracer()->recorded(), 30u);
  EXPECT_TRUE(JsonValidator(eng->tracer()->ExportChromeJson()).Valid());

  EXPECT_EQ(eng->slow_query_log()->captured(), 10u);
  auto entries = eng->slow_query_log()->Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.back().k, 8u);
  EXPECT_FALSE(entries.back().stages.empty());
  EXPECT_FALSE(entries.back().shards.empty());
}

TEST(EngineTelemetryTest, DisabledTelemetryIsFullyInert) {
  engine::EngineOptions opts;
  opts.num_shards = 2;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 256, .pool_frames = 32};
  opts.telemetry.enabled = false;
  auto built = engine::ShardedTopkEngine::Build(TestPoints(500), opts);
  ASSERT_TRUE(built.ok());
  auto& eng = *built;
  EXPECT_FALSE(eng->telemetry_enabled());
  EXPECT_EQ(eng->metrics(), nullptr);
  EXPECT_EQ(eng->tracer(), nullptr);
  EXPECT_EQ(eng->slow_query_log(), nullptr);
  EXPECT_EQ(eng->metric_set().query_latency_us, nullptr);
  auto r = eng->TopK(0, 1e6, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  EXPECT_TRUE(eng->DumpMetrics().empty());
}

}  // namespace
}  // namespace tokra::obs
