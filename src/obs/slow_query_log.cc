#include "obs/slow_query_log.h"

namespace tokra::obs {

std::string SlowQueryEntry::ToString() const {
  std::string out = "#" + std::to_string(seq) + " t+" +
                    std::to_string(start_us) + "us total=" +
                    std::to_string(total_us) + "us range=[" +
                    std::to_string(x1) + "," + std::to_string(x2) +
                    "] k=" + std::to_string(k) +
                    " results=" + std::to_string(results);
  if (!stages.empty()) {
    out += "\n  stages:";
    for (const Stage& s : stages) {
      out += " ";
      out += s.name;
      out += "=" + std::to_string(s.us) + "us";
    }
  }
  for (const ShardWork& w : shards) {
    out += "\n  shard " + std::to_string(w.shard) + ": results=" +
           std::to_string(w.part_results) + " " + w.io.ToString();
  }
  return out;
}

void SlowQueryLog::Capture(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> g(mu_);
  entry.seq = ++captured_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<SlowQueryEntry> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t SlowQueryLog::captured() const {
  std::lock_guard<std::mutex> g(mu_);
  return captured_;
}

std::string SlowQueryLog::Dump() const {
  const std::vector<SlowQueryEntry> entries = Entries();
  std::string out = "slow queries (threshold " +
                    std::to_string(threshold_us_) + "us, " +
                    std::to_string(entries.size()) + " retained of " +
                    std::to_string(captured()) + " captured):\n";
  for (const SlowQueryEntry& e : entries) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace tokra::obs
