// E5 — Lemma 6: the (f,l)-structure queries and updates in O(lg_B(fl)) I/Os
// with rank approximation within c2.

#include <set>

#include "bench/common.h"
#include "flgroup/fl_group.h"
#include "util/bits.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e5_flgroup");
  std::printf("# E5: (f,l)-group structure costs and approximation\n");
  Header("vs (f, l) at B=256",
         {"f", "l", "lg_B(fl)", "query I/Os (cold avg)",
          "update I/Os (amortized)", "max rank/k"});
  for (auto [f, l] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {4, 64}, {8, 256}, {16, 1024}, {32, 2048}}) {
    em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 32});
    flgroup::FlGroup fg = flgroup::FlGroup::Create(&pager, {.f = f, .l = l});
    Rng rng(7);
    std::set<double> used;
    std::vector<std::pair<std::uint32_t, double>> live;
    // Fill to ~75%.
    for (std::uint32_t i = 0; i < f; ++i) {
      for (std::uint32_t j = 0; j < l * 3 / 4; ++j) {
        double v;
        do {
          v = rng.UniformDouble(0, 1);
        } while (!used.insert(v).second);
        Must(fg.Insert(i, v));
        live.emplace_back(i, v);
      }
    }
    // Query cost + quality.
    std::uint64_t q_total = 0;
    double worst = 0;
    const int probes = 30;
    for (int p = 0; p < probes; ++p) {
      std::uint32_t a1 = static_cast<std::uint32_t>(rng.Uniform(f));
      std::uint32_t a2 =
          a1 + static_cast<std::uint32_t>(rng.Uniform(f - a1));
      std::uint64_t total = fg.SizeInRange(a1, a2);
      std::uint64_t k = 1 + rng.Uniform(total);
      double value = 0;
      bool neg = false;
      q_total += ColdIos(&pager, [&] {
        auto res = fg.SelectApprox(a1, a2, k).value();
        value = res.value;
        neg = res.neg_inf;
      });
      // True rank via the live list.
      std::uint64_t rank = 0;
      if (neg) {
        rank = total;
      } else {
        for (auto& [si, v] : live) {
          if (si >= a1 && si <= a2 && v >= value) ++rank;
        }
      }
      worst = std::max(worst, static_cast<double>(rank) / k);
    }
    // Update cost.
    std::uint64_t u_total = BatchIos(&pager, [&] {
      for (int r = 0; r < 100; ++r) {
        auto [si, v] = live[rng.Uniform(live.size())];
        Must(fg.Delete(si, v));
        Must(fg.Insert(si, v));
      }
    });
    Row({U(f), U(l), U(LogB(256, static_cast<std::uint64_t>(f) * l)),
         D(static_cast<double>(q_total) / probes),
         D(static_cast<double>(u_total) / 200), D(worst)});
  }
  std::printf("\nShape check: costs track lg_B(fl) (a small constant here); "
              "ratios < c2 = 8.\n");
  return 0;
}
