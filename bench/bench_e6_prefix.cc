// E6 — Lemma 8: after one block-stream load, every (set, local rank) ->
// global rank lookup inside the prefix is free; maintenance is O(lg_B(fl)).

#include <set>

#include "bench/common.h"
#include "flgroup/fl_group.h"
#include "flgroup/prefix_set.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e6_prefix");
  std::printf("# E6: Lemma 8 prefix set — O(1)-block batched rank lookups\n");
  Header("prefix footprint vs (f, l) at B=256",
         {"f", "l", "p_cap = sqrt(B) lg_B(fl)", "prefix words",
          "blocks to load", "ranks served per load"});
  for (auto [f, l] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {4, 64}, {8, 256}, {16, 1024}, {32, 4096}}) {
    std::uint64_t fl = static_cast<std::uint64_t>(f) * l;
    std::uint32_t p_cap = flgroup::PrefixSet::PrefixCap(256, fl);
    std::uint64_t words = flgroup::PrefixSet::WordCount(f, p_cap);
    std::uint64_t blocks = CeilDiv(words, 256);
    Row({U(f), U(l), U(p_cap), U(words), U(blocks),
         U(static_cast<std::uint64_t>(f) * p_cap)});
  }

  Header("measured lookup vs tree-based lookup (f=16, l=1024, B=256)",
         {"method", "I/Os per batch of f*p_cap rank lookups"});
  {
    em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 32});
    flgroup::FlGroup fg =
        flgroup::FlGroup::Create(&pager, {.f = 16, .l = 1024});
    Rng rng(8);
    std::set<double> used;
    for (std::uint32_t i = 0; i < 16; ++i) {
      for (int j = 0; j < 600; ++j) {
        double v;
        do {
          v = rng.UniformDouble(0, 1);
        } while (!used.insert(v).second);
        Must(fg.Insert(i, v));
      }
    }
    // The prefix path: one query loads the blocks; every pivot repair that
    // stays inside the prefix is free. We proxy-measure with SelectApprox,
    // whose sketch+prefix read is the same O(1) block stream.
    std::uint64_t ios = ColdIos(&pager, [&] {
      fg.SelectApprox(0, 15, 3).value();
    });
    Row({"sketch+prefix block stream (Lemma 8 path)", U(ios)});
    // Tree-based alternative: one O(lg_B l) descent per rank lookup.
    std::uint64_t tree_ios = ColdIos(&pager, [&] {
      for (int r = 1; r <= 16; ++r) fg.MinOfSet(r % 16).value();
    });
    Row({"per-lookup B-tree descents (16 lookups only)", U(tree_ios)});
  }
  std::printf("\nShape check: the Lemma 8 path serves f*p_cap lookups for a "
              "constant block load; the tree path pays lg_B per lookup.\n");
  return 0;
}
