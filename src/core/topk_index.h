// The Theorem 1 structure: dynamic top-k range reporting in external memory.
//
//   space O(n/B); query O(lg n + k/B) I/Os; updates O(lg_B n) amortized.
//
// (The paper claims query O(lg_B n + k/B); our reduction reuses the Lemma 1
// structure for 3-sided reporting instead of a bootstrapped ASV tree, which
// costs O(lg n + k/B) — identical k/B term, base-2 instead of base-B
// logarithm in the additive term. The *update* bound, the paper's headline
// improvement over [14], is reproduced exactly. See DESIGN.md.)
//
// Composition per Section 1.2:
//   * k >= B lg n            -> the Lemma 1 pilot PST answers directly
//                               (its O(lg n + k/B) = O(k/B) here);
//   * k <  B lg n, lg n <= B^(1/6) -> ST12 selector provides a k-threshold
//                               (its update cost is O(lg_B n) in this regime);
//   * k <  B lg n, B < lg^6 n -> the Lemma 4 structure provides the
//                               threshold (k < B lg n < lg^7 n = polylg n);
//   then 3-sided reporting above the threshold + an O(k'/B) selection.
//
// TopkIndex maintains all components under one update path and exposes the
// dispatch for experiment E9. A retry loop doubles the threshold rank if the
// approximate selection under-delivers (robustness net for the documented
// constant-factor relaxations).

#ifndef TOKRA_CORE_TOPK_INDEX_H_
#define TOKRA_CORE_TOPK_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "em/pager.h"
#include "lemma4/structure.h"
#include "pilot/pilot_pst.h"
#include "st12/selector.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::core {

/// Which component answered a query (experiment E9).
enum class QueryPath {
  kPilotDirect,     ///< k >= B lg n: Lemma 1 structure alone
  kSt12Threshold,   ///< threshold from the ST12 selector
  kLemma4Threshold  ///< threshold from the Lemma 4 structure
};

struct TopkQueryStats {
  QueryPath path = QueryPath::kPilotDirect;
  std::uint32_t threshold_retries = 0;
  std::uint64_t reported_candidates = 0;
};

class TopkIndex {
 public:
  struct Options {
    /// Force a selector for benches; kAuto applies the Section 1.2 rule.
    enum class Selector { kAuto, kSt12, kLemma4 } selector = Selector::kAuto;
    /// Parameters forwarded to the Lemma 4 structure (0 = derive).
    lemma4::Lemma4Selector::Params lemma4_params;
  };

  /// Builds the index over the initial point set (distinct x, distinct
  /// scores — the paper's standard assumption, enforced here).
  static StatusOr<std::unique_ptr<TopkIndex>> Build(
      em::Pager* pager, std::vector<Point> points, Options options);
  static StatusOr<std::unique_ptr<TopkIndex>> Build(
      em::Pager* pager, std::vector<Point> points) {
    return Build(pager, std::move(points), Options());
  }

  /// Reopens the index recorded by the last Checkpoint() on `pager` (which
  /// must come from em::Pager::Open): no rebuild, O(1) I/Os.
  static StatusOr<std::unique_ptr<TopkIndex>> Open(em::Pager* pager);

  /// Persists the index through the pager's superblock: flushes every dirty
  /// block and records this index's meta block as root 0, followed by
  /// `extra_roots` (caller-defined words, e.g. shard metadata). After a
  /// restart, Open() on a reopened pager restores the exact structure.
  Status Checkpoint(std::span<const std::uint64_t> extra_roots = {});

  std::uint64_t size() const { return pilot_->size(); }
  QueryPath SelectorKind() const {
    return use_lemma4_ ? QueryPath::kLemma4Threshold
                       : QueryPath::kSt12Threshold;
  }

  /// Inserts p. O(lg_B n) I/Os amortized.
  Status Insert(const Point& p);

  /// Deletes p (x and score must match). O(lg_B n) I/Os amortized.
  Status Delete(const Point& p);

  /// The k highest-scored points with x in [x1, x2], score-descending; all
  /// of S ∩ [x1,x2] if it has fewer than k points.
  StatusOr<std::vector<Point>> TopK(double x1, double x2, std::uint64_t k,
                                    TopkQueryStats* stats = nullptr) const;

  /// Frees every block.
  void DestroyAll();

  /// Validates every component. O(n).
  void CheckInvariants() const;

 private:
  TopkIndex(em::Pager* pager, Options options) : pager_(pager),
                                                 options_(options) {}

  /// k at or above this goes straight to the pilot PST (B lg n rule).
  std::uint64_t PilotCutoff() const;

  /// (Re)writes the meta block linking the component structures.
  void WriteMeta();

  em::Pager* pager_;
  Options options_;
  em::BlockId meta_ = em::kNullBlock;
  bool use_lemma4_ = false;
  std::unique_ptr<pilot::PilotPst> pilot_;
  std::unique_ptr<st12::ShengTaoSelector> st12_;
  std::unique_ptr<lemma4::Lemma4Selector> lemma4_;
};

}  // namespace tokra::core

#endif  // TOKRA_CORE_TOPK_INDEX_H_
