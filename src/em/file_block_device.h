// Durable file backend of the block device interface.

#ifndef TOKRA_EM_FILE_BLOCK_DEVICE_H_
#define TOKRA_EM_FILE_BLOCK_DEVICE_H_

#include <cstdint>
#include <string>

#include "em/block_device.h"

namespace tokra::em {

/// pread/pwrite-backed block device on a regular file.
///
/// Block `id` occupies bytes [id * Bb, (id+1) * Bb) of the file, where
/// Bb = block_words * sizeof(word_t), so the on-disk image is position-
/// independent and a workload replayed against MemBlockDevice produces a
/// word-identical layout. Growth is ftruncate — sparse and free, matching
/// the model's zero-cost formatting. Runs are fused into single syscalls.
///
/// Sync() is fsync when `durable_sync` is set, else a no-op (data still
/// reaches the file through the OS page cache on clean process exit).
///
/// Reads and writes use explicit offsets on one fd, so concurrent access to
/// *distinct* blocks is safe; callers serialize per-block access (the buffer
/// pool already does).
///
/// UringBlockDevice subclasses this to reuse the file lifecycle (open,
/// growth, fsync) and the synchronous single-transfer path, overriding only
/// the batch entry points with ring submission.
class FileBlockDevice : public BlockDevice {
 public:
  struct FileOptions {
    std::string path;
    bool truncate = true;       ///< discard any existing contents
    bool durable_sync = false;  ///< fsync on Sync()
    bool read_only = false;     ///< O_RDONLY open; every write CHECK-fails
  };

  /// Opens (creating if needed) the backing file. An open/stat failure
  /// does not abort: it yields a sticky-failed zero-block device (see
  /// BlockDevice::io_status()), which Pager::Open reports as kIoError. A
  /// size that is not a whole number of blocks is floored; the pager's
  /// superblock validation turns the mismatch into a proper error.
  FileBlockDevice(std::uint32_t block_words, FileOptions options);
  ~FileBlockDevice() override;

  BlockId NumBlocks() const override {
    return num_blocks_.load(std::memory_order_acquire);
  }
  void EnsureCapacity(BlockId blocks) override;
  void Sync() override;
  void DropOsCache() override;

  const std::string& path() const { return path_; }

  // Shared read views: positional pread on one fd is naturally thread-safe,
  // so any healthy file device can serve epoch readers concurrently.
  bool ViewSupportsReads() const override { return fd_ >= 0; }
  bool ViewRead(BlockId id, word_t* dst) override;
  BlockId ViewNumBlocks() const override { return NumBlocks(); }

 protected:
  void DoRead(BlockId id, word_t* dst) override;
  void DoWrite(BlockId id, const word_t* src) override;
  void DoReadRun(BlockId first, std::uint32_t count, word_t* dst) override;
  void DoWriteRun(BlockId first, std::uint32_t count,
                  const word_t* src) override;

  std::uint64_t BlockBytes() const {
    return std::uint64_t{block_words()} * sizeof(word_t);
  }
  int fd() const { return fd_; }
  bool read_only() const { return read_only_; }

 private:
  void PreadFull(std::uint64_t offset, void* buf, std::size_t len);
  void PwriteFull(std::uint64_t offset, const void* buf, std::size_t len);

  std::string path_;
  int fd_ = -1;
  bool durable_sync_ = false;
  bool read_only_ = false;
  // Atomic only for the benefit of read views on other threads; all
  // mutation stays on the owner's thread.
  std::atomic<BlockId> num_blocks_{0};
};

}  // namespace tokra::em

#endif  // TOKRA_EM_FILE_BLOCK_DEVICE_H_
