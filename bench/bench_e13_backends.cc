// E13 — storage backends and the async batch pipeline:
//   (a) the simulated I/O counts are backend- and queue-depth-independent
//       (counting lives in the BlockDevice base class, so the EM-model cost
//       of a workload is a property of the access sequence, not the medium
//       or its scheduling);
//   (b) wall-clock cost of cold- and warm-cache queries across a backend x
//       batch-depth matrix: mem, file (sync pread), io_uring at queue
//       depths 1/8/32 (plus registered buffers/fixed file), and mmap —
//       the real-hardware payoff of batch submission on cold reads and of
//       zero-copy borrowed reads on warm ones; every backend's results are
//       checked byte-identical;
//   (c) checkpoint + reopen round trip on the file backend;
//   (d) serial vs parallel shard checkpoints on the sharded engine;
//   (e) read-serving throughput of a read-only engine snapshot
//       (OpenSnapshot, mmap zero-copy) under N concurrent reader threads.

#include <unistd.h>

#include <array>
#include <bit>
#include <filesystem>
#include <thread>

#include "bench/common.h"
#include "core/topk_index.h"
#include "em/pager.h"
#include "engine/sharded_engine.h"

using namespace tokra;
using namespace tokra::bench;

namespace {

constexpr std::size_t kN = 1u << 16;
constexpr int kQueries = 128;
// Wall-clock phases run kReps times and report the fastest: the phases are
// tens of milliseconds, where scheduler noise would otherwise drown the
// syscall-count savings being measured.
constexpr int kReps = 3;

struct BackendCfg {
  const char* name;
  em::Backend backend;
  std::uint32_t queue_depth;
  bool register_buffers = false;
};

struct RunResult {
  em::IoStats build, cold, warm;
  double cold_us = 0, warm_us = 0;
  std::uint64_t fingerprint = 0;  ///< order-sensitive hash of all results
  // Per-query wall-time distributions (separate recording pass, so the
  // best-of timed loops above stay free of per-query clock reads).
  obs::HistogramSnapshot cold_lat, warm_lat;
};

/// Order-sensitively mixes one query's result list into `h`: byte-identical
/// results across backends are part of the claim, not just equal counts.
void MixResults(std::uint64_t* h, const std::vector<Point>& pts) {
  auto mix = [&](std::uint64_t v) {
    *h ^= v + 0x9E3779B97F4A7C15ULL + (*h << 6) + (*h >> 2);
  };
  mix(pts.size());
  for (const Point& p : pts) {
    mix(std::bit_cast<std::uint64_t>(p.x));
    mix(std::bit_cast<std::uint64_t>(p.score));
  }
}

RunResult RunWorkload(const em::EmOptions& opts) {
  RunResult res;
  em::Pager pager(opts);
  Rng rng(13);
  auto points = RandomPoints(&rng, kN);
  em::IoStats start = pager.stats();
  auto built = core::TopkIndex::Build(&pager, std::move(points));
  TOKRA_CHECK(built.ok());
  auto& idx = *built;
  pager.FlushAll();
  res.build = pager.stats() - start;

  // The same deterministic query mix, cold (cache dropped per query) then
  // warm (shared pool across queries). Large k drives the k/B term, which
  // is exactly what batch submission overlaps.
  std::vector<std::array<double, 2>> ranges;
  std::vector<std::uint64_t> ks;
  for (int i = 0; i < kQueries; ++i) {
    double a = rng.UniformDouble(0, 1e6), b = rng.UniformDouble(0, 1e6);
    ranges.push_back({std::min(a, b), std::max(a, b)});
    ks.push_back(1 + rng.Uniform(4096));
  }
  // Untimed pass: fingerprint every query's full result list, so the
  // cross-backend assertion covers the bytes returned, not just the I/O
  // counts. (Results are state-independent, so hashing outside the timed
  // loops keeps the timings pure.)
  for (int i = 0; i < kQueries; ++i) {
    auto r = idx->TopK(ranges[i][0], ranges[i][1], ks[i]);
    Must(r.status());
    MixResults(&res.fingerprint, *r);
  }
  // Cold means cold: drop the buffer pool AND the OS page cache, so a
  // file-backed read is a real device transfer — the cost the EM model
  // charges for, and the latency that batch submission overlaps.
  em::IoStats before = pager.stats();
  res.cold_us = WallMicros([&] {
    for (int i = 0; i < kQueries; ++i) {
      pager.DropCache();
      pager.device()->DropOsCache();
      Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
    }
  });
  res.cold = pager.stats() - before;
  for (int rep = 1; rep < kReps; ++rep) {
    res.cold_us = std::min(res.cold_us, WallMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        pager.DropCache();
        pager.device()->DropOsCache();
        Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
      }
    }));
  }
  before = pager.stats();
  res.warm_us = WallMicros([&] {
    for (int i = 0; i < kQueries; ++i) {
      Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
    }
  });
  res.warm = pager.stats() - before;
  for (int rep = 1; rep < kReps; ++rep) {
    res.warm_us = std::min(res.warm_us, WallMicros([&] {
      for (int i = 0; i < kQueries; ++i) {
        Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
      }
    }));
  }
  // Latency-distribution passes: per-query timing is kept out of the
  // best-of aggregate loops above, so those numbers stay comparable with
  // earlier PRs; the tail percentiles come from one dedicated pass each.
  {
    obs::Histogram cold_h;
    for (int i = 0; i < kQueries; ++i) {
      pager.DropCache();
      pager.device()->DropOsCache();
      obs::ScopedTimer t(&cold_h);
      Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
    }
    res.cold_lat = cold_h.Snapshot();
    obs::Histogram warm_h;
    for (int i = 0; i < kQueries; ++i) {
      obs::ScopedTimer t(&warm_h);
      Must(idx->TopK(ranges[i][0], ranges[i][1], ks[i]).status());
    }
    res.warm_lat = warm_h.Snapshot();
  }
  return res;
}

}  // namespace

int main() {
  InitJson("e13");
  std::printf("# E13: storage backends x batch depth — mem, file, io_uring\n");

  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("tokra-e13-" + std::to_string(::getpid()));
  fs::create_directories(dir);

  const std::vector<BackendCfg> cfgs = {
      {"mem", em::Backend::kMem, 1},
      {"file-sync", em::Backend::kFile, 1},
      {"uring-qd1", em::Backend::kUring, 1},
      {"uring-qd8", em::Backend::kUring, 8},
      {"uring-qd32", em::Backend::kUring, 32},
      {"uring-qd8-reg", em::Backend::kUring, 8, /*register_buffers=*/true},
      {"mmap", em::Backend::kMmap, 1},
  };
  std::vector<RunResult> runs;
  for (const BackendCfg& cfg : cfgs) {
    em::EmOptions opts{.block_words = 256, .pool_frames = 64};
    opts.backend = cfg.backend;
    opts.io_queue_depth = cfg.queue_depth;
    opts.io_register_buffers = cfg.register_buffers;
    if (cfg.backend != em::Backend::kMem) {
      opts.path = (dir / (std::string("e13-") + cfg.name + ".blk")).string();
    }
    runs.push_back(RunWorkload(opts));
  }

  Header("E13a: I/O parity (n=2^16, B=256, " + std::to_string(kQueries) +
             " queries)",
         {"backend", "build I/Os", "cold query I/Os", "warm query I/Os",
          "warm borrows"});
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    Row({cfgs[i].name, U(runs[i].build.TotalIos()), U(runs[i].cold.TotalIos()),
         U(runs[i].warm.TotalIos()), U(runs[i].warm.borrows)});
    // The logical cost is scheduling-independent by construction — borrowed
    // zero-copy reads included — and so are the returned bytes.
    TOKRA_CHECK(runs[i].build.TotalIos() == runs[0].build.TotalIos());
    TOKRA_CHECK(runs[i].cold.TotalIos() == runs[0].cold.TotalIos());
    TOKRA_CHECK(runs[i].warm.TotalIos() == runs[0].warm.TotalIos());
    TOKRA_CHECK(runs[i].fingerprint == runs[0].fingerprint);
  }

  Header("E13b: wall time per query (us, avg of " + std::to_string(kQueries) +
             ", best of " + std::to_string(kReps) + " passes)",
         {"backend", "cold cache", "warm cache", "cold p50/p95/p99",
          "warm p50/p95/p99"});
  auto pcts = [](const obs::HistogramSnapshot& s) {
    return D(s.Percentile(0.50), 0) + "/" + D(s.Percentile(0.95), 0) + "/" +
           D(s.Percentile(0.99), 0);
  };
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    Row({cfgs[i].name, D(runs[i].cold_us / kQueries),
         D(runs[i].warm_us / kQueries), pcts(runs[i].cold_lat),
         pcts(runs[i].warm_lat)});
    RecordLatency(std::string(cfgs[i].name) + " cold", runs[i].cold_lat);
    RecordLatency(std::string(cfgs[i].name) + " warm", runs[i].warm_lat);
  }
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    RecordIoStats(std::string(cfgs[i].name) + " build", runs[i].build);
    RecordIoStats(std::string(cfgs[i].name) + " cold queries", runs[i].cold);
    RecordIoStats(std::string(cfgs[i].name) + " warm queries", runs[i].warm);
  }

  // E13c: checkpoint + reopen on the file backend; answers must match.
  {
    em::EmOptions file_opts{.block_words = 256, .pool_frames = 64};
    file_opts.backend = em::Backend::kFile;
    file_opts.path = (dir / "e13-ckpt.blk").string();
    em::Pager pager(file_opts);
    Rng rng(14);
    auto built = core::TopkIndex::Build(&pager, RandomPoints(&rng, kN));
    TOKRA_CHECK(built.ok());
    auto probe = (*built)->TopK(1e5, 9e5, 100);
    Must(probe.status());
    em::IoStats before = pager.stats();
    double ckpt_us = WallMicros([&] { Must((*built)->Checkpoint()); });
    em::IoStats ckpt_io = pager.stats() - before;

    auto reopened = em::Pager::Open(file_opts);
    Must(reopened.status());
    StatusOr<std::unique_ptr<core::TopkIndex>> opened =
        Status::Internal("unset");
    double open_us =
        WallMicros([&] { opened = core::TopkIndex::Open(reopened->get()); });
    Must(opened.status());
    auto probe2 = (*opened)->TopK(1e5, 9e5, 100);
    Must(probe2.status());
    TOKRA_CHECK(*probe == *probe2);

    Header("E13c: checkpoint / reopen (n=2^16)",
           {"checkpoint I/Os", "checkpoint ms", "open ms"});
    Row({U(ckpt_io.TotalIos()), D(ckpt_us / 1000.0), D(open_us / 1000.0)});
    RecordIoStats("checkpoint", ckpt_io);
  }

  // E13d: serial vs parallel shard checkpoints. Same build + same dirty
  // state on either side; only the checkpoint scheduling differs. Large
  // per-shard pools keep the build's dirty blocks in memory (so the first
  // checkpoint has a real flush volume) and durable_sync makes each shard
  // pay its two real fsync barriers — the costs that overlap across the
  // thread pool.
  {
    Header("E13d: engine checkpoint latency, 8 shards, durable_sync (ms)",
           {"mode", "first checkpoint", "incremental checkpoint"});
    Rng rng(15);
    auto points = RandomPoints(&rng, kN);
    auto extra = RandomPoints(&rng, 8192, 2e6);
    for (bool parallel : {false, true}) {
      fs::path edir = dir / (parallel ? "eng-par" : "eng-ser");
      fs::create_directories(edir);
      engine::EngineOptions opts;
      opts.num_shards = 8;
      opts.threads = 8;
      opts.em.block_words = 256;
      opts.em.pool_frames = 1024;
      opts.em.durable_sync = true;
      opts.storage_dir = edir.string();
      opts.parallel_checkpoint = parallel;
      auto built = engine::ShardedTopkEngine::Build(points, opts);
      TOKRA_CHECK(built.ok());
      // First checkpoint: the full structure is dirty.
      double first_ms =
          WallMicros([&] { Must((*built)->Checkpoint()); }) / 1000.0;
      // Incremental: dirty a fraction, checkpoint again.
      for (const Point& p : extra) Must((*built)->Insert(p));
      double inc_ms =
          WallMicros([&] { Must((*built)->Checkpoint()); }) / 1000.0;
      Row({parallel ? "parallel" : "serial", D(first_ms), D(inc_ms)});
    }
  }

  // E13e: snapshot read-serving throughput. A checkpointed engine directory
  // is reopened with OpenSnapshot (read-only mmap shards, zero-copy borrow
  // reads, per-replica locks instead of per-shard ones) and hammered by N
  // reader threads; throughput should scale with N.
  {
    fs::path sdir = dir / "snap";
    fs::create_directories(sdir);
    engine::EngineOptions opts;
    opts.num_shards = 8;
    opts.threads = 8;
    opts.em.block_words = 256;
    opts.em.pool_frames = 64;
    opts.storage_dir = sdir.string();
    Rng rng(16);
    auto points = RandomPoints(&rng, kN);
    {
      auto built = engine::ShardedTopkEngine::Build(points, opts);
      TOKRA_CHECK(built.ok());
      Must((*built)->Checkpoint());
    }  // close the live engine: the snapshot serves the files alone

    auto snap = engine::ShardedTopkEngine::OpenSnapshot(opts);
    Must(snap.status());
    TOKRA_CHECK((*snap)->size() == kN);

    // Serving-shaped queries: narrow ranges (~2% of the domain), so most
    // hit one or two shards — the regime where per-replica concurrency,
    // not per-query fan-out, is what scales. On a multi-core host the
    // kqueries/s column should grow with the thread count; a single-core
    // host correctly shows it flat (but never collapsing).
    constexpr int kPerThread = 512;
    std::vector<std::array<double, 2>> sranges;
    std::vector<std::uint64_t> sks;
    for (int i = 0; i < kPerThread; ++i) {
      double a = rng.UniformDouble(0, 1e6 - 2e4);
      sranges.push_back({a, a + rng.UniformDouble(0, 2e4)});
      sks.push_back(1 + rng.Uniform(256));
    }
    Header("E13e: snapshot serving (8 mmap shards, " +
               std::to_string(kPerThread) + " queries/thread)",
           {"reader threads", "total queries", "wall ms", "kqueries/s"});
    for (int nthreads : {1, 2, 4, 8}) {
      double wall_us = WallMicros([&] {
        std::vector<std::thread> readers;
        readers.reserve(nthreads);
        for (int t = 0; t < nthreads; ++t) {
          readers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
              int q = (i + t * 131) % kPerThread;  // decorrelate threads
              Must((*snap)
                       ->TopK(sranges[q][0], sranges[q][1], sks[q])
                       .status());
            }
          });
        }
        for (std::thread& th : readers) th.join();
      });
      const double total = static_cast<double>(nthreads) * kPerThread;
      Row({U(nthreads), U(static_cast<std::uint64_t>(total)),
           D(wall_us / 1000.0), D(total / (wall_us / 1e3))});
    }
    RecordIoStats("snapshot serving", (*snap)->AggregatedIoStats());
  }

  // E13f: durability modes. The same batched insert stream under
  // checkpoint-only durability, group-committed WAL (page-cache
  // durability: survives SIGKILL), and WAL + fsync-per-batch (power-loss
  // durability) — update throughput, log/barrier counts, and the recovery
  // cost including tail replay. The WAL modes CRASH after the last
  // acknowledged batch (no final checkpoint) and still recover every
  // update; checkpoint-only cannot survive that crash at all (recovery
  // after in-place inter-checkpoint writes is unguaranteed without the
  // log), so its leg must checkpoint before shutting down — which is
  // precisely the window the WAL removes.
  {
    Header("E13f: durability modes (4 shards, " + std::to_string(4096) +
               " batched updates, crash, recover)",
           {"mode", "kupdates/s", "wal appends", "fsyncs", "recover ms",
            "replayed records", "recovered updates"});
    Rng rng(17);
    auto points = RandomPoints(&rng, 1u << 14);
    auto extra = RandomPoints(&rng, 4096, 1e6);  // distinct domain half
    for (Point& p : extra) {
      p.x += 2e6;
      p.score += 2.0;
    }
    struct ModeCfg {
      const char* name;
      engine::Durability durability;
    };
    for (const ModeCfg& mode :
         {ModeCfg{"ckpt-only (clean shutdown)",
                  engine::Durability::kCheckpoint},
          ModeCfg{"wal (SIGKILL)", engine::Durability::kWal},
          ModeCfg{"wal+fsync (SIGKILL)",
                  engine::Durability::kWalFsyncEveryBatch}}) {
      fs::path mdir = dir / (std::string("dur-") + mode.name);
      fs::create_directories(mdir);
      engine::EngineOptions opts;
      opts.num_shards = 4;
      opts.threads = 4;
      opts.em.block_words = 256;
      opts.em.pool_frames = 64;
      opts.storage_dir = mdir.string();
      opts.durability = mode.durability;
      double apply_us = 0;
      em::IoStats update_io;
      {
        auto built = engine::ShardedTopkEngine::Build(points, opts);
        TOKRA_CHECK(built.ok());
        // WAL modes checkpoint inside Build; checkpoint-only needs one so
        // its recovery has a base at all.
        if (mode.durability == engine::Durability::kCheckpoint) {
          Must((*built)->Checkpoint());
        }
        em::IoStats before = (*built)->AggregatedIoStats();
        apply_us = WallMicros([&] {
          std::vector<engine::Request> batch;
          std::vector<engine::Response> out;
          for (std::size_t i = 0; i < extra.size(); i += 256) {
            batch.clear();
            for (std::size_t j = i; j < std::min(i + 256, extra.size()); ++j) {
              batch.push_back(engine::Request::MakeInsert(extra[j]));
            }
            (*built)->ExecuteBatch(batch, &out);
            for (const auto& r : out) Must(r.status);
          }
        });
        update_io = (*built)->AggregatedIoStats() - before;
        // Checkpoint-only pays for its durability with a mandatory clean
        // shutdown; the WAL modes just die.
        if (!opts.WalEnabled()) Must((*built)->Checkpoint());
      }  // WAL modes: destroyed without a final checkpoint — the crash

      engine::RecoveryReport report;
      StatusOr<std::unique_ptr<engine::ShardedTopkEngine>> recovered =
          Status::Internal("unset");
      double rec_us = WallMicros(
          [&] { recovered = engine::ShardedTopkEngine::Recover(opts, &report); });
      Must(recovered.status());
      const std::uint64_t recovered_updates =
          (*recovered)->size() - points.size();
      TOKRA_CHECK(recovered_updates == extra.size());
      Row({mode.name,
           D(static_cast<double>(extra.size()) / (apply_us / 1e3)),
           U(update_io.wal_appends), U(update_io.fsyncs),
           D(rec_us / 1000.0), U(report.replayed_records),
           U(recovered_updates)});
      RecordIoStats(std::string("durability ") + mode.name + " updates",
                    update_io);
    }
  }

  fs::remove_all(dir);
  std::printf(
      "\nShape check: E13a rows identical (incl. fingerprints); E13b uring "
      "qd>=8 fastest cold, mmap fastest warm; E13d parallel beats serial; "
      "E13e kqueries/s grows with reader threads; E13f the wal modes "
      "survive a SIGKILL with zero lost updates (checkpoint-only needs a "
      "clean shutdown) at a modest append cost.\n");
  return 0;
}
