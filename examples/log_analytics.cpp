// Streaming log analytics over a sliding window: points are events with
// x = timestamp and score = anomaly severity. A monitoring dashboard asks
// "the K most severe events in [t1, t2]" while the window slides — old
// events expire (deletes) as new ones arrive (inserts), a purely dynamic
// workload where the paper's O(lg_B n) amortized update cost is the
// difference between keeping up with the stream or not.

#include <cstdio>
#include <deque>

#include "core/topk_index.h"
#include "em/pager.h"
#include "util/random.h"

int main() {
  using namespace tokra;
  em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 32});
  Rng rng(2026);

  const std::size_t window = 20000;  // events kept live
  const std::size_t stream_len = 60000;

  // Severities: heavy-tailed (rare spikes), made distinct with a counter
  // epsilon.
  auto severity = [&](std::uint64_t i) {
    double s = rng.UniformDouble(0, 1);
    s = s * s * s * 100.0;  // cube: long tail
    return s + static_cast<double>(i) * 1e-9;
  };

  std::deque<Point> live;
  std::vector<Point> initial;
  for (std::size_t i = 0; i < window; ++i) {
    Point e{static_cast<double>(i), severity(i)};
    initial.push_back(e);
    live.push_back(e);
  }
  auto built = core::TopkIndex::Build(&pager, initial);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  auto& index = *built;

  em::IoStats stream_start = pager.stats();
  std::uint64_t updates = 0;
  for (std::size_t t = window; t < stream_len; ++t) {
    Point e{static_cast<double>(t), severity(t)};
    index->Insert(e);
    live.push_back(e);
    index->Delete(live.front());
    live.pop_front();
    updates += 2;

    if (t % 10000 == 0) {
      double t2 = static_cast<double>(t);
      auto top = index->TopK(t2 - 5000, t2, 5);
      std::printf("t=%6zu: top severities in last 5000 ticks:", t);
      for (const Point& p : *top) std::printf(" %.2f", p.score);
      std::printf("\n");
    }
  }
  em::IoStats stream_cost = pager.stats() - stream_start;
  std::printf(
      "\nstream done: %llu updates, %.2f I/Os amortized per update "
      "(O(lg_B n) as claimed)\n",
      static_cast<unsigned long long>(updates),
      static_cast<double>(stream_cost.TotalIos()) /
          static_cast<double>(updates));

  // Forensics: severe events across the whole retained window.
  auto worst = index->TopK(0, static_cast<double>(stream_len), 10);
  std::printf("\nall-window 10 most severe events:\n");
  for (const Point& p : *worst) {
    std::printf("  t=%8.0f  severity=%.3f\n", p.x, p.score);
  }
  return 0;
}
