// Shared helpers for the experiment harnesses (E1..E11).
//
// Every experiment measures *I/Os* (the EM model's cost metric) with cold
// caches and deterministic seeds, and prints a markdown table row-for-row
// reproducing the claims recorded in EXPERIMENTS.md.

#ifndef TOKRA_BENCH_COMMON_H_
#define TOKRA_BENCH_COMMON_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "em/pager.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/point.h"
#include "util/random.h"
#include "util/status.h"

namespace tokra::bench {

/// Aborts on error — experiment harnesses have no recovery story.
inline void Must(const Status& s) { TOKRA_CHECK(s.ok()); }

inline std::vector<Point> RandomPoints(Rng* rng, std::size_t n,
                                       double x_hi = 1e6) {
  auto xs = rng->DistinctDoubles(n, 0.0, x_hi);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

/// Cold-cache I/O cost of one operation.
template <typename Fn>
std::uint64_t ColdIos(em::Pager* pager, Fn&& fn) {
  pager->DropCache();
  em::IoStats before = pager->stats();
  fn();
  return (pager->stats() - before).TotalIos();
}

/// Accumulated I/O cost of a batch (no cache drops inside: amortized view).
template <typename Fn>
std::uint64_t BatchIos(em::Pager* pager, Fn&& fn) {
  em::IoStats before = pager->stats();
  fn();
  return (pager->stats() - before).TotalIos();
}

// --------------------------------------------------------------------------
// Machine-readable mirror of the markdown tables.
//
// Call InitJson("e7_candidates") once at the top of main(); every Header/Row
// after that is also recorded and written to BENCH_<name>.json at exit, so
// the perf trajectory can be tracked across PRs without scraping stdout.

namespace detail {

struct JsonTable {
  std::string title;
  std::vector<std::string> cols;
  std::vector<std::vector<std::string>> rows;
};

struct IoRow {
  std::string phase;
  em::IoStats io;
  // Fence-pruning counters for the phase (zero when it ran unpruned or
  // predates pruning) — see EngineQueryStats.
  std::uint64_t shards_pruned = 0;
  std::uint64_t fence_checks = 0;
  std::uint64_t waves = 0;
  // Pager::Space() snapshot at the end of the phase (all zero when the
  // phase didn't record one): file_blocks is the shipping volume a
  // replication bootstrap of this state would move, and the gap to
  // allocated_blocks the compactable high-water mark.
  em::SpaceStats space;
};

struct JsonState {
  bool enabled = false;
  std::string name;
  std::vector<JsonTable> tables;
  std::vector<IoRow> io_rows;
  // Per-phase latency distributions ("latency_us" table) and per-stage
  // breakdowns ("stage_breakdown_us" table), mirrored from obs histograms.
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> lat_rows;
  std::vector<std::pair<std::pair<std::string, std::string>,
                        obs::HistogramSnapshot>>
      stage_rows;
};

inline JsonState& State() {
  static JsonState s;
  return s;
}

inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Emits a cell as a JSON number when it parses fully as a *finite* decimal
/// number, else a string. strtod alone would pass "inf"/"nan"/hex, which are
/// not valid JSON tokens.
inline std::string JsonCell(const std::string& cell) {
  if (!cell.empty() &&
      cell.find_first_not_of("0123456789+-.eE") == std::string::npos) {
    char* end = nullptr;
    double v = std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0' && std::isfinite(v)) return cell;
  }
  return "\"" + JsonEscape(cell) + "\"";
}

inline void WriteJson() {
  JsonState& st = State();
  if (!st.enabled) return;
  std::string path = "BENCH_" + st.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  // The recorded per-phase I/O counters become one more table, so the JSON
  // trajectory tracks block transfers alongside the experiment's own rows.
  std::vector<JsonTable> tables = st.tables;
  if (!st.io_rows.empty()) {
    JsonTable io{"io_stats",
                 {"phase", "reads", "writes", "pool_hits", "pool_misses",
                  "evictions", "prefetched", "borrows", "wal_appends",
                  "fsyncs", "retired_blocks", "total_ios", "shards_pruned",
                  "fence_checks", "waves", "alloc_blocks", "free_blocks",
                  "reserved_blocks", "file_blocks"},
                 {}};
    for (const auto& row : st.io_rows) {
      const em::IoStats& s = row.io;
      io.rows.push_back({row.phase, std::to_string(s.reads),
                         std::to_string(s.writes), std::to_string(s.pool_hits),
                         std::to_string(s.pool_misses),
                         std::to_string(s.evictions),
                         std::to_string(s.prefetched),
                         std::to_string(s.borrows),
                         std::to_string(s.wal_appends),
                         std::to_string(s.fsyncs),
                         std::to_string(s.retired_blocks),
                         std::to_string(s.TotalIos()),
                         std::to_string(row.shards_pruned),
                         std::to_string(row.fence_checks),
                         std::to_string(row.waves),
                         std::to_string(row.space.allocated_blocks),
                         std::to_string(row.space.free_blocks),
                         std::to_string(row.space.reserved_blocks),
                         std::to_string(row.space.file_blocks)});
    }
    tables.push_back(std::move(io));
  }
  // Latency distributions mirrored from obs histograms: exact count/max,
  // log-bucket-interpolated percentiles — the per-PR latency trajectory.
  auto fmt1 = [](double v) {
    char b[32];
    std::snprintf(b, sizeof(b), "%.1f", v);
    return std::string(b);
  };
  auto dist_cells = [&](const obs::HistogramSnapshot& s) {
    return std::vector<std::string>{
        std::to_string(s.count), fmt1(s.Percentile(0.50)),
        fmt1(s.Percentile(0.95)), fmt1(s.Percentile(0.99)),
        std::to_string(s.max)};
  };
  if (!st.lat_rows.empty()) {
    JsonTable lat{"latency_us",
                  {"phase", "count", "p50_us", "p95_us", "p99_us", "max_us"},
                  {}};
    for (const auto& [phase, s] : st.lat_rows) {
      std::vector<std::string> row{phase};
      auto cells = dist_cells(s);
      row.insert(row.end(), cells.begin(), cells.end());
      lat.rows.push_back(std::move(row));
    }
    tables.push_back(std::move(lat));
  }
  if (!st.stage_rows.empty()) {
    JsonTable stg{"stage_breakdown_us",
                  {"phase", "stage", "count", "p50_us", "p95_us", "p99_us",
                   "max_us"},
                  {}};
    for (const auto& [key, s] : st.stage_rows) {
      std::vector<std::string> row{key.first, key.second};
      auto cells = dist_cells(s);
      row.insert(row.end(), cells.begin(), cells.end());
      stg.rows.push_back(std::move(row));
    }
    tables.push_back(std::move(stg));
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"tables\": [",
               JsonEscape(st.name).c_str());
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const JsonTable& tab = tables[t];
    std::fprintf(f, "%s\n    {\n      \"title\": \"%s\",\n      \"columns\": [",
                 t == 0 ? "" : ",", JsonEscape(tab.title).c_str());
    for (std::size_t i = 0; i < tab.cols.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                   JsonEscape(tab.cols[i]).c_str());
    }
    std::fprintf(f, "],\n      \"rows\": [");
    for (std::size_t r = 0; r < tab.rows.size(); ++r) {
      std::fprintf(f, "%s\n        [", r == 0 ? "" : ",");
      for (std::size_t i = 0; i < tab.rows[r].size(); ++i) {
        std::fprintf(f, "%s%s", i == 0 ? "" : ", ",
                     JsonCell(tab.rows[r][i]).c_str());
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "\n      ]\n    }");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace detail

/// Enables the JSON mirror; `name` becomes BENCH_<name>.json (written at
/// process exit, in the working directory).
inline void InitJson(const std::string& name) {
  detail::JsonState& st = detail::State();
  st.enabled = true;
  st.name = name;
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(detail::WriteJson);
  }
}

inline void Header(const std::string& title,
                   const std::vector<std::string>& cols) {
  std::printf("\n### %s\n\n|", title.c_str());
  for (const auto& c : cols) std::printf(" %s |", c.c_str());
  std::printf("\n|");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("---|");
  std::printf("\n");
  detail::JsonState& st = detail::State();
  if (st.enabled) st.tables.push_back({title, cols, {}});
}

inline void Row(const std::vector<std::string>& cells) {
  std::printf("|");
  for (const auto& c : cells) std::printf(" %s |", c.c_str());
  std::printf("\n");
  detail::JsonState& st = detail::State();
  if (st.enabled && !st.tables.empty()) st.tables.back().rows.push_back(cells);
}

/// Records one phase's aggregate I/O counters. Echoed to stdout and written
/// to BENCH_<name>.json as an "io_stats" table, so the perf trajectory
/// tracks block transfers per phase, not just wall time. The trailing
/// arguments are the phase's fence-pruning totals (summed EngineQueryStats);
/// phases that predate pruning or ran with it off just leave them zero.
inline void RecordIoStats(const std::string& phase, const em::IoStats& io,
                          std::uint64_t shards_pruned = 0,
                          std::uint64_t fence_checks = 0,
                          std::uint64_t waves = 0,
                          const em::SpaceStats& space = {}) {
  std::printf("[io] %s: %s total=%llu", phase.c_str(),
              io.ToString().c_str(),  // now covers every counter
              static_cast<unsigned long long>(io.TotalIos()));
  if (shards_pruned != 0 || fence_checks != 0 || waves != 0) {
    std::printf(" pruned=%llu fence_checks=%llu waves=%llu",
                static_cast<unsigned long long>(shards_pruned),
                static_cast<unsigned long long>(fence_checks),
                static_cast<unsigned long long>(waves));
  }
  if (space.file_blocks != 0) {
    std::printf(" alloc_blocks=%llu file_blocks=%llu",
                static_cast<unsigned long long>(space.allocated_blocks),
                static_cast<unsigned long long>(space.file_blocks));
  }
  std::printf("\n");
  detail::JsonState& st = detail::State();
  if (st.enabled) {
    st.io_rows.push_back(
        {phase, io, shards_pruned, fence_checks, waves, space});
  }
}

/// Records one phase's latency distribution. Echoed to stdout and written to
/// BENCH_<name>.json as a "latency_us" table: exact count/max, p50/p95/p99
/// from the histogram's log buckets — tail latency per PR, not just means.
inline void RecordLatency(const std::string& phase,
                          const obs::HistogramSnapshot& s) {
  std::printf(
      "[lat] %s: count=%llu p50=%lluus p95=%lluus p99=%lluus max=%lluus\n",
      phase.c_str(), static_cast<unsigned long long>(s.count),
      static_cast<unsigned long long>(s.Percentile(0.50)),
      static_cast<unsigned long long>(s.Percentile(0.95)),
      static_cast<unsigned long long>(s.Percentile(0.99)),
      static_cast<unsigned long long>(s.max));
  detail::JsonState& st = detail::State();
  if (st.enabled) st.lat_rows.emplace_back(phase, s);
}

/// Records a phase's per-stage latency breakdown (one histogram snapshot per
/// pipeline stage) into the "stage_breakdown_us" table — where inside the
/// query pipeline the time went.
inline void RecordStages(
    const std::string& phase,
    const std::vector<std::pair<std::string, obs::HistogramSnapshot>>&
        stages) {
  for (const auto& [stage, s] : stages) {
    std::printf(
        "[stage] %s/%s: count=%llu p50=%lluus p95=%lluus p99=%lluus "
        "max=%lluus\n",
        phase.c_str(), stage.c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.Percentile(0.50)),
        static_cast<unsigned long long>(s.Percentile(0.95)),
        static_cast<unsigned long long>(s.Percentile(0.99)),
        static_cast<unsigned long long>(s.max));
    detail::JsonState& st = detail::State();
    if (st.enabled) st.stage_rows.emplace_back(std::make_pair(phase, stage), s);
  }
}

/// Wall-clock microseconds of fn() — for experiments comparing real
/// backends, where time is a metric alongside the model's I/O count.
template <typename Fn>
double WallMicros(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

inline std::string D(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}
inline std::string U(std::uint64_t v) { return std::to_string(v); }

}  // namespace tokra::bench

#endif  // TOKRA_BENCH_COMMON_H_
