// Shared helpers for the experiment harnesses (E1..E11).
//
// Every experiment measures *I/Os* (the EM model's cost metric) with cold
// caches and deterministic seeds, and prints a markdown table row-for-row
// reproducing the claims recorded in EXPERIMENTS.md.

#ifndef TOKRA_BENCH_COMMON_H_
#define TOKRA_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "em/pager.h"
#include "util/check.h"
#include "util/point.h"
#include "util/random.h"
#include "util/status.h"

namespace tokra::bench {

/// Aborts on error — experiment harnesses have no recovery story.
inline void Must(const Status& s) { TOKRA_CHECK(s.ok()); }

inline std::vector<Point> RandomPoints(Rng* rng, std::size_t n,
                                       double x_hi = 1e6) {
  auto xs = rng->DistinctDoubles(n, 0.0, x_hi);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

/// Cold-cache I/O cost of one operation.
template <typename Fn>
std::uint64_t ColdIos(em::Pager* pager, Fn&& fn) {
  pager->DropCache();
  em::IoStats before = pager->stats();
  fn();
  return (pager->stats() - before).TotalIos();
}

/// Accumulated I/O cost of a batch (no cache drops inside: amortized view).
template <typename Fn>
std::uint64_t BatchIos(em::Pager* pager, Fn&& fn) {
  em::IoStats before = pager->stats();
  fn();
  return (pager->stats() - before).TotalIos();
}

inline void Header(const std::string& title,
                   const std::vector<std::string>& cols) {
  std::printf("\n### %s\n\n|", title.c_str());
  for (const auto& c : cols) std::printf(" %s |", c.c_str());
  std::printf("\n|");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("---|");
  std::printf("\n");
}

inline void Row(const std::vector<std::string>& cells) {
  std::printf("|");
  for (const auto& c : cells) std::printf(" %s |", c.c_str());
  std::printf("\n");
}

inline std::string D(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}
inline std::string U(std::uint64_t v) { return std::to_string(v); }

}  // namespace tokra::bench

#endif  // TOKRA_BENCH_COMMON_H_
