// E9 — Section 1.2 regime decomposition: which component answers which
// (B, k) combination, and at what cost.

#include "bench/common.h"
#include "core/topk_index.h"
#include "util/bits.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e9_regimes");
  std::printf("# E9: Theorem 1 dispatch across regimes (n=2^16)\n");
  Header("path taken and cost vs (B, k)",
         {"B", "k", "B lg n", "path", "query I/Os", "retries"});
  const std::size_t n = 1u << 16;
  for (std::uint32_t Bw : {64u, 256u, 1024u}) {
    em::Pager pager(em::EmOptions{.block_words = Bw, .pool_frames = 64});
    Rng rng(11);
    auto built = core::TopkIndex::Build(&pager, RandomPoints(&rng, n));
    auto& idx = *built;
    for (std::uint64_t k : {4u, 256u, 4096u, 32768u}) {
      core::TopkQueryStats stats;
      std::uint64_t ios = ColdIos(&pager, [&] {
        idx->TopK(1e5, 9e5, k, &stats).value();
      });
      const char* path = stats.path == core::QueryPath::kPilotDirect
                             ? "pilot-direct"
                             : stats.path == core::QueryPath::kSt12Threshold
                                   ? "st12-threshold"
                                   : "lemma4-threshold";
      Row({U(Bw), U(k), U(static_cast<std::uint64_t>(Bw) * Lg(n)), path,
           U(ios), U(stats.threshold_retries)});
    }
  }
  std::printf("\nShape check: k >= B lg n flips to pilot-direct; small B "
              "(lg n > B^(1/6)) selects the Lemma 4 component, large B the "
              "ST12 component; retries stay 0 almost always.\n");
  return 0;
}
