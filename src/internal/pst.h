// Internal-memory priority search tree (the Section 1.1 pointer-machine
// baseline).
//
// The paper notes that combining a priority search tree [McCreight 85] with
// Frederickson's heap selection yields an O(n)-word structure with O(lg n+k)
// query and O(lg n) update time in internal memory. We realize it as a
// *priority search treap*: a treap whose BST key is x and whose heap
// priority is the score. That is simultaneously a search tree on x and a
// max-heap on score — exactly the two orders a PST maintains — with expected
// O(lg n) update time (randomized balance substitutes for worst-case; see
// DESIGN.md). Top-k queries run heap selection over the x-range subtreap.

#ifndef TOKRA_INTERNAL_PST_H_
#define TOKRA_INTERNAL_PST_H_

#include <cstdint>
#include <vector>

#include "select/select.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::internal {

/// In-memory top-k range reporting structure. Not I/O-aware by design: it is
/// the RAM comparison point for experiment E10.
class TreapPst {
 public:
  TreapPst() = default;

  /// Inserts p. Scores and x-coordinates must be distinct. O(lg n) expected.
  Status Insert(const Point& p);

  /// Deletes the point at x. O(lg n) expected.
  Status Delete(double x);

  std::size_t size() const { return size_; }

  /// All points in [x1, x2] x [y, inf). O(lg n + t) expected.
  void Report3Sided(double x1, double x2, double y,
                    std::vector<Point>* out);

  /// The k highest-scored points in [x1, x2], score-descending.
  /// O(lg n + k lg k) expected; `stats` receives selection counters.
  std::vector<Point> TopK(double x1, double x2, std::size_t k,
                          select::SelectStats* stats = nullptr);

  /// Validates BST + heap orders and subtree sizes. O(n).
  void CheckInvariants() const;

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Node {
    Point p;
    std::uint32_t left = kNil;
    std::uint32_t right = kNil;
    std::uint32_t count = 1;  // subtree size
  };

  std::uint32_t NewNode(const Point& p);
  void FreeNode(std::uint32_t id);
  void Pull(std::uint32_t id);
  // Splits t into (keys <= x, keys > x) when inclusive, else (< x, >= x).
  void Split(std::uint32_t t, double x, bool inclusive, std::uint32_t* lo,
             std::uint32_t* hi);
  std::uint32_t Merge(std::uint32_t a, std::uint32_t b);
  void CheckRec(std::uint32_t id, double lo, double hi, double max_score,
                std::uint32_t* count) const;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t root_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace tokra::internal

#endif  // TOKRA_INTERNAL_PST_H_
