#include "engine/thread_pool.h"

#include <memory>
#include <utility>

namespace tokra::engine {

ThreadPool::ThreadPool(std::uint32_t threads) {
  workers_.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  Task task;
  task.fn = std::move(fn);
  if (wait_us_ != nullptr) task.enqueue_us = obs::NowUs();
  {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::RunTask(Task task) {
  if (wait_us_ != nullptr && task.enqueue_us != 0) {
    wait_us_->Record(obs::NowUs() - task.enqueue_us);
  }
  obs::ScopedTimer run(run_us_);
  task.fn();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_.wait(g, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(std::move(task));
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  // Per-call join state; tasks hold a shared_ptr so concurrent RunAll calls
  // never interfere.
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  };
  auto join = std::make_shared<Join>();
  join->remaining = tasks.size() - 1;
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    Submit([join, task = std::move(tasks[i])] {
      task();
      std::lock_guard<std::mutex> g(join->mu);
      if (--join->remaining == 0) join->cv.notify_one();
    });
  }
  tasks[0]();  // keep the caller productive while the pool drains
  std::unique_lock<std::mutex> g(join->mu);
  join->cv.wait(g, [&] { return join->remaining == 0; });
}

}  // namespace tokra::engine
