// Private record layouts of the pilot PST (Lemma 1 structure).
//
// The structure is a weight-balanced base tree T whose internal nodes each
// carry a secondary binary tree T(u) over their children; concatenating the
// T(u)'s yields the conceptual big tree "script-T" of Section 2. We
// materialize each T(u) as a fixed-capacity array of TNodeRec records stored
// in pager blocks; the array doubles as the paper's "representative blocks"
// because every record carries its pilot set's representative and size, so
// one O(1)-block read exposes all representatives of T(u).

#ifndef TOKRA_PILOT_NODE_H_
#define TOKRA_PILOT_NODE_H_

#include <bit>
#include <cstdint>

#include "em/options.h"

namespace tokra::pilot {

/// Index of a T-node inside its base node's array.
using TIndex = std::uint32_t;
inline constexpr TIndex kNoTNode = ~TIndex{0};

/// Global identity of a T-node: (base node, index in its array).
struct TRef {
  em::BlockId base = em::kNullBlock;
  TIndex idx = kNoTNode;

  bool valid() const { return base != em::kNullBlock; }
  bool operator==(const TRef& o) const { return base == o.base && idx == o.idx; }
};

/// Number of blocks reserved per pilot set: capacity 2B points of 2 words
/// each. Push-downs carry displaced points through the cascade in scratch
/// memory, so a pilot set never materializes above 2B points.
inline constexpr std::uint32_t kPilotBlocks = 4;

/// One node of a secondary tree T(u). All fields are single words so the
/// record maps onto PagedArray<TNodeRec>. 16 words.
struct TNodeRec {
  std::uint64_t left = ~std::uint64_t{0};        ///< TIndex or kNoTNode
  std::uint64_t right = ~std::uint64_t{0};       ///< TIndex or kNoTNode
  std::uint64_t parent = ~std::uint64_t{0};      ///< TIndex or kNoTNode
  std::uint64_t base_child = em::kNullBlock;     ///< leaf-slab: child base id
  std::uint64_t pilot_count = 0;
  std::uint64_t rep_bits = 0;                    ///< bit-cast score of the rep
  std::uint64_t lo_x_bits = 0;                   ///< slab [lo_x, hi_x)
  std::uint64_t hi_x_bits = 0;
  std::uint64_t pilot_blocks[kPilotBlocks] = {};
  std::uint64_t ins_tokens = 0;  ///< Lemma 3 accounting (TOKRA_PARANOID)
  std::uint64_t del_tokens = 0;
  std::uint64_t max_bits = 0;  ///< bit-cast max pilot score (3-sided pruning)
  std::uint64_t pad1 = 0;

  bool is_slab() const { return base_child != em::kNullBlock; }
  double rep() const { return std::bit_cast<double>(rep_bits); }
  void set_rep(double v) { rep_bits = std::bit_cast<std::uint64_t>(v); }
  double pmax() const { return std::bit_cast<double>(max_bits); }
  void set_pmax(double v) { max_bits = std::bit_cast<std::uint64_t>(v); }
  double lo_x() const { return std::bit_cast<double>(lo_x_bits); }
  double hi_x() const { return std::bit_cast<double>(hi_x_bits); }
  void set_lo_x(double v) { lo_x_bits = std::bit_cast<std::uint64_t>(v); }
  void set_hi_x(double v) { hi_x_bits = std::bit_cast<std::uint64_t>(v); }
};
static_assert(sizeof(TNodeRec) == 16 * sizeof(std::uint64_t));

// --- base node header block layout (word offsets) ----------------------
// Common:   [0] kind (0 internal / 1 leaf)   [1] level   [2] weight
//           [3] parent base id               [4] parent_slab idx
// Leaf:     [5] m (#x keys)  [6] n_xblocks   [7..) x block ids
// Internal: [5] f (#children)  [6] root tnode idx  [7] n_tnodes
//           [8] tnode_cap      [9] n_tblocks       [10..) tnode block ids
inline constexpr std::size_t kHKind = 0;
inline constexpr std::size_t kHLevel = 1;
inline constexpr std::size_t kHWeight = 2;
inline constexpr std::size_t kHParent = 3;
inline constexpr std::size_t kHParentSlab = 4;
inline constexpr std::size_t kHLeafM = 5;
inline constexpr std::size_t kHLeafNX = 6;
inline constexpr std::size_t kHLeafXIds = 7;
inline constexpr std::size_t kHIntF = 5;
inline constexpr std::size_t kHIntRoot = 6;
inline constexpr std::size_t kHIntNT = 7;
inline constexpr std::size_t kHIntCap = 8;
inline constexpr std::size_t kHIntNTB = 9;
inline constexpr std::size_t kHIntTIds = 10;

// --- meta block layout -------------------------------------------------
inline constexpr std::size_t kMRoot = 0;
inline constexpr std::size_t kMLive = 1;
inline constexpr std::size_t kMKeys = 2;
inline constexpr std::size_t kMBranch = 3;  // a
inline constexpr std::size_t kMLeafCap = 4;  // b
inline constexpr std::size_t kMPhi = 5;
inline constexpr std::size_t kMHeight = 6;  // base-tree levels (root level)

}  // namespace tokra::pilot

#endif  // TOKRA_PILOT_NODE_H_
