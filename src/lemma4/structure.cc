#include "lemma4/structure.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "aurs/aurs.h"
#include "em/paged_array.h"
#include "util/bits.h"
#include "util/check.h"

namespace tokra::lemma4 {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Meta block words.
constexpr std::size_t kMRoot = 0;
constexpr std::size_t kMCount = 1;
constexpr std::size_t kMFanout = 2;
constexpr std::size_t kML = 3;
constexpr std::size_t kMLeafCap = 4;
constexpr std::size_t kMUpdates = 5;

// Node header words.
constexpr std::size_t kHKind = 0;  // 0 internal, 1 leaf
constexpr std::size_t kHLevel = 1;
constexpr std::size_t kHCount = 2;
constexpr std::size_t kHLeafSt12 = 3;   // leaf: ST12 meta block
constexpr std::size_t kHIntF = 3;       // internal: #children
constexpr std::size_t kHIntFlg = 4;     // internal: FlGroup meta block
constexpr std::size_t kHIntNCR = 5;
constexpr std::size_t kHIntIds = 6;

/// The G_u capacity per child: c2 * l with c2 = 8 (FlGroup's constant).
std::uint32_t GuCap(std::uint32_t l) { return 8 * l; }

struct ChildRec {
  em::BlockId id;
  std::uint64_t lo_bits, hi_bits;
  std::uint64_t count;

  double lo() const { return std::bit_cast<double>(lo_bits); }
  double hi() const { return std::bit_cast<double>(hi_bits); }
};
static_assert(sizeof(ChildRec) == 4 * sizeof(std::uint64_t));

struct NodeInfo {
  bool leaf;
  std::uint32_t level;
  std::uint64_t count;
  std::uint32_t f = 0;
  em::BlockId st12_meta = em::kNullBlock;
  em::BlockId flg_meta = em::kNullBlock;
  std::vector<em::BlockId> crb;
};

NodeInfo ReadNode(em::Pager* pager, em::BlockId id) {
  em::PageRef h = pager->Fetch(id);
  NodeInfo n;
  n.leaf = h.Get(kHKind) == 1;
  n.level = static_cast<std::uint32_t>(h.Get(kHLevel));
  n.count = h.Get(kHCount);
  if (n.leaf) {
    n.st12_meta = h.Get(kHLeafSt12);
  } else {
    n.f = static_cast<std::uint32_t>(h.Get(kHIntF));
    n.flg_meta = h.Get(kHIntFlg);
    std::uint32_t ncr = static_cast<std::uint32_t>(h.Get(kHIntNCR));
    for (std::uint32_t i = 0; i < ncr; ++i) {
      n.crb.push_back(h.Get(kHIntIds + i));
    }
  }
  return n;
}

/// AURS adapter over the union of sets [a1, a2] of a node's FlGroup.
/// RankSelect clamps rho to the set size (non-strict AURS; header notes).
class MultiSlabSet : public aurs::RankedSet {
 public:
  MultiSlabSet(const flgroup::FlGroup* flg, std::uint32_t a1, std::uint32_t a2)
      : flg_(flg), a1_(a1), a2_(a2), size_(flg->SizeInRange(a1, a2)) {}

  std::uint64_t Size() const override { return size_; }

  double Max() const override {
    auto m = flg_->MaxInRange(a1_, a2_);
    TOKRA_CHECK(m.ok());
    return *m;
  }

  double RankSelect(double rho) const override {
    std::uint64_t r = static_cast<std::uint64_t>(std::ceil(rho));
    r = std::min<std::uint64_t>(std::max<std::uint64_t>(r, 1), size_);
    auto res = flg_->SelectApprox(a1_, a2_, r);
    TOKRA_CHECK(res.ok());
    return res->neg_inf ? -kInf : res->value;
  }

  double RankFactor() const override {
    return static_cast<double>(flgroup::FlGroup::kApproxFactor);
  }

 private:
  const flgroup::FlGroup* flg_;
  std::uint32_t a1_, a2_;
  std::uint64_t size_;
};

}  // namespace

std::uint64_t Lemma4Selector::MetaGet(std::size_t w) const {
  em::PageRef mp = pager_->Fetch(meta_);
  return mp.Get(w);
}
void Lemma4Selector::MetaSet(std::size_t w, std::uint64_t v) {
  em::PageRef mp = pager_->Fetch(meta_);
  mp.Set(w, v);
}
std::uint64_t Lemma4Selector::size() const { return MetaGet(kMCount); }
std::uint32_t Lemma4Selector::l() const {
  return static_cast<std::uint32_t>(MetaGet(kML));
}

// --- construction -------------------------------------------------------

em::BlockId Lemma4Selector::BuildNode(const std::vector<Point>& by_x,
                                      std::uint32_t level, double lo,
                                      double hi,
                                      std::vector<double>* top_scores) {
  std::uint32_t f = static_cast<std::uint32_t>(MetaGet(kMFanout));
  std::uint32_t l_param = static_cast<std::uint32_t>(MetaGet(kML));
  std::uint32_t leaf_cap = static_cast<std::uint32_t>(MetaGet(kMLeafCap));
  std::uint32_t cap = GuCap(l_param);

  if (level == 0) {
    st12::ShengTaoSelector leaf_sel =
        st12::ShengTaoSelector::Build(pager_, by_x);
    em::BlockId id = pager_->Allocate();
    em::PageRef h = pager_->Create(id);
    h.Set(kHKind, 1);
    h.Set(kHLevel, 0);
    h.Set(kHCount, by_x.size());
    h.Set(kHLeafSt12, leaf_sel.meta_block());
    // Report this subtree's top scores to the parent.
    top_scores->clear();
    for (const Point& p : by_x) top_scores->push_back(p.score);
    std::sort(top_scores->begin(), top_scores->end(), std::greater<>());
    if (top_scores->size() > cap) top_scores->resize(cap);
    return id;
  }

  std::uint64_t target = leaf_cap / 2;
  for (std::uint32_t i = 1; i < level; ++i) target *= f;
  std::size_t n = by_x.size();
  std::size_t nf = std::max<std::size_t>(1, CeilDiv(n, target));
  nf = std::min<std::size_t>(nf, 2 * f);

  std::vector<ChildRec> crs(nf);
  std::vector<std::vector<double>> child_tops(nf);
  std::size_t pos = 0;
  for (std::size_t c = 0; c < nf; ++c) {
    std::size_t take = CeilDiv(n - pos, nf - c);
    double clo = c == 0 ? lo : by_x[pos].x;
    double chi = c == nf - 1 ? hi : by_x[pos + take].x;
    std::vector<Point> chunk(by_x.begin() + pos, by_x.begin() + pos + take);
    crs[c].id = BuildNode(chunk, level - 1, clo, chi, &child_tops[c]);
    crs[c].lo_bits = std::bit_cast<std::uint64_t>(clo);
    crs[c].hi_bits = std::bit_cast<std::uint64_t>(chi);
    crs[c].count = take;
    pos += take;
  }

  // The (f, c2*l)-structure over (G_u1, ..., G_uf).
  flgroup::FlGroup flg = flgroup::FlGroup::Create(
      pager_, {.f = static_cast<std::uint32_t>(nf), .l = cap});
  for (std::size_t c = 0; c < nf; ++c) {
    for (double s : child_tops[c]) {
      Status st = flg.Insert(static_cast<std::uint32_t>(c), s);
      TOKRA_CHECK(st.ok());
    }
  }

  std::uint32_t ncr = static_cast<std::uint32_t>(
      em::PagedArray<ChildRec>::BlocksFor(B(), 2 * f));
  TOKRA_CHECK(kHIntIds + ncr <= B());
  em::BlockId id = pager_->Allocate();
  std::vector<em::BlockId> crb(ncr);
  {
    em::PageRef h = pager_->Create(id);
    h.Set(kHKind, 0);
    h.Set(kHLevel, level);
    h.Set(kHCount, n);
    h.Set(kHIntF, nf);
    h.Set(kHIntFlg, flg.meta_block());
    h.Set(kHIntNCR, ncr);
    for (std::uint32_t i = 0; i < ncr; ++i) {
      crb[i] = pager_->Allocate();
      h.Set(kHIntIds + i, crb[i]);
      em::PageRef zero = pager_->Create(crb[i]);
    }
  }
  em::PagedArray<ChildRec> crarr(pager_, crb);
  crarr.WriteRange(0, crs);

  // This subtree's top scores: merge children tops.
  top_scores->clear();
  for (const auto& t : child_tops) {
    top_scores->insert(top_scores->end(), t.begin(), t.end());
  }
  std::sort(top_scores->begin(), top_scores->end(), std::greater<>());
  if (top_scores->size() > cap) top_scores->resize(cap);
  return id;
}

Lemma4Selector Lemma4Selector::Build(em::Pager* pager,
                                     std::vector<Point> points,
                                     Params params) {
  TOKRA_CHECK(pager->B() >= 64);
  std::uint64_t n = std::max<std::uint64_t>(points.size(), 1);
  std::uint32_t lg_n = Lg(n);
  std::uint32_t f =
      params.fanout != 0
          ? params.fanout
          : std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(FloorSqrt(
                       static_cast<std::uint64_t>(pager->B()) * lg_n)));
  std::uint32_t l = params.l != 0
                        ? params.l
                        : std::min<std::uint32_t>(pager->B() * lg_n, 4096);
  std::uint32_t leaf_cap =
      params.leaf_cap != 0
          ? params.leaf_cap
          : static_cast<std::uint32_t>(std::min<std::uint64_t>(
                static_cast<std::uint64_t>(f) * l * pager->B(), 1u << 18));

  em::BlockId meta = pager->Allocate();
  {
    em::PageRef mp = pager->Create(meta);
    mp.Set(kMFanout, f);
    mp.Set(kML, l);
    mp.Set(kMLeafCap, leaf_cap);
    mp.Set(kMCount, points.size());
    mp.Set(kMUpdates, 0);
  }
  Lemma4Selector s(pager, meta);
  std::sort(points.begin(), points.end(), ByXAsc{});
  std::uint32_t h = 0;
  std::uint64_t cap = leaf_cap / 2;
  while (cap < points.size()) {
    cap *= f;
    ++h;
  }
  std::vector<double> tops;
  em::BlockId root = s.BuildNode(points, h, -kInf, kInf, &tops);
  s.MetaSet(kMRoot, root);
  return s;
}

Lemma4Selector Lemma4Selector::Open(em::Pager* pager, em::BlockId meta) {
  return Lemma4Selector(pager, meta);
}

void Lemma4Selector::FreeNode(em::BlockId id) {
  NodeInfo n = ReadNode(pager_, id);
  if (n.leaf) {
    st12::ShengTaoSelector sel =
        st12::ShengTaoSelector::Open(pager_, n.st12_meta);
    sel.DestroyAll();
  } else {
    em::PagedArray<ChildRec> crarr(pager_, n.crb);
    for (std::uint32_t c = 0; c < n.f; ++c) FreeNode(crarr.Get(c).id);
    flgroup::FlGroup flg = flgroup::FlGroup::Open(pager_, n.flg_meta);
    flg.DestroyAll();
    for (em::BlockId b : n.crb) pager_->Free(b);
  }
  pager_->Free(id);
}

void Lemma4Selector::DestroyAll() {
  FreeNode(MetaGet(kMRoot));
  pager_->Free(meta_);
  meta_ = em::kNullBlock;
}

void Lemma4Selector::CollectPoints(em::BlockId id,
                                   std::vector<Point>* out) const {
  NodeInfo n = ReadNode(pager_, id);
  if (n.leaf) {
    st12::ShengTaoSelector sel =
        st12::ShengTaoSelector::Open(pager_, n.st12_meta);
    std::vector<Point> pts;
    sel.CollectAll(&pts);
    out->insert(out->end(), pts.begin(), pts.end());
    return;
  }
  em::PagedArray<ChildRec> crarr(pager_, n.crb);
  for (std::uint32_t c = 0; c < n.f; ++c) {
    CollectPoints(crarr.Get(c).id, out);
  }
}

void Lemma4Selector::MaybeGlobalRebuild() {
  std::uint64_t updates = MetaGet(kMUpdates);
  std::uint64_t n = MetaGet(kMCount);
  if (updates < 16 || 2 * updates < std::max<std::uint64_t>(n, 1)) return;
  std::vector<Point> all;
  CollectPoints(MetaGet(kMRoot), &all);
  FreeNode(MetaGet(kMRoot));
  std::sort(all.begin(), all.end(), ByXAsc{});
  std::uint32_t f = static_cast<std::uint32_t>(MetaGet(kMFanout));
  std::uint32_t leaf_cap = static_cast<std::uint32_t>(MetaGet(kMLeafCap));
  std::uint32_t h = 0;
  std::uint64_t cap = leaf_cap / 2;
  while (cap < all.size()) {
    cap *= f;
    ++h;
  }
  std::vector<double> tops;
  MetaSet(kMRoot, BuildNode(all, h, -kInf, kInf, &tops));
  MetaSet(kMUpdates, 0);
}

// --- updates -------------------------------------------------------------

Status Lemma4Selector::Insert(const Point& p) {
  MaybeGlobalRebuild();
  std::uint32_t cap = GuCap(static_cast<std::uint32_t>(MetaGet(kML)));
  em::BlockId cur = MetaGet(kMRoot);

  // Descend, recording (node, child index) to fix G_u's bottom-up.
  struct Step {
    em::BlockId flg_meta;
    std::uint32_t ci;
  };
  std::vector<Step> path;
  while (true) {
    NodeInfo n = ReadNode(pager_, cur);
    {
      em::PageRef h = pager_->Fetch(cur);
      h.Set(kHCount, n.count + 1);
    }
    if (n.leaf) {
      st12::ShengTaoSelector sel =
          st12::ShengTaoSelector::Open(pager_, n.st12_meta);
      TOKRA_RETURN_IF_ERROR(sel.Insert(p));
      break;
    }
    em::PagedArray<ChildRec> crarr(pager_, n.crb);
    std::uint32_t ci = 0;
    for (std::uint32_t c = 0; c < n.f; ++c) {
      ChildRec cr = crarr.Get(c);
      if (p.x >= cr.lo() && p.x < cr.hi()) {
        ci = c;
        cr.count += 1;
        crarr.Set(c, cr);
        break;
      }
    }
    path.push_back(Step{n.flg_meta, ci});
    cur = crarr.Get(ci).id;
  }

  // Bottom-up G_u maintenance (the appendix update algorithm): the score
  // enters G_u while it beats the set minimum (or the set has room); stop at
  // the first level it does not enter.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    flgroup::FlGroup flg = flgroup::FlGroup::Open(pager_, it->flg_meta);
    if (flg.SetSize(it->ci) < cap) {
      TOKRA_RETURN_IF_ERROR(flg.Insert(it->ci, p.score));
      continue;
    }
    TOKRA_ASSIGN_OR_RETURN(double mn, flg.MinOfSet(it->ci));
    if (p.score <= mn) break;
    TOKRA_RETURN_IF_ERROR(flg.Delete(it->ci, mn));
    TOKRA_RETURN_IF_ERROR(flg.Insert(it->ci, p.score));
  }

  MetaSet(kMCount, MetaGet(kMCount) + 1);
  MetaSet(kMUpdates, MetaGet(kMUpdates) + 1);
  return Status::Ok();
}

Status Lemma4Selector::Delete(const Point& p) {
  // Presence check at the owning leaf first.
  {
    em::BlockId cur = MetaGet(kMRoot);
    while (true) {
      NodeInfo n = ReadNode(pager_, cur);
      if (n.leaf) {
        st12::ShengTaoSelector sel =
            st12::ShengTaoSelector::Open(pager_, n.st12_meta);
        if (!sel.Contains(p)) return Status::NotFound("point not present");
        break;
      }
      em::PagedArray<ChildRec> crarr(pager_, n.crb);
      for (std::uint32_t c = 0; c < n.f; ++c) {
        ChildRec cr = crarr.Get(c);
        if (p.x >= cr.lo() && p.x < cr.hi()) {
          cur = cr.id;
          break;
        }
      }
    }
  }
  MaybeGlobalRebuild();
  em::BlockId cur = MetaGet(kMRoot);
  struct Step {
    em::BlockId flg_meta;
    std::uint32_t ci;
  };
  std::vector<Step> path;
  while (true) {
    NodeInfo n = ReadNode(pager_, cur);
    {
      em::PageRef h = pager_->Fetch(cur);
      h.Set(kHCount, n.count - 1);
    }
    if (n.leaf) {
      st12::ShengTaoSelector sel =
          st12::ShengTaoSelector::Open(pager_, n.st12_meta);
      TOKRA_RETURN_IF_ERROR(sel.Delete(p));
      break;
    }
    em::PagedArray<ChildRec> crarr(pager_, n.crb);
    std::uint32_t ci = 0;
    for (std::uint32_t c = 0; c < n.f; ++c) {
      ChildRec cr = crarr.Get(c);
      if (p.x >= cr.lo() && p.x < cr.hi()) {
        ci = c;
        cr.count -= 1;
        crarr.Set(c, cr);
        break;
      }
    }
    path.push_back(Step{n.flg_meta, ci});
    cur = crarr.Get(ci).id;
  }
  // Remove the score from every G_u that holds it (it decays; rebuilds
  // restore fullness — see header notes).
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    flgroup::FlGroup flg = flgroup::FlGroup::Open(pager_, it->flg_meta);
    if (!flg.Contains(it->ci, p.score)) break;
    TOKRA_RETURN_IF_ERROR(flg.Delete(it->ci, p.score));
  }
  MetaSet(kMCount, MetaGet(kMCount) - 1);
  MetaSet(kMUpdates, MetaGet(kMUpdates) + 1);
  return Status::Ok();
}

// --- queries --------------------------------------------------------

std::uint64_t Lemma4Selector::CountInRange(double x1, double x2) const {
  std::uint64_t total = 0;
  std::vector<em::BlockId> stack{MetaGet(kMRoot)};
  std::vector<ChildRec> kids;  // hoisted: one allocation per query, not node
  while (!stack.empty()) {
    em::BlockId id = stack.back();
    stack.pop_back();
    NodeInfo n = ReadNode(pager_, id);
    if (n.leaf) {
      st12::ShengTaoSelector sel =
          st12::ShengTaoSelector::Open(pager_, n.st12_meta);
      total += sel.CountInRange(x1, x2);
      continue;
    }
    // One ReadRange scan over exactly the first n.f records: each backing
    // block is pinned once (and its records copied out in one go — from
    // the mapping itself on a borrowed frame), where a per-record Get
    // would re-pin its block per child. (crb is sized for 2f capacity —
    // the tail blocks are never touched and must not be charged.)
    em::PagedArray<ChildRec> crarr(pager_, n.crb);
    crarr.ReadRange(0, n.f, &kids);
    for (const ChildRec& cr : kids) {
      if (cr.hi() <= x1 || cr.lo() > x2) continue;
      if (cr.lo() >= x1 && cr.hi() <= x2) {
        total += cr.count;
      } else {
        stack.push_back(cr.id);
      }
    }
  }
  return total;
}

StatusOr<double> Lemma4Selector::SelectApprox(double x1, double x2,
                                              std::uint64_t k) const {
  if (x1 > x2 || k < 1) return Status::InvalidArgument("bad query");
  if (k > MetaGet(kML)) {
    return Status::InvalidArgument("k exceeds the structure's l parameter");
  }

  // Canonical decomposition: multi-slabs (contiguous covered child runs) at
  // visited internal nodes + boundary leaves.
  std::vector<std::unique_ptr<MultiSlabSet>> slabs;
  std::vector<std::unique_ptr<flgroup::FlGroup>> groups;
  std::vector<double> leaf_candidates;
  std::uint64_t boundary_total = 0;

  std::vector<em::BlockId> stack{MetaGet(kMRoot)};
  std::vector<ChildRec> kids;  // hoisted: one allocation per query, not node
  while (!stack.empty()) {
    em::BlockId id = stack.back();
    stack.pop_back();
    NodeInfo n = ReadNode(pager_, id);
    if (n.leaf) {
      st12::ShengTaoSelector sel =
          st12::ShengTaoSelector::Open(pager_, n.st12_meta);
      std::uint64_t cnt = sel.CountInRange(x1, x2);
      boundary_total += cnt;
      if (cnt == 0) continue;
      auto res = sel.SelectApprox(x1, x2, std::min<std::uint64_t>(k, cnt));
      if (res.ok() && *res != -kInf) leaf_candidates.push_back(*res);
      continue;
    }
    // As in CountInRange: one ReadRange scan over exactly the n.f live
    // records, each backing block pinned once.
    em::PagedArray<ChildRec> crarr(pager_, n.crb);
    crarr.ReadRange(0, n.f, &kids);
    auto flg = std::make_unique<flgroup::FlGroup>(
        flgroup::FlGroup::Open(pager_, n.flg_meta));
    std::uint32_t run_start = n.f;  // sentinel: no open run
    for (std::uint32_t c = 0; c <= n.f; ++c) {
      bool covered = false;
      if (c < n.f) {
        const ChildRec& cr = kids[c];
        if (cr.hi() <= x1 || cr.lo() > x2) {
          covered = false;
        } else if (cr.lo() >= x1 && cr.hi() <= x2) {
          covered = true;
        } else {
          stack.push_back(cr.id);
        }
      }
      if (covered && run_start == n.f) run_start = c;
      if (!covered && run_start < n.f) {
        auto ms = std::make_unique<MultiSlabSet>(flg.get(), run_start, c - 1);
        if (ms->Size() > 0) slabs.push_back(std::move(ms));
        run_start = n.f;
      }
    }
    groups.push_back(std::move(flg));
  }

  std::uint64_t slab_total = 0;
  std::vector<aurs::RankedSet*> sets;
  for (auto& s : slabs) {
    slab_total += s->Size();
    sets.push_back(s.get());
  }
  if (k > slab_total + boundary_total) {
    return Status::OutOfRange("k exceeds range population");
  }

  double best = -kInf;
  bool have = false;
  if (!sets.empty() && slab_total >= k) {
    aurs::AursStats stats;
    auto res = aurs::UnionRankSelect(sets, k, &stats, /*strict=*/false);
    if (res.ok() && *res != -kInf) {
      best = std::max(best, *res);
      have = true;
    }
  }
  for (double v : leaf_candidates) {
    best = std::max(best, v);
    have = true;
  }
  if (!have) return -kInf;  // rank(-inf) = |range| < O(k): legal answer
  return best;
}

// --- validation ------------------------------------------------------

void Lemma4Selector::CheckNode(em::BlockId id, double lo, double hi,
                               std::uint64_t* count) const {
  NodeInfo n = ReadNode(pager_, id);
  if (n.leaf) {
    st12::ShengTaoSelector sel =
        st12::ShengTaoSelector::Open(pager_, n.st12_meta);
    sel.CheckInvariants();
    TOKRA_CHECK_EQ(sel.size(), n.count);
    *count = n.count;
    return;
  }
  flgroup::FlGroup flg = flgroup::FlGroup::Open(pager_, n.flg_meta);
  flg.CheckInvariants();
  em::PagedArray<ChildRec> crarr(pager_, n.crb);
  double prev = lo;
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < n.f; ++c) {
    ChildRec cr = crarr.Get(c);
    TOKRA_CHECK(cr.lo() == prev);
    prev = cr.hi();
    std::uint64_t sub = 0;
    CheckNode(cr.id, cr.lo(), cr.hi(), &sub);
    TOKRA_CHECK_EQ(sub, cr.count);
    // G_uc holds min(count, cap) scores unless deletions decayed it.
    TOKRA_CHECK(flg.SetSize(c) <= cr.count);
    total += sub;
  }
  TOKRA_CHECK(prev == hi);
  TOKRA_CHECK_EQ(total, n.count);
  *count = total;
}

void Lemma4Selector::CheckInvariants() const {
  std::uint64_t count = 0;
  CheckNode(MetaGet(kMRoot), -kInf, kInf, &count);
  TOKRA_CHECK_EQ(count, MetaGet(kMCount));
}

}  // namespace tokra::lemma4
