// The Lemma 4 structure (Section 3.3): approximate range k-selection for
// k = O(polylg n) with O(lg_B n) query and amortized update I/Os.
//
// A fanout-f base tree (f = sqrt(B lg n) in the paper; configurable here so
// tests exercise the machinery at laptop scale) over leaves that each hold a
// Sheng-Tao'12 selector instance on b = f*l*B points. Every internal node u
// keeps the (f, c2*l)-group G_u = (G_u1, ..., G_uf) — G_ui being the c2*l
// highest scores of child i's subtree — in a Lemma 6 FlGroup structure,
// which simultaneously provides the Rank operator (SelectApprox over a
// child interval) and the Max operator (per-set maxima are level-1 sketch
// pivots) that the AURS query of Lemma 5 consumes.
//
// A query decomposes [x1, x2] into O(lg_f n) covered multi-slabs plus at
// most two boundary leaves, runs AURS over the multi-slab sets, selects in
// the boundary leaves with their ST12 structures, and returns the maximum of
// the candidates — exactly the Section 3.3 algorithm.
//
// Documented deviations (constants / robustness, see DESIGN.md):
//  * AURS runs in non-strict mode with rho clamped per set, because multi-
//    slab set sizes are data-dependent; small sets weaken the constant, and
//    the TopkIndex reduction carries a retry loop as a safety net.
//  * G_u is not refilled on deletion (it decays until the next rebuild);
//    periodic global rebuilding bounds the decay, standing in for the
//    paper's unspecified "analogous" deletion maintenance and node-split
//    handling.

#ifndef TOKRA_LEMMA4_STRUCTURE_H_
#define TOKRA_LEMMA4_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "em/pager.h"
#include "flgroup/fl_group.h"
#include "st12/selector.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::lemma4 {

class Lemma4Selector {
 public:
  struct Params {
    std::uint32_t fanout = 0;    ///< 0 = derive sqrt(B lg N)
    std::uint32_t l = 0;         ///< query rank capacity; 0 = derive B lg N
    std::uint32_t leaf_cap = 0;  ///< 0 = derive f*l*B capped at 1<<18
  };

  /// End-to-end approximation: returned rank in [k, kApproxFactor*k) under
  /// the documented conditions (verified empirically by property tests).
  static constexpr std::uint64_t kApproxFactor = 256;

  static Lemma4Selector Build(em::Pager* pager, std::vector<Point> points,
                              Params params);
  static Lemma4Selector Build(em::Pager* pager, std::vector<Point> points) {
    return Build(pager, std::move(points), Params());
  }
  static Lemma4Selector Open(em::Pager* pager, em::BlockId meta);

  em::BlockId meta_block() const { return meta_; }
  std::uint64_t size() const;
  std::uint32_t l() const;  ///< max supported k

  Status Insert(const Point& p);
  Status Delete(const Point& p);

  /// |S ∩ [x1,x2]|, exact. O(lg_B n) I/Os.
  std::uint64_t CountInRange(double x1, double x2) const;

  /// A score whose rank among the scores of S ∩ [x1,x2] falls in
  /// [k, kApproxFactor*k), or -inf (whole range qualifies). Requires
  /// 1 <= k <= min(l, CountInRange). O(lg_B n) I/Os.
  StatusOr<double> SelectApprox(double x1, double x2, std::uint64_t k) const;

  void DestroyAll();
  void CheckInvariants() const;

 private:
  Lemma4Selector(em::Pager* pager, em::BlockId meta)
      : pager_(pager), meta_(meta) {}

  std::uint32_t B() const { return pager_->B(); }
  std::uint64_t MetaGet(std::size_t w) const;
  void MetaSet(std::size_t w, std::uint64_t v);

  em::BlockId BuildNode(const std::vector<Point>& by_x, std::uint32_t level,
                        double lo, double hi,
                        std::vector<double>* top_scores);
  void FreeNode(em::BlockId id);
  void CollectPoints(em::BlockId id, std::vector<Point>* out) const;
  void MaybeGlobalRebuild();
  void CheckNode(em::BlockId id, double lo, double hi,
                 std::uint64_t* count) const;

  em::Pager* pager_;
  em::BlockId meta_;
};

}  // namespace tokra::lemma4

#endif  // TOKRA_LEMMA4_STRUCTURE_H_
