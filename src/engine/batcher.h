// RequestBatcher: a coalescing front end for ShardedTopkEngine.
//
// Concurrent callers Submit() requests and receive futures; the batcher
// accumulates requests and hands them to ShardedTopkEngine::ExecuteBatch in
// one go — updates grouped per shard (one lock acquisition and one warm
// pager pass per shard per batch), queries fanned out after. This amortizes
// lock and pager traffic across everything that arrived in the window.
//
// Under a WAL durability mode the batcher is also the group-commit
// boundary: each shard's update group lands in ONE write-ahead-log record
// (one vectored append + one barrier), not one per update, and a future
// resolves only after its batch executed — i.e. after its record was
// logged. The coalescing window therefore amortizes the durability barrier
// exactly like it amortizes the lock, which is what makes
// kWalFsyncEveryBatch pay one fsync per shard per batch instead of per op.
//
// A batch flushes when it reaches `max_pending` (inline, on the submitting
// thread) or when a caller invokes Flush(). Batch semantics follow
// ExecuteBatch: within a batch, updates happen-before queries, and updates
// validate in submission order.

#ifndef TOKRA_ENGINE_BATCHER_H_
#define TOKRA_ENGINE_BATCHER_H_

#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "engine/request.h"
#include "engine/sharded_engine.h"

namespace tokra::engine {

class RequestBatcher {
 public:
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    std::uint64_t auto_rebalances = 0;
  };

  /// `max_pending`: batch size that triggers an automatic flush.
  /// `auto_rebalance`: run engine->MaybeRebalance() after each batch — the
  /// skew hook for adversarial insert streams.
  RequestBatcher(ShardedTopkEngine* engine, std::size_t max_pending = 256,
                 bool auto_rebalance = false);

  /// Flushes whatever is pending on destruction so no future is abandoned.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueues one request; the future resolves when its batch executes.
  /// May execute a full batch inline on this thread.
  std::future<Response> Submit(Request req);

  /// Executes everything pending now (no-op when empty).
  void Flush();

  std::size_t pending() const;
  Stats stats() const;

 private:
  struct Item {
    Request req;
    std::promise<Response> promise;
    std::uint64_t submit_us = 0;  ///< admission-wait stamp (0 = untimed)
  };

  /// Runs one batch on the calling thread.
  void Execute(std::vector<Item> batch);

  ShardedTopkEngine* engine_;
  const std::size_t max_pending_;
  const bool auto_rebalance_;
  // Engine-owned telemetry (null when disabled): how long a request sat in
  // the coalescing window before its batch executed, and the window's
  // instantaneous depth.
  obs::Histogram* admission_wait_us_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;

  mutable std::mutex mu_;
  std::vector<Item> pending_;
  Stats stats_;
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_BATCHER_H_
