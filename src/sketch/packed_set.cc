#include "sketch/packed_set.h"

#include <algorithm>

namespace tokra::sketch {

void PackedSketchSet::Serialize(std::span<em::word_t> out) const {
  TOKRA_CHECK(out.size() >= WordCount());
  std::size_t w = 0;
  for (std::uint32_t i = 0; i < f_; ++i) {
    out[w++] = sizes_[i];
    for (std::uint32_t j = 1; j <= levels_cap_; ++j) {
      std::size_t idx = Idx(i, j);
      out[w++] = (static_cast<em::word_t>(g_[idx]) << 32) | r_[idx];
    }
  }
}

PackedSketchSet PackedSketchSet::Deserialize(std::uint32_t f,
                                             std::uint32_t l_cap,
                                             std::span<const em::word_t> in) {
  PackedSketchSet s(f, l_cap);
  TOKRA_CHECK(in.size() >= s.WordCount());
  std::size_t w = 0;
  for (std::uint32_t i = 0; i < f; ++i) {
    s.sizes_[i] = static_cast<std::uint32_t>(in[w++]);
    for (std::uint32_t j = 1; j <= s.levels_cap_; ++j) {
      em::word_t packed = in[w++];
      std::size_t idx = s.Idx(i, j);
      s.g_[idx] = static_cast<std::uint32_t>(packed >> 32);
      s.r_[idx] = static_cast<std::uint32_t>(packed & 0xFFFFFFFFu);
    }
  }
  return s;
}

PackedSketchSet::SelectResult PackedSketchSet::SelectApprox(
    std::uint32_t a1, std::uint32_t a2, std::uint64_t k) const {
  TOKRA_CHECK(a1 <= a2 && a2 < f_);
  TOKRA_CHECK(k >= 1);
  // Candidates ordered by ascending global rank == descending value; the
  // sweep mirrors SelectFromSketches (see select7.cc for the c3=8 proof).
  struct Cand {
    std::uint32_t g;
    std::uint32_t set;
    std::uint32_t level;
  };
  std::vector<Cand> cands;
  for (std::uint32_t i = a1; i <= a2; ++i) {
    for (std::uint32_t j = 1; j <= levels(i); ++j) {
      cands.push_back(Cand{global_rank(i, j), i, j});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.g < b.g; });

  std::vector<std::uint64_t> lo(a2 - a1 + 1, 0);
  std::uint64_t total = 0;
  for (const Cand& c : cands) {
    std::uint64_t contrib = std::uint64_t{1} << (c.level - 1);
    std::uint64_t& slot = lo[c.set - a1];
    if (contrib > slot) {
      total += contrib - slot;
      slot = contrib;
    }
    if (total >= k) return SelectResult{false, c.g, c.set, c.level};
  }
  return SelectResult{true, 0, 0, 0};
}

bool PackedSketchSet::ApplyInsert(std::uint32_t set_i, std::uint32_t g_new) {
  TOKRA_CHECK(set_i < f_);
  TOKRA_CHECK(sizes_[set_i] < l_cap_);
  // Shift global ranks; within set_i, matching local ranks shift too.
  for (std::uint32_t i = 0; i < f_; ++i) {
    for (std::uint32_t j = 1; j <= levels(i); ++j) {
      std::size_t idx = Idx(i, j);
      if (g_[idx] >= g_new) {
        ++g_[idx];
        if (i == set_i) ++r_[idx];
      }
    }
  }
  std::uint32_t old_size = sizes_[set_i]++;
  // Expansion: |G_i| reached a power of two (incl. the 0 -> 1 case).
  return old_size == 0 || IsPowerOfTwo(sizes_[set_i]);
}

PackedSketchSet::DeleteEffect PackedSketchSet::ApplyDelete(
    std::uint32_t set_i, std::uint32_t g_old) {
  TOKRA_CHECK(set_i < f_);
  TOKRA_CHECK(sizes_[set_i] > 0);
  DeleteEffect effect;
  std::uint32_t levels_before = levels(set_i);
  for (std::uint32_t i = 0; i < f_; ++i) {
    for (std::uint32_t j = 1; j <= levels(i); ++j) {
      std::size_t idx = Idx(i, j);
      if (g_[idx] == g_old) {
        // Distinct values => only the deleted element itself matches, and it
        // can only be a pivot of its own set.
        TOKRA_CHECK(i == set_i);
        effect.dangling = true;
        effect.dangling_level = j;
      } else if (g_[idx] > g_old) {
        --g_[idx];
        if (i == set_i) --r_[idx];
      }
    }
  }
  bool was_power = IsPowerOfTwo(sizes_[set_i]);
  --sizes_[set_i];
  if (was_power) {
    // Shrink: the last level evaporates (windows no longer reach it).
    effect.shrank = true;
    if (effect.dangling && effect.dangling_level == levels_before) {
      effect.dangling = false;  // the dangling pivot was the dropped level
    }
  }
  return effect;
}

void PackedSketchSet::InvalidLevels(std::uint32_t i,
                                    std::vector<std::uint32_t>* out) const {
  for (std::uint32_t j = 1; j <= levels(i); ++j) {
    std::uint64_t lo = std::uint64_t{1} << (j - 1);
    std::uint32_t r = r_[Idx(i, j)];
    if (r < lo || r >= 2 * lo || r > sizes_[i]) out->push_back(j);
  }
}

void PackedSketchSet::CheckWellFormed() const {
  std::vector<std::uint32_t> bad;
  for (std::uint32_t i = 0; i < f_; ++i) {
    TOKRA_CHECK(sizes_[i] <= l_cap_);
    bad.clear();
    InvalidLevels(i, &bad);
    TOKRA_CHECK(bad.empty());
    for (std::uint32_t j = 1; j <= levels(i); ++j) {
      TOKRA_CHECK(global_rank(i, j) >= 1);
      TOKRA_CHECK(local_rank(i, j) >= 1);
    }
  }
}

}  // namespace tokra::sketch
