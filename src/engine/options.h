// Configuration of the sharded concurrent query engine.

#ifndef TOKRA_ENGINE_OPTIONS_H_
#define TOKRA_ENGINE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "core/topk_index.h"
#include "em/options.h"
#include "util/check.h"

namespace tokra::engine {

/// Superblock roots each shard checkpoint records: index meta, lower bound,
/// shard count, topology generation. EngineOptions::Validate() requires a
/// block to fit the superblock header plus this many roots, so a validated
/// engine can never fail a checkpoint on geometry at runtime.
inline constexpr std::uint32_t kShardCheckpointRoots = 4;

/// Parameters of a ShardedTopkEngine.
///
/// Each shard is an independent TopkIndex on its own em::Pager, so the
/// per-shard EM parameters below describe one shard's simulated disk and
/// buffer pool; total pool memory is num_shards * em.pool_frames frames.
struct EngineOptions {
  /// Number of key-range shards. Each holds ~n/S points and preserves the
  /// paper's per-index bounds on its subrange.
  std::uint32_t num_shards = 4;

  /// Worker threads answering fanned-out shard subqueries and applying
  /// batched per-shard update groups.
  std::uint32_t threads = 4;

  /// EM model parameters for each shard's private pager.
  em::EmOptions em;

  /// When non-empty, every shard runs on its own backing file
  /// `<storage_dir>/shard-<i>.tokra` (em.backend is promoted from kMem to
  /// kFile; a kUring choice is kept), which makes Checkpoint()/Recover()
  /// available: the whole engine persists across process restarts. The
  /// directory must already exist.
  std::string storage_dir;

  /// Run per-shard checkpoints concurrently on the engine's thread pool.
  /// Shards checkpoint independent pagers on disjoint files, so this only
  /// overlaps their flush + superblock writes; the per-shard crash-safety
  /// contract is unchanged (see DESIGN.md §6.3).
  bool parallel_checkpoint = true;

  /// Checkpoint() skips shards with no accepted updates since their last
  /// checkpoint (their backing file already holds exactly the state a
  /// fresh checkpoint would write). Purely an I/O saving; off restores the
  /// every-shard behaviour.
  bool skip_clean_shard_checkpoints = true;

  /// OpenSnapshot: independent read handles (pager + index view) per shard.
  /// Each replica serves one query at a time; with kMmap shards the
  /// replicas share every cached byte through the OS page cache, so extra
  /// replicas cost only pool bookkeeping. 0 derives threads + 1 (the pool
  /// workers plus the calling thread).
  std::uint32_t snapshot_replicas = 0;

  /// `em` specialized for shard `i`: the per-shard backing file applied.
  em::EmOptions ShardEm(std::uint32_t shard) const {
    em::EmOptions o = em;
    if (!storage_dir.empty()) {
      if (o.backend == em::Backend::kMem) o.backend = em::Backend::kFile;
      o.path = storage_dir + "/shard-" + std::to_string(shard) + ".tokra";
    }
    return o;
  }

  /// Forwarded to every shard's TopkIndex.
  core::TopkIndex::Options index;

  /// MaybeRebalance() triggers when the largest shard exceeds this multiple
  /// of the average shard size (and rebalance_min_points is met).
  double rebalance_skew = 4.0;

  /// Minimum total points before skew-triggered rebalancing kicks in;
  /// below this, imbalance is noise.
  std::uint64_t rebalance_min_points = 1024;

  void Validate() const {
    TOKRA_CHECK(num_shards >= 1);
    TOKRA_CHECK(threads >= 1);
    TOKRA_CHECK(rebalance_skew > 1.0);
    // A file-backed backend must come with a storage_dir: a single shared
    // em.path would have every shard truncate and overwrite the same file.
    TOKRA_CHECK(em.backend == em::Backend::kMem || !storage_dir.empty());
    TOKRA_CHECK(em.block_words >=
                em::kSuperblockHeaderWords + kShardCheckpointRoots);
    ShardEm(0).Validate();
  }
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_OPTIONS_H_
