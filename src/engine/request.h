// Request/Response protocol shared by the engine's batch path and the
// request-batching front end.

#ifndef TOKRA_ENGINE_REQUEST_H_
#define TOKRA_ENGINE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "util/point.h"
#include "util/status.h"

namespace tokra::engine {

/// One operation against the engine. Built via the factory helpers.
struct Request {
  enum class Kind { kInsert, kDelete, kTopk };

  Kind kind = Kind::kTopk;
  Point point;            ///< kInsert / kDelete payload
  double x1 = 0, x2 = 0;  ///< kTopk range
  std::uint64_t k = 0;    ///< kTopk result bound

  static Request MakeInsert(const Point& p) {
    Request r;
    r.kind = Kind::kInsert;
    r.point = p;
    return r;
  }
  static Request MakeDelete(const Point& p) {
    Request r;
    r.kind = Kind::kDelete;
    r.point = p;
    return r;
  }
  static Request MakeTopk(double x1, double x2, std::uint64_t k) {
    Request r;
    r.kind = Kind::kTopk;
    r.x1 = x1;
    r.x2 = x2;
    r.k = k;
    return r;
  }
};

/// Outcome of one Request. `points` is populated for kTopk on success.
struct Response {
  Status status;
  std::vector<Point> points;
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_REQUEST_H_
