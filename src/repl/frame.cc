#include "repl/frame.h"

#include <array>
#include <cstring>

namespace tokra::repl {

namespace {

void PutU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

bool KnownFrameType(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(FrameType::kHello) &&
         t <= static_cast<std::uint32_t>(FrameType::kError);
}

std::uint32_t Crc32Bytes(std::span<const std::uint8_t> bytes) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~0u;
  for (std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

void EncodeFrameHeader(FrameType type, std::span<const std::uint8_t> payload,
                       std::uint8_t out[kFrameHeaderBytes]) {
  PutU32(out, kFrameMagic);
  PutU32(out + 4, static_cast<std::uint32_t>(type));
  PutU32(out + 8, static_cast<std::uint32_t>(payload.size()));
  PutU32(out + 12, Crc32Bytes(payload));
}

Status DecodeFrameHeader(const std::uint8_t header[kFrameHeaderBytes],
                         FrameType* type, std::uint32_t* payload_bytes,
                         std::uint32_t* crc) {
  if (GetU32(header) != kFrameMagic) {
    return Status::IoError("repl frame: bad magic (desynchronized stream)");
  }
  const std::uint32_t t = GetU32(header + 4);
  if (!KnownFrameType(t)) {
    return Status::IoError("repl frame: unknown type " + std::to_string(t));
  }
  const std::uint32_t len = GetU32(header + 8);
  if (len > kMaxFramePayload) {
    return Status::IoError("repl frame: oversized payload " +
                           std::to_string(len));
  }
  *type = static_cast<FrameType>(t);
  *payload_bytes = len;
  *crc = GetU32(header + 12);
  return Status::Ok();
}

}  // namespace tokra::repl
