// Unit tests for util/: Status, bit helpers, RNG.

#include <gtest/gtest.h>

#include <set>

#include "util/bits.h"
#include "util/random.h"
#include "util/status.h"

namespace tokra {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  TOKRA_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(BitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
}

TEST(BitsTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(BitsTest, LgIsAtLeastOne) {
  EXPECT_EQ(Lg(1), 1u);
  EXPECT_EQ(Lg(2), 1u);
  EXPECT_EQ(Lg(1 << 20), 20u);
}

TEST(BitsTest, LogBMatchesDefinition) {
  // LogB(b, x): least h >= 1 with b^h >= x.
  EXPECT_EQ(LogB(2, 8), 3u);
  EXPECT_EQ(LogB(2, 9), 4u);
  EXPECT_EQ(LogB(256, 1), 1u);
  EXPECT_EQ(LogB(256, 256), 1u);
  EXPECT_EQ(LogB(256, 257), 2u);
  EXPECT_EQ(LogB(256, 65536), 2u);
  EXPECT_EQ(LogB(256, 65537), 3u);
}

TEST(BitsTest, FloorSqrt) {
  EXPECT_EQ(FloorSqrt(0), 0u);
  EXPECT_EQ(FloorSqrt(1), 1u);
  EXPECT_EQ(FloorSqrt(15), 3u);
  EXPECT_EQ(FloorSqrt(16), 4u);
  EXPECT_EQ(FloorSqrt(1u << 20), 1024u);
}

TEST(BitsTest, PowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(65));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Uniform(17), 17u);
}

TEST(RngTest, DistinctDoublesAreDistinctAndInRange) {
  Rng r(99);
  auto v = r.DistinctDoubles(5000, -1.0, 1.0);
  std::set<double> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), v.size());
  for (double d : v) {
    EXPECT_GE(d, -1.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tokra
