#include "em/file_block_device.h"

#include "em/fault_device.h"
#include "em/mmap_block_device.h"
#include "em/uring_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/io_retry.h"

namespace tokra::em {

namespace {
std::string Errno(int err) { return std::strerror(err); }
}  // namespace

FileBlockDevice::FileBlockDevice(std::uint32_t block_words, FileOptions options)
    : BlockDevice(block_words),
      path_(std::move(options.path)),
      durable_sync_(options.durable_sync),
      read_only_(options.read_only) {
  TOKRA_CHECK(!path_.empty());
  // A read-only device cannot create or truncate: it serves an existing
  // immutable file (the snapshot contract).
  TOKRA_CHECK(!(read_only_ && options.truncate));
  int flags = read_only_ ? O_RDONLY
                         : O_RDWR | O_CREAT | (options.truncate ? O_TRUNC : 0);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    // A missing or unopenable file makes a sticky-failed zero-block device
    // instead of an abort; Pager::Open turns it into a proper kIoError.
    RecordIoError(Status::IoError("open failed: " + path_ + ": " +
                                  Errno(errno)));
    return;
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    RecordIoError(Status::IoError("fstat failed: " + path_ + ": " +
                                  Errno(errno)));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  // Floor a size that is not a whole number of blocks (geometry mismatch or
  // external tampering): the pager's superblock validation rejects such
  // devices with a proper Status instead of an abort here.
  num_blocks_ = static_cast<std::uint64_t>(st.st_size) / BlockBytes();
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ < 0) return;
  // Last chance to learn about writes the page cache never made it to the
  // medium: an fsync refused at close means dirty pages may be dropped
  // silently. Nobody is left to take a Status from a destructor, so count
  // it, log it, and leave the device marked failed for anything still
  // holding it through teardown. A device that already sticky-failed skips
  // the barrier (fsyncgate: a failed device must not re-arm the kernel's
  // error-reported flag and then report a clean close).
  if (!read_only_ && !io_failed() && ::fsync(fd_) != 0) {
    RecordIoError(Status::IoError("close-time fsync failed: " + path_ + ": " +
                                  Errno(errno)));
    std::fprintf(stderr, "tokra: close-time fsync failed on %s: %s\n",
                 path_.c_str(), Errno(errno).c_str());
  }
  ::close(fd_);
}

void FileBlockDevice::EnsureCapacity(BlockId blocks) {
  if (blocks <= num_blocks_) return;
  TOKRA_CHECK(!read_only_ && "cannot grow a read-only device");
  if (io_failed()) return;  // fail-stop: a failed device stops growing
  // Growing before publishing the new count keeps read views in-bounds:
  // by the time a reader can observe `blocks`, the file already has them.
  if (::ftruncate(fd_, static_cast<off_t>(blocks * BlockBytes())) != 0) {
    const int err = errno;
    // A full disk (or file-size limit / quota) is the one storage failure a
    // healthy deployment recovers from by freeing space, so it gets its own
    // code; everything else is a generic device error. Both are sticky.
    Status st = (err == ENOSPC || err == EFBIG || err == EDQUOT)
                    ? Status::ResourceExhausted("grow failed: " + path_ +
                                                ": " + Errno(err))
                    : Status::IoError("ftruncate failed: " + path_ + ": " +
                                      Errno(err));
    RecordIoError(std::move(st));
    return;
  }
  num_blocks_.store(blocks, std::memory_order_release);
}

bool FileBlockDevice::ViewRead(BlockId id, word_t* dst) {
  // Raw positional read on the shared fd: thread-safe, and neither counters
  // nor sticky error state of this (writer-owned) device are touched — a
  // view reader's failure is recorded on the view, not here.
  std::size_t transferred = 0;
  return tokra::PreadFull(fd_, dst, BlockBytes(), id * BlockBytes(),
                          &transferred) == 0;
}

void FileBlockDevice::Sync() {
  if (!durable_sync_ || read_only_) return;
  // fsyncgate semantics: after ANY device failure — in particular a failed
  // fsync, whose dirty pages the kernel marks clean anyway — this device
  // never acknowledges a barrier again. Retrying the fsync would return 0
  // and falsely promise durability for writes that were already dropped.
  if (io_failed()) return;
  if (::fsync(fd_) != 0) {
    RecordIoError(Status::IoError("fsync failed: " + path_ + ": " +
                                  Errno(errno)));
    return;
  }
  CountSync();
}

void FileBlockDevice::DropOsCache() {
  // Dirty pages are immune to DONTNEED, so flush first; then ask the kernel
  // to drop the file's clean page-cache pages. Advisory — a best-effort
  // bench hook, not a correctness barrier — but a refused fsync still marks
  // the device failed: the kernel just told us it dropped dirty data.
  if (!read_only_ && !io_failed() && ::fsync(fd_) != 0) {
    RecordIoError(Status::IoError("fsync in DropOsCache failed: " + path_ +
                                  ": " + Errno(errno)));
    return;
  }
  ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
}

void FileBlockDevice::DoRead(BlockId id, word_t* dst) {
  PreadFull(id * BlockBytes(), dst, BlockBytes());
}

void FileBlockDevice::DoWrite(BlockId id, const word_t* src) {
  TOKRA_CHECK(!read_only_ && "write to a read-only device");
  PwriteFull(id * BlockBytes(), src, BlockBytes());
}

void FileBlockDevice::DoReadRun(BlockId first, std::uint32_t count,
                                word_t* dst) {
  PreadFull(first * BlockBytes(), dst, count * BlockBytes());
}

void FileBlockDevice::DoWriteRun(BlockId first, std::uint32_t count,
                                 const word_t* src) {
  PwriteFull(first * BlockBytes(), src, count * BlockBytes());
}

void FileBlockDevice::PreadFull(std::uint64_t offset, void* buf,
                                std::size_t len) {
  std::size_t transferred = 0;
  const int err = tokra::PreadFull(fd_, buf, len, offset, &transferred);
  if (err == 0) return;
  // Error, or EOF inside the device (a truncated/corrupt file). The
  // remainder past the transferred prefix is zero-filled: contents of a
  // failed read are unspecified, and validated callers (superblock
  // checksum, WAL CRC) reject zeros just like any other garbage.
  RecordIoError(err == kIoEof
                    ? Status::IoError("unexpected EOF: " + path_)
                    : Status::IoError("pread failed: " + path_ + ": " +
                                      Errno(err)));
  std::memset(static_cast<char*>(buf) + transferred, 0, len - transferred);
}

void FileBlockDevice::PwriteFull(std::uint64_t offset, const void* buf,
                                 std::size_t len) {
  TOKRA_CHECK(!read_only_ && "write to a read-only device");
  // Fail-stop: once the device failed, later writes are dropped rather
  // than partially applied — the caller can no longer be acknowledged, and
  // recovery rebuilds from the checkpoint + WAL anyway.
  if (io_failed()) return;
  if (const int err = tokra::PwriteFull(fd_, buf, len, offset); err != 0) {
    RecordIoError(Status::IoError("pwrite failed: " + path_ + ": " +
                                  Errno(err)));
  }
}

std::unique_ptr<BlockDevice> MakeBlockDevice(const EmOptions& options,
                                             bool truncate_file) {
  const FileBlockDevice::FileOptions file_options{
      .path = options.path,
      .truncate = truncate_file,
      .durable_sync = options.durable_sync,
      .read_only = options.read_only};
  std::unique_ptr<BlockDevice> device;
  switch (options.backend) {
    case Backend::kMem:
      device = std::make_unique<MemBlockDevice>(options.block_words);
      break;
    case Backend::kFile:
      device =
          std::make_unique<FileBlockDevice>(options.block_words, file_options);
      break;
    case Backend::kUring:
      // Compile-time gate (kernel header present) + runtime probe (this
      // kernel grants rings); either failing falls back to the synchronous
      // file device — same file format, same I/O counts, batches served by
      // the base-class loop — so kUring is always safe to request.
#if defined(TOKRA_HAVE_URING)
      if (UringBlockDevice::Supported()) {
        device = std::make_unique<UringBlockDevice>(
            options.block_words, file_options, options.io_queue_depth,
            options.io_register_buffers);
        break;
      }
#endif
      device =
          std::make_unique<FileBlockDevice>(options.block_words, file_options);
      break;
    case Backend::kMmap:
      // Same file format as kFile; only where reads are served from
      // differs. Falls back to plain file reads internally if the kernel
      // refuses the mapping, so kMmap is always safe to request.
      device =
          std::make_unique<MmapBlockDevice>(options.block_words, file_options);
      break;
  }
  TOKRA_CHECK(device != nullptr);
  if (options.fault != nullptr) {
    device = std::make_unique<FaultInjectingBlockDevice>(std::move(device),
                                                         options.fault);
  }
  return device;
}

}  // namespace tokra::em
