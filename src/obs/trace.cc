#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tokra::obs {

namespace {

/// Innermost open span id of the calling thread (implicit parent).
thread_local std::uint64_t tls_current_span = 0;

}  // namespace

Tracer::Tracer(std::size_t capacity) {
  if (capacity < 2) capacity = 2;
  slots_ = std::vector<Slot>(std::bit_ceil(capacity));
  mask_ = slots_.size() - 1;
}

void Tracer::Record(const Span& span) {
  const std::uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[pos & mask_];
  // Seqlock write: odd seq marks the slot mid-rewrite; readers seeing odd
  // (or a seq that changed across their copy) discard it. release/acquire
  // pairs order the payload stores against the seq stores.
  const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_release);
  s.name.store(span.name, std::memory_order_relaxed);
  s.id.store(span.id, std::memory_order_relaxed);
  s.parent.store(span.parent, std::memory_order_relaxed);
  s.start_us.store(span.start_us, std::memory_order_relaxed);
  s.dur_us.store(span.dur_us, std::memory_order_relaxed);
  s.tid.store(span.tid, std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
}

std::vector<Tracer::Span> Tracer::Snapshot() const {
  std::vector<Span> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    const std::uint64_t seq0 = s.seq.load(std::memory_order_acquire);
    if (seq0 == 0 || (seq0 & 1) != 0) continue;  // empty or mid-rewrite
    Span span;
    span.name = s.name.load(std::memory_order_relaxed);
    span.id = s.id.load(std::memory_order_relaxed);
    span.parent = s.parent.load(std::memory_order_relaxed);
    span.start_us = s.start_us.load(std::memory_order_relaxed);
    span.dur_us = s.dur_us.load(std::memory_order_relaxed);
    span.tid = s.tid.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq0) continue;  // torn
    if (span.name == nullptr || span.id == 0) continue;
    out.push_back(span);
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_us != b.start_us ? a.start_us < b.start_us : a.id < b.id;
  });
  return out;
}

std::string Tracer::ExportChromeJson() const {
  const std::vector<Span> spans = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const Span& s : spans) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                  "\"dur\":%llu,\"pid\":0,\"tid\":%u,"
                  "\"args\":{\"id\":%llu,\"parent\":%llu}}",
                  first ? "" : ",", s.name != nullptr ? s.name : "?",
                  static_cast<unsigned long long>(s.start_us),
                  static_cast<unsigned long long>(s.dur_us), s.tid,
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent));
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name)
    : ScopedSpan(tracer, name, tls_current_span) {}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, std::uint64_t parent)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  span_.name = name;
  span_.id = tracer_->NewId();
  span_.parent = parent;
  span_.start_us = NowUs();
  span_.tid = ThreadSlot();
  saved_parent_ = tls_current_span;
  tls_current_span = span_.id;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    Finish();
    tracer_ = other.tracer_;
    span_ = other.span_;
    saved_parent_ = other.saved_parent_;
    other.tracer_ = nullptr;  // disarm the source
  }
  return *this;
}

void ScopedSpan::Finish() {
  if (tracer_ == nullptr) return;
  span_.dur_us = NowUs() - span_.start_us;
  // Pop this span off the thread's implicit-parent chain. Cross-thread
  // moves would corrupt the chain, so only pop when it is still ours.
  if (tls_current_span == span_.id) tls_current_span = saved_parent_;
  tracer_->Record(span_);
  tracer_ = nullptr;
}

}  // namespace tokra::obs
