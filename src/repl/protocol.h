// Payload codecs for the replication protocol (header-only).
//
// Each frame type from repl/frame.h carries one of the message structs
// below, encoded little-endian with a trivial append-only writer / bounds-
// checked reader. The codec is deliberately dumb: fixed-width integers and
// length-prefixed byte strings, no varints, no optional fields — a decoder
// either consumes the payload exactly or rejects the frame, and the wire
// format in DESIGN.md §13 can be read straight off these structs.
//
// Handshake recap (full state machine in DESIGN.md §13):
//
//   follower                         primary
//   --------                         -------
//   Hello{version}              ->
//                               <-   HelloAck{version, shards, block_words}
//   Subscribe{applied_lsns[]}   ->
//                               <-   SnapBegin{epoch, files[]}    (if any
//                               <-   SnapChunk{...} x N            shard
//                               <-   SnapEnd{covered_lsns[]}       needs it)
//                               <-   Tail{shard, lsn, payload} / Heartbeat
//   Ack{applied_lsns[]}         ->   (periodic, on the same socket)

#ifndef TOKRA_REPL_PROTOCOL_H_
#define TOKRA_REPL_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace tokra::repl {

inline constexpr std::uint32_t kProtocolVersion = 1;

class WireWriter {
 public:
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void Bytes(std::span<const std::uint8_t> b) {
    U32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void Str(const std::string& s) {
    Bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  Status U32(std::uint32_t* v) {
    if (buf_.size() - pos_ < 4) return Short();
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return Status::Ok();
  }
  Status U64(std::uint64_t* v) {
    if (buf_.size() - pos_ < 8) return Short();
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return Status::Ok();
  }
  Status Bytes(std::vector<std::uint8_t>* out) {
    std::uint32_t len = 0;
    TOKRA_RETURN_IF_ERROR(U32(&len));
    if (buf_.size() - pos_ < len) return Short();
    out->assign(buf_.begin() + pos_, buf_.begin() + pos_ + len);
    pos_ += len;
    return Status::Ok();
  }
  Status Str(std::string* out) {
    std::uint32_t len = 0;
    TOKRA_RETURN_IF_ERROR(U32(&len));
    if (buf_.size() - pos_ < len) return Short();
    out->assign(reinterpret_cast<const char*>(buf_.data() + pos_), len);
    pos_ += len;
    return Status::Ok();
  }

  /// Rejects payloads with trailing garbage — a decode must be exact.
  Status Done() const {
    if (pos_ != buf_.size()) {
      return Status::IoError("repl payload: trailing bytes");
    }
    return Status::Ok();
  }

 private:
  Status Short() const {
    return Status::IoError("repl payload: truncated");
  }

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

namespace wire {

inline void PutLsns(WireWriter& w, const std::vector<std::uint64_t>& v) {
  w.U32(static_cast<std::uint32_t>(v.size()));
  for (std::uint64_t x : v) w.U64(x);
}

inline Status GetLsns(WireReader& r, std::vector<std::uint64_t>* v) {
  std::uint32_t n = 0;
  TOKRA_RETURN_IF_ERROR(r.U32(&n));
  if (n > 1u << 20) return Status::IoError("repl payload: absurd vector");
  v->resize(n);
  for (std::uint32_t i = 0; i < n; ++i) TOKRA_RETURN_IF_ERROR(r.U64(&(*v)[i]));
  return Status::Ok();
}

}  // namespace wire

/// kHello — follower's opening message.
struct HelloMsg {
  std::uint32_t version = kProtocolVersion;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    w.U32(version);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(r.U32(&version));
    return r.Done();
  }
};

/// kHelloAck — primary's topology answer.
struct HelloAckMsg {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t num_shards = 0;
  std::uint32_t block_words = 0;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    w.U32(version);
    w.U32(num_shards);
    w.U32(block_words);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(r.U32(&version));
    TOKRA_RETURN_IF_ERROR(r.U32(&num_shards));
    TOKRA_RETURN_IF_ERROR(r.U32(&block_words));
    return r.Done();
  }
};

/// kSubscribe / kAck — per-shard LSNs the follower has durably applied.
/// Zero means "nothing: ship a snapshot". For kSubscribe, snapshot_bytes
/// carries per-shard byte offsets already received of a previous
/// (interrupted) snapshot stream of `snapshot_epoch`, enabling ranged
/// resume instead of refetching whole checkpoint files.
struct SubscribeMsg {
  std::vector<std::uint64_t> applied_lsns;
  /// 1 once the follower has ever COMPLETED a bootstrap. Distinct from
  /// snapshot_epoch below: a follower whose applied LSN for a shard is 0
  /// (no WAL history yet) must not be re-snapshotted forever, while a
  /// follower that only got half an epoch's bytes must be.
  std::uint32_t bootstrapped = 0;
  /// Epoch of a PARTIALLY received snapshot, with the byte counts already
  /// landed per shard — the primary resumes the stream mid-file when the
  /// epoch still matches. 0 when no bootstrap is in flight.
  std::uint64_t snapshot_epoch = 0;
  std::vector<std::uint64_t> snapshot_bytes;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    wire::PutLsns(w, applied_lsns);
    w.U32(bootstrapped);
    w.U64(snapshot_epoch);
    wire::PutLsns(w, snapshot_bytes);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(wire::GetLsns(r, &applied_lsns));
    TOKRA_RETURN_IF_ERROR(r.U32(&bootstrapped));
    TOKRA_RETURN_IF_ERROR(r.U64(&snapshot_epoch));
    TOKRA_RETURN_IF_ERROR(wire::GetLsns(r, &snapshot_bytes));
    return r.Done();
  }
};

/// kSnapBegin — one entry per shard the primary is about to ship.
struct SnapBeginMsg {
  struct File {
    std::uint32_t shard = 0;
    std::uint64_t file_bytes = 0;
    std::uint64_t covered_lsn = 0;    ///< WAL position the bytes embody
    std::uint64_t resume_offset = 0;  ///< first byte this stream will send
  };
  std::uint64_t epoch = 0;
  std::vector<File> files;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    w.U64(epoch);
    w.U32(static_cast<std::uint32_t>(files.size()));
    for (const File& f : files) {
      w.U32(f.shard);
      w.U64(f.file_bytes);
      w.U64(f.covered_lsn);
      w.U64(f.resume_offset);
    }
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(r.U64(&epoch));
    std::uint32_t n = 0;
    TOKRA_RETURN_IF_ERROR(r.U32(&n));
    if (n > 1u << 16) return Status::IoError("repl payload: absurd shard count");
    files.resize(n);
    for (File& f : files) {
      TOKRA_RETURN_IF_ERROR(r.U32(&f.shard));
      TOKRA_RETURN_IF_ERROR(r.U64(&f.file_bytes));
      TOKRA_RETURN_IF_ERROR(r.U64(&f.covered_lsn));
      TOKRA_RETURN_IF_ERROR(r.U64(&f.resume_offset));
    }
    return r.Done();
  }
};

/// kSnapChunk — one ranged piece of one shard's checkpoint file.
struct SnapChunkMsg {
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> data;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    w.U32(shard);
    w.U64(offset);
    w.Bytes(data);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(r.U32(&shard));
    TOKRA_RETURN_IF_ERROR(r.U64(&offset));
    TOKRA_RETURN_IF_ERROR(r.Bytes(&data));
    return r.Done();
  }
};

/// kSnapEnd — bootstrap complete; tail replay starts after covered_lsns.
struct SnapEndMsg {
  std::vector<std::uint64_t> covered_lsns;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    wire::PutLsns(w, covered_lsns);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(wire::GetLsns(r, &covered_lsns));
    return r.Done();
  }
};

/// kTail — one logical WAL record of one shard.
struct TailMsg {
  std::uint32_t shard = 0;
  std::uint64_t lsn = 0;
  std::vector<std::uint8_t> payload;  ///< EncodeWalOps words, byte view

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    w.U32(shard);
    w.U64(lsn);
    w.Bytes(payload);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(r.U32(&shard));
    TOKRA_RETURN_IF_ERROR(r.U64(&lsn));
    TOKRA_RETURN_IF_ERROR(r.Bytes(&payload));
    return r.Done();
  }
};

/// kHeartbeat — liveness plus where each shard's log head sits, so a
/// follower can report lag in LSNs even while idle.
struct HeartbeatMsg {
  std::uint64_t now_us = 0;
  std::vector<std::uint64_t> head_lsns;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    w.U64(now_us);
    wire::PutLsns(w, head_lsns);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(r.U64(&now_us));
    TOKRA_RETURN_IF_ERROR(wire::GetLsns(r, &head_lsns));
    return r.Done();
  }
};

/// kAck — the follower's periodic progress report: per-shard LSNs it has
/// applied to its serving engine. Purely observational on the primary
/// (lag accounting); delivery is driven by Subscribe positions, not acks.
struct AckMsg {
  std::vector<std::uint64_t> applied_lsns;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    wire::PutLsns(w, applied_lsns);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(wire::GetLsns(r, &applied_lsns));
    return r.Done();
  }
};

/// kError — primary's refusal message before closing.
struct ErrorMsg {
  std::string message;

  std::vector<std::uint8_t> Encode() const {
    WireWriter w;
    w.Str(message);
    return w.Take();
  }
  Status Decode(std::span<const std::uint8_t> p) {
    WireReader r(p);
    TOKRA_RETURN_IF_ERROR(r.Str(&message));
    return r.Done();
  }
};

}  // namespace tokra::repl

#endif  // TOKRA_REPL_PROTOCOL_H_
