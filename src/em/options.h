// Parameters of the simulated external-memory (EM) model.

#ifndef TOKRA_EM_OPTIONS_H_
#define TOKRA_EM_OPTIONS_H_

#include <cstdint>

#include "util/check.h"

namespace tokra::em {

/// One machine word of the EM model. 64 bits >= Omega(lg n) for any input this
/// library can hold, matching the paper's word-size assumption.
using word_t = std::uint64_t;

/// Block identifier on the simulated disk.
using BlockId = std::uint64_t;

/// Sentinel for "no block".
inline constexpr BlockId kNullBlock = ~BlockId{0};

/// Aggarwal-Vitter model parameters: a memory of `M` words and a disk of
/// blocks of `B` words. The model requires M = Omega(B); the pool keeps
/// M/B frames.
struct EmOptions {
  /// B: words per block. Must be >= 8 (all node headers fit one block).
  std::uint32_t block_words = 256;

  /// M/B: number of block frames the buffer pool may hold in memory.
  std::uint32_t pool_frames = 16;

  void Validate() const {
    TOKRA_CHECK(block_words >= 8);
    TOKRA_CHECK(pool_frames >= 4);
  }
};

}  // namespace tokra::em

#endif  // TOKRA_EM_OPTIONS_H_
