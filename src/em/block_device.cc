// Chunked in-memory device + shared read-view plumbing (DESIGN.md §14).

#include "em/block_device.h"

namespace tokra::em {

std::unique_ptr<BlockDevice> BlockDevice::TryShareReadView() {
  if (failed_ || !ViewSupportsReads()) return nullptr;
  return std::make_unique<ReadViewDevice>(this);
}

void ReadViewDevice::DoRead(BlockId id, word_t* dst) {
  if (parent_->ViewRead(id, dst)) return;
  // The failure belongs to this alias, never to the parent: an epoch
  // reader's bad luck must not poison the writer's device.
  std::memset(dst, 0, std::size_t{block_words()} * sizeof(word_t));
  RecordIoError(Status::IoError("read view: backend read failed"));
}

void ReadViewDevice::DoWrite(BlockId id, const word_t* src) {
  (void)id;
  (void)src;
  TOKRA_CHECK(false && "ReadViewDevice is read-only");
}

MemBlockDevice::~MemBlockDevice() {
  for (auto& page_slot : pages_) {
    Page* page = page_slot.load(std::memory_order_relaxed);
    if (page == nullptr) continue;
    for (auto& chunk_slot : page->chunks) {
      delete[] chunk_slot.load(std::memory_order_relaxed);
    }
    delete page;
  }
}

word_t* MemBlockDevice::BlockPtr(BlockId id) const {
  const BlockId chunk_idx = id / kChunkBlocks;
  Page* page = pages_[chunk_idx / kPageChunks].load(std::memory_order_acquire);
  word_t* chunk =
      page->chunks[chunk_idx % kPageChunks].load(std::memory_order_acquire);
  return chunk + (id % kChunkBlocks) * std::size_t{block_words()};
}

void MemBlockDevice::EnsureCapacity(BlockId blocks) {
  if (blocks <= num_blocks_.load(std::memory_order_relaxed)) return;
  TOKRA_CHECK(blocks <=
              BlockId{kRootPages} * kPageChunks * kChunkBlocks);
  const BlockId chunks_needed = (blocks + kChunkBlocks - 1) / kChunkBlocks;
  for (BlockId c =
           num_blocks_.load(std::memory_order_relaxed) / kChunkBlocks;
       c < chunks_needed; ++c) {
    Page* page = pages_[c / kPageChunks].load(std::memory_order_acquire);
    if (page == nullptr) {
      page = new Page();
      pages_[c / kPageChunks].store(page, std::memory_order_release);
    }
    auto& slot = page->chunks[c % kPageChunks];
    if (slot.load(std::memory_order_relaxed) == nullptr) {
      // Value-initialized: the EM disk formats to zeros.
      slot.store(new word_t[std::size_t{kChunkBlocks} * block_words()](),
                 std::memory_order_release);
    }
  }
  num_blocks_.store(blocks, std::memory_order_release);
}

bool MemBlockDevice::ViewRead(BlockId id, word_t* dst) {
  if (id >= NumBlocks()) return false;
  std::memcpy(dst, BlockPtr(id), BytesPerBlock());
  return true;
}

void MemBlockDevice::DoRead(BlockId id, word_t* dst) {
  std::memcpy(dst, BlockPtr(id), BytesPerBlock());
}

void MemBlockDevice::DoWrite(BlockId id, const word_t* src) {
  std::memcpy(BlockPtr(id), src, BytesPerBlock());
}

void MemBlockDevice::DoReadRun(BlockId first, std::uint32_t count,
                               word_t* dst) {
  // A run may span chunks; copy per contiguous segment.
  while (count > 0) {
    const std::uint32_t n = std::min<std::uint32_t>(
        count, kChunkBlocks - static_cast<std::uint32_t>(first % kChunkBlocks));
    std::memcpy(dst, BlockPtr(first), std::size_t{n} * BytesPerBlock());
    first += n;
    dst += std::size_t{n} * block_words();
    count -= n;
  }
}

void MemBlockDevice::DoWriteRun(BlockId first, std::uint32_t count,
                                const word_t* src) {
  while (count > 0) {
    const std::uint32_t n = std::min<std::uint32_t>(
        count, kChunkBlocks - static_cast<std::uint32_t>(first % kChunkBlocks));
    std::memcpy(BlockPtr(first), src, std::size_t{n} * BytesPerBlock());
    first += n;
    src += std::size_t{n} * block_words();
    count -= n;
  }
}

}  // namespace tokra::em
