// Replication primary: serves a live ShardedTopkEngine's durability stream
// to follower processes over TCP (repl/frame.h framing, repl/protocol.h
// messages).
//
// The primary borrows the engine — it never owns or mutates it beyond
// taking checkpoints for snapshot export. Per accepted connection it runs
// the handshake, decides per the follower's Subscribe whether a bootstrap
// is needed (any shard with applied LSN 0, or whose log has rotated past
// the follower's position), ships the current snapshot epoch if so, then
// settles into the tail loop: per-shard em::WalTailFollower polls over the
// engine's own WAL segments ship every new kLogical record, interleaved
// with heartbeats carrying the per-shard head LSNs.
//
// Snapshot epochs: ExportSnapshot() copies every shard's checkpoint into
// <storage_dir>/.repl-epoch under the engine's exclusive lock, so the
// exported bytes are exactly one checkpoint and its covered LSNs are the
// tail resume positions. The export is reused across followers (and across
// one follower's interrupted bootstraps — Subscribe carries per-shard byte
// offsets already received, and the stream resumes mid-file) until some
// shard's log rotates past the epoch's covered LSN, at which point a fresh
// epoch is exported.
//
// Reading the live WAL from a second fd is safe against the engine's
// appender: a segment only ever grows within its inode, frames become
// visible block-ordered through the page cache, and a partially visible
// tail frame fails its CRC and ends the scan exactly like a torn tail
// (em/wal_tail.h; torture-tested in wal_test.cc).

#ifndef TOKRA_REPL_PRIMARY_H_
#define TOKRA_REPL_PRIMARY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "em/fault_device.h"
#include "engine/sharded_engine.h"
#include "repl/conn.h"
#include "repl/protocol.h"
#include "util/status.h"

namespace tokra::repl {

class Primary {
 public:
  struct Options {
    /// The live engine's storage directory (shard files + WAL segments).
    std::string storage_dir;
    std::uint32_t num_shards = 0;
    /// WAL segment geometry — must equal the engine's em.block_words.
    std::uint32_t block_words = 256;
    std::string bind_addr = "127.0.0.1";
    /// 0 picks a free port (read it back with port()).
    std::uint16_t port = 0;
    int heartbeat_ms = 100;
    /// Idle sleep between tail polls when no records moved.
    int poll_ms = 5;
    std::uint32_t chunk_bytes = 256 * 1024;
    int io_timeout_ms = 5000;
    /// Consulted once per frame by every connection; a fired fault closes
    /// that follower's socket (see repl/conn.h).
    em::FaultInjector* fault = nullptr;
  };

  /// Monotonic serving counters (snapshot).
  struct Stats {
    std::uint64_t connections_total = 0;
    std::uint64_t active_connections = 0;
    std::uint64_t epochs_exported = 0;
    std::uint64_t snapshots_shipped = 0;  ///< bootstrap streams completed
    std::uint64_t snapshot_bytes = 0;     ///< chunk payload bytes sent
    std::uint64_t snapshot_bytes_skipped = 0;  ///< saved by ranged resume
    std::uint64_t tail_records = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t acks = 0;
  };

  /// Binds, listens, and starts the accept loop. `engine` must outlive the
  /// Primary and must be the live engine whose storage_dir is given (a WAL
  /// durability mode, or followers bootstrap but never receive tails).
  static StatusOr<std::unique_ptr<Primary>> Start(
      engine::ShardedTopkEngine* engine, Options options);

  ~Primary();
  Primary(const Primary&) = delete;
  Primary& operator=(const Primary&) = delete;

  /// Stops accepting, hard-closes every follower connection, joins all
  /// threads. Idempotent.
  void Stop();

  std::uint16_t port() const { return port_; }
  Stats stats() const;

 private:
  Primary(engine::ShardedTopkEngine* engine, Options options, int listen_fd,
          std::uint16_t port);

  std::string WalPath(std::uint32_t shard) const;
  std::string EpochPath(std::uint32_t shard) const;
  std::string EpochCounterPath() const;
  std::uint64_t LoadPersistedEpoch() const;
  void PersistEpoch(std::uint64_t epoch) const;

  void AcceptLoop();
  void Serve(std::shared_ptr<Conn> conn);
  Status ServeConn(Conn& conn);

  /// Ships a full-bootstrap stream (SnapBegin/Chunk*/SnapEnd) for every
  /// shard, exporting a fresh epoch first if none exists or the current
  /// one has been rotated past. On OK, `resume` holds the covered LSNs the
  /// tail must start after. Serialized across connections by epoch_mu_.
  Status ShipSnapshot(Conn& conn, const SubscribeMsg& sub,
                      std::vector<std::uint64_t>* resume);

  /// True when the follower's position cannot be served by tailing alone:
  /// it never bootstrapped (snapshot_epoch == 0) or a shard's log rotated
  /// past its applied LSN.
  bool NeedsBootstrap(const SubscribeMsg& sub) const;

  engine::ShardedTopkEngine* engine_;
  Options options_;
  int listen_fd_;
  std::uint16_t port_;

  std::atomic<bool> stop_{false};
  std::mutex cv_mu_;
  std::condition_variable cv_;

  std::thread accept_thread_;
  struct Session {
    std::thread th;
    std::shared_ptr<Conn> conn;
  };
  std::mutex sessions_mu_;
  std::vector<Session> sessions_;

  // Snapshot epoch (guarded by epoch_mu_; held across a whole ship so
  // concurrent bootstraps serialize and no export races a stream).
  std::mutex epoch_mu_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> epoch_covered_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace tokra::repl

#endif  // TOKRA_REPL_PRIMARY_H_
