// Integration tests for the Theorem 1 TopkIndex: all three regimes, both
// selector components, random workloads against the naive oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/topk_index.h"
#include "em/pager.h"
#include "internal/naive.h"
#include "util/random.h"

namespace tokra::core {
namespace {

em::EmOptions Opts(std::uint32_t bw = 128) {
  return em::EmOptions{.block_words = bw, .pool_frames = 64};
}

std::vector<Point> RandomPoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, 1000.0);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

void ExpectTopKEqual(const std::vector<Point>& got,
                     const std::vector<Point>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

TEST(TopkIndexTest, RejectsDuplicates) {
  em::Pager pager(Opts());
  EXPECT_FALSE(TopkIndex::Build(&pager, {{1, 0.5}, {1, 0.7}}).ok());
  EXPECT_FALSE(TopkIndex::Build(&pager, {{1, 0.5}, {2, 0.5}}).ok());
}

TEST(TopkIndexTest, EmptyIndex) {
  em::Pager pager(Opts());
  auto idx = TopkIndex::Build(&pager, {});
  ASSERT_TRUE(idx.ok());
  auto res = (*idx)->TopK(0, 10, 5);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
  (*idx)->CheckInvariants();
}

struct IdxCase {
  std::size_t n;
  int updates;
  TopkIndex::Options::Selector selector;
  std::uint64_t seed;
};

class TopkIndexPropertyTest : public ::testing::TestWithParam<IdxCase> {};

TEST_P(TopkIndexPropertyTest, MatchesOracleAcrossRegimes) {
  const auto& c = GetParam();
  em::Pager pager(Opts());
  Rng rng(c.seed);
  std::vector<Point> live = RandomPoints(&rng, c.n);
  TopkIndex::Options options;
  options.selector = c.selector;
  options.lemma4_params = {.fanout = 4, .l = 64, .leaf_cap = 512};
  auto built = TopkIndex::Build(&pager, live, options);
  ASSERT_TRUE(built.ok());
  auto& idx = *built;
  idx->CheckInvariants();

  std::set<double> used_x, used_s;
  for (const Point& p : live) {
    used_x.insert(p.x);
    used_s.insert(p.score);
  }
  for (int op = 0; op < c.updates; ++op) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      double x, sc;
      do {
        x = rng.UniformDouble(0, 1000);
      } while (!used_x.insert(x).second);
      do {
        sc = rng.UniformDouble(0, 1);
      } while (!used_s.insert(sc).second);
      ASSERT_TRUE(idx->Insert({x, sc}).ok());
      live.push_back({x, sc});
    } else {
      std::size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(idx->Delete(live[pick]).ok());
      live.erase(live.begin() + pick);
    }
  }
  idx->CheckInvariants();
  EXPECT_EQ(idx->size(), live.size());

  // Queries across the k spectrum: tiny (threshold path), middling, and
  // huge (pilot-direct path).
  for (int probe = 0; probe < 40; ++probe) {
    double a = rng.UniformDouble(-10, 1010), b = rng.UniformDouble(-10, 1010);
    double x1 = std::min(a, b), x2 = std::max(a, b);
    for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{7},
                            std::uint64_t{50}, std::uint64_t{5000}}) {
      TopkQueryStats stats;
      auto got = idx->TopK(x1, x2, k, &stats);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectTopKEqual(*got, internal::NaiveTopK(live, x1, x2, k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopkIndexPropertyTest,
    ::testing::Values(
        IdxCase{500, 300, TopkIndex::Options::Selector::kSt12, 1},
        IdxCase{500, 300, TopkIndex::Options::Selector::kLemma4, 2},
        IdxCase{5000, 500, TopkIndex::Options::Selector::kSt12, 3},
        IdxCase{5000, 500, TopkIndex::Options::Selector::kLemma4, 4},
        IdxCase{2000, 200, TopkIndex::Options::Selector::kAuto, 5}),
    [](const ::testing::TestParamInfo<IdxCase>& info) {
      const char* sel =
          info.param.selector == TopkIndex::Options::Selector::kSt12
              ? "st12"
              : info.param.selector == TopkIndex::Options::Selector::kLemma4
                    ? "lemma4"
                    : "auto";
      return std::string(sel) + "n" + std::to_string(info.param.n);
    });

TEST(TopkIndexTest, DispatchPaths) {
  em::Pager pager(Opts());
  Rng rng(9);
  auto pts = RandomPoints(&rng, 3000);
  TopkIndex::Options options;
  options.selector = TopkIndex::Options::Selector::kSt12;
  auto idx = TopkIndex::Build(&pager, pts, options);
  ASSERT_TRUE(idx.ok());
  TopkQueryStats small_stats, large_stats;
  ASSERT_TRUE((*idx)->TopK(100, 900, 5, &small_stats).ok());
  EXPECT_EQ(small_stats.path, QueryPath::kSt12Threshold);
  // k >= B lg n = 128 * 12 goes straight to the pilot structure.
  ASSERT_TRUE((*idx)->TopK(100, 900, 3000, &large_stats).ok());
  EXPECT_EQ(large_stats.path, QueryPath::kPilotDirect);
}

TEST(TopkIndexTest, DestroyReleasesBlocks) {
  em::Pager pager(Opts());
  std::uint64_t base = pager.BlocksInUse();
  Rng rng(11);
  auto idx = TopkIndex::Build(&pager, RandomPoints(&rng, 1000));
  ASSERT_TRUE(idx.ok());
  (*idx)->DestroyAll();
  EXPECT_EQ(pager.BlocksInUse(), base);
}

}  // namespace
}  // namespace tokra::core
