// E3 — Lemma 1: the pilot PST answers top-k in O(lg n + k/B) I/Os (log base
// TWO) and updates in O(lg_B n) amortized; once k >= B lg n its query is
// dominated by the optimal k/B term.

#include "bench/common.h"
#include "pilot/pilot_pst.h"
#include "util/bits.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e3_pilot");
  std::printf("# E3: Lemma 1 pilot PST — query and update shapes\n");

  Header("query I/Os vs k around the B*lg n crossover (n=2^16, B=128)",
         {"k", "B lg n", "query I/Os", "k/B", "I/Os per k/B unit"});
  {
    em::Pager pager(em::EmOptions{.block_words = 128, .pool_frames = 64});
    Rng rng(4);
    const std::size_t n = 1u << 16;
    auto pst = pilot::PilotPst::Build(&pager, RandomPoints(&rng, n));
    std::uint64_t blgn = 128 * Lg(n);
    for (std::uint64_t k : {64u, 512u, 2048u, 8192u, 32768u}) {
      std::uint64_t ios = ColdIos(&pager, [&] {
        pst.TopK(1e5, 9e5, k).value();
      });
      double kb = static_cast<double>(k) / 128.0;
      Row({U(k), U(blgn), U(ios), D(kb), D(ios / std::max(kb, 1.0))});
    }
  }

  Header("amortized insert+delete I/Os vs n (B=256)",
         {"n", "lg_B n", "I/Os per update (1000 pairs)"});
  for (std::size_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 64});
    Rng rng(5);
    auto pst = pilot::PilotPst::Build(&pager, RandomPoints(&rng, n));
    auto fresh = RandomPoints(&rng, 1000, 1e6 - 1);
    std::uint64_t ios = BatchIos(&pager, [&] {
      for (const Point& q : fresh) {
        Must(pst.Insert(q));
        Must(pst.Delete(q));
      }
    });
    Row({U(n), U(LogB(256, n)),
         D(static_cast<double>(ios) / (2 * fresh.size()))});
  }
  std::printf("\nShape check: query I/Os/(k/B) flatten to a small constant "
              "for k >= B lg n; update I/Os grow ~lg_B n.\n");
  return 0;
}
