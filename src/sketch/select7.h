// Lemma 7: approximate union-rank selection from logarithmic sketches.
//
// Given sketches of m disjoint sets and k in [1, |union|], returns a value x
// whose descending rank in the union lies in [k, c3*k] with c3 = 8 (the
// lemma requires some constant c3 >= 2; see select7.cc for the derivation).
// x is either an element of the union (a pivot) or -infinity.

#ifndef TOKRA_SKETCH_SELECT7_H_
#define TOKRA_SKETCH_SELECT7_H_

#include <cstdint>
#include <span>

#include "sketch/log_sketch.h"

namespace tokra::sketch {

/// Approximation constant achieved by SelectFromSketches: rank in [k, c3*k].
inline constexpr std::uint64_t kSelect7Factor = 8;

struct Select7Result {
  bool neg_inf = false;      ///< whole-union rank satisfied only by -inf
  double value = 0;          ///< the chosen pivot (valid unless neg_inf)
  std::uint32_t set_index = 0;  ///< which input sketch the pivot came from
  std::uint32_t level = 0;      ///< which level of that sketch
};

/// Runs the Lemma 7 selection over in-memory sketches. CPU-only: the I/O cost
/// ("O(m) I/Os") is paid by whoever loads the m sketches into memory.
/// Requires 1 <= k; if k exceeds the union size the result is neg_inf.
Select7Result SelectFromSketches(
    std::span<const LogSketch* const> sketches, std::uint64_t k);

}  // namespace tokra::sketch

#endif  // TOKRA_SKETCH_SELECT7_H_
