// The input element of top-k range reporting.

#ifndef TOKRA_UTIL_POINT_H_
#define TOKRA_UTIL_POINT_H_

#include <string>

namespace tokra {

/// A 1-d point with a real-valued score, i.e. one element e of the input set
/// S with score(e). Geometrically the 2-d point (x, score) of the paper's
/// Section 2. Scores are assumed distinct (the paper's standard assumption);
/// the public API rejects duplicate scores.
struct Point {
  double x = 0;
  double score = 0;

  bool operator==(const Point& o) const { return x == o.x && score == o.score; }

  std::string ToString() const {
    return "(" + std::to_string(x) + ", " + std::to_string(score) + ")";
  }
};

/// Orders by score descending — the order in which top-k results rank.
struct ByScoreDesc {
  bool operator()(const Point& a, const Point& b) const {
    return a.score > b.score;
  }
};

/// Orders by x ascending.
struct ByXAsc {
  bool operator()(const Point& a, const Point& b) const { return a.x < b.x; }
};

}  // namespace tokra

#endif  // TOKRA_UTIL_POINT_H_
