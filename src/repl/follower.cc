#include "repl/follower.h"

#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <utility>

#include "util/io_retry.h"
#include "util/random.h"

namespace tokra::repl {

namespace fs = std::filesystem;

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t FingerprintPoints(std::span<const Point> points) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (const Point& p : points) {
    mix(std::bit_cast<std::uint64_t>(p.x));
    mix(std::bit_cast<std::uint64_t>(p.score));
  }
  return h;
}

StatusOr<std::uint64_t> EngineFingerprint(
    const engine::ShardedTopkEngine& engine) {
  const std::uint64_t n = engine.size();
  if (n == 0) return FingerprintPoints({});
  TOKRA_ASSIGN_OR_RETURN(
      const std::vector<Point> all,
      engine.TopK(-std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity(), n));
  return FingerprintPoints(all);
}

const char* Follower::StateName(State s) {
  switch (s) {
    case State::kConnecting:
      return "connecting";
    case State::kBootstrapping:
      return "bootstrapping";
    case State::kStreaming:
      return "streaming";
    case State::kDegraded:
      return "degraded";
  }
  return "?";
}

StatusOr<std::unique_ptr<Follower>> Follower::Start(Options options) {
  if (options.storage_dir.empty()) {
    return Status::InvalidArgument("repl follower: storage_dir required");
  }
  std::error_code ec;
  fs::create_directories(options.storage_dir, ec);
  if (ec) {
    return Status::IoError("repl follower: create " + options.storage_dir +
                           ": " + ec.message());
  }
  std::unique_ptr<Follower> f(new Follower(std::move(options)));
  f->loop_thread_ = std::thread([raw = f.get()] { raw->Run(); });
  return f;
}

Follower::Follower(Options options) : options_(std::move(options)) {
  applied_.assign(options_.engine.num_shards, 0);
  head_lsns_.assign(options_.engine.num_shards, 0);
  snap_bytes_.assign(options_.engine.num_shards, 0);
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  g_state_ = metrics_->GetGauge("tokra_repl_state");
  g_lag_lsn_ = metrics_->GetGauge("tokra_repl_lag_lsn");
  g_lag_ms_ = metrics_->GetGauge("tokra_repl_lag_ms");
  c_reconnects_ = metrics_->GetCounter("tokra_repl_reconnects_total");
  c_bootstraps_ = metrics_->GetCounter("tokra_repl_bootstraps_total");
  c_tail_records_ = metrics_->GetCounter("tokra_repl_tail_records_total");
  c_heartbeats_ = metrics_->GetCounter("tokra_repl_heartbeats_total");
  g_lag_ms_->Set(-1);
}

Follower::~Follower() { Stop(); }

void Follower::Stop() {
  stop_.store(true);
  cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
}

bool Follower::serving() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_ != nullptr;
}

StatusOr<std::vector<Point>> Follower::TopK(double x1, double x2,
                                            std::uint64_t k) const {
  std::shared_ptr<engine::ShardedTopkEngine> e;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    e = engine_;
  }
  if (e == nullptr) {
    return Status::FailedPrecondition("repl follower: not bootstrapped yet");
  }
  return e->TopK(x1, x2, k);
}

StatusOr<std::uint64_t> Follower::Fingerprint() const {
  std::shared_ptr<engine::ShardedTopkEngine> e;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    e = engine_;
  }
  if (e == nullptr) {
    return Status::FailedPrecondition("repl follower: not bootstrapped yet");
  }
  return EngineFingerprint(*e);
}

std::uint64_t Follower::LagLsnLocked() const {
  std::uint64_t lag = 0;
  for (std::size_t s = 0; s < applied_.size(); ++s) {
    if (head_lsns_[s] > applied_[s]) lag += head_lsns_[s] - applied_[s];
  }
  return lag;
}

void Follower::RefreshLagGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  g_state_->Set(static_cast<std::int64_t>(state_.load()));
  g_lag_lsn_->Set(static_cast<std::int64_t>(LagLsnLocked()));
  g_lag_ms_->Set(last_heartbeat_ms_ < 0 ? -1
                                        : NowMs() - last_heartbeat_ms_);
}

Follower::Stats Follower::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.state = state_.load();
  {
    std::lock_guard<std::mutex> elock(engine_mu_);
    s.serving = engine_ != nullptr;
  }
  s.lag_lsn = LagLsnLocked();
  s.lag_ms = last_heartbeat_ms_ < 0 ? -1 : NowMs() - last_heartbeat_ms_;
  s.applied_lsns = applied_;
  return s;
}

std::string Follower::DumpMetrics() const {
  RefreshLagGauges();
  return metrics_->DumpMetrics();
}

void Follower::SetState(State s) {
  state_.store(s);
  g_state_->Set(static_cast<std::int64_t>(s));
}

std::string Follower::ShardFilePath(std::uint32_t shard) const {
  return options_.storage_dir + "/shard-" + std::to_string(shard) + ".tokra";
}

void Follower::Run() {
  Rng rng(options_.backoff_seed);
  int backoff = options_.backoff_initial_ms;
  while (!stop_.load()) {
    SetState(State::kConnecting);
    Status st;
    auto fd = DialTcp(options_.host, options_.port,
                      options_.connect_timeout_ms);
    if (fd.ok()) {
      Conn conn(*fd, Conn::Options{options_.io_timeout_ms, options_.fault});
      st = Session(conn);
      // Session returning at all (past the handshake) means the link
      // worked once: restart the backoff ladder from the bottom.
      if (session_progressed_) backoff = options_.backoff_initial_ms;
    } else {
      st = fd.status();
    }
    if (stop_.load()) break;

    // Keep serving stale reads while the primary is away.
    SetState(serving() ? State::kDegraded : State::kConnecting);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.reconnects;
    }
    c_reconnects_->Add(1);
    RefreshLagGauges();

    // Capped exponential backoff, jittered to [backoff/2, backoff).
    const int sleep_ms =
        backoff / 2 +
        static_cast<int>(rng.Uniform(static_cast<std::uint64_t>(
            std::max(1, backoff - backoff / 2))));
    backoff = std::min(backoff * 2, options_.backoff_max_ms);
    std::unique_lock<std::mutex> lock(cv_mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                 [this] { return stop_.load(); });
  }
}

Status Follower::Session(Conn& conn) {
  session_progressed_ = false;

  HelloMsg hello;
  TOKRA_RETURN_IF_ERROR(conn.SendFrame(FrameType::kHello, hello.Encode()));
  Frame f;
  TOKRA_RETURN_IF_ERROR(conn.RecvFrame(&f));
  if (f.type == FrameType::kError) {
    ErrorMsg err;
    (void)err.Decode(f.payload);
    return Status::IoError("repl follower: primary refused: " + err.message);
  }
  if (f.type != FrameType::kHelloAck) {
    return Status::IoError("repl follower: expected HelloAck");
  }
  HelloAckMsg ack;
  TOKRA_RETURN_IF_ERROR(ack.Decode(f.payload));
  if (ack.num_shards != options_.engine.num_shards) {
    return Status::InvalidArgument(
        "repl follower: shard count mismatch (primary " +
        std::to_string(ack.num_shards) + ", local " +
        std::to_string(options_.engine.num_shards) + ")");
  }
  if (ack.block_words != options_.engine.em.block_words) {
    return Status::InvalidArgument("repl follower: block geometry mismatch");
  }
  session_progressed_ = true;

  SubscribeMsg sub;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sub.applied_lsns = applied_;
    sub.bootstrapped = counters_.bootstraps > 0 ? 1 : 0;
    sub.snapshot_epoch = snap_epoch_;
    sub.snapshot_bytes = snap_bytes_;
  }
  TOKRA_RETURN_IF_ERROR(conn.SendFrame(FrameType::kSubscribe, sub.Encode()));

  std::int64_t last_frame = NowMs();
  std::int64_t last_ack = 0;
  for (;;) {
    if (stop_.load()) return Status::Ok();
    Frame in;
    Status st = conn.TryRecvFrame(&in);
    if (st.code() == StatusCode::kNotFound) {
      const std::int64_t now = NowMs();
      if (now - last_frame > options_.heartbeat_timeout_ms) {
        return Status::DeadlineExceeded(
            "repl follower: heartbeat timeout (primary dead or "
            "partitioned)");
      }
      if (state_.load() == State::kStreaming &&
          now - last_ack >= options_.ack_interval_ms) {
        AckMsg am;
        {
          std::lock_guard<std::mutex> lock(mu_);
          am.applied_lsns = applied_;
        }
        TOKRA_RETURN_IF_ERROR(conn.SendFrame(FrameType::kAck, am.Encode()));
        last_ack = now;
      }
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(1),
                   [this] { return stop_.load(); });
      continue;
    }
    TOKRA_RETURN_IF_ERROR(st);
    last_frame = NowMs();

    switch (in.type) {
      case FrameType::kSnapBegin: {
        SnapBeginMsg begin;
        TOKRA_RETURN_IF_ERROR(begin.Decode(in.payload));
        TOKRA_RETURN_IF_ERROR(HandleSnapshot(conn, begin));
        last_frame = NowMs();
        break;
      }
      case FrameType::kTail: {
        TailMsg tail;
        TOKRA_RETURN_IF_ERROR(tail.Decode(in.payload));
        TOKRA_RETURN_IF_ERROR(ApplyTail(tail));
        if (state_.load() != State::kStreaming) SetState(State::kStreaming);
        break;
      }
      case FrameType::kHeartbeat: {
        HeartbeatMsg hb;
        TOKRA_RETURN_IF_ERROR(hb.Decode(in.payload));
        {
          std::lock_guard<std::mutex> lock(mu_);
          last_heartbeat_ms_ = NowMs();
          if (hb.head_lsns.size() == head_lsns_.size()) {
            head_lsns_ = hb.head_lsns;
          }
          ++counters_.heartbeats;
        }
        c_heartbeats_->Add(1);
        if (state_.load() != State::kStreaming) SetState(State::kStreaming);
        RefreshLagGauges();
        break;
      }
      case FrameType::kError: {
        ErrorMsg err;
        (void)err.Decode(in.payload);
        return Status::IoError("repl follower: primary error: " +
                               err.message);
      }
      default:
        return Status::IoError("repl follower: unexpected frame type");
    }
  }
}

Status Follower::HandleSnapshot(Conn& conn, const SnapBeginMsg& begin) {
  SetState(State::kBootstrapping);
  const std::uint32_t n = options_.engine.num_shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (begin.epoch != snap_epoch_) {
      snap_epoch_ = begin.epoch;
      snap_bytes_.assign(n, 0);
    }
  }

  std::vector<int> fds(n, -1);
  std::vector<std::uint64_t> expect_bytes(n, 0);
  auto close_all = [&fds] {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  };
  for (const SnapBeginMsg::File& file : begin.files) {
    if (file.shard >= n) {
      close_all();
      return Status::IoError("repl follower: snapshot shard out of range");
    }
    const std::string path = ShardFilePath(file.shard);
    fds[file.shard] =
        ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fds[file.shard] < 0) {
      close_all();
      return Status::IoError("repl follower: open " + path + ": " +
                             std::string(::strerror(errno)));
    }
    expect_bytes[file.shard] = file.file_bytes;
    if (::ftruncate(fds[file.shard],
                    static_cast<off_t>(file.file_bytes)) < 0) {
      close_all();
      return Status::IoError("repl follower: ftruncate " + path);
    }
    if (file.resume_offset > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.snapshot_resumed_bytes += file.resume_offset;
    }
  }

  // Chunk stream until SnapEnd.
  for (;;) {
    if (stop_.load()) {
      close_all();
      return Status::Ok();
    }
    Frame in;
    Status st = conn.RecvFrame(&in);
    if (!st.ok()) {
      close_all();
      return st;
    }
    if (in.type == FrameType::kSnapChunk) {
      SnapChunkMsg chunk;
      st = chunk.Decode(in.payload);
      if (!st.ok()) {
        close_all();
        return st;
      }
      if (chunk.shard >= n || fds[chunk.shard] < 0) {
        close_all();
        return Status::IoError("repl follower: chunk for unannounced shard");
      }
      const int err =
          PwriteFull(fds[chunk.shard], chunk.data.data(), chunk.data.size(),
                     static_cast<off_t>(chunk.offset));
      if (err != 0) {
        close_all();
        return Status::IoError("repl follower: pwrite snapshot chunk: " +
                               std::string(::strerror(err)));
      }
      std::lock_guard<std::mutex> lock(mu_);
      snap_bytes_[chunk.shard] = std::max(
          snap_bytes_[chunk.shard], chunk.offset + chunk.data.size());
      counters_.snapshot_bytes += chunk.data.size();
      continue;
    }
    if (in.type != FrameType::kSnapEnd) {
      close_all();
      return Status::IoError(
          "repl follower: unexpected frame inside snapshot stream");
    }
    SnapEndMsg end;
    st = end.Decode(in.payload);
    if (!st.ok()) {
      close_all();
      return st;
    }
    for (std::uint32_t s = 0; s < n; ++s) {
      if (fds[s] >= 0) ::fsync(fds[s]);
    }
    close_all();

    // Stray WAL segments from any earlier life of this directory would
    // make Recover() see a tail the checkpoint does not cover.
    for (std::uint32_t s = 0; s < n; ++s) {
      std::error_code ec;
      fs::remove(options_.storage_dir + "/shard-" + std::to_string(s) +
                     ".wal",
                 ec);
    }

    engine::EngineOptions eo = options_.engine;
    eo.storage_dir = options_.storage_dir;
    eo.durability = engine::Durability::kCheckpoint;
    // eo.mvcc passes through from the template: a bootstrapped MVCC
    // replica publishes epoch views at Recover and after every applied
    // tail record, so its readers never block on the apply stream.
    auto recovered = engine::ShardedTopkEngine::Recover(eo);
    if (!recovered.ok()) {
      // Corrupt transfer: force a clean refetch next session instead of
      // resuming offsets into a poisoned file.
      std::lock_guard<std::mutex> lock(mu_);
      snap_bytes_.assign(n, 0);
      snap_epoch_ = 0;
      return recovered.status();
    }
    // Positions and counters first, engine swap LAST: anyone who can
    // already query the new state must also see stats that reflect the
    // completed install.
    {
      std::lock_guard<std::mutex> lock(mu_);
      applied_ = end.covered_lsns;
      applied_.resize(n, 0);
      ++counters_.bootstraps;
      // snap_epoch_/snap_bytes_ describe a PARTIAL, not-yet-installed
      // transfer only. The installed files now belong to the live engine
      // (which mutates them), so their byte counts are useless as resume
      // offsets — and a stale epoch match here would make a future
      // re-bootstrap skip bytes it actually needs.
      snap_epoch_ = 0;
      snap_bytes_.assign(n, 0);
    }
    c_bootstraps_->Add(1);
    {
      std::lock_guard<std::mutex> lock(engine_mu_);
      engine_ = std::shared_ptr<engine::ShardedTopkEngine>(
          std::move(*recovered));
    }
    SetState(State::kStreaming);
    return Status::Ok();
  }
}

Status Follower::ApplyTail(const TailMsg& tail) {
  std::shared_ptr<engine::ShardedTopkEngine> e;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    e = engine_;
  }
  if (e == nullptr) {
    return Status::Internal(
        "repl follower: tail record before any bootstrap");
  }
  const std::uint32_t n = options_.engine.num_shards;
  if (tail.shard >= n) {
    return Status::IoError("repl follower: tail shard out of range");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tail.lsn <= applied_[tail.shard]) return Status::Ok();  // duplicate
  }
  if (tail.payload.size() % sizeof(em::word_t) != 0) {
    return Status::IoError("repl follower: tail payload not word-aligned");
  }
  std::vector<em::word_t> words(tail.payload.size() / sizeof(em::word_t));
  if (!words.empty()) {
    std::memcpy(words.data(), tail.payload.data(), tail.payload.size());
  }
  TOKRA_ASSIGN_OR_RETURN(const std::vector<engine::WalOp> ops,
                         engine::DecodeWalOps(words));
  std::uint64_t errs = 0;
  for (const engine::WalOp& op : ops) {
    const Status st = op.insert ? e->Insert(op.p) : e->Delete(op.p);
    // A rejected redo op means this replica diverged (it should mirror
    // the primary, whose engine accepted the op). Count it loudly and
    // keep going: convergence checks compare fingerprints anyway.
    if (!st.ok()) ++errs;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    applied_[tail.shard] = tail.lsn;
    if (head_lsns_[tail.shard] < tail.lsn) head_lsns_[tail.shard] = tail.lsn;
    ++counters_.tail_records;
    counters_.tail_ops += ops.size();
    counters_.apply_errors += errs;
  }
  c_tail_records_->Add(1);
  return Status::Ok();
}

}  // namespace tokra::repl
