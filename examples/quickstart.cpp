// Quickstart: build a TopkIndex, update it, run top-k range queries, and
// inspect the I/O accounting.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/topk_index.h"
#include "em/pager.h"
#include "util/random.h"

int main() {
  using namespace tokra;

  // An EM machine: 256-word blocks, a 32-frame buffer pool (M = 32B words).
  em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 32});

  // 10,000 random points: x in [0, 1000), distinct scores in [0, 1).
  Rng rng(42);
  auto xs = rng.DistinctDoubles(10000, 0.0, 1000.0);
  auto scores = rng.DistinctDoubles(10000, 0.0, 1.0);
  std::vector<Point> points(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    points[i] = Point{xs[i], scores[i]};
  }

  auto built = core::TopkIndex::Build(&pager, points);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto& index = *built;
  std::printf("built index over %llu points (%llu blocks = O(n/B) space)\n",
              static_cast<unsigned long long>(index->size()),
              static_cast<unsigned long long>(pager.BlocksInUse()));

  // Top-5 in x-range [200, 400], measured cold.
  pager.DropCache();
  em::IoStats before = pager.stats();
  auto top = index->TopK(200.0, 400.0, 5);
  em::IoStats cost = pager.stats() - before;
  std::printf("\ntop-5 in [200, 400]  (%llu I/Os):\n",
              static_cast<unsigned long long>(cost.TotalIos()));
  for (const Point& p : *top) {
    std::printf("  x=%8.3f  score=%.6f\n", p.x, p.score);
  }

  // Updates are first-class: insert a high scorer, delete the old champion.
  Point hot{300.5, 1.5};
  index->Insert(hot);
  auto again = index->TopK(200.0, 400.0, 3);
  std::printf("\nafter inserting (300.5, 1.5), top-3:\n");
  for (const Point& p : *again) {
    std::printf("  x=%8.3f  score=%.6f\n", p.x, p.score);
  }
  index->Delete(hot);

  // Large k automatically routes to the Lemma 1 structure.
  core::TopkQueryStats stats;
  auto big = index->TopK(0.0, 1000.0, 5000, &stats);
  std::printf("\nk=5000 -> %zu results via %s path\n", big->size(),
              stats.path == core::QueryPath::kPilotDirect ? "pilot-direct"
                                                          : "threshold");
  return 0;
}
