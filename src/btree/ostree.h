// External order-statistic B-tree.
//
// A block-resident B+-tree over entries (key, aux) with distinct double keys,
// augmented with subtree counts so that descending rank and rank-selection
// run in O(lg_B n) I/Os. This is the utility tree the paper leans on
// throughout Sections 3-4: "B-tree of G", "B-tree on G_i", the score B-trees
// of the update algorithm, and the rank->element conversion ("we index all
// the elements of G with a B-tree, which supports such a conversion in
// O(lg_B(fl)) I/Os").
//
// All node state lives in pager blocks (one block per node). The tree itself
// is a 2-word handle (root id, size) that owners persist wherever they like,
// so trees can be nested inside other structures' nodes.
//
// Rank convention (paper, Section 3.1): the rank of e in L is
// |{e' in L : e' >= e}| — the largest element has rank 1.

#ifndef TOKRA_BTREE_OSTREE_H_
#define TOKRA_BTREE_OSTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "em/pager.h"
#include "util/status.h"

namespace tokra::btree {

/// One element of the tree: a key and an auxiliary value (payload).
struct Entry {
  double key = 0;
  double aux = 0;
};

/// Persistent handle: everything needed to reopen a tree. Two words.
struct OsTreeRef {
  em::BlockId root = em::kNullBlock;
  std::uint64_t size = 0;
};

/// The order-statistic B-tree. A lightweight handle over pager state; copying
/// the object does NOT copy the tree (it aliases it), mirroring the RocksDB
/// idiom of cheap handle objects over shared storage.
class OsTree {
 public:
  /// Creates an empty tree (allocates a root leaf).
  static OsTree Create(em::Pager* pager);

  /// Bulk-loads from entries sorted ascending by key (distinct). O(n/B) I/Os.
  static OsTree BulkLoad(em::Pager* pager, std::span<const Entry> sorted);

  /// Reopens an existing tree.
  OsTree(em::Pager* pager, OsTreeRef ref) : pager_(pager), ref_(ref) {}

  /// Current persistent handle (changes after updates; re-persist it).
  OsTreeRef ref() const { return ref_; }
  std::uint64_t size() const { return ref_.size; }
  bool empty() const { return ref_.size == 0; }

  /// Inserts (key, aux). kAlreadyExists if key present. O(lg_B n) I/Os.
  Status Insert(double key, double aux);

  /// Removes key. kNotFound if absent. O(lg_B n) I/Os.
  Status Delete(double key);

  /// True iff key present. O(lg_B n) I/Os.
  bool Contains(double key) const;

  /// Aux value of key. O(lg_B n) I/Os.
  StatusOr<double> FindAux(double key) const;

  /// |{k' : k' >= key}| (strict=false) or |{k' : k' > key}| (strict=true).
  /// O(lg_B n) I/Os.
  std::uint64_t CountGreaterEq(double key, bool strict = false) const;

  /// Descending rank of `key` (the paper's rank): number of keys >= key.
  std::uint64_t RankDesc(double key) const { return CountGreaterEq(key); }

  /// Number of keys in [lo, hi]. O(lg_B n) I/Os.
  std::uint64_t CountInRange(double lo, double hi) const;

  /// r-th largest entry, r in [1, size]. O(lg_B n) I/Os.
  StatusOr<Entry> SelectDesc(std::uint64_t r) const;

  /// r-th smallest entry, r in [1, size]. O(lg_B n) I/Os.
  StatusOr<Entry> SelectAsc(std::uint64_t r) const;

  /// r-th largest entry among keys in [lo, hi]. O(lg_B n) I/Os.
  StatusOr<Entry> SelectDescInRange(double lo, double hi,
                                    std::uint64_t r) const;

  /// Largest / smallest entry. O(lg_B n) I/Os.
  StatusOr<Entry> Max() const;
  StatusOr<Entry> Min() const;

  /// Appends all entries with key in [lo, hi], ascending. O(lg_B n + t/B).
  void ScanRange(double lo, double hi, std::vector<Entry>* out) const;

  /// Appends all entries ascending. O(n/B) I/Os.
  void ScanAll(std::vector<Entry>* out) const;

  /// Frees every block of the tree; the handle becomes empty. O(n/B) I/Os.
  void DestroyAll();

  /// Full-structure validation (order, counts, fill factors). Test-only
  /// helper; cost O(n) pins.
  void CheckInvariants() const;

 private:
  OsTree(em::Pager* pager) : pager_(pager) {}

  // --- node layout ----------------------------------------------------
  // Internal block: [0]=0, [1]=f (#children),
  //   [2,          2+C)   child block ids
  //   [2+C,        2+2C)  subtree counts
  //   [2+2C,       2+3C)  low-key separators (bit-cast doubles); slot 0 unused
  // Leaf block:    [0]=1, [1]=m (#entries), [2]=next-leaf id,
  //   [3,          3+L)   keys (bit-cast doubles)
  //   [3+L,        3+2L)  aux  (bit-cast doubles)
  std::uint32_t InternalCap() const { return (pager_->B() - 2) / 3; }
  std::uint32_t LeafCap() const { return (pager_->B() - 3) / 2; }
  std::uint32_t InternalMin() const { return InternalCap() / 4; }
  std::uint32_t LeafMin() const { return LeafCap() / 4; }

  struct SplitResult {
    em::BlockId right;
    std::uint64_t right_count;
    double separator;
  };

  bool IsFull(em::BlockId id) const;
  void SplitRoot();
  SplitResult SplitChild(em::PageRef& parent, std::uint32_t i);
  void InsertNonfull(em::BlockId id, double key, double aux);
  void DeleteRec(em::BlockId id, double key);
  // Ensures child i of `parent` is above minimum fill before descending.
  // Returns the (possibly changed) index of the child that covers `key`.
  std::uint32_t FixChild(em::PageRef& parent, std::uint32_t i);
  void CheckRec(em::BlockId id, bool is_root, std::uint64_t expect_count,
                bool has_lo, double lo) const;

  em::Pager* pager_;
  OsTreeRef ref_;
};

}  // namespace tokra::btree

#endif  // TOKRA_BTREE_OSTREE_H_
