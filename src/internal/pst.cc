#include "internal/pst.h"

#include <algorithm>
#include <limits>

#include "select/heap_view.h"
#include "util/check.h"

namespace tokra::internal {

std::uint32_t TreapPst::NewNode(const Point& p) {
  if (!free_.empty()) {
    std::uint32_t id = free_.back();
    free_.pop_back();
    nodes_[id] = Node{p, kNil, kNil, 1};
    return id;
  }
  nodes_.push_back(Node{p, kNil, kNil, 1});
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void TreapPst::FreeNode(std::uint32_t id) { free_.push_back(id); }

void TreapPst::Pull(std::uint32_t id) {
  Node& n = nodes_[id];
  n.count = 1;
  if (n.left != kNil) n.count += nodes_[n.left].count;
  if (n.right != kNil) n.count += nodes_[n.right].count;
}

void TreapPst::Split(std::uint32_t t, double x, bool inclusive,
                     std::uint32_t* lo, std::uint32_t* hi) {
  if (t == kNil) {
    *lo = *hi = kNil;
    return;
  }
  Node& n = nodes_[t];
  bool goes_low = inclusive ? (n.p.x <= x) : (n.p.x < x);
  if (goes_low) {
    *lo = t;
    Split(n.right, x, inclusive, &nodes_[t].right, hi);
    Pull(t);
  } else {
    *hi = t;
    Split(n.left, x, inclusive, lo, &nodes_[t].left);
    Pull(t);
  }
}

std::uint32_t TreapPst::Merge(std::uint32_t a, std::uint32_t b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  // Higher score on top keeps the score max-heap order.
  if (nodes_[a].p.score > nodes_[b].p.score) {
    nodes_[a].right = Merge(nodes_[a].right, b);
    Pull(a);
    return a;
  }
  nodes_[b].left = Merge(a, nodes_[b].left);
  Pull(b);
  return b;
}

Status TreapPst::Insert(const Point& p) {
  // Reject duplicate x (BST keys must be distinct).
  std::uint32_t cur = root_;
  while (cur != kNil) {
    if (nodes_[cur].p.x == p.x) return Status::AlreadyExists("duplicate x");
    cur = p.x < nodes_[cur].p.x ? nodes_[cur].left : nodes_[cur].right;
  }
  std::uint32_t lo, hi;
  Split(root_, p.x, /*inclusive=*/true, &lo, &hi);
  root_ = Merge(Merge(lo, NewNode(p)), hi);
  ++size_;
  return Status::Ok();
}

Status TreapPst::Delete(double x) {
  std::uint32_t lo, mid, hi;
  Split(root_, x, /*inclusive=*/false, &lo, &mid);   // lo: < x
  std::uint32_t rest;
  Split(mid, x, /*inclusive=*/true, &mid, &rest);    // mid: == x
  if (mid == kNil) {
    root_ = Merge(lo, rest);
    return Status::NotFound("x not present");
  }
  TOKRA_CHECK(nodes_[mid].count == 1);
  FreeNode(mid);
  hi = rest;
  root_ = Merge(lo, hi);
  --size_;
  return Status::Ok();
}

void TreapPst::Report3Sided(double x1, double x2, double y,
                            std::vector<Point>* out) {
  std::uint32_t lo, mid, hi;
  Split(root_, x1, /*inclusive=*/false, &lo, &mid);
  Split(mid, x2, /*inclusive=*/true, &mid, &hi);
  // `mid` holds exactly S ∩ [x1, x2]; heap order prunes at score < y.
  std::vector<std::uint32_t> stack;
  if (mid != kNil) stack.push_back(mid);
  while (!stack.empty()) {
    std::uint32_t id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (n.p.score < y) continue;  // whole subtree is below y
    out->push_back(n.p);
    if (n.left != kNil) stack.push_back(n.left);
    if (n.right != kNil) stack.push_back(n.right);
  }
  root_ = Merge(Merge(lo, mid), hi);
}

std::vector<Point> TreapPst::TopK(double x1, double x2, std::size_t k,
                                  select::SelectStats* stats) {
  std::uint32_t lo, mid, hi;
  Split(root_, x1, /*inclusive=*/false, &lo, &mid);
  Split(mid, x2, /*inclusive=*/true, &mid, &hi);

  // Local heap view over the `mid` subtreap.
  class View : public select::HeapView {
   public:
    View(const std::vector<Node>& nodes, std::uint32_t root)
        : nodes_(nodes), root_(root) {}
    void Roots(std::vector<select::HeapNode>* out) const override {
      if (root_ != kNil) {
        out->push_back(select::HeapNode{root_, nodes_[root_].p.score});
      }
    }
    void Children(select::NodeId id,
                  std::vector<select::HeapNode>* out) const override {
      const Node& n = nodes_[static_cast<std::uint32_t>(id)];
      if (n.left != kNil) {
        out->push_back(select::HeapNode{n.left, nodes_[n.left].p.score});
      }
      if (n.right != kNil) {
        out->push_back(select::HeapNode{n.right, nodes_[n.right].p.score});
      }
    }

   private:
    const std::vector<Node>& nodes_;
    std::uint32_t root_;
  };

  View view(nodes_, mid);
  std::vector<select::HeapNode> top =
      select::SelectTop(view, k, select::Strategy::kBestFirst, stats);
  std::vector<Point> out;
  out.reserve(top.size());
  for (const select::HeapNode& n : top) {
    out.push_back(nodes_[static_cast<std::uint32_t>(n.id)].p);
  }
  std::sort(out.begin(), out.end(), ByScoreDesc{});

  root_ = Merge(Merge(lo, mid), hi);
  return out;
}

void TreapPst::CheckRec(std::uint32_t id, double lo, double hi,
                        double max_score, std::uint32_t* count) const {
  if (id == kNil) return;
  const Node& n = nodes_[id];
  TOKRA_CHECK(n.p.x > lo && n.p.x < hi);
  TOKRA_CHECK(n.p.score <= max_score);
  std::uint32_t c = 1, cl = 0, cr = 0;
  CheckRec(n.left, lo, n.p.x, n.p.score, &cl);
  CheckRec(n.right, n.p.x, hi, n.p.score, &cr);
  c += cl + cr;
  TOKRA_CHECK_EQ(c, n.count);
  *count = c;
}

void TreapPst::CheckInvariants() const {
  std::uint32_t count = 0;
  CheckRec(root_, -std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(), &count);
  TOKRA_CHECK_EQ(count, size_);
}

}  // namespace tokra::internal
