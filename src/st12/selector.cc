#include "st12/selector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "em/paged_array.h"
#include "sketch/select7.h"
#include "util/bits.h"
#include "util/check.h"

namespace tokra::st12 {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Meta block words.
constexpr std::size_t kMRoot = 0;
constexpr std::size_t kMCount = 1;
constexpr std::size_t kMFanout = 2;
constexpr std::size_t kMLeafCap = 3;
constexpr std::size_t kMUpdates = 4;

// Node header words.
constexpr std::size_t kHKind = 0;   // 0 internal, 1 leaf
constexpr std::size_t kHLevel = 1;
constexpr std::size_t kHCount = 2;
constexpr std::size_t kHLeafM = 3;
constexpr std::size_t kHLeafNPB = 4;
constexpr std::size_t kHLeafPIds = 5;
constexpr std::size_t kHIntF = 3;
constexpr std::size_t kHIntNCR = 4;
constexpr std::size_t kHIntNSK = 5;
constexpr std::size_t kHIntIds = 6;  // child-rec blocks, then sketch blocks

// Sketch levels capacity per child (enough for 2^33 points per subtree).
constexpr std::uint32_t kJCap = 34;

struct ChildRec {
  em::BlockId id;
  std::uint64_t lo_bits, hi_bits;
  std::uint64_t count;
  std::uint64_t counter;  // updates below since last full repair of level j
  std::uint64_t sk_len;
  std::uint64_t pad0, pad1;

  double lo() const { return std::bit_cast<double>(lo_bits); }
  double hi() const { return std::bit_cast<double>(hi_bits); }
};
static_assert(sizeof(ChildRec) == 8 * sizeof(std::uint64_t));

std::uint32_t JOf(std::uint64_t count) {
  return count == 0 ? 0 : FloorLog2(count) + 1;
}

}  // namespace

std::uint64_t ShengTaoSelector::MetaGet(std::size_t w) const {
  em::PageRef mp = pager_->Fetch(meta_);
  return mp.Get(w);
}
void ShengTaoSelector::MetaSet(std::size_t w, std::uint64_t v) {
  em::PageRef mp = pager_->Fetch(meta_);
  mp.Set(w, v);
}
std::uint64_t ShengTaoSelector::size() const { return MetaGet(kMCount); }

// --- node access helpers ---------------------------------------------

namespace {

struct NodeBlocks {
  bool leaf;
  std::uint32_t level;
  std::uint64_t count;
  std::uint32_t fill;  // m (leaf) or f (internal)
  std::vector<em::BlockId> a;  // point blocks (leaf) or child-rec blocks
  std::vector<em::BlockId> b;  // sketch blocks (internal only)
};

NodeBlocks ReadNode(em::Pager* pager, em::BlockId id) {
  em::PageRef h = pager->Fetch(id);
  NodeBlocks nb;
  nb.leaf = h.Get(kHKind) == 1;
  nb.level = static_cast<std::uint32_t>(h.Get(kHLevel));
  nb.count = h.Get(kHCount);
  if (nb.leaf) {
    nb.fill = static_cast<std::uint32_t>(h.Get(kHLeafM));
    std::uint32_t npb = static_cast<std::uint32_t>(h.Get(kHLeafNPB));
    for (std::uint32_t i = 0; i < npb; ++i) {
      nb.a.push_back(h.Get(kHLeafPIds + i));
    }
  } else {
    nb.fill = static_cast<std::uint32_t>(h.Get(kHIntF));
    std::uint32_t ncr = static_cast<std::uint32_t>(h.Get(kHIntNCR));
    std::uint32_t nsk = static_cast<std::uint32_t>(h.Get(kHIntNSK));
    for (std::uint32_t i = 0; i < ncr; ++i) {
      nb.a.push_back(h.Get(kHIntIds + i));
    }
    for (std::uint32_t i = 0; i < nsk; ++i) {
      nb.b.push_back(h.Get(kHIntIds + ncr + i));
    }
  }
  return nb;
}

}  // namespace

// --- construction -------------------------------------------------------

em::BlockId ShengTaoSelector::BuildNode(const std::vector<Point>& by_x,
                                        std::uint32_t level, double lo,
                                        double hi) {
  std::uint32_t f = static_cast<std::uint32_t>(MetaGet(kMFanout));
  std::uint32_t leaf_cap = static_cast<std::uint32_t>(MetaGet(kMLeafCap));
  em::BlockId id = pager_->Allocate();
  if (level == 0) {
    std::uint32_t npb = static_cast<std::uint32_t>(
        em::PagedArray<Point>::BlocksFor(B(), 4 * leaf_cap));
    TOKRA_CHECK(kHLeafPIds + npb <= B());
    std::vector<em::BlockId> pb(npb);
    {
      em::PageRef h = pager_->Create(id);
      h.Set(kHKind, 1);
      h.Set(kHLevel, 0);
      h.Set(kHCount, by_x.size());
      h.Set(kHLeafM, by_x.size());
      h.Set(kHLeafNPB, npb);
      for (std::uint32_t i = 0; i < npb; ++i) {
        pb[i] = pager_->Allocate();
        h.Set(kHLeafPIds + i, pb[i]);
        em::PageRef zero = pager_->Create(pb[i]);
      }
    }
    if (!by_x.empty()) {
      em::PagedArray<Point> arr(pager_, pb);
      TOKRA_CHECK(by_x.size() <= arr.capacity());
      arr.WriteRange(0, by_x);
    }
    return id;
  }

  // Children: chunk so each child (level-1 subtree) holds about target.
  std::uint64_t target = leaf_cap / 2;
  for (std::uint32_t i = 1; i < level; ++i) target *= f;
  std::size_t n = by_x.size();
  std::size_t nf = std::max<std::size_t>(1, CeilDiv(n, target));
  nf = std::min<std::size_t>(nf, 2 * f);

  std::vector<ChildRec> crs(nf);
  std::vector<std::vector<double>> child_scores(nf);
  std::size_t pos = 0;
  for (std::size_t c = 0; c < nf; ++c) {
    std::size_t take = CeilDiv(n - pos, nf - c);
    std::vector<Point> chunk(by_x.begin() + pos, by_x.begin() + pos + take);
    double clo = c == 0 ? lo : by_x[pos].x;
    double chi = c == nf - 1 ? hi : by_x[pos + take].x;
    crs[c].id = BuildNode(chunk, level - 1, clo, chi);
    crs[c].lo_bits = std::bit_cast<std::uint64_t>(clo);
    crs[c].hi_bits = std::bit_cast<std::uint64_t>(chi);
    crs[c].count = take;
    crs[c].counter = 0;
    crs[c].sk_len = JOf(take);
    for (const Point& p : chunk) child_scores[c].push_back(p.score);
    std::sort(child_scores[c].begin(), child_scores[c].end(),
              std::greater<>());
    pos += take;
  }

  std::uint32_t ncr = static_cast<std::uint32_t>(
      em::PagedArray<ChildRec>::BlocksFor(B(), 2 * f));
  std::uint32_t nsk = static_cast<std::uint32_t>(
      em::PagedArray<double>::BlocksFor(B(), 2 * f * kJCap));
  TOKRA_CHECK(kHIntIds + ncr + nsk <= B());
  std::vector<em::BlockId> crb(ncr), skb(nsk);
  {
    em::PageRef h = pager_->Create(id);
    h.Set(kHKind, 0);
    h.Set(kHLevel, level);
    h.Set(kHCount, n);
    h.Set(kHIntF, nf);
    h.Set(kHIntNCR, ncr);
    h.Set(kHIntNSK, nsk);
    for (std::uint32_t i = 0; i < ncr; ++i) {
      crb[i] = pager_->Allocate();
      h.Set(kHIntIds + i, crb[i]);
      em::PageRef zero = pager_->Create(crb[i]);
    }
    for (std::uint32_t i = 0; i < nsk; ++i) {
      skb[i] = pager_->Allocate();
      h.Set(kHIntIds + ncr + i, skb[i]);
      em::PageRef zero = pager_->Create(skb[i]);
    }
  }
  em::PagedArray<ChildRec> crarr(pager_, crb);
  crarr.WriteRange(0, crs);
  em::PagedArray<double> skarr(pager_, skb);
  for (std::size_t c = 0; c < nf; ++c) {
    sketch::LogSketch s = sketch::LogSketch::Build(child_scores[c]);
    for (std::uint32_t j = 1; j <= s.levels(); ++j) {
      skarr.Set(static_cast<std::uint32_t>(c) * kJCap + (j - 1),
                s.pivot(j).value);
    }
  }
  return id;
}

ShengTaoSelector ShengTaoSelector::Build(em::Pager* pager,
                                         std::vector<Point> points,
                                         Params params) {
  TOKRA_CHECK(pager->B() >= 64);
  std::uint32_t f = params.fanout != 0
                        ? params.fanout
                        : std::max<std::uint32_t>(4, pager->B() / 4);
  std::uint32_t leaf_cap =
      params.leaf_cap != 0 ? params.leaf_cap : 2 * pager->B();
  em::BlockId meta = pager->Allocate();
  {
    em::PageRef mp = pager->Create(meta);
    mp.Set(kMFanout, f);
    mp.Set(kMLeafCap, leaf_cap);
    mp.Set(kMCount, points.size());
    mp.Set(kMUpdates, 0);
  }
  ShengTaoSelector s(pager, meta);
  std::sort(points.begin(), points.end(), ByXAsc{});
  // Height: smallest h with leaf_cap/2 * f^h >= n, at least 1.
  std::uint32_t h = 1;
  std::uint64_t cap = static_cast<std::uint64_t>(leaf_cap) / 2 * f;
  while (cap < points.size()) {
    cap *= f;
    ++h;
  }
  em::BlockId root = s.BuildNode(points, h, -kInf, kInf);
  s.MetaSet(kMRoot, root);
  return s;
}

ShengTaoSelector ShengTaoSelector::Open(em::Pager* pager, em::BlockId meta) {
  return ShengTaoSelector(pager, meta);
}

void ShengTaoSelector::FreeNode(em::BlockId id) {
  NodeBlocks nb = ReadNode(pager_, id);
  if (!nb.leaf) {
    em::PagedArray<ChildRec> crarr(pager_, nb.a);
    for (std::uint32_t c = 0; c < nb.fill; ++c) {
      FreeNode(crarr.Get(c).id);
    }
    for (em::BlockId b : nb.b) pager_->Free(b);
  }
  for (em::BlockId b : nb.a) pager_->Free(b);
  pager_->Free(id);
}

void ShengTaoSelector::DestroyAll() {
  FreeNode(MetaGet(kMRoot));
  pager_->Free(meta_);
  meta_ = em::kNullBlock;
}

void ShengTaoSelector::CollectPoints(em::BlockId id,
                                     std::vector<Point>* out) const {
  NodeBlocks nb = ReadNode(pager_, id);
  if (nb.leaf) {
    em::PagedArray<Point> arr(pager_, nb.a);
    std::vector<Point> pts;
    arr.ReadRange(0, nb.fill, &pts);
    out->insert(out->end(), pts.begin(), pts.end());
    return;
  }
  em::PagedArray<ChildRec> crarr(pager_, nb.a);
  for (std::uint32_t c = 0; c < nb.fill; ++c) {
    CollectPoints(crarr.Get(c).id, out);
  }
}

void ShengTaoSelector::MaybeGlobalRebuild() {
  std::uint64_t updates = MetaGet(kMUpdates);
  std::uint64_t n = MetaGet(kMCount);
  if (updates < 16 || 2 * updates < std::max<std::uint64_t>(n, 1)) return;
  std::vector<Point> all;
  CollectPoints(MetaGet(kMRoot), &all);
  FreeNode(MetaGet(kMRoot));
  std::sort(all.begin(), all.end(), ByXAsc{});
  std::uint32_t f = static_cast<std::uint32_t>(MetaGet(kMFanout));
  std::uint32_t leaf_cap = static_cast<std::uint32_t>(MetaGet(kMLeafCap));
  std::uint32_t h = 1;
  std::uint64_t cap = static_cast<std::uint64_t>(leaf_cap) / 2 * f;
  while (cap < all.size()) {
    cap *= f;
    ++h;
  }
  MetaSet(kMRoot, BuildNode(all, h, -kInf, kInf));
  MetaSet(kMUpdates, 0);
}

// --- sketch repair ----------------------------------------------------

void ShengTaoSelector::RepairChildSketch(em::BlockId id, std::uint32_t ci,
                                         std::uint32_t upto) {
  NodeBlocks nb = ReadNode(pager_, id);
  em::PagedArray<ChildRec> crarr(pager_, nb.a);
  ChildRec cr = crarr.Get(ci);
  std::uint32_t len = JOf(cr.count);
  upto = std::min(upto, len);
  em::PagedArray<double> skarr(pager_, nb.b);
  for (std::uint32_t j = 1; j <= upto; ++j) {
    std::uint64_t lo = std::uint64_t{1} << (j - 1);
    std::uint64_t target = std::min<std::uint64_t>(cr.count, lo + lo / 2);
    // Recursive approximate selection inside the child's slab — the repair
    // whose O(lg_B n) cost, summed over sketch levels and path nodes, yields
    // the baseline's Theta(lg^2_B n) amortized update bound.
    auto res = SelectApprox(cr.lo(), std::nextafter(cr.hi(), -kInf), target);
    if (res.ok()) {
      skarr.Set(ci * kJCap + (j - 1), *res);
    }
  }
  cr.sk_len = len;
  cr.counter = 0;
  crarr.Set(ci, cr);
}

// --- updates -------------------------------------------------------------

Status ShengTaoSelector::Insert(const Point& p) {
  MaybeGlobalRebuild();
  em::BlockId cur = MetaGet(kMRoot);
  while (true) {
    NodeBlocks nb = ReadNode(pager_, cur);
    {
      em::PageRef h = pager_->Fetch(cur);
      h.Set(kHCount, nb.count + 1);
    }
    if (nb.leaf) {
      em::PagedArray<Point> arr(pager_, nb.a);
      if (nb.fill >= arr.capacity()) {
        // Leaf at physical capacity: force a rebuild and retry. The counts
        // incremented on the way down die with the old tree.
        {
          em::PageRef h = pager_->Fetch(cur);
          h.Set(kHCount, nb.count);  // undo
        }
        MetaSet(kMUpdates, std::max<std::uint64_t>(MetaGet(kMCount), 16));
        MaybeGlobalRebuild();
        cur = MetaGet(kMRoot);
        continue;
      }
      arr.Set(nb.fill, p);
      em::PageRef h = pager_->Fetch(cur);
      h.Set(kHLeafM, nb.fill + 1);
      break;
    }
    em::PagedArray<ChildRec> crarr(pager_, nb.a);
    std::uint32_t ci = 0;
    for (std::uint32_t c = 0; c < nb.fill; ++c) {
      ChildRec cr = crarr.Get(c);
      if (p.x >= cr.lo() && p.x < cr.hi()) {
        ci = c;
        break;
      }
    }
    ChildRec cr = crarr.Get(ci);
    cr.count += 1;
    cr.counter += 1;
    crarr.Set(ci, cr);
    // Drift repairs: level j is refreshed every 2^(j-2) updates through
    // this child (levels 1-2 every update).
    std::uint32_t upto = 0;
    for (std::uint32_t j = 1; j <= JOf(cr.count); ++j) {
      std::uint64_t period = j <= 2 ? 1 : (std::uint64_t{1} << (j - 2));
      if (cr.counter % period == 0) upto = j;
    }
    if (upto > 0 || cr.sk_len != JOf(cr.count)) {
      RepairChildSketch(cur, ci, std::max(upto, 1u));
    }
    cur = cr.id;
  }
  MetaSet(kMCount, MetaGet(kMCount) + 1);
  MetaSet(kMUpdates, MetaGet(kMUpdates) + 1);
  return Status::Ok();
}

Status ShengTaoSelector::Delete(const Point& p) {
  // Verify presence first (read-only descent), then mutate.
  {
    em::BlockId cur = MetaGet(kMRoot);
    while (true) {
      NodeBlocks nb = ReadNode(pager_, cur);
      if (nb.leaf) {
        em::PagedArray<Point> arr(pager_, nb.a);
        std::vector<Point> pts;
        arr.ReadRange(0, nb.fill, &pts);
        if (std::find(pts.begin(), pts.end(), p) == pts.end()) {
          return Status::NotFound("point not present");
        }
        break;
      }
      em::PagedArray<ChildRec> crarr(pager_, nb.a);
      for (std::uint32_t c = 0; c < nb.fill; ++c) {
        ChildRec cr = crarr.Get(c);
        if (p.x >= cr.lo() && p.x < cr.hi()) {
          cur = cr.id;
          break;
        }
      }
    }
  }
  MaybeGlobalRebuild();
  em::BlockId cur = MetaGet(kMRoot);
  while (true) {
    NodeBlocks nb = ReadNode(pager_, cur);
    {
      em::PageRef h = pager_->Fetch(cur);
      h.Set(kHCount, nb.count - 1);
    }
    if (nb.leaf) {
      em::PagedArray<Point> arr(pager_, nb.a);
      std::vector<Point> pts;
      arr.ReadRange(0, nb.fill, &pts);
      auto it = std::find(pts.begin(), pts.end(), p);
      TOKRA_CHECK(it != pts.end());
      *it = pts.back();
      pts.pop_back();
      if (!pts.empty()) arr.WriteRange(0, pts);
      em::PageRef h = pager_->Fetch(cur);
      h.Set(kHLeafM, pts.size());
      break;
    }
    em::PagedArray<ChildRec> crarr(pager_, nb.a);
    std::uint32_t ci = 0;
    for (std::uint32_t c = 0; c < nb.fill; ++c) {
      ChildRec cr = crarr.Get(c);
      if (p.x >= cr.lo() && p.x < cr.hi()) {
        ci = c;
        break;
      }
    }
    ChildRec cr = crarr.Get(ci);
    cr.count -= 1;
    cr.counter += 1;
    crarr.Set(ci, cr);
    std::uint32_t upto = 0;
    for (std::uint32_t j = 1; j <= JOf(cr.count); ++j) {
      std::uint64_t period = j <= 2 ? 1 : (std::uint64_t{1} << (j - 2));
      if (cr.counter % period == 0) upto = j;
    }
    if (upto > 0 || cr.sk_len != JOf(cr.count)) {
      RepairChildSketch(cur, ci, std::max(upto, 1u));
    }
    cur = cr.id;
  }
  MetaSet(kMCount, MetaGet(kMCount) - 1);
  MetaSet(kMUpdates, MetaGet(kMUpdates) + 1);
  return Status::Ok();
}

// --- queries --------------------------------------------------------

void ShengTaoSelector::GatherSketches(
    em::BlockId id, double x1, double x2,
    std::vector<sketch::LogSketch>* sketches,
    std::vector<Point>* boundary) const {
  NodeBlocks nb = ReadNode(pager_, id);
  if (nb.leaf) {
    em::PagedArray<Point> arr(pager_, nb.a);
    std::vector<Point> pts;
    arr.ReadRange(0, nb.fill, &pts);
    for (const Point& p : pts) {
      if (p.x >= x1 && p.x <= x2) boundary->push_back(p);
    }
    return;
  }
  em::PagedArray<ChildRec> crarr(pager_, nb.a);
  em::PagedArray<double> skarr(pager_, nb.b);
  for (std::uint32_t c = 0; c < nb.fill; ++c) {
    ChildRec cr = crarr.Get(c);
    if (cr.hi() <= x1 || cr.lo() > x2) continue;  // disjoint
    if (cr.lo() >= x1 && cr.hi() <= x2) {
      // Covered: contribute the child's sketch.
      if (cr.count == 0) continue;
      std::vector<double> pivots;
      for (std::uint32_t j = 1; j <= cr.sk_len; ++j) {
        pivots.push_back(skarr.Get(c * kJCap + (j - 1)));
      }
      sketches->push_back(
          sketch::LogSketch::FromPivots(std::move(pivots), cr.count));
      continue;
    }
    GatherSketches(cr.id, x1, x2, sketches, boundary);
  }
}

bool ShengTaoSelector::Contains(const Point& p) const {
  em::BlockId cur = MetaGet(kMRoot);
  while (true) {
    NodeBlocks nb = ReadNode(pager_, cur);
    if (nb.leaf) {
      em::PagedArray<Point> arr(pager_, nb.a);
      std::vector<Point> pts;
      arr.ReadRange(0, nb.fill, &pts);
      return std::find(pts.begin(), pts.end(), p) != pts.end();
    }
    em::PagedArray<ChildRec> crarr(pager_, nb.a);
    for (std::uint32_t c = 0; c < nb.fill; ++c) {
      ChildRec cr = crarr.Get(c);
      if (p.x >= cr.lo() && p.x < cr.hi()) {
        cur = cr.id;
        break;
      }
    }
  }
}

void ShengTaoSelector::CollectAll(std::vector<Point>* out) const {
  CollectPoints(MetaGet(kMRoot), out);
}

std::uint64_t ShengTaoSelector::CountInRange(double x1, double x2) const {
  std::uint64_t total = 0;
  std::vector<em::BlockId> stack{MetaGet(kMRoot)};
  while (!stack.empty()) {
    em::BlockId id = stack.back();
    stack.pop_back();
    NodeBlocks nb = ReadNode(pager_, id);
    if (nb.leaf) {
      em::PagedArray<Point> arr(pager_, nb.a);
      std::vector<Point> pts;
      arr.ReadRange(0, nb.fill, &pts);
      for (const Point& p : pts) {
        if (p.x >= x1 && p.x <= x2) ++total;
      }
      continue;
    }
    em::PagedArray<ChildRec> crarr(pager_, nb.a);
    for (std::uint32_t c = 0; c < nb.fill; ++c) {
      ChildRec cr = crarr.Get(c);
      if (cr.hi() <= x1 || cr.lo() > x2) continue;
      if (cr.lo() >= x1 && cr.hi() <= x2) {
        total += cr.count;
      } else {
        stack.push_back(cr.id);
      }
    }
  }
  return total;
}

StatusOr<double> ShengTaoSelector::SelectApprox(double x1, double x2,
                                                std::uint64_t k) const {
  if (x1 > x2 || k < 1) return Status::InvalidArgument("bad query");
  std::vector<sketch::LogSketch> sketches;
  std::vector<Point> boundary;
  GatherSketches(MetaGet(kMRoot), x1, x2, &sketches, &boundary);
  if (!boundary.empty()) {
    std::vector<double> scores;
    scores.reserve(boundary.size());
    for (const Point& p : boundary) scores.push_back(p.score);
    std::sort(scores.begin(), scores.end(), std::greater<>());
    sketches.push_back(sketch::LogSketch::Build(scores));
  }
  std::vector<const sketch::LogSketch*> ptrs;
  ptrs.reserve(sketches.size());
  std::uint64_t total = 0;
  for (const auto& s : sketches) {
    total += s.set_size();
    ptrs.push_back(&s);
  }
  if (k > total) return Status::OutOfRange("k exceeds range population");
  // Internal doubling absorbs sketch drift (see header notes); the end-to-end
  // guarantee is rank in [k, kApproxFactor * k).
  sketch::Select7Result res =
      sketch::SelectFromSketches(ptrs, std::min<std::uint64_t>(2 * k, total));
  if (res.neg_inf) return -kInf;
  return res.value;
}

// --- validation ------------------------------------------------------

void ShengTaoSelector::CheckNode(em::BlockId id, double lo, double hi,
                                 std::uint64_t* count) const {
  NodeBlocks nb = ReadNode(pager_, id);
  if (nb.leaf) {
    TOKRA_CHECK_EQ(nb.count, nb.fill);
    em::PagedArray<Point> arr(pager_, nb.a);
    std::vector<Point> pts;
    arr.ReadRange(0, nb.fill, &pts);
    for (const Point& p : pts) {
      TOKRA_CHECK(p.x >= lo && p.x < hi);
    }
    *count = nb.fill;
    return;
  }
  em::PagedArray<ChildRec> crarr(pager_, nb.a);
  double prev = lo;
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < nb.fill; ++c) {
    ChildRec cr = crarr.Get(c);
    TOKRA_CHECK(cr.lo() == prev);
    prev = cr.hi();
    std::uint64_t sub = 0;
    CheckNode(cr.id, cr.lo(), cr.hi(), &sub);
    TOKRA_CHECK_EQ(sub, cr.count);
    total += sub;
  }
  TOKRA_CHECK(prev == hi);
  TOKRA_CHECK_EQ(total, nb.count);
  *count = total;
}

void ShengTaoSelector::CheckInvariants() const {
  std::uint64_t count = 0;
  CheckNode(MetaGet(kMRoot), -kInf, kInf, &count);
  TOKRA_CHECK_EQ(count, MetaGet(kMCount));
}

}  // namespace tokra::st12
