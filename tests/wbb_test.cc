// Tests for the weight-balanced base-tree parameter rules.

#include <gtest/gtest.h>

#include "wbb/params.h"

namespace tokra::wbb {
namespace {

TEST(WbbParamsTest, WeightCapsGrowGeometrically) {
  WbbParams p{.branch = 8, .leaf_cap = 64};
  p.Validate();
  EXPECT_EQ(p.WeightCap(0), 64u);
  EXPECT_EQ(p.WeightCap(1), 512u);
  EXPECT_EQ(p.WeightCap(3), 32768u);
  EXPECT_EQ(p.WeightFloor(3), 8192u);
}

TEST(WbbParamsTest, OverweightExactlyAboveCap) {
  WbbParams p{.branch = 4, .leaf_cap = 16};
  EXPECT_FALSE(p.IsOverweight(1, 64));
  EXPECT_TRUE(p.IsOverweight(1, 65));
  EXPECT_FALSE(p.IsOverweight(0, 16));
  EXPECT_TRUE(p.IsOverweight(0, 17));
}

TEST(WbbParamsTest, RebuildTargetLeavesSlack) {
  WbbParams p{.branch = 4, .leaf_cap = 16};
  // Half the cap: Omega(cap) inserts must land before the next violation.
  EXPECT_EQ(p.RebuildChildTarget(2), 128u);
  EXPECT_GE(p.WeightCap(2) - p.RebuildChildTarget(2), p.WeightCap(2) / 2);
}

TEST(WbbParamsTest, HeightCoversN) {
  WbbParams p{.branch = 16, .leaf_cap = 256};
  for (std::uint64_t n : {1ull, 100ull, 4096ull, 65536ull, 1048576ull}) {
    std::uint32_t h = p.HeightFor(n);
    EXPECT_GE(p.WeightCap(h), n) << n;
    if (h > 1) {
      EXPECT_LT(p.WeightCap(h - 1), n) << n;
    }
  }
}

TEST(WbbParamsTest, FanoutBound) {
  WbbParams p{.branch = 16, .leaf_cap = 64};
  EXPECT_EQ(p.MaxFanout(), 33u);
  // A node at its cap split into half-target children fits the bound.
  std::uint64_t cap = p.WeightCap(2);
  std::uint64_t target = p.RebuildChildTarget(1);
  EXPECT_LE((cap + target - 1) / target, p.MaxFanout());
}

}  // namespace
}  // namespace tokra::wbb
