// Sharded service demo: a ShardedTopkEngine serving a concurrent mix of
// queries and updates through the batching front end, with skewed traffic
// and the rebalance hook.
//
//   cmake --build build && ./build/sharded_service
//
// Flags:
//   --stats-interval=N   dump the Prometheus metrics exposition every N
//                        seconds while the concurrent phase runs (0 = off,
//                        the default; a final dump always prints).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "em/wal_tail.h"
#include "engine/batcher.h"
#include "engine/sharded_engine.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace tokra;
  using engine::Request;
  using engine::Response;

  int stats_interval_s = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--stats-interval=", 17) == 0) {
      stats_interval_s = std::atoi(argv[i] + 17);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  // 8 shards, 4 worker threads; each shard is a private EM machine.
  engine::EngineOptions opts;
  opts.num_shards = 8;
  opts.threads = 4;
  opts.em = em::EmOptions{.block_words = 256, .pool_frames = 32};
  opts.rebalance_skew = 1.2;
  opts.rebalance_min_points = 1024;
  // Low slow-query bar for the demo: the shutdown dump should actually have
  // span trees to show (production would sit at milliseconds).
  opts.telemetry.slow_query_us = 500;

  // 50,000 random points: x in [0, 1e6), distinct scores.
  Rng rng(42);
  auto xs = rng.DistinctDoubles(50000, 0.0, 1e6);
  auto scores = rng.DistinctDoubles(50000, 0.0, 1.0);
  std::vector<Point> points(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    points[i] = Point{xs[i], scores[i]};
  }

  auto built = engine::ShardedTopkEngine::Build(points, opts);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto& eng = *built;
  std::printf("engine: %llu points over %u shards (%llu blocks total)\n",
              static_cast<unsigned long long>(eng->size()),
              eng->num_shards(),
              static_cast<unsigned long long>(eng->BlocksInUse()));
  std::printf("shard sizes:");
  for (auto s : eng->ShardSizes()) {
    std::printf(" %llu", static_cast<unsigned long long>(s));
  }
  std::printf("\n");

  // A cross-shard query with per-query observability.
  engine::EngineQueryStats qstats;
  auto top = eng->TopK(1e5, 9e5, 10, &qstats);
  if (!top.ok()) {
    std::fprintf(stderr, "query failed: %s\n", top.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-10 in [1e5, 9e5]: %u shards fanned out, "
              "%llu candidates merged via %llu heap visits, %llu I/Os\n",
              qstats.shards_queried,
              static_cast<unsigned long long>(qstats.shard_candidates),
              static_cast<unsigned long long>(qstats.merge_nodes_visited),
              static_cast<unsigned long long>(qstats.io.TotalIos()));
  for (const Point& p : *top) {
    std::printf("  x=%12.3f  score=%.6f\n", p.x, p.score);
  }

  // Concurrent clients through the batching front end. The batcher groups
  // each batch's updates by shard (one lock acquisition per shard) and fans
  // queries out afterwards; auto_rebalance runs the skew hook per batch.
  engine::RequestBatcher batcher(eng.get(), /*max_pending=*/128,
                                 /*auto_rebalance=*/true);

  // --stats-interval=N: a background exporter dumping the full metrics
  // exposition every N seconds (what a real service would scrape).
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_thread;
  if (stats_interval_s > 0) {
    stats_thread = std::thread([&] {
      std::unique_lock<std::mutex> lk(stats_mu);
      while (!stats_cv.wait_for(lk, std::chrono::seconds(stats_interval_s),
                                [&] { return stats_stop; })) {
        std::string dump = eng->DumpMetrics();
        std::printf("\n---- periodic metrics ----\n%s----\n", dump.c_str());
      }
    });
  }

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 2000;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng crng(100 + c);
      std::vector<std::future<Response>> futs;
      for (int i = 0; i < kOpsPerClient; ++i) {
        if (i % 4 == 0) {
          // Adversarial skew: all inserts land beyond the old key space,
          // i.e. in the last shard's range.
          Point p{1e6 + c * 1e5 + i, 2.0 + c + i * 1e-6};
          futs.push_back(batcher.Submit(Request::MakeInsert(p)));
        } else {
          double lo = crng.UniformDouble(0.0, 1e6);
          futs.push_back(batcher.Submit(Request::MakeTopk(lo, lo + 1e4, 5)));
        }
      }
      batcher.Flush();
      for (auto& f : futs) {
        Response r = f.get();
        if (!r.status.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       r.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  batcher.Flush();
  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lk(stats_mu);
      stats_stop = true;
    }
    stats_cv.notify_all();
    stats_thread.join();
  }

  auto counters = eng->counters();
  auto bstats = batcher.stats();
  std::printf("\nserved %llu queries, %llu inserts in %llu batches "
              "(%llu auto-rebalances)\n",
              static_cast<unsigned long long>(counters.queries),
              static_cast<unsigned long long>(counters.inserts),
              static_cast<unsigned long long>(bstats.batches),
              static_cast<unsigned long long>(bstats.auto_rebalances));
  std::printf("shard sizes after skewed inserts + rebalance hook:");
  for (auto s : eng->ShardSizes()) {
    std::printf(" %llu", static_cast<unsigned long long>(s));
  }
  em::IoStats io = eng->AggregatedIoStats();
  std::printf("\naggregate I/O: %s\n", io.ToString().c_str());

  eng->CheckInvariants();
  std::printf("invariants OK\n");

  // ---- shutdown telemetry dump ------------------------------------------
  // The full exposition (every counter, gauge, and histogram summary) plus
  // whatever the slow-query log caught: each entry is the query's span tree
  // with per-shard I/O deltas — the "why was THAT one slow" artifact.
  std::printf("\n---- final metrics ----\n%s", eng->DumpMetrics().c_str());
  if (eng->slow_query_log() != nullptr) {
    std::printf("\n---- slow queries (> %llu us): %llu captured ----\n%s",
                static_cast<unsigned long long>(opts.telemetry.slow_query_us),
                static_cast<unsigned long long>(
                    eng->slow_query_log()->captured()),
                eng->slow_query_log()->Dump().c_str());
  }

  // ---- durability: checkpoint -> "restart" -> recover -------------------
  // A file-backed engine persists across process restarts: each shard runs
  // on its own backing file, Checkpoint() records everything through the
  // pager superblocks, and Recover() reopens the whole engine without
  // rebuilding any index.
  namespace fs = std::filesystem;
  fs::path store = fs::temp_directory_path() /
                   ("tokra-sharded-service-" + std::to_string(::getpid()));
  fs::create_directories(store);
  engine::EngineOptions popts;
  popts.num_shards = 4;
  popts.threads = 4;
  popts.em = em::EmOptions{.block_words = 256, .pool_frames = 32};
  popts.storage_dir = store.string();

  Rng prng(7);
  auto pxs = prng.DistinctDoubles(5000, 0.0, 1e6);
  auto pscores = prng.DistinctDoubles(5000, 0.0, 1.0);
  std::vector<Point> ppoints(pxs.size());
  for (std::size_t i = 0; i < pxs.size(); ++i) {
    ppoints[i] = Point{pxs[i], pscores[i]};
  }

  std::vector<std::vector<Point>> answers;
  {
    auto durable = engine::ShardedTopkEngine::Build(ppoints, popts);
    if (!durable.ok()) {
      std::fprintf(stderr, "durable build failed: %s\n",
                   durable.status().ToString().c_str());
      return 1;
    }
    for (int i = 0; i < 50; ++i) {
      double lo = prng.UniformDouble(0.0, 9e5);
      auto r = (*durable)->TopK(lo, lo + 1e5, 10);
      if (!r.ok()) return 1;
      answers.push_back(std::move(*r));
    }
    if (!(*durable)->Checkpoint().ok()) {
      std::fprintf(stderr, "checkpoint failed\n");
      return 1;
    }
  }  // engine destroyed here: simulates a process restart

  auto recovered = engine::ShardedTopkEngine::Recover(popts);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  Rng vrng(7);
  vrng.DistinctDoubles(5000, 0.0, 1e6);   // replay the rng to the same
  vrng.DistinctDoubles(5000, 0.0, 1.0);   // query sequence
  for (int i = 0; i < 50; ++i) {
    double lo = vrng.UniformDouble(0.0, 9e5);
    auto r = (*recovered)->TopK(lo, lo + 1e5, 10);
    if (!r.ok() || *r != answers[i]) {
      std::fprintf(stderr, "recovered engine diverged on query %d\n", i);
      return 1;
    }
  }
  (*recovered)->CheckInvariants();
  std::printf("\ncheckpointed %llu points to %s, recovered after restart: "
              "50/50 queries byte-identical\n",
              static_cast<unsigned long long>((*recovered)->size()),
              store.string().c_str());
  recovered->reset();  // close the live engine; the files remain

  // ---- read-only snapshot serving ---------------------------------------
  // The same directory can be served without a write lock in sight:
  // OpenSnapshot maps every shard file immutably (zero-copy mmap reads,
  // per-replica concurrency) and never writes a byte — the same call works
  // on a copy shipped to a replica machine.
  auto snap = engine::ShardedTopkEngine::OpenSnapshot(popts);
  if (!snap.ok()) {
    std::fprintf(stderr, "snapshot open failed: %s\n",
                 snap.status().ToString().c_str());
    return 1;
  }
  Rng srng(7);
  srng.DistinctDoubles(5000, 0.0, 1e6);
  srng.DistinctDoubles(5000, 0.0, 1.0);
  for (int i = 0; i < 50; ++i) {
    double lo = srng.UniformDouble(0.0, 9e5);
    auto r = (*snap)->TopK(lo, lo + 1e5, 10);
    if (!r.ok() || *r != answers[i]) {
      std::fprintf(stderr, "snapshot diverged on query %d\n", i);
      return 1;
    }
  }
  if ((*snap)->Insert(Point{2e6, 7.0}).ok()) {
    std::fprintf(stderr, "snapshot accepted a write\n");
    return 1;
  }
  em::IoStats sio = (*snap)->AggregatedIoStats();
  std::printf("snapshot serving from the same files: 50/50 queries "
              "byte-identical, writes refused, %llu of %llu reads "
              "zero-copy\n",
              static_cast<unsigned long long>(sio.borrows),
              static_cast<unsigned long long>(sio.reads));
  fs::remove_all(store);

  // ---- write-ahead logging: SIGKILL mid-load, zero lost updates ---------
  // Under durability=kWal every acknowledged update batch is group-
  // committed to its shard's log before the acknowledgement, so a child
  // process killed with SIGKILL in the middle of a load — no destructors,
  // no flush — loses nothing that was acknowledged: Recover() rolls torn
  // writes back to the last checkpoint and replays the log tail.
  fs::path wstore = fs::temp_directory_path() /
                    ("tokra-sharded-wal-" + std::to_string(::getpid()));
  fs::remove_all(wstore);
  fs::create_directories(wstore);
  engine::EngineOptions wopts;
  wopts.num_shards = 4;
  wopts.threads = 4;
  wopts.em = em::EmOptions{.block_words = 256, .pool_frames = 32};
  wopts.storage_dir = wstore.string();
  wopts.durability = engine::Durability::kWal;

  Rng wrng(11);
  auto wxs = wrng.DistinctDoubles(8000, 0.0, 1e6);
  auto wscores = wrng.DistinctDoubles(8000, 0.0, 1.0);
  std::vector<Point> wpoints(wxs.size());
  for (std::size_t i = 0; i < wxs.size(); ++i) {
    wpoints[i] = Point{wxs[i], wscores[i]};
  }

  int progress[2];
  if (::pipe(progress) != 0) return 1;
  const pid_t child = ::fork();
  if (child == 0) {
    // Child: build (kWal checkpoints inside Build, arming the guarantee),
    // then stream acknowledged insert batches forever, reporting each
    // acknowledged count up the pipe. The parent SIGKILLs us mid-stream.
    ::close(progress[0]);
    auto loaded = engine::ShardedTopkEngine::Build(wpoints, wopts);
    if (!loaded.ok()) ::_exit(2);
    std::uint32_t acked = 0;
    std::vector<Request> batch;
    std::vector<Response> out;
    for (std::uint32_t b = 0;; ++b) {
      batch.clear();
      for (std::uint32_t j = 0; j < 64; ++j) {
        const std::uint32_t k = b * 64 + j;
        batch.push_back(
            Request::MakeInsert(Point{2e6 + k, 2.0 + k * 1e-6}));
      }
      (*loaded)->ExecuteBatch(batch, &out);
      for (const Response& r : out) {
        if (!r.status.ok()) ::_exit(3);
      }
      acked += 64;  // these futures resolved: every one is acknowledged
      if (::write(progress[1], &acked, sizeof(acked)) !=
          static_cast<ssize_t>(sizeof(acked))) {
        ::_exit(4);
      }
    }
  }
  ::close(progress[1]);
  std::uint32_t acked = 0, last_acked = 0;
  while (::read(progress[0], &acked, sizeof(acked)) ==
         static_cast<ssize_t>(sizeof(acked))) {
    last_acked = acked;
    if (last_acked >= 64 * 40) break;  // mid-load, well past the checkpoint
  }
  ::kill(child, SIGKILL);  // no shutdown path runs: the real crash
  int wstatus = 0;
  ::waitpid(child, &wstatus, 0);
  ::close(progress[0]);
  if (last_acked == 0) {
    std::fprintf(stderr, "wal demo: child died before acknowledging\n");
    return 1;
  }

  engine::RecoveryReport report;
  auto walrec = engine::ShardedTopkEngine::Recover(wopts, &report);
  if (!walrec.ok()) {
    std::fprintf(stderr, "wal recover failed: %s\n",
                 walrec.status().ToString().c_str());
    return 1;
  }
  // Every acknowledged insert carries x = 2e6 + k for k < last_acked; a
  // range query over exactly that window must find all of them.
  auto survivors =
      (*walrec)->TopK(2e6, 2e6 + last_acked - 0.5, last_acked + 64);
  if (!survivors.ok() || survivors->size() < last_acked) {
    std::fprintf(stderr, "wal demo LOST updates: acknowledged %u, found %zu\n",
                 last_acked, survivors.ok() ? survivors->size() : 0);
    return 1;
  }
  (*walrec)->CheckInvariants();
  std::printf("\nWAL crash demo: SIGKILL after %u acknowledged inserts, "
              "recovered %llu points (%llu log records replayed): "
              "zero acknowledged updates lost\n",
              last_acked,
              static_cast<unsigned long long>((*walrec)->size()),
              static_cast<unsigned long long>(report.replayed_records));

  // ---- replication: shipped snapshot + log tail = caught-up replica -----
  // Checkpoint the primary (stamping each shard's covered LSN), ship the
  // shard files, let the primary accept more updates, then ship only the
  // log tails: the follower applies every record past the stamp through
  // em::WalReader + DecodeWalOps and converges on the primary's state.
  std::vector<std::uint64_t> covered;
  if (!(*walrec)->Checkpoint(&covered).ok()) return 1;
  fs::path replica_dir = wstore.string() + "-replica";
  fs::remove_all(replica_dir);
  fs::create_directories(replica_dir);
  for (std::uint32_t i = 0; i < wopts.num_shards; ++i) {
    const std::string name = "shard-" + std::to_string(i) + ".tokra";
    fs::copy_file(wstore / name, replica_dir / name);
  }

  // Primary moves on: more acknowledged updates land in its logs only.
  const std::uint64_t primary_before = (*walrec)->size();
  for (int i = 0; i < 500; ++i) {
    if (!(*walrec)->Insert(Point{3e6 + i, 4.0 + i * 1e-3}).ok()) return 1;
  }
  std::vector<Point> primary_answer;
  {
    auto r = (*walrec)->TopK(-1e18, 1e18, 25);
    if (!r.ok()) return 1;
    primary_answer = std::move(*r);
  }
  const std::uint64_t primary_size = (*walrec)->size();
  walrec->reset();  // primary closed; its logs are quiescent for shipping

  engine::EngineOptions ropts = wopts;
  ropts.storage_dir = replica_dir.string();
  ropts.durability = engine::Durability::kCheckpoint;  // copy has no logs
  auto follower = engine::ShardedTopkEngine::Recover(ropts);
  if (!follower.ok()) {
    std::fprintf(stderr, "replica open failed: %s\n",
                 follower.status().ToString().c_str());
    return 1;
  }
  if ((*follower)->size() != primary_before) return 1;
  std::uint64_t shipped_records = 0, shipped_ops = 0;
  for (std::uint32_t i = 0; i < wopts.num_shards; ++i) {
    // The position-remembering tail poller (start_after = the stamp the
    // snapshot already covers). One Poll drains a quiescent log; a live
    // replica would keep calling Poll and only ever pay for new records.
    em::WalTailFollower tail(em::WalTailFollower::Options{
        .path = (wstore / ("shard-" + std::to_string(i) + ".wal")).string(),
        .block_words = wopts.em.block_words,
        .start_after = covered[i]});
    auto shipped = tail.Poll([&](const em::WriteAheadLog::Record& rec,
                                 std::span<const em::word_t> payload)
                                 -> Status {
      if (rec.type != em::WriteAheadLog::RecordType::kLogical) {
        return Status::Ok();
      }
      auto ops = engine::DecodeWalOps(payload);
      if (!ops.ok()) return ops.status();
      for (const engine::WalOp& op : *ops) {
        Status st = op.insert ? (*follower)->Insert(op.p)
                              : (*follower)->Delete(op.p);
        TOKRA_RETURN_IF_ERROR(st);
      }
      ++shipped_records;
      shipped_ops += ops->size();
      return Status::Ok();
    });
    if (!shipped.ok()) return 1;
  }
  auto follower_answer = (*follower)->TopK(-1e18, 1e18, 25);
  if (!follower_answer.ok() || *follower_answer != primary_answer ||
      (*follower)->size() != primary_size) {
    std::fprintf(stderr, "replica diverged from primary\n");
    return 1;
  }
  (*follower)->CheckInvariants();
  std::printf("replica demo: snapshot (%llu points) + %llu shipped log "
              "records (%llu ops) = caught-up follower, byte-identical "
              "answers\n",
              static_cast<unsigned long long>(primary_before),
              static_cast<unsigned long long>(shipped_records),
              static_cast<unsigned long long>(shipped_ops));
  fs::remove_all(wstore);
  fs::remove_all(replica_dir);
  return 0;
}
