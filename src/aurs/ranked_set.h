// The abstract set interface of the AURS problem (Section 3.1).
//
// Each set L_i is accessed only through two operators:
//   Max        — the largest element (cost_max I/Os),
//   RankSelect — given rho in [1, |L_i|/c1], an element whose descending
//                rank in L_i falls in [rho, c1*rho) (cost_rank I/Os).
// Implementations charge their I/Os through whatever storage they wrap.

#ifndef TOKRA_AURS_RANKED_SET_H_
#define TOKRA_AURS_RANKED_SET_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sketch/log_sketch.h"
#include "util/bits.h"
#include "util/check.h"

namespace tokra::aurs {

class RankedSet {
 public:
  virtual ~RankedSet() = default;

  /// |L_i|. Known metadata; free.
  virtual std::uint64_t Size() const = 0;

  /// Largest element.
  virtual double Max() const = 0;

  /// An element whose rank in L_i lies in [rho, c1*rho), where c1 is the
  /// implementation's approximation constant. When c1*rho exceeds |L_i| the
  /// window is clamped to [rho, |L_i|].
  virtual double RankSelect(double rho) const = 0;

  /// The implementation's c1 (>= 2).
  virtual double RankFactor() const = 0;
};

/// Exact in-memory implementation (c1-compatible with any c1 >= 2): returns
/// the element of rank exactly ceil(rho). Used by tests and small examples.
class VectorRankedSet : public RankedSet {
 public:
  /// `values` need not be sorted; sorted descending internally.
  explicit VectorRankedSet(std::vector<double> values)
      : values_(std::move(values)) {
    std::sort(values_.begin(), values_.end(), std::greater<>());
  }

  std::uint64_t Size() const override { return values_.size(); }
  double Max() const override {
    TOKRA_CHECK(!values_.empty());
    return values_[0];
  }
  double RankSelect(double rho) const override {
    auto r = static_cast<std::uint64_t>(rho);
    if (r < rho) ++r;  // ceil
    TOKRA_CHECK(r >= 1 && r <= values_.size());
    return values_[r - 1];
  }
  double RankFactor() const override { return 2.0; }

 private:
  std::vector<double> values_;
};

/// Sketch-backed implementation with c1 = 4: RankSelect(rho) returns the
/// pivot of the shallowest level whose window [2^(j-1), 2^j) sits at or
/// above rho; that window is contained in [rho, 4*rho).
class SketchRankedSet : public RankedSet {
 public:
  explicit SketchRankedSet(const sketch::LogSketch* sketch)
      : sketch_(sketch) {}

  std::uint64_t Size() const override { return sketch_->set_size(); }
  double Max() const override {
    TOKRA_CHECK(sketch_->levels() >= 1);
    return sketch_->pivot(1).value;
  }
  double RankSelect(double rho) const override {
    TOKRA_CHECK(rho >= 1);
    // Smallest j with 2^(j-1) >= rho.
    std::uint32_t j = 1;
    while ((std::uint64_t{1} << (j - 1)) < rho) ++j;
    TOKRA_CHECK(j <= sketch_->levels());
    return sketch_->pivot(j).value;
  }
  double RankFactor() const override { return 4.0; }

 private:
  const sketch::LogSketch* sketch_;
};

}  // namespace tokra::aurs

#endif  // TOKRA_AURS_RANKED_SET_H_
