// io_uring backend: the file device with truly asynchronous batch I/O.

#ifndef TOKRA_EM_URING_BLOCK_DEVICE_H_
#define TOKRA_EM_URING_BLOCK_DEVICE_H_

#include <cstdint>
#include <vector>

#include "em/file_block_device.h"

// The implementation speaks the raw io_uring syscall ABI (io_uring_setup /
// io_uring_enter against <linux/io_uring.h>), so it needs no liburing at
// build time; TOKRA_HAVE_URING is set by CMake when the kernel header is
// available. Callers should not include this header directly — go through
// MakeBlockDevice, which also handles the runtime probe.
#if defined(TOKRA_HAVE_URING)

namespace tokra::em {

/// FileBlockDevice whose SubmitReads/SubmitWrites keep up to
/// EmOptions::io_queue_depth block transfers in flight on an io_uring.
///
/// Single transfers (Read/Write/runs) stay on the synchronous pread/pwrite
/// path of the base class — a ring round trip for one block buys nothing.
/// Batches are submitted as IORING_OP_READ/WRITE SQEs and reaped until every
/// member completed; short transfers are resubmitted for the remainder, so
/// the completed batch is byte-equivalent to the synchronous loop.
///
/// Construction requires Supported() (the runtime probe); MakeBlockDevice
/// falls back to plain FileBlockDevice when the kernel refuses a ring, so
/// Backend::kUring always yields a working device.
class UringBlockDevice final : public FileBlockDevice {
 public:
  /// Runtime probe: whether this kernel can set up an io_uring (the syscall
  /// may be missing, seccomp-filtered, or disabled via sysctl). Probes once
  /// per process.
  static bool Supported();

  /// `register_resources` (EmOptions::io_register_buffers) opts into
  /// kernel-side registration of the device fd (IORING_REGISTER_FILES, done
  /// here) and of the buffer pool's frames (IORING_REGISTER_BUFFERS, done
  /// when the pool announces them via RegisterIoBuffers). Registration is
  /// runtime-probed: a refusal (memlock limit, old kernel) silently keeps
  /// the unregistered submission path — results and counts are identical
  /// either way, only per-op kernel overhead differs.
  UringBlockDevice(std::uint32_t block_words, FileOptions options,
                   std::uint32_t queue_depth, bool register_resources = false);
  ~UringBlockDevice() override;

  std::uint32_t queue_depth() const { return queue_depth_; }
  bool buffers_registered() const { return !reg_bufs_.empty(); }
  bool file_registered() const { return fixed_file_; }

  void RegisterIoBuffers(std::span<word_t* const> bufs) override;

 protected:
  void DoReadBatch(std::span<const IoRequest> reqs) override;
  void DoWriteBatch(std::span<const IoRequest> reqs) override;

 private:
  struct Ring;  // mmap'ed SQ/CQ state, defined in the .cc

  /// Runs a whole batch through the ring: fills the submission queue up to
  /// queue_depth_, io_uring_enter()s, reaps completions, resubmits short
  /// transfers, until every request has fully completed.
  void RunBatch(std::span<const IoRequest> reqs, bool is_write);

  /// Index into the registered-buffer table whose iovec contains
  /// [buf, buf + block bytes), or -1 when unregistered.
  int RegisteredBufferIndex(const word_t* buf) const;

  std::uint32_t queue_depth_;
  bool want_registration_ = false;
  bool fixed_file_ = false;          // fd registered as fixed file 0
  std::vector<const word_t*> reg_bufs_;  // sorted bases of registered frames
  Ring* ring_ = nullptr;
};

}  // namespace tokra::em

#endif  // TOKRA_HAVE_URING
#endif  // TOKRA_EM_URING_BLOCK_DEVICE_H_
