// Configuration of the sharded concurrent query engine.

#ifndef TOKRA_ENGINE_OPTIONS_H_
#define TOKRA_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/topk_index.h"
#include "em/options.h"
#include "util/check.h"

namespace tokra::engine {

/// Superblock roots each shard checkpoint records: index meta, lower bound,
/// shard count, topology generation, fence chain head (kNullBlock when the
/// shard checkpointed without a fence). EngineOptions::Validate() requires a
/// block to fit the superblock header plus this many roots, so a validated
/// engine can never fail a checkpoint on geometry at runtime. (The covered
/// WAL LSN is not a root: the pager stamps it in its own superblock header
/// word.)
inline constexpr std::uint32_t kShardCheckpointRoots = 5;

/// How much of the update stream survives a crash.
enum class Durability {
  /// Nothing persists: Checkpoint() is refused even with a storage_dir.
  /// The implied mode of a memory-backed engine.
  kNone,
  /// Today's default: Recover() restores the last completed Checkpoint();
  /// updates accepted after it are lost on a crash.
  kCheckpoint,
  /// Write-ahead logging: every accepted update batch is group-committed
  /// to its shard's log, and Recover() replays the tail past the
  /// checkpoint LSN — a SIGKILL at any point after a batch was
  /// acknowledged loses nothing (the log and the pre-image guards ride the
  /// OS page cache, which survives process death). Power loss can still
  /// lose the page cache.
  kWal,
  /// kWal plus real fsyncs: one per group commit, one per guarded
  /// write-back batch, and home-device barriers at checkpoints
  /// (em.durable_sync is forced on) — acknowledged updates survive power
  /// loss. The costly mode.
  kWalFsyncEveryBatch,
};

/// Telemetry configuration (see src/obs/ and DESIGN.md §10).
struct TelemetryOptions {
  /// Master switch. Off, the engine creates no registry/tracer/slow-query
  /// log and every instrumentation site compiles down to a null-pointer
  /// check — no clock reads, no atomics touched.
  bool enabled = true;

  /// Queries at or above this total latency are captured in the slow-query
  /// log with their stage breakdown and per-shard IoStats deltas.
  std::uint64_t slow_query_us = 10'000;

  /// Span slots the tracer ring retains (rounded up to a power of two).
  std::size_t trace_capacity = 4096;

  /// Entries the slow-query log retains (oldest evicted).
  std::size_t slow_query_capacity = 64;

  /// Emit per-query spans (root + one per probed shard + merge). Histograms
  /// and the slow-query log work regardless; this only controls tracer
  /// traffic.
  bool trace_queries = true;
};

/// Sketch-guided shard pruning (see src/sketch/shard_fence.h and
/// DESIGN.md §11). When enabled, every shard keeps a ShardFence; queries
/// route with it (provably-empty ranges and Bloom-missed point lookups are
/// never dispatched), dispatch the survivors in descending
/// best-possible-weight waves, and stop dispatching once the merge
/// frontier's k-th score beats every remaining shard's fence bound.
struct PruningOptions {
  /// Master switch. Off, fences are neither built nor persisted and every
  /// query fans out to all overlapping shards (the pre-fence behaviour).
  bool enabled = true;

  /// Max-weight sub-ranges per shard fence.
  std::uint32_t fence_slots = 64;

  /// Bloom bits per key at fence (re)build time; 0 disables the point-query
  /// filter while keeping range fences.
  std::uint32_t bloom_bits_per_key = 8;

  /// Shards dispatched per wave on the parallel path: after each wave the
  /// router re-checks the frontier before paying for the next. 0 derives
  /// `threads` (full first wave, no idle workers); serial queries always
  /// use wave size 1.
  std::uint32_t dispatch_wave = 0;
};

/// Parameters of a ShardedTopkEngine.
///
/// Each shard is an independent TopkIndex on its own em::Pager, so the
/// per-shard EM parameters below describe one shard's simulated disk and
/// buffer pool; total pool memory is num_shards * em.pool_frames frames.
struct EngineOptions {
  /// Number of key-range shards. Each holds ~n/S points and preserves the
  /// paper's per-index bounds on its subrange.
  std::uint32_t num_shards = 4;

  /// Worker threads answering fanned-out shard subqueries and applying
  /// batched per-shard update groups.
  std::uint32_t threads = 4;

  /// EM model parameters for each shard's private pager.
  em::EmOptions em;

  /// Telemetry switches. The engine owns the registry/tracer/slow-query
  /// log; `em.metrics` is wired up automatically at construction so every
  /// shard's pager, pool, and WAL records into the engine's histograms.
  TelemetryOptions telemetry;

  /// When non-empty, every shard runs on its own backing file
  /// `<storage_dir>/shard-<i>.tokra` (em.backend is promoted from kMem to
  /// kFile; a kUring choice is kept), which makes Checkpoint()/Recover()
  /// available: the whole engine persists across process restarts. The
  /// directory must already exist.
  std::string storage_dir;

  /// Crash-consistency mode. kWal and up give every shard a write-ahead
  /// log `<storage_dir>/shard-<i>.wal`: the RequestBatcher's per-shard
  /// update groups become the group-commit unit (one log append per shard
  /// per batch), Checkpoint() stamps the covered LSN and truncates each
  /// log, and Recover() replays the tails. Requires a storage_dir.
  Durability durability = Durability::kCheckpoint;

  /// Run per-shard checkpoints concurrently on the engine's thread pool.
  /// Shards checkpoint independent pagers on disjoint files, so this only
  /// overlaps their flush + superblock writes; the per-shard crash-safety
  /// contract is unchanged (see DESIGN.md §6.3).
  bool parallel_checkpoint = true;

  /// Checkpoint() skips shards with no accepted updates since their last
  /// checkpoint (their backing file already holds exactly the state a
  /// fresh checkpoint would write). Purely an I/O saving; off restores the
  /// every-shard behaviour.
  bool skip_clean_shard_checkpoints = true;

  /// OpenSnapshot: independent read handles (pager + index view) per shard.
  /// Each replica serves one query at a time; with kMmap shards the
  /// replicas share every cached byte through the OS page cache, so extra
  /// replicas cost only pool bookkeeping. 0 derives threads + 1 (the pool
  /// workers plus the calling thread).
  std::uint32_t snapshot_replicas = 0;

  /// Serve-while-updating MVCC (DESIGN.md §14). Every shard pager runs
  /// epoch-based copy-on-write checkpoints (em.cow_epochs forced on), and
  /// after each per-shard checkpoint the engine publishes an epoch-pinned
  /// read view of the shard: queries route through the view's lock-free
  /// read handles instead of taking the shard mutex, so readers scale with
  /// threads while writers proceed on the live epoch. Works on every
  /// backend, including kMem. A query finds no published view only before
  /// the shard's first checkpoint (or when every handle is busy and
  /// contention-free rotation fails) and falls back to the locked probe.
  bool mvcc = false;

  /// MVCC: read handles published per shard view. Each serves one query at
  /// a time (rotation picks a free one). 0 derives threads + 1.
  std::uint32_t mvcc_read_handles = 0;

  /// Whether the engine runs write-ahead logs at all.
  bool WalEnabled() const {
    return durability == Durability::kWal ||
           durability == Durability::kWalFsyncEveryBatch;
  }

  /// Shard `i`'s log file — THE naming scheme, shared by ShardEm and every
  /// tail inspection, so a rename cannot silently disable one of them.
  std::string ShardWalPath(std::uint32_t shard) const {
    return storage_dir + "/shard-" + std::to_string(shard) + ".wal";
  }

  /// `em` specialized for shard `i`: the per-shard backing file (and, under
  /// a WAL durability mode, the per-shard log) applied.
  em::EmOptions ShardEm(std::uint32_t shard) const {
    em::EmOptions o = em;
    // Before the storage_dir block so memory-backed MVCC engines work too:
    // a pager-level COW checkpoint needs no file, only the epoch protocol.
    if (mvcc) o.cow_epochs = true;
    if (!storage_dir.empty()) {
      if (o.backend == em::Backend::kMem) o.backend = em::Backend::kFile;
      o.path = storage_dir + "/shard-" + std::to_string(shard) + ".tokra";
      if (WalEnabled()) {
        o.wal_path = ShardWalPath(shard);
        if (durability == Durability::kWalFsyncEveryBatch) {
          o.wal_fsync = true;
          // The power-loss mode needs the HOME device's checkpoint
          // barriers to be real fsyncs too: a checkpoint commit that only
          // reached the page cache while Truncate() durably rotated the
          // log away would destroy the very records that could redo it.
          o.durable_sync = true;
        }
      }
    }
    return o;
  }

  /// Fence-based query pruning (on by default; results are identical with
  /// it off, only the fan-out cost changes).
  PruningOptions pruning;

  /// Forwarded to every shard's TopkIndex.
  core::TopkIndex::Options index;

  /// MaybeRebalance() triggers when the largest shard exceeds this multiple
  /// of the average shard size (and rebalance_min_points is met).
  double rebalance_skew = 4.0;

  /// Minimum total points before skew-triggered rebalancing kicks in;
  /// below this, imbalance is noise.
  std::uint64_t rebalance_min_points = 1024;

  void Validate() const {
    TOKRA_CHECK(num_shards >= 1);
    TOKRA_CHECK(threads >= 1);
    TOKRA_CHECK(rebalance_skew > 1.0);
    // A file-backed backend must come with a storage_dir: a single shared
    // em.path would have every shard truncate and overwrite the same file.
    TOKRA_CHECK(em.backend == em::Backend::kMem || !storage_dir.empty());
    // The log is a file: WAL durability needs somewhere to put it.
    TOKRA_CHECK(!WalEnabled() || !storage_dir.empty());
    TOKRA_CHECK(em.block_words >=
                em::kSuperblockHeaderWords + kShardCheckpointRoots);
    TOKRA_CHECK(pruning.fence_slots >= 1);
    ShardEm(0).Validate();
  }
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_OPTIONS_H_
