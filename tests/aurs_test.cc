// Tests for AURS (Lemma 5): correctness of the appendix algorithm over both
// exact and sketch-backed Rank operators.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "aurs/aurs.h"
#include "aurs/ranked_set.h"
#include "sketch/log_sketch.h"
#include "util/random.h"

namespace tokra::aurs {
namespace {

std::uint64_t UnionRank(const std::vector<std::vector<double>>& sets,
                        double v) {
  std::uint64_t r = 0;
  for (const auto& s : sets)
    for (double e : s)
      if (e >= v) ++r;
  return r;
}

bool UnionContains(const std::vector<std::vector<double>>& sets, double v) {
  for (const auto& s : sets)
    for (double e : s)
      if (e == v) return true;
  return false;
}

TEST(AursTest, RejectsBadArguments) {
  EXPECT_FALSE(UnionRankSelect({}, 1).ok());
  VectorRankedSet small({1.0, 2.0});
  RankedSet* sets[] = {&small};
  EXPECT_FALSE(UnionRankSelect(sets, 0).ok());
  // k > |L|/c1 violates condition (2).
  EXPECT_FALSE(UnionRankSelect(sets, 2).ok());
}

TEST(AursTest, SingleSetSingleK) {
  std::vector<double> vals;
  for (int i = 1; i <= 100; ++i) vals.push_back(i);
  VectorRankedSet s(vals);
  RankedSet* sets[] = {&s};
  auto res = UnionRankSelect(sets, 10);
  ASSERT_TRUE(res.ok());
  std::uint64_t rank = 0;
  for (double v : vals)
    if (v >= *res) ++rank;
  EXPECT_GE(rank, 10u);
  EXPECT_LE(rank, static_cast<std::uint64_t>(AursWorstFactor(2.0) * 10));
}

struct AursCase {
  std::size_t m;
  std::size_t min_size;
  std::size_t max_size;
  bool use_sketch;  // sketch-backed Rank operator (c1=4) vs exact (c1=2)
  std::uint64_t seed;
};

class AursPropertyTest : public ::testing::TestWithParam<AursCase> {};

TEST_P(AursPropertyTest, RankWithinProvenFactor) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  std::vector<std::vector<double>> sets(c.m);
  std::uint64_t min_size = ~0ull;
  for (std::size_t i = 0; i < c.m; ++i) {
    std::size_t sz = c.min_size + rng.Uniform(c.max_size - c.min_size + 1);
    sets[i] = rng.DistinctDoubles(sz, i * 10.0, i * 10.0 + 9.0);
    std::sort(sets[i].begin(), sets[i].end(), std::greater<>());
    min_size = std::min<std::uint64_t>(min_size, sz);
  }

  std::vector<sketch::LogSketch> sketches;
  std::vector<std::unique_ptr<RankedSet>> owners;
  std::vector<RankedSet*> ptrs;
  if (c.use_sketch) {
    sketches.reserve(c.m);
    for (auto& s : sets) sketches.push_back(sketch::LogSketch::Build(s));
    for (auto& sk : sketches) {
      owners.push_back(std::make_unique<SketchRankedSet>(&sk));
    }
  } else {
    for (auto& s : sets) {
      owners.push_back(std::make_unique<VectorRankedSet>(s));
    }
  }
  for (auto& o : owners) ptrs.push_back(o.get());

  double c1 = c.use_sketch ? 4.0 : 2.0;
  double worst = AursWorstFactor(c1);
  std::uint64_t k_max = static_cast<std::uint64_t>(
      static_cast<double>(min_size) / c1);
  for (std::uint64_t k = 1; k <= k_max; k = 2 * k + 1) {
    AursStats stats;
    auto res = UnionRankSelect(ptrs, k, &stats);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(UnionContains(sets, *res));
    std::uint64_t rank = UnionRank(sets, *res);
    EXPECT_GE(rank, k) << "k=" << k;
    EXPECT_LE(rank, static_cast<std::uint64_t>(worst * k) + 1) << "k=" << k;
    // Lemma 5 cost: O(m) operator calls total (geometric rounds).
    EXPECT_LE(stats.rank_calls, 4 * c.m + 8);
    EXPECT_LE(stats.max_calls, c.m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AursPropertyTest,
    ::testing::Values(AursCase{1, 64, 256, false, 1},
                      AursCase{2, 64, 128, false, 2},
                      AursCase{8, 100, 400, false, 3},
                      AursCase{32, 200, 300, false, 4},
                      AursCase{8, 100, 400, true, 5},
                      AursCase{32, 300, 900, true, 6},
                      AursCase{64, 256, 1024, true, 7},
                      AursCase{128, 600, 700, true, 8}),
    [](const ::testing::TestParamInfo<AursCase>& info) {
      return std::string(info.param.use_sketch ? "sketch" : "exact") + "m" +
             std::to_string(info.param.m);
    });

TEST(AursTest, SmallKUsesMaxPath) {
  // k < m: the algorithm must consult Max and prune to k active sets.
  Rng rng(9);
  std::vector<std::vector<double>> sets(16);
  std::vector<std::unique_ptr<RankedSet>> owners;
  std::vector<RankedSet*> ptrs;
  for (std::size_t i = 0; i < 16; ++i) {
    sets[i] = rng.DistinctDoubles(100, i * 10.0, i * 10.0 + 9.0);
    owners.push_back(std::make_unique<VectorRankedSet>(sets[i]));
    ptrs.push_back(owners.back().get());
  }
  AursStats stats;
  auto res = UnionRankSelect(ptrs, 3, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(stats.max_calls, 16u);
  std::uint64_t rank = UnionRank(sets, *res);
  EXPECT_GE(rank, 3u);
  EXPECT_LE(rank, static_cast<std::uint64_t>(AursWorstFactor(2.0) * 3) + 1);
}

}  // namespace
}  // namespace tokra::aurs
