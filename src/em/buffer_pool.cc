#include "em/buffer_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tokra::em {

void BufferPool::LruPushFront(std::uint32_t f) {
  Frame& fr = frames_[f];
  fr.lru_prev = kNoFrame;
  fr.lru_next = lru_head_;
  if (lru_head_ != kNoFrame) frames_[lru_head_].lru_prev = f;
  lru_head_ = f;
  if (lru_tail_ == kNoFrame) lru_tail_ = f;
}

void BufferPool::LruRemove(std::uint32_t f) {
  Frame& fr = frames_[f];
  if (fr.lru_prev != kNoFrame) {
    frames_[fr.lru_prev].lru_next = fr.lru_next;
  } else {
    lru_head_ = fr.lru_next;
  }
  if (fr.lru_next != kNoFrame) {
    frames_[fr.lru_next].lru_prev = fr.lru_prev;
  } else {
    lru_tail_ = fr.lru_prev;
  }
  fr.lru_prev = fr.lru_next = kNoFrame;
}

std::uint32_t BufferPool::TryFindVictim() {
  if (!free_.empty()) {
    std::uint32_t v = free_.back();
    free_.pop_back();
    return v;
  }
  // Least recent first; pinned frames are skipped (there are O(1) of them,
  // so this walk is O(1) in practice and the promotion/eviction fast path
  // never scans the whole pool).
  for (std::uint32_t v = lru_tail_; v != kNoFrame; v = frames_[v].lru_prev) {
    if (frames_[v].pins == 0) return v;
  }
  return kNoFrame;
}

void BufferPool::EvictFrame(std::uint32_t v, std::vector<IoRequest>* batch) {
  Frame& f = frames_[v];
  if (!f.valid) return;
  // A borrowed frame never owns modified bytes (mutation upgrades it to an
  // owned copy first), so evicting one writes nothing and never touches
  // the mapping — it is dropped bookkeeping, not a transfer.
  TOKRA_DCHECK(!(f.dirty && f.ext != nullptr));
  if (f.dirty) {
    if (batch != nullptr) {
      batch->push_back(IoRequest{f.id, f.buf.data()});
    } else {
      // The requester is stalled on this write-back before it can reuse
      // the frame: the eviction stall (batched victims are timed at their
      // SubmitWrites in BatchLoad instead).
      obs::ScopedTimer stall(evict_stall_us_);
      if (barrier_ != nullptr) {
        const BlockId id = f.id;  // the barrier speaks logical ids
        barrier_->BeforeHomeWrite({&id, 1});
      }
      device_->Write(
          xlate_ != nullptr ? xlate_->RedirectWrite(f.id) : f.id,
          f.buf.data());
    }
    ++stats_.writes;
  }
  map_.erase(f.id);
  ++stats_.evictions;
  LruRemove(v);
  f.valid = false;
  f.ext = nullptr;
}

std::uint32_t BufferPool::Pin(BlockId id, PinMode mode) {
  TOKRA_CHECK(id != kNullBlock);
  auto it = map_.find(id);
  if (it != map_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    LruTouch(it->second);
    ++stats_.pool_hits;
    return it->second;
  }
  ++stats_.pool_misses;
  std::uint32_t v = FindVictim();
  EvictFrame(v, nullptr);
  Frame& f = frames_[v];
  f.id = id;
  f.valid = true;
  f.dirty = false;
  f.pins = 1;
  LruPushFront(v);
  if (mode == PinMode::kRead) {
    // The device transfer uses the physical location; the frame stays keyed
    // by the logical id the caller pinned.
    const BlockId phys = xlate_ != nullptr ? xlate_->TranslateRead(id) : id;
    if (borrow_ && (f.ext = device_->TryBorrowRead(phys)) != nullptr) {
      ++stats_.borrows;  // zero-copy: the frame needs no buffer at all
    } else {
      device_->Read(phys, OwnedBuf(f));
    }
    ++stats_.reads;
  } else {
    word_t* buf = OwnedBuf(f);
    std::fill(buf, buf + device_->block_words(), 0);
    // A created frame is dirty by definition: its zeros are new content.
    f.dirty = true;
  }
  map_[id] = v;
  return v;
}

void BufferPool::BatchLoad(std::span<const BlockId> ids, bool pin,
                           std::vector<std::uint32_t>* out) {
  if (out != nullptr) {
    out->clear();
    out->reserve(ids.size());
  }
  // Two deferred batches: dirty victims out, then missing blocks in. The
  // frame buffers are victim-to-newcomer 1:1 and SubmitWrites completes
  // before SubmitReads starts, so a buffer is never overwritten before its
  // old contents reached the device.
  std::vector<IoRequest> write_batch, read_batch;
  std::vector<std::uint32_t> unpin_after;  // prefetch: temporary pins
  for (BlockId id : ids) {
    TOKRA_CHECK(id != kNullBlock);
    auto it = map_.find(id);
    if (it != map_.end()) {
      Frame& f = frames_[it->second];
      if (pin) {
        ++f.pins;
        ++stats_.pool_hits;
      }
      LruTouch(it->second);
      if (out != nullptr) out->push_back(it->second);
      continue;
    }
    std::uint32_t v = pin ? FindVictim() : TryFindVictim();
    if (v == kNoFrame) continue;  // prefetch is a hint: skip when pins fill the pool
    EvictFrame(v, &write_batch);
    Frame& f = frames_[v];
    f.id = id;
    f.valid = true;
    f.dirty = false;
    // The pin also protects the frame from being chosen as a victim later
    // in this same batch; prefetched frames give it back below.
    f.pins = 1;
    if (!pin) unpin_after.push_back(v);
    LruPushFront(v);
    map_[id] = v;
    // Borrowed misses need no device round trip at all — the pointer grab
    // IS the transfer; only copying misses join the read batch. Borrowing
    // before the deferred victim write-backs is safe even if a victim of
    // this very batch held this block: the pointer is a view of the page
    // cache, so it observes the write-back the moment SubmitWrites below
    // completes — before any caller can dereference it.
    const BlockId phys = xlate_ != nullptr ? xlate_->TranslateRead(id) : id;
    if (borrow_ && (f.ext = device_->TryBorrowRead(phys)) != nullptr) {
      ++stats_.borrows;
      ++stats_.reads;
    } else {
      read_batch.push_back(IoRequest{phys, OwnedBuf(f)});
    }
    if (pin) {
      ++stats_.pool_misses;
    } else {
      ++stats_.prefetched;
    }
    if (out != nullptr) out->push_back(v);
  }
  {
    // The whole batch stalls on its victims' write-backs before the reads
    // can land in their frames: one eviction-stall sample per batch that
    // actually wrote (clean batches skip the timer entirely).
    obs::ScopedTimer stall(write_batch.empty() ? nullptr : evict_stall_us_);
    if (barrier_ != nullptr && !write_batch.empty()) {
      std::vector<BlockId> ids;
      ids.reserve(write_batch.size());
      for (const IoRequest& r : write_batch) ids.push_back(r.id);
      barrier_->BeforeHomeWrite(ids);
    }
    // Redirect after the barrier: pre-images are about logical blocks, the
    // transfer is about physical locations.
    if (xlate_ != nullptr) {
      for (IoRequest& r : write_batch) r.id = xlate_->RedirectWrite(r.id);
    }
    device_->SubmitWrites(write_batch);
  }
  device_->SubmitReads(read_batch);
  stats_.reads += read_batch.size();
  for (std::uint32_t v : unpin_after) frames_[v].pins = 0;
}

void BufferPool::PinMany(std::span<const BlockId> ids,
                         std::vector<std::uint32_t>* out) {
  TOKRA_CHECK(out != nullptr);
  BatchLoad(ids, /*pin=*/true, out);
}

void BufferPool::Prefetch(std::span<const BlockId> ids) {
  BatchLoad(ids, /*pin=*/false, nullptr);
}

void BufferPool::Unpin(std::uint32_t frame, bool dirty) {
  Frame& f = frames_[frame];
  TOKRA_CHECK(f.pins > 0);
  --f.pins;
  // Dirtying a still-borrowed frame would lose the mutation (write-back
  // flushes the owned buffer): mutators must go through FrameData, which
  // upgrades the frame to an owned copy first.
  TOKRA_DCHECK(!(dirty && f.ext != nullptr));
  if (dirty) f.dirty = true;
}

void BufferPool::FlushAll() {
  // One batch submission for all dirty frames (still one write I/O each).
  std::vector<IoRequest> batch;
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      batch.push_back(IoRequest{f.id, f.buf.data()});
      ++stats_.writes;
      f.dirty = false;
    }
  }
  if (barrier_ != nullptr && !batch.empty()) {
    std::vector<BlockId> ids;
    ids.reserve(batch.size());
    for (const IoRequest& r : batch) ids.push_back(r.id);
    barrier_->BeforeHomeWrite(ids);
  }
  if (xlate_ != nullptr) {
    for (IoRequest& r : batch) r.id = xlate_->RedirectWrite(r.id);
  }
  device_->SubmitWrites(batch);
}

void BufferPool::DropAll() {
  FlushAll();
  for (Frame& f : frames_) {
    TOKRA_CHECK(f.pins == 0);  // dropping while pinned is a bug
    f.valid = false;
    f.id = kNullBlock;
    f.ext = nullptr;
    f.lru_prev = f.lru_next = kNoFrame;
  }
  map_.clear();
  lru_head_ = lru_tail_ = kNoFrame;
  free_.clear();
  for (std::uint32_t i = num_frames(); i > 0; --i) free_.push_back(i - 1);
}

void BufferPool::Invalidate(BlockId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  std::uint32_t v = it->second;
  Frame& f = frames_[v];
  TOKRA_CHECK(f.pins == 0);
  LruRemove(v);
  f.valid = false;
  f.dirty = false;
  f.id = kNullBlock;
  f.ext = nullptr;
  map_.erase(it);
  free_.push_back(v);
}

}  // namespace tokra::em
