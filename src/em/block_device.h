// The simulated disk: an unbounded array of blocks of B words.

#ifndef TOKRA_EM_BLOCK_DEVICE_H_
#define TOKRA_EM_BLOCK_DEVICE_H_

#include <cstdint>
#include <vector>

#include "em/io_stats.h"
#include "em/options.h"
#include "util/check.h"

namespace tokra::em {

/// In-memory simulation of a block disk.
///
/// Every Read/Write transfers exactly one block and increments the matching
/// counter; these counters are the ground truth for all I/O measurements in
/// the repository. The device grows on demand (the EM model's disk is
/// unbounded).
class BlockDevice {
 public:
  explicit BlockDevice(std::uint32_t block_words)
      : block_words_(block_words) {
    TOKRA_CHECK(block_words >= 1);
  }

  std::uint32_t block_words() const { return block_words_; }

  /// Number of blocks the device currently backs.
  BlockId NumBlocks() const { return storage_.size() / block_words_; }

  /// Reads block `id` into `dst` (must hold block_words() words). One I/O.
  void Read(BlockId id, word_t* dst) {
    TOKRA_CHECK(id < NumBlocks());
    ++reads_;
    const word_t* src = &storage_[id * block_words_];
    for (std::uint32_t i = 0; i < block_words_; ++i) dst[i] = src[i];
  }

  /// Writes `src` (block_words() words) to block `id`, growing the device if
  /// needed. One I/O.
  void Write(BlockId id, const word_t* src) {
    EnsureCapacity(id + 1);
    ++writes_;
    word_t* dst = &storage_[id * block_words_];
    for (std::uint32_t i = 0; i < block_words_; ++i) dst[i] = src[i];
  }

  /// Extends the device to back at least `blocks` blocks (zero-filled).
  /// Growing is free: it models formatting, not data transfer.
  void EnsureCapacity(BlockId blocks) {
    if (blocks * block_words_ > storage_.size()) {
      storage_.resize(blocks * block_words_, 0);
    }
  }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  std::uint32_t block_words_;
  std::vector<word_t> storage_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_BLOCK_DEVICE_H_
