// Adversarial and failure-mode tests across the library: correlated inputs,
// skewed insertion orders, boundary x-ranges, precondition violations
// (death tests), and cross-structure agreement on hostile workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/topk_index.h"
#include "em/pager.h"
#include "internal/naive.h"
#include "pilot/pilot_pst.h"
#include "st12/selector.h"
#include "util/random.h"

namespace tokra {
namespace {

em::EmOptions Opts(std::uint32_t bw = 64) {
  return em::EmOptions{.block_words = bw, .pool_frames = 16};
}

// Score perfectly correlated with x: the degenerate case for Cartesian-tree
// style structures; the pilot PST and selectors must stay balanced because
// their skeletons depend on x only.
std::vector<Point> CorrelatedPoints(std::size_t n) {
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = Point{static_cast<double>(i), static_cast<double>(i) + 0.5};
  }
  return pts;
}

TEST(AdversarialTest, PilotPstCorrelatedScores) {
  em::Pager pager(Opts());
  auto pts = CorrelatedPoints(2000);
  auto pst = pilot::PilotPst::Build(&pager, pts);
  pst.CheckInvariants();
  auto got = pst.TopK(500, 1500, 10).value();
  auto want = internal::NaiveTopK(pts, 500, 1500, 10);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].x, want[i].x);
  }
}

TEST(AdversarialTest, PilotPstAntiCorrelatedDescendingInserts) {
  // Descending x, descending score: every insert lands at the leftmost leaf
  // and at the top of the pilot hierarchy simultaneously.
  em::Pager pager(Opts());
  auto pst = pilot::PilotPst::Create(&pager);
  std::vector<Point> live;
  for (int i = 1999; i >= 0; --i) {
    Point p{static_cast<double>(i), 2000.0 - i};
    ASSERT_TRUE(pst.Insert(p).ok());
    live.push_back(p);
    if (i % 256 == 0) pst.CheckInvariants();
  }
  pst.CheckInvariants();
  auto got = pst.TopK(0, 100, 5).value();
  auto want = internal::NaiveTopK(live, 0, 100, 5);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got[0].score, want[0].score);
}

TEST(AdversarialTest, EmptyAndDegenerateRanges) {
  em::Pager pager(Opts());
  Rng rng(1);
  auto xs = rng.DistinctDoubles(500, 0, 100);
  auto ss = rng.DistinctDoubles(500, 0, 1);
  std::vector<Point> pts(500);
  for (int i = 0; i < 500; ++i) pts[i] = {xs[i], ss[i]};
  auto pst = pilot::PilotPst::Build(&pager, pts);

  // Point range hitting exactly one x.
  auto one = pst.TopK(xs[7], xs[7], 3).value();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].x, xs[7]);
  // Range containing nothing.
  EXPECT_TRUE(pst.TopK(200, 300, 5)->empty());
  // Range to the left of everything.
  EXPECT_TRUE(pst.TopK(-100, -50, 5)->empty());
  // Full range, k = n exactly.
  EXPECT_EQ(pst.TopK(-1e9, 1e9, 500)->size(), 500u);
}

TEST(AdversarialTest, DeleteReinsertSamePointRepeatedly) {
  em::Pager pager(Opts());
  Rng rng(2);
  auto xs = rng.DistinctDoubles(300, 0, 100);
  auto ss = rng.DistinctDoubles(300, 0, 1);
  std::vector<Point> pts(300);
  for (int i = 0; i < 300; ++i) pts[i] = {xs[i], ss[i]};
  auto pst = pilot::PilotPst::Build(&pager, pts);
  Point hot = pts[150];
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(pst.Delete(hot).ok());
    ASSERT_TRUE(pst.Insert(hot).ok());
  }
  pst.CheckInvariants();
  EXPECT_EQ(pst.size(), 300u);
}

TEST(AdversarialTest, St12ClusteredInsertsForceRebuilds) {
  // All inserts into one tiny x-interval: leaf overflow handling must keep
  // rebuilding without losing points.
  em::Pager pager(Opts(128));
  Rng rng(3);
  auto st = st12::ShengTaoSelector::Build(&pager, {});
  std::vector<Point> live;
  auto scores = rng.DistinctDoubles(3000, 0, 1);
  auto xs = rng.DistinctDoubles(3000, 10.0, 10.001);  // microscopic range
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(st.Insert({xs[i], scores[i]}).ok());
    live.push_back({xs[i], scores[i]});
  }
  st.CheckInvariants();
  EXPECT_EQ(st.size(), 3000u);
  EXPECT_EQ(st.CountInRange(10.0, 10.001), 3000u);
  auto res = st.SelectApprox(9.0, 11.0, 10);
  ASSERT_TRUE(res.ok());
  std::uint64_t rank = internal::NaiveScoreRankInRange(live, 9, 11, *res);
  EXPECT_GE(rank, 10u);
  EXPECT_LT(rank, st12::ShengTaoSelector::kApproxFactor * 10);
}

TEST(AdversarialTest, IndexSurvivesFullDrain) {
  em::Pager pager(Opts(128));
  Rng rng(4);
  auto xs = rng.DistinctDoubles(400, 0, 100);
  auto ss = rng.DistinctDoubles(400, 0, 1);
  std::vector<Point> pts(400);
  for (int i = 0; i < 400; ++i) pts[i] = {xs[i], ss[i]};
  auto idx = core::TopkIndex::Build(&pager, pts).value();
  for (const Point& p : pts) ASSERT_TRUE(idx->Delete(p).ok());
  EXPECT_EQ(idx->size(), 0u);
  EXPECT_TRUE(idx->TopK(-1e9, 1e9, 10)->empty());
  // Refill after drain.
  for (const Point& p : pts) ASSERT_TRUE(idx->Insert(p).ok());
  idx->CheckInvariants();
  EXPECT_EQ(idx->size(), 400u);
}

TEST(AdversarialDeathTest, PoolExhaustionAborts) {
  // Pinning more blocks than frames is a programming error by contract.
  ASSERT_DEATH(
      {
        em::Pager pager(em::EmOptions{.block_words = 32, .pool_frames = 4});
        std::vector<em::BlockId> ids;
        std::vector<em::PageRef> pins;
        for (int i = 0; i < 6; ++i) ids.push_back(pager.Allocate());
        for (int i = 0; i < 6; ++i) pins.push_back(pager.Fetch(ids[i]));
      },
      "pool exhausted|best < num_frames");
}

TEST(AdversarialDeathTest, FreeWhilePinnedAborts) {
  ASSERT_DEATH(
      {
        em::Pager pager(em::EmOptions{.block_words = 32, .pool_frames = 4});
        em::BlockId id = pager.Allocate();
        em::PageRef pin = pager.Fetch(id);
        pager.Free(id);
      },
      "pins == 0");
}

}  // namespace
}  // namespace tokra
