// E12: sharded engine throughput.
//
// (a) Query throughput vs shard count under uniform narrow ranges — the
//     scaling claim: more shards = more concurrent queries in flight.
// (b) The same under a zipf-skewed (hotspot) query mix — shows contention
//     when traffic concentrates on few shards.
// (c) Direct per-op calls vs the batching front end on a mixed workload —
//     the lock/pager amortization claim.
// (d) An adversarial insert stream aimed at one shard, with and without the
//     skew-rebalance hook — tail shard size and throughput after.
// (f) Fence pruning on/off at 8 shards on wide ranges over zipf-weight and
//     adversarial score layouts — the sketch-routing claim, with a
//     fingerprint CHECK that the pruned path answers byte-identically.
// (g) Serve-while-updating: MVCC epoch views under a live writer storm —
//     read qps as reader threads scale with writers active, every reader's
//     answer stream fingerprint-checked against a serialized oracle, and a
//     CHECK that no query ever took a shard write lock.

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "engine/batcher.h"
#include "engine/sharded_engine.h"

namespace tokra::bench {
namespace {

using engine::EngineOptions;
using engine::Request;
using engine::RequestBatcher;
using engine::Response;
using engine::ShardedTopkEngine;

constexpr std::size_t kPoints = 20000;
constexpr double kXHi = 1e6;
constexpr int kClientThreads = 4;
constexpr int kQueriesPerThread = 4000;
constexpr std::uint64_t kK = 10;

double WallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

EngineOptions EngOpts(std::uint32_t shards) {
  EngineOptions o;
  o.num_shards = shards;
  o.threads = 4;
  o.em = em::EmOptions{.block_words = 256, .pool_frames = 64};
  return o;
}

/// Uniform narrow range: width ~ key space / 100, anywhere.
struct UniformRanges {
  double Lo(Rng* rng) const { return rng->UniformDouble(0, kXHi * 0.99); }
  double Width(Rng*) const { return kXHi / 100; }
};

/// Zipf-ish hotspot: 90% of queries fall in the hottest 5% of the key space.
struct ZipfRanges {
  double Lo(Rng* rng) const {
    if (rng->Bernoulli(0.9)) return rng->UniformDouble(0, kXHi * 0.05);
    return rng->UniformDouble(0, kXHi * 0.99);
  }
  double Width(Rng*) const { return kXHi / 100; }
};

template <typename Workload>
double QueryThroughput(ShardedTopkEngine* eng, Workload wl) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7000 + t);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        double lo = wl.Lo(&rng);
        Must(eng->TopK(lo, lo + wl.Width(&rng), kK).status());
      }
    });
  }
  for (auto& th : threads) th.join();
  double ms = WallMs(t0);
  return kClientThreads * kQueriesPerThread / (ms / 1000.0);
}

/// Engine-side query latency + per-stage breakdown for one finished run,
/// pulled from the engine's own histograms (no bench-side timing).
void RecordEngineLatency(const std::string& phase,
                         const ShardedTopkEngine& eng) {
  const engine::EngineMetricSet& ms = eng.metric_set();
  if (ms.query_latency_us == nullptr) return;  // telemetry disabled
  RecordLatency(phase + " query", ms.query_latency_us->Snapshot());
  RecordStages(phase, {{"fanout", ms.stage_fanout_us->Snapshot()},
                       {"probe", ms.stage_probe_us->Snapshot()},
                       {"merge", ms.stage_merge_us->Snapshot()},
                       {"reply", ms.stage_reply_us->Snapshot()}});
}

template <typename Workload>
void ThroughputTable(const std::string& title, const std::vector<Point>& pts,
                     Workload wl) {
  Header(title, {"shards", "client threads", "queries", "wall ms", "qps",
                 "speedup vs 1 shard"});
  double base_qps = 0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    auto eng = ShardedTopkEngine::Build(pts, EngOpts(shards));
    Must(eng.status());
    em::IoStats before = eng->get()->AggregatedIoStats();
    double qps = QueryThroughput(eng->get(), wl);
    RecordIoStats(title.substr(0, 4) + " shards=" + U(shards),
                  eng->get()->AggregatedIoStats() - before);
    RecordEngineLatency(title.substr(0, 4) + " shards=" + U(shards),
                        *eng->get());
    if (shards == 1) base_qps = qps;
    double total = kClientThreads * kQueriesPerThread;
    Row({U(shards), U(kClientThreads), U(static_cast<std::uint64_t>(total)),
         D(total / qps * 1000.0), D(qps, 0), D(qps / base_qps)});
  }
}

void BatchingTable(const std::vector<Point>& pts) {
  Header("E12c: direct vs batched mixed workload (4 threads, 25% updates)",
         {"mode", "ops", "wall ms", "ops/s"});
  constexpr int kOpsPerThread = 3000;
  for (int mode = 0; mode < 2; ++mode) {
    auto eng = ShardedTopkEngine::Build(pts, EngOpts(4));
    Must(eng.status());
    RequestBatcher batcher(eng->get(), /*max_pending=*/128);
    em::IoStats io_before = eng->get()->AggregatedIoStats();
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < kClientThreads; ++t) {
      threads.emplace_back([&, t, mode] {
        Rng rng(9000 + t);
        std::vector<std::future<Response>> futs;
        for (int i = 0; i < kOpsPerThread; ++i) {
          double lo = rng.UniformDouble(0, kXHi * 0.99);
          bool update = i % 4 == 0;
          Point p{kXHi + t * kXHi + i, 10.0 + t + i * 1e-7};
          if (mode == 0) {
            if (update) {
              Must(eng->get()->Insert(p));
            } else {
              Must(eng->get()->TopK(lo, lo + kXHi / 100, kK).status());
            }
          } else {
            futs.push_back(batcher.Submit(
                update ? Request::MakeInsert(p)
                       : Request::MakeTopk(lo, lo + kXHi / 100, kK)));
          }
        }
        if (mode == 1) {
          batcher.Flush();
          for (auto& f : futs) Must(f.get().status);
        }
      });
    }
    for (auto& th : threads) th.join();
    double ms = WallMs(t0);
    double total = kClientThreads * kOpsPerThread;
    RecordIoStats(mode == 0 ? "E12c direct" : "E12c batched",
                  eng->get()->AggregatedIoStats() - io_before);
    if (mode == 1 && eng->get()->metric_set().admission_wait_us != nullptr) {
      // The latency cost of coalescing: how long requests sat in the window.
      RecordLatency("E12c batched admission_wait",
                    eng->get()->metric_set().admission_wait_us->Snapshot());
      RecordLatency("E12c batched batch_exec",
                    eng->get()->metric_set().batch_exec_us->Snapshot());
    }
    Row({mode == 0 ? "direct" : "batched(128)",
         U(static_cast<std::uint64_t>(total)), D(ms), D(total / ms * 1000.0, 0)});
  }
}

/// E12e — the telemetry layer's own price: the identical uniform query
/// workload with metrics+tracing enabled vs fully disabled. Both rows land
/// in BENCH_e12_engine.json so the overhead ratio is tracked per PR; the
/// acceptance bar is the enabled run within ~2% of disabled. The enabled
/// leg also exports its span ring as chrome://tracing JSON.
void OverheadTable(const std::vector<Point>& pts) {
  Header("E12e: telemetry overhead (4 shards, uniform ranges)",
         {"telemetry", "queries", "wall ms", "qps"});
  for (bool enabled : {true, false}) {
    EngineOptions o = EngOpts(4);
    o.telemetry.enabled = enabled;
    auto eng = ShardedTopkEngine::Build(pts, o);
    Must(eng.status());
    double qps = QueryThroughput(eng->get(), UniformRanges{});
    double total = kClientThreads * kQueriesPerThread;
    Row({enabled ? "on" : "off", U(static_cast<std::uint64_t>(total)),
         D(total / qps * 1000.0), D(qps, 0)});
    if (enabled) {
      RecordEngineLatency("E12e telemetry=on", *eng->get());
      const std::string trace = eng->get()->tracer()->ExportChromeJson();
      std::FILE* f = std::fopen("TRACE_e12_engine.json", "w");
      if (f != nullptr) {
        std::fwrite(trace.data(), 1, trace.size(), f);
        std::fclose(f);
        std::printf("wrote TRACE_e12_engine.json (%zu bytes, %llu spans "
                    "recorded, %llu dropped)\n",
                    trace.size(),
                    static_cast<unsigned long long>(
                        eng->get()->tracer()->recorded()),
                    static_cast<unsigned long long>(
                        eng->get()->tracer()->dropped()));
      }
    }
  }
}

void RebalanceTable(const std::vector<Point>& pts) {
  Header("E12d: adversarial skewed inserts (all into last shard's range)",
         {"rebalance hook", "inserts", "wall ms", "ops/s", "rebalances",
          "final max/avg shard size"});
  constexpr int kInserts = 8000;
  for (bool hook : {false, true}) {
    EngineOptions o = EngOpts(8);
    o.rebalance_skew = 2.0;
    o.rebalance_min_points = 4096;
    auto eng = ShardedTopkEngine::Build(pts, o);
    Must(eng.status());
    Rng rng(31);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kInserts; ++i) {
      // Every insert beyond the current max x: one shard absorbs all.
      Must(eng->get()->Insert({2 * kXHi + i, 20.0 + i * 1e-7}));
      if (hook && i % 512 == 511) eng->get()->MaybeRebalance();
    }
    double ms = WallMs(t0);
    auto sizes = eng->get()->ShardSizes();
    std::uint64_t max_size = 0, total = 0;
    for (std::uint64_t s : sizes) {
      max_size = std::max(max_size, s);
      total += s;
    }
    Row({hook ? "on (every 512)" : "off", U(kInserts), D(ms),
         D(kInserts / ms * 1000.0, 0),
         U(eng->get()->counters().rebalances),
         D(static_cast<double>(max_size) /
           (static_cast<double>(total) / sizes.size()))});
  }
}

/// E12f workload shape: wide ranges (cover ~3/4 of the key space, always
/// including the weight hotspot) so every query overlaps most of the 8
/// shards — the fan-out regime pruning is for.
struct WideRanges {
  double Lo(Rng* rng) const { return rng->UniformDouble(0, kXHi * 0.2); }
  double Width(Rng*) const { return kXHi * 0.75; }
};

/// Zipf-ish weight skew: the points in the hottest 5% of the key space
/// ([0.45, 0.5) * kXHi) carry the globally top scores, so a wide query's
/// top-k lives almost entirely in one shard and the other overlapping
/// shards' fences can't beat the frontier.
std::vector<Point> ZipfWeightPoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, kXHi);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = scores[i];
    if (xs[i] >= 0.45 * kXHi && xs[i] < 0.5 * kXHi) s += 100.0;
    pts[i] = Point{xs[i], s};
  }
  return pts;
}

/// Adversarial-for-fanout layout: score strictly increasing in x, so a wide
/// query's top-k sits at its right edge and every shard left of it is
/// provably dead weight once the frontier fills.
std::vector<Point> MonotonePoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, kXHi);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  std::sort(scores.begin(), scores.end());
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

/// FNV-1a over the (x, score) bit patterns of a deterministic wide-range
/// query stream — the cross-config answer oracle. The seed names the
/// stream, so concurrent readers can each run a distinct stream and still
/// be checked against a serialized replay.
std::uint64_t FingerprintSeeded(ShardedTopkEngine* eng, std::uint64_t seed,
                                int queries) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  Rng rng(seed);
  WideRanges wl;
  for (int i = 0; i < queries; ++i) {
    double lo = wl.Lo(&rng);
    auto r = eng->TopK(lo, lo + wl.Width(&rng), kK);
    Must(r.status());
    mix(r->size());
    for (const Point& p : *r) {
      mix(std::bit_cast<std::uint64_t>(p.x));
      mix(std::bit_cast<std::uint64_t>(p.score));
    }
  }
  return h;
}

std::uint64_t Fingerprint(ShardedTopkEngine* eng) {
  return FingerprintSeeded(eng, 424242, 2000);
}

void PruningTable() {
  Header("E12f: fence pruning on/off (8 shards, wide ranges)",
         {"workload", "pruning", "queries", "wall ms", "qps",
          "speedup off->on", "avg shards pruned/query", "fingerprint"});
  Rng rng(77);
  struct Workload {
    const char* name;
    std::vector<Point> pts;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"zipf-weight", ZipfWeightPoints(&rng, kPoints)});
  workloads.push_back({"adversarial", MonotonePoints(&rng, kPoints)});
  for (auto& wl : workloads) {
    double off_qps = 0;
    std::uint64_t off_fp = 0;
    for (bool on : {false, true}) {
      EngineOptions o = EngOpts(8);
      o.pruning.enabled = on;
      // Small waves maximize early termination: the frontier usually fills
      // from the first (best-bounded) shards, so later waves never launch.
      if (on) o.pruning.dispatch_wave = 2;
      auto eng = ShardedTopkEngine::Build(wl.pts, o);
      Must(eng.status());
      const std::uint64_t fp = Fingerprint(eng->get());
      const engine::EngineCounters before_c = eng->get()->counters();
      em::IoStats before = eng->get()->AggregatedIoStats();
      double qps = QueryThroughput(eng->get(), WideRanges{});
      const engine::EngineCounters c = eng->get()->counters();
      const double total = kClientThreads * kQueriesPerThread;
      RecordIoStats(std::string("E12f ") + wl.name +
                        (on ? " pruning=on" : " pruning=off"),
                    eng->get()->AggregatedIoStats() - before,
                    c.shards_pruned - before_c.shards_pruned,
                    c.fence_checks - before_c.fence_checks,
                    c.query_waves - before_c.query_waves);
      if (!on) {
        off_qps = qps;
        off_fp = fp;
      } else {
        // The pruned path must be answer-identical to the unpruned one:
        // fences only skip work the merge provably cannot use.
        TOKRA_CHECK_EQ(fp, off_fp);
      }
      char fpbuf[32];
      std::snprintf(fpbuf, sizeof(fpbuf), "%016llx",
                    static_cast<unsigned long long>(fp));
      Row({wl.name, on ? "on" : "off", U(static_cast<std::uint64_t>(total)),
           D(total / qps * 1000.0), D(qps, 0), D(on ? qps / off_qps : 1.0),
           D(static_cast<double>(c.shards_pruned - before_c.shards_pruned) /
             total),
           fpbuf});
    }
  }
}

/// E12g — serve-while-updating (DESIGN.md §14). The base points own the
/// globally top scores; writer threads churn points whose scores sit
/// strictly below every base score, so each wide top-k answer is invariant
/// under the storm: a reader's whole answer-stream fingerprint must equal
/// the serialized oracle's, no matter which epoch each query landed on.
/// Readers scale 1→8 with the writers running the whole time; the query
/// path must never fall back to a shard write lock (counter CHECKed 0).
void ServeWhileUpdatingTable() {
  constexpr int kWritersG = 2;
  constexpr int kReaderQueries = 800;
  Header("E12g: serve-while-updating (MVCC epochs, 4 shards, " +
             std::to_string(kWritersG) + " writers active)",
         {"readers", "writers", "queries", "wall ms", "read qps",
          "scaling vs 1 reader", "writer ops", "fingerprint", "shard locks"});
  Rng rng(55);
  std::vector<Point> base = RandomPoints(&rng, kPoints, kXHi);
  for (Point& p : base) p.score += 100.0;
  // Serialized oracle: each reader's exact query stream, replayed on an
  // idle non-MVCC engine holding only the base points.
  std::uint64_t oracle[8] = {};
  {
    auto eng = ShardedTopkEngine::Build(base, EngOpts(4));
    Must(eng.status());
    for (int r = 0; r < 8; ++r) {
      oracle[r] = FingerprintSeeded(eng->get(), 6200 + r, kReaderQueries);
    }
  }
  double base_qps = 0;
  for (int readers : {1, 2, 4, 8}) {
    EngineOptions o = EngOpts(4);
    o.mvcc = true;
    auto eng = ShardedTopkEngine::Build(base, o);
    Must(eng.status());
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> writer_ops{0};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWritersG; ++w) {
      writers.emplace_back([&, w] {
        Rng wrng(8100 + w);
        std::vector<Point> mine;
        while (!stop.load(std::memory_order_relaxed)) {
          // Insert across the full key space (every shard publishes fresh
          // epochs under the readers), delete every other one; scores in
          // (0, 1) never reach a top-k next to the +100 base scores.
          Point p{wrng.UniformDouble(0, kXHi), wrng.UniformDouble()};
          mine.push_back(p);
          Must(eng->get()->Insert(p));
          if (mine.size() % 2 == 0) {
            Must(eng->get()->Delete(mine[mine.size() - 2]));
          }
          writer_ops.fetch_add(1, std::memory_order_relaxed);
          // A paced update stream (not a tight loop): the benchmark
          // measures read scaling under live writes, not writer saturation
          // of a single-core host.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    }
    std::atomic<std::uint64_t> mismatches{0};
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> reader_threads;
    for (int r = 0; r < readers; ++r) {
      reader_threads.emplace_back([&, r] {
        const std::uint64_t fp =
            FingerprintSeeded(eng->get(), 6200 + r, kReaderQueries);
        if (fp != oracle[r]) mismatches.fetch_add(1);
      });
    }
    for (auto& th : reader_threads) th.join();
    const double ms = WallMs(t0);
    stop = true;
    for (auto& th : writers) th.join();
    const double total = static_cast<double>(readers) * kReaderQueries;
    const double qps = total / (ms / 1000.0);
    if (readers == 1) base_qps = qps;
    const engine::EngineCounters c = eng->get()->counters();
    const bool fp_ok = mismatches.load() == 0;
    // Consistency is a CHECK, not a column-only report: a reader that saw
    // a half-applied epoch or a stale fence route is a correctness bug.
    TOKRA_CHECK(fp_ok);
    TOKRA_CHECK_EQ(c.query_shard_locks, 0u);
    std::printf(
        "[e12g] readers=%d writers=%d qps=%.0f ratio=%.2f fingerprint=%s "
        "locks=%llu\n",
        readers, kWritersG, qps, qps / base_qps, fp_ok ? "ok" : "MISMATCH",
        static_cast<unsigned long long>(c.query_shard_locks));
    RecordIoStats("E12g readers=" + U(readers),
                  eng->get()->AggregatedIoStats(), 0, 0, 0,
                  eng->get()->AggregatedSpaceStats());
    Row({U(readers), U(kWritersG), U(static_cast<std::uint64_t>(total)),
         D(ms), D(qps, 0), D(qps / base_qps), U(writer_ops.load()),
         fp_ok ? "ok" : "MISMATCH", U(c.query_shard_locks)});
  }
}

void Run() {
  // Scaling is bounded by physical parallelism; on a single-core host the
  // residual speedup comes from smaller per-shard structures (lower lg n_i,
  // better pool locality), not concurrency.
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  Rng rng(5);
  std::vector<Point> pts = RandomPoints(&rng, kPoints, kXHi);
  ThroughputTable("E12a: query throughput vs shards (uniform ranges)", pts,
                  UniformRanges{});
  ThroughputTable("E12b: query throughput vs shards (zipf hotspot)", pts,
                  ZipfRanges{});
  BatchingTable(pts);
  RebalanceTable(pts);
  OverheadTable(pts);
  PruningTable();
  ServeWhileUpdatingTable();
}

}  // namespace
}  // namespace tokra::bench

int main() {
  tokra::bench::InitJson("e12_engine");
  tokra::bench::Run();
  return 0;
}
