// LRU buffer pool: the simulated main memory of M words (M/B frames).

#ifndef TOKRA_EM_BUFFER_POOL_H_
#define TOKRA_EM_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "em/block_device.h"
#include "em/io_stats.h"
#include "em/options.h"
#include "util/check.h"

namespace tokra::em {

/// Fixed-capacity LRU pool of block frames with pin/unpin semantics.
///
/// A pin that misses reads the block from the device (one I/O); evicting a
/// dirty frame writes it back (one I/O). Pinned frames are never evicted —
/// exceeding the frame budget with pins is a programming error (the model
/// only guarantees M = Omega(B), and every algorithm in this library pins
/// O(1) blocks at a time).
class BufferPool {
 public:
  enum class PinMode {
    kRead,    ///< load current block contents from the device on a miss
    kCreate,  ///< zero-fill the frame instead of reading (fresh block)
  };

  BufferPool(BlockDevice* device, std::uint32_t num_frames)
      : device_(device), frames_(num_frames) {
    TOKRA_CHECK(num_frames >= 2);
    for (Frame& f : frames_) f.buf.resize(device_->block_words(), 0);
  }

  /// Pins the block, returning its frame index.
  std::uint32_t Pin(BlockId id, PinMode mode);

  /// Releases one pin; `dirty` marks the frame as modified.
  void Unpin(std::uint32_t frame, bool dirty);

  word_t* FrameData(std::uint32_t frame) { return frames_[frame].buf.data(); }
  BlockId FrameBlock(std::uint32_t frame) const { return frames_[frame].id; }

  /// Writes back all dirty frames (each one write I/O). Frames stay cached.
  void FlushAll();

  /// Flushes and empties the pool — used to measure cold-cache costs.
  void DropAll();

  /// Discards any cached copy of `id` without write-back (used on Free).
  void Invalidate(BlockId id);

  const IoStats& stats() const { return stats_; }
  std::uint32_t num_frames() const {
    return static_cast<std::uint32_t>(frames_.size());
  }
  std::uint32_t block_words() const { return device_->block_words(); }

 private:
  struct Frame {
    BlockId id = kNullBlock;
    bool valid = false;
    bool dirty = false;
    std::uint32_t pins = 0;
    std::uint64_t tick = 0;
    std::vector<word_t> buf;
  };

  std::uint32_t FindVictim();

  BlockDevice* device_;
  std::vector<Frame> frames_;
  std::unordered_map<BlockId, std::uint32_t> map_;
  std::uint64_t clock_ = 0;
  IoStats stats_;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_BUFFER_POOL_H_
