// Fixed-size worker pool for shard fan-out.
//
// Tasks submitted here must never block on other pool tasks (no nested
// RunAll from inside a task): every engine task only takes shard mutexes,
// which are held exclusively by running tasks, so the pool is deadlock-free
// by construction.

#ifndef TOKRA_ENGINE_THREAD_POOL_H_
#define TOKRA_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace tokra::engine {

class ThreadPool {
 public:
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t size() const { return static_cast<std::uint32_t>(workers_.size()); }

  /// Attaches queue-wait / task-run latency sinks (null = no timing, no
  /// clock reads on the task path). Call before the first Submit; the
  /// histograms must outlive the pool.
  void SetMetrics(obs::Histogram* task_wait_us, obs::Histogram* task_run_us) {
    wait_us_ = task_wait_us;
    run_us_ = task_run_us;
  }

  /// Enqueues one task. Fire-and-forget; pair with RunAll for joins.
  void Submit(std::function<void()> fn);

  /// Runs every task (on the pool, first one inline on the calling thread)
  /// and returns when all have finished. Safe to call concurrently from
  /// many threads; each call joins only its own tasks.
  void RunAll(std::vector<std::function<void()>> tasks);

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_us = 0;  // stamped only when wait_us_ attached
  };

  void WorkerLoop();
  void RunTask(Task task);

  obs::Histogram* wait_us_ = nullptr;  // time from Submit to pop
  obs::Histogram* run_us_ = nullptr;   // task body duration

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_THREAD_POOL_H_
