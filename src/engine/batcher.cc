#include "engine/batcher.h"

#include <utility>

#include "util/check.h"

namespace tokra::engine {

RequestBatcher::RequestBatcher(ShardedTopkEngine* engine,
                               std::size_t max_pending, bool auto_rebalance)
    : engine_(engine),
      max_pending_(max_pending),
      auto_rebalance_(auto_rebalance) {
  TOKRA_CHECK(engine != nullptr);
  TOKRA_CHECK(max_pending >= 1);
}

RequestBatcher::~RequestBatcher() { Flush(); }

std::future<Response> RequestBatcher::Submit(Request req) {
  Item item;
  item.req = std::move(req);
  std::future<Response> fut = item.promise.get_future();
  std::vector<Item> ready;
  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.requests;
    pending_.push_back(std::move(item));
    if (pending_.size() >= max_pending_) ready.swap(pending_);
  }
  if (!ready.empty()) Execute(std::move(ready));
  return fut;
}

void RequestBatcher::Flush() {
  std::vector<Item> ready;
  {
    std::lock_guard<std::mutex> g(mu_);
    ready.swap(pending_);
  }
  if (!ready.empty()) Execute(std::move(ready));
}

void RequestBatcher::Execute(std::vector<Item> batch) {
  std::vector<Request> requests;
  requests.reserve(batch.size());
  for (const Item& item : batch) requests.push_back(item.req);

  std::vector<Response> responses;
  engine_->ExecuteBatch(requests, &responses);
  TOKRA_CHECK_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }

  bool rebalanced = auto_rebalance_ && engine_->MaybeRebalance();
  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.batches;
    if (rebalanced) ++stats_.auto_rebalances;
  }
}

std::size_t RequestBatcher::pending() const {
  std::lock_guard<std::mutex> g(mu_);
  return pending_.size();
}

RequestBatcher::Stats RequestBatcher::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace tokra::engine
