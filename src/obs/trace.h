// Span-based tracing with a fixed lock-free ring of completed spans.
//
// A span is one timed stage (a query, a shard probe, a merge, a checkpoint);
// ScopedSpan measures it RAII-style and deposits a completed record into the
// tracer's ring on destruction. The ring keeps the most recent `capacity`
// spans — recording is an atomic cursor bump plus relaxed stores into the
// claimed slot (a per-slot sequence counter lets readers skip slots being
// rewritten), so the hot path never takes a lock and retention is bounded.
//
// Nesting: each thread tracks its innermost open span; a ScopedSpan opened
// without an explicit parent nests under it. Work handed to another thread
// (the engine's shard fan-out) passes the parent id explicitly.
//
// Export: ExportChromeJson() renders the ring as a chrome://tracing /
// Perfetto-compatible JSON document of complete ("ph":"X") events on the
// shared NowUs() timebase.

#ifndef TOKRA_OBS_TRACE_H_
#define TOKRA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tokra::obs {

class Tracer {
 public:
  /// One completed span. `name` must point at a string literal (or other
  /// storage outliving the tracer): the ring stores the pointer.
  struct Span {
    const char* name = nullptr;
    std::uint64_t id = 0;      ///< unique, never 0
    std::uint64_t parent = 0;  ///< enclosing span id; 0 = root
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    std::uint32_t tid = 0;  ///< ThreadSlot() of the recording thread
  };

  /// `capacity` (rounded up to a power of two) bounds retention: the ring
  /// keeps the most recent spans and overwrites the oldest.
  explicit Tracer(std::size_t capacity = 4096);

  /// Fresh span id (monotonic, never 0).
  std::uint64_t NewId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Deposits a completed span (lock-free; overwrites the oldest slot once
  /// the ring is full).
  void Record(const Span& span);

  /// Consistent copies of the ring's completed spans, start-time order.
  /// Slots concurrently being rewritten are skipped.
  std::vector<Span> Snapshot() const;

  /// Spans recorded since construction (includes overwritten ones).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Spans overwritten by ring wraparound.
  std::uint64_t dropped() const {
    const std::uint64_t r = recorded();
    return r > slots_.size() ? r - slots_.size() : 0;
  }
  std::size_t capacity() const { return slots_.size(); }

  /// chrome://tracing JSON: {"traceEvents":[{"ph":"X",...}, ...]}.
  std::string ExportChromeJson() const;

 private:
  // Every field is atomic so concurrent writers/readers stay data-race-free
  // (TSan-clean); `seq` is odd while a writer is mid-store and readers skip
  // or retry, seqlock-style.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> start_us{0};
    std::atomic<std::uint64_t> dur_us{0};
    std::atomic<std::uint32_t> tid{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> next_id_{1};
};

/// RAII span: stamps the start on construction, records into the tracer on
/// destruction. Default-constructed (or null-tracer) spans are inert and
/// read no clock. Opening one pushes its id as the thread's current
/// implicit parent; destruction pops it.
class ScopedSpan {
 public:
  ScopedSpan() = default;

  /// Nests under this thread's innermost open span.
  ScopedSpan(Tracer* tracer, const char* name);

  /// Explicit parent — for spans whose logical parent ran on another
  /// thread (shard fan-out tasks under their query's root span).
  ScopedSpan(Tracer* tracer, const char* name, std::uint64_t parent);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;

  ~ScopedSpan() { Finish(); }

  /// 0 when inert.
  std::uint64_t id() const { return span_.id; }

 private:
  void Finish();

  Tracer* tracer_ = nullptr;
  Tracer::Span span_;
  std::uint64_t saved_parent_ = 0;  // restored as the thread's current span
};

}  // namespace tokra::obs

#endif  // TOKRA_OBS_TRACE_H_
