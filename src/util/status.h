// Status and StatusOr: exception-free error handling (Google/RocksDB idiom).
//
// Library code never throws. Fallible operations return Status (or StatusOr<T>
// when they produce a value); programming errors abort via TOKRA_CHECK.

#ifndef TOKRA_UTIL_STATUS_H_
#define TOKRA_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/check.h"

namespace tokra {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a StatusCode.
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// Cheap to copy in the OK case (no allocation); error statuses carry a
/// message. Follows the absl::Status surface closely enough to be familiar.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "<CODE>: <message>" for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result of a fallible operation that produces a T on success.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. CHECK-fails if `status` is OK.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    TOKRA_CHECK(!std::get<Status>(rep_).ok());
  }
  /// Constructs from a value.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the status (OK if a value is held).
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  /// Returns the held value. CHECK-fails on error.
  const T& value() const& {
    TOKRA_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    TOKRA_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    TOKRA_CHECK(ok());
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define TOKRA_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::tokra::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a StatusOr expression; assigns the value or propagates the error.
#define TOKRA_ASSIGN_OR_RETURN(lhs, expr)            \
  auto TOKRA_CONCAT_(_sor_, __LINE__) = (expr);      \
  if (!TOKRA_CONCAT_(_sor_, __LINE__).ok())          \
    return TOKRA_CONCAT_(_sor_, __LINE__).status();  \
  lhs = std::move(TOKRA_CONCAT_(_sor_, __LINE__)).value()

#define TOKRA_CONCAT_INNER_(a, b) a##b
#define TOKRA_CONCAT_(a, b) TOKRA_CONCAT_INNER_(a, b)

}  // namespace tokra

#endif  // TOKRA_UTIL_STATUS_H_
