#include "pilot/pilot_pst.h"

#include <algorithm>
#include <limits>

#include "em/paged_array.h"
#include "util/bits.h"
#include "util/check.h"
#include "wbb/params.h"

namespace tokra::pilot {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// --- meta ----------------------------------------------------------------

std::uint64_t PilotPst::MetaGet(std::size_t w) const {
  em::PageRef mp = pager_->Fetch(meta_);
  return mp.Get(w);
}

void PilotPst::MetaSet(std::size_t w, std::uint64_t v) {
  em::PageRef mp = pager_->Fetch(meta_);
  mp.Set(w, v);
}

std::uint32_t PilotPst::branch() const {
  return static_cast<std::uint32_t>(MetaGet(kMBranch));
}
std::uint32_t PilotPst::leaf_cap() const {
  return static_cast<std::uint32_t>(MetaGet(kMLeafCap));
}
std::uint64_t PilotPst::size() const { return MetaGet(kMLive); }

std::uint64_t PilotPst::WeightCap(std::uint32_t level) const {
  return wbb::WbbParams{.branch = branch(), .leaf_cap = leaf_cap()}
      .WeightCap(level);
}

// --- record I/O ---------------------------------------------------------

std::vector<TNodeRec> PilotPst::LoadTNodes(em::BlockId base) const {
  em::PageRef h = pager_->Fetch(base);
  TOKRA_DCHECK(h.Get(kHKind) == 0);
  std::uint32_t n = static_cast<std::uint32_t>(h.Get(kHIntNT));
  std::uint32_t nb = static_cast<std::uint32_t>(h.Get(kHIntNTB));
  std::vector<em::BlockId> blocks(nb);
  for (std::uint32_t i = 0; i < nb; ++i) blocks[i] = h.Get(kHIntTIds + i);
  h = em::PageRef();
  em::PagedArray<TNodeRec> arr(pager_, blocks);
  std::vector<TNodeRec> out;
  arr.ReadRange(0, n, &out);
  return out;
}

TNodeRec PilotPst::LoadTNode(const TRef& t) const {
  em::PageRef h = pager_->Fetch(t.base);
  std::uint32_t nb = static_cast<std::uint32_t>(h.Get(kHIntNTB));
  std::vector<em::BlockId> blocks(nb);
  for (std::uint32_t i = 0; i < nb; ++i) blocks[i] = h.Get(kHIntTIds + i);
  h = em::PageRef();
  em::PagedArray<TNodeRec> arr(pager_, blocks);
  return arr.Get(t.idx);
}

void PilotPst::StoreTNode(const TRef& t, const TNodeRec& rec) {
  em::PageRef h = pager_->Fetch(t.base);
  std::uint32_t nb = static_cast<std::uint32_t>(h.Get(kHIntNTB));
  std::vector<em::BlockId> blocks(nb);
  for (std::uint32_t i = 0; i < nb; ++i) blocks[i] = h.Get(kHIntTIds + i);
  h = em::PageRef();
  em::PagedArray<TNodeRec> arr(pager_, blocks);
  arr.Set(t.idx, rec);
}

std::vector<Point> PilotPst::PilotRead(const TNodeRec& rec) const {
  std::vector<em::BlockId> blocks(rec.pilot_blocks,
                                  rec.pilot_blocks + kPilotBlocks);
  em::PagedArray<Point> arr(pager_, blocks);
  std::vector<Point> pts;
  arr.ReadRange(0, static_cast<std::uint32_t>(rec.pilot_count), &pts);
  return pts;
}

void PilotPst::PrefetchPilots(
    std::span<const std::pair<TRef, TNodeRec>> recs) const {
  std::vector<em::BlockId> ids;
  ids.reserve(recs.size());
  for (const auto& [t, rec] : recs) {
    if (rec.pilot_count == 0) continue;
    // Only the blocks PilotRead will touch: prefetch must batch the reads
    // that happen anyway, never add transfers.
    std::uint32_t nb = em::PagedArray<Point>::BlocksFor(
        B(), static_cast<std::uint32_t>(rec.pilot_count));
    for (std::uint32_t i = 0; i < nb; ++i) ids.push_back(rec.pilot_blocks[i]);
  }
  if (ids.size() > 1) pager_->Prefetch(ids);
}

void PilotPst::PilotWrite(const TRef& t, TNodeRec* rec,
                          const std::vector<Point>& pts) {
  TOKRA_CHECK(pts.size() <= PilotMax());
  std::vector<em::BlockId> blocks(rec->pilot_blocks,
                                  rec->pilot_blocks + kPilotBlocks);
  em::PagedArray<Point> arr(pager_, blocks);
  if (!pts.empty()) arr.WriteRange(0, pts);
  rec->pilot_count = pts.size();
  double rep = kInf, pmax = -kInf;
  for (const Point& p : pts) {
    rep = std::min(rep, p.score);
    pmax = std::max(pmax, p.score);
  }
  rec->set_rep(pts.empty() ? 0.0 : rep);
  rec->set_pmax(pts.empty() ? 0.0 : pmax);
  StoreTNode(t, *rec);
}

TRef PilotPst::RootTRef() const {
  em::BlockId root = MetaGet(kMRoot);
  em::PageRef h = pager_->Fetch(root);
  TOKRA_CHECK(h.Get(kHKind) == 0);  // the root is always internal
  return TRef{root, static_cast<TIndex>(h.Get(kHIntRoot))};
}

TRef PilotPst::SlabChild(const TNodeRec& rec) const {
  TOKRA_DCHECK(rec.is_slab());
  em::PageRef h = pager_->Fetch(rec.base_child);
  if (h.Get(kHKind) == 1) return TRef{};  // leaf base child: no T-subtree
  return TRef{rec.base_child, static_cast<TIndex>(h.Get(kHIntRoot))};
}

// --- insertion -----------------------------------------------------------

Status PilotPst::Insert(const Point& p) {
  em::BlockId cur = MetaGet(kMRoot);
  std::vector<em::BlockId> path;
  bool placed = false;

  while (true) {
    path.push_back(cur);
    em::PageRef h = pager_->Fetch(cur);
    h.Set(kHWeight, h.Get(kHWeight) + 1);
    if (h.Get(kHKind) == 1) {  // leaf: record the x key
      std::uint32_t m = static_cast<std::uint32_t>(h.Get(kHLeafM));
      std::uint32_t nx = static_cast<std::uint32_t>(h.Get(kHLeafNX));
      std::vector<em::BlockId> xb(nx);
      for (std::uint32_t i = 0; i < nx; ++i) xb[i] = h.Get(kHLeafXIds + i);
      h.Set(kHLeafM, m + 1);
      h = em::PageRef();
      em::PagedArray<double> xs(pager_, xb);
      TOKRA_CHECK(m < xs.capacity());
      xs.Set(m, p.x);
      break;
    }
    TIndex v = static_cast<TIndex>(h.Get(kHIntRoot));
    h = em::PageRef();
    std::vector<TNodeRec> recs = LoadTNodes(cur);
    em::BlockId next = em::kNullBlock;
    while (true) {
      TNodeRec& rec = recs[v];
      if (!placed) {
        bool join = rec.pilot_count < PilotMin() || p.score > rec.rep();
        if (!join && rec.is_slab()) {
          // If the child is a base leaf this is the last pilot holder on
          // the path; the point must live here.
          em::PageRef ch = pager_->Fetch(rec.base_child);
          join = ch.Get(kHKind) == 1;
        }
        if (join) {
          // Deliver p here; any overflow cascades down as a carry (the
          // paper's push-down chain).
          PushDown(TRef{cur, v}, {p});
          placed = true;
          // Reload: the push-down may have rewritten this very record.
          recs = LoadTNodes(cur);
        }
      }
      const TNodeRec& r2 = recs[v];
      if (r2.is_slab()) {
        next = r2.base_child;
        break;
      }
      const TNodeRec& left = recs[static_cast<TIndex>(r2.left)];
      v = (p.x < left.hi_x()) ? static_cast<TIndex>(r2.left)
                              : static_cast<TIndex>(r2.right);
    }
    cur = next;
  }
  TOKRA_CHECK(placed);  // every x-path ends at a leaf slab that accepts
  MetaSet(kMLive, MetaGet(kMLive) + 1);
  MetaSet(kMKeys, MetaGet(kMKeys) + 1);
  Rebalance(path);
  return Status::Ok();
}

// --- push-down (overflow) --------------------------------------------

// Delivers `carry` (points higher than everything below `t`) into pilot(t);
// if the union exceeds 2B, keeps the highest B and cascades the rest — the
// paper's chain of push-downs, with the in-flight points held in scratch so
// no pilot set ever materializes above 2B points.
void PilotPst::PushDown(TRef t, std::vector<Point> carry) {
  if (carry.empty()) return;
  TNodeRec rec = LoadTNode(t);
  std::vector<Point> pts = PilotRead(rec);
  pts.insert(pts.end(), carry.begin(), carry.end());
  rec.ins_tokens += carry.size();  // Lemma 3 rules 1 and 3 (arrivals)
  if (pts.size() <= PilotMax()) {
    PilotWrite(t, &rec, pts);
    return;
  }
  std::sort(pts.begin(), pts.end(), ByScoreDesc{});
  std::vector<Point> keep(pts.begin(), pts.begin() + PilotTarget());
  std::vector<Point> move(pts.begin() + PilotTarget(), pts.end());
  TOKRA_PCHECK(rec.ins_tokens >= move.size());  // Lemma 3 invariant 1
  rec.ins_tokens = rec.ins_tokens >= move.size()
                       ? rec.ins_tokens - move.size()
                       : 0;  // rule 3: tokens descend with the points
  PilotWrite(t, &rec, keep);

  if (rec.is_slab()) {
    TRef c = SlabChild(rec);
    TOKRA_CHECK(c.valid());  // a leaf slab's pilot can never overflow
    PushDown(c, std::move(move));
    return;
  }
  TRef lt{t.base, static_cast<TIndex>(rec.left)};
  TRef rt{t.base, static_cast<TIndex>(rec.right)};
  TNodeRec lrec = LoadTNode(lt);
  std::vector<Point> lmove, rmove;
  for (const Point& p : move) {
    (p.x < lrec.hi_x() ? lmove : rmove).push_back(p);
  }
  PushDown(lt, std::move(lmove));
  PushDown(rt, std::move(rmove));
}

// --- deletion -------------------------------------------------------

Status PilotPst::Delete(const Point& p) {
  em::BlockId cur = MetaGet(kMRoot);
  while (true) {
    em::PageRef h = pager_->Fetch(cur);
    if (h.Get(kHKind) == 1) {
      return Status::NotFound("point not present");
    }
    TIndex v = static_cast<TIndex>(h.Get(kHIntRoot));
    h = em::PageRef();
    std::vector<TNodeRec> recs = LoadTNodes(cur);
    em::BlockId next = em::kNullBlock;
    while (true) {
      TNodeRec& rec = recs[v];
      if (rec.pilot_count > 0 && p.score >= rec.rep()) {
        // The point, if it exists, must be in this pilot set: everything
        // deeper scores strictly below the representative.
        TRef t{cur, v};
        std::vector<Point> pts = PilotRead(rec);
        auto it = std::find(pts.begin(), pts.end(), p);
        if (it == pts.end()) return Status::NotFound("point not present");
        pts.erase(it);
        rec.del_tokens += 1;  // Lemma 3 rule 2
        PilotWrite(t, &rec, pts);
        if (Underflows(rec, t)) FixUnderflow(t);
        MetaSet(kMLive, MetaGet(kMLive) - 1);
        // Periodic global rebuild keeps height Theta(lg n_live) and bounds
        // the dead-key fraction (the paper's global rebuilding step).
        std::uint64_t live = MetaGet(kMLive);
        std::uint64_t keys = MetaGet(kMKeys);
        if (keys >= 4 && keys >= 2 * std::max<std::uint64_t>(live, 1)) {
          GlobalRebuild();
        }
        return Status::Ok();
      }
      if (rec.is_slab()) {
        next = rec.base_child;
        break;
      }
      const TNodeRec& left = recs[static_cast<TIndex>(rec.left)];
      v = (p.x < left.hi_x()) ? static_cast<TIndex>(rec.left)
                              : static_cast<TIndex>(rec.right);
    }
    cur = next;
  }
}

bool PilotPst::Underflows(const TNodeRec& rec, const TRef& t) const {
  if (rec.pilot_count >= PilotMin()) return false;
  // Underflow requires a non-empty descendant pilot; by the size invariant
  // it suffices to look at the (at most two) children.
  if (rec.is_slab()) {
    TRef c = SlabChild(rec);
    if (!c.valid()) return false;
    return LoadTNode(c).pilot_count > 0;
  }
  TNodeRec l = LoadTNode(TRef{t.base, static_cast<TIndex>(rec.left)});
  if (l.pilot_count > 0) return true;
  TNodeRec r = LoadTNode(TRef{t.base, static_cast<TIndex>(rec.right)});
  return r.pilot_count > 0;
}

bool PilotPst::PullUp(const TRef& t, TNodeRec* rec) {
  if (rec->pilot_count >= PilotTarget()) return false;
  std::uint64_t need = std::min<std::uint64_t>(
      PilotMin(), PilotTarget() - rec->pilot_count);
  if (need == 0) return false;

  // Gather the (at most two) children and their pilot contents.
  std::vector<TRef> kids;
  if (rec->is_slab()) {
    TRef c = SlabChild(*rec);
    if (c.valid()) kids.push_back(c);
  } else {
    kids.push_back(TRef{t.base, static_cast<TIndex>(rec->left)});
    kids.push_back(TRef{t.base, static_cast<TIndex>(rec->right)});
  }
  struct KidState {
    TRef t;
    TNodeRec rec;
    std::vector<Point> pts;
  };
  std::vector<KidState> ks;
  std::uint64_t avail = 0;
  for (const TRef& k : kids) {
    KidState s{k, LoadTNode(k), {}};
    s.pts = PilotRead(s.rec);
    avail += s.pts.size();
    ks.push_back(std::move(s));
  }

  std::vector<Point> mine = PilotRead(*rec);
  // Draining requires *fewer* points than requested: then every child holds
  // < B/2, so by the size invariant the whole proper subtree empties. With
  // avail == need the normal path empties the children and the caller's
  // child-remedy loop refills them from below.
  bool draining = avail < need;
  std::uint64_t take = std::min(avail, need);

  if (draining) {
    for (KidState& s : ks) {
      mine.insert(mine.end(), s.pts.begin(), s.pts.end());
      s.rec.del_tokens += s.pts.size();  // rule 4 bookkeeping before wipe
      PilotWrite(s.t, &s.rec, {});
    }
  } else {
    // Move the `take` highest points across both children.
    struct Tagged {
      Point p;
      std::size_t kid;
    };
    std::vector<Tagged> pool;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      for (const Point& p : ks[i].pts) pool.push_back(Tagged{p, i});
    }
    std::nth_element(pool.begin(), pool.begin() + take - 1, pool.end(),
                     [](const Tagged& a, const Tagged& b) {
                       return a.p.score > b.p.score;
                     });
    std::vector<std::vector<Point>> keep(ks.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i < take) {
        mine.push_back(pool[i].p);
      } else {
        keep[pool[i].kid].push_back(pool[i].p);
      }
    }
    for (std::size_t i = 0; i < ks.size(); ++i) {
      ks[i].rec.del_tokens += ks[i].pts.size() - keep[i].size();  // rule 4
      PilotWrite(ks[i].t, &ks[i].rec, keep[i]);
    }
  }
  TOKRA_PCHECK(rec->del_tokens >= take);  // Lemma 3 invariant 2
  rec->del_tokens = rec->del_tokens >= take ? rec->del_tokens - take : 0;
  PilotWrite(t, rec, mine);
  return draining;
}

void PilotPst::FixUnderflow(TRef t) {
  TNodeRec rec = LoadTNode(t);
  if (!Underflows(rec, t)) return;
  for (int round = 0; round < 2; ++round) {
    bool draining = PullUp(t, &rec);
    if (draining) return;
    // Remedy any child underflow before (and after) the second pull-up.
    if (rec.is_slab()) {
      TRef c = SlabChild(rec);
      if (c.valid()) {
        TNodeRec crec = LoadTNode(c);
        if (Underflows(crec, c)) FixUnderflow(c);
      }
    } else {
      for (std::uint64_t ci : {rec.left, rec.right}) {
        TRef c{t.base, static_cast<TIndex>(ci)};
        TNodeRec crec = LoadTNode(c);
        if (Underflows(crec, c)) FixUnderflow(c);
      }
    }
    rec = LoadTNode(t);
    if (rec.pilot_count >= PilotTarget()) return;
  }
}

}  // namespace tokra::pilot
