// E11 — the threshold reduction pipeline: selector query O(lg_B n) +
// 3-sided reporting + O(k'/B) selection; reported candidate volume stays
// O(k) thanks to the approximate threshold.

#include "bench/common.h"
#include "core/topk_index.h"
#include "pilot/pilot_pst.h"
#include "st12/selector.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e11_reduction");
  std::printf("# E11: the reduction — threshold + 3-sided report + select\n");
  Header("pipeline breakdown vs k (n=2^16, B=256, st12 selector)",
         {"k", "threshold I/Os", "report I/Os", "candidates k'", "k'/k",
          "end-to-end I/Os"});
  em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 64});
  Rng rng(13);
  const std::size_t n = 1u << 16;
  auto pts = RandomPoints(&rng, n);
  auto pst = pilot::PilotPst::Build(&pager, pts);
  auto sel = st12::ShengTaoSelector::Build(&pager, pts);
  core::TopkIndex::Options options;
  options.selector = core::TopkIndex::Options::Selector::kSt12;
  auto idx = core::TopkIndex::Build(&pager, pts, options).value();

  for (std::uint64_t k : {4u, 64u, 512u, 2048u}) {
    double x1 = 1e5, x2 = 9e5;
    double thr = 0;
    std::uint64_t thr_ios = ColdIos(&pager, [&] {
      thr = sel.SelectApprox(x1, x2, k).value();
    });
    std::vector<Point> cand;
    std::uint64_t rep_ios = ColdIos(&pager, [&] {
      Must(pst.Report3Sided(x1, x2, thr, &cand));
    });
    std::uint64_t full_ios = ColdIos(&pager, [&] {
      idx->TopK(x1, x2, k).value();
    });
    Row({U(k), U(thr_ios), U(rep_ios), U(cand.size()),
         D(static_cast<double>(cand.size()) / k), U(full_ios)});
  }
  std::printf("\nShape check: threshold cost is flat (O(lg_B n)); reported "
              "candidates stay within the selector's constant factor of k; "
              "report I/Os track k'/B plus a logarithmic base.\n");
  return 0;
}
