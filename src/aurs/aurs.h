// AURS: approximate union-rank selection (Lemma 5 and the appendix).
//
// Given m disjoint sets accessible only via Max and approximate RankSelect,
// and k <= (1/c1) * min |L_i|, returns an element of the union whose rank in
// the union lies in [k, c'k] for a constant c' depending only on c1, using
// O(m (cost_max + cost_rank)) operator calls.

#ifndef TOKRA_AURS_AURS_H_
#define TOKRA_AURS_AURS_H_

#include <cstdint>
#include <span>

#include "aurs/ranked_set.h"
#include "util/status.h"

namespace tokra::aurs {

/// Operator-call counters; the caller converts these to I/Os by multiplying
/// by its operators' costs (the lemma's O(m (cost_max + cost_rank))).
struct AursStats {
  std::uint32_t rounds = 0;
  std::uint64_t rank_calls = 0;
  std::uint64_t max_calls = 0;
};

/// The worst-case approximation factor proven in the appendix:
/// rank(v) < c^2 (2 + 2c) k for operator constant c.
inline double AursWorstFactor(double c) { return c * c * (2 + 2 * c); }

/// Runs the appendix algorithm. All sets must be non-empty and satisfy
/// k <= (1/c) * |L_i| where c = max RankFactor of the sets (condition (2)).
/// Returns the selected element's value.
///
/// With strict=false the condition-(2) check is skipped: callers whose
/// RankSelect clamps rho to [1, |L_i|] (e.g. Lemma 4's multi-slab sets,
/// whose sizes the query cannot control) accept a weakened constant on the
/// small sets in exchange for robustness; see lemma4/structure.h.
StatusOr<double> UnionRankSelect(std::span<RankedSet* const> sets,
                                 std::uint64_t k, AursStats* stats = nullptr,
                                 bool strict = true);

}  // namespace tokra::aurs

#endif  // TOKRA_AURS_AURS_H_
