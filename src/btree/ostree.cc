#include "btree/ostree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/bits.h"
#include "util/check.h"

namespace tokra::btree {
namespace {

// --- node views -------------------------------------------------------
// Thin accessors over a pinned page; all offsets derive from the layout
// documented in ostree.h.

constexpr std::size_t kTagWord = 0;    // 0 = internal, 1 = leaf
constexpr std::size_t kCountWord = 1;  // f (internal) or m (leaf)
constexpr std::size_t kNextWord = 2;   // leaf only: next-leaf block id

class IntView {
 public:
  IntView(em::PageRef page, std::uint32_t cap)
      : page_(std::move(page)), cap_(cap) {}

  static void Init(em::PageRef& page) {
    page.Set(kTagWord, 0);
    page.Set(kCountWord, 0);
  }

  bool is_leaf() const { return page_.Get(kTagWord) == 1; }
  std::uint32_t f() const {
    return static_cast<std::uint32_t>(page_.Get(kCountWord));
  }
  void set_f(std::uint32_t v) { page_.Set(kCountWord, v); }

  em::BlockId child(std::uint32_t i) const { return page_.Get(2 + i); }
  void set_child(std::uint32_t i, em::BlockId id) { page_.Set(2 + i, id); }

  std::uint64_t count(std::uint32_t i) const { return page_.Get(2 + cap_ + i); }
  void set_count(std::uint32_t i, std::uint64_t c) {
    page_.Set(2 + cap_ + i, c);
  }

  double lowkey(std::uint32_t i) const {
    return page_.GetDouble(2 + 2 * static_cast<std::size_t>(cap_) + i);
  }
  void set_lowkey(std::uint32_t i, double k) {
    page_.SetDouble(2 + 2 * static_cast<std::size_t>(cap_) + i, k);
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (std::uint32_t i = 0; i < f(); ++i) t += count(i);
    return t;
  }

  /// Largest i with i == 0 or lowkey(i) <= key.
  std::uint32_t Route(double key) const {
    std::uint32_t i = 0;
    for (std::uint32_t j = 1; j < f(); ++j) {
      if (lowkey(j) <= key) i = j;
    }
    return i;
  }

  /// Opens slot `i`, shifting entries [i, f) right by one.
  void InsertSlot(std::uint32_t i, em::BlockId id, std::uint64_t cnt,
                  double low) {
    std::uint32_t n = f();
    TOKRA_DCHECK(n < cap_);
    for (std::uint32_t j = n; j > i; --j) {
      set_child(j, child(j - 1));
      set_count(j, count(j - 1));
      set_lowkey(j, lowkey(j - 1));
    }
    set_child(i, id);
    set_count(i, cnt);
    set_lowkey(i, low);
    set_f(n + 1);
  }

  /// Removes slot `i`, shifting entries (i, f) left by one.
  void RemoveSlot(std::uint32_t i) {
    std::uint32_t n = f();
    for (std::uint32_t j = i; j + 1 < n; ++j) {
      set_child(j, child(j + 1));
      set_count(j, count(j + 1));
      set_lowkey(j, lowkey(j + 1));
    }
    set_f(n - 1);
  }

  em::PageRef& page() { return page_; }

 private:
  em::PageRef page_;
  std::uint32_t cap_;
};

class LeafView {
 public:
  LeafView(em::PageRef page, std::uint32_t cap)
      : page_(std::move(page)), cap_(cap) {}

  static void Init(em::PageRef& page) {
    page.Set(kTagWord, 1);
    page.Set(kCountWord, 0);
    page.Set(kNextWord, em::kNullBlock);
  }

  bool is_leaf() const { return page_.Get(kTagWord) == 1; }
  std::uint32_t m() const {
    return static_cast<std::uint32_t>(page_.Get(kCountWord));
  }
  void set_m(std::uint32_t v) { page_.Set(kCountWord, v); }

  em::BlockId next() const { return page_.Get(kNextWord); }
  void set_next(em::BlockId id) { page_.Set(kNextWord, id); }

  double key(std::uint32_t i) const { return page_.GetDouble(3 + i); }
  void set_key(std::uint32_t i, double k) { page_.SetDouble(3 + i, k); }

  double aux(std::uint32_t i) const { return page_.GetDouble(3 + cap_ + i); }
  void set_aux(std::uint32_t i, double a) { page_.SetDouble(3 + cap_ + i, a); }

  /// Index of the first key >= k (== m() if none).
  std::uint32_t LowerBound(double k) const {
    std::uint32_t n = m();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (key(i) >= k) return i;
    }
    return n;
  }

  void InsertAt(std::uint32_t i, double k, double a) {
    std::uint32_t n = m();
    TOKRA_DCHECK(n < cap_);
    for (std::uint32_t j = n; j > i; --j) {
      set_key(j, key(j - 1));
      set_aux(j, aux(j - 1));
    }
    set_key(i, k);
    set_aux(i, a);
    set_m(n + 1);
  }

  void RemoveAt(std::uint32_t i) {
    std::uint32_t n = m();
    for (std::uint32_t j = i; j + 1 < n; ++j) {
      set_key(j, key(j + 1));
      set_aux(j, aux(j + 1));
    }
    set_m(n - 1);
  }

  em::PageRef& page() { return page_; }

 private:
  em::PageRef page_;
  std::uint32_t cap_;
};

bool PageIsLeaf(const em::PageRef& page) { return page.Get(kTagWord) == 1; }

}  // namespace

// --- construction -------------------------------------------------------

OsTree OsTree::Create(em::Pager* pager) {
  TOKRA_CHECK(pager->B() >= 32);  // keeps fanout/fill arithmetic sane
  OsTree t(pager);
  t.ref_.root = pager->Allocate();
  em::PageRef page = pager->Create(t.ref_.root);
  LeafView::Init(page);
  t.ref_.size = 0;
  return t;
}

// --- lookups --------------------------------------------------------------

bool OsTree::Contains(double key) const { return FindAux(key).ok(); }

StatusOr<double> OsTree::FindAux(double key) const {
  em::BlockId id = ref_.root;
  while (true) {
    em::PageRef page = pager_->Fetch(id);
    if (PageIsLeaf(page)) {
      LeafView leaf(std::move(page), LeafCap());
      std::uint32_t i = leaf.LowerBound(key);
      if (i < leaf.m() && leaf.key(i) == key) return leaf.aux(i);
      return Status::NotFound("key not in tree");
    }
    IntView node(std::move(page), InternalCap());
    id = node.child(node.Route(key));
  }
}

std::uint64_t OsTree::CountGreaterEq(double key, bool strict) const {
  std::uint64_t acc = 0;
  em::BlockId id = ref_.root;
  while (true) {
    em::PageRef page = pager_->Fetch(id);
    if (PageIsLeaf(page)) {
      LeafView leaf(std::move(page), LeafCap());
      for (std::uint32_t i = 0; i < leaf.m(); ++i) {
        double k = leaf.key(i);
        if (strict ? k > key : k >= key) ++acc;
      }
      return acc;
    }
    IntView node(std::move(page), InternalCap());
    std::uint32_t i = node.Route(key);
    for (std::uint32_t j = i + 1; j < node.f(); ++j) acc += node.count(j);
    id = node.child(i);
  }
}

std::uint64_t OsTree::CountInRange(double lo, double hi) const {
  if (lo > hi) return 0;
  return CountGreaterEq(lo, /*strict=*/false) -
         CountGreaterEq(hi, /*strict=*/true);
}

StatusOr<Entry> OsTree::SelectDesc(std::uint64_t r) const {
  if (r < 1 || r > ref_.size) {
    return Status::OutOfRange("rank outside [1, size]");
  }
  em::BlockId id = ref_.root;
  while (true) {
    em::PageRef page = pager_->Fetch(id);
    if (PageIsLeaf(page)) {
      LeafView leaf(std::move(page), LeafCap());
      TOKRA_CHECK(r <= leaf.m());
      std::uint32_t i = leaf.m() - static_cast<std::uint32_t>(r);
      return Entry{leaf.key(i), leaf.aux(i)};
    }
    IntView node(std::move(page), InternalCap());
    std::uint32_t j = node.f();
    while (j > 0) {
      --j;
      if (r <= node.count(j)) break;
      r -= node.count(j);
    }
    id = node.child(j);
  }
}

StatusOr<Entry> OsTree::SelectAsc(std::uint64_t r) const {
  if (r < 1 || r > ref_.size) {
    return Status::OutOfRange("rank outside [1, size]");
  }
  return SelectDesc(ref_.size - r + 1);
}

StatusOr<Entry> OsTree::SelectDescInRange(double lo, double hi,
                                          std::uint64_t r) const {
  std::uint64_t above = CountGreaterEq(hi, /*strict=*/true);
  TOKRA_ASSIGN_OR_RETURN(Entry e, SelectDesc(above + r));
  if (e.key < lo) {
    return Status::OutOfRange("fewer than r keys in [lo, hi]");
  }
  return e;
}

StatusOr<Entry> OsTree::Max() const {
  if (ref_.size == 0) return Status::NotFound("empty tree");
  return SelectDesc(1);
}

StatusOr<Entry> OsTree::Min() const {
  if (ref_.size == 0) return Status::NotFound("empty tree");
  return SelectDesc(ref_.size);
}

void OsTree::ScanRange(double lo, double hi, std::vector<Entry>* out) const {
  if (ref_.size == 0 || lo > hi) return;
  // Descend to the leaf that could contain `lo`, then walk the leaf chain.
  em::BlockId id = ref_.root;
  while (true) {
    em::PageRef page = pager_->Fetch(id);
    if (PageIsLeaf(page)) break;
    IntView node(std::move(page), InternalCap());
    id = node.child(node.Route(lo));
  }
  while (id != em::kNullBlock) {
    LeafView leaf(pager_->Fetch(id), LeafCap());
    for (std::uint32_t i = 0; i < leaf.m(); ++i) {
      double k = leaf.key(i);
      if (k > hi) return;
      if (k >= lo) out->push_back(Entry{k, leaf.aux(i)});
    }
    id = leaf.next();
  }
}

void OsTree::ScanAll(std::vector<Entry>* out) const {
  ScanRange(-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(), out);
}

// --- insertion --------------------------------------------------------

bool OsTree::IsFull(em::BlockId id) const {
  em::PageRef page = pager_->Fetch(id);
  if (PageIsLeaf(page)) {
    return page.Get(kCountWord) >= LeafCap();
  }
  return page.Get(kCountWord) >= InternalCap();
}

void OsTree::SplitRoot() {
  em::BlockId old_root = ref_.root;
  em::BlockId new_root = pager_->Allocate();
  {
    em::PageRef page = pager_->Create(new_root);
    IntView::Init(page);
    IntView root(std::move(page), InternalCap());
    root.InsertSlot(0, old_root, ref_.size, 0.0);
  }
  ref_.root = new_root;
  em::PageRef parent_page = pager_->Fetch(new_root);
  IntView parent(std::move(parent_page), InternalCap());
  SplitChild(parent.page(), 0);
}

OsTree::SplitResult OsTree::SplitChild(em::PageRef& parent_page,
                                       std::uint32_t i) {
  IntView parent(std::move(parent_page), InternalCap());
  em::BlockId left_id = parent.child(i);
  em::BlockId right_id = pager_->Allocate();
  SplitResult res{right_id, 0, 0.0};

  em::PageRef left_page = pager_->Fetch(left_id);
  if (PageIsLeaf(left_page)) {
    LeafView left(std::move(left_page), LeafCap());
    std::uint32_t m = left.m();
    std::uint32_t h = m / 2;
    em::PageRef rp = pager_->Create(right_id);
    LeafView::Init(rp);
    LeafView right(std::move(rp), LeafCap());
    for (std::uint32_t j = h; j < m; ++j) {
      right.set_key(j - h, left.key(j));
      right.set_aux(j - h, left.aux(j));
    }
    right.set_m(m - h);
    left.set_m(h);
    right.set_next(left.next());
    left.set_next(right_id);
    res.right_count = m - h;
    res.separator = right.key(0);
  } else {
    IntView left(std::move(left_page), InternalCap());
    std::uint32_t f = left.f();
    std::uint32_t h = f / 2;
    em::PageRef rp = pager_->Create(right_id);
    IntView::Init(rp);
    IntView right(std::move(rp), InternalCap());
    std::uint64_t moved = 0;
    for (std::uint32_t j = h; j < f; ++j) {
      right.set_child(j - h, left.child(j));
      right.set_count(j - h, left.count(j));
      if (j > h) right.set_lowkey(j - h, left.lowkey(j));
      moved += left.count(j);
    }
    right.set_f(f - h);
    res.separator = left.lowkey(h);
    left.set_f(h);
    res.right_count = moved;
  }

  parent.set_count(i, parent.count(i) - res.right_count);
  parent.InsertSlot(i + 1, right_id, res.right_count, res.separator);
  parent_page = std::move(parent.page());
  return res;
}

void OsTree::InsertNonfull(em::BlockId id, double key, double aux) {
  while (true) {
    em::PageRef page = pager_->Fetch(id);
    if (PageIsLeaf(page)) {
      LeafView leaf(std::move(page), LeafCap());
      std::uint32_t i = leaf.LowerBound(key);
      TOKRA_DCHECK(i == leaf.m() || leaf.key(i) != key);  // pre-checked
      leaf.InsertAt(i, key, aux);
      return;
    }
    IntView node(std::move(page), InternalCap());
    std::uint32_t i = node.Route(key);
    if (IsFull(node.child(i))) {
      SplitResult sr = SplitChild(node.page(), i);
      if (key >= sr.separator) ++i;
    }
    node.set_count(i, node.count(i) + 1);
    id = node.child(i);
  }
}

Status OsTree::Insert(double key, double aux) {
  if (std::isnan(key)) return Status::InvalidArgument("NaN key");
  if (Contains(key)) return Status::AlreadyExists("duplicate key");
  if (IsFull(ref_.root)) SplitRoot();
  InsertNonfull(ref_.root, key, aux);
  ++ref_.size;
  return Status::Ok();
}

// --- deletion ----------------------------------------------------------

std::uint32_t OsTree::FixChild(em::PageRef& parent_page, std::uint32_t i) {
  IntView parent(std::move(parent_page), InternalCap());
  em::BlockId child_id = parent.child(i);
  em::PageRef child_page = pager_->Fetch(child_id);
  const bool leaf_level = PageIsLeaf(child_page);

  auto fill_of = [&](em::BlockId id) -> std::uint32_t {
    em::PageRef p = pager_->Fetch(id);
    return static_cast<std::uint32_t>(p.Get(kCountWord));
  };
  std::uint32_t min_fill = leaf_level ? LeafMin() : InternalMin();

  // Try borrowing from the left sibling.
  if (i > 0 && fill_of(parent.child(i - 1)) > min_fill) {
    em::BlockId left_id = parent.child(i - 1);
    if (leaf_level) {
      LeafView left(pager_->Fetch(left_id), LeafCap());
      LeafView cur(std::move(child_page), LeafCap());
      std::uint32_t lm = left.m();
      double k = left.key(lm - 1), a = left.aux(lm - 1);
      left.set_m(lm - 1);
      cur.InsertAt(0, k, a);
      parent.set_lowkey(i, k);
      parent.set_count(i - 1, parent.count(i - 1) - 1);
      parent.set_count(i, parent.count(i) + 1);
    } else {
      IntView left(pager_->Fetch(left_id), InternalCap());
      IntView cur(std::move(child_page), InternalCap());
      std::uint32_t lf = left.f();
      em::BlockId moved = left.child(lf - 1);
      std::uint64_t moved_cnt = left.count(lf - 1);
      double moved_sep = left.lowkey(lf - 1);
      left.set_f(lf - 1);
      // The old separator of `cur` becomes the bound of its old first child.
      cur.InsertSlot(0, moved, moved_cnt, 0.0);
      cur.set_lowkey(1, parent.lowkey(i));
      parent.set_lowkey(i, moved_sep);
      parent.set_count(i - 1, parent.count(i - 1) - moved_cnt);
      parent.set_count(i, parent.count(i) + moved_cnt);
    }
    parent_page = std::move(parent.page());
    return i;
  }

  // Try borrowing from the right sibling.
  if (i + 1 < parent.f() && fill_of(parent.child(i + 1)) > min_fill) {
    em::BlockId right_id = parent.child(i + 1);
    if (leaf_level) {
      LeafView right(pager_->Fetch(right_id), LeafCap());
      LeafView cur(std::move(child_page), LeafCap());
      double k = right.key(0), a = right.aux(0);
      right.RemoveAt(0);
      cur.InsertAt(cur.m(), k, a);
      parent.set_lowkey(i + 1, right.key(0));
      parent.set_count(i + 1, parent.count(i + 1) - 1);
      parent.set_count(i, parent.count(i) + 1);
    } else {
      IntView right(pager_->Fetch(right_id), InternalCap());
      IntView cur(std::move(child_page), InternalCap());
      em::BlockId moved = right.child(0);
      std::uint64_t moved_cnt = right.count(0);
      double right_next_sep = right.lowkey(1);
      right.RemoveSlot(0);
      std::uint32_t cf = cur.f();
      cur.InsertSlot(cf, moved, moved_cnt, parent.lowkey(i + 1));
      parent.set_lowkey(i + 1, right_next_sep);
      parent.set_count(i + 1, parent.count(i + 1) - moved_cnt);
      parent.set_count(i, parent.count(i) + moved_cnt);
    }
    parent_page = std::move(parent.page());
    return i;
  }

  // Merge with a sibling. Merge child j+1 into child j where j = i-1 if a
  // left sibling exists, else j = i.
  std::uint32_t j = (i > 0) ? i - 1 : i;
  em::BlockId left_id = parent.child(j);
  em::BlockId right_id = parent.child(j + 1);
  child_page = em::PageRef();  // release pin before re-fetching below
  if (leaf_level) {
    LeafView left(pager_->Fetch(left_id), LeafCap());
    LeafView right(pager_->Fetch(right_id), LeafCap());
    std::uint32_t lm = left.m(), rm = right.m();
    TOKRA_CHECK(lm + rm <= LeafCap());
    for (std::uint32_t t = 0; t < rm; ++t) {
      left.set_key(lm + t, right.key(t));
      left.set_aux(lm + t, right.aux(t));
    }
    left.set_m(lm + rm);
    left.set_next(right.next());
  } else {
    IntView left(pager_->Fetch(left_id), InternalCap());
    IntView right(pager_->Fetch(right_id), InternalCap());
    std::uint32_t lf = left.f(), rf = right.f();
    TOKRA_CHECK(lf + rf <= InternalCap());
    for (std::uint32_t t = 0; t < rf; ++t) {
      left.set_child(lf + t, right.child(t));
      left.set_count(lf + t, right.count(t));
      left.set_lowkey(lf + t, t == 0 ? parent.lowkey(j + 1) : right.lowkey(t));
    }
    left.set_f(lf + rf);
  }
  parent.set_count(j, parent.count(j) + parent.count(j + 1));
  parent.RemoveSlot(j + 1);
  pager_->Free(right_id);
  parent_page = std::move(parent.page());
  return j;
}

void OsTree::DeleteRec(em::BlockId id, double key) {
  while (true) {
    em::PageRef page = pager_->Fetch(id);
    if (PageIsLeaf(page)) {
      LeafView leaf(std::move(page), LeafCap());
      std::uint32_t i = leaf.LowerBound(key);
      TOKRA_CHECK(i < leaf.m() && leaf.key(i) == key);  // pre-checked
      leaf.RemoveAt(i);
      return;
    }
    IntView node(std::move(page), InternalCap());
    std::uint32_t i = node.Route(key);
    em::BlockId child_id = node.child(i);
    std::uint32_t fill;
    bool child_is_leaf;
    {
      em::PageRef cp = pager_->Fetch(child_id);
      fill = static_cast<std::uint32_t>(cp.Get(kCountWord));
      child_is_leaf = PageIsLeaf(cp);
    }
    std::uint32_t min_fill = child_is_leaf ? LeafMin() : InternalMin();
    if (fill <= min_fill) {
      i = FixChild(node.page(), i);
    }
    node.set_count(i, node.count(i) - 1);
    id = node.child(i);
  }
}

Status OsTree::Delete(double key) {
  if (!Contains(key)) return Status::NotFound("key not in tree");
  DeleteRec(ref_.root, key);
  --ref_.size;
  // Shrink the root if it became a unary internal node.
  while (true) {
    em::PageRef page = pager_->Fetch(ref_.root);
    if (PageIsLeaf(page) || page.Get(kCountWord) != 1) break;
    IntView root(std::move(page), InternalCap());
    em::BlockId only = root.child(0);
    root.page() = em::PageRef();  // unpin before freeing
    pager_->Free(ref_.root);
    ref_.root = only;
  }
  return Status::Ok();
}

// --- bulk load -------------------------------------------------------

OsTree OsTree::BulkLoad(em::Pager* pager, std::span<const Entry> sorted) {
  TOKRA_CHECK(pager->B() >= 32);
  OsTree t(pager);
  t.ref_.size = sorted.size();

  const std::uint32_t leaf_cap = t.LeafCap();
  const std::uint32_t int_cap = t.InternalCap();
  const std::uint32_t leaf_fill = std::max<std::uint32_t>(
      t.LeafMin() + 1, leaf_cap * 3 / 4);
  const std::uint32_t int_fill =
      std::max<std::uint32_t>(t.InternalMin() + 1, int_cap * 3 / 4);

  struct Piece {
    em::BlockId id;
    std::uint64_t count;
    double low;  // smallest key in the subtree
  };

  // Build the leaf level.
  std::vector<Piece> level;
  std::size_t n = sorted.size();
  if (n == 0) {
    t.ref_.root = pager->Allocate();
    em::PageRef page = pager->Create(t.ref_.root);
    LeafView::Init(page);
    return t;
  }
  std::size_t num_leaves = CeilDiv(n, leaf_fill);
  em::BlockId prev = em::kNullBlock;
  std::size_t pos = 0;
  for (std::size_t li = 0; li < num_leaves; ++li) {
    // Spread the remainder so no leaf underfills.
    std::size_t remaining = n - pos;
    std::size_t leaves_left = num_leaves - li;
    std::size_t take = CeilDiv(remaining, leaves_left);
    TOKRA_CHECK(take <= leaf_cap);
    em::BlockId id = pager->Allocate();
    em::PageRef page = pager->Create(id);
    LeafView::Init(page);
    LeafView leaf(std::move(page), leaf_cap);
    for (std::size_t j = 0; j < take; ++j) {
      TOKRA_DCHECK(j == 0 || sorted[pos + j].key > sorted[pos + j - 1].key);
      leaf.set_key(static_cast<std::uint32_t>(j), sorted[pos + j].key);
      leaf.set_aux(static_cast<std::uint32_t>(j), sorted[pos + j].aux);
    }
    leaf.set_m(static_cast<std::uint32_t>(take));
    level.push_back(Piece{id, take, sorted[pos].key});
    if (prev != em::kNullBlock) {
      LeafView prev_leaf(pager->Fetch(prev), leaf_cap);
      prev_leaf.set_next(id);
    }
    prev = id;
    pos += take;
  }

  // Build internal levels until a single root remains.
  while (level.size() > 1) {
    std::vector<Piece> upper;
    std::size_t num_nodes = CeilDiv(level.size(), int_fill);
    std::size_t idx = 0;
    for (std::size_t ni = 0; ni < num_nodes; ++ni) {
      std::size_t remaining = level.size() - idx;
      std::size_t nodes_left = num_nodes - ni;
      std::size_t take = CeilDiv(remaining, nodes_left);
      TOKRA_CHECK(take <= int_cap && take >= 1);
      em::BlockId id = pager->Allocate();
      em::PageRef page = pager->Create(id);
      IntView::Init(page);
      IntView node(std::move(page), int_cap);
      std::uint64_t total = 0;
      for (std::size_t j = 0; j < take; ++j) {
        const Piece& p = level[idx + j];
        node.set_child(static_cast<std::uint32_t>(j), p.id);
        node.set_count(static_cast<std::uint32_t>(j), p.count);
        if (j > 0) node.set_lowkey(static_cast<std::uint32_t>(j), p.low);
        total += p.count;
      }
      node.set_f(static_cast<std::uint32_t>(take));
      upper.push_back(Piece{id, total, level[idx].low});
      idx += take;
    }
    level = std::move(upper);
  }
  t.ref_.root = level[0].id;
  return t;
}

// --- teardown / validation --------------------------------------------

void OsTree::DestroyAll() {
  // Iterative post-order free.
  std::vector<em::BlockId> stack{ref_.root};
  while (!stack.empty()) {
    em::BlockId id = stack.back();
    stack.pop_back();
    {
      em::PageRef page = pager_->Fetch(id);
      if (!PageIsLeaf(page)) {
        IntView node(std::move(page), InternalCap());
        for (std::uint32_t i = 0; i < node.f(); ++i) {
          stack.push_back(node.child(i));
        }
      }
    }
    pager_->Free(id);
  }
  ref_.root = em::kNullBlock;
  ref_.size = 0;
}

void OsTree::CheckRec(em::BlockId id, bool is_root, std::uint64_t expect_count,
                      bool has_lo, double lo) const {
  em::PageRef page = pager_->Fetch(id);
  if (PageIsLeaf(page)) {
    LeafView leaf(std::move(page), LeafCap());
    TOKRA_CHECK_EQ(leaf.m(), expect_count);
    if (!is_root) TOKRA_CHECK(leaf.m() >= LeafMin());
    TOKRA_CHECK(leaf.m() <= LeafCap());
    for (std::uint32_t i = 0; i < leaf.m(); ++i) {
      if (i > 0) TOKRA_CHECK(leaf.key(i) > leaf.key(i - 1));
      if (has_lo) TOKRA_CHECK(leaf.key(i) >= lo);
    }
    return;
  }
  IntView node(std::move(page), InternalCap());
  TOKRA_CHECK(node.f() >= (is_root ? 2u : InternalMin()));
  TOKRA_CHECK(node.f() <= InternalCap());
  TOKRA_CHECK_EQ(node.total(), expect_count);
  for (std::uint32_t i = 1; i < node.f(); ++i) {
    if (i > 1) TOKRA_CHECK(node.lowkey(i) > node.lowkey(i - 1));
    if (has_lo) TOKRA_CHECK(node.lowkey(i) > lo);
  }
  // Copy child info out before recursing (the recursion re-pins pages).
  std::vector<em::BlockId> kids(node.f());
  std::vector<std::uint64_t> counts(node.f());
  std::vector<double> lows(node.f());
  for (std::uint32_t i = 0; i < node.f(); ++i) {
    kids[i] = node.child(i);
    counts[i] = node.count(i);
    lows[i] = i == 0 ? lo : node.lowkey(i);
  }
  bool first_has_lo = has_lo;
  node.page() = em::PageRef();  // unpin
  for (std::uint32_t i = 0; i < kids.size(); ++i) {
    CheckRec(kids[i], false, counts[i], i == 0 ? first_has_lo : true, lows[i]);
  }
}

void OsTree::CheckInvariants() const {
  CheckRec(ref_.root, true, ref_.size, false, 0.0);
}

}  // namespace tokra::btree
