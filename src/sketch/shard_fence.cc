#include "sketch/shard_fence.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace tokra::sketch {

namespace {

constexpr std::uint64_t kFenceMagic = 0x746f6b72'66656e63ULL;  // "tokrfenc"
constexpr std::uint64_t kFenceVersion = 1;

inline std::uint64_t SplitMix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t KeyHash(double x) {
  return SplitMix64(std::bit_cast<std::uint64_t>(x));
}

inline std::uint64_t DoubleBits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}
inline double BitsDouble(std::uint64_t w) { return std::bit_cast<double>(w); }

}  // namespace

ShardFence ShardFence::Build(std::span<const Point> points,
                             const ShardFenceOptions& options) {
  ShardFence f;
  f.slots_.assign(std::max<std::uint32_t>(options.fence_slots, 1), Slot{});
  if (!points.empty()) {
    double lo = points.front().x, hi = points.front().x;
    for (const Point& p : points) {
      lo = std::min(lo, p.x);
      hi = std::max(hi, p.x);
    }
    f.anchored_ = hi > lo;
    f.lo_ = lo;
    f.hi_ = hi;
  }
  if (options.bloom_bits_per_key > 0 && !points.empty()) {
    // Round the filter up to whole blocks; at 8 bits/key the false-positive
    // rate is a few percent, plenty for a routing hint.
    std::size_t bits = points.size() * std::size_t{options.bloom_bits_per_key};
    std::size_t blocks = (bits + kBloomBlockWords * 64 - 1) /
                         (kBloomBlockWords * 64);
    f.bloom_.assign(std::max<std::size_t>(blocks, 1) * kBloomBlockWords, 0);
  }
  for (const Point& p : points) f.Insert(p);
  return f;
}

std::size_t ShardFence::SlotFor(double x) const {
  if (!anchored_ || slots_.size() <= 1) return 0;
  if (x <= lo_) return 0;
  if (x >= hi_) return slots_.size() - 1;
  double t = (x - lo_) / (hi_ - lo_);
  auto s = static_cast<std::size_t>(t * static_cast<double>(slots_.size()));
  return std::min(s, slots_.size() - 1);
}

void ShardFence::Insert(const Point& p) {
  ++count_;
  min_x_ = std::min(min_x_, p.x);
  max_x_ = std::max(max_x_, p.x);
  if (!slots_.empty()) {
    Slot& s = slots_[SlotFor(p.x)];
    ++s.count;
    s.max_score = std::max(s.max_score, p.score);
  }
  BloomAdd(p.x);
}

void ShardFence::Delete(const Point& p) {
  TOKRA_DCHECK_GT(count_, 0u);
  --count_;
  // min_x_/max_x_ stay: loose outer bounds are still sound. The slot count
  // is exact because SlotFor is a fixed function of x; the slot max goes
  // stale (still an upper bound) until the next rebuild tightens it.
  if (!slots_.empty()) {
    Slot& s = slots_[SlotFor(p.x)];
    TOKRA_DCHECK_GT(s.count, 0u);
    --s.count;
  }
  // Bloom bits are never cleared — false positives only, never negatives.
}

FenceBound ShardFence::RangeBound(double x1, double x2) const {
  if (count_ == 0 || x2 < min_x_ || x1 > max_x_) return {false, 0.0};
  if (slots_.empty()) return {};  // slot-less fence: claim nothing
  // Clamp the query into the anchored span; SlotFor is monotone, so the
  // residents of [x1, x2] all live in slots [SlotFor(x1), SlotFor(x2)].
  std::size_t s1 = SlotFor(x1), s2 = SlotFor(x2);
  bool nonempty = false;
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t s = s1; s <= s2; ++s) {
    if (slots_[s].count == 0) continue;
    nonempty = true;
    best = std::max(best, slots_[s].max_score);
  }
  if (!nonempty) return {false, 0.0};
  return {true, best};
}

bool ShardFence::MightContain(double x) const {
  if (count_ == 0 || x < min_x_ || x > max_x_) return false;
  return BloomTest(x);
}

void ShardFence::BloomAdd(double x) {
  if (bloom_.empty()) return;
  std::uint64_t h = KeyHash(x);
  std::size_t block =
      (h % (bloom_.size() / kBloomBlockWords)) * kBloomBlockWords;
  for (std::uint32_t i = 0; i < kBloomProbes; ++i) {
    std::uint64_t bit = (h >> (8 + 9 * i)) % (kBloomBlockWords * 64);
    bloom_[block + bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
}

bool ShardFence::BloomTest(double x) const {
  if (bloom_.empty()) return true;  // filter disabled: cannot exclude
  std::uint64_t h = KeyHash(x);
  std::size_t block =
      (h % (bloom_.size() / kBloomBlockWords)) * kBloomBlockWords;
  for (std::uint32_t i = 0; i < kBloomProbes; ++i) {
    std::uint64_t bit = (h >> (8 + 9 * i)) % (kBloomBlockWords * 64);
    if ((bloom_[block + bit / 64] & (std::uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
  }
  return true;
}

std::vector<em::word_t> ShardFence::Serialize() const {
  std::vector<em::word_t> w;
  w.reserve(10 + 2 * slots_.size() + bloom_.size());
  w.push_back(kFenceMagic);
  w.push_back(kFenceVersion);
  w.push_back(count_);
  w.push_back(DoubleBits(min_x_));
  w.push_back(DoubleBits(max_x_));
  w.push_back(anchored_ ? 1 : 0);
  w.push_back(DoubleBits(lo_));
  w.push_back(DoubleBits(hi_));
  w.push_back(slots_.size());
  w.push_back(bloom_.size());
  for (const Slot& s : slots_) {
    w.push_back(s.count);
    w.push_back(DoubleBits(s.max_score));
  }
  w.insert(w.end(), bloom_.begin(), bloom_.end());
  return w;
}

StatusOr<ShardFence> ShardFence::Deserialize(
    std::span<const em::word_t> words) {
  if (words.size() < 10) {
    return Status::Internal("fence blob truncated header");
  }
  if (words[0] != kFenceMagic) return Status::Internal("fence magic");
  if (words[1] != kFenceVersion) return Status::Internal("fence version");
  std::uint64_t nslots = words[8], nbloom = words[9];
  if (nslots > (std::uint64_t{1} << 20) || nbloom > (std::uint64_t{1} << 32)) {
    return Status::Internal("fence sizes implausible");
  }
  if (words.size() < 10 + 2 * nslots + nbloom) {
    return Status::Internal("fence blob truncated body");
  }
  if (nbloom % kBloomBlockWords != 0) {
    return Status::Internal("fence bloom not block-aligned");
  }
  ShardFence f;
  f.count_ = words[2];
  f.min_x_ = BitsDouble(words[3]);
  f.max_x_ = BitsDouble(words[4]);
  f.anchored_ = words[5] != 0;
  f.lo_ = BitsDouble(words[6]);
  f.hi_ = BitsDouble(words[7]);
  f.slots_.resize(nslots);
  std::size_t at = 10;
  for (std::uint64_t s = 0; s < nslots; ++s) {
    f.slots_[s].count = words[at++];
    f.slots_[s].max_score = BitsDouble(words[at++]);
  }
  f.bloom_.assign(words.begin() + at, words.begin() + at + nbloom);
  return f;
}

void ShardFence::CheckAgainst(std::span<const Point> points) const {
  TOKRA_CHECK_EQ(count_, points.size());
  for (const Point& p : points) {
    TOKRA_CHECK(p.x >= min_x_ && p.x <= max_x_);
    FenceBound b = RangeBound(p.x, p.x);
    TOKRA_CHECK(b.maybe_nonempty);
    TOKRA_CHECK_GE(b.best_score, p.score);
    TOKRA_CHECK(MightContain(p.x));
  }
}

}  // namespace tokra::sketch
