// The compressed sketch set of Section 4.1, in rank-encoded form.
//
// For an (f,l)-group G = (G_1, ..., G_f), each sketch pivot is described NOT
// by its value but by its global rank in G (union of all sets) and its local
// rank in G_i. That makes the whole sketch set small enough to read in O(1)
// I/Os, and — the paper's key observation — lets an insertion or deletion
// update every pivot's ranks *in memory* with no further I/O, except for at
// most one pivot per update (expansion / dangling).
//
// This class is the pure-CPU representation plus its (de)serialization; the
// flgroup module owns the block it lives in and drives the repairs that need
// B-trees (Section 4.2/4.3) or the prefix set (Lemma 8).

#ifndef TOKRA_SKETCH_PACKED_SET_H_
#define TOKRA_SKETCH_PACKED_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "em/options.h"
#include "util/bits.h"
#include "util/check.h"

namespace tokra::sketch {

class PackedSketchSet {
 public:
  /// An empty group of f sets, each of size 0, with capacity l_cap per set.
  PackedSketchSet(std::uint32_t f, std::uint32_t l_cap)
      : f_(f),
        l_cap_(l_cap),
        levels_cap_(FloorLog2(l_cap) + 1),
        sizes_(f, 0),
        g_(static_cast<std::size_t>(f) * levels_cap_, 0),
        r_(static_cast<std::size_t>(f) * levels_cap_, 0) {
    TOKRA_CHECK(f >= 1 && l_cap >= 1);
  }

  std::uint32_t f() const { return f_; }
  std::uint32_t l_cap() const { return l_cap_; }
  std::uint32_t levels_cap() const { return levels_cap_; }

  std::uint32_t set_size(std::uint32_t i) const { return sizes_[i]; }

  /// Number of live sketch levels of set i: floor(lg size)+1, or 0 if empty.
  std::uint32_t levels(std::uint32_t i) const {
    return sizes_[i] == 0 ? 0 : FloorLog2(sizes_[i]) + 1;
  }

  /// Global rank in G (1-based, descending) of pivot (i, level j).
  std::uint32_t global_rank(std::uint32_t i, std::uint32_t j) const {
    TOKRA_DCHECK(j >= 1 && j <= levels(i));
    return g_[Idx(i, j)];
  }
  /// Local rank in G_i (1-based, descending) of pivot (i, level j).
  std::uint32_t local_rank(std::uint32_t i, std::uint32_t j) const {
    TOKRA_DCHECK(j >= 1 && j <= levels(i));
    return r_[Idx(i, j)];
  }

  /// Overwrites pivot (i, j) — used at expansion, dangling repair, and
  /// invalid-window repair.
  void SetPivot(std::uint32_t i, std::uint32_t j, std::uint32_t global_rank,
                std::uint32_t local_rank) {
    TOKRA_DCHECK(j >= 1 && j <= levels(i));
    g_[Idx(i, j)] = global_rank;
    r_[Idx(i, j)] = local_rank;
  }

  // --- serialization ----------------------------------------------------

  /// Words needed: one size word plus one word per level slot, per set.
  static std::uint64_t WordCount(std::uint32_t f, std::uint32_t l_cap) {
    return static_cast<std::uint64_t>(f) * (1 + FloorLog2(l_cap) + 1);
  }
  std::uint64_t WordCount() const { return WordCount(f_, l_cap_); }

  void Serialize(std::span<em::word_t> out) const;
  static PackedSketchSet Deserialize(std::uint32_t f, std::uint32_t l_cap,
                                     std::span<const em::word_t> in);

  // --- queries ------------------------------------------------------------

  struct SelectResult {
    bool neg_inf = false;
    std::uint32_t global_rank = 0;  ///< in all of G; convert via B-tree on G
    std::uint32_t set = 0;
    std::uint32_t level = 0;
  };

  /// Lemma 7 selection over the union of sets [a1, a2] (0-based, inclusive):
  /// the returned pivot's rank in that union lies in [k, 8k), or neg_inf
  /// (legal when the union has < 2k elements). CPU-only.
  SelectResult SelectApprox(std::uint32_t a1, std::uint32_t a2,
                            std::uint64_t k) const;

  /// Sum of |G_i| over i in [a1, a2].
  std::uint64_t SizeInRange(std::uint32_t a1, std::uint32_t a2) const {
    std::uint64_t t = 0;
    for (std::uint32_t i = a1; i <= a2; ++i) t += sizes_[i];
    return t;
  }

  // --- maintenance (Sections 4.2 / 4.3) --------------------------------

  /// Applies the rank shifts for inserting an element into set i whose
  /// post-insertion global rank is g_new. Returns true if sketch i expanded,
  /// in which case the caller MUST immediately SetPivot(i, levels(i), ...)
  /// with the set's minimum element (the only window-legal choice).
  bool ApplyInsert(std::uint32_t set_i, std::uint32_t g_new);

  struct DeleteEffect {
    bool shrank = false;          ///< last level dropped
    bool dangling = false;        ///< the deleted element was a pivot
    std::uint32_t dangling_level = 0;  ///< level to repair if dangling
  };

  /// Applies the rank shifts for deleting the element of current global rank
  /// g_old from set i. If the effect reports `dangling`, the caller MUST
  /// replace that pivot (paper: local rank floor(3/2*2^(j-1)), clamped).
  DeleteEffect ApplyDelete(std::uint32_t set_i, std::uint32_t g_old);

  /// Appends the levels of sketch i whose local rank fell outside the window
  /// [2^(j-1), 2^j). These must be repaired before the next query.
  void InvalidLevels(std::uint32_t i, std::vector<std::uint32_t>* out) const;

  /// Test helper: all windows valid, ranks within bounds.
  void CheckWellFormed() const;

 private:
  std::size_t Idx(std::uint32_t i, std::uint32_t j) const {
    return static_cast<std::size_t>(i) * levels_cap_ + (j - 1);
  }

  std::uint32_t f_;
  std::uint32_t l_cap_;
  std::uint32_t levels_cap_;
  std::vector<std::uint32_t> sizes_;
  std::vector<std::uint32_t> g_;
  std::vector<std::uint32_t> r_;
};

}  // namespace tokra::sketch

#endif  // TOKRA_SKETCH_PACKED_SET_H_
