// Deterministic fault injection for the durability stack.
//
// A FaultInjectingBlockDevice wraps any BlockDevice and delivers one armed
// fault at an exact operation index, chosen by a shared FaultInjector. The
// torture harness (tests/fault_injection_test.cc) first runs a workload
// with an unarmed injector to count every I/O site, then replays it once
// per site with the fault armed at that index — the LevelDB/SQLite
// fault-injection methodology.
//
// The injected-fault model is chosen so that a live process can NEVER be
// driven to an abort by an injection, only to a propagated Status:
//
//  - kReadError / kWriteError perform the real transfer and then latch the
//    sticky device error. Callers are told the contents/durability of a
//    failed op are unspecified and must discard at their next chokepoint;
//    delivering the true bytes underneath keeps structure-internal
//    invariant checks (which cannot return a Status) satisfied while the
//    error propagates out. Physical divergence is exercised separately by
//    the torn-write and bit-flip kinds below, which target the
//    checksum-validated reopen paths.
//  - kTornWrite persists only a prefix of the block (the torn bytes are
//    what a reopened device sees) while the live device keeps serving the
//    intended bytes from a shadow copy, and latches the sticky error. This
//    models a torn sector at power loss: the leg abandons the live engine
//    and must recover through the WAL pre-image / CRC machinery.
//  - kGrowError latches kResourceExhausted (ENOSPC) but lets the physical
//    growth proceed, so the failure is purely logical and loss-free; the
//    RLIMIT_FSIZE test leg covers real refused growth.
//  - kSyncError skips the barrier and latches the sticky error; fsyncgate
//    semantics then come from the sticky state itself — no later Sync()
//    on this device ever acknowledges again.
//  - kBitFlip flips one seeded bit of one read and stays silent (no sticky
//    error): silent corruption that only a validated read path (superblock
//    checksum, WAL CRC) can catch.

#ifndef TOKRA_EM_FAULT_DEVICE_H_
#define TOKRA_EM_FAULT_DEVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "em/block_device.h"

namespace tokra::em {

/// The fault schedule shared by every device of one stack under test (each
/// shard's home device and its WAL device all consult the same injector),
/// so an armed operation index addresses one global sequence of I/O sites
/// across the whole engine. Thread-safe; one armed fault fires exactly
/// once.
class FaultInjector {
 public:
  enum class Kind {
    kReadError,   ///< read delivered, device sticky-fails (EIO)
    kWriteError,  ///< write performed, device sticky-fails (EIO)
    kTornWrite,   ///< prefix of the block persisted, device sticky-fails
    kGrowError,   ///< EnsureCapacity latches kResourceExhausted (ENOSPC)
    kSyncError,   ///< barrier skipped, device sticky-fails (fsyncgate)
    kBitFlip,     ///< one seeded bit of one read flipped, silently
  };
  static constexpr int kNumKinds = 6;

  /// Operation counts per category, across every device sharing this
  /// injector. The discovery pass reads these to learn how many distinct
  /// fault points a workload exposes per schedule.
  struct OpCounts {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t grows = 0;
    std::uint64_t syncs = 0;
  };

  /// Arms `kind` to fire on the `at_op`-th (0-based) operation of its
  /// category counted from now. `seed` picks the torn-prefix length and
  /// the flipped bit. Re-arming replaces any previous plan; each plan
  /// fires at most once.
  void Arm(Kind kind, std::uint64_t at_op, std::uint64_t seed = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
    kind_ = kind;
    seed_ = seed | 1;  // never zero
    switch (kind) {
      case Kind::kReadError:
      case Kind::kBitFlip:
        fire_at_ = seen_.reads + at_op;
        break;
      case Kind::kWriteError:
      case Kind::kTornWrite:
        fire_at_ = seen_.writes + at_op;
        break;
      case Kind::kGrowError:
        fire_at_ = seen_.grows + at_op;
        break;
      case Kind::kSyncError:
        fire_at_ = seen_.syncs + at_op;
        break;
    }
  }

  void Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
  }

  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return armed_;
  }

  OpCounts ops_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }

  std::uint64_t injected_total() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (std::uint64_t n : injected_) total += n;
    return total;
  }

  std::uint64_t injected(Kind kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_[static_cast<int>(kind)];
  }

  std::uint64_t seed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seed_;
  }

  // Hooks the wrapping device calls once per block transfer / grow /
  // barrier. Each returns the fault to deliver on this very operation, or
  // nothing.

  std::optional<Kind> OnRead() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t idx = seen_.reads++;
    return Fire(idx, Kind::kReadError, Kind::kBitFlip);
  }

  std::optional<Kind> OnWrite() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t idx = seen_.writes++;
    return Fire(idx, Kind::kWriteError, Kind::kTornWrite);
  }

  bool OnGrow() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t idx = seen_.grows++;
    return Fire(idx, Kind::kGrowError, Kind::kGrowError).has_value();
  }

  bool OnSync() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t idx = seen_.syncs++;
    return Fire(idx, Kind::kSyncError, Kind::kSyncError).has_value();
  }

 private:
  std::optional<Kind> Fire(std::uint64_t idx, Kind a, Kind b) {
    if (!armed_ || (kind_ != a && kind_ != b) || idx != fire_at_) {
      return std::nullopt;
    }
    armed_ = false;  // one-shot
    ++injected_[static_cast<int>(kind_)];
    return kind_;
  }

  mutable std::mutex mu_;
  bool armed_ = false;
  Kind kind_ = Kind::kReadError;
  std::uint64_t fire_at_ = 0;
  std::uint64_t seed_ = 1;
  OpCounts seen_;
  std::uint64_t injected_[kNumKinds] = {};
};

/// BlockDevice wrapper delivering the injector's armed fault (see the
/// model in the file comment). Set EmOptions::fault to have
/// MakeBlockDevice (and the pager's WAL) install one of these over every
/// device it builds.
class FaultInjectingBlockDevice final : public BlockDevice {
 public:
  FaultInjectingBlockDevice(std::unique_ptr<BlockDevice> inner,
                            FaultInjector* injector)
      : BlockDevice(inner->block_words()),
        inner_(std::move(inner)),
        injector_(injector) {
    TOKRA_CHECK(injector_ != nullptr);
  }

  BlockId NumBlocks() const override { return inner_->NumBlocks(); }
  void EnsureCapacity(BlockId blocks) override;
  void Sync() override;
  void DropOsCache() override { inner_->DropOsCache(); }
  bool SupportsBorrowedReads() const override {
    return inner_->SupportsBorrowedReads();
  }
  void RegisterIoBuffers(std::span<word_t* const> bufs) override {
    inner_->RegisterIoBuffers(bufs);
  }

  /// The wrapper's own sticky error (injected) or, failing that, the
  /// wrapped backend's (real).
  Status io_status() const override {
    Status own = BlockDevice::io_status();
    if (!own.ok()) return own;
    return inner_->io_status();
  }
  std::uint64_t io_errors() const override {
    return BlockDevice::io_errors() + inner_->io_errors();
  }
  std::uint64_t injected_faults() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_;
  }

  BlockDevice* inner() { return inner_.get(); }

 protected:
  void DoRead(BlockId id, word_t* dst) override;
  void DoWrite(BlockId id, const word_t* src) override;
  void DoReadRun(BlockId first, std::uint32_t count, word_t* dst) override;
  void DoWriteRun(BlockId first, std::uint32_t count,
                  const word_t* src) override;
  void DoReadBatch(std::span<const IoRequest> reqs) override;
  void DoWriteBatch(std::span<const IoRequest> reqs) override;
  const word_t* DoBorrowRead(BlockId id) override;

 private:
  std::size_t BlockBytes() const {
    return std::size_t{block_words()} * sizeof(word_t);
  }
  /// Serves `id` from the shadow copy when it holds the block's true
  /// bytes (after a torn write), else from the backend.
  void ReadThrough(BlockId id, word_t* dst);
  void WriteThrough(BlockId id, const word_t* src);
  /// Mirrors the backend's real-barrier count into this wrapper's syncs()
  /// (callers only see the wrapper).
  void CountSyncIfInnerAdvanced();

  std::unique_ptr<BlockDevice> inner_;
  FaultInjector* injector_;

  mutable std::mutex mu_;
  std::uint64_t injected_ = 0;
  std::uint64_t mirrored_syncs_ = 0;
  // After a torn write, the live process keeps reading the block's
  // intended bytes from here while the backend holds the torn prefix: an
  // injection must surface as a Status, never as a structure walking
  // garbage into an invariant CHECK. A reopened device sees the torn
  // bytes.
  BlockId shadow_id_ = kNullBlock;
  std::vector<word_t> shadow_;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_FAULT_DEVICE_H_
