// Pager: block allocation plus pinned typed access on top of the buffer pool.
//
// Every persistent byte of every structure in this library lives in pager
// blocks; the pager is the single chokepoint through which all I/O flows.
//
// Persistence: blocks 0 and 1 of every device are reserved as two
// alternating superblock slots. Checkpoint() flushes the pool and
// serializes the allocator state (next block, free list, blocks-in-use)
// plus an application root directory into the next slot (epoch + checksum
// make the checkpoint write itself atomic); Open() restores the newest
// complete checkpoint, so a structure whose meta-block id is recorded as a
// root survives process restarts without rebuilding.
//
// Crash consistency between checkpoints: with EmOptions::wal_path set the
// pager attaches a write-ahead log and becomes its pre-image (undo) writer —
// before the first post-checkpoint overwrite of a checkpoint-live home
// block, the block's checkpoint-time content is appended to the log (the
// pool's WriteBarrier seam), so Open() can roll any torn inter-checkpoint
// state back to the exact last checkpoint before clients replay their own
// logical records from the same log (Pager::wal()). Checkpoint() stamps the
// covered LSN into the superblock and truncates the log behind it. Without
// a wal_path the contract stays checkpoint-granular, exactly as before.

#ifndef TOKRA_EM_PAGER_H_
#define TOKRA_EM_PAGER_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/io_stats.h"
#include "em/options.h"
#include "em/wal.h"
#include "util/check.h"
#include "util/status.h"

namespace tokra::em {

class Pager;

/// RAII pin on one block. Move-only; unpins on destruction.
///
/// Mutation marks the frame dirty so it is written back on eviction/flush.
class PageRef {
 public:
  PageRef() = default;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    return *this;
  }
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  BlockId id() const { return pool_->FrameBlock(frame_); }

  /// Read-only view of the block's words. On a borrowed frame this is the
  /// device mapping itself (zero-copy); reads must go through here or Get,
  /// never through mutable access, to stay copy-free.
  std::span<const word_t> words() const {
    return {pool_->ReadData(frame_), WordsPerBlock()};
  }

  /// Mutable view; marks the page dirty (upgrading a borrowed frame to an
  /// owned copy first, so write-back never aliases the mapping).
  std::span<word_t> mutable_words() {
    dirty_ = true;
    return {pool_->FrameData(frame_), WordsPerBlock()};
  }

  word_t Get(std::size_t i) const {
    TOKRA_DCHECK(i < WordsPerBlock());
    return pool_->ReadData(frame_)[i];
  }
  void Set(std::size_t i, word_t v) {
    TOKRA_DCHECK(i < WordsPerBlock());
    dirty_ = true;
    pool_->FrameData(frame_)[i] = v;
  }

  double GetDouble(std::size_t i) const { return std::bit_cast<double>(Get(i)); }
  void SetDouble(std::size_t i, double v) { Set(i, std::bit_cast<word_t>(v)); }

 private:
  friend class Pager;
  PageRef(BufferPool* pool, std::uint32_t frame) : pool_(pool), frame_(frame) {}

  std::size_t WordsPerBlock() const;

  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(frame_, dirty_);
      pool_ = nullptr;
      dirty_ = false;
    }
  }

  BufferPool* pool_ = nullptr;
  std::uint32_t frame_ = 0;
  bool dirty_ = false;
};

/// Block-accounting snapshot — the measurement seed for free-space
/// compaction: a long-lived file device never shrinks (freed blocks are
/// reused but the file keeps its high-water mark), and the gap between
/// `allocated_blocks` and `file_blocks` is exactly what a compactor could
/// reclaim by relocating live blocks downward and truncating.
struct SpaceStats {
  std::uint64_t allocated_blocks = 0;  ///< application blocks in use
  std::uint64_t free_blocks = 0;       ///< on the allocator free list
  std::uint64_t reserved_blocks = 0;   ///< superblock slots + spill region
  std::uint64_t file_blocks = 0;       ///< device high-water mark
};

/// Owns the device + pool; allocates and frees blocks; hands out pins.
class Pager : private WriteBarrier {
 public:
  /// A fresh pager on a fresh device (a file backend truncates any existing
  /// contents). Blocks 0 and 1 are reserved as superblock slots; allocation
  /// starts at block 2.
  explicit Pager(const EmOptions& options);

  /// Reopens a checkpointed device, restoring the allocator state and root
  /// directory recorded by the last Checkpoint(). File backend only (a
  /// fresh memory device has nothing to reopen). With options.read_only
  /// the device is opened O_RDONLY — the snapshot-serving mode: many
  /// pagers may open the same immutable file concurrently (kMmap shares
  /// their cached pages through the OS page cache), and Checkpoint() is
  /// refused.
  static StatusOr<std::unique_ptr<Pager>> Open(const EmOptions& options);

  /// B, in words.
  std::uint32_t B() const { return options_.block_words; }
  const EmOptions& options() const { return options_; }
  BlockDevice* device() { return device_.get(); }

  /// Sticky health of the whole durability stack: the first error recorded
  /// by the home device or the attached log. Non-OK means data written
  /// since the error may not be durable — callers must stop acknowledging
  /// (Checkpoint() refuses; the engine fails the shard).
  Status io_status() const {
    Status home = device_->io_status();
    if (!home.ok()) return home;
    return wal_ != nullptr ? wal_->io_status() : Status::Ok();
  }
  /// The two legs separately: a failed home device poisons reads and
  /// writes alike, while a failed log alone still serves reads correctly —
  /// the engine's failed-versus-read-only shard distinction. (Note the
  /// pager itself escalates a log failure to the home device the moment a
  /// write-back would need the lost pre-images; until then reads are safe.)
  Status home_io_status() const { return device_->io_status(); }
  Status wal_io_status() const {
    return wal_ != nullptr ? wal_->io_status() : Status::Ok();
  }

  /// Allocates a zeroed block. Allocation bookkeeping is O(1) metadata and
  /// costs no I/O; the block's first materialization to disk is charged when
  /// its frame is evicted or flushed.
  BlockId Allocate() {
    BlockId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = next_block_++;
      device_->EnsureCapacity(next_block_);
    }
    ++blocks_in_use_;
    return id;
  }

  /// Returns a block to the free list; any cached copy is discarded.
  void Free(BlockId id) {
    TOKRA_CHECK(id != kNullBlock);
    pool_.Invalidate(id);
    free_list_.push_back(id);
    TOKRA_CHECK(blocks_in_use_ > 0);
    --blocks_in_use_;
  }

  /// Pins `id` for reading (and possibly writing). One read I/O on pool miss.
  PageRef Fetch(BlockId id) {
    return PageRef(&pool_, pool_.Pin(id, BufferPool::PinMode::kRead));
  }

  /// Pins `id` zero-filled without reading the device — for blocks whose
  /// entire contents the caller is about to overwrite (e.g. fresh nodes).
  PageRef Create(BlockId id) {
    return PageRef(&pool_, pool_.Pin(id, BufferPool::PinMode::kCreate));
  }

  /// Loads any uncached blocks of `ids` into the pool as one batched device
  /// submission, without pinning: the Fetches that follow become pool hits.
  /// A hint (blocks that do not fit next to the current pins are skipped),
  /// so it never changes results — only how transfers are scheduled. This is
  /// the pager's one batched entry point: hint-then-Fetch keeps the O(1)
  /// pin budget of every algorithm intact, where a pin-them-all API would
  /// tie correctness to the frame count.
  void Prefetch(std::span<const BlockId> ids) { pool_.Prefetch(ids); }

  /// Flushes the pool and serializes allocator state plus `roots` — an
  /// application-defined directory of up to B - kSuperHeaderWords words,
  /// typically structure meta-block ids — into the next superblock slot,
  /// with durability barriers on either side.
  ///
  /// Guarantee: Open() restores the state as of the last *completed*
  /// checkpoint. The checkpoint write sequence itself is atomic — a torn or
  /// interrupted superblock write is detected by checksum and falls back to
  /// the previous slot, and free-list spill blocks stay reserved until the
  /// next checkpoint supersedes them — so checkpoint-then-exit is always
  /// recoverable. Updates *between* checkpoints mutate blocks in place;
  /// without a WAL a crash after them leaves the device a mix of old and
  /// new block contents and recovery of the previous checkpoint is not
  /// guaranteed. With a WAL attached (EmOptions::wal_path) every such
  /// in-place write is preceded by an undo pre-image append, Open() rolls
  /// the mix back to the checkpoint, and this method additionally stamps
  /// the covered LSN into the superblock and truncates the log once the
  /// commit supersedes it.
  Status Checkpoint(std::span<const std::uint64_t> roots);

  /// Root directory recorded by the last Checkpoint() or restored by Open().
  const std::vector<std::uint64_t>& roots() const { return roots_; }

  /// The attached write-ahead log (EmOptions::wal_path), else nullptr.
  /// Clients append their logical redo records here (one per accepted
  /// update group + one Sync is the group commit); records with LSN greater
  /// than wal_checkpoint_lsn() are the replay tail.
  WriteAheadLog* wal() { return wal_.get(); }

  /// LSN covered by the restored/last-written checkpoint: every record at
  /// or below it is already reflected in the checkpointed state.
  std::uint64_t wal_checkpoint_lsn() const { return wal_ckpt_lsn_; }

  /// For WAL-less pagers only: makes the next Checkpoint() stamp `lsn` as
  /// the covered LSN. This is how a replacement file built on the side
  /// (the engine's rebalance) adopts the live shard's log without touching
  /// it: the side file is checkpointed with the log's current head, so
  /// once renamed into place every existing record is inert and the log
  /// simply continues. A pager with its own log always stamps that log's
  /// head instead.
  void OverrideWalCheckpointLsn(std::uint64_t lsn) {
    TOKRA_CHECK(wal_ == nullptr);
    wal_ckpt_lsn_ = lsn;
  }

  /// Space usage in blocks — the paper's space metric.
  std::uint64_t BlocksInUse() const { return blocks_in_use_; }

  /// Allocator/file accounting (free-space + high-water measurement seed).
  SpaceStats Space() const {
    SpaceStats s;
    s.allocated_blocks = blocks_in_use_;
    s.free_blocks = free_list_.size();
    s.reserved_blocks = kReservedBlocks + spill_count_;
    s.file_blocks = device_->NumBlocks();
    return s;
  }

  /// Combined device + pool + log counters.
  IoStats stats() const {
    IoStats s = pool_.stats();
    s.reads = device_->reads();
    s.writes = device_->writes();
    s.fsyncs = device_->syncs() + (wal_ != nullptr ? wal_->fsyncs() : 0);
    s.wal_appends = wal_ != nullptr ? wal_->appends() : 0;
    s.io_errors =
        device_->io_errors() + (wal_ != nullptr ? wal_->io_errors() : 0);
    s.injected_faults = device_->injected_faults() +
                        (wal_ != nullptr ? wal_->injected_faults() : 0);
    return s;
  }

  void FlushAll() { pool_.FlushAll(); }

  /// Flushes and empties the pool: the next pins all miss (cold cache).
  void DropCache() { pool_.DropAll(); }

  /// Fixed words at the head of the superblock, preceding roots and the
  /// inline free list. EmOptions::Validate() enforces block_words >= this,
  /// so every validated configuration can checkpoint.
  static constexpr std::uint32_t kSuperHeaderWords = kSuperblockHeaderWords;

  /// Blocks reserved at the front of every device (the superblock slots).
  static constexpr BlockId kReservedBlocks = 2;

 private:
  Pager(const EmOptions& options, std::unique_ptr<BlockDevice> device);

  /// Restores allocator state + roots from the superblock. Non-OK on a
  /// device that was never checkpointed or disagrees with `options_`.
  Status LoadSuperblock();

  /// WriteBarrier: appends undo pre-images of checkpoint-live blocks about
  /// to be overwritten in place (first overwrite per interval only), then
  /// makes them durable when the log is in fsync mode — the write-ahead
  /// rule that keeps the last checkpoint recoverable mid-interval.
  void BeforeHomeWrite(std::span<const BlockId> ids) override;

  /// Opens the log (torn tail dropped), then rolls the device back to the
  /// stamped checkpoint by applying pre-image records newest-first.
  Status AttachWalAndUndo();

  /// Snapshots which blocks the just-committed checkpoint considers live,
  /// resetting the once-per-interval pre-image dedup.
  void CaptureCheckpointLiveSet();

  EmOptions options_;
  std::unique_ptr<BlockDevice> device_;
  BufferPool pool_;
  std::vector<BlockId> free_list_;
  BlockId next_block_ = kReservedBlocks;
  std::uint64_t blocks_in_use_ = 0;
  std::vector<std::uint64_t> roots_;
  // Last checkpoint's free-list spill region: reserved (excluded from both
  // allocation and blocks_in_use_) until the next checkpoint reclaims it.
  BlockId spill_start_ = 0;
  std::uint32_t spill_count_ = 0;
  // Scratch for spill-run transfers: hoisted so repeated checkpoints reuse
  // one allocation instead of building a fresh vector per spill run.
  std::vector<word_t> spill_scratch_;
  std::uint64_t epoch_ = 0;  // checkpoint counter; parity picks the slot

  // Write-ahead log state (EmOptions::wal_path). The live-set snapshot
  // (high-water + free set as of the last checkpoint) decides which home
  // overwrites need a pre-image: blocks beyond the checkpoint's high water
  // or on its free list are unreferenced by it, so their contents are
  // irrelevant to recovery and cost nothing.
  std::unique_ptr<WriteAheadLog> wal_;
  std::uint64_t wal_ckpt_lsn_ = 0;
  BlockId ckpt_next_block_ = kReservedBlocks;
  std::unordered_set<BlockId> ckpt_free_;
  std::unordered_set<BlockId> preimaged_;  // guarded this interval already
  std::vector<word_t> preimage_scratch_;
};

inline std::size_t PageRef::WordsPerBlock() const {
  TOKRA_DCHECK(pool_ != nullptr);
  return pool_->block_words();
}

}  // namespace tokra::em

#endif  // TOKRA_EM_PAGER_H_
