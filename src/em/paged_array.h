// PagedArray<T>: a fixed-capacity array of trivially-copyable records laid
// out across pager blocks, with no record straddling a block boundary.
//
// This is the building block for node payloads: pilot sets, representative
// blocks, sketch blocks, child tables. The array is a *view*: the owner keeps
// the block-id list inside its own node block and reconstructs the view on
// access, so no per-node state lives in RAM.

#ifndef TOKRA_EM_PAGED_ARRAY_H_
#define TOKRA_EM_PAGED_ARRAY_H_

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "em/pager.h"
#include "util/bits.h"

namespace tokra::em {

template <typename T>
class PagedArray {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) % sizeof(word_t) == 0,
                "records must be whole words so ranks map to word offsets");

 public:
  static constexpr std::uint32_t kWordsPerElem = sizeof(T) / sizeof(word_t);

  /// Elements that fit one block of `block_words` words.
  static std::uint32_t ElemsPerBlock(std::uint32_t block_words) {
    std::uint32_t e = block_words / kWordsPerElem;
    TOKRA_CHECK(e >= 1);
    return e;
  }

  /// Blocks needed for `capacity` elements.
  static std::uint32_t BlocksFor(std::uint32_t block_words,
                                 std::uint32_t capacity) {
    if (capacity == 0) return 0;
    return static_cast<std::uint32_t>(
        CeilDiv(capacity, ElemsPerBlock(block_words)));
  }

  /// Allocates the backing blocks for `capacity` elements.
  static std::vector<BlockId> AllocateBlocks(Pager* pager,
                                             std::uint32_t capacity) {
    std::vector<BlockId> ids(BlocksFor(pager->B(), capacity));
    for (BlockId& id : ids) id = pager->Allocate();
    return ids;
  }

  /// A view over existing blocks. `blocks` must outlive the view.
  PagedArray(Pager* pager, std::span<const BlockId> blocks)
      : pager_(pager),
        blocks_(blocks),
        per_block_(ElemsPerBlock(pager->B())) {}

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(blocks_.size()) * per_block_;
  }

  T Get(std::uint32_t i) const {
    TOKRA_DCHECK(i < capacity());
    PageRef page = pager_->Fetch(blocks_[i / per_block_]);
    T out;
    std::memcpy(static_cast<void*>(&out), page.words().data() + Offset(i),
                sizeof(T));
    return out;
  }

  void Set(std::uint32_t i, const T& v) {
    TOKRA_DCHECK(i < capacity());
    PageRef page = pager_->Fetch(blocks_[i / per_block_]);
    std::memcpy(page.mutable_words().data() + Offset(i),
                static_cast<const void*>(&v), sizeof(T));
  }

  /// Reads [begin, end) touching each backing block once. A multi-block
  /// range is prefetched first, so the misses become one batched device
  /// submission instead of one read per block. Each block's records are
  /// copied out with one memcpy from the read-only page view — on a
  /// borrowed (mmap) frame that view is the device mapping itself, so the
  /// only copy left on the whole path is mapping -> caller vector.
  void ReadRange(std::uint32_t begin, std::uint32_t end,
                 std::vector<T>* out) const {
    TOKRA_DCHECK(begin <= end && end <= capacity());
    out->clear();
    if (begin == end) return;
    out->resize(end - begin);
    PrefetchSpan(begin, end);
    std::uint32_t i = begin;
    while (i < end) {
      std::uint32_t b = i / per_block_;
      std::uint32_t last = std::min(end, (b + 1) * per_block_);
      PageRef page = pager_->Fetch(blocks_[b]);
      std::memcpy(static_cast<void*>(out->data() + (i - begin)),
                  page.words().data() + Offset(i),
                  std::size_t{last - i} * sizeof(T));
      i = last;
    }
  }

  /// Writes `vals` starting at `begin`, touching each backing block once.
  /// Blocks are fetched before modification (a record may share its block
  /// with records outside the range), so the misses are prefetched as one
  /// batch here too.
  void WriteRange(std::uint32_t begin, std::span<const T> vals) {
    TOKRA_DCHECK(begin + vals.size() <= capacity());
    if (vals.empty()) return;
    PrefetchSpan(begin, begin + static_cast<std::uint32_t>(vals.size()));
    std::uint32_t i = begin;
    std::size_t j = 0;
    while (j < vals.size()) {
      std::uint32_t b = i / per_block_;
      std::uint32_t last =
          std::min<std::uint32_t>(begin + static_cast<std::uint32_t>(vals.size()),
                                  (b + 1) * per_block_);
      PageRef page = pager_->Fetch(blocks_[b]);
      for (; i < last; ++i, ++j) {
        std::memcpy(page.mutable_words().data() + Offset(i),
                    static_cast<const void*>(&vals[j]), sizeof(T));
      }
    }
  }

 private:
  std::uint32_t Offset(std::uint32_t i) const {
    return (i % per_block_) * kWordsPerElem;
  }

  /// Batch-loads the backing blocks of element range [begin, end) when it
  /// spans more than one block (a single block would be one read either way).
  void PrefetchSpan(std::uint32_t begin, std::uint32_t end) const {
    std::uint32_t b0 = begin / per_block_;
    std::uint32_t b1 = (end - 1) / per_block_;
    if (b1 > b0) pager_->Prefetch(blocks_.subspan(b0, b1 - b0 + 1));
  }

  Pager* pager_;
  std::span<const BlockId> blocks_;
  std::uint32_t per_block_;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_PAGED_ARRAY_H_
