// Ring of the most recent queries slower than a configurable threshold,
// each captured with its full stage breakdown and per-shard IoStats deltas.
//
// The histogram tells you *that* p99 moved; the slow-query log tells you
// *which* queries moved it and *where* their time went (fan-out vs probe vs
// merge, and which shard burned the block transfers). Capture happens only
// on the slow path — a query under the threshold costs one comparison —
// so the mutex here never touches the common case.

#ifndef TOKRA_OBS_SLOW_QUERY_LOG_H_
#define TOKRA_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "em/io_stats.h"

namespace tokra::obs {

/// One captured slow query.
struct SlowQueryEntry {
  std::uint64_t seq = 0;       ///< capture order (monotonic, 1-based)
  std::uint64_t start_us = 0;  ///< NowUs() timebase
  std::uint64_t total_us = 0;
  double x1 = 0, x2 = 0;  ///< query range
  std::uint32_t k = 0;
  std::uint64_t results = 0;  ///< points returned

  /// Stage breakdown, outermost first (e.g. fanout / merge / reply).
  struct Stage {
    const char* name;
    std::uint64_t us;
  };
  std::vector<Stage> stages;

  /// Per-shard work: the IoStats delta this query caused on each probed
  /// shard plus its partial-result size.
  struct ShardWork {
    std::uint32_t shard;
    std::uint64_t part_results;
    em::IoStats io;
  };
  std::vector<ShardWork> shards;

  std::string ToString() const;
};

/// Bounded ring of SlowQueryEntry, newest wins.
class SlowQueryLog {
 public:
  /// Queries taking >= `threshold_us` get captured; `capacity` bounds
  /// retention (oldest evicted).
  explicit SlowQueryLog(std::uint64_t threshold_us, std::size_t capacity = 64)
      : threshold_us_(threshold_us), capacity_(capacity == 0 ? 1 : capacity) {}

  std::uint64_t threshold_us() const { return threshold_us_; }

  /// Cheap pre-check so callers skip building an entry for fast queries.
  bool ShouldCapture(std::uint64_t total_us) const {
    return total_us >= threshold_us_;
  }

  void Capture(SlowQueryEntry entry);

  /// Captured entries, oldest first.
  std::vector<SlowQueryEntry> Entries() const;

  /// Total queries ever captured (>= Entries().size() once evicting).
  std::uint64_t captured() const;

  /// Human-readable dump of every retained entry.
  std::string Dump() const;

 private:
  const std::uint64_t threshold_us_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;  // ring_[next_] is the oldest
  std::size_t next_ = 0;
  std::uint64_t captured_ = 0;
};

}  // namespace tokra::obs

#endif  // TOKRA_OBS_SLOW_QUERY_LOG_H_
