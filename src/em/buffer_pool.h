// LRU buffer pool: the simulated main memory of M words (M/B frames).

#ifndef TOKRA_EM_BUFFER_POOL_H_
#define TOKRA_EM_BUFFER_POOL_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "em/block_device.h"
#include "em/io_stats.h"
#include "em/options.h"
#include "util/check.h"

namespace tokra::em {

/// Fixed-capacity LRU pool of block frames with pin/unpin semantics.
///
/// A pin that misses reads the block from the device (one I/O); evicting a
/// dirty frame writes it back (one I/O). Pinned frames are never evicted —
/// exceeding the frame budget with pins is a programming error (the model
/// only guarantees M = Omega(B), and every algorithm in this library pins
/// O(1) blocks at a time).
///
/// Recency is an intrusive doubly-linked list threaded through the frames
/// (most recent at the head): promotion on a hit and victim selection are
/// O(1), instead of the former O(num_frames) tick scan per miss. Eviction
/// order is unchanged — least recently *pinned* first, pinned frames
/// skipped.
///
/// PinMany/Prefetch are the batched entry points: all misses of a call are
/// coalesced into one SubmitWrites (dirty victims) + one SubmitReads batch,
/// so a query that knows its next k/B blocks pays one device round trip,
/// not k/B sequential ones.
class BufferPool {
 public:
  enum class PinMode {
    kRead,    ///< load current block contents from the device on a miss
    kCreate,  ///< zero-fill the frame instead of reading (fresh block)
  };

  BufferPool(BlockDevice* device, std::uint32_t num_frames)
      : device_(device), frames_(num_frames) {
    TOKRA_CHECK(num_frames >= 2);
    for (Frame& f : frames_) f.buf.resize(device_->block_words(), 0);
    // Free-stack popped from the back: reversed order hands out frames
    // 0, 1, 2, ... exactly like the former first-invalid-index scan.
    free_.reserve(num_frames);
    for (std::uint32_t i = num_frames; i > 0; --i) free_.push_back(i - 1);
  }

  /// Pins the block, returning its frame index.
  std::uint32_t Pin(BlockId id, PinMode mode);

  /// Pins every block of `ids` for reading, coalescing all misses into one
  /// batched eviction write + one batched read (hits and misses count as in
  /// Pin). out->at(i) is the frame of ids[i]; duplicates pin once per
  /// occurrence. The caller's pin budget covers the whole span.
  void PinMany(std::span<const BlockId> ids, std::vector<std::uint32_t>* out);

  /// Loads any of `ids` not already cached into the pool as one batched
  /// read, without pinning: subsequent Pins of these blocks are hits. A
  /// hint — blocks that do not fit next to the current pins are skipped.
  /// Counts IoStats::prefetched (plus device reads), never pool misses.
  void Prefetch(std::span<const BlockId> ids);

  /// Releases one pin; `dirty` marks the frame as modified.
  void Unpin(std::uint32_t frame, bool dirty);

  word_t* FrameData(std::uint32_t frame) { return frames_[frame].buf.data(); }
  BlockId FrameBlock(std::uint32_t frame) const { return frames_[frame].id; }

  /// Writes back all dirty frames (each one write I/O, one batch submission).
  /// Frames stay cached.
  void FlushAll();

  /// Flushes and empties the pool — used to measure cold-cache costs.
  void DropAll();

  /// Discards any cached copy of `id` without write-back (used on Free).
  void Invalidate(BlockId id);

  const IoStats& stats() const { return stats_; }
  std::uint32_t num_frames() const {
    return static_cast<std::uint32_t>(frames_.size());
  }
  std::uint32_t block_words() const { return device_->block_words(); }

 private:
  static constexpr std::uint32_t kNoFrame = ~std::uint32_t{0};

  struct Frame {
    BlockId id = kNullBlock;
    bool valid = false;
    bool dirty = false;
    std::uint32_t pins = 0;
    // Intrusive LRU list position (valid frames only; head = most recent).
    std::uint32_t lru_prev = kNoFrame;
    std::uint32_t lru_next = kNoFrame;
    std::vector<word_t> buf;
  };

  // O(1) LRU list primitives.
  void LruPushFront(std::uint32_t f);
  void LruRemove(std::uint32_t f);
  void LruTouch(std::uint32_t f) {
    if (lru_head_ == f) return;
    LruRemove(f);
    LruPushFront(f);
  }

  /// Free frame, else the least-recent unpinned frame; kNoFrame when every
  /// frame is pinned.
  std::uint32_t TryFindVictim();
  std::uint32_t FindVictim() {
    std::uint32_t v = TryFindVictim();
    // Too many simultaneous pins for the frame budget.
    TOKRA_CHECK(v != kNoFrame && "pool exhausted");
    return v;
  }

  /// Evicts the (unpinned) victim if valid. With `write_batch` != nullptr a
  /// dirty victim's write-back is deferred into the batch (the frame buffer
  /// stays untouched until the batch is submitted); otherwise it is written
  /// immediately.
  void EvictFrame(std::uint32_t v, std::vector<IoRequest>* write_batch);

  /// Shared implementation of PinMany (pin=true) and Prefetch (pin=false).
  void BatchLoad(std::span<const BlockId> ids, bool pin,
                 std::vector<std::uint32_t>* out);

  BlockDevice* device_;
  std::vector<Frame> frames_;
  std::unordered_map<BlockId, std::uint32_t> map_;
  std::vector<std::uint32_t> free_;  // invalid frames, popped from the back
  std::uint32_t lru_head_ = kNoFrame;
  std::uint32_t lru_tail_ = kNoFrame;
  IoStats stats_;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_BUFFER_POOL_H_
