// Unit tests for the external-memory substrate: device, pool, pager, arrays.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/file_block_device.h"
#include "em/paged_array.h"
#include "em/pager.h"

namespace tokra::em {
namespace {

/// A unique temp-file path for one test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("tokra-em-" + tag + "-" + std::to_string(::getpid()) + ".blk"))
                .string();
    std::filesystem::remove(path_);
  }
  ~TempFile() { std::filesystem::remove(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(BlockDeviceTest, RoundTripCountsIos) {
  MemBlockDevice dev(8);
  std::vector<word_t> buf(8, 0);
  for (int i = 0; i < 8; ++i) buf[i] = 100 + i;
  dev.Write(3, buf.data());
  EXPECT_EQ(dev.writes(), 1u);
  EXPECT_EQ(dev.NumBlocks(), 4u);

  std::vector<word_t> got(8, 0);
  dev.Read(3, got.data());
  EXPECT_EQ(dev.reads(), 1u);
  EXPECT_EQ(got, buf);
}

TEST(BufferPoolTest, HitsAreFree) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 4);
  std::uint32_t fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.Unpin(fr, false);
  EXPECT_EQ(dev.reads(), 1u);
  // Re-pin: served from cache.
  fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.Unpin(fr, false);
  EXPECT_EQ(dev.reads(), 1u);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST(BufferPoolTest, LruEvictionWritesBackDirty) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 2);
  // Dirty block 0.
  std::uint32_t fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.FrameData(fr)[0] = 77;
  pool.Unpin(fr, true);
  // Fill the pool: 1, then 2 evicts LRU (block 0) and writes it back.
  pool.Unpin(pool.Pin(1, BufferPool::PinMode::kRead), false);
  pool.Unpin(pool.Pin(2, BufferPool::PinMode::kRead), false);
  EXPECT_EQ(dev.writes(), 1u);
  // Re-reading block 0 sees the written value.
  fr = pool.Pin(0, BufferPool::PinMode::kRead);
  EXPECT_EQ(pool.FrameData(fr)[0], 77u);
  pool.Unpin(fr, false);
}

TEST(BlockDeviceTest, RunTransfersCountPerBlock) {
  MemBlockDevice dev(8);
  std::vector<word_t> buf(3 * 8);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = i;
  dev.WriteRun(2, 3, buf.data());
  EXPECT_EQ(dev.writes(), 3u);  // one I/O per block even when fused
  EXPECT_EQ(dev.NumBlocks(), 5u);

  std::vector<word_t> got(3 * 8, 0);
  dev.ReadRun(2, 3, got.data());
  EXPECT_EQ(dev.reads(), 3u);
  EXPECT_EQ(got, buf);
  dev.ReadRun(2, 0, got.data());  // empty run: no I/O
  EXPECT_EQ(dev.reads(), 3u);
}

TEST(FileBlockDeviceTest, RoundTripAndReopen) {
  TempFile tmp("roundtrip");
  std::vector<word_t> buf(8);
  for (int i = 0; i < 8; ++i) buf[i] = 100 + i;
  {
    FileBlockDevice dev(8, {.path = tmp.path(), .truncate = true});
    dev.Write(3, buf.data());
    EXPECT_EQ(dev.writes(), 1u);
    EXPECT_EQ(dev.NumBlocks(), 4u);
    std::vector<word_t> got(8, 0);
    dev.Read(3, got.data());
    EXPECT_EQ(got, buf);
    dev.Sync();
  }
  // Contents survive the device object (and would survive the process).
  {
    FileBlockDevice dev(8, {.path = tmp.path(), .truncate = false});
    EXPECT_EQ(dev.NumBlocks(), 4u);
    std::vector<word_t> got(8, 0);
    dev.Read(3, got.data());
    EXPECT_EQ(got, buf);
    dev.Read(0, got.data());  // untouched blocks read back zero-filled
    EXPECT_EQ(got, std::vector<word_t>(8, 0));
  }
  // Truncate starts fresh.
  {
    FileBlockDevice dev(8, {.path = tmp.path(), .truncate = true});
    EXPECT_EQ(dev.NumBlocks(), 0u);
  }
}

TEST(FileBlockDeviceTest, RunTransfers) {
  TempFile tmp("runs");
  FileBlockDevice dev(8, {.path = tmp.path(), .truncate = true});
  std::vector<word_t> buf(4 * 8);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = 7 * i + 1;
  dev.WriteRun(1, 4, buf.data());
  EXPECT_EQ(dev.writes(), 4u);
  EXPECT_EQ(dev.NumBlocks(), 5u);
  std::vector<word_t> got(4 * 8, 0);
  dev.ReadRun(1, 4, got.data());
  EXPECT_EQ(dev.reads(), 4u);
  EXPECT_EQ(got, buf);
}

TEST(BufferPoolTest, CreateModeSkipsRead) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(4);
  BufferPool pool(&dev, 2);
  std::uint32_t fr = pool.Pin(1, BufferPool::PinMode::kCreate);
  EXPECT_EQ(dev.reads(), 0u);
  EXPECT_EQ(pool.FrameData(fr)[3], 0u);  // zero-filled
  pool.Unpin(fr, true);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 3);
  pool.Unpin(pool.Pin(0, BufferPool::PinMode::kRead), false);
  pool.Unpin(pool.Pin(1, BufferPool::PinMode::kRead), false);
  pool.Unpin(pool.Pin(2, BufferPool::PinMode::kRead), false);
  // Touch 0 so 1 becomes the LRU, then overflow with 3.
  pool.Unpin(pool.Pin(0, BufferPool::PinMode::kRead), false);
  pool.Unpin(pool.Pin(3, BufferPool::PinMode::kRead), false);
  std::uint64_t reads = dev.reads();
  // 0 and 2 survived the eviction ...
  pool.Unpin(pool.Pin(0, BufferPool::PinMode::kRead), false);
  pool.Unpin(pool.Pin(2, BufferPool::PinMode::kRead), false);
  EXPECT_EQ(dev.reads(), reads);
  // ... and 1 (the LRU) did not.
  pool.Unpin(pool.Pin(1, BufferPool::PinMode::kRead), false);
  EXPECT_EQ(dev.reads(), reads + 1);
}

TEST(BufferPoolTest, EvictionWriteBackIoCounts) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 2);
  // One dirty frame, one clean frame.
  std::uint32_t fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.FrameData(fr)[0] = 1;
  pool.Unpin(fr, true);
  pool.Unpin(pool.Pin(1, BufferPool::PinMode::kRead), false);
  EXPECT_EQ(dev.writes(), 0u);  // nothing written while cached
  // Evicting the dirty LRU costs exactly one write; evicting the clean one
  // costs none.
  pool.Unpin(pool.Pin(2, BufferPool::PinMode::kRead), false);  // evicts 0
  EXPECT_EQ(dev.writes(), 1u);
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.Unpin(pool.Pin(3, BufferPool::PinMode::kRead), false);  // evicts 1
  EXPECT_EQ(dev.writes(), 1u);
  EXPECT_EQ(pool.stats().evictions, 2u);
  EXPECT_EQ(pool.stats().writes, 1u);
  EXPECT_EQ(dev.reads(), 4u);
  EXPECT_EQ(pool.stats().reads, 4u);
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 2);
  std::uint32_t pinned = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.FrameData(pinned)[0] = 42;
  // Cycle many other blocks through the remaining frame; the pinned frame
  // must survive untouched.
  for (BlockId id = 1; id < 8; ++id) {
    pool.Unpin(pool.Pin(id, BufferPool::PinMode::kRead), false);
  }
  EXPECT_EQ(pool.FrameBlock(pinned), 0u);
  EXPECT_EQ(pool.FrameData(pinned)[0], 42u);
  std::uint64_t reads = dev.reads();
  std::uint32_t again = pool.Pin(0, BufferPool::PinMode::kRead);
  EXPECT_EQ(again, pinned);          // served from the pinned frame
  EXPECT_EQ(dev.reads(), reads);     // no device read
  pool.Unpin(again, false);
  pool.Unpin(pinned, false);
}

TEST(BufferPoolTest, FlushAllKeepsCacheWarm) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 4);
  std::uint32_t fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.FrameData(fr)[0] = 9;
  pool.Unpin(fr, true);
  pool.FlushAll();
  EXPECT_EQ(dev.writes(), 1u);
  pool.FlushAll();  // now clean: second flush writes nothing
  EXPECT_EQ(dev.writes(), 1u);
  // The frame stayed cached: re-pin is a hit.
  std::uint64_t reads = dev.reads();
  pool.Unpin(pool.Pin(0, BufferPool::PinMode::kRead), false);
  EXPECT_EQ(dev.reads(), reads);
}

TEST(BufferPoolTest, DropAllGoesCold) {
  MemBlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 4);
  std::uint32_t fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.FrameData(fr)[0] = 5;
  pool.Unpin(fr, true);
  pool.DropAll();
  EXPECT_EQ(dev.writes(), 1u);  // dirty data flushed, not lost
  // Cache is empty: the next pin misses and re-reads the flushed value.
  std::uint64_t reads = dev.reads();
  fr = pool.Pin(0, BufferPool::PinMode::kRead);
  EXPECT_EQ(dev.reads(), reads + 1);
  EXPECT_EQ(pool.FrameData(fr)[0], 5u);
  pool.Unpin(fr, false);
}

TEST(PagerTest, AllocateFreeReuse) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  BlockId a = pager.Allocate();
  BlockId b = pager.Allocate();
  EXPECT_NE(a, 0u);  // block 0 is the reserved superblock
  EXPECT_NE(a, b);
  EXPECT_EQ(pager.BlocksInUse(), 2u);
  pager.Free(a);
  EXPECT_EQ(pager.BlocksInUse(), 1u);
  BlockId c = pager.Allocate();
  EXPECT_EQ(c, a);  // free list reuse
}

TEST(PagerTest, PageRefPersistsThroughEviction) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  std::vector<BlockId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(pager.Allocate());
  for (int i = 0; i < 32; ++i) {
    PageRef p = pager.Create(ids[i]);
    p.Set(0, 1000 + i);
    p.SetDouble(1, i * 0.5);
  }
  pager.DropCache();
  for (int i = 0; i < 32; ++i) {
    PageRef p = pager.Fetch(ids[i]);
    EXPECT_EQ(p.Get(0), 1000u + i);
    EXPECT_EQ(p.GetDouble(1), i * 0.5);
  }
}

TEST(PagerTest, ColdFetchCostsExactlyOneRead) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  BlockId id = pager.Allocate();
  { PageRef p = pager.Create(id); p.Set(0, 9); }
  pager.DropCache();
  IoStats before = pager.stats();
  { PageRef p = pager.Fetch(id); EXPECT_EQ(p.Get(0), 9u); }
  IoStats delta = pager.stats() - before;
  EXPECT_EQ(delta.reads, 1u);
  EXPECT_EQ(delta.writes, 0u);
}

TEST(PagerTest, MovedPageRefDoesNotDoubleUnpin) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  BlockId id = pager.Allocate();
  PageRef a = pager.Create(id);
  PageRef b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move) intentional
  EXPECT_TRUE(b.valid());
  b.Set(0, 5);
}

struct Rec {
  std::uint64_t id;
  double val;
};

TEST(PagedArrayTest, GetSetAcrossBlocks) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  // 16-word blocks, 2-word records -> 8 per block; 20 records -> 3 blocks.
  auto blocks = PagedArray<Rec>::AllocateBlocks(&pager, 20);
  EXPECT_EQ(blocks.size(), 3u);
  PagedArray<Rec> arr(&pager, blocks);
  EXPECT_GE(arr.capacity(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    arr.Set(i, Rec{i, i * 1.5});
  }
  for (std::uint32_t i = 0; i < 20; ++i) {
    Rec r = arr.Get(i);
    EXPECT_EQ(r.id, i);
    EXPECT_EQ(r.val, i * 1.5);
  }
}

TEST(PagedArrayTest, RangeIoTouchesEachBlockOnce) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 8});
  auto blocks = PagedArray<Rec>::AllocateBlocks(&pager, 64);  // 8 blocks
  PagedArray<Rec> arr(&pager, blocks);
  std::vector<Rec> vals;
  for (std::uint32_t i = 0; i < 64; ++i) vals.push_back(Rec{i, 0.25 * i});
  arr.WriteRange(0, vals);
  pager.DropCache();
  IoStats before = pager.stats();
  std::vector<Rec> out;
  arr.ReadRange(0, 64, &out);
  IoStats delta = pager.stats() - before;
  EXPECT_EQ(delta.reads, 8u);  // one per block, not one per element
  ASSERT_EQ(out.size(), 64u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i].id, i);
    EXPECT_EQ(out[i].val, 0.25 * i);
  }
}

// Free-space / high-water accounting (the compaction measurement seed).
TEST(SpaceStatsTest, TracksAllocatorAndHighWater) {
  EmOptions opts{.block_words = 64, .pool_frames = 8};
  Pager pager(opts);
  const SpaceStats s0 = pager.Space();
  EXPECT_EQ(s0.allocated_blocks, 0u);
  EXPECT_EQ(s0.free_blocks, 0u);
  EXPECT_EQ(s0.reserved_blocks, Pager::kReservedBlocks);
  EXPECT_EQ(s0.file_blocks, Pager::kReservedBlocks);

  std::vector<BlockId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(pager.Allocate());
  SpaceStats s1 = pager.Space();
  EXPECT_EQ(s1.allocated_blocks, 20u);
  EXPECT_EQ(s1.file_blocks, 22u);  // grown by exactly the allocations
  // Every file block is accounted for: allocated + free + reserved.
  EXPECT_EQ(s1.allocated_blocks + s1.free_blocks + s1.reserved_blocks,
            s1.file_blocks);

  // Freeing returns blocks to the allocator but never shrinks the file —
  // the high-water mark a compactor would reclaim.
  for (int i = 0; i < 10; ++i) pager.Free(ids[i]);
  SpaceStats s2 = pager.Space();
  EXPECT_EQ(s2.allocated_blocks, 10u);
  EXPECT_EQ(s2.free_blocks, 10u);
  EXPECT_EQ(s2.file_blocks, 22u);
  EXPECT_EQ(s2.allocated_blocks + s2.free_blocks + s2.reserved_blocks,
            s2.file_blocks);

  // Reuse drains the free list before the file grows further.
  for (int i = 0; i < 10; ++i) pager.Allocate();
  EXPECT_EQ(pager.Space().free_blocks, 0u);
  EXPECT_EQ(pager.Space().file_blocks, 22u);
}


TEST(IoStatsTest, DeltaArithmetic) {
  IoStats a{.reads = 10, .writes = 5, .pool_hits = 3, .pool_misses = 7,
            .evictions = 2};
  IoStats b{.reads = 4, .writes = 1, .pool_hits = 1, .pool_misses = 2,
            .evictions = 0};
  IoStats d = a - b;
  EXPECT_EQ(d.reads, 6u);
  EXPECT_EQ(d.writes, 4u);
  EXPECT_EQ(d.TotalIos(), 10u);
}

}  // namespace
}  // namespace tokra::em
