#include "repl/conn.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace tokra::repl {

namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Errno(int err) { return std::string(::strerror(err)); }

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("fcntl(O_NONBLOCK): " + Errno(errno));
  }
  return Status::Ok();
}

/// Waits until `fd` is ready for `events` or `deadline_ms` passes.
/// Returns OK when ready, DeadlineExceeded on timeout.
Status WaitReady(int fd, short events, std::int64_t deadline_ms) {
  for (;;) {
    const std::int64_t remain = deadline_ms - NowMs();
    if (remain <= 0) return Status::DeadlineExceeded("repl conn I/O timeout");
    struct pollfd pfd = {fd, events, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(remain));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll: " + Errno(errno));
    }
    if (n == 0) return Status::DeadlineExceeded("repl conn I/O timeout");
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      return Status::IoError("repl conn: socket error");
    }
    return Status::Ok();  // POLLIN/POLLOUT/POLLHUP: let read/write decide
  }
}

}  // namespace

Conn::Conn(int fd, Options options) : fd_(fd), options_(options) {
  (void)SetNonBlocking(fd_);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Conn::~Conn() { Close(); }

void Conn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Conn::FullWrite(const std::uint8_t* buf, std::size_t len) {
  const std::int64_t deadline = NowMs() + options_.io_timeout_ms;
  std::size_t done = 0;
  while (done < len) {
    if (fd_ < 0) return Status::IoError("repl conn: closed");
    const ssize_t n =
        ::send(fd_, buf + done, len - done, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      TOKRA_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT, deadline));
      continue;
    }
    return Status::IoError("repl conn send: " +
                           (n == 0 ? std::string("connection closed")
                                   : Errno(errno)));
  }
  return Status::Ok();
}

Status Conn::FullRead(std::uint8_t* buf, std::size_t len, bool* progressed) {
  const std::int64_t deadline = NowMs() + options_.io_timeout_ms;
  std::size_t done = 0;
  while (done < len) {
    if (fd_ < 0) return Status::IoError("repl conn: closed");
    const ssize_t n = ::recv(fd_, buf + done, len - done, MSG_DONTWAIT);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      if (progressed != nullptr) *progressed = true;
      continue;
    }
    if (n == 0) return Status::IoError("repl conn: peer closed connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      TOKRA_RETURN_IF_ERROR(WaitReady(fd_, POLLIN, deadline));
      continue;
    }
    return Status::IoError("repl conn recv: " + Errno(errno));
  }
  return Status::Ok();
}

Status Conn::SendFrame(FrameType type, std::span<const std::uint8_t> payload) {
  if (fd_ < 0) return Status::IoError("repl conn: closed");
  if (options_.fault != nullptr) {
    const auto fired = options_.fault->OnWrite();
    if (fired.has_value()) {
      Close();
      return Status::IoError("injected connection fault (send)");
    }
  }
  std::uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(type, payload, header);
  TOKRA_RETURN_IF_ERROR(FullWrite(header, sizeof(header)));
  if (!payload.empty()) {
    TOKRA_RETURN_IF_ERROR(FullWrite(payload.data(), payload.size()));
  }
  return Status::Ok();
}

Status Conn::RecvRest(Frame* out) {
  std::uint8_t header[kFrameHeaderBytes];
  TOKRA_RETURN_IF_ERROR(FullRead(header, sizeof(header), nullptr));
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc = 0;
  TOKRA_RETURN_IF_ERROR(
      DecodeFrameHeader(header, &out->type, &payload_bytes, &crc));
  out->payload.resize(payload_bytes);
  if (payload_bytes > 0) {
    TOKRA_RETURN_IF_ERROR(
        FullRead(out->payload.data(), payload_bytes, nullptr));
  }
  if (Crc32Bytes(out->payload) != crc) {
    return Status::IoError("repl frame: payload CRC mismatch");
  }
  return Status::Ok();
}

Status Conn::RecvFrame(Frame* out) {
  if (fd_ < 0) return Status::IoError("repl conn: closed");
  if (options_.fault != nullptr) {
    const auto fired = options_.fault->OnRead();
    if (fired.has_value()) {
      Close();
      return Status::IoError("injected connection fault (recv)");
    }
  }
  return RecvRest(out);
}

Status Conn::TryRecvFrame(Frame* out) {
  if (fd_ < 0) return Status::IoError("repl conn: closed");
  struct pollfd pfd = {fd_, POLLIN, 0};
  const int n = ::poll(&pfd, 1, 0);
  if (n < 0 && errno != EINTR) {
    return Status::IoError("poll: " + Errno(errno));
  }
  if (n <= 0 || !(pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
    return Status::NotFound("no frame ready");
  }
  return RecvFrame(out);
}

StatusOr<int> ListenTcp(const std::string& bind_addr, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket: " + Errno(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + bind_addr);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind " + bind_addr + ":" + std::to_string(port) +
                           ": " + Errno(err));
  }
  if (::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("listen: " + Errno(err));
  }
  return fd;
}

StatusOr<std::uint16_t> LocalPort(int listen_fd) {
  struct sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return Status::IoError("getsockname: " + Errno(errno));
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

StatusOr<int> AcceptConn(int listen_fd, int timeout_ms) {
  struct pollfd pfd = {listen_fd, POLLIN, 0};
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::NotFound("accept interrupted");
    return Status::IoError("poll(listen): " + Errno(errno));
  }
  if (n == 0) return Status::NotFound("accept timeout");
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
      return Status::NotFound("accept raced away");
    }
    return Status::IoError("accept: " + Errno(errno));
  }
  return fd;
}

StatusOr<int> DialTcp(const std::string& host, std::uint16_t port,
                      int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket: " + Errno(errno));
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  const int rc =
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + Errno(err));
  }
  if (rc < 0) {
    Status ready = WaitReady(fd, POLLOUT, NowMs() + timeout_ms);
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return Status::IoError("connect " + host + ":" + std::to_string(port) +
                             ": " + Errno(err != 0 ? err : errno));
    }
  }
  return fd;
}

}  // namespace tokra::repl
