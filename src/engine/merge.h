// k-bounded tournament merge of per-shard top-k result lists.
//
// Each shard answers its subquery with a score-descending list; the lists
// are exposed to select::SelectTop as a forest of chain heaps (element i's
// only child is element i+1, so the heap property is the sort order). The
// best-first selection then visits exactly k winners plus one frontier node
// per shard — a tournament merge that never materializes more than the k
// requested results, regardless of how much the shards over-deliver.

#ifndef TOKRA_ENGINE_MERGE_H_
#define TOKRA_ENGINE_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "select/heap_view.h"
#include "select/select.h"
#include "util/check.h"
#include "util/point.h"

namespace tokra::engine {

/// HeapView over S score-descending Point lists: one chain heap per list.
/// NodeId packs (list index << 32) | position.
class ChainMergeView : public select::HeapView {
 public:
  explicit ChainMergeView(const std::vector<std::vector<Point>>* parts)
      : parts_(parts) {
    TOKRA_DCHECK(parts != nullptr);
  }

  void Roots(std::vector<select::HeapNode>* out) const override {
    for (std::size_t i = 0; i < parts_->size(); ++i) {
      if (!(*parts_)[i].empty()) {
        out->push_back({Pack(i, 0), (*parts_)[i][0].score});
      }
    }
  }

  void Children(select::NodeId node, std::vector<select::HeapNode>* out)
      const override {
    std::size_t list = ListOf(node), pos = PosOf(node) + 1;
    if (pos < (*parts_)[list].size()) {
      out->push_back({Pack(list, pos), (*parts_)[list][pos].score});
    }
  }

  const Point& At(select::NodeId node) const {
    return (*parts_)[ListOf(node)][PosOf(node)];
  }

  /// NodeId codec — public so tests can exercise the width limits. Each
  /// half gets 32 bits; a wider list/pos would silently alias another node,
  /// so Pack refuses it in debug builds instead of truncating.
  static select::NodeId Pack(std::size_t list, std::size_t pos) {
    TOKRA_DCHECK_LT(list, std::size_t{1} << 32);
    TOKRA_DCHECK_LT(pos, std::size_t{1} << 32);
    return (static_cast<select::NodeId>(list) << 32) |
           static_cast<select::NodeId>(pos);
  }
  static std::size_t ListOf(select::NodeId id) {
    return static_cast<std::size_t>(id >> 32);
  }
  static std::size_t PosOf(select::NodeId id) {
    return static_cast<std::size_t>(id & 0xFFFFFFFFu);
  }

 private:
  const std::vector<std::vector<Point>>* parts_;
};

/// Merges score-descending per-shard lists into the global top k,
/// score-descending. Visits O(k + #lists) elements.
inline std::vector<Point> MergeTopK(
    const std::vector<std::vector<Point>>& parts, std::uint64_t k,
    select::SelectStats* stats = nullptr) {
  ChainMergeView view(&parts);
  std::vector<select::HeapNode> winners = select::SelectTop(
      view, static_cast<std::size_t>(k), select::Strategy::kBestFirst, stats);
  std::vector<Point> out;
  out.reserve(winners.size());
  for (const select::HeapNode& w : winners) out.push_back(view.At(w.id));
  std::sort(out.begin(), out.end(), ByScoreDesc{});
  return out;
}

/// Running lower bound on the final answer's k-th score, fed by shard
/// results as they arrive mid-query. Once `full()`, any shard whose fence
/// upper bound is <= `kth()` cannot place a point in the top k (the engine
/// keeps scores globally distinct, so ties cannot displace a held result)
/// and need not be dispatched at all.
///
/// A bounded min-heap of the k best scores seen so far: kth() is the heap
/// minimum. k == 0 never fills (nothing to prune toward — every shard must
/// run so the merge can prove emptiness is correct); a k larger than the
/// total result count never fills either, which is exactly right: until k
/// results exist, no shard is provably useless.
class MergeFrontier {
 public:
  explicit MergeFrontier(std::uint64_t k) : k_(k) {}

  /// Offers one result score. Keeps only the k best.
  void Push(double score) {
    if (k_ == 0) return;
    if (best_.size() < k_) {
      best_.push(score);
    } else if (score > best_.top()) {
      best_.pop();
      best_.push(score);
    }
  }

  void PushAll(const std::vector<Point>& points) {
    for (const Point& p : points) Push(p.score);
  }

  /// True once k results are held — only then is kth() a valid prune bar.
  bool full() const { return k_ > 0 && best_.size() >= k_; }

  /// The k-th best score seen (heap minimum). Only meaningful when full().
  double kth() const {
    TOKRA_DCHECK(full());
    return best_.top();
  }

 private:
  std::uint64_t k_;
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      best_;
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_MERGE_H_
