#include "engine/sharded_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "engine/merge.h"
#include "util/check.h"
#include "util/fsync_dir.h"

namespace tokra::engine {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Side-file suffix used by in-place shard rebuilds (Rebalance). Applies to
/// both the shard file and, under a WAL durability mode, its log.
constexpr char kRebuildSuffix[] = ".rebuild";

/// Refuses to serve shard `shard` of `storage_dir` WITHOUT its log when
/// the log holds ANY record past `stamp`: logical records are acknowledged
/// updates a WAL-less open would hide, and pre-images are evidence of torn
/// in-place home writes that only the undo pass can repair. A cleanly
/// checkpointed shard has nothing past its stamp (the stamp is taken after
/// the checkpoint's own guards), so this never fires spuriously. An
/// unreadable log is refused too — its tail is unknowable.
Status RequireNoWalTail(const EngineOptions& options, std::uint32_t shard,
                        std::uint64_t stamp, const std::string& context) {
  const std::string wal_path = options.ShardWalPath(shard);
  const std::uint32_t block_words = options.em.block_words;
  if (!std::filesystem::exists(wal_path)) return Status::Ok();
  auto reader = em::WalReader::Open(wal_path, block_words);
  if (!reader.ok()) {
    return Status::FailedPrecondition(
        context + ": shard " + std::to_string(shard) +
        " has an unreadable WAL; run Recover() under a WAL durability "
        "mode first");
  }
  const auto& recs = (*reader)->records();
  const bool tail = std::any_of(recs.begin(), recs.end(), [&](const auto& r) {
    return r.lsn > stamp;
  });
  if (tail) {
    return Status::FailedPrecondition(
        context + ": shard " + std::to_string(shard) +
        " has a WAL tail past its checkpoint (unreplayed updates and/or "
        "torn in-place writes); run Recover() under a WAL durability mode "
        "first");
  }
  return Status::Ok();
}

// ---- Fence persistence (DESIGN.md §11) -----------------------------------
// A serialized ShardFence is stored in its shard's own pager as a chain of
// blocks: word 0 of every block is the next block id (kNullBlock ends the
// chain), word 1 of the HEAD block is the total payload length, and the
// remaining words carry payload. The head id is checkpoint root 4; a shard
// checkpointed without a fence records kNullBlock there. Chain blocks ride
// the pager's ordinary flush/checkpoint machinery, so the fence commits or
// vanishes atomically with the checkpoint that references it.

em::BlockId WriteFenceChain(em::Pager* pager,
                            std::span<const em::word_t> payload) {
  const std::size_t bw = pager->B();
  const em::BlockId head = pager->Allocate();
  em::BlockId cur = head;
  std::size_t at = 0;
  bool first = true;
  for (;;) {
    em::PageRef page = pager->Create(cur);
    const std::size_t data0 = first ? 2 : 1;
    if (first) page.Set(1, payload.size());
    const std::size_t take = std::min(payload.size() - at, bw - data0);
    for (std::size_t i = 0; i < take; ++i) {
      page.Set(data0 + i, payload[at + i]);
    }
    at += take;
    if (at == payload.size()) {
      page.Set(0, em::kNullBlock);
      return head;
    }
    const em::BlockId next = pager->Allocate();
    page.Set(0, next);
    cur = next;
    first = false;
  }
}

StatusOr<std::vector<em::word_t>> ReadFenceChain(em::Pager* pager,
                                                 em::BlockId head) {
  const std::size_t bw = pager->B();
  std::vector<em::word_t> payload;
  em::BlockId cur = head;
  bool first = true;
  std::size_t total = 0, visited = 0;
  while (cur != em::kNullBlock) {
    // A corrupt root could name a block whose word 0 loops; the payload
    // bound caps the walk.
    if (++visited > (std::size_t{1} << 22)) {
      return Status::Internal("fence chain does not terminate");
    }
    em::PageRef page = pager->Fetch(cur);
    const std::size_t data0 = first ? 2 : 1;
    if (first) {
      total = page.Get(1);
      if (total > (std::size_t{1} << 32)) {
        return Status::Internal("fence chain length implausible");
      }
      payload.reserve(total);
    }
    const std::size_t take = std::min(total - payload.size(), bw - data0);
    for (std::size_t i = 0; i < take; ++i) {
      payload.push_back(page.Get(data0 + i));
    }
    cur = page.Get(0);
    first = false;
    if (payload.size() == total && cur != em::kNullBlock) {
      return Status::Internal("fence chain longer than its payload");
    }
  }
  if (payload.size() != total) {
    return Status::Internal("fence chain truncated");
  }
  return payload;
}

const char* BackendName(em::Backend b) {
  switch (b) {
    case em::Backend::kMem: return "mem";
    case em::Backend::kFile: return "file";
    case em::Backend::kUring: return "uring";
    case em::Backend::kMmap: return "mmap";
  }
  return "unknown";
}

void FreeFenceChain(em::Pager* pager, em::BlockId head) {
  em::BlockId cur = head;
  while (cur != em::kNullBlock) {
    em::BlockId next;
    {
      em::PageRef page = pager->Fetch(cur);
      next = page.Get(0);
    }
    pager->Free(cur);
    cur = next;
  }
}
}  // namespace

std::vector<em::word_t> EncodeWalOps(std::span<const WalOp> ops) {
  std::vector<em::word_t> payload;
  payload.reserve(1 + 3 * ops.size());
  payload.push_back(ops.size());
  for (const WalOp& op : ops) {
    payload.push_back(op.insert ? 1 : 0);
    payload.push_back(std::bit_cast<em::word_t>(op.p.x));
    payload.push_back(std::bit_cast<em::word_t>(op.p.score));
  }
  return payload;
}

StatusOr<std::vector<WalOp>> DecodeWalOps(
    std::span<const em::word_t> payload) {
  // Bound the count before the equality check: a crafted count can make
  // 1 + 3*count wrap modulo 2^64 to the actual size, and the vector
  // constructor below would then terminate on length_error instead of
  // this returning the malformed-record error.
  if (payload.empty() || payload[0] > (payload.size() - 1) / 3 ||
      payload.size() != 1 + 3 * payload[0]) {
    return Status::Internal("malformed WAL update record");
  }
  std::vector<WalOp> ops(payload[0]);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const em::word_t kind = payload[1 + 3 * i];
    if (kind > 1) return Status::Internal("malformed WAL update record");
    ops[i].insert = kind == 1;
    ops[i].p.x = std::bit_cast<double>(payload[2 + 3 * i]);
    ops[i].p.score = std::bit_cast<double>(payload[3 + 3 * i]);
  }
  return ops;
}

ShardedTopkEngine::ShardedTopkEngine(EngineOptions options)
    : options_(options), pool_(options.threads) {
  InitTelemetry();
}

void ShardedTopkEngine::InitTelemetry() {
  if (!options_.telemetry.enabled) return;
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  tracer_ = std::make_unique<obs::Tracer>(options_.telemetry.trace_capacity);
  slow_log_ = std::make_unique<obs::SlowQueryLog>(
      options_.telemetry.slow_query_us,
      options_.telemetry.slow_query_capacity);
  obs::MetricsRegistry& r = *metrics_;
  // Naming convention (DESIGN.md §10): tokra_<subsystem>_<what>_<unit>;
  // per-stage histograms share one family with a stage label.
  mset_.query_latency_us = r.GetHistogram("tokra_engine_query_latency_us");
  mset_.stage_fanout_us =
      r.GetHistogram("tokra_engine_stage_us", "stage=\"fanout\"");
  mset_.stage_probe_us =
      r.GetHistogram("tokra_engine_stage_us", "stage=\"probe\"");
  mset_.stage_merge_us =
      r.GetHistogram("tokra_engine_stage_us", "stage=\"merge\"");
  mset_.stage_reply_us =
      r.GetHistogram("tokra_engine_stage_us", "stage=\"reply\"");
  mset_.update_latency_us = r.GetHistogram("tokra_engine_update_latency_us");
  mset_.batch_exec_us = r.GetHistogram("tokra_engine_batch_exec_us");
  mset_.admission_wait_us = r.GetHistogram("tokra_batcher_admission_wait_us");
  mset_.queue_depth = r.GetGauge("tokra_batcher_queue_depth");
  mset_.checkpoint_us = r.GetHistogram("tokra_engine_checkpoint_us");
  mset_.recover_us = r.GetHistogram("tokra_engine_recover_us");
  mset_.rebalance_us = r.GetHistogram("tokra_engine_rebalance_us");
  mset_.pool_task_wait_us = r.GetHistogram("tokra_pool_task_wait_us");
  mset_.pool_task_run_us = r.GetHistogram("tokra_pool_task_run_us");
  mset_.shards_pruned_total = r.GetCounter("tokra_engine_shards_pruned_total");
  mset_.fence_checks_total = r.GetCounter("tokra_engine_fence_checks_total");
  mset_.query_waves_total = r.GetCounter("tokra_engine_query_waves_total");
  mset_.em.eviction_stall_us = r.GetHistogram("tokra_em_eviction_stall_us");
  mset_.em.wal_append_us = r.GetHistogram("tokra_wal_append_us");
  mset_.em.wal_fsync_us = r.GetHistogram("tokra_wal_fsync_us");
  mset_.em.checkpoint_us = r.GetHistogram("tokra_em_checkpoint_us");
  // Every ShardEm(i) copy from here on carries the sink, so each shard's
  // pager, buffer pool, and WAL records into this registry.
  options_.em.metrics = &mset_.em;
  pool_.SetMetrics(mset_.pool_task_wait_us, mset_.pool_task_run_us);
}

std::string ShardedTopkEngine::DumpMetrics() const {
  if (metrics_ == nullptr) return {};
  obs::MetricsRegistry& r = *metrics_;
  // Refresh the exposition-only mirrors: service counters (kept as plain
  // atomics on the hot path) and the per-shard space accounting.
  const EngineCounters c = counters();
  r.GetGauge("tokra_engine_inserts_total")->Set(static_cast<std::int64_t>(c.inserts));
  r.GetGauge("tokra_engine_deletes_total")->Set(static_cast<std::int64_t>(c.deletes));
  r.GetGauge("tokra_engine_queries_total")->Set(static_cast<std::int64_t>(c.queries));
  r.GetGauge("tokra_engine_rejected_total")->Set(static_cast<std::int64_t>(c.rejected));
  r.GetGauge("tokra_engine_batches_total")->Set(static_cast<std::int64_t>(c.batches));
  r.GetGauge("tokra_engine_rebalances_total")->Set(static_cast<std::int64_t>(c.rebalances));
  em::SpaceStats space;
  std::uint64_t io_errors = 0, injected_faults = 0;
  std::int64_t failed_shards = 0;
  {
    std::shared_lock<std::shared_mutex> tl(topology_mu_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const auto& sh = shards_[i];
      em::SpaceStats s;
      if (snapshot_) {
        for (const auto& rep : sh->replicas) {
          std::lock_guard<std::mutex> g(rep->mu);
          const em::IoStats io = rep->pager->stats();
          io_errors += io.io_errors;
          injected_faults += io.injected_faults;
        }
        std::lock_guard<std::mutex> g(sh->replicas[0]->mu);
        s = sh->replicas[0]->pager->Space();
        if (!sh->replicas[0]->pager->io_status().ok()) ++failed_shards;
      } else {
        std::lock_guard<std::mutex> g(sh->mu);
        s = sh->pager->Space();
        const em::IoStats io = sh->pager->stats();
        io_errors += io.io_errors;
        injected_faults += io.injected_faults;
        if (!sh->pager->io_status().ok()) ++failed_shards;
      }
      // Per-shard Pager::Space() exposition: the gap between allocated and
      // file blocks is each shard's compactable high-water mark, and
      // file_blocks is what a replication bootstrap of this shard ships.
      const std::string shard_label = "shard=\"" + std::to_string(i) + "\"";
      if (options_.mvcc && !snapshot_) {
        // MVCC epoch health (DESIGN.md §14): the live (newest published)
        // epoch, how many distinct epochs readers still pin (a stuck pin
        // shows up as this gauge never draining), and the lifetime count of
        // superseded blocks retirement handed back to the free list.
        std::lock_guard<std::mutex> g(sh->mu);
        r.GetGauge("tokra_engine_live_epoch", shard_label)
            ->Set(static_cast<std::int64_t>(sh->pager->published_epoch()));
        r.GetGauge("tokra_engine_pinned_epochs", shard_label)
            ->Set(static_cast<std::int64_t>(sh->pager->PinnedEpochs()));
        r.GetGauge("tokra_pager_retired_blocks_total", shard_label)
            ->Set(static_cast<std::int64_t>(sh->pager->retired_blocks_total()));
      }
      r.GetGauge("tokra_pager_space_allocated_blocks", shard_label)
          ->Set(static_cast<std::int64_t>(s.allocated_blocks));
      r.GetGauge("tokra_pager_space_free_blocks", shard_label)
          ->Set(static_cast<std::int64_t>(s.free_blocks));
      r.GetGauge("tokra_pager_space_reserved_blocks", shard_label)
          ->Set(static_cast<std::int64_t>(s.reserved_blocks));
      r.GetGauge("tokra_pager_space_file_blocks", shard_label)
          ->Set(static_cast<std::int64_t>(s.file_blocks));
      space.allocated_blocks += s.allocated_blocks;
      space.free_blocks += s.free_blocks;
      space.reserved_blocks += s.reserved_blocks;
      space.file_blocks += s.file_blocks;
    }
  }
  // Failure surfacing: the sticky error counts per backend and how many
  // shards have left service. A non-zero failed_shards is the operator
  // signal that availability is degraded even while queries on the healthy
  // shards keep answering.
  const std::string backend_label =
      std::string("backend=\"") + BackendName(options_.em.backend) + "\"";
  r.GetGauge("tokra_em_io_errors_total", backend_label)
      ->Set(static_cast<std::int64_t>(io_errors));
  r.GetGauge("tokra_em_injected_faults_total", backend_label)
      ->Set(static_cast<std::int64_t>(injected_faults));
  r.GetGauge("tokra_engine_failed_shards")->Set(failed_shards);
  r.GetGauge("tokra_engine_space_blocks", "kind=\"allocated\"")
      ->Set(static_cast<std::int64_t>(space.allocated_blocks));
  r.GetGauge("tokra_engine_space_blocks", "kind=\"free\"")
      ->Set(static_cast<std::int64_t>(space.free_blocks));
  r.GetGauge("tokra_engine_space_blocks", "kind=\"reserved\"")
      ->Set(static_cast<std::int64_t>(space.reserved_blocks));
  r.GetGauge("tokra_engine_space_blocks", "kind=\"file\"")
      ->Set(static_cast<std::int64_t>(space.file_blocks));
  return r.DumpMetrics();
}

StatusOr<std::unique_ptr<ShardedTopkEngine>> ShardedTopkEngine::Build(
    std::vector<Point> points, EngineOptions options) {
  options.Validate();
  auto engine =
      std::unique_ptr<ShardedTopkEngine>(new ShardedTopkEngine(options));
  // Global distinctness check; fills the registry.
  for (const Point& p : points) {
    if (!engine->by_x_.emplace(p.x, p.score).second) {
      return Status::InvalidArgument("duplicate x coordinate");
    }
    if (!engine->scores_.insert(p.score).second) {
      return Status::InvalidArgument("duplicate score");
    }
  }
  TOKRA_RETURN_IF_ERROR(engine->BuildShardsLocked(std::move(points)));
  if (options.WalEnabled()) {
    // The zero-loss guarantee starts at the first checkpoint (there is no
    // base state to replay onto before one), so take it now: every update
    // acknowledged after Build returns is already WAL-protected.
    TOKRA_RETURN_IF_ERROR(engine->Checkpoint());
  }
  return engine;
}

Status ShardedTopkEngine::BuildShardsLocked(std::vector<Point> points) {
  const std::uint32_t s = options_.num_shards;
  const std::size_t n = points.size();
  std::sort(points.begin(), points.end(), ByXAsc{});

  // Build into locals and commit only on full success, so a failed shard
  // build (e.g. mid-Rebalance) leaves the previous topology intact instead
  // of a shards_ array shorter than lower_bounds_.
  std::vector<double> bounds(s, -kInf);
  for (std::uint32_t i = 1; i < s; ++i) {
    if (n == 0) {
      bounds[i] = static_cast<double>(i);  // arbitrary monotone split
    } else {
      std::size_t cut = static_cast<std::size_t>(
          (static_cast<std::uint64_t>(i) * n) / s);
      bounds[i] = cut == 0 ? points[0].x
                           : (points[cut - 1].x + points[cut].x) / 2.0;
    }
  }
  auto shard_for = [&bounds](double x) {
    auto it = std::upper_bound(bounds.begin(), bounds.end(), x);
    if (it == bounds.begin()) return std::size_t{0};
    return static_cast<std::size_t>(it - bounds.begin()) - 1;
  };

  std::vector<std::vector<Point>> chunks(s);
  for (std::size_t i = 0; i < s; ++i) chunks[i].reserve(n / s + 1);
  for (const Point& p : points) chunks[shard_for(p.x)].push_back(p);

  // When file-backed shards already exist (Rebalance), never build onto the
  // live files: the fresh-pager constructor opens with O_TRUNC, which would
  // destroy the last completed checkpoint before the rebuild is known to
  // succeed. Build into `<path>.rebuild` side files instead and rename them
  // over the live files only after every shard has built and checkpointed.
  const bool rebuild_files = !options_.storage_dir.empty() && !shards_.empty();
  // Burn a generation per attempt (discard_side_files hands it back only on
  // a clean abort): an on-disk artifact of a failed attempt must never share
  // a generation with a later commit or checkpoint, or Recover()'s
  // roll-forward could splice two different topologies together.
  ++generation_;
  std::vector<std::string> tmp_paths(s), final_paths(s);

  std::vector<std::unique_ptr<Shard>> fresh;
  fresh.reserve(s);
  auto discard_side_files = [&] {
    fresh.clear();  // close the side files' fds before unlinking
    bool all_removed = true;
    for (const std::string& p : tmp_paths) {
      if (!p.empty() && std::remove(p.c_str()) != 0 && errno != ENOENT) {
        all_removed = false;
      }
    }
    if (all_removed) {
      // Clean abort: nothing at the burned generation survives, so hand it
      // back — otherwise a later plain Checkpoint() would write a generation
      // ahead of every shard's, and a crash partway through it would leave a
      // mixed-generation disk with no side files to roll forward.
      --generation_;
    } else {
      // A side file at the burned generation lingers on disk. Any further
      // checkpoint or rebuild in this process could collide with it, so
      // poison persistence; Recover() in a fresh process removes the
      // leftover (or refuses if it still cannot).
      storage_failed_ = true;
    }
  };
  for (std::uint32_t i = 0; i < s; ++i) {
    em::EmOptions em = options_.ShardEm(i);
    if (rebuild_files) {
      final_paths[i] = em.path;
      em.path += kRebuildSuffix;
      tmp_paths[i] = em.path;
      // Side files are built WITHOUT a log: creating one would truncate
      // the live shard's log while the old topology still needs its tail
      // (a crash before commit must replay it). The side checkpoint below
      // instead stamps the live log's current head as covered, so the
      // renamed file adopts the existing log with every record inert.
      em.wal_path.clear();
    }
    auto shard = std::make_unique<Shard>(em);
    shard->approx_size.store(chunks[i].size(), std::memory_order_relaxed);
    if (options_.pruning.enabled) {
      // Fresh fence per (re)build: rebuilds are where stale slot maxima and
      // grown-loose key bounds are tightened back to exact.
      sketch::ShardFenceOptions fo;
      fo.fence_slots = options_.pruning.fence_slots;
      fo.bloom_bits_per_key = options_.pruning.bloom_bits_per_key;
      shard->fence = sketch::ShardFence::Build(chunks[i], fo);
      shard->has_fence = true;
    }
    auto idx = core::TopkIndex::Build(shard->pager.get(),
                                      std::move(chunks[i]), options_.index);
    if (!idx.ok()) {
      discard_side_files();
      return idx.status();
    }
    shard->index = std::move(*idx);
    fresh.push_back(std::move(shard));
  }

  if (rebuild_files) {
    // Checkpoint every side file (new bound + topology + generation) before
    // any rename: each file that reaches its live name is individually
    // recoverable, and a crash at any point in the rename loop leaves
    // Recover() able to roll the commit forward from the remaining side
    // files.
    for (std::uint32_t i = 0; i < s; ++i) {
      if (options_.WalEnabled()) {
        // Adopt-by-stamp: shard i's replacement will serve shard-i.wal.
        // Its checkpoint covers everything that log currently holds (the
        // rebuild snapshot includes every applied update), so stamp the
        // log's head; we hold the topology lock exclusively, so the head
        // cannot move under us.
        em::WriteAheadLog* live_wal = shards_[i]->pager->wal();
        TOKRA_CHECK(live_wal != nullptr);
        fresh[i]->pager->OverrideWalCheckpointLsn(live_wal->head_lsn());
      }
      if (fresh[i]->has_fence) {
        fresh[i]->fence_root =
            WriteFenceChain(fresh[i]->pager.get(), fresh[i]->fence.Serialize());
      }
      const std::uint64_t extra[kShardCheckpointRoots - 1] = {
          std::bit_cast<std::uint64_t>(bounds[i]), s, generation_,
          fresh[i]->fence_root};
      Status st = fresh[i]->index->Checkpoint(extra);
      if (!st.ok()) {
        discard_side_files();
        return st;
      }
    }
    // Every side file's directory entry must be durable BEFORE the first
    // rename can commit: otherwise a crash in the rename window could
    // persist an early rename (new generation visible) while losing a
    // later side file's dirent, leaving a mix Recover() cannot roll
    // forward.
    if (options_.em.durable_sync) {
      TOKRA_CHECK(FsyncDir(options_.storage_dir));
    }
    for (std::uint32_t i = 0; i < s; ++i) {
      if (std::rename(tmp_paths[i].c_str(), final_paths[i].c_str()) != 0) {
        // The disk now mixes generations and this process cannot reconcile
        // it (earlier renames replaced live files whose old inodes survive
        // only as our open fds). Keep serving the old in-memory topology,
        // but poison persistence: Checkpoint() must not acknowledge
        // durability that a restart would discard. The un-renamed side
        // files are left in place — Recover() in a fresh process rolls the
        // commit forward from them.
        storage_failed_ = true;
        return Status::Internal("rebalance rename failed: " + tmp_paths[i] +
                                " -> " + final_paths[i]);
      }
    }
    if (options_.em.durable_sync) {
      TOKRA_CHECK(FsyncDir(options_.storage_dir));
    }
    // The replaced shards (dropped below) still hold fds on the unlinked
    // previous inodes; their storage is released with them.
    //
    // Under a WAL mode the committed files must now be served by pagers
    // that own their logs again (the side builds deliberately had none):
    // reopen each shard from its live name. The adopt-by-stamp makes the
    // attach a no-op recovery — every existing record is at or below the
    // stamped head, so nothing is undone or replayed, and appends simply
    // continue past it.
    if (options_.WalEnabled()) {
      for (std::uint32_t i = 0; i < s; ++i) {
        fresh[i]->index.reset();
        fresh[i]->pager.reset();  // release the renamed fd before reopening
        auto reopened = em::Pager::Open(options_.ShardEm(i));
        if (!reopened.ok()) {
          storage_failed_ = true;
          return reopened.status();
        }
        fresh[i]->pager = std::move(*reopened);
        auto idx = core::TopkIndex::Open(fresh[i]->pager.get());
        if (!idx.ok()) {
          storage_failed_ = true;
          return idx.status();
        }
        fresh[i]->index = std::move(*idx);
      }
    }
    // Every fresh shard was just checkpointed (side file, then renamed),
    // so its live file already holds exactly this state: clean.
    for (auto& shard : fresh) {
      shard->dirty.store(false, std::memory_order_relaxed);
    }
  }
  shards_ = std::move(fresh);
  lower_bounds_ = std::move(bounds);
  // MVCC: publish each new shard's first epoch view now, so queries go
  // lock-free from the first request instead of waiting for a checkpoint.
  // (Failures leave view null; those shards serve via the locked fallback.)
  if (options_.mvcc && !snapshot_) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::lock_guard<std::mutex> g(shards_[i]->mu);
      PublishShardLocked(i, *shards_[i]);
    }
  }
  return Status::Ok();
}

std::size_t ShardedTopkEngine::ShardFor(double x) const {
  auto it = std::upper_bound(lower_bounds_.begin(), lower_bounds_.end(), x);
  // lower_bounds_[0] is -inf, so `it` is never begin() for any x >= -inf;
  // x == -inf also lands on shard 0 because -inf is not > -inf.
  if (it == lower_bounds_.begin()) return 0;
  return static_cast<std::size_t>(it - lower_bounds_.begin()) - 1;
}

Status ShardedTopkEngine::InsertLocked(Shard& sh, const Point& p,
                                       std::vector<WalOp>* group) {
  {
    std::lock_guard<std::mutex> rg(registry_mu_);
    if (by_x_.count(p.x) != 0) {
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::AlreadyExists("duplicate x coordinate");
    }
    if (scores_.count(p.score) != 0) {
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::AlreadyExists("duplicate score");
    }
    by_x_.emplace(p.x, p.score);
    scores_.insert(p.score);
  }
  Status st = sh.index->Insert(p);
  if (st.ok()) {
    FenceApply(sh, /*insert=*/true, p);
    sh.approx_size.fetch_add(1, std::memory_order_relaxed);
    sh.dirty.store(true, std::memory_order_relaxed);
    n_inserts_.fetch_add(1, std::memory_order_relaxed);
    // Apply-then-log: the record reaches the log (and, per mode, the disk)
    // before the caller acknowledges the op, which is all the zero-loss
    // contract needs. A crash in the apply-to-log window loses only ops
    // nobody was told about — recovery rolls the torn apply back to the
    // checkpoint and replays the logged prefix.
    if (options_.WalEnabled()) {
      const WalOp op{true, p};
      if (group != nullptr) {
        group->push_back(op);
      } else if (Status ls = LogShardOps(sh, {&op, 1}); !ls.ok()) {
        RollbackShardOps(sh, {&op, 1});
        return ls;
      }
    }
  } else {
    std::lock_guard<std::mutex> rg(registry_mu_);
    by_x_.erase(p.x);
    scores_.erase(p.score);
  }
  return st;
}

Status ShardedTopkEngine::DeleteLocked(Shard& sh, const Point& p,
                                       std::vector<WalOp>* group) {
  {
    std::lock_guard<std::mutex> rg(registry_mu_);
    auto it = by_x_.find(p.x);
    if (it == by_x_.end() || it->second != p.score) {
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound("no such point");
    }
    // Leave the entry in place until the index apply succeeds: same-x
    // operations are excluded by the shard mutex we hold, so nobody can
    // observe the point half-deleted, and a failed apply needs no rollback.
  }
  Status st = sh.index->Delete(p);
  if (st.ok()) {
    {
      std::lock_guard<std::mutex> rg(registry_mu_);
      by_x_.erase(p.x);
      scores_.erase(p.score);
    }
    FenceApply(sh, /*insert=*/false, p);
    sh.approx_size.fetch_sub(1, std::memory_order_relaxed);
    sh.dirty.store(true, std::memory_order_relaxed);
    n_deletes_.fetch_add(1, std::memory_order_relaxed);
    if (options_.WalEnabled()) {
      const WalOp op{false, p};
      if (group != nullptr) {
        group->push_back(op);
      } else if (Status ls = LogShardOps(sh, {&op, 1}); !ls.ok()) {
        RollbackShardOps(sh, {&op, 1});
        return ls;
      }
    }
  }
  return st;
}

void ShardedTopkEngine::FenceApply(Shard& sh, bool insert,
                                   const Point& p) const {
  if (!sh.has_fence) return;
  std::lock_guard<std::mutex> fg(sh.fence_mu);
  if (insert) {
    sh.fence.Insert(p);
  } else {
    sh.fence.Delete(p);
  }
}

Status ShardedTopkEngine::LogShardOps(Shard& sh, std::span<const WalOp> ops) {
  if (ops.empty()) return Status::Ok();
  em::WriteAheadLog* wal = sh.pager->wal();
  TOKRA_CHECK(wal != nullptr);
  // The group commit: however many updates the shard group carried, the
  // log pays one append (one vectored block write) and one barrier.
  wal->Append(em::WriteAheadLog::RecordType::kLogical, EncodeWalOps(ops));
  wal->Sync();
  // Acknowledge only if the record provably reached the log: the log's
  // sticky error means the append or its barrier may have been lost, and
  // an acknowledgement now could not be honored by recovery.
  return wal->io_status();
}

void ShardedTopkEngine::RollbackShardOps(Shard& sh,
                                         std::span<const WalOp> ops) {
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    const WalOp& op = *it;
    Status st = op.insert ? sh.index->Delete(op.p) : sh.index->Insert(op.p);
    if (!st.ok()) {
      // The inverse apply failed: live index and registry can no longer be
      // reconciled, so take the shard out of service entirely — every
      // later query/update sees the sticky error, and recovery serves the
      // on-disk truth (last checkpoint + logged prefix).
      sh.pager->device()->PoisonIo(Status::IoError(
          "rollback of an unlogged update group failed: " + st.ToString()));
      return;
    }
    FenceApply(sh, /*insert=*/!op.insert, op.p);
    if (op.insert) {
      sh.approx_size.fetch_sub(1, std::memory_order_relaxed);
    } else {
      sh.approx_size.fetch_add(1, std::memory_order_relaxed);
    }
    if (op.insert) {
      n_inserts_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      n_deletes_.fetch_sub(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> rg(registry_mu_);
    if (op.insert) {
      by_x_.erase(op.p.x);
      scores_.erase(op.p.score);
    } else {
      by_x_.emplace(op.p.x, op.p.score);
      scores_.insert(op.p.score);
    }
  }
}

Status ShardedTopkEngine::ShardUpdateStatus(const Shard& sh) const {
  Status home = sh.pager->home_io_status();
  if (!home.ok()) return home;  // failed shard: nothing can be served
  return sh.pager->wal_io_status();  // read-only shard: no durable updates
}

Status ShardedTopkEngine::Insert(const Point& p) {
  if (snapshot_) return Status::FailedPrecondition("snapshot is read-only");
  obs::ScopedTimer timer(mset_.update_latency_us);
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  TOKRA_RETURN_IF_ERROR(RefuseWalAfterStorageFailureLocked());
  // Shard mutex before the registry: every operation on a given x
  // serializes on its owning shard's mutex, so a registry reservation is
  // never observable while its index apply is still in flight.
  const std::size_t i = ShardFor(p.x);
  Shard& sh = *shards_[i];
  std::lock_guard<std::mutex> g(sh.mu);
  TOKRA_RETURN_IF_ERROR(ShardUpdateStatus(sh));
  Status st = InsertLocked(sh, p, nullptr);
  // MVCC: every accepted direct update checkpoints + publishes a fresh
  // epoch, so lock-free readers observe it on their very next query.
  if (st.ok() && options_.mvcc) PublishShardLocked(i, sh);
  return st;
}

Status ShardedTopkEngine::Delete(const Point& p) {
  if (snapshot_) return Status::FailedPrecondition("snapshot is read-only");
  obs::ScopedTimer timer(mset_.update_latency_us);
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  TOKRA_RETURN_IF_ERROR(RefuseWalAfterStorageFailureLocked());
  const std::size_t i = ShardFor(p.x);
  Shard& sh = *shards_[i];
  std::lock_guard<std::mutex> g(sh.mu);
  TOKRA_RETURN_IF_ERROR(ShardUpdateStatus(sh));
  Status st = DeleteLocked(sh, p, nullptr);
  if (st.ok() && options_.mvcc) PublishShardLocked(i, sh);
  return st;
}

Status ShardedTopkEngine::RefuseWalAfterStorageFailureLocked() const {
  // Under kCheckpoint, serving updates past a failed rebalance commit is
  // safe: nothing after the failure is durable, and Checkpoint() refuses.
  // Under a WAL mode the updates WOULD be durable — logged against the
  // superseded topology, with LSNs past the committed side files' adopt
  // stamp — and Recover()'s roll-forward would undo/replay them onto the
  // NEW topology: corruption. Refuse instead; only a fresh process's
  // Recover() can reconcile the disk.
  if (options_.WalEnabled() && storage_failed_) {
    return Status::FailedPrecondition(
        "shard storage is inconsistent after a failed rebalance commit; "
        "WAL updates would poison recovery — restart and Recover()");
  }
  return Status::Ok();
}

StatusOr<std::vector<Point>> ShardedTopkEngine::TopK(
    double x1, double x2, std::uint64_t k, EngineQueryStats* stats) const {
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  return TopKLocked(x1, x2, k, stats, /*parallel=*/true);
}

StatusOr<std::vector<Point>> ShardedTopkEngine::TopKLocked(
    double x1, double x2, std::uint64_t k, EngineQueryStats* stats,
    bool parallel) const {
  if (x1 > x2) return Status::InvalidArgument("x1 > x2");
  n_queries_.fetch_add(1, std::memory_order_relaxed);
  if (k == 0) return std::vector<Point>{};

  // Telemetry: when enabled, stage timestamps chain through the function
  // (start -> fan-out done -> merge done -> end) and a root span + one span
  // per shard probe land in the tracer. Disabled, `timed` is false and no
  // clock is read.
  const bool timed = mset_.query_latency_us != nullptr;
  obs::Tracer* tr = options_.telemetry.trace_queries ? tracer_.get() : nullptr;
  const std::uint64_t t_start = timed ? obs::NowUs() : 0;
  obs::ScopedSpan query_span(tr, "query");
  const std::uint64_t root_id = query_span.id();

  const std::size_t s1 = ShardFor(x1), s2 = ShardFor(x2);
  const std::size_t q = s2 - s1 + 1;
  std::vector<std::vector<Point>> parts(q);
  std::vector<Status> statuses(q);
  std::vector<em::IoStats> deltas(q);

  // MVCC (DESIGN.md §14): capture each overlapping shard's published view
  // ONCE, up front, and use that same view for both routing and probing —
  // the fence the router consults must describe the epoch the probe will
  // read, or pruning could hide a point the view still holds. A null view
  // (shard never published, or publication failed) routes on the live
  // fence and probes under the shard mutex, exactly the pre-MVCC path.
  const bool mvcc = options_.mvcc && !snapshot_;
  std::vector<std::shared_ptr<const ShardView>> views;
  if (mvcc) {
    views.resize(q);
    for (std::size_t j = 0; j < q; ++j) {
      views[j] = shards_[s1 + j]->view.load(std::memory_order_acquire);
    }
  }

  auto run_one = [&](std::size_t j, em::Pager* pager,
                     core::TopkIndex* index) {
    // Explicit parent: on the pool this thread's implicit chain belongs to
    // some other query's spans, not ours.
    obs::ScopedSpan probe_span(tr, "shard_probe", root_id);
    obs::ScopedTimer probe_timer(mset_.stage_probe_us);
    // A shard whose home device carries a sticky error has left service:
    // its in-memory state is coherent but no longer trustworthy against
    // the medium, so the probe reports the error instead of results —
    // queries covering only healthy shards are unaffected.
    if (Status hs = pager->home_io_status(); !hs.ok()) {
      statuses[j] = hs;
      return;
    }
    em::IoStats before = pager->stats();
    auto r = index->TopK(x1, x2, k);
    if (!r.ok()) {
      statuses[j] = r.status();
    } else if (Status hs = pager->home_io_status(); !hs.ok()) {
      // The fault fired during THIS probe (a failed read still delivers
      // bytes; see BlockDevice::io_status): surface it on this query.
      statuses[j] = hs;
    } else {
      parts[j] = std::move(*r);
    }
    deltas[j] = pager->stats() - before;
  };
  auto run_shard = [&](std::size_t j) {
    Shard& sh = *shards_[s1 + j];
    if (snapshot_) {
      // No per-shard write lock: claim any free read replica (rotating
      // start so concurrent readers spread out), blocking on our rotation
      // slot only if every replica is busy. Replicas are fully independent
      // pagers over the same immutable mapping, so readers scale with the
      // replica count while sharing every cached byte.
      const std::size_t nrep = sh.replicas.size();
      const std::uint32_t start =
          sh.next_replica.fetch_add(1, std::memory_order_relaxed);
      Replica* rep = nullptr;
      std::unique_lock<std::mutex> lk;
      for (std::size_t t = 0; t < nrep && rep == nullptr; ++t) {
        Replica* c = sh.replicas[(start + t) % nrep].get();
        std::unique_lock<std::mutex> l(c->mu, std::try_to_lock);
        if (l.owns_lock()) {
          rep = c;
          lk = std::move(l);
        }
      }
      if (rep == nullptr) {
        rep = sh.replicas[start % nrep].get();
        lk = std::unique_lock<std::mutex>(rep->mu);
      }
      run_one(j, rep->pager.get(), rep->index.get());
      return;
    }
    if (mvcc && views[j] != nullptr) {
      // Lock-free epoch read: claim any free handle of the captured view
      // (same rotation discipline as the snapshot replicas above). The
      // handle mutex serializes queries on ONE handle; the shard mutex —
      // the writer's lock — is never touched.
      const ShardView& view = *views[j];
      const std::size_t nh = view.handles.size();
      const std::uint32_t start =
          view.next.fetch_add(1, std::memory_order_relaxed);
      ReadHandle* handle = nullptr;
      std::unique_lock<std::mutex> lk;
      for (std::size_t t = 0; t < nh && handle == nullptr; ++t) {
        ReadHandle* c = view.handles[(start + t) % nh].get();
        std::unique_lock<std::mutex> l(c->mu, std::try_to_lock);
        if (l.owns_lock()) {
          handle = c;
          lk = std::move(l);
        }
      }
      if (handle == nullptr) {
        handle = view.handles[start % nh].get();
        lk = std::unique_lock<std::mutex>(handle->mu);
      }
      run_one(j, handle->pager.get(), handle->index.get());
      return;
    }
    std::lock_guard<std::mutex> g(sh.mu);
    n_query_shard_locks_.fetch_add(1, std::memory_order_relaxed);
    run_one(j, sh.pager.get(), sh.index.get());
  };

  // ---- Fence routing (DESIGN.md §11) ----
  // Consult each overlapping shard's fence under fence_mu only (never the
  // shard mutex, which in-flight probes hold for their whole duration):
  // provably-empty ranges and Bloom-missed point lookups are dropped here,
  // every survivor gets its best-possible-score upper bound.
  struct Cand {
    std::size_t j;
    double bound;
  };
  std::vector<Cand> cands;
  cands.reserve(q);
  std::uint32_t fence_checks = 0, pruned = 0;
  const bool prune = options_.pruning.enabled;
  for (std::size_t j = 0; j < q; ++j) {
    const Shard& sh = *shards_[s1 + j];
    double bound = kInf;
    if (prune) {
      if (mvcc && views[j] != nullptr) {
        // Route with the captured view's own fence snapshot (immutable, no
        // lock): it describes exactly the epoch the probe will serve, so
        // pruning stays answer-preserving for that epoch.
        const ShardView& view = *views[j];
        if (view.has_fence) {
          ++fence_checks;
          if (x1 == x2 && !view.fence.MightContain(x1)) {
            ++pruned;
            continue;
          }
          const sketch::FenceBound fb = view.fence.RangeBound(x1, x2);
          if (!fb.maybe_nonempty) {
            ++pruned;
            continue;
          }
          bound = fb.best_score;
        }
        cands.push_back({j, bound});
        continue;
      }
      std::lock_guard<std::mutex> fg(sh.fence_mu);
      if (sh.has_fence) {
        ++fence_checks;
        if (x1 == x2 && !sh.fence.MightContain(x1)) {
          ++pruned;
          continue;
        }
        const sketch::FenceBound fb = sh.fence.RangeBound(x1, x2);
        if (!fb.maybe_nonempty) {
          ++pruned;
          continue;
        }
        bound = fb.best_score;
      }
    }
    cands.push_back({j, bound});
  }
  // Dispatch in descending best-possible-score waves. After each wave the
  // merge frontier (the k best scores seen so far) is consulted: once it is
  // full and the next candidate's fence bound cannot beat its k-th score,
  // no remaining candidate can either (they are sorted), so the fan-out
  // stops early. Sound because bounds are upper bounds and the registry
  // keeps scores globally distinct — a pruned shard's in-range scores are
  // strictly below the k already-held results (see DESIGN.md §11).
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.bound > b.bound; });
  std::size_t wave = cands.size();
  if (prune) {
    // Serial queries re-check after every shard; parallel ones dispatch a
    // pool-filling wave at a time so early termination never idles workers.
    wave = !parallel ? 1
                     : (options_.pruning.dispatch_wave != 0
                            ? options_.pruning.dispatch_wave
                            : options_.threads);
    wave = std::max<std::size_t>(wave, 1);
  }
  MergeFrontier frontier(k);
  std::uint32_t waves = 0, dispatched = 0;
  std::size_t next = 0;
  while (next < cands.size()) {
    if (prune && frontier.full() && cands[next].bound <= frontier.kth()) {
      pruned += static_cast<std::uint32_t>(cands.size() - next);
      break;
    }
    const std::size_t end = std::min(cands.size(), next + wave);
    ++waves;
    if (parallel && end - next > 1) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(end - next);
      for (std::size_t i = next; i < end; ++i) {
        tasks.emplace_back([&, i] { run_shard(cands[i].j); });
      }
      pool_.RunAll(std::move(tasks));
    } else {
      for (std::size_t i = next; i < end; ++i) run_shard(cands[i].j);
    }
    for (std::size_t i = next; i < end; ++i) {
      frontier.PushAll(parts[cands[i].j]);
    }
    dispatched += static_cast<std::uint32_t>(end - next);
    next = end;
  }
  const std::uint64_t t_fanout = timed ? obs::NowUs() : 0;

  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }

  select::SelectStats sstats;
  std::vector<Point> merged;
  {
    obs::ScopedSpan merge_span(tr, "merge");
    // Skipped shards left their `parts` slot empty, so the tournament merge
    // over all q lists is byte-identical to the unpruned answer.
    merged = MergeTopK(parts, k, &sstats);
  }
  const std::uint64_t t_merge = timed ? obs::NowUs() : 0;

  n_shards_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  n_fence_checks_.fetch_add(fence_checks, std::memory_order_relaxed);
  n_query_waves_.fetch_add(waves, std::memory_order_relaxed);
  if (mset_.shards_pruned_total != nullptr && pruned > 0) {
    mset_.shards_pruned_total->Add(pruned);
  }
  if (mset_.fence_checks_total != nullptr && fence_checks > 0) {
    mset_.fence_checks_total->Add(fence_checks);
  }
  if (mset_.query_waves_total != nullptr && waves > 0) {
    mset_.query_waves_total->Add(waves);
  }

  if (stats != nullptr) {
    stats->shards_queried = dispatched;
    stats->shards_pruned = pruned;
    stats->fence_checks = fence_checks;
    stats->waves = waves;
    stats->shard_candidates = 0;
    for (const auto& part : parts) stats->shard_candidates += part.size();
    stats->merge_nodes_visited = sstats.nodes_visited;
    stats->io = em::IoStats{};
    for (const em::IoStats& d : deltas) stats->io += d;
  }

  if (timed) {
    const std::uint64_t t_end = obs::NowUs();
    const std::uint64_t total = t_end - t_start;
    mset_.stage_fanout_us->Record(t_fanout - t_start);
    mset_.stage_merge_us->Record(t_merge - t_fanout);
    mset_.stage_reply_us->Record(t_end - t_merge);
    mset_.query_latency_us->Record(total);
    if (slow_log_->ShouldCapture(total)) {
      obs::SlowQueryEntry e;
      e.start_us = t_start;
      e.total_us = total;
      e.x1 = x1;
      e.x2 = x2;
      e.k = static_cast<std::uint32_t>(std::min<std::uint64_t>(k, ~std::uint32_t{0}));
      e.results = merged.size();
      e.stages = {{"fanout", t_fanout - t_start},
                  {"merge", t_merge - t_fanout},
                  {"reply", t_end - t_merge}};
      e.shards.reserve(q);
      for (std::size_t j = 0; j < q; ++j) {
        e.shards.push_back({static_cast<std::uint32_t>(s1 + j),
                            parts[j].size(), deltas[j]});
      }
      slow_log_->Capture(std::move(e));
    }
  }
  return merged;
}

void ShardedTopkEngine::ExecuteBatch(std::span<const Request> batch,
                                     std::vector<Response>* out) {
  out->clear();
  out->resize(batch.size());
  obs::ScopedTimer timer(mset_.batch_exec_us);
  obs::ScopedSpan span(options_.telemetry.trace_queries ? tracer_.get()
                                                        : nullptr,
                       "batch");
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  n_batches_.fetch_add(1, std::memory_order_relaxed);

  // Phase 1: group updates by owning shard, preserving submission order
  // within each group. Validation happens in phase 2 under the shard mutex
  // (same lock discipline as direct Insert/Delete), so a concurrent direct
  // operation can never observe a half-applied batch update. Same-x requests
  // land in the same group and stay ordered; the only unspecified ordering
  // is between *different shards'* groups, observable solely through
  // same-score conflicts within one batch.
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  std::vector<std::size_t> query_idx;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].kind == Request::Kind::kTopk) {
      query_idx.push_back(i);
    } else if (snapshot_) {
      // Read-only serving: updates are answered, not applied.
      (*out)[i].status = Status::FailedPrecondition("snapshot is read-only");
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
    } else if (Status st = RefuseWalAfterStorageFailureLocked(); !st.ok()) {
      (*out)[i].status = st;
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
    } else {
      groups[ShardFor(batch[i].point.x)].push_back(i);
    }
  }

  // Phase 2: apply each shard's update group under ONE lock acquisition,
  // shard groups in parallel across the pool.
  std::vector<std::function<void()>> update_tasks;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    update_tasks.emplace_back([&, s] {
      Shard& sh = *shards_[s];
      std::lock_guard<std::mutex> g(sh.mu);
      // A degraded shard (failed home device, or failed log under a WAL
      // mode) answers its whole group with the sticky error and applies
      // nothing; the other shards' groups proceed untouched.
      if (Status st = ShardUpdateStatus(sh); !st.ok()) {
        for (std::size_t i : groups[s]) (*out)[i].status = st;
        return;
      }
      // The batch path is the group-commit boundary: every accepted update
      // of this shard's group lands in ONE logical WAL record, appended and
      // synced once after the group applied — the batcher's coalescing
      // window amortizes the log barrier exactly like it amortizes the
      // lock. Futures (acknowledgements) resolve only after ExecuteBatch
      // returns, so nothing is acknowledged before its record is logged.
      std::vector<WalOp> group_log;
      group_log.reserve(groups[s].size());
      for (std::size_t i : groups[s]) {
        const Request& req = batch[i];
        (*out)[i].status = req.kind == Request::Kind::kInsert
                               ? InsertLocked(sh, req.point, &group_log)
                               : DeleteLocked(sh, req.point, &group_log);
      }
      if (Status ls = LogShardOps(sh, group_log); !ls.ok()) {
        // The group's record may not be durable: revoke every accepted op
        // and answer it with the log's error instead — nothing from this
        // group is acknowledged. Ops the validation already rejected keep
        // their own status.
        RollbackShardOps(sh, group_log);
        for (std::size_t i : groups[s]) {
          if ((*out)[i].status.ok()) (*out)[i].status = ls;
        }
        return;
      }
      // MVCC: publish the whole group as ONE fresh epoch before phase 3,
      // so this batch's own queries (and every later lock-free reader)
      // observe all of its updates — read-your-writes at batch granularity.
      if (options_.mvcc) PublishShardLocked(s, sh);
    });
  }
  pool_.RunAll(std::move(update_tasks));

  // Phase 3: queries observe the whole batch's updates; they run
  // concurrently, each serial inside (they already occupy pool threads).
  std::vector<std::function<void()>> query_tasks;
  query_tasks.reserve(query_idx.size());
  for (std::size_t i : query_idx) {
    query_tasks.emplace_back([&, i] {
      const Request& req = batch[i];
      auto r = TopKLocked(req.x1, req.x2, req.k, nullptr, /*parallel=*/false);
      if (r.ok()) {
        (*out)[i].points = std::move(*r);
      } else {
        (*out)[i].status = r.status();
      }
    });
  }
  pool_.RunAll(std::move(query_tasks));
}

Status ShardedTopkEngine::Checkpoint(
    std::vector<std::uint64_t>* covered_lsns) {
  if (snapshot_) return Status::FailedPrecondition("snapshot is read-only");
  std::unique_lock<std::shared_mutex> tl(topology_mu_);
  return CheckpointLocked(covered_lsns);
}

Status ShardedTopkEngine::ExportSnapshot(
    const std::string& dest_dir, std::vector<std::uint64_t>* covered_lsns) {
  if (snapshot_) return Status::FailedPrecondition("snapshot is read-only");
  std::unique_lock<std::shared_mutex> tl(topology_mu_);
  TOKRA_RETURN_IF_ERROR(CheckpointLocked(covered_lsns));
  // Copy while still holding the engine exclusively: between the stamp and
  // the copy no update can dirty a home block in place, so the exported
  // bytes are exactly ONE checkpoint — the property that makes the export
  // safe to serve (OpenSnapshot/Recover) and its log tail safe to replay
  // from the stamped LSNs. The export is a shipping artifact, not a
  // durability point: no fsync, the source checkpoint remains the truth.
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dest_dir, ec);
  if (ec) {
    return Status::IoError("ExportSnapshot mkdir " + dest_dir + ": " +
                           ec.message());
  }
  for (std::uint32_t i = 0; i < options_.num_shards; ++i) {
    const std::string src = options_.ShardEm(i).path;
    const std::string dst =
        dest_dir + "/" + fs::path(src).filename().string();
    fs::copy_file(src, dst, fs::copy_options::overwrite_existing, ec);
    if (ec) {
      return Status::IoError("ExportSnapshot copy " + src + " -> " + dst +
                             ": " + ec.message());
    }
  }
  return Status::Ok();
}

Status ShardedTopkEngine::CheckpointLocked(
    std::vector<std::uint64_t>* covered_lsns) {
  if (options_.storage_dir.empty()) {
    return Status::FailedPrecondition("engine has no storage_dir");
  }
  if (options_.durability == Durability::kNone) {
    return Status::FailedPrecondition(
        "engine is configured durability=kNone");
  }
  if (storage_failed_) {
    return Status::FailedPrecondition(
        "shard storage is inconsistent after a failed rebalance commit; "
        "restart and Recover() to roll it forward");
  }
  obs::ScopedTimer timer(mset_.checkpoint_us);
  obs::ScopedSpan span(tracer_.get(), "checkpoint");
  // Root 0 is the index meta (written by TopkIndex::Checkpoint); root 1
  // carries this shard's lower bound so Recover restores the partition;
  // root 2 records the shard count so Recover rejects a topology
  // mismatch instead of silently dropping key ranges; root 3 is the
  // topology generation so Recover reconciles a half-renamed rebalance.
  //
  // Clean shards are skipped (unless configured off): no update was
  // accepted since their last checkpoint, so their file already holds
  // byte-for-byte the state this checkpoint would write — same bound, same
  // shard count, same generation (anything changing those rebuilds the
  // shard, which marks it dirty). The dirty flag is cleared only after the
  // shard's own durability barriers completed, so a failed checkpoint
  // retries the shard next time.
  auto checkpoint_shard = [&](std::size_t i) -> Status {
    Status st = CheckpointShardLocked(i, *shards_[i], nullptr);
    // MVCC: a full checkpoint is also a publication point — refresh every
    // shard's epoch view (clean shards included: their view may predate an
    // earlier clean checkpoint skip and still be perfectly current, in
    // which case this no-ops on the epoch match).
    if (st.ok()) PublishShardLocked(i, *shards_[i]);
    return st;
  };
  std::vector<Status> statuses(shards_.size());
  if (options_.parallel_checkpoint && shards_.size() > 1) {
    // Shard checkpoints touch disjoint pagers and files, so they can
    // overlap freely; each one still runs its own flush -> barrier ->
    // superblock -> barrier sequence, which is the entirety of the
    // crash-safety argument (DESIGN.md §6.3). RunAll is the barrier: no
    // checkpoint is acknowledged before every shard's durability barriers
    // have completed. We hold topology_mu_ exclusively, so no fan-out
    // query can race these pool tasks on the shard pagers.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      tasks.emplace_back([&, i] { statuses[i] = checkpoint_shard(i); });
    }
    pool_.RunAll(std::move(tasks));
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      statuses[i] = checkpoint_shard(i);
    }
  }
  for (const Status& st : statuses) TOKRA_RETURN_IF_ERROR(st);
  if (covered_lsns != nullptr) {
    covered_lsns->clear();
    covered_lsns->reserve(shards_.size());
    for (const auto& sh : shards_) {
      covered_lsns->push_back(sh->pager->wal_checkpoint_lsn());
    }
  }
  return Status::Ok();
}

Status ShardedTopkEngine::CheckpointShardLocked(std::size_t i, Shard& sh,
                                                std::uint64_t* covered_lsn) {
  // A failed shard cannot commit (its pager refuses; its device overlay
  // holds post-failure writes off the medium). Fail fast so the fence
  // chain below isn't pointlessly rewritten — the healthy shards still
  // checkpoint, and the first error is what the caller gets back.
  if (Status st = sh.pager->io_status(); !st.ok()) return st;
  if (options_.skip_clean_shard_checkpoints &&
      !sh.dirty.load(std::memory_order_relaxed)) {
    // A clean shard's fence is also unchanged, so its old fence root (or
    // kNullBlock) is still exactly right.
    if (covered_lsn != nullptr) *covered_lsn = sh.pager->wal_checkpoint_lsn();
    return Status::Ok();
  }
  // Root 4 is the fence chain head. Rewrite it fresh each checkpoint (the
  // fence mutates with every update); the old chain's blocks are freed
  // first so a long-lived shard doesn't leak a chain per checkpoint. A
  // crash inside this window is safe: the superseded superblock still
  // references the old chain's blocks, and the pager's checkpoint
  // machinery keeps a referenced block's storage live until the NEXT
  // completed checkpoint stops referencing it.
  if (sh.has_fence || sh.fence_root != em::kNullBlock) {
    if (sh.fence_root != em::kNullBlock) {
      FreeFenceChain(sh.pager.get(), sh.fence_root);
      sh.fence_root = em::kNullBlock;
    }
    if (sh.has_fence) {
      std::vector<em::word_t> blob;
      {
        std::lock_guard<std::mutex> fg(sh.fence_mu);
        blob = sh.fence.Serialize();
      }
      sh.fence_root = WriteFenceChain(sh.pager.get(), blob);
    }
  }
  const std::uint64_t extra[kShardCheckpointRoots - 1] = {
      std::bit_cast<std::uint64_t>(lower_bounds_[i]),
      options_.num_shards, generation_, sh.fence_root};
  Status st = sh.index->Checkpoint(extra);
  if (st.ok()) sh.dirty.store(false, std::memory_order_relaxed);
  if (covered_lsn != nullptr) *covered_lsn = sh.pager->wal_checkpoint_lsn();
  return st;
}

void ShardedTopkEngine::PublishShardLocked(std::size_t i, Shard& sh) {
  if (!options_.mvcc || snapshot_) return;
  if (!sh.pager->io_status().ok()) return;  // keep serving the old epoch
  // An epoch is a completed pager checkpoint: a dirty shard must commit one
  // before there is anything new to publish. (Note this is a PAGER-level
  // commit — it works on memory-backed shards too; the engine-level
  // storage_dir/durability gates only guard the public Checkpoint() API's
  // durability promise, which publication does not make.)
  if (sh.dirty.load(std::memory_order_relaxed)) {
    if (!CheckpointShardLocked(i, sh, nullptr).ok()) return;
  }
  const std::uint64_t epoch = sh.pager->published_epoch();
  if (epoch == 0) return;  // nothing published yet (checkpoint skipped?)
  {
    auto cur = sh.view.load(std::memory_order_acquire);
    if (cur != nullptr && cur->epoch == epoch) return;  // already current
  }
  auto view = std::make_shared<ShardView>();
  // Pin before opening handles: the pin freezes every block this epoch
  // references, so the handles below read an immutable image no matter how
  // far the writer runs ahead. An abandoned publication (any failure below)
  // destroys the view, which closes the handles and releases the pin.
  view->pin = sh.pager->PinEpoch();
  view->epoch = epoch;
  {
    // The fence snapshot is taken under the same shard lock that applied
    // the updates this epoch covers, so it describes the epoch exactly.
    std::lock_guard<std::mutex> fg(sh.fence_mu);
    if (sh.has_fence) {
      view->fence = sh.fence;
      view->has_fence = true;
    }
  }
  const std::uint32_t nh = options_.mvcc_read_handles > 0
                               ? options_.mvcc_read_handles
                               : options_.threads + 1;
  view->handles.reserve(nh);
  for (std::uint32_t h = 0; h < nh; ++h) {
    auto dev = sh.pager->ShareReadView();
    if (dev == nullptr) return;  // backend can't share views: locked serving
    auto pg = em::Pager::OpenOn(std::move(dev), options_.ShardEm(
                                    static_cast<std::uint32_t>(i)));
    if (!pg.ok()) return;
    auto handle = std::make_unique<ReadHandle>();
    handle->pager = std::move(*pg);
    auto idx = core::TopkIndex::Open(handle->pager.get());
    if (!idx.ok()) return;
    handle->index = std::move(*idx);
    view->handles.push_back(std::move(handle));
  }
  sh.view.store(std::move(view), std::memory_order_release);
}

StatusOr<std::unique_ptr<ShardedTopkEngine>> ShardedTopkEngine::Recover(
    EngineOptions options, RecoveryReport* report) {
  options.Validate();
  if (options.storage_dir.empty()) {
    return Status::InvalidArgument("Recover requires a storage_dir");
  }
  auto engine =
      std::unique_ptr<ShardedTopkEngine>(new ShardedTopkEngine(options));
  // Telemetry note: every pager below opens via engine->options_.ShardEm
  // (not the plain `options` parameter) so the engine's EmMetrics sink
  // reaches the recovered shards' pools and logs.
  const std::uint64_t t_recover =
      engine->telemetry_enabled() ? obs::NowUs() : 0;
  const std::uint32_t s = options.num_shards;
  const bool wal_mode = options.WalEnabled();

  // Phase 1 — probe: open every live file WITHOUT its log to read the
  // superblocks. The generation agreement check (and the interrupted-
  // rebalance roll-forward below) needs all superblocks before any single
  // shard can be trusted, and attaching a log rolls torn writes back —
  // something that must only happen once each file is known to be the
  // committed one. Superblocks themselves are always intact (their slots
  // are never pre-imaged in place), so probing without undo is safe.
  auto probe_em = [&](std::uint32_t i) {
    em::EmOptions em = engine->options_.ShardEm(i);
    em.wal_path.clear();
    return em;
  };
  std::vector<std::unique_ptr<em::Pager>> pagers(s);
  std::vector<std::uint64_t> gens(s);
  for (std::uint32_t i = 0; i < s; ++i) {
    TOKRA_ASSIGN_OR_RETURN(pagers[i], em::Pager::Open(probe_em(i)));
    if (pagers[i]->roots().size() < kShardCheckpointRoots) {
      return Status::FailedPrecondition("shard checkpoint missing roots");
    }
    if (pagers[i]->roots()[2] != s) {
      return Status::FailedPrecondition(
          "num_shards mismatch with checkpoint (have " + std::to_string(s) +
          ", checkpointed " + std::to_string(pagers[i]->roots()[2]) + ")");
    }
    gens[i] = pagers[i]->roots()[3];
    if (!wal_mode) {
      // Recovering a WAL-mode directory with the log switched off would
      // silently discard its acknowledged tail (and skip the undo of torn
      // writes). Refuse; the caller either recovers with a WAL durability
      // mode or truncates deliberately.
      TOKRA_RETURN_IF_ERROR(RequireNoWalTail(
          options, i, pagers[i]->wal_checkpoint_lsn(), "WAL-less recovery"));
    }
  }

  // Reconcile an interrupted rebalance. BuildShardsLocked checkpoints every
  // side file before renaming any of them over the live files, so the disk
  // is in one of three states:
  //  * uniform generation, no side files — nothing happened;
  //  * uniform generation plus side files — a rebuild built side files but
  //    crashed before its first rename: it never committed, drop them;
  //  * mixed generations — crash mid-rename: the newest generation is the
  //    committed one, and every shard still at the old generation must have
  //    its side file (its rename never ran), so finish the renames.
  const std::uint64_t gen = *std::max_element(gens.begin(), gens.end());
  engine->generation_ = gen;
  bool rolled_forward = false;
  for (std::uint32_t i = 0; i < s; ++i) {
    const std::string live = options.ShardEm(i).path;
    const std::string side = live + kRebuildSuffix;
    if (gens[i] == gen) {
      // An uncommitted side file MUST go: generation_ restarts from `gen`,
      // so a leftover could alias a future rebuild attempt's generation and
      // feed a later roll-forward a different topology's shard.
      if (std::remove(side.c_str()) != 0 && errno != ENOENT) {
        return Status::Internal("cannot remove stale side file " + side);
      }
      continue;
    }
    pagers[i].reset();  // release the stale live file before replacing it
    em::EmOptions side_em = probe_em(i);
    side_em.path = side;
    auto side_pager = em::Pager::Open(side_em);
    if (!side_pager.ok() ||
        (*side_pager)->roots().size() < kShardCheckpointRoots ||
        (*side_pager)->roots()[3] != gen) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) + " is at generation " +
          std::to_string(gens[i]) + " but the topology committed generation " +
          std::to_string(gen) + ", and no side file can roll it forward");
    }
    if (std::rename(side.c_str(), live.c_str()) != 0) {
      return Status::Internal("roll-forward rename failed: " + side + " -> " +
                              live);
    }
    rolled_forward = true;
    // The side pager's fd survives the rename; keep it as the live pager
    // rather than reopening (which could spuriously fail an already-
    // committed roll-forward).
    pagers[i] = std::move(*side_pager);
  }
  // Same durability barrier as the rebalance commit path: the roll-forward
  // renames must be journaled before checkpoints are acknowledged again.
  if (rolled_forward && options.em.durable_sync) {
    TOKRA_CHECK(FsyncDir(options.storage_dir));
  }
  if (report != nullptr) report->rolled_forward_rebalance = rolled_forward;

  // Phase 2 — attach the logs: every live file is now the committed one,
  // so reopen each shard WITH its log. Pager::Open drops the log's torn
  // tail and undoes torn inter-checkpoint home writes, handing back the
  // byte-exact stamped checkpoint; the logical tail past the stamp is
  // replayed below.
  if (wal_mode) {
    for (std::uint32_t i = 0; i < s; ++i) {
      pagers[i].reset();
      TOKRA_ASSIGN_OR_RETURN(pagers[i],
                             em::Pager::Open(engine->options_.ShardEm(i)));
      if (pagers[i]->roots().size() < kShardCheckpointRoots) {
        return Status::FailedPrecondition("shard checkpoint missing roots");
      }
    }
  }

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<double> bounds;
  shards.reserve(s);
  bounds.reserve(s);
  for (std::uint32_t i = 0; i < s; ++i) {
    bounds.push_back(std::bit_cast<double>(pagers[i]->roots()[1]));
    auto shard = std::make_unique<Shard>();
    shard->pager = std::move(pagers[i]);
    TOKRA_ASSIGN_OR_RETURN(shard->index,
                           core::TopkIndex::Open(shard->pager.get()));
    // Reconstruct the pruning fence from checkpoint root 4 BEFORE the WAL
    // replay below, so the replayed tail updates it exactly like the live
    // engine's update path did. A shard checkpointed with pruning off
    // recorded kNullBlock; the registry scan further down rebuilds a fence
    // from scratch in that case.
    if (options.pruning.enabled) {
      const em::BlockId froot = shard->pager->roots()[4];
      if (froot != em::kNullBlock) {
        TOKRA_ASSIGN_OR_RETURN(auto blob,
                               ReadFenceChain(shard->pager.get(), froot));
        TOKRA_ASSIGN_OR_RETURN(shard->fence,
                               sketch::ShardFence::Deserialize(blob));
        shard->has_fence = true;
        shard->fence_root = froot;
      }
    }
    // Redo: replay the acknowledged update batches past the stamped
    // checkpoint LSN, in LSN order, through the normal index update path.
    // Pre-image records are skipped here (the pager already consumed them)
    // but keep guarding: replay evictions log fresh pre-images, so a crash
    // mid-replay just recovers again, idempotently.
    bool replayed = false;
    if (wal_mode) {
      em::WriteAheadLog* wal = shard->pager->wal();
      const std::uint64_t covered = shard->pager->wal_checkpoint_lsn();
      // Snapshot the tail before applying anything: replaying through the
      // index appends fresh pre-image records to this same log (its
      // evictions are guarded like any others), which would invalidate
      // iterators into the live record directory.
      std::vector<em::WriteAheadLog::Record> tail;
      for (const auto& rec : wal->records()) {
        if (rec.lsn > covered &&
            rec.type == em::WriteAheadLog::RecordType::kLogical) {
          tail.push_back(rec);
        }
      }
      std::vector<em::word_t> payload;
      for (const auto& rec : tail) {
        TOKRA_RETURN_IF_ERROR(wal->ReadPayload(rec, &payload));
        TOKRA_ASSIGN_OR_RETURN(auto ops, DecodeWalOps(payload));
        for (const WalOp& op : ops) {
          Status st = op.insert ? shard->index->Insert(op.p)
                                : shard->index->Delete(op.p);
          if (!st.ok()) {
            return Status::Internal(
                "WAL replay failed on shard " + std::to_string(i) + ": " +
                st.ToString());
          }
          // Keep the fence in step with the replayed tail (no fence_mu:
          // the engine is not published yet).
          if (shard->has_fence) {
            if (op.insert) {
              shard->fence.Insert(op.p);
            } else {
              shard->fence.Delete(op.p);
            }
          }
        }
        replayed = true;
        if (report != nullptr) {
          ++report->replayed_records;
          report->replayed_ops += ops.size();
        }
      }
    }
    // Without replay the recovered in-memory state IS the file state:
    // clean until the first accepted update. Replayed shards are ahead of
    // their checkpoint again and must not be skipped by the next one.
    shard->dirty.store(replayed, std::memory_order_relaxed);
    const std::uint64_t n = shard->index->size();
    shard->approx_size.store(n, std::memory_order_relaxed);
    if (n > 0) {
      // One O(n_i/B) scan refills the exact-membership registry.
      auto r = shard->index->TopK(-kInf, kInf, n);
      if (!r.ok()) return r.status();
      if (r->size() != n) {
        return Status::Internal("recovered shard lost points");
      }
      for (const Point& p : *r) {
        if (!engine->by_x_.emplace(p.x, p.score).second ||
            !engine->scores_.insert(p.score).second) {
          return Status::Internal("recovered shards overlap");
        }
      }
      // No persisted fence (checkpoint predates pruning, or it was off):
      // rebuild one from the scan we already paid for.
      if (options.pruning.enabled && !shard->has_fence) {
        sketch::ShardFenceOptions fo;
        fo.fence_slots = options.pruning.fence_slots;
        fo.bloom_bits_per_key = options.pruning.bloom_bits_per_key;
        shard->fence = sketch::ShardFence::Build(*r, fo);
        shard->has_fence = true;
      }
    } else if (options.pruning.enabled && !shard->has_fence) {
      shard->fence = sketch::ShardFence::Build({}, {});
      shard->has_fence = true;
    }
    shards.push_back(std::move(shard));
  }
  if (bounds[0] != -kInf || !std::is_sorted(bounds.begin(), bounds.end())) {
    return Status::FailedPrecondition("recovered shard bounds are not a partition");
  }
  engine->shards_ = std::move(shards);
  engine->lower_bounds_ = std::move(bounds);
  // MVCC: publish each recovered shard's epoch before serving. A shard
  // whose WAL tail was replayed is dirty and checkpoints first, so readers
  // never see the pre-replay state.
  if (engine->options_.mvcc) {
    for (std::size_t i = 0; i < engine->shards_.size(); ++i) {
      std::lock_guard<std::mutex> g(engine->shards_[i]->mu);
      engine->PublishShardLocked(i, *engine->shards_[i]);
    }
  }
  if (engine->mset_.recover_us != nullptr) {
    engine->mset_.recover_us->Record(obs::NowUs() - t_recover);
  }
  return engine;
}

StatusOr<std::unique_ptr<ShardedTopkEngine>> ShardedTopkEngine::OpenSnapshot(
    EngineOptions options) {
  if (options.storage_dir.empty()) {
    return Status::InvalidArgument("OpenSnapshot requires a storage_dir");
  }
  // Default serving backend is the zero-copy mapping; a caller picking
  // kFile/kUring explicitly still gets a read-only snapshot, just with
  // copying reads. Everything is opened O_RDONLY — this never writes; the
  // caller must keep the files quiescent (no live engine writing them)
  // for as long as the snapshot serves.
  if (options.em.backend == em::Backend::kMem) {
    options.em.backend = em::Backend::kMmap;
  }
  options.em.read_only = true;
  // A snapshot never appends, truncates, or replays — it must not own the
  // logs (read-only pagers refuse them). Whether the directory's logs have
  // an unreplayed tail is checked below regardless of the caller's mode.
  options.durability = Durability::kCheckpoint;
  options.Validate();
  auto engine =
      std::unique_ptr<ShardedTopkEngine>(new ShardedTopkEngine(options));
  engine->snapshot_ = true;
  const std::uint32_t s = options.num_shards;
  const std::uint32_t nrep = options.snapshot_replicas > 0
                                 ? options.snapshot_replicas
                                 : options.threads + 1;

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<double> bounds;
  shards.reserve(s);
  bounds.reserve(s);
  std::uint64_t gen = 0;
  for (std::uint32_t i = 0; i < s; ++i) {
    auto shard = std::make_unique<Shard>();
    for (std::uint32_t r = 0; r < nrep; ++r) {
      auto rep = std::make_unique<Replica>();
      // engine->options_ rather than `options`: carries the EmMetrics sink.
      TOKRA_ASSIGN_OR_RETURN(rep->pager,
                             em::Pager::Open(engine->options_.ShardEm(i)));
      if (r == 0) {
        const auto& roots = rep->pager->roots();
        if (roots.size() < kShardCheckpointRoots) {
          return Status::FailedPrecondition("shard checkpoint missing roots");
        }
        if (roots[2] != s) {
          return Status::FailedPrecondition(
              "num_shards mismatch with checkpoint (have " +
              std::to_string(s) + ", checkpointed " +
              std::to_string(roots[2]) + ")");
        }
        if (i == 0) {
          gen = roots[3];
        } else if (roots[3] != gen) {
          // Mixed generations mean an interrupted rebalance; repairing it
          // writes, which a snapshot must never do.
          return Status::FailedPrecondition(
              "snapshot has an interrupted rebalance (mixed topology "
              "generations); run Recover() on it first");
        }
        bounds.push_back(std::bit_cast<double>(roots[1]));
        // A log tail past the stamped checkpoint means acknowledged
        // updates this read-only snapshot could not serve, or torn
        // in-place writes only undo can repair; both need a Recover()
        // first — the same rule as the interrupted rebalance above.
        //
        // EXCEPT on a COW directory (DESIGN.md §14): copy-on-write
        // checkpoints never overwrite a published epoch's blocks in place,
        // so the stamped checkpoint is byte-intact regardless of what was
        // written after it — no torn state exists for undo to repair, and
        // the tail is merely newer epochs' work. Serving the file as-is IS
        // pinning the last published epoch, which is exactly what a
        // snapshot of a live-updating directory should do.
        if (!rep->pager->cow_epochs()) {
          TOKRA_RETURN_IF_ERROR(RequireNoWalTail(
              options, i, rep->pager->wal_checkpoint_lsn(), "snapshot"));
        }
        // Pruning for read-only serving comes straight from checkpoint root
        // 4; a snapshot never scans, so a fence-less checkpoint simply
        // serves this shard unpruned (has_fence stays false).
        if (options.pruning.enabled && roots[4] != em::kNullBlock) {
          TOKRA_ASSIGN_OR_RETURN(
              auto blob, ReadFenceChain(rep->pager.get(), roots[4]));
          TOKRA_ASSIGN_OR_RETURN(shard->fence,
                                 sketch::ShardFence::Deserialize(blob));
          shard->has_fence = true;
          shard->fence_root = roots[4];
        }
      }
      TOKRA_ASSIGN_OR_RETURN(rep->index,
                             core::TopkIndex::Open(rep->pager.get()));
      shard->replicas.push_back(std::move(rep));
    }
    shard->approx_size.store(shard->replicas[0]->index->size(),
                             std::memory_order_relaxed);
    shard->dirty.store(false, std::memory_order_relaxed);
    shards.push_back(std::move(shard));
  }
  if (bounds[0] != -kInf || !std::is_sorted(bounds.begin(), bounds.end())) {
    return Status::FailedPrecondition(
        "snapshot shard bounds are not a partition");
  }
  engine->generation_ = gen;
  engine->shards_ = std::move(shards);
  engine->lower_bounds_ = std::move(bounds);
  return engine;
}

Status ShardedTopkEngine::Rebalance() {
  if (snapshot_) return Status::FailedPrecondition("snapshot is read-only");
  std::unique_lock<std::shared_mutex> tl(topology_mu_);
  return RebalanceLocked();
}

bool ShardedTopkEngine::SkewedLocked() const {
  std::uint64_t total = 0, max_size = 0;
  for (const auto& sh : shards_) {
    std::uint64_t n = sh->approx_size.load(std::memory_order_relaxed);
    total += n;
    max_size = std::max(max_size, n);
  }
  if (total < options_.rebalance_min_points) return false;
  double avg = static_cast<double>(total) / static_cast<double>(shards_.size());
  return static_cast<double>(max_size) > options_.rebalance_skew * avg;
}

bool ShardedTopkEngine::MaybeRebalance() {
  if (snapshot_) return false;
  {
    std::shared_lock<std::shared_mutex> tl(topology_mu_);
    if (!SkewedLocked()) return false;
  }
  std::unique_lock<std::shared_mutex> tl(topology_mu_);
  if (!SkewedLocked()) return false;  // raced with another rebalance
  return RebalanceLocked().ok();
}

Status ShardedTopkEngine::RebalanceLocked() {
  obs::ScopedTimer timer(mset_.rebalance_us);
  obs::ScopedSpan span(tracer_.get(), "rebalance");
  if (storage_failed_) {
    return Status::FailedPrecondition(
        "shard storage is inconsistent after a failed rebalance commit; "
        "restart and Recover() to roll it forward");
  }
  std::vector<Point> all;
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->approx_size.load(std::memory_order_relaxed);
  }
  all.reserve(total);
  for (const auto& sh : shards_) {
    std::uint64_t n = sh->approx_size.load(std::memory_order_relaxed);
    if (n == 0) continue;
    auto r = sh->index->TopK(-kInf, kInf, n);
    if (!r.ok()) return r.status();
    TOKRA_CHECK_EQ(r->size(), n);
    all.insert(all.end(), r->begin(), r->end());
  }
  TOKRA_RETURN_IF_ERROR(BuildShardsLocked(std::move(all)));
  n_rebalances_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

std::uint64_t ShardedTopkEngine::size() const {
  if (snapshot_) {
    // No registry in snapshot mode (nothing can be inserted); the per-shard
    // sizes are fixed at open.
    std::shared_lock<std::shared_mutex> tl(topology_mu_);
    std::uint64_t total = 0;
    for (const auto& sh : shards_) {
      total += sh->approx_size.load(std::memory_order_relaxed);
    }
    return total;
  }
  std::lock_guard<std::mutex> rg(registry_mu_);
  return by_x_.size();
}

std::vector<std::uint64_t> ShardedTopkEngine::ShardSizes() const {
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& sh : shards_) {
    sizes.push_back(sh->approx_size.load(std::memory_order_relaxed));
  }
  return sizes;
}

std::vector<double> ShardedTopkEngine::ShardLowerBounds() const {
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  return lower_bounds_;
}

em::IoStats ShardedTopkEngine::AggregatedIoStats() const {
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  em::IoStats total;
  for (const auto& sh : shards_) {
    if (snapshot_) {
      for (const auto& rep : sh->replicas) {
        std::lock_guard<std::mutex> g(rep->mu);
        total += rep->pager->stats();
      }
      continue;
    }
    std::lock_guard<std::mutex> g(sh->mu);
    total += sh->pager->stats();
  }
  return total;
}

em::SpaceStats ShardedTopkEngine::AggregatedSpaceStats() const {
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  em::SpaceStats total;
  for (const auto& sh : shards_) {
    em::SpaceStats s;
    if (snapshot_) {
      // Every replica views the same file; count each shard once.
      std::lock_guard<std::mutex> g(sh->replicas[0]->mu);
      s = sh->replicas[0]->pager->Space();
    } else {
      std::lock_guard<std::mutex> g(sh->mu);
      s = sh->pager->Space();
    }
    total.allocated_blocks += s.allocated_blocks;
    total.free_blocks += s.free_blocks;
    total.reserved_blocks += s.reserved_blocks;
    total.file_blocks += s.file_blocks;
  }
  return total;
}

std::uint64_t ShardedTopkEngine::BlocksInUse() const {
  std::shared_lock<std::shared_mutex> tl(topology_mu_);
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    if (snapshot_) {
      // Every replica views the same file; count each shard once.
      std::lock_guard<std::mutex> g(sh->replicas[0]->mu);
      total += sh->replicas[0]->pager->BlocksInUse();
      continue;
    }
    std::lock_guard<std::mutex> g(sh->mu);
    total += sh->pager->BlocksInUse();
  }
  return total;
}

EngineCounters ShardedTopkEngine::counters() const {
  EngineCounters c;
  c.inserts = n_inserts_.load(std::memory_order_relaxed);
  c.deletes = n_deletes_.load(std::memory_order_relaxed);
  c.queries = n_queries_.load(std::memory_order_relaxed);
  c.rejected = n_rejected_.load(std::memory_order_relaxed);
  c.batches = n_batches_.load(std::memory_order_relaxed);
  c.rebalances = n_rebalances_.load(std::memory_order_relaxed);
  c.shards_pruned = n_shards_pruned_.load(std::memory_order_relaxed);
  c.fence_checks = n_fence_checks_.load(std::memory_order_relaxed);
  c.query_waves = n_query_waves_.load(std::memory_order_relaxed);
  c.query_shard_locks = n_query_shard_locks_.load(std::memory_order_relaxed);
  return c;
}

void ShardedTopkEngine::CheckInvariants() const {
  std::unique_lock<std::shared_mutex> tl(topology_mu_);
  TOKRA_CHECK_EQ(shards_.size(), lower_bounds_.size());
  TOKRA_CHECK(lower_bounds_[0] == -kInf);
  TOKRA_CHECK(std::is_sorted(lower_bounds_.begin(), lower_bounds_.end()));

  std::lock_guard<std::mutex> rg(registry_mu_);
  std::uint64_t total = 0;
  bool skipped_failed = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = *shards_[i];
    if (!snapshot_ && !sh.pager->io_status().ok()) {
      // A failed shard has left service: after a revoked group whose
      // rollback could not complete, its live state may legitimately
      // disagree with the registry, so its checks (and the global totals
      // below) no longer apply.
      skipped_failed = true;
      continue;
    }
    const core::TopkIndex* index =
        snapshot_ ? sh.replicas[0]->index.get() : sh.index.get();
    index->CheckInvariants();
    std::uint64_t n = index->size();
    TOKRA_CHECK_EQ(n, sh.approx_size.load(std::memory_order_relaxed));
    total += n;
    if (n == 0) {
      // Fence soundness for the empty shard: it must not claim residents.
      if (sh.has_fence) sh.fence.CheckAgainst({});
      continue;
    }
    auto r = index->TopK(-kInf, kInf, n);
    TOKRA_CHECK(r.ok());
    TOKRA_CHECK_EQ(r->size(), n);
    // Fence soundness: exact count, every live point inside the fence's
    // bounds and never excludable by RangeBound/MightContain — the
    // invariant that makes pruning answer-preserving (DESIGN.md §11).
    if (sh.has_fence) sh.fence.CheckAgainst(*r);
    for (const Point& p : *r) {
      TOKRA_CHECK_EQ(ShardFor(p.x), i);  // point lives in its owning shard
      if (snapshot_) continue;  // no registry: nothing can be inserted
      auto it = by_x_.find(p.x);
      TOKRA_CHECK(it != by_x_.end());
      TOKRA_CHECK(it->second == p.score);
    }
  }
  if (!snapshot_ && !skipped_failed) {
    TOKRA_CHECK_EQ(total, by_x_.size());
    TOKRA_CHECK_EQ(by_x_.size(), scores_.size());
  }
}

}  // namespace tokra::engine
