// ShardedTopkEngine: a concurrent, range-partitioned service layer over
// independent TopkIndex shards.
//
// The key space is split into S contiguous ranges; each shard owns one range
// as a private TopkIndex on a private em::Pager (buffer pools never contend).
// Updates route to the owning shard under that shard's mutex; TopK fans out
// to the overlapping shards on a fixed thread pool and merges the per-shard
// lists with a k-bounded tournament heap (engine/merge.h, built on
// select/heap_view.h).
//
// Guarantees preserved from the paper: each shard holds n_i points of its
// subrange with the per-index bounds intact — O(n_i/B) space, O(lg_B n_i)
// amortized updates, O(lg n_i + k/B) query I/Os — so a query touching q
// shards costs O(sum_i lg n_i + k/B) I/Os spread across q independent
// devices, and the merge adds O(k + q) free CPU work (see DESIGN.md).
//
// Concurrency model:
//   * topology_mu_ (shared/unique): shard count and boundaries. All
//     operations take it shared; Rebalance takes it unique.
//   * one mutex per shard: serializes that shard's index and pager, and —
//     because x determines its shard — totally orders all operations on any
//     given x, so registry reservations are never observable half-applied.
//   * registry_mu_: the exact-membership registry (x -> score), which gives
//     the service layer safe duplicate/missing rejection that the raw
//     TopkIndex (per the paper's distinctness assumption) does not check.
// Lock order: topology -> shard -> registry; no path takes two shard
// mutexes, so the engine is deadlock-free.

#ifndef TOKRA_ENGINE_SHARDED_ENGINE_H_
#define TOKRA_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/topk_index.h"
#include "em/io_stats.h"
#include "em/pager.h"
#include "em/wal.h"
#include "engine/options.h"
#include "engine/request.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "sketch/shard_fence.h"
#include "util/point.h"
#include "util/status.h"

namespace tokra::engine {

/// One update inside a shard's logical WAL record.
struct WalOp {
  bool insert = true;  ///< false: delete
  Point p;
};

/// Serializes a group of accepted updates as ONE logical WAL record payload
/// — the engine's redo format and its replication wire format: a follower
/// reads a shard's log tail (em::WalReader), decodes each record with
/// DecodeWalOps, and applies the ops onto its snapshot copy.
std::vector<em::word_t> EncodeWalOps(std::span<const WalOp> ops);
StatusOr<std::vector<WalOp>> DecodeWalOps(std::span<const em::word_t> payload);

/// What Recover() had to do beyond reopening checkpoints.
struct RecoveryReport {
  std::uint64_t replayed_records = 0;  ///< logical WAL records re-applied
  std::uint64_t replayed_ops = 0;      ///< updates inside those records
  bool rolled_forward_rebalance = false;
};

/// Per-query observability, aggregated across the queried shards.
struct EngineQueryStats {
  std::uint32_t shards_queried = 0;      ///< shards actually probed
  std::uint64_t shard_candidates = 0;    ///< per-shard hits fed to the merge
  std::uint64_t merge_nodes_visited = 0; ///< tournament-heap visits (<= k+q)
  // Fence-guided pruning (all zero with pruning disabled; DESIGN.md §11).
  std::uint32_t shards_pruned = 0;  ///< overlapping shards proven skippable
  std::uint32_t fence_checks = 0;   ///< fence consultations for this query
  std::uint32_t waves = 0;          ///< dispatch waves the fan-out took
  em::IoStats io;                   ///< summed I/O delta of the query
};

/// Cached pointers into the engine's MetricsRegistry — one registry lookup
/// per metric at construction, then every record is a direct histogram/
/// gauge hit. All null when telemetry is disabled, which turns every
/// instrumentation site into a branch on nullptr (DESIGN.md §10 overhead
/// budget). `em` is handed to every shard's pager/pool/WAL via
/// EmOptions::metrics.
struct EngineMetricSet {
  // Query path.
  obs::Histogram* query_latency_us = nullptr;  ///< whole TopK, end to end
  obs::Histogram* stage_fanout_us = nullptr;   ///< dispatch + slowest probe
  obs::Histogram* stage_probe_us = nullptr;    ///< one per shard probe
  obs::Histogram* stage_merge_us = nullptr;    ///< k-bounded tournament merge
  obs::Histogram* stage_reply_us = nullptr;    ///< stats aggregation + return
  // Update / batch path.
  obs::Histogram* update_latency_us = nullptr;  ///< direct Insert/Delete
  obs::Histogram* batch_exec_us = nullptr;      ///< whole ExecuteBatch
  obs::Histogram* admission_wait_us = nullptr;  ///< batcher window wait
  obs::Gauge* queue_depth = nullptr;            ///< batcher pending requests
  // Maintenance.
  obs::Histogram* checkpoint_us = nullptr;  ///< whole engine Checkpoint()
  obs::Histogram* recover_us = nullptr;     ///< whole Recover()
  obs::Histogram* rebalance_us = nullptr;   ///< whole Rebalance()
  // Thread pool.
  obs::Histogram* pool_task_wait_us = nullptr;
  obs::Histogram* pool_task_run_us = nullptr;
  // Fence-guided pruning (DESIGN.md §11).
  obs::Counter* shards_pruned_total = nullptr;
  obs::Counter* fence_checks_total = nullptr;
  obs::Counter* query_waves_total = nullptr;
  // The em layer's sinks (eviction stall, WAL append/fsync, pager
  // checkpoint), pointed into the same registry.
  em::EmMetrics em;
};

/// Monotonic service counters (snapshot).
struct EngineCounters {
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t queries = 0;
  std::uint64_t rejected = 0;   ///< duplicate inserts + missing deletes
  std::uint64_t batches = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t shards_pruned = 0;  ///< fence-skipped shard probes (lifetime)
  std::uint64_t fence_checks = 0;   ///< fence consultations (lifetime)
  std::uint64_t query_waves = 0;    ///< dispatch waves across all queries
  std::uint64_t query_shard_locks = 0;  ///< shard-mutex acquisitions on the
                                        ///< query path; stays 0 while every
                                        ///< probe rides an MVCC read view —
                                        ///< the lock-free-reads assertion
};

class ShardedTopkEngine {
 public:
  /// Builds the engine over the initial point set (globally distinct x and
  /// scores, as in TopkIndex::Build). Shard boundaries are chosen so the
  /// initial points split evenly.
  static StatusOr<std::unique_ptr<ShardedTopkEngine>> Build(
      std::vector<Point> points, EngineOptions options);

  /// Reopens an engine persisted by Checkpoint(): every shard's pager is
  /// restored from its backing file (options.storage_dir), the shard
  /// boundaries come from the checkpoint roots, and the exact-membership
  /// registry is rebuilt with one O(n_i/B) scan per shard — no index
  /// rebuild. `options` must match the checkpointed topology (same
  /// num_shards, same em geometry).
  ///
  /// Under a WAL durability mode this is full point-in-time recovery: an
  /// interrupted rebalance is reconciled file-by-file (shard and log files
  /// roll forward or back together), each shard's pager undoes torn
  /// inter-checkpoint home writes back to its stamped checkpoint LSN, and
  /// the log tail past that LSN — every acknowledged update batch — is
  /// replayed through the index. A torn log tail (crash mid-append) is
  /// dropped, which is exactly the never-acknowledged suffix.
  static StatusOr<std::unique_ptr<ShardedTopkEngine>> Recover(
      EngineOptions options, RecoveryReport* report = nullptr);

  /// Read-only snapshot serving mode: maps every checkpointed shard file
  /// immutably (backend forced to kMmap read-only unless the caller picked
  /// another file backend) and serves TopK without per-shard write locks —
  /// each shard gets `snapshot_replicas` independent read handles and a
  /// query claims any free one, so N readers scale instead of serializing
  /// on one shard mutex. The zero-copy borrow path makes the OS page cache
  /// the only real cache, shared across all replicas. Updates,
  /// Checkpoint() and Rebalance() are refused (kFailedPrecondition) and
  /// the files are never written. The files must stay quiescent while the
  /// snapshot is open: the snapshot never writes, but a concurrent
  /// *writer* to the same inodes (a live engine applying updates or
  /// checkpointing in place) would mutate pages under the snapshot's
  /// borrowed pointers mid-query. Serve a checkpointed directory whose
  /// owner is idle or closed, or a copy shipped to a replica machine.
  /// Unlike Recover() it never repairs an interrupted rebalance (that
  /// would write); run Recover() first in that state.
  static StatusOr<std::unique_ptr<ShardedTopkEngine>> OpenSnapshot(
      EngineOptions options);

  /// Whether this engine is a read-only snapshot (OpenSnapshot).
  bool snapshot() const { return snapshot_; }

  /// Persists every shard: flushes dirty blocks and records each shard's
  /// index meta + lower bound + shard count + topology generation in its
  /// pager superblock. Exclusive (waits for in-flight operations);
  /// kFailedPrecondition without a storage_dir or under Durability::kNone.
  /// Recover() restores the last completed checkpoint; it is guaranteed
  /// recoverable after checkpoint-then-exit (clean shutdown) or a crash
  /// during the checkpoint itself.
  ///
  /// Under Durability::kCheckpoint, updates applied between checkpoints
  /// mutate shard blocks in place, so a crash after them can leave shards
  /// unrecoverable to the earlier checkpoint. Under the WAL modes each
  /// shard's checkpoint additionally stamps the LSN it covers into the
  /// shard superblock and truncates the log behind it (steady-state log
  /// size is bounded by one checkpoint interval), and the inter-checkpoint
  /// window is closed entirely. `covered_lsns`, when non-null, receives
  /// each shard's stamped LSN (0 without a log) — the handle a replica
  /// needs to ask for the right log tail.
  Status Checkpoint(std::vector<std::uint64_t>* covered_lsns = nullptr);

  /// Checkpoint + atomic export: runs a full Checkpoint() and then, still
  /// holding the engine exclusively, copies every shard's checkpoint file
  /// into `dest_dir` (created if needed; existing files overwritten). No
  /// update can interleave between the stamp and the copy, so the exported
  /// files are byte-for-byte the state of ONE checkpoint and
  /// `covered_lsns` are exactly the LSNs a replica resumes each shard's
  /// log tail from. The export contains shard files only (no logs): open
  /// it with Recover() under Durability::kCheckpoint or with
  /// OpenSnapshot(). Updates are blocked for the duration of the copy —
  /// the replication primary's bootstrap cost (DESIGN.md §13).
  Status ExportSnapshot(const std::string& dest_dir,
                        std::vector<std::uint64_t>* covered_lsns = nullptr);

  // All public methods below are thread-safe.

  /// Inserts p. kAlreadyExists on duplicate x or score (checked globally).
  Status Insert(const Point& p);

  /// Deletes p. kNotFound unless a point with exactly (p.x, p.score) exists.
  Status Delete(const Point& p);

  /// The k highest-scored points with x in [x1, x2], score-descending —
  /// byte-identical to a single TopkIndex over the union of the shards.
  StatusOr<std::vector<Point>> TopK(double x1, double x2, std::uint64_t k,
                                    EngineQueryStats* stats = nullptr) const;

  /// Executes a batch: updates are grouped by owning shard and applied with
  /// ONE lock acquisition per shard (shard groups run in parallel, each
  /// group in submission order); queries then run concurrently. Within a
  /// batch, every update happens-before every query. Ordering between
  /// different shards' update groups is unspecified — observable only via
  /// same-score conflicts inside one batch. out->at(i) answers batch[i].
  void ExecuteBatch(std::span<const Request> batch,
                    std::vector<Response>* out);

  /// Re-splits the key space so every shard holds ~n/S points. Exclusive:
  /// waits for in-flight operations. On a file-backed engine the new shards
  /// are built and checkpointed in side files and renamed over the live
  /// files only once complete, so the previous checkpoint stays recoverable
  /// throughout and a successful rebalance leaves the post-rebalance state
  /// checkpointed.
  Status Rebalance();

  /// Rebalance hook for skewed insert streams: rebalances iff the largest
  /// shard exceeds rebalance_skew * average and the engine holds at least
  /// rebalance_min_points. Returns whether a rebalance ran.
  bool MaybeRebalance();

  std::uint64_t size() const;
  /// Fixed at Build; reads no mutable state.
  std::uint32_t num_shards() const { return options_.num_shards; }
  std::vector<std::uint64_t> ShardSizes() const;
  /// Lower bound of each shard's key range; element 0 is -infinity.
  std::vector<double> ShardLowerBounds() const;

  /// Sum of all shards' pager counters. Rebalance replaces shard pagers, so
  /// the aggregate restarts from zero after one.
  em::IoStats AggregatedIoStats() const;
  /// Sum of all shards' Pager::Space() — file_blocks is the volume a full
  /// replication bootstrap ships.
  em::SpaceStats AggregatedSpaceStats() const;
  /// Sum of all shards' blocks in use — the paper's space metric, summed.
  std::uint64_t BlocksInUse() const;
  EngineCounters counters() const;

  /// Validates every shard's index, the shard partition, and the registry.
  /// O(n); exclusive.
  void CheckInvariants() const;

  // ---- Telemetry (null/no-op when options.telemetry.enabled is false) ----

  bool telemetry_enabled() const { return metrics_ != nullptr; }
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  obs::Tracer* tracer() const { return tracer_.get(); }
  obs::SlowQueryLog* slow_query_log() const { return slow_log_.get(); }
  /// The cached metric pointers (all null when disabled) — the batcher and
  /// benches record through these directly.
  const EngineMetricSet& metric_set() const { return mset_; }

  /// Prometheus-style text exposition of every registered metric, with the
  /// service counters and per-shard Space() gauges refreshed first. Empty
  /// when telemetry is disabled.
  std::string DumpMetrics() const;

 private:
  /// One independent read handle on a snapshot shard: its own pager (own
  /// mmap of the shared file, own pool bookkeeping) + index view. mu
  /// serializes queries on this handle only.
  struct Replica {
    std::unique_ptr<em::Pager> pager;
    std::unique_ptr<core::TopkIndex> index;
    std::mutex mu;
  };

  /// MVCC (options_.mvcc; DESIGN.md §14): one lock-free read handle inside a
  /// published ShardView — a read-only pager over a shared read view of the
  /// live shard's device, plus an index view opened on that pager. mu
  /// serializes queries on this handle only (rotation finds a free one).
  struct ReadHandle {
    std::unique_ptr<em::Pager> pager;
    std::unique_ptr<core::TopkIndex> index;
    std::mutex mu;
  };

  /// An immutable epoch of one shard, published after a per-shard checkpoint
  /// and read without the shard mutex. The pin is declared FIRST so it is
  /// released LAST: the handles' pagers read blocks the pin keeps alive
  /// (retirement waits for the oldest pin), so they must close before the
  /// pin returns those blocks to the writer's free list.
  struct ShardView {
    em::EpochPin pin;
    std::uint64_t epoch = 0;
    // Fence snapshot taken at publication: the router prunes with the
    // view's own fence so routing decisions match the data the view serves
    // (the live fence may already reflect post-epoch updates).
    sketch::ShardFence fence;
    bool has_fence = false;
    std::vector<std::unique_ptr<ReadHandle>> handles;
    mutable std::atomic<std::uint32_t> next{0};
  };

  struct Shard {
    Shard() = default;  // Recover fills pager/index from the checkpoint
    explicit Shard(const em::EmOptions& em)
        : pager(std::make_unique<em::Pager>(em)) {}
    std::unique_ptr<em::Pager> pager;
    std::unique_ptr<core::TopkIndex> index;
    mutable std::mutex mu;
    std::atomic<std::uint64_t> approx_size{0};
    // Set on every accepted update; cleared by a successful checkpoint of
    // this shard. A clean shard's checkpoint is skipped (its file already
    // holds this exact state).
    std::atomic<bool> dirty{true};
    // Snapshot mode only: pager/index above stay null and queries claim a
    // free replica instead (see TopKLocked).
    std::vector<std::unique_ptr<Replica>> replicas;
    mutable std::atomic<std::uint32_t> next_replica{0};
    // Pruning sketch (DESIGN.md §11). fence_mu lets the router read bounds
    // without taking the shard mutex (which queries in flight hold for the
    // whole probe); updates touch the fence under BOTH mu and fence_mu, so
    // a router holding only fence_mu still sees a sound fence. has_fence
    // false => the router must dispatch this shard unconditionally.
    mutable std::mutex fence_mu;
    sketch::ShardFence fence;
    bool has_fence = false;
    // Pager block chain holding the fence blob of the LAST checkpoint
    // (kNullBlock before the first); freed and rewritten by the next one.
    em::BlockId fence_root = em::kNullBlock;
    // MVCC: the currently published epoch view (null before the first
    // publication; queries then fall back to the locked probe). Declared
    // LAST so it is destroyed FIRST — its handles' pagers alias this
    // shard's device and its pin unregisters with this shard's pager, both
    // of which must still be alive.
    std::atomic<std::shared_ptr<const ShardView>> view;
  };

  explicit ShardedTopkEngine(EngineOptions options);

  /// Creates the registry/tracer/slow-query log, registers every metric,
  /// and wires options_.em.metrics + the pool's sinks. Called from the
  /// constructor only; no-op when telemetry is disabled.
  void InitTelemetry();

  /// Index of the shard owning x. Caller holds topology_mu_.
  std::size_t ShardFor(double x) const;

  /// Validate-against-registry + apply + finalize for one update. Caller
  /// holds topology_mu_ shared and sh.mu (which excludes every other
  /// operation on this point's x). With a WAL, an accepted op is appended
  /// to `group` when non-null (the batch path's group commit — the caller
  /// logs once per shard group) and logged immediately otherwise.
  Status InsertLocked(Shard& sh, const Point& p, std::vector<WalOp>* group);
  Status DeleteLocked(Shard& sh, const Point& p, std::vector<WalOp>* group);

  /// Appends `ops` as one logical record to sh's log and runs the group-
  /// commit barrier. Caller holds sh.mu. No-op when empty or WAL-less.
  /// Non-OK (the log's sticky error) means the record's durability is
  /// unknown: the caller must NOT acknowledge the group — revoke the
  /// applied ops with RollbackShardOps and hand the status back.
  Status LogShardOps(Shard& sh, std::span<const WalOp> ops);

  /// Reverts `ops` (already applied to sh's index, fence, registry, and
  /// counters) in reverse order, returning the live state to exactly the
  /// acknowledged prefix after a failed group commit. Caller holds sh.mu.
  /// If an inverse apply itself fails the shard's home device is poisoned
  /// (the shard leaves service; the on-disk checkpoint + logged prefix
  /// remain the recovery truth).
  void RollbackShardOps(Shard& sh, std::span<const WalOp> ops);

  /// Sticky health gate for accepting updates on sh: the home device's
  /// first error (shard failed outright), else the log's (shard read-only:
  /// reads still serve, but no new update can be made durable). Caller
  /// holds sh.mu.
  Status ShardUpdateStatus(const Shard& sh) const;

  /// Folds one ACCEPTED update into sh's fence (no-op when the shard has no
  /// fence). Caller holds sh.mu; takes sh.fence_mu internally so routers
  /// reading bounds under fence_mu alone always see a sound fence.
  void FenceApply(Shard& sh, bool insert, const Point& p) const;

  /// Non-OK when a WAL mode must stop accepting updates because a failed
  /// rebalance commit left the disk ahead of the in-memory topology (see
  /// storage_failed_): logging against the superseded topology would
  /// poison the roll-forward recovery. Caller holds topology_mu_ (any
  /// mode — storage_failed_ writes hold it exclusively).
  Status RefuseWalAfterStorageFailureLocked() const;

  /// (Re)creates shards and boundaries from `points`. Caller holds
  /// topology_mu_ exclusively (or is Build, pre-publication). When file-
  /// backed shards already exist, the replacements are built into
  /// `<path>.rebuild` side files, checkpointed, and renamed into place only
  /// after every shard succeeded, so the previous checkpoint is never
  /// destroyed by a failed or interrupted rebuild.
  Status BuildShardsLocked(std::vector<Point> points);

  /// Fan-out + merge. Caller holds topology_mu_ shared. `parallel` uses the
  /// pool; batch query tasks pass false (they already run on the pool).
  StatusOr<std::vector<Point>> TopKLocked(double x1, double x2,
                                          std::uint64_t k,
                                          EngineQueryStats* stats,
                                          bool parallel) const;

  Status RebalanceLocked();
  bool SkewedLocked() const;

  /// Checkpoint body. Caller holds topology_mu_ exclusively.
  Status CheckpointLocked(std::vector<std::uint64_t>* covered_lsns);

  /// Checkpoints shard `i` (fence chain rewrite + pager Checkpoint with the
  /// engine roots) if dirty; the single checkpoint implementation shared by
  /// CheckpointLocked and PublishShardLocked. Caller holds sh.mu (or has
  /// exclusive ownership of the shard). `covered_lsn`, when non-null,
  /// receives the stamped WAL LSN (0 without a log).
  Status CheckpointShardLocked(std::size_t i, Shard& sh,
                               std::uint64_t* covered_lsn);

  /// MVCC: checkpoints shard `i` if dirty and publishes a fresh epoch view
  /// (pin + read handles over a shared device read view). No-op unless
  /// options_.mvcc on a live (non-snapshot) engine. Caller holds sh.mu.
  /// Failures leave the previous view in place — readers just keep serving
  /// the older epoch.
  void PublishShardLocked(std::size_t i, Shard& sh);

  EngineOptions options_;
  // Telemetry sits directly after options_ so it is destroyed LAST: shard
  // pagers/pools/WALs and the thread pool all hold raw pointers into the
  // registry (via EmOptions::metrics / SetMetrics) and may record during
  // their own destruction.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  EngineMetricSet mset_;

  bool snapshot_ = false;  // read-only serving mode (OpenSnapshot)
  mutable std::shared_mutex topology_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<double> lower_bounds_;  // lower_bounds_[0] == -inf
  // Topology generation, checkpointed as root 3 of every shard. Bumped at
  // the START of every rebuild attempt and handed back only when a clean
  // abort removed every side file, so an on-disk artifact of a failed
  // attempt can never carry the same generation as a later checkpoint;
  // Recover() uses the agreement of live-file generations to distinguish a
  // committed rebalance from an interrupted one.
  std::uint64_t generation_ = 0;
  // Set when a rebalance commit failed partway through its renames: the
  // disk then mixes topology generations and only Recover() (fresh process,
  // roll-forward) can reconcile it, so Checkpoint() and further rebalances
  // refuse instead of acknowledging durability they cannot deliver.
  // Guarded by topology_mu_ (exclusive).
  bool storage_failed_ = false;

  mutable std::mutex registry_mu_;
  std::unordered_map<double, double> by_x_;  // x -> score, exact membership
  std::unordered_set<double> scores_;

  mutable ThreadPool pool_;

  mutable std::atomic<std::uint64_t> n_inserts_{0}, n_deletes_{0},
      n_queries_{0}, n_rejected_{0}, n_batches_{0}, n_rebalances_{0};
  mutable std::atomic<std::uint64_t> n_shards_pruned_{0}, n_fence_checks_{0},
      n_query_waves_{0};
  // Shard-mutex acquisitions by the query path. Non-MVCC engines count
  // every probe here; MVCC engines count only locked fallbacks, so a test
  // can assert 0 to prove every probe rode a published view.
  mutable std::atomic<std::uint64_t> n_query_shard_locks_{0};
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_SHARDED_ENGINE_H_
