// Unit tests for the external-memory substrate: device, pool, pager, arrays.

#include <gtest/gtest.h>

#include "em/block_device.h"
#include "em/buffer_pool.h"
#include "em/paged_array.h"
#include "em/pager.h"

namespace tokra::em {
namespace {

TEST(BlockDeviceTest, RoundTripCountsIos) {
  BlockDevice dev(8);
  std::vector<word_t> buf(8, 0);
  for (int i = 0; i < 8; ++i) buf[i] = 100 + i;
  dev.Write(3, buf.data());
  EXPECT_EQ(dev.writes(), 1u);
  EXPECT_EQ(dev.NumBlocks(), 4u);

  std::vector<word_t> got(8, 0);
  dev.Read(3, got.data());
  EXPECT_EQ(dev.reads(), 1u);
  EXPECT_EQ(got, buf);
}

TEST(BufferPoolTest, HitsAreFree) {
  BlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 4);
  std::uint32_t fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.Unpin(fr, false);
  EXPECT_EQ(dev.reads(), 1u);
  // Re-pin: served from cache.
  fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.Unpin(fr, false);
  EXPECT_EQ(dev.reads(), 1u);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST(BufferPoolTest, LruEvictionWritesBackDirty) {
  BlockDevice dev(8);
  dev.EnsureCapacity(10);
  BufferPool pool(&dev, 2);
  // Dirty block 0.
  std::uint32_t fr = pool.Pin(0, BufferPool::PinMode::kRead);
  pool.FrameData(fr)[0] = 77;
  pool.Unpin(fr, true);
  // Fill the pool: 1, then 2 evicts LRU (block 0) and writes it back.
  pool.Unpin(pool.Pin(1, BufferPool::PinMode::kRead), false);
  pool.Unpin(pool.Pin(2, BufferPool::PinMode::kRead), false);
  EXPECT_EQ(dev.writes(), 1u);
  // Re-reading block 0 sees the written value.
  fr = pool.Pin(0, BufferPool::PinMode::kRead);
  EXPECT_EQ(pool.FrameData(fr)[0], 77u);
  pool.Unpin(fr, false);
}

TEST(BufferPoolTest, CreateModeSkipsRead) {
  BlockDevice dev(8);
  dev.EnsureCapacity(4);
  BufferPool pool(&dev, 2);
  std::uint32_t fr = pool.Pin(1, BufferPool::PinMode::kCreate);
  EXPECT_EQ(dev.reads(), 0u);
  EXPECT_EQ(pool.FrameData(fr)[3], 0u);  // zero-filled
  pool.Unpin(fr, true);
}

TEST(PagerTest, AllocateFreeReuse) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  BlockId a = pager.Allocate();
  BlockId b = pager.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pager.BlocksInUse(), 2u);
  pager.Free(a);
  EXPECT_EQ(pager.BlocksInUse(), 1u);
  BlockId c = pager.Allocate();
  EXPECT_EQ(c, a);  // free list reuse
}

TEST(PagerTest, PageRefPersistsThroughEviction) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  std::vector<BlockId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(pager.Allocate());
  for (int i = 0; i < 32; ++i) {
    PageRef p = pager.Create(ids[i]);
    p.Set(0, 1000 + i);
    p.SetDouble(1, i * 0.5);
  }
  pager.DropCache();
  for (int i = 0; i < 32; ++i) {
    PageRef p = pager.Fetch(ids[i]);
    EXPECT_EQ(p.Get(0), 1000u + i);
    EXPECT_EQ(p.GetDouble(1), i * 0.5);
  }
}

TEST(PagerTest, ColdFetchCostsExactlyOneRead) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  BlockId id = pager.Allocate();
  { PageRef p = pager.Create(id); p.Set(0, 9); }
  pager.DropCache();
  IoStats before = pager.stats();
  { PageRef p = pager.Fetch(id); EXPECT_EQ(p.Get(0), 9u); }
  IoStats delta = pager.stats() - before;
  EXPECT_EQ(delta.reads, 1u);
  EXPECT_EQ(delta.writes, 0u);
}

TEST(PagerTest, MovedPageRefDoesNotDoubleUnpin) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  BlockId id = pager.Allocate();
  PageRef a = pager.Create(id);
  PageRef b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move) intentional
  EXPECT_TRUE(b.valid());
  b.Set(0, 5);
}

struct Rec {
  std::uint64_t id;
  double val;
};

TEST(PagedArrayTest, GetSetAcrossBlocks) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 4});
  // 16-word blocks, 2-word records -> 8 per block; 20 records -> 3 blocks.
  auto blocks = PagedArray<Rec>::AllocateBlocks(&pager, 20);
  EXPECT_EQ(blocks.size(), 3u);
  PagedArray<Rec> arr(&pager, blocks);
  EXPECT_GE(arr.capacity(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    arr.Set(i, Rec{i, i * 1.5});
  }
  for (std::uint32_t i = 0; i < 20; ++i) {
    Rec r = arr.Get(i);
    EXPECT_EQ(r.id, i);
    EXPECT_EQ(r.val, i * 1.5);
  }
}

TEST(PagedArrayTest, RangeIoTouchesEachBlockOnce) {
  Pager pager(EmOptions{.block_words = 16, .pool_frames = 8});
  auto blocks = PagedArray<Rec>::AllocateBlocks(&pager, 64);  // 8 blocks
  PagedArray<Rec> arr(&pager, blocks);
  std::vector<Rec> vals;
  for (std::uint32_t i = 0; i < 64; ++i) vals.push_back(Rec{i, 0.25 * i});
  arr.WriteRange(0, vals);
  pager.DropCache();
  IoStats before = pager.stats();
  std::vector<Rec> out;
  arr.ReadRange(0, 64, &out);
  IoStats delta = pager.stats() - before;
  EXPECT_EQ(delta.reads, 8u);  // one per block, not one per element
  ASSERT_EQ(out.size(), 64u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i].id, i);
    EXPECT_EQ(out[i].val, 0.25 * i);
  }
}

TEST(IoStatsTest, DeltaArithmetic) {
  IoStats a{.reads = 10, .writes = 5, .pool_hits = 3, .pool_misses = 7,
            .evictions = 2};
  IoStats b{.reads = 4, .writes = 1, .pool_hits = 1, .pool_misses = 2,
            .evictions = 0};
  IoStats d = a - b;
  EXPECT_EQ(d.reads, 6u);
  EXPECT_EQ(d.writes, 4u);
  EXPECT_EQ(d.TotalIos(), 10u);
}

}  // namespace
}  // namespace tokra::em
