// Write-ahead log: an append-only, CRC-framed, LSN-stamped segment file.
//
// The log closes the durability window between pager checkpoints. Two kinds
// of records share one per-shard log (and one LSN sequence):
//
//   * kPreImage — the pager's undo protection: before the first overwrite
//     of a checkpoint-live home block in a checkpoint interval, the block's
//     checkpoint-time content is appended here. Recovery applies pre-images
//     newest-first, which rolls the home file back to the exact state of
//     the last completed checkpoint regardless of where a crash landed —
//     including mid-checkpoint, because the checkpoint's own flush logs
//     pre-images before it propagates and commits by superblock write.
//   * kLogical — the client's redo records (the engine logs one per
//     accepted update batch: the group commit). Recovery replays those with
//     LSN greater than the checkpoint-covered LSN onto the restored
//     checkpoint, reconstructing every acknowledged update.
//
// Frames are block-aligned: a record occupies whole log blocks, written as
// one SubmitWrites batch (one vectored submission on backends that overlap
// transfers), optionally followed by one fsync — group commit is one append
// plus one barrier no matter how many updates the batch carried. A torn
// tail (crash mid-append, byte flip) is detected by magic/CRC/LSN checks at
// open: the valid prefix is kept and the tail is dropped, which is exactly
// the unacknowledged suffix.
//
// Truncation: Checkpoint() stamps the covered LSN into the pager superblock
// and calls Truncate(lsn). Records at or below the stamp are inert (both
// recovery passes ignore them), so truncation is logical until the segment
// outgrows EmOptions::wal_rotate_blocks, at which point the log rotates to
// a fresh segment file (write header, fsync if durable, rename over the old
// segment) — steady-state log size is bounded by one checkpoint interval.

#ifndef TOKRA_EM_WAL_H_
#define TOKRA_EM_WAL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "em/block_device.h"
#include "em/options.h"
#include "util/status.h"

namespace tokra::em {

class WriteAheadLog {
 public:
  struct Options {
    std::string path;
    std::uint32_t block_words = 256;
    /// Every Sync() is a real fsync (power-loss durability). Off, appends
    /// ride the OS page cache: they survive SIGKILL but not power loss.
    bool fsync = false;
    /// Segment rotation threshold for Truncate(), in log blocks.
    std::uint32_t rotate_blocks = 1024;
    /// Scan an existing log without creating, truncating, or repairing it
    /// (the WalReader mode; Append/Truncate are refused).
    bool read_only = false;
    /// Optional latency sinks (null = no timing, no clock reads). Must
    /// outlive the log.
    obs::Histogram* append_us = nullptr;
    obs::Histogram* fsync_us = nullptr;
    /// Test hook: wrap the log's device (and every rotated successor) in a
    /// FaultInjectingBlockDevice consulting this injector. Non-owning;
    /// null adds no wrapper. Plumbed from EmOptions::fault by the pager.
    FaultInjector* fault = nullptr;
    /// Scan-resume hint for live-tail pollers (em::WalTailFollower): when
    /// the opened segment's base LSN equals hint_base_lsn and hint_block is
    /// at least 1, the frame scan starts at hint_block expecting hint_lsn
    /// instead of walking from block 1 — a poll of a growing log costs
    /// O(new frames), not O(file). Records below hint_lsn are then absent
    /// from records(), so only consumers that already hold them may hint.
    /// A base mismatch (the segment rotated) ignores the hint entirely.
    std::uint64_t hint_base_lsn = 0;
    std::uint64_t hint_lsn = 0;
    BlockId hint_block = 0;
  };

  enum class RecordType : std::uint32_t {
    kPreImage = 1,  ///< payload: [home block id][block_words words of image]
    kLogical = 2,   ///< payload: client-defined redo record
  };

  /// Directory entry of one valid record (payload read on demand).
  struct Record {
    std::uint64_t lsn = 0;
    RecordType type = RecordType::kLogical;
    BlockId first_block = 0;  ///< log block where the frame starts
    std::uint32_t payload_words = 0;
  };

  /// Opens (creating if needed, unless read_only) the segment at
  /// `options.path`, scans it, and drops any torn tail. A leftover
  /// `<path>.rotate` side file from a crashed rotation is removed (kept in
  /// read-only mode).
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(Options options);

  /// Appends one record, returning its LSN. One SubmitWrites batch of
  /// ceil((header + payload) / block_words) log blocks; durability follows
  /// Sync().
  std::uint64_t Append(RecordType type, std::span<const word_t> payload);

  /// Group-commit barrier: one fsync when Options::fsync, else a no-op
  /// (page-cache durability). Call once per appended group.
  void Sync();

  /// Declares every record with lsn <= upto obsolete. Rotates to a fresh
  /// segment once the file exceeds rotate_blocks; otherwise drops the
  /// directory entries and keeps appending to the same file.
  Status Truncate(std::uint64_t upto);

  /// Restarts the log as an empty segment whose next Append returns
  /// `next`. For when an attached checkpoint's stamp is AHEAD of this
  /// log's head (a shipped snapshot without its log, a log recreated
  /// out-of-band): everything the log could currently hold is at or below
  /// the stamp — inert — while fresh appends would reuse stamped LSNs and
  /// be silently ignored by the next recovery. Committed atomically via
  /// the rotation side-file rename.
  Status AdvanceTo(std::uint64_t next);

  /// Reads a record's payload words.
  Status ReadPayload(const Record& rec, std::vector<word_t>* out) const;

  /// Valid records in LSN order (survivors of the last Truncate).
  const std::vector<Record>& records() const { return records_; }

  /// LSN of the last appended record; base_lsn()-1 when the log is empty.
  std::uint64_t head_lsn() const { return head_lsn_; }
  /// First LSN this segment may contain.
  std::uint64_t base_lsn() const { return base_lsn_; }

  std::uint64_t appends() const { return appends_; }
  std::uint64_t fsyncs() const { return retired_syncs_ + device_->syncs(); }
  /// Current segment size in log blocks (header block included).
  std::uint64_t file_blocks() const { return device_->NumBlocks(); }
  /// Log block where the next frame would start — together with head_lsn()
  /// and base_lsn(), the scan-resume hint a poller feeds its next Open.
  BlockId tail_block() const { return tail_block_; }

  /// The log device's sticky health (see BlockDevice::io_status). Callers
  /// check this after their group's Append + Sync: a non-OK status means
  /// the group may not be durable and MUST NOT be acknowledged.
  Status io_status() const { return device_->io_status(); }
  std::uint64_t io_errors() const { return device_->io_errors(); }
  std::uint64_t injected_faults() const { return device_->injected_faults(); }

  const std::string& path() const { return options_.path; }
  std::uint32_t block_words() const { return options_.block_words; }

 private:
  explicit WriteAheadLog(Options options) : options_(std::move(options)) {}

  Status LoadOrFormat();
  void WriteSegmentHeader();
  /// Scans frames from block 1, filling records_; stops at the first
  /// invalid frame (torn tail) and positions the append cursor there.
  void ScanFrames();
  /// Replaces the segment with a fresh one at `new_base` via the
  /// side-file + rename commit. Requires every current record obsolete.
  Status Rotate(std::uint64_t new_base);

  Options options_;
  std::unique_ptr<BlockDevice> device_;
  std::vector<Record> records_;
  std::uint64_t base_lsn_ = 1;
  std::uint64_t head_lsn_ = 0;   // base_lsn_ - 1 when empty
  BlockId tail_block_ = 1;       // next frame starts here
  std::uint64_t truncated_lsn_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t retired_syncs_ = 0;  // barriers issued by rotated-away fds
  std::vector<word_t> scratch_;  // frame assembly buffer
};

/// Read-only iteration over a log's valid records — the replication seam: a
/// follower opens the shard's log, seeks past the LSN its snapshot covers,
/// and applies the remaining kLogical records. Never writes, repairs, or
/// rotates; the underlying segment must stay quiescent while reading.
class WalReader {
 public:
  static StatusOr<std::unique_ptr<WalReader>> Open(std::string path,
                                                   std::uint32_t block_words);

  /// Open with full options (read_only is forced on) — the scan-resume
  /// hint path used by WalTailFollower for O(new data) polls.
  static StatusOr<std::unique_ptr<WalReader>> Open(
      WriteAheadLog::Options options);

  /// Positions the iterator at the first record with lsn > after.
  void Seek(std::uint64_t after);

  /// Advances to the next record; false at end. `payload` receives the
  /// record's words.
  bool Next(WriteAheadLog::Record* rec, std::vector<word_t>* payload);

  std::uint64_t head_lsn() const { return log_->head_lsn(); }
  std::uint64_t base_lsn() const { return log_->base_lsn(); }
  BlockId tail_block() const { return log_->tail_block(); }
  const std::vector<WriteAheadLog::Record>& records() const {
    return log_->records();
  }

 private:
  explicit WalReader(std::unique_ptr<WriteAheadLog> log)
      : log_(std::move(log)) {}

  std::unique_ptr<WriteAheadLog> log_;
  std::size_t pos_ = 0;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_WAL_H_
