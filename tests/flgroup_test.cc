// Tests for the (f,l)-group structure (Lemma 6) and prefix sets (Lemma 8).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "em/pager.h"
#include "flgroup/fl_group.h"
#include "flgroup/prefix_set.h"
#include "util/random.h"

namespace tokra::flgroup {
namespace {

em::EmOptions Opts(std::uint32_t bw = 64) {
  return em::EmOptions{.block_words = bw, .pool_frames = 16};
}

TEST(PrefixSetTest, CapFormula) {
  // sqrt(64) = 8; lg_64(fl) for fl <= 64 is 1.
  EXPECT_EQ(PrefixSet::PrefixCap(64, 64), 8u);
  EXPECT_EQ(PrefixSet::PrefixCap(64, 65), 16u);
  EXPECT_EQ(PrefixSet::PrefixCap(1024, 1024), 32u);
}

TEST(PrefixSetTest, InsertShiftsRanks) {
  PrefixSet p(2, 4);
  // Set 0 gets values with global ranks 1,2 (in insertion order the ranks
  // are maintained by the caller; we hand-drive the protocol here).
  p.ApplyInsert(0, 1, 1);  // first element: g=1, r=1
  p.ApplyInsert(0, 1, 1);  // new global max: shifts the old one to g=2
  EXPECT_EQ(p.global_rank(0, 1), 1u);
  EXPECT_EQ(p.global_rank(0, 2), 2u);
  p.ApplyInsert(1, 2, 1);  // into set 1, between the two
  EXPECT_EQ(p.global_rank(0, 1), 1u);
  EXPECT_EQ(p.global_rank(1, 1), 2u);
  EXPECT_EQ(p.global_rank(0, 2), 3u);
  p.CheckWellFormed();
}

TEST(PrefixSetTest, DeleteSignalsBackfillOnlyWhenPrefixOverflows) {
  PrefixSet p(1, 2);  // tiny prefix: 2 slots
  p.ApplyInsert(0, 1, 1);
  p.ApplyInsert(0, 2, 2);
  EXPECT_FALSE(p.ApplyDelete(0, 2, 2));  // |G| was 2 <= p_cap: no backfill
  p.ApplyInsert(0, 2, 2);
  p.ApplyInsert(0, 3, 3);  // |G|=3 > p_cap
  EXPECT_TRUE(p.ApplyDelete(0, 1, 1));   // prefix member removed: backfill
  p.SetSlot(0, 2, 2);
  p.CheckWellFormed();
}

TEST(PrefixSetTest, SerializeRoundTrip) {
  PrefixSet p(3, 5);
  p.ApplyInsert(1, 1, 1);
  p.ApplyInsert(1, 2, 2);
  std::vector<em::word_t> buf(p.WordCount());
  p.Serialize(buf);
  PrefixSet q = PrefixSet::Deserialize(3, 5, buf);
  EXPECT_EQ(q.set_size(1), 2u);
  EXPECT_EQ(q.global_rank(1, 2), 2u);
}

// ---------------------------------------------------------------------
// FlGroup end-to-end property tests against a reference model.
// ---------------------------------------------------------------------

class GroupModel {
 public:
  explicit GroupModel(std::uint32_t f) : sets_(f) {}
  void Insert(std::uint32_t i, double v) { sets_[i].insert(v); }
  void Delete(std::uint32_t i, double v) { sets_[i].erase(v); }
  std::uint64_t UnionRank(std::uint32_t a1, std::uint32_t a2,
                          double v) const {
    std::uint64_t r = 0;
    for (std::uint32_t i = a1; i <= a2; ++i) {
      for (double e : sets_[i]) {
        if (e >= v) ++r;
      }
    }
    return r;
  }
  std::uint64_t SizeInRange(std::uint32_t a1, std::uint32_t a2) const {
    std::uint64_t t = 0;
    for (std::uint32_t i = a1; i <= a2; ++i) t += sets_[i].size();
    return t;
  }
  double MaxInRange(std::uint32_t a1, std::uint32_t a2) const {
    double m = -1e300;
    for (std::uint32_t i = a1; i <= a2; ++i) {
      if (!sets_[i].empty()) m = std::max(m, *sets_[i].rbegin());
    }
    return m;
  }
  const std::set<double>& set(std::uint32_t i) const { return sets_[i]; }

 private:
  std::vector<std::set<double>> sets_;
};

TEST(FlGroupTest, CreateEmptyAndDestroy) {
  em::Pager pager(Opts());
  std::uint64_t base = pager.BlocksInUse();
  FlGroup fg = FlGroup::Create(&pager, {.f = 4, .l = 32});
  EXPECT_EQ(fg.SetSize(0), 0u);
  EXPECT_EQ(fg.SizeInRange(0, 3), 0u);
  EXPECT_FALSE(fg.MaxInRange(0, 3).ok());
  fg.CheckInvariants();
  fg.DestroyAll();
  EXPECT_EQ(pager.BlocksInUse(), base);
}

TEST(FlGroupTest, RejectsBadArguments) {
  em::Pager pager(Opts());
  FlGroup fg = FlGroup::Create(&pager, {.f = 2, .l = 4});
  EXPECT_EQ(fg.Insert(5, 1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fg.Delete(0, 1.0).code(), StatusCode::kNotFound);
  ASSERT_TRUE(fg.Insert(0, 1.0).ok());
  ASSERT_TRUE(fg.Insert(0, 2.0).ok());
  ASSERT_TRUE(fg.Insert(0, 3.0).ok());
  ASSERT_TRUE(fg.Insert(0, 4.0).ok());
  EXPECT_EQ(fg.Insert(0, 5.0).code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(fg.SelectApprox(0, 0, 0).ok());
  EXPECT_EQ(fg.SelectApprox(0, 1, 100).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FlGroupTest, ReopenFromMetaBlock) {
  em::Pager pager(Opts());
  em::BlockId meta;
  {
    FlGroup fg = FlGroup::Create(&pager, {.f = 2, .l = 16});
    ASSERT_TRUE(fg.Insert(0, 1.5).ok());
    ASSERT_TRUE(fg.Insert(1, 2.5).ok());
    meta = fg.meta_block();
  }
  pager.DropCache();
  FlGroup fg = FlGroup::Open(&pager, meta);
  EXPECT_EQ(fg.f(), 2u);
  EXPECT_EQ(fg.l(), 16u);
  EXPECT_EQ(fg.SetSize(0), 1u);
  EXPECT_EQ(fg.SetSize(1), 1u);
  auto max = fg.MaxInRange(0, 1);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(*max, 2.5);
  fg.CheckInvariants();
}

struct FlCase {
  std::uint32_t f;
  std::uint32_t l;
  std::uint32_t block_words;
  int ops;
  std::uint64_t seed;
};

class FlGroupPropertyTest : public ::testing::TestWithParam<FlCase> {};

TEST_P(FlGroupPropertyTest, RandomOpsAgainstModel) {
  const auto& c = GetParam();
  em::Pager pager(Opts(c.block_words));
  FlGroup fg = FlGroup::Create(&pager, {.f = c.f, .l = c.l});
  GroupModel model(c.f);
  Rng rng(c.seed);
  std::vector<std::pair<std::uint32_t, double>> live;
  std::set<double> used;

  for (int op = 0; op < c.ops; ++op) {
    bool do_insert = live.empty() || rng.Bernoulli(0.7);
    if (do_insert) {
      std::uint32_t i = static_cast<std::uint32_t>(rng.Uniform(c.f));
      if (model.set(i).size() >= c.l) continue;
      double v;
      do {
        v = rng.UniformDouble(0, 1000);
      } while (!used.insert(v).second);
      ASSERT_TRUE(fg.Insert(i, v).ok());
      model.Insert(i, v);
      live.emplace_back(i, v);
    } else {
      std::size_t pick = rng.Uniform(live.size());
      auto [i, v] = live[pick];
      live.erase(live.begin() + pick);
      ASSERT_TRUE(fg.Delete(i, v).ok());
      model.Delete(i, v);
    }
    if (op % 50 == 0) fg.CheckInvariants();
  }
  fg.CheckInvariants();

  // Query sweep: approximation factor and max.
  for (int probe = 0; probe < 80; ++probe) {
    std::uint32_t a1 = static_cast<std::uint32_t>(rng.Uniform(c.f));
    std::uint32_t a2 = a1 + static_cast<std::uint32_t>(rng.Uniform(c.f - a1));
    std::uint64_t total = fg.SizeInRange(a1, a2);
    EXPECT_EQ(total, model.SizeInRange(a1, a2));
    if (total == 0) continue;
    auto max = fg.MaxInRange(a1, a2);
    ASSERT_TRUE(max.ok());
    EXPECT_EQ(*max, model.MaxInRange(a1, a2));

    std::uint64_t k = 1 + rng.Uniform(total);
    auto res = fg.SelectApprox(a1, a2, k);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    std::uint64_t rank = res->neg_inf ? total
                                      : model.UnionRank(a1, a2, res->value);
    EXPECT_GE(rank, k);
    EXPECT_LT(rank, FlGroup::kApproxFactor * k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlGroupPropertyTest,
    ::testing::Values(FlCase{1, 64, 64, 300, 1}, FlCase{4, 32, 64, 500, 2},
                      FlCase{8, 64, 128, 800, 3},
                      FlCase{16, 128, 256, 1200, 4},
                      FlCase{5, 333, 128, 900, 5},
                      FlCase{32, 64, 1024, 1500, 6}),
    [](const ::testing::TestParamInfo<FlCase>& info) {
      return "f" + std::to_string(info.param.f) + "l" +
             std::to_string(info.param.l) + "B" +
             std::to_string(info.param.block_words);
    });

TEST(FlGroupTest, UpdateAndQueryCostLogarithmic) {
  // O(lg_B(fl)) I/Os per op: with B=256 and fl = 16*256 = 4096 the bound is
  // lg_256(4096) = 2 tree levels; ops should touch a small constant number
  // of blocks. We assert a generous fixed budget that would be violated by
  // any linear-cost implementation.
  em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 16});
  FlGroup fg = FlGroup::Create(&pager, {.f = 16, .l = 256});
  Rng rng(77);
  std::set<double> used;
  std::vector<std::pair<std::uint32_t, double>> live;
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t s = static_cast<std::uint32_t>(rng.Uniform(16));
    double v;
    do {
      v = rng.UniformDouble(0, 1);
    } while (!used.insert(v).second);
    if (fg.Insert(s, v).ok()) live.emplace_back(s, v);
  }
  std::uint64_t worst_q = 0;
  for (int probe = 0; probe < 30; ++probe) {
    pager.DropCache();
    em::IoStats before = pager.stats();
    auto res = fg.SelectApprox(0, 15, 1 + rng.Uniform(1000));
    ASSERT_TRUE(res.ok());
    worst_q = std::max(worst_q, (pager.stats() - before).TotalIos());
  }
  EXPECT_LE(worst_q, 12u);  // O(1) sketch blocks + O(lg_B fl) tree I/Os

  std::uint64_t total_u = 0;
  int n_u = 200;
  for (int i = 0; i < n_u; ++i) {
    auto [s, v] = live[rng.Uniform(live.size())];
    pager.DropCache();
    em::IoStats before = pager.stats();
    if (i % 2 == 0) {
      ASSERT_TRUE(fg.Delete(s, v).ok());
      total_u += (pager.stats() - before).TotalIos();
      pager.DropCache();
      before = pager.stats();
      ASSERT_TRUE(fg.Insert(s, v).ok());
      total_u += (pager.stats() - before).TotalIos();
    }
  }
  // Amortized per-op I/Os stay small and constant-bounded for these params.
  EXPECT_LE(total_u / n_u, 40u);
}

}  // namespace
}  // namespace tokra::flgroup
