// Construction, rebalancing (Section 2 "Rebalancing"), and validation of the
// pilot PST.

#include <algorithm>
#include <limits>

#include "em/paged_array.h"
#include "pilot/pilot_pst.h"
#include "util/bits.h"
#include "util/check.h"

namespace tokra::pilot {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ChildSpec {
  em::BlockId id;
  double lo, hi;
  std::uint64_t weight;
};

}  // namespace

// --- node constructors ------------------------------------------------

em::BlockId PilotPst::NewLeaf(em::BlockId parent, std::uint64_t parent_slab,
                              const std::vector<double>& xs) {
  std::uint32_t b = leaf_cap();
  std::uint32_t nx = static_cast<std::uint32_t>(
      em::PagedArray<double>::BlocksFor(B(), b + 2));
  TOKRA_CHECK(kHLeafXIds + nx <= B());
  em::BlockId id = pager_->Allocate();
  em::PageRef h = pager_->Create(id);
  h.Set(kHKind, 1);
  h.Set(kHLevel, 0);
  h.Set(kHWeight, xs.size());
  h.Set(kHParent, parent);
  h.Set(kHParentSlab, parent_slab);
  h.Set(kHLeafM, xs.size());
  h.Set(kHLeafNX, nx);
  std::vector<em::BlockId> xb(nx);
  for (std::uint32_t i = 0; i < nx; ++i) {
    xb[i] = pager_->Allocate();
    h.Set(kHLeafXIds + i, xb[i]);
    em::PageRef zero = pager_->Create(xb[i]);
  }
  h = em::PageRef();
  if (!xs.empty()) {
    em::PagedArray<double> arr(pager_, xb);
    arr.WriteRange(0, xs);
  }
  return id;
}

em::BlockId PilotPst::NewInternal(em::BlockId parent,
                                  std::uint64_t parent_slab,
                                  std::uint32_t level,
                                  const std::vector<em::BlockId>& children,
                                  const std::vector<double>& lo,
                                  const std::vector<double>& hi,
                                  const std::vector<std::uint64_t>& weights) {
  std::uint32_t f = static_cast<std::uint32_t>(children.size());
  TOKRA_CHECK(f >= 1);
  std::uint32_t cap = 4 * branch() + 4;
  TOKRA_CHECK(2 * f - 1 <= cap);
  std::uint32_t ntb = static_cast<std::uint32_t>(
      em::PagedArray<TNodeRec>::BlocksFor(B(), cap));
  TOKRA_CHECK(kHIntTIds + ntb <= B());

  em::BlockId id = pager_->Allocate();
  std::vector<em::BlockId> tb(ntb);
  {
    em::PageRef h = pager_->Create(id);
    h.Set(kHKind, 0);
    h.Set(kHLevel, level);
    std::uint64_t w = 0;
    for (std::uint64_t cw : weights) w += cw;
    h.Set(kHWeight, w);
    h.Set(kHParent, parent);
    h.Set(kHParentSlab, parent_slab);
    h.Set(kHIntF, f);
    h.Set(kHIntNT, 2 * f - 1);
    h.Set(kHIntCap, cap);
    h.Set(kHIntNTB, ntb);
    for (std::uint32_t i = 0; i < ntb; ++i) {
      tb[i] = pager_->Allocate();
      h.Set(kHIntTIds + i, tb[i]);
      em::PageRef zero = pager_->Create(tb[i]);
    }
  }

  // Build the secondary binary tree T(u): slab records at [0, f), internal
  // records appended after; balanced by midpoint splits.
  std::vector<TNodeRec> recs(2 * f - 1);
  for (std::uint32_t i = 0; i < f; ++i) {
    recs[i].base_child = children[i];
    recs[i].set_lo_x(lo[i]);
    recs[i].set_hi_x(hi[i]);
  }
  std::uint32_t next = f;
  // Recursive lambda: builds over child range [i, j), returns tnode index.
  auto build = [&](auto&& self, std::uint32_t i, std::uint32_t j) -> TIndex {
    if (j - i == 1) return i;
    std::uint32_t mid = (i + j + 1) / 2;
    TIndex l = self(self, i, mid);
    TIndex r = self(self, mid, j);
    TIndex me = next++;
    recs[me].left = l;
    recs[me].right = r;
    recs[me].set_lo_x(recs[l].lo_x());
    recs[me].set_hi_x(recs[r].hi_x());
    recs[l].parent = me;
    recs[r].parent = me;
    return me;
  };
  TIndex root = build(build, 0, f);
  TOKRA_CHECK(next == 2 * f - 1);
  // Pilot block allocation for every T-node.
  for (TNodeRec& r : recs) {
    for (std::uint32_t i = 0; i < kPilotBlocks; ++i) {
      r.pilot_blocks[i] = pager_->Allocate();
      em::PageRef zero = pager_->Create(r.pilot_blocks[i]);
    }
  }
  {
    em::PageRef h = pager_->Fetch(id);
    h.Set(kHIntRoot, root);
  }
  em::PagedArray<TNodeRec> arr(pager_, tb);
  arr.WriteRange(0, recs);
  // Fix children's parent pointers.
  for (std::uint32_t i = 0; i < f; ++i) {
    em::PageRef ch = pager_->Fetch(children[i]);
    ch.Set(kHParent, id);
    ch.Set(kHParentSlab, i);
  }
  return id;
}

em::BlockId PilotPst::BuildSubtree(const std::vector<Point>& xs_as_points,
                                   std::uint32_t level, em::BlockId parent,
                                   std::uint64_t parent_slab, double lo,
                                   double hi) {
  // xs_as_points carries only x values (score ignored), sorted ascending.
  if (level == 0) {
    std::vector<double> xs;
    xs.reserve(xs_as_points.size());
    for (const Point& p : xs_as_points) xs.push_back(p.x);
    return NewLeaf(parent, parent_slab, xs);
  }
  std::uint64_t child_target = std::max<std::uint64_t>(1, WeightCap(level - 1) / 2);
  std::size_t n = xs_as_points.size();
  std::size_t f = std::max<std::size_t>(1, CeilDiv(n, child_target));
  f = std::min<std::size_t>(f, 2 * branch() + 1);
  std::vector<em::BlockId> kids;
  std::vector<double> klo, khi;
  std::vector<std::uint64_t> kw;
  std::size_t pos = 0;
  for (std::size_t c = 0; c < f; ++c) {
    std::size_t remaining = n - pos;
    std::size_t chunks_left = f - c;
    std::size_t take = CeilDiv(remaining, chunks_left);
    double clo = (c == 0) ? lo : xs_as_points[pos].x;
    double chi = (c == f - 1) ? hi : xs_as_points[pos + take].x;
    std::vector<Point> chunk(xs_as_points.begin() + pos,
                             xs_as_points.begin() + pos + take);
    // Children are wired to the parent after NewInternal; pass placeholders.
    em::BlockId kid = BuildSubtree(chunk, level - 1, em::kNullBlock, 0, clo,
                                   chi);
    kids.push_back(kid);
    klo.push_back(clo);
    khi.push_back(chi);
    kw.push_back(take);
    pos += take;
  }
  return NewInternal(parent, parent_slab, level, kids, klo, khi, kw);
}

void PilotPst::FillPilots(const TRef& t, std::vector<Point> by_score) {
  if (by_score.empty()) return;
  TNodeRec rec = LoadTNode(t);
  std::size_t take = std::min<std::size_t>(PilotTarget(), by_score.size());
  std::vector<Point> mine(by_score.begin(), by_score.begin() + take);
  PilotWrite(t, &rec, mine);
  if (take == by_score.size()) return;
  std::vector<Point> rest(by_score.begin() + take, by_score.end());
  if (rec.is_slab()) {
    TRef c = SlabChild(rec);
    TOKRA_CHECK(c.valid());  // leaf slabs absorb everything (<= B points)
    FillPilots(c, std::move(rest));
    return;
  }
  TRef lt{t.base, static_cast<TIndex>(rec.left)};
  TRef rt{t.base, static_cast<TIndex>(rec.right)};
  TNodeRec lrec = LoadTNode(lt);
  std::vector<Point> lpts, rpts;
  for (const Point& p : rest) {
    (p.x < lrec.hi_x() ? lpts : rpts).push_back(p);
  }
  FillPilots(lt, std::move(lpts));
  FillPilots(rt, std::move(rpts));
}

void PilotPst::CollectPilots(const TRef& t, std::vector<Point>* out) const {
  TNodeRec rec = LoadTNode(t);
  std::vector<Point> pts = PilotRead(rec);
  out->insert(out->end(), pts.begin(), pts.end());
  if (rec.is_slab()) {
    TRef c = SlabChild(rec);
    if (c.valid()) CollectPilots(c, out);
    return;
  }
  CollectPilots(TRef{t.base, static_cast<TIndex>(rec.left)}, out);
  CollectPilots(TRef{t.base, static_cast<TIndex>(rec.right)}, out);
}

void PilotPst::FreeSubtree(em::BlockId base) {
  em::PageRef h = pager_->Fetch(base);
  if (h.Get(kHKind) == 1) {
    std::uint32_t nx = static_cast<std::uint32_t>(h.Get(kHLeafNX));
    std::vector<em::BlockId> xb(nx);
    for (std::uint32_t i = 0; i < nx; ++i) xb[i] = h.Get(kHLeafXIds + i);
    h = em::PageRef();
    for (em::BlockId b : xb) pager_->Free(b);
    pager_->Free(base);
    return;
  }
  std::uint32_t ntb = static_cast<std::uint32_t>(h.Get(kHIntNTB));
  std::vector<em::BlockId> tb(ntb);
  for (std::uint32_t i = 0; i < ntb; ++i) tb[i] = h.Get(kHIntTIds + i);
  h = em::PageRef();
  std::vector<TNodeRec> recs;
  {
    em::PagedArray<TNodeRec> arr(pager_, tb);
    std::uint32_t n = 0;
    {
      em::PageRef hh = pager_->Fetch(base);
      n = static_cast<std::uint32_t>(hh.Get(kHIntNT));
    }
    arr.ReadRange(0, n, &recs);
  }
  for (const TNodeRec& r : recs) {
    for (std::uint32_t i = 0; i < kPilotBlocks; ++i) {
      pager_->Free(r.pilot_blocks[i]);
    }
    if (r.is_slab()) FreeSubtree(r.base_child);
  }
  for (em::BlockId b : tb) pager_->Free(b);
  pager_->Free(base);
}

// --- public construction ----------------------------------------------

PilotPst PilotPst::Create(em::Pager* pager, Options options) {
  return Build(pager, {}, options);
}

PilotPst PilotPst::Open(em::Pager* pager, em::BlockId meta) {
  return PilotPst(pager, meta);
}

PilotPst PilotPst::Build(em::Pager* pager, std::vector<Point> points,
                         Options options) {
  TOKRA_CHECK(pager->B() >= 32);
  std::uint32_t a = options.branch != 0 ? options.branch
                                        : std::max<std::uint32_t>(4, pager->B() / 16);
  std::uint32_t b = options.leaf_cap != 0 ? options.leaf_cap : pager->B();
  TOKRA_CHECK(options.phi >= 1);

  em::BlockId meta = pager->Allocate();
  {
    em::PageRef mp = pager->Create(meta);
    mp.Set(kMBranch, a);
    mp.Set(kMLeafCap, b);
    mp.Set(kMPhi, options.phi);
  }
  PilotPst pst(pager, meta);

  // Height: smallest h >= 1 with b * a^h >= n.
  std::uint64_t n = points.size();
  std::uint32_t h = 1;
  {
    std::uint64_t cap = static_cast<std::uint64_t>(b) * a;
    while (cap < n) {
      cap *= a;
      ++h;
    }
  }
  std::sort(points.begin(), points.end(), ByXAsc{});
  em::BlockId root = pst.BuildSubtree(points, h, em::kNullBlock, 0, -kInf,
                                      kInf);
  {
    em::PageRef mp = pager->Fetch(meta);
    mp.Set(kMRoot, root);
    mp.Set(kMLive, n);
    mp.Set(kMKeys, n);
    mp.Set(kMHeight, h);
  }
  std::sort(points.begin(), points.end(), ByScoreDesc{});
  pst.FillPilots(pst.RootTRef(), std::move(points));
  return pst;
}

void PilotPst::DestroyAll() {
  FreeSubtree(MetaGet(kMRoot));
  pager_->Free(meta_);
  meta_ = em::kNullBlock;
}

// --- rebalancing ----------------------------------------------------

void PilotPst::Rebalance(const std::vector<em::BlockId>& path) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::uint64_t w, level;
    {
      em::PageRef h = pager_->Fetch(path[i]);
      w = h.Get(kHWeight);
      level = h.Get(kHLevel);
    }
    if (w > WeightCap(static_cast<std::uint32_t>(level))) {
      if (i == 0) {
        GlobalRebuild();
      } else {
        RebuildSubtree(path[i - 1]);
      }
      return;
    }
  }
}

void PilotPst::RebuildSubtree(em::BlockId base) {
  std::uint64_t level, parent, parent_slab;
  std::uint32_t f;
  std::vector<em::BlockId> tb;
  {
    em::PageRef h = pager_->Fetch(base);
    TOKRA_CHECK(h.Get(kHKind) == 0);
    level = h.Get(kHLevel);
    parent = h.Get(kHParent);
    parent_slab = h.Get(kHParentSlab);
    f = static_cast<std::uint32_t>(h.Get(kHIntF));
    std::uint32_t ntb = static_cast<std::uint32_t>(h.Get(kHIntNTB));
    tb.resize(ntb);
    for (std::uint32_t i = 0; i < ntb; ++i) tb[i] = h.Get(kHIntTIds + i);
  }
  // Slab bounds of the subtree (from the root T-node record).
  TRef root_t{base, 0};
  {
    em::PageRef h = pager_->Fetch(base);
    root_t.idx = static_cast<TIndex>(h.Get(kHIntRoot));
  }
  TNodeRec root_rec = LoadTNode(root_t);
  double lo = root_rec.lo_x(), hi = root_rec.hi_x();

  // Live points (from pilot sets) and x keys (live + dead, from leaves).
  std::vector<Point> live;
  CollectPilots(root_t, &live);
  std::vector<Point> xs;
  {
    // DFS for leaf x keys.
    std::vector<em::BlockId> stack{base};
    while (!stack.empty()) {
      em::BlockId cur = stack.back();
      stack.pop_back();
      em::PageRef h = pager_->Fetch(cur);
      if (h.Get(kHKind) == 1) {
        std::uint32_t m = static_cast<std::uint32_t>(h.Get(kHLeafM));
        std::uint32_t nx = static_cast<std::uint32_t>(h.Get(kHLeafNX));
        std::vector<em::BlockId> xb(nx);
        for (std::uint32_t i = 0; i < nx; ++i) xb[i] = h.Get(kHLeafXIds + i);
        h = em::PageRef();
        em::PagedArray<double> arr(pager_, xb);
        std::vector<double> vals;
        arr.ReadRange(0, m, &vals);
        for (double x : vals) xs.push_back(Point{x, 0});
        continue;
      }
      std::uint32_t nt = static_cast<std::uint32_t>(h.Get(kHIntNT));
      std::uint32_t ntb2 = static_cast<std::uint32_t>(h.Get(kHIntNTB));
      std::vector<em::BlockId> tb2(ntb2);
      for (std::uint32_t i = 0; i < ntb2; ++i) tb2[i] = h.Get(kHIntTIds + i);
      h = em::PageRef();
      em::PagedArray<TNodeRec> arr(pager_, tb2);
      std::vector<TNodeRec> recs;
      arr.ReadRange(0, nt, &recs);
      for (const TNodeRec& r : recs) {
        if (r.is_slab()) stack.push_back(r.base_child);
      }
    }
  }

  // Free the old subtree (children subtrees + this node's T machinery), but
  // keep `base`'s header block so the parent's slab pointer stays valid.
  {
    std::vector<TNodeRec> recs;
    em::PagedArray<TNodeRec> arr(pager_, tb);
    std::uint32_t nt;
    {
      em::PageRef h = pager_->Fetch(base);
      nt = static_cast<std::uint32_t>(h.Get(kHIntNT));
    }
    arr.ReadRange(0, nt, &recs);
    for (const TNodeRec& r : recs) {
      for (std::uint32_t i = 0; i < kPilotBlocks; ++i) {
        pager_->Free(r.pilot_blocks[i]);
      }
      if (r.is_slab()) FreeSubtree(r.base_child);
    }
    for (em::BlockId bl : tb) pager_->Free(bl);
  }
  (void)f;

  // Rebuild: fresh children over the x keys, a fresh T(u), refilled pilots.
  std::sort(xs.begin(), xs.end(), ByXAsc{});
  std::uint64_t child_target =
      std::max<std::uint64_t>(1, WeightCap(static_cast<std::uint32_t>(level) - 1) / 2);
  std::size_t n = xs.size();
  std::size_t nf = std::max<std::size_t>(1, CeilDiv(n, child_target));
  nf = std::min<std::size_t>(nf, 2 * branch() + 1);
  std::vector<em::BlockId> kids;
  std::vector<double> klo, khi;
  std::vector<std::uint64_t> kw;
  std::size_t pos = 0;
  for (std::size_t c = 0; c < nf; ++c) {
    std::size_t remaining = n - pos;
    std::size_t chunks_left = nf - c;
    std::size_t take = CeilDiv(remaining, chunks_left);
    double clo = (c == 0) ? lo : xs[pos].x;
    double chi = (c == nf - 1) ? hi : xs[pos + take].x;
    std::vector<Point> chunk(xs.begin() + pos, xs.begin() + pos + take);
    kids.push_back(BuildSubtree(chunk, static_cast<std::uint32_t>(level) - 1,
                                em::kNullBlock, 0, clo, chi));
    klo.push_back(clo);
    khi.push_back(chi);
    kw.push_back(take);
    pos += take;
  }
  // Rewrite base's header in place (NewInternal allocates a new id; instead
  // we inline its logic against the existing id).
  em::BlockId rebuilt =
      NewInternal(parent, parent_slab, static_cast<std::uint32_t>(level), kids,
                  klo, khi, kw);
  // Swap rebuilt's header content into `base` and free the temp header.
  {
    em::PageRef src = pager_->Fetch(rebuilt);
    em::PageRef dst = pager_->Fetch(base);
    for (std::uint32_t i = 0; i < B(); ++i) dst.Set(i, src.Get(i));
    dst.Set(kHParent, parent);
    dst.Set(kHParentSlab, parent_slab);
  }
  pager_->Free(rebuilt);
  // Children must point at `base`, not the temp header.
  for (em::BlockId kid : kids) {
    em::PageRef ch = pager_->Fetch(kid);
    ch.Set(kHParent, base);
  }

  std::sort(live.begin(), live.end(), ByScoreDesc{});
  TRef new_root{base, 0};
  {
    em::PageRef h = pager_->Fetch(base);
    new_root.idx = static_cast<TIndex>(h.Get(kHIntRoot));
  }
  FillPilots(new_root, std::move(live));
}

void PilotPst::GlobalRebuild() {
  std::vector<Point> live;
  CollectPilots(RootTRef(), &live);
  FreeSubtree(MetaGet(kMRoot));
  Options options;
  options.phi = static_cast<std::uint32_t>(MetaGet(kMPhi));
  options.branch = branch();
  options.leaf_cap = leaf_cap();
  em::BlockId old_meta = meta_;
  PilotPst fresh = Build(pager_, std::move(live), options);
  // Move the fresh tree under the existing meta block id.
  {
    em::PageRef src = pager_->Fetch(fresh.meta_);
    em::PageRef dst = pager_->Fetch(old_meta);
    for (std::uint32_t i = 0; i < B(); ++i) dst.Set(i, src.Get(i));
  }
  pager_->Free(fresh.meta_);
  meta_ = old_meta;
}

// --- validation ---------------------------------------------------------

void PilotPst::CheckBase(em::BlockId base, std::uint32_t expect_level,
                         double lo, double hi, std::uint64_t* weight,
                         std::uint64_t* live) const {
  em::PageRef h = pager_->Fetch(base);
  TOKRA_CHECK_EQ(h.Get(kHLevel), expect_level);
  std::uint64_t w = h.Get(kHWeight);
  if (h.Get(kHKind) == 1) {
    TOKRA_CHECK_EQ(expect_level, 0u);
    TOKRA_CHECK_EQ(h.Get(kHLeafM), w);
    *weight = w;
    return;
  }
  std::uint32_t f = static_cast<std::uint32_t>(h.Get(kHIntF));
  std::uint32_t nt = static_cast<std::uint32_t>(h.Get(kHIntNT));
  TIndex root = static_cast<TIndex>(h.Get(kHIntRoot));
  h = em::PageRef();
  TOKRA_CHECK_EQ(nt, 2 * f - 1);
  std::vector<TNodeRec> recs = LoadTNodes(base);

  // Slab records partition [lo, hi) in order.
  double prev = lo;
  for (std::uint32_t i = 0; i < f; ++i) {
    TOKRA_CHECK(recs[i].is_slab());
    TOKRA_CHECK(recs[i].lo_x() == prev);
    prev = recs[i].hi_x();
  }
  TOKRA_CHECK(prev == hi);
  // Root T-node spans the whole slab.
  TOKRA_CHECK(recs[root].lo_x() == lo && recs[root].hi_x() == hi);

  // Base children.
  std::uint64_t wsum = 0;
  for (std::uint32_t i = 0; i < f; ++i) {
    std::uint64_t cw = 0;
    CheckBase(recs[i].base_child, expect_level - 1, recs[i].lo_x(),
              recs[i].hi_x(), &cw, live);
    {
      em::PageRef ch = pager_->Fetch(recs[i].base_child);
      TOKRA_CHECK_EQ(ch.Get(kHParent), base);
      TOKRA_CHECK_EQ(ch.Get(kHParentSlab), i);
    }
    wsum += cw;
  }
  std::uint64_t wh;
  {
    em::PageRef hh = pager_->Fetch(base);
    wh = hh.Get(kHWeight);
  }
  TOKRA_CHECK_EQ(wsum, wh);
  *weight = wsum;
}

void PilotPst::CheckT(const TRef& t, double bound, double lo, double hi,
                      std::uint64_t* live) const {
  TNodeRec rec = LoadTNode(t);
  TOKRA_CHECK(rec.lo_x() >= lo && rec.hi_x() <= hi);
  std::vector<Point> pts = PilotRead(rec);
  TOKRA_CHECK_EQ(pts.size(), rec.pilot_count);
  TOKRA_CHECK(pts.size() <= PilotMax());
  double min_score = kInf;
  for (const Point& p : pts) {
    TOKRA_CHECK(p.x >= rec.lo_x() && p.x < rec.hi_x());
    TOKRA_CHECK(p.score < bound);
    min_score = std::min(min_score, p.score);
  }
  if (!pts.empty()) TOKRA_CHECK(rec.rep() == min_score);
  *live += pts.size();

  double child_bound = pts.empty() ? bound : rec.rep();
  std::uint64_t below = 0;
  if (rec.is_slab()) {
    TRef c = SlabChild(rec);
    if (c.valid()) CheckT(c, child_bound, rec.lo_x(), rec.hi_x(), &below);
  } else {
    CheckT(TRef{t.base, static_cast<TIndex>(rec.left)}, child_bound,
           rec.lo_x(), rec.hi_x(), &below);
    CheckT(TRef{t.base, static_cast<TIndex>(rec.right)}, child_bound,
           rec.lo_x(), rec.hi_x(), &below);
  }
  if (pts.size() < PilotMin()) {
    // Size rule: an unsaturated pilot set implies an empty proper subtree.
    TOKRA_CHECK_EQ(below, 0u);
  }
  *live += below;
}

void PilotPst::CheckInvariants() const {
  std::uint64_t w = 0, live = 0;
  CheckBase(MetaGet(kMRoot), static_cast<std::uint32_t>(MetaGet(kMHeight)),
            -kInf, kInf, &w, &live);
  TOKRA_CHECK_EQ(w, MetaGet(kMKeys));
  live = 0;
  CheckT(RootTRef(), kInf, -kInf, kInf, &live);
  TOKRA_CHECK_EQ(live, MetaGet(kMLive));
}

}  // namespace tokra::pilot
