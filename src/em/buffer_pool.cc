#include "em/buffer_pool.h"

namespace tokra::em {

std::uint32_t BufferPool::Pin(BlockId id, PinMode mode) {
  TOKRA_CHECK(id != kNullBlock);
  auto it = map_.find(id);
  if (it != map_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    f.tick = ++clock_;
    ++stats_.pool_hits;
    return it->second;
  }
  ++stats_.pool_misses;
  std::uint32_t v = FindVictim();
  Frame& f = frames_[v];
  if (f.valid) {
    if (f.dirty) {
      device_->Write(f.id, f.buf.data());
      ++stats_.writes;
    }
    map_.erase(f.id);
    ++stats_.evictions;
  }
  f.id = id;
  f.valid = true;
  f.dirty = false;
  f.pins = 1;
  f.tick = ++clock_;
  if (mode == PinMode::kRead) {
    device_->Read(id, f.buf.data());
    ++stats_.reads;
  } else {
    std::fill(f.buf.begin(), f.buf.end(), 0);
    // A created frame is dirty by definition: its zeros are new content.
    f.dirty = true;
  }
  map_[id] = v;
  return v;
}

void BufferPool::Unpin(std::uint32_t frame, bool dirty) {
  Frame& f = frames_[frame];
  TOKRA_CHECK(f.pins > 0);
  --f.pins;
  if (dirty) f.dirty = true;
}

void BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      device_->Write(f.id, f.buf.data());
      ++stats_.writes;
      f.dirty = false;
    }
  }
}

void BufferPool::DropAll() {
  FlushAll();
  for (Frame& f : frames_) {
    TOKRA_CHECK(f.pins == 0);  // dropping while pinned is a bug
    f.valid = false;
    f.id = kNullBlock;
  }
  map_.clear();
}

void BufferPool::Invalidate(BlockId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  Frame& f = frames_[it->second];
  TOKRA_CHECK(f.pins == 0);
  f.valid = false;
  f.dirty = false;
  f.id = kNullBlock;
  map_.erase(it);
}

std::uint32_t BufferPool::FindVictim() {
  std::uint32_t best = num_frames();
  std::uint64_t best_tick = ~std::uint64_t{0};
  for (std::uint32_t i = 0; i < num_frames(); ++i) {
    const Frame& f = frames_[i];
    if (!f.valid) return i;  // free frame
    if (f.pins == 0 && f.tick < best_tick) {
      best = i;
      best_tick = f.tick;
    }
  }
  TOKRA_CHECK(best < num_frames());  // pool exhausted: too many simultaneous pins
  return best;
}

}  // namespace tokra::em
