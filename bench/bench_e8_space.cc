// E8 — space: every structure uses O(n/B) blocks; ratios flatten as n grows.

#include "bench/common.h"
#include "lemma4/structure.h"
#include "pilot/pilot_pst.h"
#include "st12/selector.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e8_space");
  std::printf("# E8: space in blocks, normalized by n/B (B=256)\n");
  Header("blocks / (n/B)",
         {"n", "pilot PST", "st12", "lemma4", "raw data (2 words/pt)"});
  for (std::size_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    Rng rng(10);
    auto pts = RandomPoints(&rng, n);
    double unit = static_cast<double>(n) / 256.0;

    double pilot_ratio, st_ratio, l4_ratio;
    {
      em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 16});
      auto s = pilot::PilotPst::Build(&pager, pts);
      (void)s;
      pilot_ratio = pager.BlocksInUse() / unit;
    }
    {
      em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 16});
      auto s = st12::ShengTaoSelector::Build(&pager, pts);
      (void)s;
      st_ratio = pager.BlocksInUse() / unit;
    }
    {
      em::Pager pager(em::EmOptions{.block_words = 256, .pool_frames = 16});
      auto s = lemma4::Lemma4Selector::Build(
          &pager, pts, {.fanout = 16, .l = 64, .leaf_cap = 4096});
      (void)s;
      l4_ratio = pager.BlocksInUse() / unit;
    }
    Row({U(n), D(pilot_ratio), D(st_ratio), D(l4_ratio), D(2.0 / 256 * 256)});
  }
  std::printf("\nShape check: each column converges to a constant (linear "
              "space); constants reflect pre-allocated pilot/sketch blocks "
              "as documented in DESIGN.md.\n");
  return 0;
}
