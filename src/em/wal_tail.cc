#include "em/wal_tail.h"

#include <sys/stat.h>

#include <utility>
#include <vector>

namespace tokra::em {

StatusOr<std::uint64_t> WalTailFollower::Poll(const Callback& fn) {
  ++polls_;
  struct stat st;
  if (::stat(options_.path.c_str(), &st) != 0) {
    return Status::NotFound("no such WAL segment: " + options_.path);
  }
  if (static_cast<std::uint64_t>(st.st_ino) == last_ino_ &&
      static_cast<std::uint64_t>(st.st_size) == last_size_) {
    ++skipped_polls_;
    return std::uint64_t{0};
  }

  WriteAheadLog::Options o;
  o.path = options_.path;
  o.block_words = options_.block_words;
  o.read_only = true;
  o.hint_base_lsn = hint_base_;
  o.hint_lsn = hint_lsn_;
  o.hint_block = hint_block_;
  TOKRA_ASSIGN_OR_RETURN(auto reader, WalReader::Open(std::move(o)));

  // The log can only have rotated past (base_lsn - 1); anything the
  // consumer still needed from before that is unobtainable.
  if (reader->base_lsn() > delivered_ + 1) {
    return Status::OutOfRange(
        "WAL rotated past undelivered records: " + options_.path +
        " base=" + std::to_string(reader->base_lsn()) +
        " delivered=" + std::to_string(delivered_));
  }

  reader->Seek(delivered_);
  std::uint64_t n = 0;
  WriteAheadLog::Record rec;
  std::vector<word_t> payload;
  Status cb_status;
  while (reader->Next(&rec, &payload)) {
    cb_status = fn(rec, payload);
    if (!cb_status.ok()) break;
    delivered_ = rec.lsn;
    ++n;
  }
  head_ = reader->head_lsn();
  // The hint promises the caller holds everything below hint_lsn, and the
  // fast path promises nothing new is visible — both only true when every
  // scanned record was delivered. A callback abort strands records in
  // (delivered, head]; the next poll must rescan them for real.
  if (cb_status.ok() && delivered_ == head_) {
    hint_base_ = reader->base_lsn();
    hint_lsn_ = reader->head_lsn() + 1;
    hint_block_ = reader->tail_block();
    last_ino_ = static_cast<std::uint64_t>(st.st_ino);
    last_size_ = static_cast<std::uint64_t>(st.st_size);
  } else {
    hint_base_ = 0;
    hint_lsn_ = 0;
    hint_block_ = 0;
    last_ino_ = 0;
    last_size_ = std::uint64_t(-1);
  }
  TOKRA_RETURN_IF_ERROR(cb_status);
  return n;
}

}  // namespace tokra::em
