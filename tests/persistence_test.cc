// Persistence tests: pager superblock round trips, TopkIndex
// checkpoint/reopen fidelity on the file backend, mem-vs-file I/O-count
// parity, and full sharded-engine recovery.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/topk_index.h"
#include "em/file_block_device.h"
#include "em/pager.h"
#include "em/wal.h"
#include "engine/sharded_engine.h"
#include "internal/naive.h"
#include "util/point.h"
#include "util/random.h"

namespace tokra {
namespace {

namespace fs = std::filesystem;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// A unique temp directory for one test; removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("tokra-persist-" + tag + "-" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string File(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<Point> MakePoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, 1e6);
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

struct Query {
  double x1, x2;
  std::uint64_t k;
};

std::vector<Query> MakeQueries(Rng* rng, std::size_t count) {
  std::vector<Query> qs(count);
  for (auto& q : qs) {
    double a = rng->UniformDouble(0.0, 1e6), b = rng->UniformDouble(0.0, 1e6);
    q = {std::min(a, b), std::max(a, b), 1 + rng->Uniform(128)};
  }
  return qs;
}

TEST(PagerPersistenceTest, CheckpointRestoresAllocatorAndRoots) {
  TempDir dir("pager");
  em::EmOptions opts{.block_words = 16,
                     .pool_frames = 8,
                     .backend = em::Backend::kFile,
                     .path = dir.File("dev.blk")};
  std::vector<em::BlockId> live;
  std::set<em::BlockId> freed;
  std::uint64_t in_use;
  {
    em::Pager pager(opts);
    // 64 blocks with known contents; free every third one — enough to spill
    // the free list past the superblock's inline capacity (16 words - 14
    // header - 2 roots = 0 inline slots).
    std::vector<em::BlockId> ids;
    for (int i = 0; i < 64; ++i) ids.push_back(pager.Allocate());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      em::PageRef p = pager.Create(ids[i]);
      p.Set(0, 1000 + i);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 3 == 0) {
        pager.Free(ids[i]);
        freed.insert(ids[i]);
      } else {
        live.push_back(ids[i]);
      }
    }
    ASSERT_GT(freed.size(), 6u);  // forces a spill
    in_use = pager.BlocksInUse();
    std::uint64_t roots[2] = {live[0], 424242};
    ASSERT_TRUE(pager.Checkpoint(roots).ok());
  }
  auto reopened = em::Pager::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  em::Pager& pager = **reopened;
  ASSERT_EQ(pager.roots().size(), 2u);
  EXPECT_EQ(pager.roots()[0], live[0]);
  EXPECT_EQ(pager.roots()[1], 424242u);
  EXPECT_EQ(pager.BlocksInUse(), in_use);
  // Live blocks kept their contents.
  for (std::size_t i = 0; i < live.size(); ++i) {
    em::PageRef p = pager.Fetch(live[i]);
    EXPECT_GE(p.Get(0), 1000u);
  }
  // The free list survived: the next |freed| allocations reuse exactly the
  // freed ids (order is allocator-internal, membership is the contract).
  std::set<em::BlockId> reallocated;
  for (std::size_t i = 0; i < freed.size(); ++i) {
    reallocated.insert(pager.Allocate());
  }
  EXPECT_EQ(reallocated, freed);
  // With the free list drained, fresh allocation resumes past the old
  // high-water mark instead of clobbering live blocks.
  em::BlockId fresh = pager.Allocate();
  EXPECT_EQ(freed.count(fresh), 0u);
  for (em::BlockId id : live) EXPECT_NE(fresh, id);
}

// Regression for the checkpoint-durability contract: work done *after* a
// checkpoint (allocations, writes, evictions) must never overwrite state
// that recovering the checkpoint would read — in particular the free-list
// spill region.
TEST(PagerPersistenceTest, PostCheckpointWritesDoNotCorruptRecovery) {
  TempDir dir("pager-crash");
  em::EmOptions opts{.block_words = 16,
                     .pool_frames = 8,
                     .backend = em::Backend::kFile,
                     .path = dir.File("dev.blk")};
  std::set<em::BlockId> freed;
  std::vector<em::BlockId> live;
  {
    em::Pager pager(opts);
    std::vector<em::BlockId> ids;
    for (int i = 0; i < 64; ++i) ids.push_back(pager.Allocate());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      em::PageRef p = pager.Create(ids[i]);
      p.Set(0, 5000 + i);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 2 == 0) {
        pager.Free(ids[i]);
        freed.insert(ids[i]);
      } else {
        live.push_back(ids[i]);
      }
    }
    std::uint64_t root = live[0];
    ASSERT_TRUE(pager.Checkpoint({&root, 1}).ok());
    // "Crash" window: drain the free list and keep allocating + writing —
    // the allocator must not hand out the spill region the checkpoint
    // depends on.
    for (int i = 0; i < 128; ++i) {
      em::BlockId id = pager.Allocate();
      em::PageRef p = pager.Create(id);
      p.Set(0, 0xDEADBEEF);
    }
    pager.FlushAll();  // post-checkpoint dirty data reaches the file
  }  // no second Checkpoint: simulates a crash after the flush
  auto reopened = em::Pager::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  em::Pager& pager = **reopened;
  // The recovered free list is exactly the checkpointed one.
  std::set<em::BlockId> reallocated;
  for (std::size_t i = 0; i < freed.size(); ++i) {
    reallocated.insert(pager.Allocate());
  }
  EXPECT_EQ(reallocated, freed);
  for (em::BlockId id : live) {
    em::PageRef p = pager.Fetch(id);
    EXPECT_GE(p.Get(0), 5000u);  // live data intact
  }
}

// A torn/corrupted newest superblock slot falls back to the previous
// checkpoint instead of failing (or worse, loading garbage).
TEST(PagerPersistenceTest, TornSuperblockFallsBackToPreviousCheckpoint) {
  TempDir dir("pager-torn");
  em::EmOptions opts{.block_words = 16,
                     .pool_frames = 8,
                     .backend = em::Backend::kFile,
                     .path = dir.File("dev.blk")};
  {
    em::Pager pager(opts);
    em::BlockId id = pager.Allocate();
    { em::PageRef p = pager.Create(id); p.Set(0, 77); }
    std::uint64_t root = 11;
    ASSERT_TRUE(pager.Checkpoint({&root, 1}).ok());  // epoch 1
    root = 22;
    ASSERT_TRUE(pager.Checkpoint({&root, 1}).ok());  // epoch 2
  }
  {
    // Corrupt the epoch-2 slot (slot 2 % 2 == 0) as a torn write would.
    em::FileBlockDevice dev(16, {.path = dir.File("dev.blk"),
                                 .truncate = false});
    std::vector<em::word_t> junk(16, 0);
    dev.Read(0, junk.data());
    junk[15] ^= 1;  // flip one payload bit: checksum no longer matches
    dev.Write(0, junk.data());
  }
  auto reopened = em::Pager::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ((*reopened)->roots().size(), 1u);
  EXPECT_EQ((*reopened)->roots()[0], 11u);  // the epoch-1 checkpoint
}

TEST(PagerPersistenceTest, OpenRejectsMismatchedGeometryAndMissingFile) {
  TempDir dir("pager-mismatch");
  em::EmOptions opts{.block_words = 32,
                     .pool_frames = 8,
                     .backend = em::Backend::kFile,
                     .path = dir.File("dev.blk")};
  {
    em::Pager pager(opts);
    ASSERT_TRUE(pager.Checkpoint({}).ok());
  }
  em::EmOptions wrong = opts;
  wrong.block_words = 64;
  EXPECT_EQ(em::Pager::Open(wrong).status().code(),
            StatusCode::kFailedPrecondition);
  em::EmOptions missing = opts;
  missing.path = dir.File("nope.blk");
  EXPECT_EQ(em::Pager::Open(missing).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(em::Pager::Open(em::EmOptions{}).status().code(),
            StatusCode::kInvalidArgument);  // mem backend cannot reopen
}

TEST(PagerPersistenceTest, UncheckpointedDeviceIsRejected) {
  TempDir dir("pager-raw");
  em::EmOptions opts{.block_words = 16,
                     .pool_frames = 8,
                     .backend = em::Backend::kFile,
                     .path = dir.File("dev.blk")};
  {
    em::Pager pager(opts);
    em::BlockId id = pager.Allocate();
    em::PageRef p = pager.Create(id);
    p.Set(0, 1);
    pager.FlushAll();  // data reaches the file, but no Checkpoint()
  }
  EXPECT_EQ(em::Pager::Open(opts).status().code(),
            StatusCode::kFailedPrecondition);
}

// The ISSUE acceptance suite: a TopkIndex built on FileBlockDevice,
// checkpointed, and reopened on a fresh pager answers a 10k-query oracle
// suite byte-identically to the pre-checkpoint index.
TEST(TopkIndexPersistenceTest, CheckpointReopenAnswersIdentically) {
  TempDir dir("topk");
  em::EmOptions opts{.block_words = 64,
                     .pool_frames = 32,
                     .backend = em::Backend::kFile,
                     .path = dir.File("index.blk")};
  Rng rng(7);
  auto points = MakePoints(&rng, 1500);
  auto queries = MakeQueries(&rng, 10000);

  std::vector<std::vector<Point>> before;
  before.reserve(queries.size());
  {
    em::Pager pager(opts);
    auto built = core::TopkIndex::Build(&pager, points);
    ASSERT_TRUE(built.ok());
    auto& idx = *built;
    for (const Query& q : queries) {
      auto r = idx->TopK(q.x1, q.x2, q.k);
      ASSERT_TRUE(r.ok());
      before.push_back(std::move(*r));
    }
    ASSERT_TRUE(idx->Checkpoint().ok());
  }  // pager (and its fd) destroyed: simulates process exit

  auto reopened = em::Pager::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto opened = core::TopkIndex::Open(reopened->get());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& idx = *opened;
  EXPECT_EQ(idx->size(), points.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto r = idx->TopK(queries[i].x1, queries[i].x2, queries[i].k);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, before[i]) << "query " << i << " diverged after reopen";
  }
  idx->CheckInvariants();

  // The reopened index is fully live: updates work and a second
  // checkpoint/reopen cycle still agrees with itself.
  Rng urng(8);
  auto extra = MakePoints(&urng, 64);
  for (const Point& p : extra) {
    ASSERT_TRUE(idx->Insert(Point{p.x + 2e6, p.score + 2.0}).ok());
  }
  EXPECT_EQ(idx->size(), points.size() + extra.size());
  ASSERT_TRUE(idx->Checkpoint().ok());
  auto again = em::Pager::Open(opts);
  ASSERT_TRUE(again.ok());
  auto idx2 = core::TopkIndex::Open(again->get());
  ASSERT_TRUE(idx2.ok());
  EXPECT_EQ((*idx2)->size(), points.size() + extra.size());
  (*idx2)->CheckInvariants();
}

// Mem and file backends must report identical I/O counters for the same
// deterministic workload: the counting layer is backend-independent.
TEST(BackendParityTest, IdenticalIoCountsAcrossBackends) {
  TempDir dir("parity");
  auto run = [&](const em::EmOptions& opts) -> em::IoStats {
    em::Pager pager(opts);
    Rng rng(11);
    auto points = MakePoints(&rng, 800);
    auto built = core::TopkIndex::Build(&pager, points);
    TOKRA_CHECK(built.ok());
    auto& idx = *built;
    auto queries = MakeQueries(&rng, 200);
    for (const Query& q : queries) {
      pager.DropCache();  // cold-cache queries exercise real device reads
      TOKRA_CHECK(idx->TopK(q.x1, q.x2, q.k).ok());
    }
    for (int i = 0; i < 100; ++i) {
      TOKRA_CHECK(idx->Insert(Point{2e6 + i, 2.0 + i * 1e-3}).ok());
      TOKRA_CHECK(idx->Delete(points[i]).ok());
    }
    pager.FlushAll();
    return pager.stats();
  };
  em::IoStats mem = run(em::EmOptions{.block_words = 64, .pool_frames = 16});
  em::IoStats file = run(em::EmOptions{.block_words = 64,
                                       .pool_frames = 16,
                                       .backend = em::Backend::kFile,
                                       .path = dir.File("parity.blk")});
  EXPECT_EQ(mem.reads, file.reads);
  EXPECT_EQ(mem.writes, file.writes);
  EXPECT_EQ(mem.pool_hits, file.pool_hits);
  EXPECT_EQ(mem.pool_misses, file.pool_misses);
  EXPECT_EQ(mem.evictions, file.evictions);
}

TEST(EnginePersistenceTest, CheckpointRecoverRoundTrip) {
  TempDir dir("engine");
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();

  Rng rng(21);
  auto points = MakePoints(&rng, 2000);
  auto queries = MakeQueries(&rng, 300);

  std::vector<std::vector<Point>> before;
  std::vector<double> bounds;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto& eng = *built;
    for (const Query& q : queries) {
      auto r = eng->TopK(q.x1, q.x2, q.k);
      ASSERT_TRUE(r.ok());
      before.push_back(std::move(*r));
    }
    bounds = eng->ShardLowerBounds();
    ASSERT_TRUE(eng->Checkpoint().ok());
  }  // engine destroyed: simulates restart

  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto& eng = *recovered;
  EXPECT_EQ(eng->size(), points.size());
  EXPECT_EQ(eng->ShardLowerBounds(), bounds);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto r = eng->TopK(queries[i].x1, queries[i].x2, queries[i].k);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, before[i]) << "query " << i << " diverged after recovery";
  }

  // The recovered engine serves updates, rejects duplicates via the rebuilt
  // registry, and passes full validation.
  EXPECT_EQ(eng->Insert(points[0]).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(eng->Insert(Point{3e6, 5.0}).ok());
  ASSERT_TRUE(eng->Delete(points[1]).ok());
  auto whole = eng->TopK(-kInf, kInf, 5);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->front(), (Point{3e6, 5.0}));
  eng->CheckInvariants();
}

TEST(EnginePersistenceTest, RecoverRequiresCheckpointedShards) {
  TempDir dir("engine-missing");
  engine::EngineOptions opts;
  opts.num_shards = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  EXPECT_EQ(engine::ShardedTopkEngine::Recover(opts).status().code(),
            StatusCode::kNotFound);
  engine::EngineOptions memonly;
  EXPECT_EQ(engine::ShardedTopkEngine::Recover(memonly).status().code(),
            StatusCode::kInvalidArgument);
}

// Rebalance on a file-backed engine must not destroy the previous
// checkpoint while rebuilding (regression: the fresh-pager constructor used
// to O_TRUNC the live shard files). A successful rebalance commits its own
// checkpoint, so exit-without-Checkpoint after a rebalance recovers the
// rebalance-time state; no `.rebuild` side files are left behind.
TEST(EnginePersistenceTest, RebalanceCommitsDurablyAndLeavesNoSideFiles) {
  TempDir dir("engine-rebalance");
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();

  Rng rng(55);
  auto points = MakePoints(&rng, 1200);
  auto queries = MakeQueries(&rng, 200);
  std::vector<std::vector<Point>> before;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    auto& eng = *built;
    ASSERT_TRUE(eng->Checkpoint().ok());
    // Skew one end of the key space, then force a rebalance. No explicit
    // Checkpoint() afterwards: the rebalance itself must leave the files
    // recoverable (the old files' checkpoints are gone with the old split).
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(eng->Insert(Point{2e6 + i, 10.0 + i * 1e-3}).ok());
    }
    ASSERT_TRUE(eng->Rebalance().ok());
    for (const Query& q : queries) {
      auto r = eng->TopK(q.x1, q.x2, q.k);
      ASSERT_TRUE(r.ok());
      before.push_back(std::move(*r));
    }
  }  // destroyed without a second Checkpoint: simulates a crash

  for (const auto& entry : fs::directory_iterator(dir.path())) {
    EXPECT_EQ(entry.path().extension(), ".tokra")
        << "stale rebuild artifact: " << entry.path();
  }
  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto& eng = *recovered;
  EXPECT_EQ(eng->size(), points.size() + 400);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto r = eng->TopK(queries[i].x1, queries[i].x2, queries[i].k);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, before[i]) << "query " << i << " diverged after recovery";
  }
  eng->CheckInvariants();
}

// A crash mid-rebalance-commit (some side files renamed over their live
// files, some not) is rolled forward by Recover(): every shard still at the
// old generation has a fully checkpointed side file, so recovery finishes
// the renames and serves the committed post-rebalance state.
TEST(EnginePersistenceTest, RecoverRollsForwardInterruptedRebalance) {
  TempDir dir("engine-midrename");
  engine::EngineOptions opts;
  opts.num_shards = 3;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();

  Rng rng(66);
  auto points = MakePoints(&rng, 900);
  std::uint64_t expected_size;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    auto& eng = *built;
    ASSERT_TRUE(eng->Checkpoint().ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(eng->Insert(Point{3e6 + i, 20.0 + i * 1e-3}).ok());
    }
    ASSERT_TRUE(eng->Rebalance().ok());
    expected_size = eng->size();
  }
  // Forge the mid-rename crash state for shard 1: move its committed file
  // back to the side name and put a checkpoint with an older generation at
  // the live name (standing in for the pre-rebalance file the rename
  // replaced).
  const std::string live = dir.File("shard-1.tokra");
  const std::string side = live + ".rebuild";
  fs::rename(live, side);
  {
    em::EmOptions em = opts.em;
    em.backend = em::Backend::kFile;
    em.path = live;
    em::Pager pager(em);
    auto idx = core::TopkIndex::Build(&pager, {});
    ASSERT_TRUE(idx.ok());
    const std::uint64_t extra[4] = {0 /* bound (ignored at gen 0) */,
                                    opts.num_shards, 0 /* old generation */,
                                    em::kNullBlock /* no fence */};
    ASSERT_TRUE((*idx)->Checkpoint(extra).ok());
  }

  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->size(), expected_size);
  EXPECT_FALSE(fs::exists(side));  // the roll-forward consumed it
  (*recovered)->CheckInvariants();
}

// Recovering with a different shard count than was checkpointed must fail
// loudly — a smaller count would otherwise silently drop the upper key
// ranges' data.
TEST(EnginePersistenceTest, RecoverRejectsShardCountMismatch) {
  TempDir dir("engine-mismatch");
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  Rng rng(33);
  {
    auto built = engine::ShardedTopkEngine::Build(MakePoints(&rng, 500), opts);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Checkpoint().ok());
  }
  engine::EngineOptions fewer = opts;
  fewer.num_shards = 2;
  EXPECT_EQ(engine::ShardedTopkEngine::Recover(fewer).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine::ShardedTopkEngine::Recover(opts).ok());
}

// ---------------------------------------------------------------------------
// Snapshot serving (OpenSnapshot: read-only mmap shards, zero-copy reads)

/// Byte image of every shard file, for asserting the snapshot never writes.
std::vector<std::string> ShardFileImages(const engine::EngineOptions& opts) {
  std::vector<std::string> images;
  for (std::uint32_t i = 0; i < opts.num_shards; ++i) {
    std::ifstream in(opts.ShardEm(i).path, std::ios::binary);
    images.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    EXPECT_FALSE(images.back().empty());
  }
  return images;
}

TEST(SnapshotServingTest, OracleIdenticalQueriesWithoutWrites) {
  TempDir dir("snap");
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();

  Rng rng(41);
  auto points = MakePoints(&rng, 2000);
  auto queries = MakeQueries(&rng, 300);
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Checkpoint().ok());
  }  // restart: the snapshot serves the files alone

  const auto images_before = ShardFileImages(opts);
  auto snap = engine::ShardedTopkEngine::OpenSnapshot(opts);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto& eng = *snap;
  EXPECT_TRUE(eng->snapshot());
  EXPECT_EQ(eng->size(), points.size());
  eng->CheckInvariants();

  // Every query answers exactly as a plain index over the point set would
  // — the borrowed zero-copy read path returns the same bytes.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto r = eng->TopK(queries[i].x1, queries[i].x2, queries[i].k);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, internal::NaiveTopK(points, queries[i].x1, queries[i].x2,
                                      queries[i].k))
        << "query " << i;
  }
  // The zero-copy path actually engaged (mmap shards borrow their reads).
  EXPECT_GT(eng->AggregatedIoStats().borrows, 0u);

  // Concurrent readers: oracle-identical under contention, replicas shared.
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (std::size_t i = t; i < queries.size(); i += 2) {
        auto r = eng->TopK(queries[i].x1, queries[i].x2, queries[i].k);
        if (!r.ok() ||
            *r != internal::NaiveTopK(points, queries[i].x1, queries[i].x2,
                                      queries[i].k)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Read-only contract: every mutation path refuses...
  EXPECT_EQ(eng->Insert(Point{5e6, 9.0}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(eng->Delete(points[0]).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(eng->Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(eng->Rebalance().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(eng->MaybeRebalance());
  std::vector<engine::Request> batch;
  batch.push_back(engine::Request::MakeInsert(Point{5e6, 9.0}));
  batch.push_back(engine::Request::MakeTopk(0.0, 1e6, 5));
  std::vector<engine::Response> out;
  eng->ExecuteBatch(batch, &out);
  EXPECT_EQ(out[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(out[1].points, internal::NaiveTopK(points, 0.0, 1e6, 5));

  // ...and the files' bytes are untouched by all of the above.
  EXPECT_EQ(ShardFileImages(opts), images_before);

  // A live engine can still Recover() from the same (unmodified) directory
  // and accept updates — after the snapshot closes (the serving contract:
  // the files stay quiescent while a snapshot is open).
  snap->reset();
  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE((*recovered)->Insert(Point{5e6, 9.0}).ok());
  (*recovered)->CheckInvariants();
}

// ---------------------------------------------------------------------------
// Write-ahead logging: point-in-time recovery of acknowledged updates.

/// Applies `reqs` through ExecuteBatch and asserts every response OK —
/// i.e. every update in the batch was ACKNOWLEDGED. One call = one WAL
/// group commit per touched shard.
void MustBatch(engine::ShardedTopkEngine* eng,
               const std::vector<engine::Request>& reqs) {
  std::vector<engine::Response> out;
  eng->ExecuteBatch(reqs, &out);
  for (const auto& r : out) ASSERT_TRUE(r.status.ok()) << r.status.ToString();
}

/// The 10k-query oracle: the engine's every answer must match the naive
/// reference over the expected point set.
void ExpectMatchesOracle(engine::ShardedTopkEngine* eng,
                         std::vector<Point> expected, std::size_t n_queries) {
  ASSERT_EQ(eng->size(), expected.size());
  Rng qrng(99);
  auto queries = MakeQueries(&qrng, n_queries);
  for (const Query& q : queries) {
    auto r = eng->TopK(q.x1, q.x2, q.k);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, internal::NaiveTopK(expected, q.x1, q.x2, q.k));
  }
  eng->CheckInvariants();
}

// The headline contract: a crash (process death without flush) at any point
// after an update batch was acknowledged under durability=kWal loses zero
// acknowledged updates, across checkpoints, direct ops, and batches.
TEST(WalRecoveryTest, CrashBetweenCheckpointsLosesNothing) {
  TempDir dir("wal-crash");
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(31);
  auto points = MakePoints(&rng, 1200);
  std::vector<Point> expected = points;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto& eng = *built;
    // Interval 1: direct ops on top of Build's automatic checkpoint.
    for (int i = 0; i < 150; ++i) {
      Point p{2e6 + i, 2.0 + i * 1e-3};
      ASSERT_TRUE(eng->Insert(p).ok());
      expected.push_back(p);
    }
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(eng->Delete(points[i]).ok());
    }
    expected.erase(expected.begin(), expected.begin() + 60);
    // A mid-stream checkpoint, then more acknowledged batches after it.
    ASSERT_TRUE(eng->Checkpoint().ok());
    std::vector<engine::Request> batch;
    for (int i = 0; i < 200; ++i) {
      Point p{3e6 + i, 4.0 + i * 1e-3};
      batch.push_back(engine::Request::MakeInsert(p));
      expected.push_back(p);
    }
    for (int i = 60; i < 90; ++i) {
      batch.push_back(engine::Request::MakeDelete(points[i]));
    }
    MustBatch(eng.get(), batch);
    expected.erase(expected.begin(), expected.begin() + 30);
  }  // destroyed WITHOUT a final checkpoint: dirty pools die = SIGKILL

  engine::RecoveryReport report;
  auto recovered = engine::ShardedTopkEngine::Recover(opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(report.replayed_records, 0u);
  EXPECT_GT(report.replayed_ops, 0u);
  ExpectMatchesOracle(recovered->get(), expected, 2000);

  // The recovered engine keeps the guarantee: more acknowledged updates,
  // another crash, another loss-free recovery — without any checkpoint in
  // between.
  for (int i = 0; i < 40; ++i) {
    Point p{4e6 + i, 6.0 + i * 1e-3};
    ASSERT_TRUE((*recovered)->Insert(p).ok());
    expected.push_back(p);
  }
  recovered->reset();
  auto again = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ExpectMatchesOracle(again->get(), expected, 500);
}

// Corruption: a byte flip inside the last acknowledged batch's log frame.
// Recovery must keep the intact prefix (earlier acknowledged batches),
// drop the torn record, and still serve the 10k-query oracle for the
// surviving committed state.
TEST(WalRecoveryTest, FlippedByteDropsOnlyTheTornRecord) {
  TempDir dir("wal-flip");
  engine::EngineOptions opts;
  opts.num_shards = 1;
  opts.threads = 1;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(32);
  auto points = MakePoints(&rng, 800);
  std::vector<Point> surviving = points;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    std::vector<engine::Request> a, b;
    for (int i = 0; i < 50; ++i) {
      Point p{2e6 + i, 2.0 + i * 1e-3};
      a.push_back(engine::Request::MakeInsert(p));
      surviving.push_back(p);
    }
    for (int i = 0; i < 40; ++i) {
      b.push_back(engine::Request::MakeInsert(Point{3e6 + i, 4.0 + i * 1e-3}));
    }
    MustBatch(built->get(), a);  // the record that must survive
    MustBatch(built->get(), b);  // the record the corruption tears
  }
  // Flip one byte inside the LAST logical record's frame.
  const std::string wal_path = dir.File("shard-0.wal");
  std::uint64_t tear_offset = 0;
  {
    auto reader = em::WalReader::Open(wal_path, opts.em.block_words);
    ASSERT_TRUE(reader.ok());
    const auto& recs = (*reader)->records();
    auto it = std::find_if(recs.rbegin(), recs.rend(), [](const auto& r) {
      return r.type == em::WriteAheadLog::RecordType::kLogical;
    });
    ASSERT_NE(it, recs.rend());
    tear_offset =
        (it->first_block * opts.em.block_words + 5) * sizeof(em::word_t);
  }
  {
    std::fstream f(wal_path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(tear_offset));
    char c = 0;
    f.read(&c, 1);
    c ^= 0x10;
    f.seekp(static_cast<std::streamoff>(tear_offset));
    f.write(&c, 1);
  }

  engine::RecoveryReport report;
  auto recovered = engine::ShardedTopkEngine::Recover(opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(report.replayed_records, 0u);  // batch A replayed
  ExpectMatchesOracle(recovered->get(), surviving, 10000);
}

// Corruption: the log sheared mid-frame (truncated write). Same contract.
TEST(WalRecoveryTest, ShearedLogRecoversThePrefix) {
  TempDir dir("wal-shear");
  engine::EngineOptions opts;
  opts.num_shards = 1;
  opts.threads = 1;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(33);
  auto points = MakePoints(&rng, 600);
  std::vector<Point> surviving = points;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    std::vector<engine::Request> a, b;
    for (int i = 0; i < 30; ++i) {
      Point p{2e6 + i, 2.0 + i * 1e-3};
      a.push_back(engine::Request::MakeInsert(p));
      surviving.push_back(p);
    }
    for (int i = 0; i < 64; ++i) {
      b.push_back(engine::Request::MakeInsert(Point{3e6 + i, 4.0 + i * 1e-3}));
    }
    MustBatch(built->get(), a);
    MustBatch(built->get(), b);
  }
  // Shear inside the last logical frame: keep its first block, lose the
  // rest (64 inserts span several log blocks).
  const std::string wal_path = dir.File("shard-0.wal");
  {
    auto reader = em::WalReader::Open(wal_path, opts.em.block_words);
    ASSERT_TRUE(reader.ok());
    const auto& recs = (*reader)->records();
    auto it = std::find_if(recs.rbegin(), recs.rend(), [](const auto& r) {
      return r.type == em::WriteAheadLog::RecordType::kLogical;
    });
    ASSERT_NE(it, recs.rend());
    fs::resize_file(wal_path, (it->first_block + 1) * opts.em.block_words *
                                  sizeof(em::word_t));
  }
  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectMatchesOracle(recovered->get(), surviving, 2000);
}

// Checkpoints stamp the covered LSN and truncate the log behind it: the
// steady-state log is bounded by one checkpoint interval, not by history.
TEST(WalRecoveryTest, CheckpointTruncatesAndBoundsTheLog) {
  TempDir dir("wal-trunc");
  engine::EngineOptions opts;
  opts.num_shards = 1;
  opts.threads = 1;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.em.wal_rotate_blocks = 4;  // rotate aggressively so size is visible
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(34);
  auto built = engine::ShardedTopkEngine::Build(MakePoints(&rng, 400), opts);
  ASSERT_TRUE(built.ok());
  const std::string wal_path = dir.File("shard-0.wal");
  const std::uint64_t block_bytes = opts.em.block_words * sizeof(em::word_t);
  std::uint64_t last_lsn = 0;
  for (int round = 0; round < 4; ++round) {
    std::vector<engine::Request> batch;
    for (int i = 0; i < 40; ++i) {
      batch.push_back(engine::Request::MakeInsert(
          Point{2e6 + round * 100 + i, 2.0 + round + i * 1e-3}));
    }
    MustBatch(built->get(), batch);
    EXPECT_GT(fs::file_size(wal_path), opts.em.wal_rotate_blocks * block_bytes);
    std::vector<std::uint64_t> lsns;
    ASSERT_TRUE((*built)->Checkpoint(&lsns).ok());
    ASSERT_EQ(lsns.size(), 1u);
    EXPECT_GT(lsns[0], last_lsn);  // the stamp advances every interval
    last_lsn = lsns[0];
    // Truncation rotated the now-obsolete segment down to its header.
    EXPECT_EQ(fs::file_size(wal_path), block_bytes);
  }
}

// Rebalance under WAL: the rebuilt shards adopt the existing logs by
// stamping their heads, so acknowledged updates before AND after the
// rebalance survive a crash — including when the crash interrupts the
// rename commit and Recover() must roll the topology forward first.
TEST(WalRecoveryTest, RebalanceAdoptsLogsAndReplaysAcrossRollForward) {
  TempDir dir("wal-rebalance");
  engine::EngineOptions opts;
  opts.num_shards = 3;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(35);
  auto points = MakePoints(&rng, 900);
  std::vector<Point> expected = points;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    auto& eng = *built;
    for (int i = 0; i < 200; ++i) {  // skewed tail-shard inserts, logged
      Point p{2e6 + i, 2.0 + i * 1e-3};
      ASSERT_TRUE(eng->Insert(p).ok());
      expected.push_back(p);
    }
    ASSERT_TRUE(eng->Rebalance().ok());
    for (int i = 0; i < 120; ++i) {  // post-rebalance acknowledged updates
      Point p{3e6 + i, 4.0 + i * 1e-3};
      ASSERT_TRUE(eng->Insert(p).ok());
      expected.push_back(p);
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(eng->Delete(points[i]).ok());
    }
    expected.erase(expected.begin(), expected.begin() + 50);
  }  // crash

  // Plain crash after a committed rebalance: recover and verify.
  {
    engine::RecoveryReport report;
    auto recovered = engine::ShardedTopkEngine::Recover(opts, &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_GT(report.replayed_records, 0u);
    ExpectMatchesOracle(recovered->get(), expected, 2000);
    // Leave the directory exactly as recovered + checkpointed for the
    // forged mid-rename stage below.
    ASSERT_TRUE((*recovered)->Checkpoint().ok());
    for (int i = 0; i < 30; ++i) {  // a fresh acknowledged tail
      Point p{5e6 + i, 8.0 + i * 1e-3};
      ASSERT_TRUE((*recovered)->Insert(p).ok());
      expected.push_back(p);
    }
    ASSERT_TRUE((*recovered)->Rebalance().ok());
  }  // crash again, now with a committed second rebalance on disk

  // Forge the mid-rename crash: shard 1's committed file moved back to the
  // side name, an old-generation stand-in at the live name. Recover() must
  // roll the topology forward and still replay shard tails.
  const std::string live = dir.File("shard-1.tokra");
  const std::string side = live + ".rebuild";
  fs::rename(live, side);
  {
    em::EmOptions em = opts.em;
    em.backend = em::Backend::kFile;
    em.path = live;
    em::Pager pager(em);
    auto idx = core::TopkIndex::Build(&pager, {});
    ASSERT_TRUE(idx.ok());
    const std::uint64_t extra[4] = {0, opts.num_shards, 0 /* old gen */,
                                    em::kNullBlock /* no fence */};
    ASSERT_TRUE((*idx)->Checkpoint(extra).ok());
  }
  engine::RecoveryReport report;
  auto recovered = engine::ShardedTopkEngine::Recover(opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.rolled_forward_rebalance);
  EXPECT_FALSE(fs::exists(side));
  ExpectMatchesOracle(recovered->get(), expected, 2000);
}

// A read-only snapshot must refuse a directory whose log still holds
// acknowledged-but-unreplayed updates (serving it would hide them); after
// Recover() + Checkpoint() the same directory serves cleanly.
TEST(WalRecoveryTest, SnapshotRefusesUnreplayedTail) {
  TempDir dir("wal-snap");
  engine::EngineOptions opts;
  opts.num_shards = 2;
  opts.threads = 1;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(36);
  auto points = MakePoints(&rng, 500);
  std::vector<Point> expected = points;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    for (int i = 0; i < 80; ++i) {
      Point p{2e6 + i, 2.0 + i * 1e-3};
      ASSERT_TRUE((*built)->Insert(p).ok());
      expected.push_back(p);
    }
  }  // crash with a log tail
  auto snap = engine::ShardedTopkEngine::OpenSnapshot(opts);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);
  // Recovering with the log switched off would silently discard the
  // acknowledged tail: refused for the same reason.
  engine::EngineOptions no_wal = opts;
  no_wal.durability = engine::Durability::kCheckpoint;
  EXPECT_EQ(engine::ShardedTopkEngine::Recover(no_wal).status().code(),
            StatusCode::kFailedPrecondition);

  {
    auto recovered = engine::ShardedTopkEngine::Recover(opts);
    ASSERT_TRUE(recovered.ok());
    ASSERT_TRUE((*recovered)->Checkpoint().ok());
  }
  auto served = engine::ShardedTopkEngine::OpenSnapshot(opts);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ExpectMatchesOracle(served->get(), expected, 500);
}

// The decode path is the replication wire format: malformed records —
// including a count crafted so 1 + 3*count wraps modulo 2^64 to the real
// payload size — must come back as errors, never reach the vector
// constructor (std::length_error -> terminate).
TEST(WalRecoveryTest, DecodeRejectsMalformedRecords) {
  EXPECT_FALSE(engine::DecodeWalOps({}).ok());
  const std::vector<em::word_t> short_rec{3, 1, 0, 0};
  EXPECT_FALSE(engine::DecodeWalOps(short_rec).ok());
  std::vector<em::word_t> wrap(5, 0);
  wrap[0] = em::word_t{4} * 0xAAAAAAAAAAAAAAABULL;  // 1 + 3*count == 5 mod 2^64
  EXPECT_FALSE(engine::DecodeWalOps(wrap).ok());
  std::vector<em::word_t> bad_kind{1, 2, 0, 0};  // op kind must be 0/1
  EXPECT_FALSE(engine::DecodeWalOps(bad_kind).ok());

  const engine::WalOp op{true, Point{1.5, 2.5}};
  auto dec = engine::DecodeWalOps(engine::EncodeWalOps({&op, 1}));
  ASSERT_TRUE(dec.ok());
  ASSERT_EQ(dec->size(), 1u);
  EXPECT_TRUE((*dec)[0].insert);
  EXPECT_EQ((*dec)[0].p, op.p);
}


// A shipped snapshot can arrive without its logs (the DESIGN §9.5 recipe
// ships shard files first), or a log can be recreated out-of-band. The
// superblock stamp is then AHEAD of the fresh log; recovery must
// fast-forward the log's LSN space past the stamp, or every update
// acknowledged from now on would sort below it and be silently ignored by
// the next recovery.
TEST(WalRecoveryTest, MissingLogFastForwardsPastTheStamp) {
  TempDir dir("wal-missing-log");
  engine::EngineOptions opts;
  opts.num_shards = 2;
  opts.threads = 1;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(37);
  auto points = MakePoints(&rng, 500);
  std::vector<Point> expected = points;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    // Drive the head LSN well past anything the post-loss appends reach.
    for (int i = 0; i < 120; ++i) {
      Point p{2e6 + i, 2.0 + i * 1e-3};
      ASSERT_TRUE((*built)->Insert(p).ok());
      expected.push_back(p);
    }
    std::vector<std::uint64_t> lsns;
    ASSERT_TRUE((*built)->Checkpoint(&lsns).ok());
    ASSERT_GT(lsns[1], 50u);  // the stamp the lost log must be pushed past
  }
  // The logs vanish in shipping.
  ASSERT_TRUE(fs::remove(dir.File("shard-0.wal")));
  ASSERT_TRUE(fs::remove(dir.File("shard-1.wal")));

  // Recovery accepts the stamped-checkpoint state (nothing uncovered was
  // lost with the logs) and re-arms the guarantee...
  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  for (int i = 0; i < 50; ++i) {
    Point p{3e6 + i, 4.0 + i * 1e-3};
    ASSERT_TRUE((*recovered)->Insert(p).ok());
    expected.push_back(p);
  }
  recovered->reset();  // crash
  // ...so the freshly acknowledged updates survive the next crash.
  engine::RecoveryReport report;
  auto again = engine::ShardedTopkEngine::Recover(opts, &report);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(report.replayed_ops, 50u);
  ExpectMatchesOracle(again->get(), expected, 1000);
}


// With the WAL enabled, the logical I/O counts — pre-image reads and log
// appends included — stay identical across every backend: the counting
// still lives in the base layers, never in backend code.
TEST(BackendParityTest, IdenticalIoCountsWithWalEnabled) {
  TempDir dir("wal-parity");
  auto run = [&](const std::string& tag, em::Backend backend) -> em::IoStats {
    em::EmOptions opts{.block_words = 64, .pool_frames = 16};
    opts.backend = backend;
    if (backend != em::Backend::kMem) {
      opts.path = dir.File(tag + ".blk");
    }
    opts.wal_path = dir.File(tag + ".wal");
    em::Pager pager(opts);
    Rng rng(44);
    auto points = MakePoints(&rng, 800);
    auto built = core::TopkIndex::Build(&pager, points);
    TOKRA_CHECK(built.ok());
    auto& idx = *built;
    TOKRA_CHECK((*built)->Checkpoint().ok());  // arm the pre-image guards
    auto queries = MakeQueries(&rng, 100);
    for (const Query& q : queries) {
      pager.DropCache();
      TOKRA_CHECK(idx->TopK(q.x1, q.x2, q.k).ok());
    }
    for (int i = 0; i < 100; ++i) {
      TOKRA_CHECK(idx->Insert(Point{2e6 + i, 2.0 + i * 1e-3}).ok());
      TOKRA_CHECK(idx->Delete(points[i]).ok());
    }
    pager.FlushAll();
    TOKRA_CHECK(pager.stats().wal_appends > 0);
    return pager.stats();
  };
  const em::IoStats mem = run("mem", em::Backend::kMem);
  for (auto [tag, backend] :
       {std::pair{"file", em::Backend::kFile},
        std::pair{"uring", em::Backend::kUring},
        std::pair{"mmap", em::Backend::kMmap}}) {
    const em::IoStats got = run(tag, backend);
    EXPECT_EQ(mem.reads, got.reads) << tag;
    EXPECT_EQ(mem.writes, got.writes) << tag;
    EXPECT_EQ(mem.pool_hits, got.pool_hits) << tag;
    EXPECT_EQ(mem.pool_misses, got.pool_misses) << tag;
    EXPECT_EQ(mem.evictions, got.evictions) << tag;
    EXPECT_EQ(mem.wal_appends, got.wal_appends) << tag;
    EXPECT_EQ(mem.fsyncs, got.fsyncs) << tag;
  }
}


TEST(SnapshotServingTest, RequiresStorageDirAndCheckpointedShards) {
  engine::EngineOptions opts;
  opts.num_shards = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  EXPECT_EQ(engine::ShardedTopkEngine::OpenSnapshot(opts).status().code(),
            StatusCode::kInvalidArgument);

  TempDir dir("snap-missing");
  opts.storage_dir = dir.path();
  // No shard files at all: Pager::Open's NotFound propagates.
  EXPECT_FALSE(engine::ShardedTopkEngine::OpenSnapshot(opts).ok());

  // A checkpointed directory opened with the wrong shard count is refused.
  Rng rng(43);
  {
    auto built = engine::ShardedTopkEngine::Build(MakePoints(&rng, 300), opts);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Checkpoint().ok());
  }
  engine::EngineOptions wrong = opts;
  wrong.num_shards = 1;
  EXPECT_FALSE(engine::ShardedTopkEngine::OpenSnapshot(wrong).ok());
  ASSERT_TRUE(engine::ShardedTopkEngine::OpenSnapshot(opts).ok());
}

// --- fence persistence (DESIGN.md §11) --------------------------------------
// Pruning fences ride the checkpoint as root 4; these tests pin the contract
// that a recovered / snapshot / rebalanced engine prunes from a fence that is
// exact for the live point set (CheckInvariants cross-checks it point by
// point).

/// Scores monotone in x: wide top-k answers live in the high-x shards, so a
/// working fence provably prunes and a stale one provably misanswers.
std::vector<Point> MonotonePersistPoints(Rng* rng, std::size_t n) {
  auto xs = rng->DistinctDoubles(n, 0.0, 1e6);
  std::sort(xs.begin(), xs.end());
  auto scores = rng->DistinctDoubles(n, 0.0, 1.0);
  std::sort(scores.begin(), scores.end());
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) pts[i] = Point{xs[i], scores[i]};
  return pts;
}

TEST(EnginePersistenceTest, FenceRoundTripsThroughCheckpointRecover) {
  TempDir dir("engine-fence");
  engine::EngineOptions opts;
  opts.num_shards = 8;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();

  Rng rng(71);
  auto points = MonotonePersistPoints(&rng, 1600);
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Checkpoint().ok());
  }

  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto& eng = *recovered;
  eng->CheckInvariants();  // fence must be exact for the recovered set

  std::uint64_t pruned = 0;
  for (int i = 0; i < 40; ++i) {
    double a = rng.UniformDouble(0.0, 2e5);
    double b = a + 7.5e5;
    std::uint64_t k = 1 + rng.Uniform(20);
    engine::EngineQueryStats stats;
    auto got = eng->TopK(a, b, k, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, internal::NaiveTopK(points, a, b, k));
    pruned += stats.shards_pruned;
  }
  EXPECT_GT(pruned, 0u) << "recovered engine never pruned: fence not loaded";
}

// Post-checkpoint WAL-only updates must be replayed into the fence too: the
// crash-surviving insert carries the new global-best score, so a fence that
// missed the replay would let the router prune its shard and drop it.
TEST(WalRecoveryTest, ReplayUpdatesFence) {
  TempDir dir("wal-fence");
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();
  opts.durability = engine::Durability::kWal;

  Rng rng(72);
  auto points = MonotonePersistPoints(&rng, 800);
  const Point champion{1.0, 50.0};  // lowest-x shard, highest score anywhere
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Checkpoint().ok());
    ASSERT_TRUE((*built)->Insert(champion).ok());
    ASSERT_TRUE((*built)->Delete(points[700]).ok());
  }  // destroyed without a second Checkpoint: WAL tail holds both ops

  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto& eng = *recovered;
  eng->CheckInvariants();  // counts would mismatch if replay skipped the fence
  auto top = eng->TopK(-kInf, kInf, 1);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_EQ(top->front(), champion);
}

// Rebalance rebuilds fences for the new split; the rebuilt engine must keep
// pruning correctly, both live and after recovering its committed state.
TEST(EnginePersistenceTest, RebalanceRebuildsFences) {
  TempDir dir("engine-fence-rebal");
  engine::EngineOptions opts;
  opts.num_shards = 4;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();

  Rng rng(73);
  auto points = MonotonePersistPoints(&rng, 900);
  std::vector<Point> live = points;
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    auto& eng = *built;
    ASSERT_TRUE(eng->Checkpoint().ok());
    for (int i = 0; i < 300; ++i) {
      Point p{2e6 + i, 10.0 + i * 1e-3};
      ASSERT_TRUE(eng->Insert(p).ok());
      live.push_back(p);
    }
    ASSERT_TRUE(eng->Rebalance().ok());
    eng->CheckInvariants();  // side-built fences exact for the new split
    engine::EngineQueryStats stats;
    auto got = eng->TopK(-kInf, kInf, 10, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, internal::NaiveTopK(live, -kInf, kInf, 10));
    EXPECT_GT(stats.shards_pruned, 0u);
  }  // no post-rebalance Checkpoint: the rebalance committed its own

  auto recovered = engine::ShardedTopkEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  (*recovered)->CheckInvariants();
  auto got = (*recovered)->TopK(-kInf, kInf, 25);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, internal::NaiveTopK(live, -kInf, kInf, 25));
}

// Snapshot serving loads the checkpointed fence and prunes read-only.
TEST(SnapshotServingTest, SnapshotPrunesWithCheckpointedFence) {
  TempDir dir("snap-fence");
  engine::EngineOptions opts;
  opts.num_shards = 8;
  opts.threads = 2;
  opts.em = em::EmOptions{.block_words = 64, .pool_frames = 16};
  opts.storage_dir = dir.path();

  Rng rng(74);
  auto points = MonotonePersistPoints(&rng, 1600);
  {
    auto built = engine::ShardedTopkEngine::Build(points, opts);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Checkpoint().ok());
  }

  auto snap = engine::ShardedTopkEngine::OpenSnapshot(opts);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  std::uint64_t pruned = 0;
  for (int i = 0; i < 40; ++i) {
    double a = rng.UniformDouble(0.0, 2e5);
    double b = a + 7.5e5;
    std::uint64_t k = 1 + rng.Uniform(20);
    engine::EngineQueryStats stats;
    auto got = (*snap)->TopK(a, b, k, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, internal::NaiveTopK(points, a, b, k));
    pruned += stats.shards_pruned;
  }
  EXPECT_GT(pruned, 0u) << "snapshot never pruned: fence not loaded";
}

// ---------------------------------------------------------------------------
// COW epoch checkpoints (DESIGN.md §14): pinned-epoch stability, retirement
// space accounting, and crash recovery between publish and retirement.

em::EmOptions CowOpts(const std::string& path) {
  return em::EmOptions{.block_words = 16,
                       .pool_frames = 8,
                       .backend = em::Backend::kFile,
                       .path = path,
                       .cow_epochs = true};
}

// A pinned epoch's view pager keeps serving the frozen checkpoint contents
// while the live pager overwrites every block and publishes newer epochs.
TEST(CowEpochTest, PinnedEpochServesFrozenContentUnderChurn) {
  TempDir dir("cow-pin");
  em::Pager pager(CowOpts(dir.File("dev.blk")));
  std::vector<em::BlockId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(pager.Allocate());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    pager.Create(ids[i]).Set(0, 1000 + i);
  }
  std::uint64_t roots[1] = {ids[0]};
  ASSERT_TRUE(pager.Checkpoint(roots).ok());
  const std::uint64_t pinned_epoch = pager.published_epoch();
  ASSERT_GT(pinned_epoch, 0u);

  // Freeze the published epoch and open a zero-copy read view on it.
  em::EpochPin pin = pager.PinEpoch();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.epoch(), pinned_epoch);
  EXPECT_EQ(pager.PinnedEpochs(), 1u);
  auto view_dev = pager.ShareReadView();
  ASSERT_NE(view_dev, nullptr);
  auto view =
      em::Pager::OpenOn(std::move(view_dev), CowOpts(dir.File("dev.blk")));
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // Churn the live pager across several newer epochs: every block gets a
  // new value, twice, with a publish in between.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      pager.Fetch(ids[i]).Set(0, 5000 + round * 1000 + i);
    }
    ASSERT_TRUE(pager.Checkpoint(roots).ok());
  }
  ASSERT_GT(pager.published_epoch(), pinned_epoch);

  // The view still reads the pinned epoch's bytes; the live pager reads
  // the newest. Same block names, different physical locations (COW).
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*view)->Fetch(ids[i]).Get(0), 1000 + i);
    EXPECT_EQ(pager.Fetch(ids[i]).Get(0), 6000 + i);
  }
  // While the pin is held, superseded blocks park instead of recycling.
  EXPECT_GT(pager.Space().retiring_blocks, 0u);

  view->reset();  // close handles before releasing the pin
  pin.Release();
  EXPECT_EQ(pager.PinnedEpochs(), 0u);
}

// Superseded blocks return to the free list once no pin can reach them:
// steady-state churn does not grow the file, and after the pins are gone
// allocated/free space returns to the post-baseline shape.
TEST(CowEpochTest, RetirementReturnsSpaceToBaseline) {
  TempDir dir("cow-retire");
  em::Pager pager(CowOpts(dir.File("dev.blk")));
  std::vector<em::BlockId> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(pager.Allocate());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    pager.Create(ids[i]).Set(0, i);
  }
  std::uint64_t roots[1] = {ids[0]};
  ASSERT_TRUE(pager.Checkpoint(roots).ok());
  const em::SpaceStats baseline = pager.Space();

  // Pin the baseline epoch, churn several epochs: the superseded blocks
  // must all park (the pin reaches every one of them).
  {
    em::EpochPin pin = pager.PinEpoch();
    for (int round = 0; round < 3; ++round) {
      for (em::BlockId id : ids) pager.Fetch(id).Set(0, 100 + round);
      ASSERT_TRUE(pager.Checkpoint(roots).ok());
    }
    EXPECT_GT(pager.Space().retiring_blocks, 0u);
    EXPECT_EQ(pager.Space().allocated_blocks, baseline.allocated_blocks);
  }
  // Pin released: the next publish drains the parked batches back to the
  // free list and the retirement counter advances.
  ASSERT_TRUE(pager.Checkpoint(roots).ok());
  EXPECT_EQ(pager.Space().retiring_blocks, 0u);
  EXPECT_GT(pager.retired_blocks_total(), 0u);
  EXPECT_EQ(pager.Space().allocated_blocks, baseline.allocated_blocks);

  // Steady-state churn with no pins is space-bounded: the file high-water
  // mark stops growing once the recycle loop is primed.
  for (int round = 0; round < 3; ++round) {
    for (em::BlockId id : ids) pager.Fetch(id).Set(0, 200 + round);
    ASSERT_TRUE(pager.Checkpoint(roots).ok());
  }
  const std::uint64_t primed = pager.Space().file_blocks;
  for (int round = 0; round < 8; ++round) {
    for (em::BlockId id : ids) pager.Fetch(id).Set(0, 300 + round);
    ASSERT_TRUE(pager.Checkpoint(roots).ok());
  }
  EXPECT_EQ(pager.Space().file_blocks, primed)
      << "COW churn must recycle retired blocks, not grow the device";
}

// Crash between epoch publish and retirement: a checkpoint persists every
// parked-for-retirement location as free (recovery has no pins), so a copy
// of the device taken while a pin was blocking retirement reopens with the
// full space recovered and byte-identical content.
TEST(CowEpochTest, CrashBetweenPublishAndRetirementRecovers) {
  TempDir dir("cow-crash");
  em::Pager pager(CowOpts(dir.File("dev.blk")));
  std::vector<em::BlockId> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(pager.Allocate());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    pager.Create(ids[i]).Set(0, 1000 + i);
  }
  std::uint64_t roots[2] = {ids[0], 77};
  ASSERT_TRUE(pager.Checkpoint(roots).ok());
  const em::SpaceStats baseline = pager.Space();

  em::EpochPin pin = pager.PinEpoch();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    pager.Fetch(ids[i]).Set(0, 2000 + i);
  }
  ASSERT_TRUE(pager.Checkpoint(roots).ok());  // publish; retirement blocked
  ASSERT_GT(pager.Space().retiring_blocks, 0u);

  // "Crash": the checkpoint is durable, so the file as it sits on disk is
  // exactly what a post-crash recovery reads. Copy it out from under the
  // live pager (which still holds the pin) and reopen the copy.
  const std::string crash_path = dir.File("crash.blk");
  fs::copy_file(dir.File("dev.blk"), crash_path);
  auto reopened = em::Pager::Open(CowOpts(crash_path));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  em::Pager& rec = **reopened;
  EXPECT_TRUE(rec.cow_epochs());
  ASSERT_EQ(rec.roots().size(), 2u);
  EXPECT_EQ(rec.roots()[1], 77u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(rec.Fetch(ids[i]).Get(0), 2000 + i);
  }
  // The blocks the crash caught mid-retirement came back as free space:
  // nothing parks forever, nothing leaks, live count matches the source.
  EXPECT_EQ(rec.Space().retiring_blocks, 0u);
  EXPECT_EQ(rec.Space().allocated_blocks, baseline.allocated_blocks);
  EXPECT_GE(rec.Space().free_blocks, baseline.free_blocks);
  // Recovered allocator still hands out sound names: fresh allocations
  // never collide with a live block.
  for (int i = 0; i < 32; ++i) {
    em::BlockId fresh = rec.Allocate();
    for (em::BlockId id : ids) ASSERT_NE(fresh, id);
    rec.Create(fresh).Set(0, 9);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(rec.Fetch(ids[i]).Get(0), 2000 + i);
  }
  pin.Release();
}

}  // namespace
}  // namespace tokra
