// E10 — the Frederickson substitution ablation (Section 1.1 / DESIGN.md):
// heap-selection strategy changes CPU comparisons only; node visits (hence
// I/Os) are what the query bound spends, and best-first keeps them at
// O(t + roots). The internal-memory treap PST is included as the RAM
// baseline the paper's intro describes.

#include "bench/common.h"
#include "internal/pst.h"
#include "pilot/pilot_pst.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e10_select");
  std::printf("# E10: selection ablation + internal-memory baseline\n");
  Header("pilot PST query internals vs k (n=2^16, B=128)",
         {"k", "reps selected t", "heap nodes visited", "comparisons",
          "visited / t"});
  em::Pager pager(em::EmOptions{.block_words = 128, .pool_frames = 64});
  Rng rng(12);
  const std::size_t n = 1u << 16;
  auto pts = RandomPoints(&rng, n);
  auto pst = pilot::PilotPst::Build(&pager, pts);
  for (std::uint64_t k : {16u, 256u, 4096u, 65536u}) {
    pilot::QueryStats stats;
    pst.TopK(1e5, 9e5, k, &stats).value();
    double ratio = stats.reps_selected == 0
                       ? 0
                       : static_cast<double>(stats.heap_nodes_visited) /
                             static_cast<double>(stats.reps_selected);
    Row({U(k), U(stats.reps_selected), U(stats.heap_nodes_visited),
         U(stats.comparisons), D(ratio)});
  }

  Header("internal-memory treap PST (RAM baseline, no I/O model)",
         {"k", "comparisons (best-first)", "comparisons/k"});
  internal::TreapPst ram;
  for (const Point& p : pts) Must(ram.Insert(p));
  for (std::uint64_t k : {16u, 256u, 4096u}) {
    select::SelectStats st;
    ram.TopK(1e5, 9e5, k, &st);
    Row({U(k), U(st.comparisons),
         D(static_cast<double>(st.comparisons) / k)});
  }
  std::printf(
      "\nShape check: visited/t is a small constant (selection visits O(t) "
      "nodes, so I/Os are unaffected by swapping in Frederickson's O(k)-CPU "
      "algorithm); comparisons grow O(k lg k) — CPU-free in the EM model.\n");
  return 0;
}
