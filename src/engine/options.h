// Configuration of the sharded concurrent query engine.

#ifndef TOKRA_ENGINE_OPTIONS_H_
#define TOKRA_ENGINE_OPTIONS_H_

#include <cstdint>

#include "core/topk_index.h"
#include "em/options.h"
#include "util/check.h"

namespace tokra::engine {

/// Parameters of a ShardedTopkEngine.
///
/// Each shard is an independent TopkIndex on its own em::Pager, so the
/// per-shard EM parameters below describe one shard's simulated disk and
/// buffer pool; total pool memory is num_shards * em.pool_frames frames.
struct EngineOptions {
  /// Number of key-range shards. Each holds ~n/S points and preserves the
  /// paper's per-index bounds on its subrange.
  std::uint32_t num_shards = 4;

  /// Worker threads answering fanned-out shard subqueries and applying
  /// batched per-shard update groups.
  std::uint32_t threads = 4;

  /// EM model parameters for each shard's private pager.
  em::EmOptions em;

  /// Forwarded to every shard's TopkIndex.
  core::TopkIndex::Options index;

  /// MaybeRebalance() triggers when the largest shard exceeds this multiple
  /// of the average shard size (and rebalance_min_points is met).
  double rebalance_skew = 4.0;

  /// Minimum total points before skew-triggered rebalancing kicks in;
  /// below this, imbalance is noise.
  std::uint64_t rebalance_min_points = 1024;

  void Validate() const {
    TOKRA_CHECK(num_shards >= 1);
    TOKRA_CHECK(threads >= 1);
    TOKRA_CHECK(rebalance_skew > 1.0);
    em.Validate();
  }
};

}  // namespace tokra::engine

#endif  // TOKRA_ENGINE_OPTIONS_H_
