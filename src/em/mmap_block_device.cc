#include "em/mmap_block_device.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace tokra::em {

MmapBlockDevice::MmapBlockDevice(std::uint32_t block_words,
                                 FileOptions options)
    : FileBlockDevice(block_words, std::move(options)) {
  // Read-only devices map exactly the (immutable) file; writable ones take
  // the full growth reservation. Either way the mapping is created once
  // and never remapped, which is what keeps borrowed pointers stable.
  map_len_ = read_only() ? NumBlocks() * BlockBytes() : kMapBytes;
  if (map_len_ == 0) return;  // empty read-only file: nothing to map
  // PROT_READ is enough even for a writable device: writes go through
  // pwrite and reach the mapping via the unified page cache. MAP_NORESERVE
  // keeps the growth reservation free of swap accounting.
  void* m = ::mmap(nullptr, map_len_, PROT_READ, MAP_SHARED | MAP_NORESERVE,
                   fd(), 0);
  if (m != MAP_FAILED) map_ = m;
  // mmap refused (unlikely: no-mmu, rlimits): the device still works as a
  // plain file device — SupportsBorrowedReads() reports false and every
  // read takes the inherited pread path.
}

MmapBlockDevice::~MmapBlockDevice() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
}

void MmapBlockDevice::EnsureCapacity(BlockId blocks) {
  // The reservation is fixed, so growth must stay inside it for borrowed
  // pointers to remain stable (this is ~2^32 blocks at B=256 — unreachable
  // before memory runs out, but the contract deserves a check). Read-only
  // devices cannot grow at all; the base class enforces that.
  TOKRA_CHECK(read_only() || blocks * BlockBytes() <= map_len_);
  FileBlockDevice::EnsureCapacity(blocks);
}

void MmapBlockDevice::DropOsCache() {
  FileBlockDevice::DropOsCache();
  if (map_ != nullptr && NumBlocks() > 0) {
    // Drop the mapped pages too: the next access refaults from the file.
    // Contents are unaffected (the file was flushed above); only where the
    // next reads are served from changes — the bench's cold-cache contract.
    ::madvise(map_, std::min(NumBlocks() * BlockBytes(), map_len_),
              MADV_DONTNEED);
  }
}

void MmapBlockDevice::DoRead(BlockId id, word_t* dst) {
  if (map_ == nullptr) {
    FileBlockDevice::DoRead(id, dst);
    return;
  }
  std::memcpy(dst, BlockPtr(id), BlockBytes());
}

void MmapBlockDevice::DoReadRun(BlockId first, std::uint32_t count,
                                word_t* dst) {
  if (map_ == nullptr) {
    FileBlockDevice::DoReadRun(first, count, dst);
    return;
  }
  std::memcpy(dst, BlockPtr(first), count * BlockBytes());
}

void MmapBlockDevice::DoReadBatch(std::span<const IoRequest> reqs) {
  // No ring to overlap on: a batch over the mapping is the memcpy loop.
  for (const IoRequest& r : reqs) DoRead(r.id, r.buf);
}

const word_t* MmapBlockDevice::DoBorrowRead(BlockId id) {
  return map_ == nullptr ? nullptr : BlockPtr(id);
}

bool MmapBlockDevice::ViewRead(BlockId id, word_t* dst) {
  if (map_ == nullptr || id >= NumBlocks()) {
    return FileBlockDevice::ViewRead(id, dst);
  }
  std::memcpy(dst, BlockPtr(id), BlockBytes());
  return true;
}

}  // namespace tokra::em
