#include "em/uring_block_device.h"

#if defined(TOKRA_HAVE_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

namespace tokra::em {
namespace {

// liburing is deliberately not a dependency: the device speaks the raw
// syscall ABI, so the backend builds anywhere <linux/io_uring.h> exists and
// the runtime probe alone decides availability.
int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

int SysUringRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg,
                                  nr_args));
}

template <typename T>
T* RingPtr(void* base, std::uint32_t off) {
  return reinterpret_cast<T*>(static_cast<char*>(base) + off);
}

}  // namespace

/// The mmap'ed submission/completion rings of one io_uring instance.
struct UringBlockDevice::Ring {
  int fd = -1;
  void* sq_ptr = MAP_FAILED;
  std::size_t sq_len = 0;
  void* cq_ptr = MAP_FAILED;  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_len = 0;
  io_uring_sqe* sqes = static_cast<io_uring_sqe*>(MAP_FAILED);
  std::size_t sqes_len = 0;

  std::uint32_t sq_entries = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  ~Ring() {
    if (sqes != MAP_FAILED) ::munmap(sqes, sqes_len);
    if (cq_ptr != MAP_FAILED && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_len);
    if (sq_ptr != MAP_FAILED) ::munmap(sq_ptr, sq_len);
    if (fd >= 0) ::close(fd);
  }
};

bool UringBlockDevice::Supported() {
  static const bool supported = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int fd = SysUringSetup(1, &p);
    if (fd < 0) return false;  // ENOSYS, seccomp EPERM, sysctl-disabled, ...
    // IORING_OP_READ/WRITE (5.6+) must be supported, which the probe
    // registration (also 5.6+) reports; an older kernel fails the probe
    // call itself and is rejected the same way. io_uring_probe ends in a
    // flexible array member, so the buffer is raw bytes.
    std::vector<char> raw(
        sizeof(io_uring_probe) + IORING_OP_LAST * sizeof(io_uring_probe_op),
        0);
    auto* probe = reinterpret_cast<io_uring_probe*>(raw.data());
    const auto* ops = reinterpret_cast<const io_uring_probe_op*>(
        raw.data() + sizeof(io_uring_probe));
    bool ok = SysUringRegister(fd, IORING_REGISTER_PROBE, probe,
                               IORING_OP_LAST) == 0 &&
              probe->last_op >= IORING_OP_WRITE &&
              (ops[IORING_OP_READ].flags & IO_URING_OP_SUPPORTED) != 0 &&
              (ops[IORING_OP_WRITE].flags & IO_URING_OP_SUPPORTED) != 0;
    ::close(fd);
    return ok;
  }();
  return supported;
}

UringBlockDevice::UringBlockDevice(std::uint32_t block_words,
                                   FileOptions options,
                                   std::uint32_t queue_depth,
                                   bool register_resources)
    : FileBlockDevice(block_words, std::move(options)),
      // Clamp to a sane ring size: IORING_MAX_ENTRIES is 32768, and depths
      // beyond a few hundred buy nothing for block-sized transfers.
      queue_depth_(std::clamp<std::uint32_t>(queue_depth, 1, 1024)),
      want_registration_(register_resources) {
  TOKRA_CHECK(Supported());
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  int ring_fd = SysUringSetup(queue_depth_, &p);
  if (ring_fd < 0) {
    // The 1-entry probe passed but the real ring was refused (e.g.
    // RLIMIT_MEMLOCK on pre-5.12 kernels). Keep the device working on the
    // inherited synchronous batch path — same contract as the
    // MakeBlockDevice fallback, just discovered one step later.
    queue_depth_ = 1;
    return;
  }
  ring_ = new Ring();
  ring_->fd = ring_fd;
  ring_->sq_entries = p.sq_entries;  // kernel rounds up to a power of two
  queue_depth_ = std::min(queue_depth_, p.sq_entries);

  ring_->sq_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  ring_->cq_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) ring_->sq_len = std::max(ring_->sq_len, ring_->cq_len);
  ring_->sq_ptr = ::mmap(nullptr, ring_->sq_len, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring_->fd,
                         IORING_OFF_SQ_RING);
  TOKRA_CHECK(ring_->sq_ptr != MAP_FAILED);
  ring_->cq_ptr = single_mmap
                      ? ring_->sq_ptr
                      : ::mmap(nullptr, ring_->cq_len, PROT_READ | PROT_WRITE,
                               MAP_SHARED | MAP_POPULATE, ring_->fd,
                               IORING_OFF_CQ_RING);
  TOKRA_CHECK(ring_->cq_ptr != MAP_FAILED);
  ring_->sqes_len = p.sq_entries * sizeof(io_uring_sqe);
  ring_->sqes = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, ring_->sqes_len, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_->fd, IORING_OFF_SQES));
  TOKRA_CHECK(ring_->sqes != MAP_FAILED);

  ring_->sq_head = RingPtr<unsigned>(ring_->sq_ptr, p.sq_off.head);
  ring_->sq_tail = RingPtr<unsigned>(ring_->sq_ptr, p.sq_off.tail);
  ring_->sq_mask = RingPtr<unsigned>(ring_->sq_ptr, p.sq_off.ring_mask);
  ring_->sq_array = RingPtr<unsigned>(ring_->sq_ptr, p.sq_off.array);
  ring_->cq_head = RingPtr<unsigned>(ring_->cq_ptr, p.cq_off.head);
  ring_->cq_tail = RingPtr<unsigned>(ring_->cq_ptr, p.cq_off.tail);
  ring_->cq_mask = RingPtr<unsigned>(ring_->cq_ptr, p.cq_off.ring_mask);
  ring_->cqes = RingPtr<io_uring_cqe>(ring_->cq_ptr, p.cq_off.cqes);

  if (want_registration_) {
    // Fixed file: SQEs then reference the fd as index 0 with
    // IOSQE_FIXED_FILE, skipping the per-op fd lookup/refcount. Probe by
    // doing: any refusal just keeps the plain-fd path.
    int f = fd();
    fixed_file_ =
        SysUringRegister(ring_->fd, IORING_REGISTER_FILES, &f, 1) == 0;
  }
}

UringBlockDevice::~UringBlockDevice() { delete ring_; }

void UringBlockDevice::RegisterIoBuffers(std::span<word_t* const> bufs) {
  if (!want_registration_ || ring_ == nullptr || bufs.empty()) return;
  if (!reg_bufs_.empty()) {
    // A second pool on the same device re-registers: the kernel allows one
    // buffer table per ring, so the newest pool wins (older pools simply
    // fall back to unregistered ops — a correctness no-op).
    SysUringRegister(ring_->fd, IORING_UNREGISTER_BUFFERS, nullptr, 0);
    reg_bufs_.clear();
  }
  // Registered in sorted address order, so a buffer's table index is its
  // binary-search position — no side map needed at submission time.
  std::vector<const word_t*> sorted(bufs.begin(), bufs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<iovec> iov(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    iov[i].iov_base = const_cast<word_t*>(sorted[i]);
    iov[i].iov_len = BlockBytes();
  }
  // Probe by doing: pre-5.12 kernels charge registered buffers against
  // RLIMIT_MEMLOCK and may refuse large pools — then the unregistered
  // path simply stays in effect.
  if (SysUringRegister(ring_->fd, IORING_REGISTER_BUFFERS, iov.data(),
                       static_cast<unsigned>(iov.size())) == 0) {
    reg_bufs_ = std::move(sorted);
  }
}

int UringBlockDevice::RegisteredBufferIndex(const word_t* buf) const {
  auto it = std::lower_bound(reg_bufs_.begin(), reg_bufs_.end(), buf);
  if (it == reg_bufs_.end() || *it != buf) return -1;
  return static_cast<int>(it - reg_bufs_.begin());
}

void UringBlockDevice::DoReadBatch(std::span<const IoRequest> reqs) {
  // A one-element batch has nothing to overlap: the ring round trip would
  // cost strictly more than the single pread. Ring submission starts where
  // batching starts. ring_ == nullptr means the real-depth setup was
  // refused after the probe passed; the sync loop keeps the contract.
  if (ring_ == nullptr || reqs.size() < 2) {
    FileBlockDevice::DoReadBatch(reqs);
    return;
  }
  RunBatch(reqs, /*is_write=*/false);
}

void UringBlockDevice::DoWriteBatch(std::span<const IoRequest> reqs) {
  if (ring_ == nullptr || reqs.size() < 2) {
    FileBlockDevice::DoWriteBatch(reqs);
    return;
  }
  RunBatch(reqs, /*is_write=*/true);
}

void UringBlockDevice::RunBatch(std::span<const IoRequest> reqs,
                                bool is_write) {
  // One Op per request; user_data is the Op index, so a short transfer can
  // be resumed at its remaining byte range (regular files essentially never
  // split block-sized transfers, but the batch must be byte-equivalent to
  // the synchronous loop even if one does).
  struct Op {
    std::uint64_t off;
    char* buf;
    std::uint32_t len;
    int buf_index;  // registered-buffer table index, -1 = unregistered
  };
  std::vector<Op> ops;
  ops.reserve(reqs.size());
  for (const IoRequest& r : reqs) {
    // The buffer index is resolved once per op (requests target frame base
    // addresses); a short-transfer resubmission advances buf within the
    // same registered iovec, which FIXED ops permit.
    ops.push_back(Op{r.id * BlockBytes(), reinterpret_cast<char*>(r.buf),
                     static_cast<std::uint32_t>(BlockBytes()),
                     reg_bufs_.empty() ? -1 : RegisteredBufferIndex(r.buf)});
  }
  std::vector<std::uint32_t> ready(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ready[i] = static_cast<std::uint32_t>(i);
  }

  std::size_t done = 0, inflight = 0;
  while (done < ops.size()) {
    // Fill the submission queue up to the configured depth.
    unsigned tail = *ring_->sq_tail;
    while (!ready.empty() && inflight < queue_depth_) {
      std::uint32_t idx = ready.back();
      ready.pop_back();
      const Op& op = ops[idx];
      unsigned slot = tail & *ring_->sq_mask;
      io_uring_sqe* sqe = &ring_->sqes[slot];
      std::memset(sqe, 0, sizeof(*sqe));
      if (op.buf_index >= 0) {
        // Registered buffer: the kernel skips the per-op page pin.
        sqe->opcode = is_write ? IORING_OP_WRITE_FIXED : IORING_OP_READ_FIXED;
        sqe->buf_index = static_cast<std::uint16_t>(op.buf_index);
      } else {
        sqe->opcode = is_write ? IORING_OP_WRITE : IORING_OP_READ;
      }
      if (fixed_file_) {
        sqe->fd = 0;  // index into the registered file table
        sqe->flags |= IOSQE_FIXED_FILE;
      } else {
        sqe->fd = fd();
      }
      sqe->addr = reinterpret_cast<std::uint64_t>(op.buf);
      sqe->len = op.len;
      sqe->off = op.off;
      sqe->user_data = idx;
      ring_->sq_array[slot] = slot;
      ++tail;
      ++inflight;
    }
    // Publish the new tail before the kernel reads it. to_submit is the
    // whole published backlog (tail minus the kernel's head), so entries a
    // previous enter() left unconsumed (e.g. EINTR) are resubmitted.
    __atomic_store_n(ring_->sq_tail, tail, __ATOMIC_RELEASE);
    unsigned to_submit =
        tail - __atomic_load_n(ring_->sq_head, __ATOMIC_ACQUIRE);

    int ret = SysUringEnter(ring_->fd, to_submit, /*min_complete=*/1,
                            IORING_ENTER_GETEVENTS);
    if (ret < 0) {
      // EINTR (signal) and EAGAIN (kernel transiently out of request
      // memory) just retry the backlog; anything else is a storage
      // failure: mark the device, wait out what is already in flight so
      // the kernel stops touching the caller's buffers, zero-fill the
      // reads that never completed, and give up on the batch.
      if (errno == EINTR || errno == EAGAIN) continue;
      RecordIoError(Status::IoError(std::string("io_uring_enter failed: ") +
                                    std::strerror(errno)));
      // Drain in-flight completions (results ignored) so no kernel write
      // into a pool frame can race whatever the caller does next.
      while (inflight > 0) {
        ret = SysUringEnter(ring_->fd, 0,
                            /*min_complete=*/static_cast<unsigned>(inflight),
                            IORING_ENTER_GETEVENTS);
        unsigned h = __atomic_load_n(ring_->cq_head, __ATOMIC_ACQUIRE);
        unsigned t = __atomic_load_n(ring_->cq_tail, __ATOMIC_ACQUIRE);
        while (h != t) {
          --inflight;
          ++h;
        }
        __atomic_store_n(ring_->cq_head, h, __ATOMIC_RELEASE);
        if (ret < 0 && errno != EINTR && errno != EAGAIN) break;
      }
      if (!is_write) {
        for (const IoRequest& r : reqs) std::memset(r.buf, 0, BlockBytes());
      }
      return;
    }

    // Reap every available completion.
    unsigned head = __atomic_load_n(ring_->cq_head, __ATOMIC_ACQUIRE);
    unsigned cq_tail = __atomic_load_n(ring_->cq_tail, __ATOMIC_ACQUIRE);
    while (head != cq_tail) {
      const io_uring_cqe& cqe = ring_->cqes[head & *ring_->cq_mask];
      std::uint32_t idx = static_cast<std::uint32_t>(cqe.user_data);
      Op& op = ops[idx];
      --inflight;
      if (cqe.res == static_cast<std::int32_t>(op.len)) {
        ++done;
      } else if (cqe.res == -EINTR || cqe.res == -EAGAIN) {
        ready.push_back(idx);  // retry whole remainder
      } else if (cqe.res <= 0) {
        // Error, or EOF inside the device (a truncated/corrupt file) —
        // same contract as FileBlockDevice::PreadFull: record the failure,
        // zero-fill the remainder of a read (contents of a failed read are
        // unspecified), abandon this transfer. The rest of the batch
        // proceeds; the sticky device status surfaces at the caller's next
        // chokepoint.
        RecordIoError(
            cqe.res < 0
                ? Status::IoError(std::string("io_uring op failed: ") +
                                  std::strerror(-cqe.res))
                : Status::IoError("unexpected EOF: " + path()));
        if (!is_write) std::memset(op.buf, 0, op.len);
        ++done;
      } else {
        // Short transfer: resume at the remaining range.
        op.off += static_cast<std::uint32_t>(cqe.res);
        op.buf += cqe.res;
        op.len -= static_cast<std::uint32_t>(cqe.res);
        ready.push_back(idx);
      }
      ++head;
    }
    __atomic_store_n(ring_->cq_head, head, __ATOMIC_RELEASE);
  }
}

}  // namespace tokra::em

#endif  // TOKRA_HAVE_URING
