#include "em/pager.h"

#include <cstdio>
#include <filesystem>

#include "obs/metrics.h"
#include "util/bits.h"

namespace tokra::em {
namespace {

// Superblock word layout. Roots follow the header; the serialized
// allocator stream follows the roots — free-list ids, then the COW
// name->location map as (name, location) pairs — spilling into whole
// blocks claimed from the allocator when it outgrows the superblock (the
// region is reserved — recorded in the superblock and returned to the free
// list only when the *next* checkpoint supersedes it — so post-checkpoint
// allocations can never overwrite the spill a recovery would read).
//
// Two superblock slots (blocks 0 and 1) alternate by epoch, and each slot
// carries a checksum: a crash mid-checkpoint — even a torn superblock
// write — leaves the previous slot intact, so Open() always recovers the
// newest *complete* checkpoint.
constexpr word_t kSuperMagic = 0x544F4B5241504752ULL;  // "TOKRAPGR"
// Version 3: header grew 12 -> 14 words (map count + flags), and the
// stream after the roots carries the COW map behind the free list. A
// version-2 file is rejected as "no valid superblock" — this library makes
// no cross-version format promise yet.
constexpr word_t kSuperVersion = 3;
constexpr std::size_t kWMagic = 0;
constexpr std::size_t kWVersion = 1;
constexpr std::size_t kWBlockWords = 2;
constexpr std::size_t kWNextBlock = 3;
constexpr std::size_t kWBlocksInUse = 4;
constexpr std::size_t kWRootCount = 5;
constexpr std::size_t kWFreeCount = 6;
constexpr std::size_t kWSpillBlocks = 7;
constexpr std::size_t kWSpillStart = 8;
constexpr std::size_t kWEpoch = 9;
constexpr std::size_t kWChecksum = 10;
// LSN covered by this checkpoint: every WAL record at or below it is
// already reflected in the checkpointed state (0 = no log).
constexpr std::size_t kWWalLsn = 11;
// Entries in the serialized COW name->location map (0 outside COW mode).
constexpr std::size_t kWMapCount = 12;
// Feature flags. A set kFlagCowEpochs makes the device reopen in COW mode
// regardless of EmOptions::cow_epochs: the map it carries is live state.
constexpr std::size_t kWFlags = 13;
constexpr word_t kFlagCowEpochs = 1;

/// Mixes all superblock words except the checksum slot itself.
word_t SuperChecksum(std::span<const word_t> words) {
  word_t h = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i == kWChecksum) continue;
    h ^= words[i];
    h *= 0x2545F4914F6CDD1DULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

Pager::Pager(const EmOptions& options)
    : Pager(options, MakeBlockDevice(options, /*truncate_file=*/true)) {
  // A fresh pager formats the device; read-only only makes sense for
  // Open() on an existing checkpoint.
  TOKRA_CHECK(!options.read_only);
  if (options.cow_epochs) {
    cow_ = true;
    pool_.SetTranslator(this);
  }
  device_->EnsureCapacity(kReservedBlocks);  // the two superblock slots
  if (!options.wal_path.empty()) {
    // A fresh device makes any existing log stale: start the log fresh
    // too. Until the first checkpoint nothing is recoverable, so the
    // live-set stays empty and no pre-images are logged.
    std::remove(options.wal_path.c_str());
    WriteAheadLog::Options wo;
    wo.path = options.wal_path;
    wo.block_words = options.block_words;
    wo.fsync = options.wal_fsync;
    wo.rotate_blocks = options.wal_rotate_blocks;
    if (options.metrics != nullptr) {
      wo.append_us = options.metrics->wal_append_us;
      wo.fsync_us = options.metrics->wal_fsync_us;
    }
    wo.fault = options.fault;
    auto wal = WriteAheadLog::Open(std::move(wo));
    if (!wal.ok()) {
      // A WAL that cannot open means updates cannot be made durable: poison
      // the home device so the pager is born failed — every caller sees the
      // sticky status at its next chokepoint — instead of aborting.
      device_->PoisonIo(wal.status());
      return;
    }
    wal_ = std::move(*wal);
    pool_.SetWriteBarrier(this);
  }
}

Pager::Pager(const EmOptions& options, std::unique_ptr<BlockDevice> device)
    : options_(options),
      device_(std::move(device)),
      pool_(device_.get(), options.pool_frames) {
  options.Validate();
  if (options.metrics != nullptr) {
    pool_.SetEvictionStallHistogram(options.metrics->eviction_stall_us);
  }
}

Pager::~Pager() {
  // A live EpochPin would call back into freed memory on release; failing
  // here names the bug instead of leaving a use-after-free to find.
  std::lock_guard<std::mutex> lock(epochs_mu_);
  TOKRA_CHECK(pins_.empty() && "pager destroyed with live epoch pins");
}

EpochPin Pager::PinEpoch() {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  const std::uint64_t e = published_epoch_.load(std::memory_order_relaxed);
  ++pins_[e];
  return EpochPin(this, e);
}

void Pager::ReleaseEpochPin(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  auto it = pins_.find(epoch);
  TOKRA_CHECK(it != pins_.end() && it->second > 0);
  if (--it->second == 0) {
    pins_.erase(it);
    MaybeRetireLocked();
  }
}

void Pager::MaybeRetireLocked() {
  // A batch tagged E holds the locations checkpoint E was the last to
  // reference; it retires once no pin at or before E remains. Batches were
  // queued in tag order, so the scan stops at the first survivor.
  const std::uint64_t oldest_pinned =
      pins_.empty() ? ~std::uint64_t{0} : pins_.begin()->first;
  while (!retire_queue_.empty() &&
         retire_queue_.front().first < oldest_pinned) {
    std::vector<BlockId>& batch = retire_queue_.front().second;
    retired_total_.fetch_add(batch.size(), std::memory_order_relaxed);
    retire_ready_.insert(retire_ready_.end(), batch.begin(), batch.end());
    retire_queue_.pop_front();
  }
  if (!retire_ready_.empty()) {
    retire_ready_flag_.store(true, std::memory_order_release);
  }
}

void Pager::DrainRetired() {
  // Lock-free fast path: the flag is only set while holding epochs_mu_,
  // so a clear read here means nothing is waiting.
  if (!retire_ready_flag_.load(std::memory_order_acquire)) return;
  std::vector<BlockId> ready;
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    ready.swap(retire_ready_);
    retire_ready_flag_.store(false, std::memory_order_relaxed);
  }
  for (BlockId loc : ready) {
    if (map_.count(loc) != 0) {
      // The client still holds `loc` as a *name* (remapped elsewhere):
      // handing the id out as a fresh name would collide. Park it; the
      // name's Free() releases both roles.
      orphans_.insert(loc);
    } else {
      free_list_.push_back(loc);
    }
  }
}

BlockId Pager::RedirectWrite(BlockId id) {
  if (id < kReservedBlocks) return id;  // superblock protocol is its own
  auto it = map_.find(id);
  const BlockId home = it != map_.end() ? it->second : id;
  // In place only when the home location was born after the last publish:
  // no published checkpoint (hence no pinned reader) can reference it.
  if (interval_fresh_.count(home) != 0) return home;
  DrainRetired();
  const BlockId fresh = AllocLocation();
  map_[id] = fresh;
  deferred_.push_back(home);
  return fresh;
}

void Pager::CowFree(BlockId id) {
  DrainRetired();
  auto it = map_.find(id);
  if (it == map_.end()) {
    ReleaseLocation(id);
    return;
  }
  const BlockId loc = it->second;
  map_.erase(it);
  ReleaseLocation(loc);
  if (orphans_.erase(id) != 0) {
    // The identity location already retired while the name was held; with
    // the name now freed too, the id is free in both roles.
    free_list_.push_back(id);
  }
  // Else location `id` is still parked (deferred/retire queue): when it
  // drains, the map key is gone, so it lands on the free list there.
}

void Pager::ReleaseLocation(BlockId loc) {
  if (interval_fresh_.erase(loc) != 0) {
    free_list_.push_back(loc);  // never reached a published checkpoint
  } else {
    // The last published checkpoint references it: a pinned reader may be
    // walking it right now. Park until the next publish supersedes it.
    deferred_.push_back(loc);
  }
}

StatusOr<std::unique_ptr<Pager>> Pager::OpenOn(
    std::unique_ptr<BlockDevice> device, EmOptions options) {
  if (device == nullptr) {
    return Status::InvalidArgument("OpenOn: no device (read view refused?)");
  }
  options.read_only = true;   // the device refuses writes anyway
  options.wal_path.clear();   // a snapshot reader never logs
  options.fault = nullptr;    // fault injection belongs to the owner
  if (options.path.empty()) options.path = "<read-view>";
  auto pager = std::unique_ptr<Pager>(new Pager(options, std::move(device)));
  TOKRA_RETURN_IF_ERROR(pager->LoadSuperblock());
  return pager;
}

Status Pager::Checkpoint(std::span<const std::uint64_t> roots) {
  if (options_.read_only) {
    return Status::FailedPrecondition("pager is read-only (snapshot mode)");
  }
  const std::uint32_t b = B();
  if (b < kSuperHeaderWords ||
      roots.size() > b - kSuperHeaderWords) {
    return Status::InvalidArgument("root directory exceeds superblock");
  }
  // A checkpoint commits by superblock write; on a failed stack nothing it
  // writes can be trusted durable, and the medium must stay frozen for
  // recovery (failed devices divert writes to their in-memory overlay), so
  // refuse up front rather than stamp a commit record over dropped data.
  TOKRA_RETURN_IF_ERROR(io_status());
  obs::ScopedTimer timer(options_.metrics != nullptr
                             ? options_.metrics->checkpoint_us
                             : nullptr);
  if (cow_) DrainRetired();
  // In COW mode the flush is what performs the interval's redirects (the
  // pool's write-backs go through RedirectWrite), so the translation map is
  // final only after it — serialize below, never before.
  pool_.FlushAll();

  // Spill-region rotation, mirroring the superblock's two-slot protocol:
  // the committed checkpoint's region must stay intact until this commit
  // supersedes it (a fallback recovery reads it), so the new stream spills
  // into the SPARE region — the one from two checkpoints ago — when the
  // stream still fits it exactly, and claims fresh high-water space only
  // when the stream changed size. Steady-state churn (one checkpoint per
  // COW epoch publish) thus recycles one region pair forever instead of
  // leaking a region per checkpoint. A released spare's ids rejoin the
  // free list, and hence this checkpoint's persisted free set. (COW note:
  // an epoch reader loads its superblock + spill once at open, so reusing
  // a superseded spill region never races a pinned reader's data reads.)
  std::size_t stream_len = free_list_.size() + spill_count_;
  if (cow_) {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    auto tally = [&](BlockId loc) {
      if (map_.count(loc) == 0) ++stream_len;
    };
    for (BlockId loc : deferred_) tally(loc);
    for (const auto& [tag, batch] : retire_queue_) {
      for (BlockId loc : batch) tally(loc);
    }
    for (BlockId loc : retire_ready_) tally(loc);
    stream_len += 2 * map_.size();
  }
  const std::size_t head_cap = b - kSuperHeaderWords - roots.size();
  const std::uint32_t needed = static_cast<std::uint32_t>(
      CeilDiv(stream_len > head_cap ? stream_len - head_cap : 0,
              std::size_t{b}));
  const bool reuse_spare = needed > 0 && needed == spare_spill_count_;
  if (!reuse_spare && spare_spill_count_ > 0) {
    for (std::uint32_t i = 0; i < spare_spill_count_; ++i) {
      free_list_.push_back(spare_spill_start_ + i);
    }
    spare_spill_count_ = 0;
  }

  // The serialized allocator stream: persisted free ids, then the COW map
  // as (name, location) pairs. The persisted free set is the runtime free
  // list plus every parked-for-retirement location whose name is not
  // client-held — recovery has no epoch pins, so all pending garbage is
  // free the moment this checkpoint is the newest. A parked location whose
  // name IS still held (a map_ key) must not be handed out as a fresh name;
  // it is recoverable anyway: reopen seeds the orphan set from the map
  // keys, and freeing the name releases both roles.
  std::vector<word_t> stream(free_list_.begin(), free_list_.end());
  std::size_t persisted_free = free_list_.size();
  // The outgoing region becomes the spare once this commit lands; persist
  // its ids as free — recovery has no rotation history, and nothing this
  // superblock commits ever reads that region again.
  for (std::uint32_t i = 0; i < spill_count_; ++i) {
    stream.push_back(spill_start_ + i);
    ++persisted_free;
  }
  if (cow_) {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    auto persist = [&](BlockId loc) {
      if (map_.count(loc) == 0) {
        stream.push_back(loc);
        ++persisted_free;
      }
    };
    for (BlockId loc : deferred_) persist(loc);
    for (const auto& [tag, batch] : retire_queue_) {
      for (BlockId loc : batch) persist(loc);
    }
    for (BlockId loc : retire_ready_) persist(loc);
    for (const auto& [name, loc] : map_) {
      stream.push_back(name);
      stream.push_back(loc);
    }
  }

  std::vector<word_t> super(b, 0);
  super[kWMagic] = kSuperMagic;
  super[kWVersion] = kSuperVersion;
  super[kWBlockWords] = b;
  super[kWBlocksInUse] = blocks_in_use_;
  super[kWRootCount] = roots.size();
  super[kWFreeCount] = persisted_free;
  super[kWMapCount] = map_.size();
  super[kWFlags] = cow_ ? kFlagCowEpochs : 0;
  std::size_t w = kSuperHeaderWords;
  for (std::uint64_t r : roots) super[w++] = r;

  const std::size_t inline_cap = b - w;
  const std::size_t n_inline = std::min(stream.size(), inline_cap);
  for (std::size_t i = 0; i < n_inline; ++i) super[w++] = stream[i];

  const std::size_t spill = stream.size() - n_inline;
  const std::uint32_t spill_blocks =
      static_cast<std::uint32_t>(CeilDiv(spill, std::size_t{b}));
  BlockId new_spill_start = 0;
  if (spill_blocks > 0) {
    if (reuse_spare) {
      // Steady state: overwrite the region from two checkpoints ago. The
      // committed checkpoint never references it, so a crash before this
      // commit still recovers cleanly from the old superblock.
      TOKRA_CHECK(spill_blocks == spare_spill_count_);
      new_spill_start = spare_spill_start_;
    } else {
      // The stream changed size: claim a fresh reserved region at the
      // high-water mark; it is excluded from blocks_in_use_
      // (pager-internal, not application space).
      new_spill_start = next_block_;
      next_block_ += spill_blocks;
    }
    spill_scratch_.assign(std::size_t{spill_blocks} * b, 0);
    for (std::size_t i = 0; i < spill; ++i) {
      spill_scratch_[i] = stream[n_inline + i];
    }
    device_->WriteRun(new_spill_start, spill_blocks, spill_scratch_.data());
  }
  super[kWNextBlock] = next_block_;
  super[kWSpillBlocks] = spill_blocks;
  super[kWSpillStart] = new_spill_start;
  super[kWEpoch] = epoch_ + 1;
  // Stamp the covered LSN: the FlushAll above already appended this
  // checkpoint's own pre-images (the flush goes through the WriteBarrier),
  // so the head here supersedes every record the log currently holds —
  // both the logical tail being made durable and the undo records that
  // guarded its propagation. A WAL-less pager re-stamps whatever it holds
  // (0, or an OverrideWalCheckpointLsn from a side-file build).
  const word_t covered_lsn =
      wal_ != nullptr ? wal_->head_lsn() : wal_ckpt_lsn_;
  super[kWWalLsn] = covered_lsn;
  super[kWChecksum] = SuperChecksum(super);

  // Barrier, superblock to the alternate slot, barrier: data, spill, and
  // the log must be durable before a superblock supersedes the old state,
  // and a torn superblock write invalidates only the new slot (bad
  // checksum), never the old one.
  if (wal_ != nullptr) wal_->Sync();
  device_->Sync();
  // A failure anywhere in the flush or the barriers (including the flush's
  // own pre-image appends: BeforeHomeWrite poisons the home device when the
  // log fails) means the data this superblock would commit may not be on
  // the medium. Stop before the commit record: the old checkpoint stays the
  // recovery target, and the failed device's overlay has kept the medium
  // unclobbered for it.
  TOKRA_RETURN_IF_ERROR(io_status());
  device_->Write((epoch_ + 1) % kReservedBlocks, super.data());
  device_->Sync();
  // Same reasoning for the commit write itself: only advance the epoch —
  // i.e. acknowledge the checkpoint — once the superblock is provably down.
  TOKRA_RETURN_IF_ERROR(io_status());
  ++epoch_;
  // Rotation commit: the region just written is what this checkpoint's
  // recovery reads; the superseded region becomes the spare for the
  // checkpoint after next.
  const BlockId prev_spill_start = spill_start_;
  const std::uint32_t prev_spill_count = spill_count_;
  spill_start_ = new_spill_start;
  spill_count_ = spill_blocks;
  spare_spill_start_ = prev_spill_start;
  spare_spill_count_ = prev_spill_count;
  roots_.assign(roots.begin(), roots.end());
  wal_ckpt_lsn_ = covered_lsn;
  if (cow_) {
    // Publish: new pins land on this epoch, and the interval's superseded
    // locations enter the retire queue tagged with the epoch that last
    // referenced them — they free once no pin at or before that epoch
    // remains (no pins at all retires them on the spot).
    {
      std::lock_guard<std::mutex> lock(epochs_mu_);
      if (!deferred_.empty()) {
        retire_queue_.emplace_back(epoch_ - 1, std::move(deferred_));
        deferred_.clear();  // moved-from: guarantee empty
      }
      MaybeRetireLocked();
      published_epoch_.store(epoch_, std::memory_order_release);
    }
    // Everything the new checkpoint references is now protected: the next
    // interval's first write to any of it must redirect.
    interval_fresh_.clear();
  } else {
    CaptureCheckpointLiveSet();
  }
  if (wal_ != nullptr) {
    // Records at or below the stamp are inert from here on; truncation
    // failing (rotation rename) leaves them inert on disk, so surface but
    // do not roll back.
    TOKRA_RETURN_IF_ERROR(wal_->Truncate(covered_lsn));
  }
  return Status::Ok();
}

void Pager::CaptureCheckpointLiveSet() {
  ckpt_next_block_ = next_block_;
  ckpt_free_.clear();
  ckpt_free_.insert(free_list_.begin(), free_list_.end());
  preimaged_.clear();
}

void Pager::BeforeHomeWrite(std::span<const BlockId> ids) {
  // COW replaces pre-images wholesale: a checkpoint-live block is never
  // overwritten in place (the write-back redirects), so the checkpoint
  // needs no undo log. Logical redo records still flow through wal().
  if (cow_) return;
  if (wal_ == nullptr) return;
  bool appended = false;
  for (BlockId id : ids) {
    if (id < kReservedBlocks) continue;      // superblock protocol is its own
    if (id >= ckpt_next_block_) continue;    // beyond checkpoint high water
    if (ckpt_free_.count(id) != 0) continue; // free at the checkpoint
    if (!preimaged_.insert(id).second) continue;  // already guarded
    preimage_scratch_.assign(std::size_t{B()} + 1, 0);
    preimage_scratch_[0] = id;
    // The home device still holds the checkpoint-time content: this is the
    // block's first overwrite of the interval. One read I/O, charged like
    // any other transfer, identically on every backend.
    device_->Read(id, preimage_scratch_.data() + 1);
    wal_->Append(WriteAheadLog::RecordType::kPreImage, preimage_scratch_);
    appended = true;
  }
  // Write-ahead: the pre-images must not be reorderable after the home
  // writes they guard. One barrier per write-back batch (a real fsync only
  // in wal_fsync mode; page-cache mode needs no barrier for SIGKILL
  // safety, since the kernel survives and writes back both files).
  if (appended) wal_->Sync();
  // If the log has failed, the pre-images guarding this batch may be lost —
  // letting the home writes proceed would overwrite checkpoint-live blocks
  // with no undo record, clobbering the very state recovery needs. Poison
  // the home device instead: its overlay absorbs the write-backs (the live
  // process stays coherent), the medium stays at its guarded state, and the
  // sticky status surfaces at the caller's next chokepoint.
  if (Status ws = wal_->io_status(); !ws.ok() && !device_->io_failed()) {
    device_->PoisonIo(std::move(ws));
  }
}

Status Pager::AttachWalAndUndo() {
  WriteAheadLog::Options wo;
  wo.path = options_.wal_path;
  wo.block_words = options_.block_words;
  wo.fsync = options_.wal_fsync;
  wo.rotate_blocks = options_.wal_rotate_blocks;
  if (options_.metrics != nullptr) {
    wo.append_us = options_.metrics->wal_append_us;
    wo.fsync_us = options_.metrics->wal_fsync_us;
  }
  wo.fault = options_.fault;
  TOKRA_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(std::move(wo)));
  pool_.SetWriteBarrier(this);
  // A log whose head lags the stamped checkpoint cannot be the one the
  // stamp was taken against (a shipped snapshot without its log, a log
  // recreated out-of-band): everything it holds is stamped-inert, but
  // letting appends continue below the stamp would make FUTURE records
  // inert too — silently unprotected. Fast-forward the LSN space past the
  // stamp so the guarantee resumes from here. (A healthy log always has
  // head >= stamp: checkpoints stamp their own head.)
  if (wal_->head_lsn() < wal_ckpt_lsn_) {
    TOKRA_RETURN_IF_ERROR(wal_->AdvanceTo(wal_ckpt_lsn_ + 1));
  }
  // Roll the device back to the exact stamped checkpoint: pre-images are
  // applied newest-first, so when several guard generations of the same
  // block survive (replay after a previous partial recovery), the oldest —
  // the checkpoint-time content — lands last. Logical records stay in the
  // log for the client to replay.
  const auto& recs = wal_->records();
  std::vector<word_t> payload;
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
    if (it->lsn <= wal_ckpt_lsn_ ||
        it->type != WriteAheadLog::RecordType::kPreImage) {
      continue;
    }
    TOKRA_RETURN_IF_ERROR(wal_->ReadPayload(*it, &payload));
    if (payload.size() != std::size_t{B()} + 1) {
      return Status::Internal("malformed WAL pre-image record");
    }
    device_->Write(payload[0], payload.data() + 1);
  }
  // (The undo loop above stays unconditional even in COW mode: a device
  // whose previous run was non-COW may carry pre-images that its torn
  // in-place writes still need rolled back.)
  if (!cow_) CaptureCheckpointLiveSet();
  // Undo writes on a failed device land in its overlay, not the medium:
  // that is not a recovery. Report the stack's health as the verdict.
  return io_status();
}

Status Pager::LoadSuperblock() {
  const std::uint32_t b = B();
  if (b < kSuperHeaderWords) {
    return Status::FailedPrecondition("block too small for a superblock");
  }
  if (device_->NumBlocks() < 1) {
    return Status::FailedPrecondition("device has no superblock");
  }
  // Read both slots; take the valid one with the highest epoch (a crash
  // mid-checkpoint leaves at most the newest slot invalid).
  std::vector<word_t> super;
  word_t best_epoch = 0;
  bool found = false;
  for (BlockId slot = 0; slot < kReservedBlocks && slot < device_->NumBlocks();
       ++slot) {
    std::vector<word_t> cand(b, 0);
    device_->Read(slot, cand.data());
    if (cand[kWMagic] != kSuperMagic || cand[kWVersion] != kSuperVersion ||
        cand[kWChecksum] != SuperChecksum(cand)) {
      continue;
    }
    if (!found || cand[kWEpoch] > best_epoch) {
      best_epoch = cand[kWEpoch];
      super = std::move(cand);
      found = true;
    }
  }
  if (!found) {
    if (device_->io_failed()) return device_->io_status();
    return Status::FailedPrecondition(
        "no valid superblock (never checkpointed, or corrupt)");
  }
  if (super[kWBlockWords] != b) {
    return Status::FailedPrecondition("block_words mismatch with checkpoint");
  }
  next_block_ = super[kWNextBlock];
  blocks_in_use_ = super[kWBlocksInUse];
  epoch_ = best_epoch;
  wal_ckpt_lsn_ = super[kWWalLsn];
  const std::size_t root_count = super[kWRootCount];
  const std::size_t free_count = super[kWFreeCount];
  const std::uint32_t spill_blocks =
      static_cast<std::uint32_t>(super[kWSpillBlocks]);
  spill_start_ = super[kWSpillStart];
  spill_count_ = spill_blocks;
  if (root_count > b - kSuperHeaderWords) {
    return Status::FailedPrecondition("corrupt superblock root count");
  }
  std::size_t w = kSuperHeaderWords;
  roots_.assign(super.begin() + w, super.begin() + w + root_count);
  w += root_count;

  // The allocator stream: free ids, then (name, location) map pairs —
  // inline after the roots, spilling into the reserved region.
  const std::size_t map_count = super[kWMapCount];
  const std::size_t stream_len = free_count + 2 * map_count;
  std::vector<word_t> stream;
  stream.reserve(stream_len);
  const std::size_t n_inline = std::min(stream_len, std::size_t{b} - w);
  for (std::size_t i = 0; i < n_inline; ++i) stream.push_back(super[w++]);
  const std::size_t spill = stream_len - n_inline;
  if (CeilDiv(spill, std::size_t{b}) != spill_blocks) {
    return Status::FailedPrecondition("corrupt superblock allocator stream");
  }
  if (spill_blocks > 0) {
    if (spill_start_ + spill_blocks > device_->NumBlocks()) {
      return Status::FailedPrecondition("truncated allocator-stream spill");
    }
    spill_scratch_.assign(std::size_t{spill_blocks} * b, 0);
    device_->ReadRun(spill_start_, spill_blocks, spill_scratch_.data());
    stream.insert(stream.end(), spill_scratch_.begin(),
                  spill_scratch_.begin() + spill);
  }
  free_list_.assign(stream.begin(), stream.begin() + free_count);

  // COW state: the flag in the file wins over the option — a COW device's
  // translation map is live state that cannot be dropped; an option-enabled
  // reopen of a non-COW device starts COW from here (empty map).
  cow_ = options_.cow_epochs || (super[kWFlags] & kFlagCowEpochs) != 0;
  map_.clear();
  orphans_.clear();
  for (std::size_t i = 0; i < map_count; ++i) {
    const BlockId name = stream[free_count + 2 * i];
    const BlockId loc = stream[free_count + 2 * i + 1];
    map_[name] = loc;
    // A mapped name's original location was persisted as neither live nor
    // free: its name is still client-held. Reserve it until that free.
    orphans_.insert(name);
  }
  if (cow_) {
    pool_.SetTranslator(this);
    published_epoch_.store(epoch_, std::memory_order_release);
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Pager>> Pager::Open(const EmOptions& options) {
  options.Validate();
  if (options.backend == Backend::kMem) {
    return Status::InvalidArgument("Open requires a file-backed backend");
  }
  if (!std::filesystem::exists(options.path)) {
    return Status::NotFound("no such device file: " + options.path);
  }
  auto device = MakeBlockDevice(options, /*truncate_file=*/false);
  if (device->io_failed()) {
    // Open/fstat of the existing file failed (permissions, a directory in
    // the way, I/O error): report it rather than let superblock probing
    // misdiagnose the zero-filled reads as "never checkpointed".
    return device->io_status();
  }
  auto pager =
      std::unique_ptr<Pager>(new Pager(options, std::move(device)));
  TOKRA_RETURN_IF_ERROR(pager->LoadSuperblock());
  if (!options.wal_path.empty()) {
    // Physical recovery: drop the log's torn tail, then undo torn
    // inter-checkpoint home writes so the structure behind the roots is
    // byte-exactly the checkpointed one. The surviving logical tail
    // (records past wal_checkpoint_lsn()) is the caller's redo input.
    TOKRA_RETURN_IF_ERROR(pager->AttachWalAndUndo());
  }
  return pager;
}

}  // namespace tokra::em
