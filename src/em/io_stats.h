// I/O accounting: the cost metric of the EM model.

#ifndef TOKRA_EM_IO_STATS_H_
#define TOKRA_EM_IO_STATS_H_

#include <cstdint>
#include <string>

namespace tokra::em {

/// Counters of simulated block transfers and cache behaviour.
///
/// `reads` and `writes` are the model's cost: each is one block transferred
/// between the (simulated) disk and memory. Pool hits are free, exactly as
/// CPU work is free in the model.
struct IoStats {
  std::uint64_t reads = 0;        ///< blocks read from the device
  std::uint64_t writes = 0;       ///< blocks written to the device
  std::uint64_t pool_hits = 0;    ///< pins served from the buffer pool
  std::uint64_t pool_misses = 0;  ///< pins requiring a device read
  std::uint64_t evictions = 0;    ///< frames evicted (clean or dirty)
  std::uint64_t prefetched = 0;   ///< blocks loaded by Prefetch/PinMany batches
  std::uint64_t borrows = 0;      ///< zero-copy reads served as borrowed
                                  ///< pointers into the device mapping (each
                                  ///< also counted in `reads`: the logical
                                  ///< cost is backend-independent)
  std::uint64_t wal_appends = 0;  ///< records appended to the write-ahead
                                  ///< log (one per group-committed update
                                  ///< batch or pre-image frame)
  std::uint64_t fsyncs = 0;       ///< real durability barriers issued (home
                                  ///< device fsyncs + WAL fsyncs); page-cache
                                  ///< no-op Syncs are not counted
  std::uint64_t io_errors = 0;    ///< device-level I/O failures recorded
                                  ///< (home + WAL devices); a sticky-failed
                                  ///< device keeps counting every refused op
  std::uint64_t injected_faults = 0;  ///< faults delivered by a
                                      ///< FaultInjectingBlockDevice wrapper
                                      ///< (0 outside fault-injection tests)
  std::uint64_t retired_blocks = 0;   ///< COW-superseded blocks returned to
                                      ///< the free list after their last
                                      ///< pinned epoch drained (0 outside
                                      ///< cow_epochs mode)

  /// Total block transfers — the paper's cost metric. WAL traffic lives on
  /// its own log device and is reported separately (`wal_appends`).
  std::uint64_t TotalIos() const { return reads + writes; }

  IoStats& operator+=(const IoStats& rhs) {
    reads += rhs.reads;
    writes += rhs.writes;
    pool_hits += rhs.pool_hits;
    pool_misses += rhs.pool_misses;
    evictions += rhs.evictions;
    prefetched += rhs.prefetched;
    borrows += rhs.borrows;
    wal_appends += rhs.wal_appends;
    fsyncs += rhs.fsyncs;
    io_errors += rhs.io_errors;
    injected_faults += rhs.injected_faults;
    retired_blocks += rhs.retired_blocks;
    return *this;
  }

  IoStats operator-(const IoStats& rhs) const {
    IoStats d;
    d.reads = reads - rhs.reads;
    d.writes = writes - rhs.writes;
    d.pool_hits = pool_hits - rhs.pool_hits;
    d.pool_misses = pool_misses - rhs.pool_misses;
    d.evictions = evictions - rhs.evictions;
    d.prefetched = prefetched - rhs.prefetched;
    d.borrows = borrows - rhs.borrows;
    d.wal_appends = wal_appends - rhs.wal_appends;
    d.fsyncs = fsyncs - rhs.fsyncs;
    d.io_errors = io_errors - rhs.io_errors;
    d.injected_faults = injected_faults - rhs.injected_faults;
    d.retired_blocks = retired_blocks - rhs.retired_blocks;
    return d;
  }

  std::string ToString() const {
    return "reads=" + std::to_string(reads) + " writes=" +
           std::to_string(writes) + " hits=" + std::to_string(pool_hits) +
           " misses=" + std::to_string(pool_misses) +
           " evictions=" + std::to_string(evictions) +
           " prefetched=" + std::to_string(prefetched) +
           " borrows=" + std::to_string(borrows) +
           " wal_appends=" + std::to_string(wal_appends) +
           " fsyncs=" + std::to_string(fsyncs) +
           " io_errors=" + std::to_string(io_errors) +
           " injected_faults=" + std::to_string(injected_faults) +
           " retired_blocks=" + std::to_string(retired_blocks);
  }
};

}  // namespace tokra::em

#endif  // TOKRA_EM_IO_STATS_H_
