// E4 — Lemma 5 (AURS): O(m (cost_max + cost_rank)) operator calls and a
// constant approximation factor, across set counts and size skews.

#include <memory>

#include "aurs/aurs.h"
#include "bench/common.h"
#include "sketch/log_sketch.h"

using namespace tokra;
using namespace tokra::bench;

int main() {
  tokra::bench::InitJson("e4_aurs");
  std::printf("# E4: AURS operator-call cost and approximation quality\n");
  Header("vs m (sketch-backed sets, c1=4)",
         {"m", "rank calls", "calls / m", "max observed rank/k",
          "proven bound"});
  for (std::size_t m : {2u, 8u, 32u, 128u, 256u}) {
    Rng rng(6 + m);
    std::vector<std::vector<double>> sets(m);
    std::vector<sketch::LogSketch> sketches;
    std::vector<std::unique_ptr<aurs::RankedSet>> owners;
    std::vector<aurs::RankedSet*> ptrs;
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t sz = 256 + rng.Uniform(1024);  // skewed sizes
      sets[i] = rng.DistinctDoubles(sz, i * 10.0, i * 10.0 + 9.0);
      std::sort(sets[i].begin(), sets[i].end(), std::greater<>());
    }
    for (auto& s : sets) sketches.push_back(sketch::LogSketch::Build(s));
    for (auto& sk : sketches) {
      owners.push_back(std::make_unique<aurs::SketchRankedSet>(&sk));
      ptrs.push_back(owners.back().get());
    }
    std::uint64_t min_size = ~0ull;
    for (auto& s : sets) min_size = std::min<std::uint64_t>(min_size,
                                                            s.size());
    std::uint64_t calls = 0;
    double worst_ratio = 0;
    int trials = 0;
    for (std::uint64_t k = 1; k <= min_size / 4; k = 2 * k + 1, ++trials) {
      aurs::AursStats stats;
      double v = aurs::UnionRankSelect(ptrs, k, &stats).value();
      calls += stats.rank_calls + stats.max_calls;
      std::uint64_t rank = 0;
      for (auto& s : sets) {
        for (double e : s) {
          if (e >= v) ++rank;
        }
      }
      worst_ratio = std::max(worst_ratio,
                             static_cast<double>(rank) /
                                 static_cast<double>(k));
    }
    Row({U(m), U(calls / trials), D(static_cast<double>(calls) / trials / m),
         D(worst_ratio), D(aurs::AursWorstFactor(4.0))});
  }
  std::printf("\nShape check: calls/m constant; observed ratios far inside "
              "the proven c'(c1) bound.\n");
  return 0;
}
