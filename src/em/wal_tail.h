// WalTailFollower: a position-remembering poller over a live shard WAL —
// the consumer half of the replication seam.
//
// A replica (or any log-shipping consumer) needs to see every record an
// appender commits after some starting LSN, across an arbitrary number of
// polls, while the appender keeps appending, logically truncating, and
// occasionally rotating the segment underneath. WalReader alone makes that
// awkward: it scans once at open, so a poller must re-open per poll, and a
// naive re-open re-scans the whole file and forgets where it stopped.
//
// WalTailFollower owns that loop:
//   * it remembers the last LSN it delivered and never re-delivers;
//   * each poll re-opens the segment with a scan-resume hint (base LSN +
//     block + next LSN from the previous poll), so a poll of a grown log
//     costs O(new frames), not O(file);
//   * an unchanged file (same inode, same size — appends strictly grow a
//     segment and rotation replaces the inode) skips the open entirely;
//   * rotation is survived by construction: a rotated segment's base LSN
//     invalidates the hint (full rescan of the fresh segment) and LSNs are
//     monotonic across rotations, so delivery just continues. If the log
//     rotated PAST records the consumer never saw (it fell behind a
//     checkpoint's truncation), Poll reports kOutOfRange — the signal to
//     re-bootstrap from a snapshot rather than silently skip updates.
//
// Safe against a live appender: frames become visible block-ordered
// through the page cache, a partially-visible tail frame fails the CRC or
// bounds check and ends the scan exactly like a torn tail, and the next
// poll picks it up whole (tested in wal_test.cc's racing-reader suite).
// Not thread-safe; one follower per consumer.

#ifndef TOKRA_EM_WAL_TAIL_H_
#define TOKRA_EM_WAL_TAIL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "em/wal.h"
#include "util/status.h"

namespace tokra::em {

class WalTailFollower {
 public:
  struct Options {
    std::string path;
    std::uint32_t block_words = 256;
    /// Records with lsn <= start_after are considered already consumed
    /// (the checkpoint-covered stamp of a shipped snapshot).
    std::uint64_t start_after = 0;
  };

  /// Receives each new record in LSN order. A non-OK return aborts the
  /// poll (already-delivered records stay delivered) and surfaces from
  /// Poll().
  using Callback = std::function<Status(const WriteAheadLog::Record& rec,
                                        std::span<const word_t> payload)>;

  explicit WalTailFollower(Options options) : options_(std::move(options)) {
    delivered_ = options_.start_after;
  }

  /// One poll: delivers every record with lsn > delivered_lsn(), in LSN
  /// order, and returns how many were delivered (0 when nothing new).
  /// kNotFound: the segment does not exist yet — benign for a poller, try
  /// again. kOutOfRange: the log rotated past undelivered records; the
  /// consumer must re-bootstrap. Other errors propagate from the scan or
  /// the callback.
  StatusOr<std::uint64_t> Poll(const Callback& fn);

  /// LSN of the last record handed to the callback.
  std::uint64_t delivered_lsn() const { return delivered_; }
  /// The log's head as of the last successful poll (delivered or not —
  /// a callback abort can leave delivered_lsn() behind head_lsn()).
  std::uint64_t head_lsn() const { return head_; }
  std::uint64_t polls() const { return polls_; }
  std::uint64_t skipped_polls() const { return skipped_polls_; }

 private:
  Options options_;
  std::uint64_t delivered_ = 0;
  std::uint64_t head_ = 0;
  // Scan-resume hint captured from the last open (valid for hint_base_).
  std::uint64_t hint_base_ = 0;
  std::uint64_t hint_lsn_ = 0;
  BlockId hint_block_ = 0;
  // Unchanged-file fast path: inode + size of the segment at the last
  // poll. Appends strictly grow a segment and rotation renames a fresh
  // inode over the path, so (ino, size) equality proves nothing changed.
  std::uint64_t last_ino_ = 0;
  std::uint64_t last_size_ = std::uint64_t(-1);
  std::uint64_t polls_ = 0;
  std::uint64_t skipped_polls_ = 0;
};

}  // namespace tokra::em

#endif  // TOKRA_EM_WAL_TAIL_H_
