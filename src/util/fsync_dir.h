// Directory-entry durability: fsync of a directory makes the renames and
// creations inside it survive power loss. Shared by the engine's rebalance
// commit and the WAL's segment rotation.

#ifndef TOKRA_UTIL_FSYNC_DIR_H_
#define TOKRA_UTIL_FSYNC_DIR_H_

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <string>

namespace tokra {

/// Fsyncs the directory `dir` itself (not its contents). False on failure;
/// callers in durable modes treat that as a broken barrier.
[[nodiscard]] inline bool FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Fsyncs the directory containing `file_path`.
[[nodiscard]] inline bool FsyncDirContaining(const std::string& file_path) {
  std::string dir = std::filesystem::path(file_path).parent_path().string();
  if (dir.empty()) dir = ".";
  return FsyncDir(dir);
}

}  // namespace tokra

#endif  // TOKRA_UTIL_FSYNC_DIR_H_
