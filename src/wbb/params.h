// Weight-balanced base-tree parameters (Arge & Vitter [4]).
//
// Both the Lemma 1 pilot PST and the Lemma 4 / ST12 base trees follow the
// paper's WBB discipline: a level-i node's weight (subtree key count) is
// capped at leaf_cap * branch^i, and exceeding the cap triggers a rebuild of
// the parent's subtree (Section 2, "Rebalancing"). This header centralizes
// the arithmetic so the rebalancing rules are stated — and tested — once.

#ifndef TOKRA_WBB_PARAMS_H_
#define TOKRA_WBB_PARAMS_H_

#include <cstdint>

#include "util/check.h"

namespace tokra::wbb {

struct WbbParams {
  std::uint32_t branch = 4;    ///< a: branching parameter
  std::uint32_t leaf_cap = 4;  ///< b: leaf weight cap

  void Validate() const {
    TOKRA_CHECK(branch >= 2);
    TOKRA_CHECK(leaf_cap >= 1);
  }

  /// Weight ceiling of a level-i node: b * a^i. (The paper's |P(u)| <=
  /// B^(i+1) with a = b = B.)
  std::uint64_t WeightCap(std::uint32_t level) const {
    std::uint64_t cap = leaf_cap;
    for (std::uint32_t i = 0; i < level; ++i) cap *= branch;
    return cap;
  }

  /// Weight floor the paper's analysis assumes: a quarter of the cap.
  std::uint64_t WeightFloor(std::uint32_t level) const {
    return WeightCap(level) / 4;
  }

  /// True when a level-i node of this weight violates the WBB invariant and
  /// must trigger a rebuild at its parent.
  bool IsOverweight(std::uint32_t level, std::uint64_t weight) const {
    return weight > WeightCap(level);
  }

  /// Post-rebuild target weight for children of a rebuilt level: half the
  /// cap, leaving Theta(cap) slack before the next trigger (the standard
  /// amortization argument: Omega(a^i b) updates between rebuilds).
  std::uint64_t RebuildChildTarget(std::uint32_t level) const {
    std::uint64_t t = WeightCap(level) / 2;
    return t == 0 ? 1 : t;
  }

  /// Height (levels above leaves) needed to hold n keys: the least h >= 1
  /// with WeightCap(h) >= n.
  std::uint32_t HeightFor(std::uint64_t n) const {
    std::uint32_t h = 1;
    std::uint64_t cap = static_cast<std::uint64_t>(leaf_cap) * branch;
    while (cap < n) {
      cap *= branch;
      ++h;
    }
    return h;
  }

  /// Fanout ceiling after a rebuild: weight at most cap(level), children at
  /// target cap(level-1)/2 => at most 2a + 1 children.
  std::uint32_t MaxFanout() const { return 2 * branch + 1; }
};

}  // namespace tokra::wbb

#endif  // TOKRA_WBB_PARAMS_H_
